// Benchmarks regenerating the paper's evaluation artifacts (Section 5).
// One benchmark per table/figure plus the ablations of DESIGN.md; the
// xvbench command prints the corresponding human-readable tables.
package xmlviews_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"xmlviews"
	"xmlviews/internal/algebra"
	"xmlviews/internal/core"
	"xmlviews/internal/datagen"
	"xmlviews/internal/experiments"
	"xmlviews/internal/patgen"
	"xmlviews/internal/pattern"
	"xmlviews/internal/summary"
	"xmlviews/internal/view"
	"xmlviews/internal/xmark"
)

// BenchmarkTable1SummaryConstruction measures linear-time summary building
// over the eight corpora analogs (Table 1).
func BenchmarkTable1SummaryConstruction(b *testing.B) {
	docs := map[string]func() int{
		"Shakespeare": func() int { return summary.Build(datagen.Shakespeare(4, 11)).Size() },
		"Nasa":        func() int { return summary.Build(datagen.Nasa(6, 12)).Size() },
		"SwissProt":   func() int { return summary.Build(datagen.SwissProt(8, 13)).Size() },
		"XMark":       func() int { return summary.Build(datagen.XMark(12, 14)).Size() },
		"DBLP":        func() int { return summary.Build(datagen.DBLP(10, 15, true)).Size() },
	}
	for name, fn := range docs {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if fn() == 0 {
					b.Fatal("empty summary")
				}
			}
		})
	}
}

// BenchmarkFig13XMarkSelfContainment measures per-query containment over
// the 20 XMark patterns (Figure 13, top).
func BenchmarkFig13XMarkSelfContainment(b *testing.B) {
	s := experiments.XMarkSummary()
	opts := core.DefaultContainOptions()
	opts.Subsume = core.NewSubsumeCache(0) // shared per summary, as the experiments do
	for _, i := range []int{1, 5, 7, 14, 20} {
		q1, q2 := xmark.Query(i), xmark.Query(i)
		b.Run(queryName(i), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				ok, _, err := core.ContainedWith(q1, []*pattern.Pattern{q2}, s, opts)
				if err != nil || !ok {
					b.Fatalf("Q%d: %v %v", i, ok, err)
				}
			}
		})
	}
}

func queryName(i int) string {
	return fmt.Sprintf("Q%02d", i)
}

// BenchmarkFig13Synthetic measures synthetic-pattern containment at
// several sizes (Figure 13, bottom).
func BenchmarkFig13Synthetic(b *testing.B) {
	s := experiments.XMarkSummary()
	for _, n := range []int{3, 5, 7} {
		r := rand.New(rand.NewSource(1))
		cfg := patgen.DefaultConfig(n, "item")
		p1, err := patgen.Generate(s, cfg, r)
		if err != nil {
			b.Fatal(err)
		}
		p2, err := patgen.Generate(s, cfg, r)
		if err != nil {
			b.Fatal(err)
		}
		opts := core.DefaultContainOptions()
		opts.IgnoreAttrs = true
		opts.Model.MaxTrees = 20000
		opts.Subsume = core.NewSubsumeCache(0)
		b.Run(fmt.Sprintf("n=%02d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Canonical-model overflow counts as a (skipped) decision:
				// the Section 5 protocol also drops such pairs.
				_, _, _ = core.ContainedWith(p1, []*pattern.Pattern{p2}, s, opts)
			}
		})
	}
}

// BenchmarkFig14DBLP is the Figure 14 counterpart on the DBLP summary,
// plus the optional-edge factor (0% vs 50% optional edges).
func BenchmarkFig14DBLP(b *testing.B) {
	s := experiments.DBLPSummary()
	for _, opt := range []struct {
		name string
		prob float64
	}{{"optional=0", 0}, {"optional=50", 0.5}} {
		r := rand.New(rand.NewSource(2))
		cfg := patgen.DefaultConfig(7, "article")
		cfg.Optional = opt.prob
		p1, err := patgen.Generate(s, cfg, r)
		if err != nil {
			b.Fatal(err)
		}
		p2, err := patgen.Generate(s, cfg, r)
		if err != nil {
			b.Fatal(err)
		}
		opts := core.DefaultContainOptions()
		opts.IgnoreAttrs = true
		opts.Subsume = core.NewSubsumeCache(0)
		b.Run(opt.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.ContainedWith(p1, []*pattern.Pattern{p2}, s, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig15Rewriting measures Algorithm 1 on XMark queries against
// the seed + random view set (Figure 15). FirstOnly mirrors the paper's
// "first rewriting found fast" observation.
func BenchmarkFig15Rewriting(b *testing.B) {
	s := experiments.XMarkSummary()
	views := experiments.Fig15Views(s, 25, 77)
	opts := core.DefaultRewriteOptions()
	opts.MaxScansPerPlan = 3
	opts.MaxNavDepth = 2
	opts.MaxExplored = 6000
	opts.FirstOnly = true
	for _, i := range []int{1, 5} {
		q := xmark.Query(i)
		b.Run(queryName(i), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				if _, err := core.Rewrite(q, views, s, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRewriteParallel compares the sequential rewriting search with
// the worker-pool engine on the Figure 15 workload (exhaustive mode, so
// the DP levels are wide enough to fan out). Both modes produce identical
// RewriteResults; the benchmark measures the wall-clock difference.
func BenchmarkRewriteParallel(b *testing.B) {
	s := experiments.XMarkSummary()
	views := experiments.Fig15Views(s, 5, 77)
	base := core.DefaultRewriteOptions()
	base.MaxScansPerPlan = 3
	base.MaxNavDepth = 2
	base.MaxExplored = 1000
	base.MaxResults = 4
	poolSize := runtime.GOMAXPROCS(0)
	if poolSize < 4 {
		poolSize = 4 // still exercises the parallel engine on small machines
	}
	for _, mode := range []struct {
		name    string
		workers int
	}{
		{"workers=1", 1},
		{fmt.Sprintf("workers=%d", poolSize), poolSize},
	} {
		opts := base
		opts.Workers = mode.workers
		b.Run(mode.name, func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				for _, i := range []int{1, 5} {
					if _, err := core.Rewrite(xmark.Query(i), views, s, opts); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkJoinParallel compares the sequential ID hash join with the
// partitioned build / chunked probe path on a large self-join of the
// XMark item view. Both produce identical relations (row order included).
func BenchmarkJoinParallel(b *testing.B) {
	doc := datagen.XMark(128, 6)
	va := xmlviews.NewView("va", xmlviews.MustParsePattern(`site(//item[id])`))
	vb := xmlviews.NewView("vb", xmlviews.MustParsePattern(`site(//item[id,v])`))
	st := view.NewStore(doc, []*core.View{va, vb})
	plan := core.NewJoin(core.JoinID, false, core.Scan(va), 0, core.Scan(vb), 0)
	poolSize := runtime.GOMAXPROCS(0)
	if poolSize < 4 {
		poolSize = 4 // still exercises the parallel join on small machines
	}
	for _, mode := range []struct {
		name string
		opts algebra.Options
	}{
		{"workers=1", algebra.Options{}},
		{fmt.Sprintf("workers=%d", poolSize), algebra.Options{Workers: poolSize}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := algebra.ExecuteWith(plan, st, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				if res.Rel.Len() == 0 {
					b.Fatal("empty join result")
				}
			}
		})
	}
}

// BenchmarkAblationEnhancedSummary measures the strong-edge rewriting
// enabler (DESIGN.md E7).
func BenchmarkAblationEnhancedSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		row, err := experiments.AblationEnhancedSummary()
		if err != nil {
			b.Fatal(err)
		}
		if row.EnhancedRewritings == 0 || row.PlainRewritings != 0 {
			b.Fatalf("ablation wrong: %+v", row)
		}
	}
}

// BenchmarkStructuralJoin compares the stack-based structural join with
// the nested-loop baseline (DESIGN.md E8).
func BenchmarkStructuralJoin(b *testing.B) {
	doc := datagen.XMark(16, 5)
	va := xmlviews.NewView("va", xmlviews.MustParsePattern(`site(//item[id])`))
	vb := xmlviews.NewView("vb", xmlviews.MustParsePattern(`site(//keyword[id,v])`))
	st := view.NewStore(doc, []*core.View{va, vb})
	plan := core.NewJoin(core.JoinAncestor, false, core.Scan(va), 0, core.Scan(vb), 0)
	for _, mode := range []struct {
		name string
		opts algebra.Options
	}{
		{"stack", algebra.Options{}},
		{"nestedloop", algebra.Options{NestedLoopJoins: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := algebra.ExecuteWith(plan, st, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				if res.Rel.Len() == 0 {
					b.Fatal("empty join result")
				}
			}
		})
	}
}

// BenchmarkMaterialization measures view materialization over the XMark
// document (the storage side of Figure 1).
func BenchmarkMaterialization(b *testing.B) {
	doc := datagen.XMark(8, 5)
	v1 := xmlviews.NewView("V1", xmlviews.MustParsePattern(
		`site(//item[id](?//listitem[id]))`))
	b.Run("V1-nested", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if view.Materialize(v1, doc).Len() == 0 {
				b.Fatal("empty view")
			}
		}
	})
	b.Run("V1-flat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if view.MaterializeFlat(v1, doc).Len() == 0 {
				b.Fatal("empty view")
			}
		}
	})
}

// BenchmarkCanonicalModel measures mod_S(p) construction for the outlier
// query Q7 and a typical query (Section 5's |modS(p)| discussion).
func BenchmarkCanonicalModel(b *testing.B) {
	s := experiments.XMarkSummary()
	for _, i := range []int{1, 7} {
		q := xmark.Query(i)
		b.Run(queryName(i), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				if _, err := core.Model(q, s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
