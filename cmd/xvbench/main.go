// Command xvbench regenerates the tables and figures of the paper's
// evaluation (Section 5):
//
//	xvbench -exp table1            Table 1: corpora and summary statistics
//	xvbench -exp fig13a            Figure 13 (top): XMark pattern containment
//	xvbench -exp fig13b            Figure 13 (bottom): synthetic containment
//	xvbench -exp fig14             Figure 14: DBLP containment + optional ablation
//	xvbench -exp fig15             Figure 15: XMark query rewriting
//	xvbench -exp ablation          Enhanced vs plain summary rewriting
//	xvbench -exp all               Everything (default)
//
// Flags -scale and -views trade runtime for fidelity; -workers runs the
// fig15 rewriting search on a worker pool (identical results, different
// timings).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"xmlviews/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "xvbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("xvbench", flag.ContinueOnError)
	fs.SetOutput(stdout)
	exp := fs.String("exp", "all", "experiment: table1, fig13a, fig13b, fig14, fig15, ablation, all")
	scale := fs.Int("scale", 1, "document scale multiplier for table1")
	views := fs.Int("views", 100, "random views for fig15 (paper: 100)")
	perSize := fs.Int("persize", 12, "synthetic patterns per (n,r) point (paper: 40)")
	workers := fs.Int("workers", 1, "rewriting search workers for fig15 (1 = sequential, <0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	experimentsByName := map[string]func(io.Writer) error{
		"table1":   func(w io.Writer) error { return table1(w, *scale) },
		"fig13a":   fig13a,
		"fig13b":   func(w io.Writer) error { return fig13b(w, *perSize) },
		"fig14":    func(w io.Writer) error { return fig14(w, *perSize) },
		"fig15":    func(w io.Writer) error { return fig15(w, *views, *workers) },
		"ablation": ablation,
	}
	if *exp != "all" {
		if _, ok := experimentsByName[*exp]; !ok {
			return fmt.Errorf("unknown experiment %q", *exp)
		}
	}
	for _, name := range []string{"table1", "fig13a", "fig13b", "fig14", "fig15", "ablation"} {
		if *exp != "all" && *exp != name {
			continue
		}
		fmt.Fprintf(stdout, "== %s ==\n", name)
		if err := experimentsByName[name](stdout); err != nil {
			return fmt.Errorf("%s: %v", name, err)
		}
		fmt.Fprintln(stdout)
	}
	return nil
}

func table1(w io.Writer, scale int) error {
	rows := experiments.Table1(scale)
	fmt.Fprintf(w, "%-12s %10s %10s %6s %8s %8s %12s\n", "Doc.", "nodes", "approx KB", "|S|", "nS", "n1", "build")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %10d %10d %6d %8d %8d %12s\n",
			r.Name, r.Nodes, r.ApproxKB, r.S, r.Strong, r.OneToOne, r.BuildTime.Round(time.Microsecond))
	}
	return nil
}

func fig13a(w io.Writer) error {
	s := experiments.XMarkSummary()
	fmt.Fprintf(w, "XMark summary: %d nodes\n", s.Size())
	rows, err := experiments.Fig13XMarkQueries(s)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-6s %12s %14s\n", "query", "|modS(p)|", "containment")
	for _, r := range rows {
		fmt.Fprintf(w, "Q%-5d %12d %14s\n", r.Query, r.ModelSize, r.Time.Round(time.Microsecond))
	}
	return nil
}

func fig13b(w io.Writer, perSize int) error {
	s := experiments.XMarkSummary()
	cfg := experiments.DefaultSyntheticConfig("item", "name", "keyword")
	cfg.PerSize = perSize
	rows, err := experiments.Synthetic(s, cfg)
	if err != nil {
		return err
	}
	printSynthetic(w, rows)
	return nil
}

func fig14(w io.Writer, perSize int) error {
	s := experiments.DBLPSummary()
	fmt.Fprintf(w, "DBLP'05 summary: %d nodes\n", s.Size())
	cfg := experiments.DefaultSyntheticConfig("article", "author", "title")
	cfg.PerSize = perSize
	rows, err := experiments.Synthetic(s, cfg)
	if err != nil {
		return err
	}
	printSynthetic(w, rows)

	fmt.Fprintln(w, "\noptional-edge ablation (r=1):")
	for _, opt := range []float64{0, 0.5} {
		c := cfg
		c.Optional = opt
		c.Arities = []int{1}
		orows, err := experiments.Synthetic(s, c)
		if err != nil {
			return err
		}
		var pos, neg time.Duration
		var np, nn int
		for _, r := range orows {
			pos += r.Positive * time.Duration(boolInt(r.PosCount > 0))
			neg += r.Negative * time.Duration(boolInt(r.NegCount > 0))
			np += boolInt(r.PosCount > 0)
			nn += boolInt(r.NegCount > 0)
		}
		if np > 0 {
			pos /= time.Duration(np)
		}
		if nn > 0 {
			neg /= time.Duration(nn)
		}
		fmt.Fprintf(w, "  optional=%.0f%%  avg positive %v  avg negative %v\n", opt*100,
			pos.Round(time.Microsecond), neg.Round(time.Microsecond))
	}
	return nil
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func printSynthetic(w io.Writer, rows []experiments.SyntheticRow) {
	fmt.Fprintf(w, "%4s %3s %14s %6s %14s %6s\n", "n", "r", "positive", "#", "negative", "#")
	for _, r := range rows {
		fmt.Fprintf(w, "%4d %3d %14s %6d %14s %6d\n",
			r.N, r.R, r.Positive.Round(time.Microsecond), r.PosCount,
			r.Negative.Round(time.Microsecond), r.NegCount)
	}
}

func fig15(w io.Writer, views, workers int) error {
	s := experiments.XMarkSummary()
	rows, err := experiments.Fig15(s, views, workers)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-6s %12s %12s %12s %4s %10s %10s\n",
		"query", "setup", "first", "total", "#rw", "kept", "explored")
	keptSum, totalSum := 0, 0
	for _, r := range rows {
		fmt.Fprintf(w, "Q%-5d %12s %12s %12s %4d %6d/%-4d %10d\n",
			r.Query, r.Setup.Round(time.Microsecond), r.First.Round(time.Microsecond),
			r.Total.Round(time.Microsecond), r.Rewritings, r.ViewsKept, r.ViewsTotal, r.PlansExplored)
		keptSum += r.ViewsKept
		totalSum += r.ViewsTotal
	}
	if totalSum > 0 {
		fmt.Fprintf(w, "view pruning kept %.0f%% on average (paper: ~57%%)\n",
			100*float64(keptSum)/float64(totalSum))
	}
	return nil
}

func ablation(w io.Writer) error {
	row, err := experiments.AblationEnhancedSummary()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s:\n  enhanced summary: %d rewritings (%v)\n  plain summary:    %d rewritings (%v)\n",
		row.Name, row.EnhancedRewritings, row.EnhancedTime.Round(time.Microsecond),
		row.PlainRewritings, row.PlainTime.Round(time.Microsecond))
	return nil
}
