package main

import (
	"strings"
	"testing"
)

func TestRunFig13aSmoke(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "fig13a"}, &out); err != nil {
		t.Fatalf("fig13a: %v\n%s", err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "== fig13a ==") || !strings.Contains(got, "XMark summary") {
		t.Fatalf("output wrong:\n%s", got)
	}
}

func TestRunTable1Smoke(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "table1", "-scale", "1"}, &out); err != nil {
		t.Fatalf("table1: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "XMark") {
		t.Fatalf("output wrong:\n%s", out.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "nope"}, &out); err == nil {
		t.Fatal("unknown experiment not rejected")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Fatal("unknown flag not rejected")
	}
}
