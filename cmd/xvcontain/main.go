// Command xvcontain decides tree pattern containment under summary
// constraints (Proposition 3.1 and its Section 4 extensions):
//
//	xvcontain -summary 'a(!b(c) d)' -p 'a(/b[id])' -q 'a(//b[id])'
//
// The summary may also be built from a document with -doc file.xml. On
// failure a counterexample document is printed and the exit status is 1.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"xmlviews/internal/core"
	"xmlviews/internal/pattern"
	"xmlviews/internal/summary"
	"xmlviews/internal/xmltree"
)

func main() {
	contained, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xvcontain:", err)
		os.Exit(2)
	}
	if !contained {
		os.Exit(1)
	}
}

// run decides the containment and reports it on stdout; the boolean is the
// verdict (callers map it to the exit status).
func run(args []string, stdout io.Writer) (bool, error) {
	fs := flag.NewFlagSet("xvcontain", flag.ContinueOnError)
	fs.SetOutput(stdout)
	sumSrc := fs.String("summary", "", "summary in parenthesized notation, e.g. 'a(!b(c) d)'")
	docFile := fs.String("doc", "", "build the summary from this XML document instead")
	pSrc := fs.String("p", "", "contained pattern")
	qSrc := fs.String("q", "", "container pattern")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	if *pSrc == "" || *qSrc == "" {
		return false, fmt.Errorf("need both -p and -q")
	}
	if (*sumSrc == "") == (*docFile == "") {
		return false, fmt.Errorf("need exactly one of -summary and -doc")
	}
	var s *summary.Summary
	if *docFile != "" {
		f, err := os.Open(*docFile)
		if err != nil {
			return false, err
		}
		doc, err := xmltree.ParseXML(f)
		f.Close()
		if err != nil {
			return false, err
		}
		s = summary.Build(doc)
	} else {
		var err error
		s, err = summary.Parse(*sumSrc)
		if err != nil {
			return false, err
		}
	}
	p, err := pattern.Parse(*pSrc)
	if err != nil {
		return false, err
	}
	q, err := pattern.Parse(*qSrc)
	if err != nil {
		return false, err
	}
	ok, witness, err := core.ContainedWith(p, []*pattern.Pattern{q}, s, core.DefaultContainOptions())
	if err != nil {
		return false, err
	}
	if ok {
		fmt.Fprintln(stdout, "p ⊆S q: yes")
		return true, nil
	}
	fmt.Fprintln(stdout, "p ⊆S q: no")
	if witness != nil {
		doc, err := witness.Realize()
		if err == nil {
			fmt.Fprintln(stdout, "counterexample document:", doc.Root)
		}
	}
	return false, nil
}
