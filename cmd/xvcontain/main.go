// Command xvcontain decides tree pattern containment under summary
// constraints (Proposition 3.1 and its Section 4 extensions):
//
//	xvcontain -summary 'a(!b(c) d)' -p 'a(/b[id])' -q 'a(//b[id])'
//
// The summary may also be built from a document with -doc file.xml. On
// failure a counterexample document is printed.
package main

import (
	"flag"
	"fmt"
	"os"

	"xmlviews/internal/core"
	"xmlviews/internal/pattern"
	"xmlviews/internal/summary"
	"xmlviews/internal/xmltree"
)

func main() {
	sumSrc := flag.String("summary", "", "summary in parenthesized notation, e.g. 'a(!b(c) d)'")
	docFile := flag.String("doc", "", "build the summary from this XML document instead")
	pSrc := flag.String("p", "", "contained pattern")
	qSrc := flag.String("q", "", "container pattern")
	flag.Parse()

	if *pSrc == "" || *qSrc == "" || (*sumSrc == "" && *docFile == "") {
		flag.Usage()
		os.Exit(2)
	}
	var s *summary.Summary
	if *docFile != "" {
		f, err := os.Open(*docFile)
		if err != nil {
			fatal(err)
		}
		doc, err := xmltree.ParseXML(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		s = summary.Build(doc)
	} else {
		var err error
		s, err = summary.Parse(*sumSrc)
		if err != nil {
			fatal(err)
		}
	}
	p, err := pattern.Parse(*pSrc)
	if err != nil {
		fatal(err)
	}
	q, err := pattern.Parse(*qSrc)
	if err != nil {
		fatal(err)
	}
	ok, witness, err := core.ContainedWith(p, []*pattern.Pattern{q}, s, core.DefaultContainOptions())
	if err != nil {
		fatal(err)
	}
	if ok {
		fmt.Println("p ⊆S q: yes")
		return
	}
	fmt.Println("p ⊆S q: no")
	if witness != nil {
		doc, _ := witness.Realize()
		fmt.Println("counterexample document:", doc.Root)
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xvcontain:", err)
	os.Exit(1)
}
