package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunContainmentVerdicts(t *testing.T) {
	var out strings.Builder
	ok, err := run([]string{"-summary", "a(b(c))", "-p", "a(/b[id])", "-q", "a(//b[id])"}, &out)
	if err != nil || !ok {
		t.Fatalf("positive containment: ok=%v err=%v\n%s", ok, err, out.String())
	}
	if !strings.Contains(out.String(), "yes") {
		t.Fatalf("output wrong:\n%s", out.String())
	}

	out.Reset()
	ok, err = run([]string{"-summary", "a(b c)", "-p", "a(/b[id] /c)", "-q", "a(/b[id](/c))"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("non-containment reported as contained:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "no") {
		t.Fatalf("verdict missing:\n%s", out.String())
	}
}

func TestRunWithDocumentSummary(t *testing.T) {
	docPath := filepath.Join(t.TempDir(), "d.xml")
	if err := os.WriteFile(docPath, []byte(`<a><b><c>1</c></b></a>`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	ok, err := run([]string{"-doc", docPath, "-p", "a(/b[id])", "-q", "a(//b[id])"}, &out)
	if err != nil || !ok {
		t.Fatalf("doc summary containment: ok=%v err=%v", ok, err)
	}
}

func TestRunBadUsage(t *testing.T) {
	var out strings.Builder
	if _, err := run(nil, &out); err == nil {
		t.Fatal("missing flags not rejected")
	}
	if _, err := run([]string{"-p", "a", "-q", "a"}, &out); err == nil {
		t.Fatal("missing summary not rejected")
	}
	if _, err := run([]string{"-summary", "a", "-doc", "x", "-p", "a", "-q", "a"}, &out); err == nil {
		t.Fatal("both -summary and -doc not rejected")
	}
	if _, err := run([]string{"-summary", "a(", "-p", "a[id]", "-q", "a[id]"}, &out); err == nil {
		t.Fatal("bad summary not rejected")
	}
	if _, err := run([]string{"-summary", "a", "-p", "a(", "-q", "a[id]"}, &out); err == nil {
		t.Fatal("bad pattern not rejected")
	}
	if _, err := run([]string{"-doc", "/nonexistent.xml", "-p", "a[id]", "-q", "a[id]"}, &out); err == nil {
		t.Fatal("missing document not reported")
	}
}
