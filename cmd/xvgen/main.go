// Command xvgen generates the synthetic corpora of the evaluation as XML:
//
//	xvgen -corpus xmark -scale 10 -seed 1 > auction.xml
//
// Corpora: xmark, dblp02, dblp05, shakespeare, nasa, swissprot.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"xmlviews/internal/datagen"
	"xmlviews/internal/xmltree"
)

func main() {
	corpus := flag.String("corpus", "xmark", "xmark, dblp02, dblp05, shakespeare, nasa, swissprot")
	scale := flag.Int("scale", 5, "document scale")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var doc *xmltree.Document
	switch *corpus {
	case "xmark":
		doc = datagen.XMark(*scale, *seed)
	case "dblp02":
		doc = datagen.DBLP(*scale, *seed, false)
	case "dblp05":
		doc = datagen.DBLP(*scale, *seed, true)
	case "shakespeare":
		doc = datagen.Shakespeare(*scale, *seed)
	case "nasa":
		doc = datagen.Nasa(*scale, *seed)
	case "swissprot":
		doc = datagen.SwissProt(*scale, *seed)
	default:
		fmt.Fprintf(os.Stderr, "xvgen: unknown corpus %q\n", *corpus)
		os.Exit(2)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if err := doc.WriteXML(w); err != nil {
		fmt.Fprintln(os.Stderr, "xvgen:", err)
		os.Exit(1)
	}
	fmt.Fprintln(w)
}
