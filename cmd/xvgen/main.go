// Command xvgen generates the synthetic corpora of the evaluation as XML:
//
//	xvgen -corpus xmark -scale 10 -seed 1 > auction.xml
//
// Corpora: xmark, dblp02, dblp05, shakespeare, nasa, swissprot.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"xmlviews/internal/datagen"
	"xmlviews/internal/xmltree"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "xvgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("xvgen", flag.ContinueOnError)
	fs.SetOutput(stdout)
	corpus := fs.String("corpus", "xmark", "xmark, dblp02, dblp05, shakespeare, nasa, swissprot")
	scale := fs.Int("scale", 5, "document scale")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scale < 0 {
		return fmt.Errorf("negative scale %d", *scale)
	}
	var doc *xmltree.Document
	switch *corpus {
	case "xmark":
		doc = datagen.XMark(*scale, *seed)
	case "dblp02":
		doc = datagen.DBLP(*scale, *seed, false)
	case "dblp05":
		doc = datagen.DBLP(*scale, *seed, true)
	case "shakespeare":
		doc = datagen.Shakespeare(*scale, *seed)
	case "nasa":
		doc = datagen.Nasa(*scale, *seed)
	case "swissprot":
		doc = datagen.SwissProt(*scale, *seed)
	default:
		return fmt.Errorf("unknown corpus %q", *corpus)
	}
	w := bufio.NewWriter(stdout)
	if err := doc.WriteXML(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return w.Flush()
}
