package main

import (
	"strings"
	"testing"

	"xmlviews/internal/xmltree"
)

func TestRunGeneratesParseableXML(t *testing.T) {
	for _, corpus := range []string{"xmark", "dblp02", "dblp05", "shakespeare", "nasa", "swissprot"} {
		var out strings.Builder
		if err := run([]string{"-corpus", corpus, "-scale", "1", "-seed", "3"}, &out); err != nil {
			t.Fatalf("%s: %v", corpus, err)
		}
		doc, err := xmltree.ParseXMLString(strings.TrimSpace(out.String()))
		if err != nil {
			t.Fatalf("%s output does not parse: %v", corpus, err)
		}
		if doc.Size() < 5 {
			t.Fatalf("%s produced a trivial document (%d nodes)", corpus, doc.Size())
		}
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	var a, b strings.Builder
	if err := run([]string{"-scale", "1", "-seed", "9"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scale", "1", "-seed", "9"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different documents")
	}
}

func TestRunBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-corpus", "nope"}, &out); err == nil {
		t.Fatal("unknown corpus not rejected")
	}
	if err := run([]string{"-scale", "-1"}, &out); err == nil {
		t.Fatal("negative scale not rejected")
	}
	if err := run([]string{"-bogusflag"}, &out); err == nil {
		t.Fatal("unknown flag not rejected")
	}
}
