// Command xvlint runs the project's invariant analyzers (detorder,
// lockcheck, ctxpoll, errclose, sharemut, snapdiscipline, metriccheck,
// vergate) over the given packages and exits non-zero when any
// diagnostic is found.
//
// Usage:
//
//	go run ./cmd/xvlint ./...                        # what CI runs (scripts/lint.sh)
//	go run ./cmd/xvlint -json ./...                  # findings as a JSON array
//	go run ./cmd/xvlint -sarif out.sarif ./...       # also write SARIF 2.1.0 for CI annotation
//	go run ./cmd/xvlint -only sharemut,vergate ./... # bisect findings by analyzer
//	go run ./cmd/xvlint -writemanifest ./internal/store  # refresh vergate's format manifest
//	go run ./cmd/xvlint help                         # print the invariant catalogue
//
// It must be invoked from inside the module: the loader type-checks from
// source with the standard library importer, which resolves module paths
// relative to the working directory. See docs/lint.md for the invariants
// and the //xvlint: annotation reference.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"xmlviews/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("xvlint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "print findings as a JSON array instead of text")
	sarifOut := fs.String("sarif", "", "also write findings as SARIF 2.1.0 to `file` (- for stdout)")
	only := fs.String("only", "", "comma-separated `analyzers` to run (default: all)")
	disable := fs.String("disable", "", "comma-separated `analyzers` to skip")
	writeManifest := fs.Bool("writemanifest", false, "regenerate vergate's format.manifest for the matched packages and exit")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: xvlint [flags] [packages]    (or: xvlint help)")
		fs.PrintDefaults()
	}
	if len(args) == 1 && (args[0] == "help" || args[0] == "-h" || args[0] == "--help") {
		printHelp(stdout)
		return 0
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers, err := selectAnalyzers(*only, *disable)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xvlint: %v\n", err)
		return 2
	}

	prog, err := lint.LoadPackages(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	if *writeManifest {
		return writeManifests(prog, stdout)
	}

	diags := lint.Run(prog, analyzers, lint.RunOptions{})
	if *jsonOut {
		if err := lint.WriteJSON(stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "xvlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if *sarifOut != "" {
		w := stdout
		if *sarifOut != "-" {
			f, err := os.Create(*sarifOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "xvlint: %v\n", err)
				return 2
			}
			defer f.Close()
			w = f
		}
		if err := lint.WriteSARIF(w, analyzers, diags); err != nil {
			fmt.Fprintf(os.Stderr, "xvlint: %v\n", err)
			return 2
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "xvlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// selectAnalyzers applies -only and -disable to the full suite.
func selectAnalyzers(only, disable string) ([]*lint.Analyzer, error) {
	byName := map[string]*lint.Analyzer{}
	for _, a := range lint.All() {
		byName[a.Name] = a
	}
	parse := func(csv string) (map[string]bool, error) {
		set := map[string]bool{}
		if csv == "" {
			return set, nil
		}
		for _, name := range strings.Split(csv, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if byName[name] == nil {
				return nil, fmt.Errorf("unknown analyzer %q (see `xvlint help`)", name)
			}
			set[name] = true
		}
		return set, nil
	}
	keep, err := parse(only)
	if err != nil {
		return nil, err
	}
	drop, err := parse(disable)
	if err != nil {
		return nil, err
	}
	var out []*lint.Analyzer
	for _, a := range lint.All() {
		if len(keep) > 0 && !keep[a.Name] {
			continue
		}
		if drop[a.Name] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return out, nil
}

// writeManifests refreshes format.manifest in every matched package
// under vergate's roots.
func writeManifests(prog *lint.Program, stdout io.Writer) int {
	wrote := 0
	for _, pkg := range prog.Packages {
		if !lint.VerGate.AppliesTo(pkg.Path) {
			continue
		}
		path, err := lint.WriteManifest(pkg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xvlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "wrote %s\n", path)
		wrote++
	}
	if wrote == 0 {
		fmt.Fprintln(os.Stderr, "xvlint: no matched package is under vergate's roots; nothing written")
		return 2
	}
	return 0
}

func printHelp(w io.Writer) {
	fmt.Fprintln(w, "xvlint checks the project invariants described in docs/lint.md.")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Analyzers (select with -only/-disable):")
	fmt.Fprintln(w)
	all := lint.All()
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	for _, a := range all {
		fmt.Fprintf(w, "  %-15s %s\n", a.Name, a.Summary)
	}
	fmt.Fprintln(w)
	for _, a := range all {
		fmt.Fprintf(w, "%s\n    %s\n", a.Name, a.Doc)
		if len(a.Roots) > 0 {
			fmt.Fprintf(w, "    scope: %v\n", a.Roots)
		}
		fmt.Fprintln(w)
	}
}
