// Command xvlint runs the project's invariant analyzers (detorder,
// lockcheck, ctxpoll, errclose) over the given packages and exits
// non-zero when any diagnostic is found.
//
// Usage:
//
//	go run ./cmd/xvlint ./...          # what CI runs (scripts/lint.sh)
//	go run ./cmd/xvlint help           # print the invariant catalogue
//
// It must be invoked from inside the module: the loader type-checks from
// source with the standard library importer, which resolves module paths
// relative to the working directory. See docs/lint.md for the invariants
// and the //xvlint: annotation reference.
package main

import (
	"fmt"
	"os"

	"xmlviews/internal/lint"
)

func main() {
	args := os.Args[1:]
	if len(args) == 1 && (args[0] == "help" || args[0] == "-h" || args[0] == "--help") {
		printHelp()
		return
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	prog, err := lint.LoadPackages(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := lint.Run(prog, lint.All(), lint.RunOptions{})
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "xvlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func printHelp() {
	fmt.Println("xvlint checks the project invariants described in docs/lint.md:")
	fmt.Println()
	for _, a := range lint.All() {
		fmt.Printf("%s\n    %s\n", a.Name, a.Doc)
		if len(a.Roots) > 0 {
			fmt.Printf("    scope: %v\n", a.Roots)
		}
		fmt.Println()
	}
}
