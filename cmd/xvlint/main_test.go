package main

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"xmlviews/internal/lint"
)

func TestHelpListsEveryAnalyzerSorted(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"help"}, &buf); code != 0 {
		t.Fatalf("help exited %d", code)
	}
	out := buf.String()
	var names []string
	for _, a := range lint.All() {
		names = append(names, a.Name)
		if !strings.Contains(out, a.Name) {
			t.Errorf("help output is missing analyzer %s", a.Name)
		}
		if a.Summary == "" || !strings.Contains(out, a.Summary) {
			t.Errorf("help output is missing %s's one-line summary", a.Name)
		}
	}
	sort.Strings(names)
	last := -1
	for _, name := range names {
		idx := strings.Index(out, "  "+name)
		if idx < 0 {
			t.Fatalf("catalogue line for %s not found", name)
		}
		if idx < last {
			t.Errorf("catalogue not sorted: %s appears out of order", name)
		}
		last = idx
	}
}

func TestSelectAnalyzers(t *testing.T) {
	all, err := selectAnalyzers("", "")
	if err != nil || len(all) != len(lint.All()) {
		t.Fatalf("default selection: %v, %d analyzers", err, len(all))
	}

	only, err := selectAnalyzers("sharemut,vergate", "")
	if err != nil || len(only) != 2 {
		t.Fatalf("-only selection: %v, got %d analyzers", err, len(only))
	}
	for _, a := range only {
		if a.Name != "sharemut" && a.Name != "vergate" {
			t.Errorf("-only leaked analyzer %s", a.Name)
		}
	}

	rest, err := selectAnalyzers("", "metriccheck")
	if err != nil || len(rest) != len(lint.All())-1 {
		t.Fatalf("-disable selection: %v, got %d analyzers", err, len(rest))
	}
	for _, a := range rest {
		if a.Name == "metriccheck" {
			t.Errorf("-disable kept metriccheck")
		}
	}

	if _, err := selectAnalyzers("nosuch", ""); err == nil {
		t.Errorf("unknown -only analyzer not rejected")
	}
	if _, err := selectAnalyzers("", "nosuch"); err == nil {
		t.Errorf("unknown -disable analyzer not rejected")
	}
	if _, err := selectAnalyzers("sharemut", "sharemut"); err == nil {
		t.Errorf("empty selection not rejected")
	}
}
