// Command xvrewrite rewrites a tree pattern query over materialized views
// (Algorithm 1) and optionally executes the plans against a document:
//
//	xvrewrite -doc auction.xml \
//	   -q 'site(//item[id](/name[v]))' \
//	   -v 'V1=site(//item[id])' -v 'V2=site(//name[id,v])' \
//	   -exec
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"xmlviews/internal/algebra"
	"xmlviews/internal/core"
	"xmlviews/internal/pattern"
	"xmlviews/internal/summary"
	"xmlviews/internal/view"
	"xmlviews/internal/xmltree"
)

type viewFlags []string

func (v *viewFlags) String() string     { return strings.Join(*v, "; ") }
func (v *viewFlags) Set(s string) error { *v = append(*v, s); return nil }

func main() {
	docFile := flag.String("doc", "", "XML document (summary source and execution target)")
	sumSrc := flag.String("summary", "", "summary notation (alternative to -doc for rewriting only)")
	qSrc := flag.String("q", "", "query pattern")
	exec := flag.Bool("exec", false, "execute the first rewriting against -doc")
	first := flag.Bool("first", false, "stop at the first rewriting")
	var vdefs viewFlags
	flag.Var(&vdefs, "v", "view definition name=pattern (repeatable)")
	flag.Parse()

	if *qSrc == "" || len(vdefs) == 0 || (*docFile == "" && *sumSrc == "") {
		flag.Usage()
		os.Exit(2)
	}

	var doc *xmltree.Document
	var s *summary.Summary
	if *docFile != "" {
		f, err := os.Open(*docFile)
		if err != nil {
			fatal(err)
		}
		var perr error
		doc, perr = xmltree.ParseXML(f)
		f.Close()
		if perr != nil {
			fatal(perr)
		}
		s = summary.Build(doc)
	} else {
		var err error
		s, err = summary.Parse(*sumSrc)
		if err != nil {
			fatal(err)
		}
	}

	q, err := pattern.Parse(*qSrc)
	if err != nil {
		fatal(err)
	}
	var views []*core.View
	for _, def := range vdefs {
		name, src, ok := strings.Cut(def, "=")
		if !ok {
			fatal(fmt.Errorf("view definition %q is not name=pattern", def))
		}
		p, err := pattern.Parse(src)
		if err != nil {
			fatal(err)
		}
		views = append(views, &core.View{Name: name, Pattern: p, DerivableParentIDs: true})
	}

	opts := core.DefaultRewriteOptions()
	opts.FirstOnly = *first
	res, err := core.Rewrite(q, views, s, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("views kept after pruning: %d/%d; plans explored: %d; setup %v; total %v\n",
		res.ViewsKept, res.ViewsTotal, res.PlansExplored,
		res.Setup.Round(time.Microsecond), res.Total.Round(time.Microsecond))
	if len(res.Rewritings) == 0 {
		fmt.Println("no equivalent rewriting found")
		os.Exit(1)
	}
	for i, p := range res.Rewritings {
		fmt.Printf("rewriting %d: %s\n", i+1, p)
	}
	if *exec {
		if doc == nil {
			fatal(fmt.Errorf("-exec requires -doc"))
		}
		st := view.NewStore(doc, views)
		out, err := algebra.Execute(res.Rewritings[0], st)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out.Rel.Sorted())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xvrewrite:", err)
	os.Exit(1)
}
