// Command xvrewrite rewrites a tree pattern query over materialized views
// (Algorithm 1) and optionally executes the plans against a document:
//
//	xvrewrite -doc auction.xml \
//	   -q 'site(//item[id](/name[v]))' \
//	   -v 'V1=site(//item[id])' -v 'V2=site(//name[id,v])' \
//	   -exec
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"xmlviews/internal/algebra"
	"xmlviews/internal/core"
	"xmlviews/internal/pattern"
	"xmlviews/internal/summary"
	"xmlviews/internal/view"
	"xmlviews/internal/xmltree"
)

type viewFlags []string

func (v *viewFlags) String() string     { return strings.Join(*v, "; ") }
func (v *viewFlags) Set(s string) error { *v = append(*v, s); return nil }

// errNoRewriting distinguishes "search succeeded, found nothing" (exit 1,
// like grep) from flag/parse errors.
var errNoRewriting = fmt.Errorf("no equivalent rewriting found")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err != errNoRewriting {
			fmt.Fprintln(os.Stderr, "xvrewrite:", err)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("xvrewrite", flag.ContinueOnError)
	fs.SetOutput(stdout)
	docFile := fs.String("doc", "", "XML document (summary source and execution target)")
	sumSrc := fs.String("summary", "", "summary notation (alternative to -doc for rewriting only)")
	qSrc := fs.String("q", "", "query pattern")
	exec := fs.Bool("exec", false, "execute the first rewriting against -doc")
	first := fs.Bool("first", false, "stop at the first rewriting")
	var vdefs viewFlags
	fs.Var(&vdefs, "v", "view definition name=pattern (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *qSrc == "" || len(vdefs) == 0 || (*docFile == "" && *sumSrc == "") {
		fs.Usage()
		return fmt.Errorf("need -q, at least one -v, and -doc or -summary")
	}

	var doc *xmltree.Document
	var s *summary.Summary
	if *docFile != "" {
		f, err := os.Open(*docFile)
		if err != nil {
			return err
		}
		var perr error
		doc, perr = xmltree.ParseXML(f)
		f.Close()
		if perr != nil {
			return perr
		}
		s = summary.Build(doc)
	} else {
		var err error
		s, err = summary.Parse(*sumSrc)
		if err != nil {
			return err
		}
	}

	q, err := pattern.Parse(*qSrc)
	if err != nil {
		return err
	}
	var views []*core.View
	for _, def := range vdefs {
		name, src, ok := strings.Cut(def, "=")
		if !ok {
			return fmt.Errorf("view definition %q is not name=pattern", def)
		}
		p, err := pattern.Parse(src)
		if err != nil {
			return err
		}
		views = append(views, &core.View{Name: name, Pattern: p, DerivableParentIDs: true})
	}

	opts := core.DefaultRewriteOptions()
	opts.FirstOnly = *first
	res, err := core.Rewrite(q, views, s, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "views kept after pruning: %d/%d; plans explored: %d; setup %v; total %v\n",
		res.ViewsKept, res.ViewsTotal, res.PlansExplored,
		res.Setup.Round(time.Microsecond), res.Total.Round(time.Microsecond))
	if len(res.Rewritings) == 0 {
		fmt.Fprintln(stdout, "no equivalent rewriting found")
		return errNoRewriting
	}
	for i, p := range res.Rewritings {
		fmt.Fprintf(stdout, "rewriting %d: %s\n", i+1, p)
	}
	if *exec {
		if doc == nil {
			return fmt.Errorf("-exec requires -doc")
		}
		st := view.NewStore(doc, views)
		out, err := algebra.Execute(res.Rewritings[0], st)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, out.Rel.Sorted())
	}
	return nil
}
