// Command xvrewrite rewrites a tree pattern query over materialized views
// (Algorithm 1) and optionally executes the plans against a document:
//
//	xvrewrite -doc auction.xml \
//	   -q 'site(//item[id](/name[v]))' \
//	   -v 'V1=site(//item[id])' -v 'V2=site(//name[id,v])' \
//	   -exec
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"time"

	"xmlviews/internal/algebra"
	"xmlviews/internal/core"
	"xmlviews/internal/cost"
	"xmlviews/internal/pattern"
	"xmlviews/internal/summary"
	"xmlviews/internal/view"
	"xmlviews/internal/xmltree"
)

type viewFlags []string

func (v *viewFlags) String() string     { return strings.Join(*v, "; ") }
func (v *viewFlags) Set(s string) error { *v = append(*v, s); return nil }

// errNoRewriting distinguishes "search succeeded, found nothing" (exit 1,
// like grep) from flag/parse errors.
var errNoRewriting = fmt.Errorf("no equivalent rewriting found")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err != errNoRewriting {
			fmt.Fprintln(os.Stderr, "xvrewrite:", err)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("xvrewrite", flag.ContinueOnError)
	fs.SetOutput(stdout)
	docFile := fs.String("doc", "", "XML document (summary source and execution target)")
	sumSrc := fs.String("summary", "", "summary notation (alternative to -doc for rewriting only)")
	qSrc := fs.String("q", "", "query pattern")
	exec := fs.Bool("exec", false, "execute the chosen rewriting against -doc")
	first := fs.Bool("first", false, "stop at the first rewriting")
	showCost := fs.Bool("cost", false, "estimate each rewriting's cost and pick the cheapest")
	var vdefs viewFlags
	fs.Var(&vdefs, "v", "view definition name=pattern (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *qSrc == "" || len(vdefs) == 0 || (*docFile == "" && *sumSrc == "") {
		fs.Usage()
		return fmt.Errorf("need -q, at least one -v, and -doc or -summary")
	}

	var doc *xmltree.Document
	var s *summary.Summary
	if *docFile != "" {
		f, err := os.Open(*docFile)
		if err != nil {
			return err
		}
		var perr error
		doc, perr = xmltree.ParseXML(f)
		f.Close()
		if perr != nil {
			return perr
		}
		s = summary.Build(doc)
	} else {
		var err error
		s, err = summary.Parse(*sumSrc)
		if err != nil {
			return err
		}
	}

	q, err := pattern.Parse(*qSrc)
	if err != nil {
		return err
	}
	var views []*core.View
	for _, def := range vdefs {
		name, src, ok := strings.Cut(def, "=")
		if !ok {
			return fmt.Errorf("view definition %q is not name=pattern", def)
		}
		p, err := pattern.Parse(src)
		if err != nil {
			return err
		}
		views = append(views, &core.View{Name: name, Pattern: p, DerivableParentIDs: true})
	}

	opts := core.DefaultRewriteOptions()
	opts.FirstOnly = *first
	res, err := core.Rewrite(q, views, s, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "views kept after pruning: %d/%d; plans explored: %d; setup %v; total %v\n",
		res.ViewsKept, res.ViewsTotal, res.PlansExplored,
		res.Setup.Round(time.Microsecond), res.Total.Round(time.Microsecond))
	if len(res.Rewritings) == 0 {
		fmt.Fprintln(stdout, "no equivalent rewriting found")
		return errNoRewriting
	}

	// Without -cost the first rewriting executes (the pre-cost-model
	// behavior); with it the cheapest plan under the statistics does.
	chosen := res.Rewritings[0]
	var st *view.Store
	if doc != nil && *exec {
		st = view.NewStore(doc, views)
	}
	if *showCost {
		// With a document, the summary built from it carries exact
		// per-path cardinalities; without -exec those are the estimates
		// (nothing materializes). With -exec, every view some candidate
		// rewriting scans is materialized to measure real row counts —
		// costlier up front (losing plans' extents included), but the
		// estimates then reflect the extents execution would see.
		stats := cost.FromSummary(s)
		if st != nil {
			for _, v := range scannedBaseViews(res.Rewritings) {
				stats.Rows[v.Name] = st.Relation(v).Len()
			}
		}
		est := cost.NewEstimator(stats)
		// Estimate each rewriting once; ChooseBest then ranks from the
		// memoized results instead of re-running the estimator.
		costs := make([]cost.Cost, len(res.Rewritings))
		errs := make([]error, len(res.Rewritings))
		byPlan := map[*core.Plan]int{}
		for i, p := range res.Rewritings {
			costs[i], errs[i] = est.Estimate(p)
			byPlan[p] = i
		}
		var bestCost float64
		chosen, bestCost, _ = core.ChooseBest(res, func(p *core.Plan) (float64, error) {
			i := byPlan[p]
			return costs[i].Total, errs[i]
		})
		for i, p := range res.Rewritings {
			if errs[i] != nil {
				fmt.Fprintf(stdout, "rewriting %d: %s (cost: %v)\n", i+1, p, errs[i])
				continue
			}
			mark := ""
			if p == chosen {
				mark = "  <- cheapest"
			}
			fmt.Fprintf(stdout, "rewriting %d: %s (%s)%s\n", i+1, p, costs[i], mark)
		}
		if math.IsInf(bestCost, 1) {
			// No rewriting could be estimated (the serve path reports the
			// same condition as cost -1): fall back to the first found.
			fmt.Fprintf(stdout, "chosen: %s (no estimate possible; first of %d alternative(s))\n", chosen, len(res.Rewritings))
		} else {
			fmt.Fprintf(stdout, "chosen: %s (cost %.1f of %d alternative(s))\n", chosen, bestCost, len(res.Rewritings))
		}
	} else {
		for i, p := range res.Rewritings {
			fmt.Fprintf(stdout, "rewriting %d: %s\n", i+1, p)
		}
	}
	if *exec {
		if st == nil {
			return fmt.Errorf("-exec requires -doc")
		}
		out, err := algebra.Execute(chosen, st)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, out.Rel.Sorted())
	}
	return nil
}

// scannedBaseViews collects the distinct materializable views the
// rewritings scan — base views plus the bases behind navigation views
// (the cost model prices a navigation scan through its base extent).
func scannedBaseViews(plans []*core.Plan) []*core.View {
	seen := map[string]bool{}
	var out []*core.View
	add := func(v *core.View) {
		if v.Nav == nil && !seen[v.Name] {
			seen[v.Name] = true
			out = append(out, v)
		}
	}
	var walk func(p *core.Plan)
	walk = func(p *core.Plan) {
		switch p.Op {
		case core.OpScan:
			add(p.View)
			if p.View.Nav != nil {
				add(p.View.Nav.Base)
			}
		case core.OpJoin:
			walk(p.Left)
			walk(p.Right)
		case core.OpUnion:
			for _, part := range p.Parts {
				walk(part)
			}
		default:
			walk(p.Input)
		}
	}
	for _, p := range plans {
		walk(p)
	}
	return out
}
