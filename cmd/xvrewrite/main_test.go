package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDoc(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "doc.xml")
	xml := `<site><item><name>pen</name></item><item><name>ink</name></item></site>`
	if err := os.WriteFile(path, []byte(xml), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunRewriteAndExec(t *testing.T) {
	doc := writeDoc(t)
	var out strings.Builder
	err := run([]string{
		"-doc", doc,
		"-q", `site(/item[id](/name[v]))`,
		"-v", `v1=site(/item[id](/name[v]))`,
		"-exec",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "rewriting 1:") {
		t.Fatalf("no rewriting reported:\n%s", got)
	}
	if !strings.Contains(got, "pen") || !strings.Contains(got, "ink") {
		t.Fatalf("executed rows missing:\n%s", got)
	}
}

func TestRunSummaryOnly(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-summary", `site(item(name))`,
		"-q", `site(/item[id])`,
		"-v", `v1=site(/item[id])`,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
}

func TestRunNoRewriting(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-summary", `site(item(name mail))`,
		"-q", `site(/item[id](/mail[v]))`,
		"-v", `v1=site(/item[id](/name[v]))`,
	}, &out)
	if err != errNoRewriting {
		t.Fatalf("err = %v, want errNoRewriting\n%s", err, out.String())
	}
}

func TestRunMissingFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-q", "a"}, &out); err == nil {
		t.Fatal("missing flags not rejected")
	}
}

func TestRunCost(t *testing.T) {
	doc := writeDoc(t)
	var out strings.Builder
	err := run([]string{
		"-doc", doc,
		"-q", `site(/item[id](/name[v]))`,
		"-v", `v1=site(/item[id](/name[v]))`,
		"-cost", "-exec",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "cost=") {
		t.Fatalf("no per-rewriting cost estimates:\n%s", got)
	}
	if !strings.Contains(got, "chosen:") {
		t.Fatalf("no chosen plan reported:\n%s", got)
	}
	if !strings.Contains(got, "pen") || !strings.Contains(got, "ink") {
		t.Fatalf("executed rows missing:\n%s", got)
	}
}

func TestRunCostSummaryOnly(t *testing.T) {
	// Without a document the estimator falls back to summary-based sizes
	// (uniform without annotations); -cost must still work.
	var out strings.Builder
	err := run([]string{
		"-summary", `site(item(name))`,
		"-q", `site(/item[id])`,
		"-v", `v1=site(/item[id])`,
		"-cost",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "chosen:") {
		t.Fatalf("no chosen plan reported:\n%s", out.String())
	}
}
