// Command xvserve is the query daemon: it loads a persistent view store
// built by xvstore and answers tree-pattern (and XQuery) queries over HTTP
// without ever touching the source document.
//
//	xvserve -dir store/ -addr :8080
//	curl 'localhost:8080/query?q=site(/item[id](/name[v]))'
//	curl 'localhost:8080/query?q=site(/item[id](/name[v]))&explain=1'
//	curl 'localhost:8080/healthz'
//	curl 'localhost:8080/stats'
//	curl 'localhost:8080/metrics'          # Prometheus text exposition
//	curl 'localhost:8080/debug/traces'     # recent request traces
//
// Observability: -log routes structured JSON logs to stderr, stdout or a
// file; -slowquery logs requests over a latency threshold; -debugaddr
// opens a second, non-public listener with the Go pprof profiler (plus
// /metrics and /debug/traces).
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener closes
// immediately, in-flight queries drain (bounded by -drain), then the
// process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xmlviews/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "xvserve:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("xvserve", flag.ContinueOnError)
	fs.SetOutput(stdout)
	dir := fs.String("dir", "", "store directory built by xvstore")
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "rewrite/execution worker goroutines (0: all CPUs)")
	planCache := fs.Int("plancache", 0, "plan cache capacity (0: default 256)")
	readOnly := fs.Bool("readonly", false, "disable POST /update")
	maxUpdate := fs.Int64("maxupdate", 0, "maximum /update body bytes (0: default 8 MiB)")
	maxRows := fs.Int("maxrows", 0, "hard cap on /query response rows; the default when no limit is passed, and explicit limits are clamped to it (0: default 10000)")
	maxRewritings := fs.Int("maxrewritings", 0, "equivalent rewritings enumerated per cold query before cost selection (0: default 8)")
	compactChain := fs.Int("compactchain", 0, "fold delta chains online once any view's chain reaches this many segments (0: default 16)")
	compactBytes := fs.Int64("compactbytes", 0, "fold delta chains online once their total size reaches this many bytes (0: default 32 MiB)")
	noCompact := fs.Bool("nocompact", false, "disable online compaction (chains then grow until xvstore compact)")
	groupWait := fs.Duration("groupwait", 0, "straggler window: after the first queued update opens a commit group, wait this long for more writers to join before sealing it (0: natural batching only)")
	groupMax := fs.Int("groupmax", 0, "maximum update requests merged into one commit group (0: default 64)")
	maxVersions := fs.Int("maxversions", 0, "extent versions retained for in-flight snapshot readers, live version included (0: default 8)")
	drain := fs.Duration("drain", 15*time.Second, "graceful shutdown drain timeout")
	slowQuery := fs.Duration("slowquery", 0, "log /query and /update requests slower than this (0: disabled; requires -log)")
	logDest := fs.String("log", "", "structured JSON log destination: stderr, stdout or a file path (empty: logging off)")
	debugAddr := fs.String("debugaddr", "", "separate listener serving /debug/pprof, /metrics and /debug/traces (empty: off; keep it non-public)")
	traceRing := fs.Int("tracering", 0, "recent request traces kept for /debug/traces (0: default 128)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("missing -dir (a store directory built by xvstore)")
	}
	logger, logClose, err := openLogger(*logDest, stdout)
	if err != nil {
		return err
	}
	if logClose != nil {
		defer logClose.Close()
	}
	srv, err := serve.New(serve.Config{Dir: *dir, Workers: *workers, PlanCacheSize: *planCache,
		ReadOnly: *readOnly, MaxUpdateBytes: *maxUpdate, MaxResponseRows: *maxRows,
		MaxRewritings:   *maxRewritings,
		CompactMaxChain: *compactChain, CompactMaxBytes: *compactBytes, CompactDisabled: *noCompact,
		GroupWait: *groupWait, GroupMax: *groupMax, MaxVersions: *maxVersions,
		SlowQuery: *slowQuery, Logger: logger, TraceRingSize: *traceRing})
	if err != nil {
		return err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(stdout, "xvserve: serving %d view(s) from %s on %s\n", srv.Views(), *dir, ln.Addr())

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		dbg := &http.Server{Handler: srv.DebugHandler(), ReadHeaderTimeout: 10 * time.Second}
		defer dbg.Close()
		// Debug serving is best-effort: a failure there must not take the
		// query daemon down.
		go func() { _ = dbg.Serve(dln) }()
		fmt.Fprintf(stdout, "xvserve: debug listener (pprof, metrics, traces) on %s\n", dln.Addr())
	}

	hs := &http.Server{
		Handler: srv.Handler(),
		// Slow or stalled clients must not pin connections forever: bound
		// the header and whole-request reads and reap idle keep-alives.
		// Query execution time is not limited here (no WriteTimeout) —
		// long analytical queries are legitimate; abandoned ones are cut
		// by the request-context cancellation instead.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	fmt.Fprintf(stdout, "xvserve: shutting down, draining in-flight requests (up to %s)\n", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// openLogger resolves the -log destination into a JSON slog logger. A nil
// logger (empty destination) makes the server discard its log lines. The
// returned closer is non-nil only for file destinations.
func openLogger(dest string, stdout io.Writer) (*slog.Logger, io.Closer, error) {
	var w io.Writer
	switch dest {
	case "":
		return nil, nil, nil
	case "stderr":
		w = os.Stderr
	case "stdout":
		w = stdout
	default:
		f, err := os.OpenFile(dest, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("opening log file: %w", err)
		}
		return slog.New(slog.NewJSONHandler(f, nil)), f, nil
	}
	return slog.New(slog.NewJSONHandler(w, nil)), nil, nil
}
