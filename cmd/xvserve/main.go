// Command xvserve is the query daemon: it loads a persistent view store
// built by xvstore and answers tree-pattern (and XQuery) queries over HTTP
// without ever touching the source document.
//
//	xvserve -dir store/ -addr :8080
//	curl 'localhost:8080/query?q=site(/item[id](/name[v]))'
//	curl 'localhost:8080/healthz'
//	curl 'localhost:8080/stats'
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"

	"xmlviews/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "xvserve:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("xvserve", flag.ContinueOnError)
	fs.SetOutput(stdout)
	dir := fs.String("dir", "", "store directory built by xvstore")
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "rewrite/execution worker goroutines (0: all CPUs)")
	planCache := fs.Int("plancache", 0, "plan cache capacity (0: default 256)")
	readOnly := fs.Bool("readonly", false, "disable POST /update")
	maxUpdate := fs.Int64("maxupdate", 0, "maximum /update body bytes (0: default 8 MiB)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("missing -dir (a store directory built by xvstore)")
	}
	srv, err := serve.New(serve.Config{Dir: *dir, Workers: *workers, PlanCacheSize: *planCache,
		ReadOnly: *readOnly, MaxUpdateBytes: *maxUpdate})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "xvserve: serving %d view(s) from %s on %s\n", srv.Views(), *dir, ln.Addr())
	return http.Serve(ln, srv.Handler())
}
