package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"xmlviews/internal/core"
	"xmlviews/internal/pattern"
	"xmlviews/internal/view"
	"xmlviews/internal/xmltree"
)

// lockedBuf is a goroutine-safe writer: the test reads the daemon's
// output while the daemon goroutine writes it.
type lockedBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

func TestRunMissingDir(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Fatal("missing -dir not rejected")
	}
	if err := run([]string{"-dir", "/nonexistent"}, &out); err == nil {
		t.Fatal("missing store not reported")
	}
}

// TestRunServes boots the daemon on a loopback port and round-trips one
// query end to end: xvstore-built directory in, JSON rows out.
func TestRunServes(t *testing.T) {
	dir := t.TempDir()
	doc := xmltree.MustParseParen(`site(item(name "pen") item(name "ink"))`)
	views := []*core.View{{Name: "v1", Pattern: pattern.MustParse(`site(/item[id](/name[v]))`), DerivableParentIDs: true}}
	if _, err := view.BuildStore(dir, doc, views); err != nil {
		t.Fatal(err)
	}

	out := &lockedBuf{}
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-dir", dir, "-addr", "127.0.0.1:0"}, out)
	}()

	// The daemon prints its bound address once listening.
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		select {
		case err := <-errc:
			t.Fatalf("daemon exited: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address:\n%s", out.String())
		}
		if i := strings.Index(out.String(), " on "); i >= 0 {
			addr = strings.TrimSpace(out.String()[i+4:])
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/query?q=%s", addr, "site(/item[id](/name[v]))"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var qr struct {
		Rows [][]string `json:"rows"`
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (%s)", len(qr.Rows), body)
	}
	// Sanity: the store directory is all the daemon needed; the source
	// document never existed on disk.
	if _, err := os.Stat(filepath.Join(dir, "doc.xml")); !os.IsNotExist(err) {
		t.Fatal("test should not have written the document")
	}
}
