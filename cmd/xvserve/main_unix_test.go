//go:build unix

package main

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"

	"xmlviews/internal/core"
	"xmlviews/internal/pattern"
	"xmlviews/internal/view"
	"xmlviews/internal/xmltree"
)

// TestRunGracefulShutdown boots the daemon, confirms it serves, then sends
// SIGINT to the process and checks the daemon drains and exits cleanly.
// (run installs its own signal handler before announcing the address, so
// the self-signal is always caught by it, not by the default handler.)
func TestRunGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	doc := xmltree.MustParseParen(`site(item(name "pen"))`)
	views := []*core.View{{Name: "v1", Pattern: pattern.MustParse(`site(/item[id](/name[v]))`), DerivableParentIDs: true}}
	if _, err := view.BuildStore(dir, doc, views); err != nil {
		t.Fatal(err)
	}

	out := &lockedBuf{}
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-dir", dir, "-addr", "127.0.0.1:0", "-drain", "5s"}, out)
	}()

	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		select {
		case err := <-errc:
			t.Fatalf("daemon exited early: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address:\n%s", out.String())
		}
		if i := strings.Index(out.String(), " on "); i >= 0 {
			addr = strings.TrimSpace(out.String()[i+4:])
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown returned %v\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon did not shut down on SIGINT\n%s", out.String())
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Fatalf("no drain announcement:\n%s", out.String())
	}
	// The listener is gone: new connections fail.
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Fatal("daemon still accepting connections after shutdown")
	}
}
