package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"xmlviews/internal/core"
	"xmlviews/internal/pattern"
	"xmlviews/internal/view"
	"xmlviews/internal/xmltree"
)

func TestOpenLogger(t *testing.T) {
	if l, c, err := openLogger("", nil); l != nil || c != nil || err != nil {
		t.Fatalf("empty destination must disable logging, got %v %v %v", l, c, err)
	}
	var buf strings.Builder
	l, c, err := openLogger("stdout", &buf)
	if err != nil || l == nil || c != nil {
		t.Fatalf("stdout: %v %v %v", l, c, err)
	}
	l.Info("hello", "k", "v")
	var entry map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(buf.String())), &entry); err != nil {
		t.Fatalf("stdout log line is not JSON: %v (%q)", err, buf.String())
	}
	if entry["msg"] != "hello" || entry["k"] != "v" {
		t.Fatalf("log entry = %v", entry)
	}

	path := filepath.Join(t.TempDir(), "xv.log")
	l, c, err = openLogger(path, nil)
	if err != nil || c == nil {
		t.Fatalf("file destination: %v %v", c, err)
	}
	l.Warn("to file")
	c.Close()
	data, err := os.ReadFile(path)
	if err != nil || !strings.Contains(string(data), "to file") {
		t.Fatalf("file log: %v %q", err, data)
	}

	if _, _, err := openLogger(filepath.Join(t.TempDir(), "no", "such", "dir", "x.log"), nil); err == nil {
		t.Fatal("unwritable log path not rejected")
	}
}

// TestRunObservabilityFlags boots the daemon with the observability flags
// on: a slow-query log file, a tiny threshold so every request logs, and a
// separate debug listener. It then drives one query and asserts the log
// line, the debug pprof index and the debug /metrics page all exist.
func TestRunObservabilityFlags(t *testing.T) {
	dir := t.TempDir()
	doc := xmltree.MustParseParen(`site(item(name "pen") item(name "ink"))`)
	views := []*core.View{{Name: "v1", Pattern: pattern.MustParse(`site(/item[id](/name[v]))`), DerivableParentIDs: true}}
	if _, err := view.BuildStore(dir, doc, views); err != nil {
		t.Fatal(err)
	}
	logFile := filepath.Join(t.TempDir(), "slow.log")

	out := &lockedBuf{}
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-dir", dir, "-addr", "127.0.0.1:0",
			"-debugaddr", "127.0.0.1:0", "-log", logFile, "-slowquery", "1ns"}, out)
	}()

	// The daemon announces both listeners, one per line.
	addrFor := func(marker string) string {
		deadline := time.Now().Add(5 * time.Second)
		for {
			for _, line := range strings.Split(out.String(), "\n") {
				if strings.Contains(line, marker) {
					if i := strings.LastIndex(line, " on "); i >= 0 {
						return strings.TrimSpace(line[i+4:])
					}
				}
			}
			select {
			case err := <-errc:
				t.Fatalf("daemon exited: %v\n%s", err, out.String())
			default:
			}
			if time.Now().After(deadline) {
				t.Fatalf("daemon never announced %q:\n%s", marker, out.String())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	addr := addrFor("serving")
	debugAddr := addrFor("debug listener")

	resp, err := http.Get(fmt.Sprintf("http://%s/query?q=%s", addr, "site(/item[id](/name[v]))"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	reqID := resp.Header.Get("X-Request-Id")
	if reqID == "" {
		t.Fatal("no X-Request-Id on response")
	}

	// The slow-query threshold was 1ns: the query must have logged exactly
	// one line carrying the same request id.
	var logged map[string]any
	deadline := time.Now().Add(5 * time.Second)
	for {
		data, _ := os.ReadFile(logFile)
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) == 1 && lines[0] != "" {
			if err := json.Unmarshal([]byte(lines[0]), &logged); err != nil {
				t.Fatalf("slow log line is not JSON: %v (%q)", err, lines[0])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slow log never appeared (have %q)", data)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if logged["request_id"] != reqID || logged["path"] != "/query" {
		t.Fatalf("slow log entry = %v, want request_id %s on /query", logged, reqID)
	}

	// The debug listener serves pprof and the metrics page.
	for _, path := range []string{"/debug/pprof/", "/metrics", "/debug/traces"} {
		resp, err := http.Get("http://" + debugAddr + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d: %s", path, resp.StatusCode, body)
		}
		if path == "/metrics" && !strings.Contains(string(body), "xvserve_queries_total 1") {
			t.Errorf("/metrics on debug listener does not reflect the query:\n%s", body)
		}
	}

	// The serving mux must not expose the profiler.
	resp, err = http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof leaked onto the public listener")
	}
}
