// Command xvstore builds, maintains and inspects persistent view stores:
// directories of columnar segment files plus a catalog manifest, served by
// xvserve.
//
//	xvstore build -doc auction.xml -out store/ \
//	    -v 'V1=site(//item[id](/name[v]))' -v 'V2=site(//name[id,v])'
//	xvstore apply -dir store/ -u '{"op":"insert","parent":"1","subtree":"item(name \"x\")"}'
//	xvstore apply -dir store/ -f updates.json
//	xvstore compact -dir store/
//	xvstore info -dir store/
//	xvstore stats -addr localhost:8080
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"xmlviews/internal/core"
	"xmlviews/internal/maintain"
	"xmlviews/internal/obs"
	"xmlviews/internal/pattern"
	"xmlviews/internal/store"
	"xmlviews/internal/summary"
	"xmlviews/internal/view"
	"xmlviews/internal/xmltree"
)

type viewFlags []string

func (v *viewFlags) String() string     { return strings.Join(*v, "; ") }
func (v *viewFlags) Set(s string) error { *v = append(*v, s); return nil }

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "xvstore:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: xvstore build|info [flags]")
	}
	switch args[0] {
	case "build":
		return runBuild(args[1:], stdout)
	case "apply":
		return runApply(args[1:], stdout)
	case "compact":
		return runCompact(args[1:], stdout)
	case "info":
		return runInfo(args[1:], stdout)
	case "stats":
		return runStats(args[1:], stdout)
	}
	return fmt.Errorf("unknown subcommand %q (want build, apply, compact, info or stats)", args[0])
}

func runBuild(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("xvstore build", flag.ContinueOnError)
	fs.SetOutput(stdout)
	docFile := fs.String("doc", "", "XML document to materialize the views over")
	out := fs.String("out", "", "store directory to create")
	var vdefs viewFlags
	fs.Var(&vdefs, "v", "view definition name=pattern (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *docFile == "" || *out == "" || len(vdefs) == 0 {
		return fmt.Errorf("build needs -doc, -out and at least one -v")
	}
	f, err := os.Open(*docFile)
	if err != nil {
		return err
	}
	doc, perr := xmltree.ParseXML(f)
	f.Close()
	if perr != nil {
		return perr
	}
	doc.Name = *docFile
	views, err := parseViews(vdefs)
	if err != nil {
		return err
	}
	cat, err := view.BuildStore(*out, doc, views)
	if err != nil {
		return err
	}
	var total int64
	for _, e := range cat.Views {
		fmt.Fprintf(stdout, "%s: %d rows, %d bytes (%s)\n", e.Name, e.Rows, e.Bytes, e.Segment)
		total += e.Bytes
	}
	fmt.Fprintf(stdout, "wrote %d view(s), %d bytes total, summary hash %s\n",
		len(cat.Views), total, cat.SummaryHash[:12])
	return nil
}

func runApply(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("xvstore apply", flag.ContinueOnError)
	fs.SetOutput(stdout)
	dir := fs.String("dir", "", "store directory")
	file := fs.String("f", "", "JSON file holding the update batch ('-' for stdin)")
	var inline viewFlags
	fs.Var(&inline, "u", "one JSON update object (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" || (*file == "" && len(inline) == 0) || (*file != "" && len(inline) > 0) {
		return fmt.Errorf("apply needs -dir and either -f or one or more -u")
	}
	var data []byte
	switch {
	case *file == "-":
		var err error
		if data, err = io.ReadAll(os.Stdin); err != nil {
			return err
		}
	case *file != "":
		var err error
		if data, err = os.ReadFile(*file); err != nil {
			return err
		}
	default:
		data = []byte("[" + strings.Join(inline, ",") + "]")
	}
	updates, err := maintain.ParseUpdates(data)
	if err != nil {
		return err
	}
	res, err := view.UpdateStore(*dir, updates)
	if err != nil {
		return err
	}
	for _, c := range res.Changed {
		fmt.Fprintf(stdout, "%s: +%d -%d rows (now %d)\n", c.Name, c.Adds, c.Dels, c.Rows)
	}
	fmt.Fprintf(stdout, "applied %d update(s): %d view(s) changed, %d unaffected; epoch %d\n",
		len(updates), len(res.Changed), res.Skipped, res.Epoch)
	return nil
}

func runCompact(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("xvstore compact", flag.ContinueOnError)
	fs.SetOutput(stdout)
	dir := fs.String("dir", "", "store directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("compact needs -dir")
	}
	res, err := view.CompactStore(*dir)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "folded %d delta segment(s); removed %d superseded file(s), reclaimed %d byte(s)\n",
		res.Folded, res.FilesRemoved, res.BytesReclaimed)
	return nil
}

func runInfo(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("xvstore info", flag.ContinueOnError)
	fs.SetOutput(stdout)
	dir := fs.String("dir", "", "store directory")
	showStats := fs.Bool("stats", false, "list per-path cardinality statistics")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("info needs -dir")
	}
	cat, err := store.OpenCatalog(*dir)
	if err != nil {
		return err
	}
	if cat.Document != "" {
		fmt.Fprintf(stdout, "document: %s\n", cat.Document)
	}
	fmt.Fprintf(stdout, "summary hash: %s\n", cat.SummaryHash)
	fmt.Fprintf(stdout, "epoch: %d\n", cat.Epoch)
	// info is a diagnostic tool: an unparseable summary (suspect or
	// newer-format store) must not hide the rest of the catalog.
	switch sum, err := summary.Parse(cat.Summary); {
	case err != nil:
		fmt.Fprintf(stdout, "statistics: unavailable (catalog summary does not parse: %v)\n", err)
	case sum.HasStats():
		fmt.Fprintf(stdout, "statistics: %d summary node(s), %d document node(s), %d text byte(s)\n",
			sum.Size(), sum.DocNodes(), sum.TextBytes())
		if *showStats {
			for _, id := range sum.NodeIDs() {
				n := sum.Node(id)
				fmt.Fprintf(stdout, "  %s: %d node(s), avg fanout %.2f, avg text %.1fB\n",
					sum.PathString(id), n.Count, sum.AvgFanout(id), sum.AvgTextBytes(id))
			}
		}
	default:
		fmt.Fprintln(stdout, "statistics: none (store built before statistics; cost model uses uniform estimates)")
	}
	for _, e := range cat.Views {
		fmt.Fprintf(stdout, "%s: %s — %d rows, %d bytes, columns %s\n",
			e.Name, e.Pattern, e.Rows, e.Bytes, strings.Join(e.Columns, ","))
		for _, d := range e.Deltas {
			fmt.Fprintf(stdout, "  delta %s: +%d -%d tuples, %d bytes (epoch %d)\n",
				d.Segment, d.Adds, d.Dels, d.Bytes, d.Epoch)
		}
	}
	return nil
}

// statsQuantiles lists the phase histograms the stats summary reports,
// in display order.
var statsQuantiles = []struct{ metric, label string }{
	{"xvserve_rewrite_seconds", "rewrite"},
	{"xvserve_cost_seconds", "cost"},
	{"xvserve_snapshot_seconds", "snapshot"},
	{"xvserve_exec_seconds", "exec"},
	{"xvserve_encode_seconds", "encode"},
	{"xvserve_maintain_seconds", "maintain"},
	{"xvserve_maintain_apply_seconds", "maintain/apply"},
	{"xvserve_maintain_persist_seconds", "maintain/persist"},
	{"xvserve_commit_queue_wait_seconds", "commit/queue-wait"},
	{"xvserve_compact_seconds", "compact"},
}

// runStats scrapes a live xvserve daemon: the /stats JSON counters plus
// per-phase latency quantiles estimated from the /metrics histograms.
func runStats(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("xvstore stats", flag.ContinueOnError)
	fs.SetOutput(stdout)
	addr := fs.String("addr", "localhost:8080", "address (or base URL) of a running xvserve")
	raw := fs.Bool("metrics", false, "dump the raw Prometheus exposition instead of the summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := strings.TrimSuffix(*addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 10 * time.Second}
	get := func(path string) ([]byte, error) {
		resp, err := client.Get(base + path)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
		}
		return body, nil
	}
	if *raw {
		body, err := get("/metrics")
		if err != nil {
			return err
		}
		_, err = stdout.Write(body)
		return err
	}
	statsBody, err := get("/stats")
	if err != nil {
		return err
	}
	var stats map[string]any
	if err := json.Unmarshal(statsBody, &stats); err != nil {
		return fmt.Errorf("decoding /stats: %w", err)
	}
	keys := make([]string, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(stdout, "%s: %v\n", k, stats[k])
	}
	metricsBody, err := get("/metrics")
	if err != nil {
		return err
	}
	hists, err := obs.ParseHistograms(metricsBody)
	if err != nil {
		return fmt.Errorf("parsing /metrics: %w", err)
	}
	fmt.Fprintln(stdout, "\nphase latencies (from histogram buckets):")
	for _, q := range statsQuantiles {
		h, ok := hists[q.metric]
		if !ok || h.Count == 0 {
			continue
		}
		fmt.Fprintf(stdout, "  %-17s n=%-7d p50=%-10s p90=%-10s p99=%s\n",
			q.label, h.Count,
			quantileString(h, 0.50), quantileString(h, 0.90), quantileString(h, 0.99))
	}
	// Group-commit batching: the group-size histogram counts requests per
	// committed group (a size distribution, not a latency).
	if h, ok := hists["xvserve_commit_group_size"]; ok && h.Count > 0 {
		fmt.Fprintf(stdout, "\ncommit groups: n=%d size p50=%s p90=%s p99=%s\n",
			h.Count, sizeString(h, 0.50), sizeString(h, 0.90), sizeString(h, 0.99))
	}
	return nil
}

// sizeString renders a quantile of a count-valued histogram (group sizes)
// as an integer: the bucket interpolation yields fractions, but sizes are
// whole requests, so round up to the containing integer. Overflow bounds
// are floors, as in quantileString.
func sizeString(h obs.HistogramSnapshot, q float64) string {
	v, overflow := h.QuantileBound(q)
	s := strconv.FormatFloat(math.Ceil(v), 'f', -1, 64)
	if overflow {
		return ">" + s
	}
	return s
}

func quantileString(h obs.HistogramSnapshot, q float64) string {
	v, overflow := h.QuantileBound(q)
	s := time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
	if overflow {
		// The rank fell in the +Inf bucket: the bound is a floor, not an
		// estimate.
		return ">" + s
	}
	return s
}

func parseViews(defs []string) ([]*core.View, error) {
	var views []*core.View
	for _, def := range defs {
		name, src, ok := strings.Cut(def, "=")
		if !ok {
			return nil, fmt.Errorf("view definition %q is not name=pattern", def)
		}
		p, err := pattern.Parse(src)
		if err != nil {
			return nil, err
		}
		views = append(views, &core.View{Name: name, Pattern: p, DerivableParentIDs: true})
	}
	return views, nil
}
