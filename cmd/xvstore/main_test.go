package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBuildAndInfo(t *testing.T) {
	dir := t.TempDir()
	docPath := filepath.Join(dir, "doc.xml")
	xml := `<site><item><name>pen</name></item><item><name>ink</name></item></site>`
	if err := os.WriteFile(docPath, []byte(xml), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "store")

	var buildOut strings.Builder
	err := run([]string{"build", "-doc", docPath, "-out", out,
		"-v", `v1=site(/item[id](/name[v]))`}, &buildOut)
	if err != nil {
		t.Fatalf("build: %v\n%s", err, buildOut.String())
	}
	if !strings.Contains(buildOut.String(), "v1: 2 rows") {
		t.Fatalf("build output wrong:\n%s", buildOut.String())
	}
	if _, err := os.Stat(filepath.Join(out, "catalog.json")); err != nil {
		t.Fatalf("no catalog written: %v", err)
	}

	var infoOut strings.Builder
	if err := run([]string{"info", "-dir", out}, &infoOut); err != nil {
		t.Fatalf("info: %v", err)
	}
	got := infoOut.String()
	if !strings.Contains(got, "v1:") || !strings.Contains(got, "summary hash:") {
		t.Fatalf("info output wrong:\n%s", got)
	}
}

func TestRunApplyCompactInfo(t *testing.T) {
	dir := t.TempDir()
	docPath := filepath.Join(dir, "doc.xml")
	xml := `<site><item><name>pen</name></item><item><name>ink</name></item></site>`
	if err := os.WriteFile(docPath, []byte(xml), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "store")
	var sb strings.Builder
	if err := run([]string{"build", "-doc", docPath, "-out", out,
		"-v", `v1=site(/item[id](/name[v]))`}, &sb); err != nil {
		t.Fatal(err)
	}

	var applyOut strings.Builder
	err := run([]string{"apply", "-dir", out,
		"-u", `{"op":"insert","parent":"1","subtree":"item(name \"dry\")"}`}, &applyOut)
	if err != nil {
		t.Fatalf("apply: %v\n%s", err, applyOut.String())
	}
	got := applyOut.String()
	if !strings.Contains(got, "v1: +1 -0 rows (now 3)") || !strings.Contains(got, "epoch 1") {
		t.Fatalf("apply output wrong:\n%s", got)
	}

	// A batch from a file, driving a second epoch.
	batch := filepath.Join(dir, "batch.json")
	if err := os.WriteFile(batch, []byte(`{"updates":[{"op":"settext","target":"1.1.1","value":"quill"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	applyOut.Reset()
	if err := run([]string{"apply", "-dir", out, "-f", batch}, &applyOut); err != nil {
		t.Fatalf("apply -f: %v\n%s", err, applyOut.String())
	}
	if !strings.Contains(applyOut.String(), "epoch 2") {
		t.Fatalf("apply -f output wrong:\n%s", applyOut.String())
	}

	var infoOut strings.Builder
	if err := run([]string{"info", "-dir", out}, &infoOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(infoOut.String(), "epoch: 2") || !strings.Contains(infoOut.String(), "delta seg-0000.d0001.xvs") {
		t.Fatalf("info output wrong:\n%s", infoOut.String())
	}

	var compactOut strings.Builder
	if err := run([]string{"compact", "-dir", out}, &compactOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(compactOut.String(), "folded 2 delta segment(s)") ||
		!strings.Contains(compactOut.String(), "reclaimed") {
		t.Fatalf("compact output wrong:\n%s", compactOut.String())
	}
	infoOut.Reset()
	if err := run([]string{"info", "-dir", out}, &infoOut); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(infoOut.String(), "delta ") {
		t.Fatalf("delta chain survived compaction:\n%s", infoOut.String())
	}
	if !strings.Contains(infoOut.String(), "epoch: 2") {
		t.Fatalf("compaction changed the epoch:\n%s", infoOut.String())
	}
}

func TestRunBadUsage(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Fatal("empty args not rejected")
	}
	if err := run([]string{"frobnicate"}, &out); err == nil {
		t.Fatal("unknown subcommand not rejected")
	}
	if err := run([]string{"build"}, &out); err == nil {
		t.Fatal("build without flags not rejected")
	}
	if err := run([]string{"build", "-doc", "x", "-out", "y", "-v", "no-equals-sign"}, &out); err == nil {
		t.Fatal("bad view definition not rejected")
	}
	if err := run([]string{"info", "-dir", "/nonexistent"}, &out); err == nil {
		t.Fatal("missing store not reported")
	}
	if err := run([]string{"apply", "-dir", "/nonexistent"}, &out); err == nil {
		t.Fatal("apply without updates not rejected")
	}
	if err := run([]string{"apply", "-dir", "/nonexistent", "-u", `{"op":"delete","target":"1.1"}`}, &out); err == nil {
		t.Fatal("apply on missing store not reported")
	}
	if err := run([]string{"apply", "-dir", "/nonexistent", "-u", `nope`}, &out); err == nil {
		t.Fatal("bad update JSON not rejected")
	}
	if err := run([]string{"compact"}, &out); err == nil {
		t.Fatal("compact without -dir not rejected")
	}
}

func TestRunInfoStats(t *testing.T) {
	dir := t.TempDir()
	docPath := filepath.Join(dir, "doc.xml")
	xml := `<site><item><name>pen</name></item><item><name>ink</name></item></site>`
	if err := os.WriteFile(docPath, []byte(xml), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "store")
	var buildOut strings.Builder
	if err := run([]string{"build", "-doc", docPath, "-out", out,
		"-v", `v1=site(/item[id](/name[v]))`}, &buildOut); err != nil {
		t.Fatalf("build: %v\n%s", err, buildOut.String())
	}

	var infoOut strings.Builder
	if err := run([]string{"info", "-dir", out, "-stats"}, &infoOut); err != nil {
		t.Fatalf("info: %v", err)
	}
	got := infoOut.String()
	// 5 document nodes (site, 2 items, 2 names), 6 text bytes (pen+ink).
	if !strings.Contains(got, "statistics: 3 summary node(s), 5 document node(s), 6 text byte(s)") {
		t.Fatalf("statistics line wrong:\n%s", got)
	}
	// -stats lists per-path lines with counts and fanout.
	if !strings.Contains(got, "/site/item/name: 2 node(s)") {
		t.Fatalf("per-path statistics missing:\n%s", got)
	}
}
