package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBuildAndInfo(t *testing.T) {
	dir := t.TempDir()
	docPath := filepath.Join(dir, "doc.xml")
	xml := `<site><item><name>pen</name></item><item><name>ink</name></item></site>`
	if err := os.WriteFile(docPath, []byte(xml), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "store")

	var buildOut strings.Builder
	err := run([]string{"build", "-doc", docPath, "-out", out,
		"-v", `v1=site(/item[id](/name[v]))`}, &buildOut)
	if err != nil {
		t.Fatalf("build: %v\n%s", err, buildOut.String())
	}
	if !strings.Contains(buildOut.String(), "v1: 2 rows") {
		t.Fatalf("build output wrong:\n%s", buildOut.String())
	}
	if _, err := os.Stat(filepath.Join(out, "catalog.json")); err != nil {
		t.Fatalf("no catalog written: %v", err)
	}

	var infoOut strings.Builder
	if err := run([]string{"info", "-dir", out}, &infoOut); err != nil {
		t.Fatalf("info: %v", err)
	}
	got := infoOut.String()
	if !strings.Contains(got, "v1:") || !strings.Contains(got, "summary hash:") {
		t.Fatalf("info output wrong:\n%s", got)
	}
}

func TestRunBadUsage(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Fatal("empty args not rejected")
	}
	if err := run([]string{"frobnicate"}, &out); err == nil {
		t.Fatal("unknown subcommand not rejected")
	}
	if err := run([]string{"build"}, &out); err == nil {
		t.Fatal("build without flags not rejected")
	}
	if err := run([]string{"build", "-doc", "x", "-out", "y", "-v", "no-equals-sign"}, &out); err == nil {
		t.Fatal("bad view definition not rejected")
	}
	if err := run([]string{"info", "-dir", "/nonexistent"}, &out); err == nil {
		t.Fatal("missing store not reported")
	}
}
