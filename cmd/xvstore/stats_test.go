package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"xmlviews/internal/core"
	"xmlviews/internal/obs"
	"xmlviews/internal/pattern"
	"xmlviews/internal/serve"
	"xmlviews/internal/view"
	"xmlviews/internal/xmltree"
)

// statsDaemon serves a small store over HTTP, the way a live xvserve
// would, and runs one query so the metrics are non-trivial.
func statsDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	dir := t.TempDir()
	doc := xmltree.MustParseParen(`site(item(name "pen") item(name "ink"))`)
	views := []*core.View{{Name: "v1", Pattern: pattern.MustParse(`site(/item[id](/name[v]))`), DerivableParentIDs: true}}
	if _, err := view.BuildStore(dir, doc, views); err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Config{Dir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/query?q=" + "site(/item[id](/name[v]))")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up query status %d", resp.StatusCode)
	}
	// One update, so the group-commit instruments are non-trivial too.
	ur, err := http.Post(ts.URL+"/update", "application/json",
		strings.NewReader(`[{"op":"insert","parent":"1","subtree":"item(name \"pad\")"}]`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, ur.Body)
	ur.Body.Close()
	if ur.StatusCode != http.StatusOK {
		t.Fatalf("warm-up update status %d", ur.StatusCode)
	}
	return ts
}

func TestRunStatsSummary(t *testing.T) {
	ts := statsDaemon(t)
	var out strings.Builder
	if err := run([]string{"stats", "-addr", ts.URL}, &out); err != nil {
		t.Fatalf("stats: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"queries: 1",
		"plan_cache_misses: 1",
		"epoch: 1",
		"phase latencies",
		"rewrite",
		"commit/queue-wait",
		"p50=",
		"p99=",
		"commit groups: n=1 size p50=1",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("stats output lacks %q:\n%s", want, got)
		}
	}
}

func TestRunStatsRawMetrics(t *testing.T) {
	ts := statsDaemon(t)
	var out strings.Builder
	// The bare host:port form (no scheme) must work too.
	addr := strings.TrimPrefix(ts.URL, "http://")
	if err := run([]string{"stats", "-addr", addr, "-metrics"}, &out); err != nil {
		t.Fatalf("stats -metrics: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"# HELP xvserve_queries_total",
		"# TYPE xvserve_rewrite_seconds histogram",
		`xvserve_rewrite_seconds_bucket{le="+Inf"} 1`,
		"xvserve_queries_total 1",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition lacks %q:\n%s", want, got)
		}
	}
}

func TestQuantileStringOverflow(t *testing.T) {
	// Nine of ten observations land past the largest finite bound (10s):
	// the p99 is unknown, so the summary must render it as a lower bound
	// (">10s"), not claim p99=10s.
	h := obs.HistogramSnapshot{Uppers: []float64{1, 10}, Counts: []int64{1, 0, 9}, Count: 10}
	if got := quantileString(h, 0.99); got != ">10s" {
		t.Fatalf("overflow p99 = %q, want \">10s\"", got)
	}
	if got := quantileString(h, 0.1); got != "1s" {
		t.Fatalf("in-range p10 = %q, want \"1s\"", got)
	}
}

func TestRunStatsUnreachable(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"stats", "-addr", "127.0.0.1:1"}, &out); err == nil {
		t.Fatal("unreachable daemon not reported")
	}
}
