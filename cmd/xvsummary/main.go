// Command xvsummary builds the enhanced path summary (Dataguide) of an XML
// document and prints its statistics and structure.
//
//	xvsummary [-stats] [-tree] file.xml
//
// With no file, it reads from standard input.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"xmlviews/internal/summary"
	"xmlviews/internal/xmltree"
)

func main() {
	stats := flag.Bool("stats", true, "print summary statistics (Table 1 columns)")
	tree := flag.Bool("tree", false, "print the summary tree (strong edges '!', one-to-one '=')")
	paths := flag.Bool("paths", false, "print every rooted path with its node count")
	flag.Parse()

	var in io.Reader = os.Stdin
	name := "<stdin>"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
		name = flag.Arg(0)
	}
	doc, err := xmltree.ParseXML(in)
	if err != nil {
		fatal(err)
	}
	s := summary.Build(doc)
	if *stats {
		ns, n1 := s.Stats()
		fmt.Printf("%s: %d nodes, |S| = %d, strong edges = %d, one-to-one = %d\n",
			name, doc.Size(), s.Size(), ns, n1)
	}
	if *tree {
		fmt.Println(s)
	}
	if *paths {
		for _, id := range s.NodeIDs() {
			fmt.Printf("%6d  %s\n", s.Node(id).Count, s.PathString(id))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xvsummary:", err)
	os.Exit(1)
}
