// Command xvsummary builds the enhanced path summary (Dataguide) of an XML
// document and prints its statistics and structure.
//
//	xvsummary [-stats] [-tree] file.xml
//
// With no file, it reads from standard input.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"xmlviews/internal/summary"
	"xmlviews/internal/xmltree"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "xvsummary:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("xvsummary", flag.ContinueOnError)
	fs.SetOutput(stdout)
	stats := fs.Bool("stats", true, "print summary statistics (Table 1 columns)")
	tree := fs.Bool("tree", false, "print the summary tree (strong edges '!', one-to-one '=')")
	paths := fs.Bool("paths", false, "print every rooted path with its node count")
	if err := fs.Parse(args); err != nil {
		return err
	}

	in := stdin
	name := "<stdin>"
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
		name = fs.Arg(0)
	}
	doc, err := xmltree.ParseXML(in)
	if err != nil {
		return err
	}
	s := summary.Build(doc)
	if *stats {
		ns, n1 := s.Stats()
		fmt.Fprintf(stdout, "%s: %d nodes, |S| = %d, strong edges = %d, one-to-one = %d\n",
			name, doc.Size(), s.Size(), ns, n1)
	}
	if *tree {
		fmt.Fprintln(stdout, s)
	}
	if *paths {
		for _, id := range s.NodeIDs() {
			fmt.Fprintf(stdout, "%6d  %s\n", s.Node(id).Count, s.PathString(id))
		}
	}
	return nil
}
