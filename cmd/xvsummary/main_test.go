package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunStdin(t *testing.T) {
	in := strings.NewReader(`<a><b>1</b><b>2</b></a>`)
	var out strings.Builder
	if err := run(nil, in, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "|S| = 2") {
		t.Fatalf("stats line wrong:\n%s", out.String())
	}
}

func TestRunFileWithTreeAndPaths(t *testing.T) {
	path := filepath.Join(t.TempDir(), "doc.xml")
	if err := os.WriteFile(path, []byte(`<a><b>1</b><c/></a>`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-tree", "-paths", path}, nil, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "a(") || !strings.Contains(got, "/a/b") {
		t.Fatalf("tree/paths output wrong:\n%s", got)
	}
}

func TestRunMissingFile(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"/nonexistent/doc.xml"}, nil, &out); err == nil {
		t.Fatal("missing file not reported")
	}
}
