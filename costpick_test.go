package xmlviews_test

import (
	"testing"

	"xmlviews"
	"xmlviews/internal/algebra"
	"xmlviews/internal/core"
	"xmlviews/internal/cost"
	"xmlviews/internal/datagen"
	"xmlviews/internal/store"
	"xmlviews/internal/summary"
	"xmlviews/internal/view"
)

// costPickWorld builds the store behind TestCostPick/BenchmarkCostPick: an
// XMark document with two views that both answer the benchmark query
// exactly — one additionally stores every item's content subtree, making
// its extent an order of magnitude bigger on disk and slower to pipe
// through execution. The two views tie on the rewriting search's relevance
// order (same query slots served, same canonical-model size), so the
// search finds the fat view's scan FIRST; only the catalog's byte/row
// statistics tell them apart.
func costPickWorld(t testing.TB, scale int) (*summary.Summary, *cost.Estimator, *view.Store, *core.RewriteResult) {
	t.Helper()
	doc := datagen.XMark(scale, 6)
	views := []*core.View{
		xmlviews.NewView("VFAT", xmlviews.MustParsePattern(`site(//item[id,c](/name[v]))`)),
		xmlviews.NewView("VSLIM", xmlviews.MustParsePattern(`site(//item[id](/name[v]))`)),
	}
	dir := t.TempDir()
	if _, err := view.BuildStore(dir, doc, views); err != nil {
		t.Fatal(err)
	}
	cat, err := store.OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := summary.Parse(cat.Summary)
	if err != nil {
		t.Fatal(err)
	}
	st, err := view.OpenStoreWithCatalog(dir, cat, views)
	if err != nil {
		t.Fatal(err)
	}
	est := cost.NewEstimator(cost.FromCatalog(cat, sum))

	opts := core.DefaultRewriteOptions()
	opts.MaxResults = 4
	opts.MaxExplored = 2000
	opts.MaxScansPerPlan = 2
	res, err := core.Rewrite(xmlviews.MustParsePattern(`site(//item[id](/name[v]))`), views, sum, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rewritings) < 2 {
		t.Fatalf("need at least 2 rewritings, got %d", len(res.Rewritings))
	}
	return sum, est, st, res
}

// TestCostPick pins the scenario the benchmark measures: the first-found
// rewriting scans the fat view, cost-based selection picks a strictly
// cheaper plan over the slim view, and both produce the same answer.
func TestCostPick(t *testing.T) {
	_, est, st, res := costPickWorld(t, 10)
	first := res.Rewritings[0]
	best, bestCost, alts := core.ChooseBest(res, est.PlanCost)
	if alts != len(res.Rewritings) {
		t.Fatalf("considered %d, want %d", alts, len(res.Rewritings))
	}
	if best == first {
		t.Fatalf("cost model chose the first-found plan %s; the scenario must make them differ", first)
	}
	firstCost, err := est.Estimate(first)
	if err != nil {
		t.Fatal(err)
	}
	if bestCost >= firstCost.Total {
		t.Fatalf("chosen plan cost %v not below first-found %v", bestCost, firstCost.Total)
	}

	outFirst, err := algebra.Execute(first, st)
	if err != nil {
		t.Fatal(err)
	}
	outBest, err := algebra.Execute(best, st)
	if err != nil {
		t.Fatal(err)
	}
	if outFirst.Rel.Len() != outBest.Rel.Len() {
		t.Fatalf("plans disagree: %d vs %d rows", outFirst.Rel.Len(), outBest.Rel.Len())
	}
	// Same logical answer on the query's columns (id, v); the fat plan may
	// over-deliver extra attribute columns.
	a, b := outFirst.Rel.Sorted(), outBest.Rel.Sorted()
	ai := a.ColIndex("s0.id")
	bi := b.ColIndex("s0.id")
	if ai < 0 || bi < 0 {
		t.Fatalf("missing id columns: %v vs %v", a.Cols, b.Cols)
	}
	for i := range a.Rows {
		if a.Rows[i][ai].Render() != b.Rows[i][bi].Render() {
			t.Fatalf("row %d differs: %v vs %v", i, a.Rows[i][ai], b.Rows[i][bi])
		}
	}
}

// BenchmarkCostPick demonstrates the tentpole: executing Rewritings[0]
// (the pre-cost-model serving behavior) versus executing the plan the
// statistics-backed cost model picks. On the XMark store the first-found
// plan drags every item's content subtree through scan, distinct and sort;
// the cost-picked plan reads the slim extent and is several times faster.
func BenchmarkCostPick(b *testing.B) {
	_, est, st, res := costPickWorld(b, 40)
	first := res.Rewritings[0]
	best, _, _ := core.ChooseBest(res, est.PlanCost)
	if best == first {
		b.Fatal("scenario degenerated: cost model chose the first-found plan")
	}
	for _, mode := range []struct {
		name string
		plan *core.Plan
	}{
		{"first-found", first},
		{"cost-picked", best},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := algebra.Execute(mode.plan, st)
				if err != nil {
					b.Fatal(err)
				}
				if out.Rel.Sorted().Len() == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}
