// Auction: the paper's running example (Section 1, Figure 1). Two
// materialized views over an XMark-like auction document — V1 stores item
// IDs with their nested, optional listitem content; V2 stores item names —
// jointly rewrite a query that no view answers alone, combined by a
// structural-ID join. A third part shows the summary-based optimization:
// when every item has a mail descendant (a strong edge), the query's mail
// condition costs nothing.
package main

import (
	"fmt"
	"log"

	"xmlviews"
	"xmlviews/internal/datagen"
)

func main() {
	doc := datagen.XMark(2, 2006)
	s := xmlviews.BuildSummary(doc)
	ns, n1 := s.Stats()
	fmt.Printf("XMark document: %d nodes; summary %d nodes, %d strong, %d one-to-one edges\n",
		doc.Size(), s.Size(), ns, n1)

	// Figure 1(c): V1 stores item IDs and their optional listitem IDs;
	// V2 stores item IDs and names.
	v1 := xmlviews.NewView("V1", xmlviews.MustParsePattern(
		`site(//item[id](?//listitem[id]))`))
	v2 := xmlviews.NewView("V2", xmlviews.MustParsePattern(
		`site(//item[id](/name[v]))`))

	// The intro query (simplified): every item with its name and its
	// listitems when present.
	q := xmlviews.MustParsePattern(`site(//item[id](/name[v] ?//listitem[id]))`)

	opts := xmlviews.DefaultRewriteOptions()
	opts.MaxScansPerPlan = 2
	opts.MaxResults = 3
	opts.MaxExplored = 2000
	res, err := xmlviews.RewriteWith(q, []*xmlviews.View{v1, v2}, s, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrewritings found: %d (views kept %d/%d)\n",
		len(res.Rewritings), res.ViewsKept, res.ViewsTotal)
	for i, p := range res.Rewritings {
		fmt.Printf("  %d: %s\n", i+1, p)
		if i == 2 {
			break
		}
	}
	if len(res.Rewritings) == 0 {
		log.Fatal("expected a V1 ⋈ V2 rewriting")
	}

	store := xmlviews.NewStore(doc, []*xmlviews.View{v1, v2})
	out, err := xmlviews.Execute(res.Rewritings[0], store)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplan result: %d rows; first rows:\n", out.Rel.Len())
	sorted := out.Rel.Sorted()
	for i, row := range sorted.Rows {
		if i == 5 {
			break
		}
		fmt.Println(" ", row[0].Render(), "|", row[1].Render(), "|", row[2].Render())
	}

	// Summary-based optimization: every generated item has a description
	// (strong edge), so a view without the description condition still
	// rewrites a query requiring one.
	q2 := xmlviews.MustParsePattern(`site(//item[id](/name[v] /description))`)
	opts2 := xmlviews.DefaultRewriteOptions()
	opts2.FirstOnly = true
	res2, err := xmlviews.RewriteWith(q2, []*xmlviews.View{v2}, s, opts2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstrong-edge optimization: query with /description condition rewritten by V2 alone: %v\n",
		len(res2.Rewritings) > 0)
}
