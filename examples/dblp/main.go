// DBLP: bibliography scenario on the DBLP-like corpus — containment with
// value predicates (Section 4.2), union containment, and rewriting with a
// union of views (Algorithm 1, lines 13-14).
package main

import (
	"fmt"
	"log"

	"xmlviews"
	"xmlviews/internal/datagen"
)

func main() {
	doc := datagen.DBLP(6, 42, true)
	s := xmlviews.BuildSummary(doc)
	fmt.Printf("DBLP document: %d nodes; summary %d nodes\n", doc.Size(), s.Size())

	// Decorated containment: 1998 papers are covered by the union of
	// pre-2000 and post-1995 views, but by neither alone.
	q98 := xmlviews.MustParsePattern(`dblp(/article[id](/year{v=1998}))`)
	old := xmlviews.MustParsePattern(`dblp(/article[id](/year{v<2000}))`)
	recent := xmlviews.MustParsePattern(`dblp(/article[id](/year{v>2002}))`)
	ok, err := xmlviews.ContainedInUnion(q98, []*xmlviews.Pattern{old, recent}, s)
	if err != nil {
		log.Fatal(err)
	}
	alone, err := xmlviews.Contained(q98, recent, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n1998 articles ⊆ (pre-2000 ∪ post-2002): %v; ⊆ post-2002 alone: %v\n", ok, alone)

	// Rewriting with a union: publications of any kind, covered by one
	// view per kind.
	q := xmlviews.MustParsePattern(`dblp(/*[id](/title[v]))`)
	var views []*xmlviews.View
	for _, kind := range []string{"article", "inproceedings", "proceedings", "book",
		"incollection", "phdthesis", "mastersthesis", "www"} {
		views = append(views, xmlviews.NewView("v_"+kind,
			xmlviews.MustParsePattern(`dblp(/`+kind+`[id](/title[v]))`)))
	}
	res, err := xmlviews.Rewrite(q, views, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrewritings for the all-kinds query: %d\n", len(res.Rewritings))
	if len(res.Rewritings) > 0 {
		fmt.Println("plan:", res.Rewritings[0])
		store := xmlviews.NewStore(doc, views)
		out, err := xmlviews.Execute(res.Rewritings[0], store)
		if err != nil {
			log.Fatal(err)
		}
		direct := xmlviews.EvalPattern(q, doc)
		fmt.Printf("plan rows: %d; direct evaluation rows: %d\n", out.Rel.Len(), direct.Len())
	}
}
