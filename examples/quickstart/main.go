// Quickstart: parse a document, build its summary, define a materialized
// view, rewrite a query over it, and execute the plan — the full pipeline
// of the paper in ~60 lines.
package main

import (
	"fmt"
	"log"

	"xmlviews"
)

const catalog = `<site>
  <regions><asia>
    <item id="i1"><name>fountain pen</name><price>30</price></item>
    <item id="i2"><name>ink bottle</name><price>8</price></item>
    <item id="i3"><name>gold nib</name><price>120</price></item>
  </asia></regions>
</site>`

func main() {
	doc, err := xmlviews.ParseXMLString(catalog)
	if err != nil {
		log.Fatal(err)
	}
	s := xmlviews.BuildSummary(doc)
	fmt.Printf("summary: %d nodes (paths), %s\n", s.Size(), s)

	// The view stores every item with its name and price.
	v := xmlviews.NewView("items",
		xmlviews.MustParsePattern(`site(//item[id](/name[v] /price[v]))`))

	// The query asks for names of items above a price; the rewriter must
	// discover that the view suffices, adding a selection.
	q := xmlviews.MustParsePattern(`site(//item[id](/name[v] /price{v>20}))`)

	res, err := xmlviews.Rewrite(q, []*xmlviews.View{v}, s)
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Rewritings) == 0 {
		log.Fatal("no rewriting found")
	}
	fmt.Println("rewriting:", res.Rewritings[0])

	store := xmlviews.NewStore(doc, []*xmlviews.View{v})
	out, err := xmlviews.Execute(res.Rewritings[0], store)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out.Rel.Sorted())

	// Cross-check against direct evaluation on the document.
	direct := xmlviews.EvalPattern(q, doc)
	fmt.Printf("direct evaluation returns %d rows — plan returned %d\n",
		direct.Len(), out.Rel.Len())
}
