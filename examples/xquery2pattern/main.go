// XQuery-to-pattern: translates the paper's Section 1 XQuery into an
// extended tree pattern, shows its canonical model under the XMark
// summary, and runs the containment reasoning the introduction walks
// through (the "summary-based rewriting" observations).
package main

import (
	"fmt"
	"log"

	"xmlviews"
	"xmlviews/internal/datagen"
)

const introQuery = `
for $x in doc("XMark.xml")//item[//mail] return
  <res> {$x/name/text(),
         for $y in $x//listitem return <key> {$y//keyword} </key>} </res>`

func main() {
	q, err := xmlviews.TranslateXQuery(introQuery, "site")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("XQuery:", introQuery)
	fmt.Println("\ntranslated pattern:", q)

	doc := datagen.XMark(4, 7)
	s := xmlviews.BuildSummary(doc)
	model, err := xmlviews.CanonicalModel(q, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncanonical model under the XMark summary (|S|=%d): %d trees\n",
		s.Size(), len(model))

	// Observation 2 of the introduction: every /regions//item//keyword is
	// a descendant of some listitem, so keyword data is reachable through
	// listitem content. The containment engine proves it.
	kw := xmlviews.MustParsePattern(`site(/regions(//item(//keyword[id])))`)
	viaListitem := xmlviews.MustParsePattern(`site(/regions(//item(//listitem(//keyword[id]))))`)
	ok, err := xmlviews.Equivalent(kw, viaListitem, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nall item keywords reachable via listitems: %v\n", ok)

	// Observation 3: /regions//item//listitem and
	// /regions//*/description/parlist/listitem deliver the same data — the
	// Dataguide proves what the recursive DTD cannot.
	li1 := xmlviews.MustParsePattern(`site(/regions(//item(//listitem[id])))`)
	li2 := xmlviews.MustParsePattern(`site(/regions(//*(/description/parlist/listitem[id])))`)
	eq, err := xmlviews.Equivalent(li1, li2, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("listitem paths equivalent under the Dataguide: %v\n", eq)

	// Direct evaluation of the translated query on the document.
	rel := xmlviews.EvalPattern(q, doc)
	fmt.Printf("\nquery result: %d items\n", rel.Len())
}
