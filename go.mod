module xmlviews

go 1.21
