// Package algebra executes the logical plans produced by the rewriting
// algorithm over materialized views (Section 3.2 operators plus the
// Section 4.6 extensions): view scans, ID joins, structural joins (both
// stack-based and nested-loop), selections, projections, unions, and the
// derived-view primitives (content navigation, virtual ID computation).
//
// Execution is flat: every plan slot contributes one column block
// (s<k>.id, s<k>.l, s<k>.v, s<k>.c); nesting sequences are carried as
// metadata and applied when rendering the final result.
package algebra

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"

	"xmlviews/internal/core"
	"xmlviews/internal/nodeid"
	"xmlviews/internal/nrel"
	"xmlviews/internal/predicate"
	"xmlviews/internal/view"
	"xmlviews/internal/xmltree"
)

// Result is an executed plan: a flat relation plus per-slot schema.
type Result struct {
	Rel   *nrel.Relation
	Slots []core.PlanSlot
}

// Options tunes execution.
type Options struct {
	// NestedLoopJoins forces nested-loop structural joins instead of the
	// stack-based merge (used by the join ablation benchmark).
	NestedLoopJoins bool
	// Workers sets the number of goroutines for the hash-join build and
	// probe phases: 0 or 1 runs sequentially, n > 1 uses n workers, and
	// any negative value uses runtime.GOMAXPROCS(0). Parallel and
	// sequential execution produce identical results (row order included).
	Workers int
	// Ctx optionally cancels execution: it is checked at every operator
	// boundary and periodically inside scan and join loops (build and
	// probe phases included), so an abandoned request stops burning CPU
	// mid-plan; an in-progress sort still completes before the next
	// poll. A nil context never cancels.
	Ctx context.Context
	// NoVectorize disables the vectorized kernels (selection on dictionary
	// codes, zone-map block skipping), forcing row-at-a-time execution
	// everywhere. Used by the equivalence tests and the before/after
	// benchmarks; both paths produce byte-identical results.
	NoVectorize bool
	// Stats, when non-nil, accumulates vectorized-path counters for this
	// execution (see ExecStats). The executor writes it single-threadedly;
	// callers must not share one ExecStats across concurrent executions.
	Stats *ExecStats
}

// effectiveWorkers resolves the Workers knob to a concrete worker count.
func (o Options) effectiveWorkers() int {
	switch {
	case o.Workers < 0:
		return runtime.GOMAXPROCS(0)
	case o.Workers == 0:
		return 1
	}
	return o.Workers
}

// Execute runs a plan against the store.
func Execute(p *core.Plan, st *view.Store) (*Result, error) {
	return ExecuteWith(p, st, Options{})
}

// ExecuteWith runs a plan with explicit options.
func ExecuteWith(p *core.Plan, st *view.Store, opts Options) (*Result, error) {
	ex := &executor{st: st, opts: opts}
	res, err := ex.run(p)
	if err != nil {
		return nil, err
	}
	res.Rel = res.Rel.Distinct()
	return res, nil
}

type executor struct {
	st   *view.Store
	opts Options
}

// cancelCheckEvery bounds how many rows a loop processes between context
// polls.
const cancelCheckEvery = 4096

// cancelled returns the context's error once the caller has gone away.
func (ex *executor) cancelled() error {
	if ex.opts.Ctx == nil {
		return nil
	}
	select {
	case <-ex.opts.Ctx.Done():
		return ex.opts.Ctx.Err()
	default:
		return nil
	}
}

func (ex *executor) run(p *core.Plan) (*Result, error) {
	if err := ex.cancelled(); err != nil {
		return nil, err
	}
	switch p.Op {
	case core.OpScan:
		return ex.scan(p.View)
	case core.OpJoin:
		return ex.join(p)
	case core.OpUnion:
		return ex.union(p)
	case core.OpProject:
		return ex.project(p)
	case core.OpSelectLabel, core.OpSelectValue:
		// Selection chains over a plain view scan run vectorized on the
		// view's columnar blocks when the store can serve them.
		if res, ok, err := ex.vectorSelect(p); ok || err != nil {
			return res, err
		}
		if p.Op == core.OpSelectLabel {
			return ex.selectLabel(p)
		}
		return ex.selectValue(p)
	case core.OpUnnest, core.OpGroupBy:
		// Flat execution: nesting is output formatting; tuples unchanged.
		return ex.run(p.Input)
	}
	return nil, fmt.Errorf("algebra: unknown operator %d", p.Op)
}

// scan materializes a view: base views from the store, navigation views by
// navigating inside stored content, then virtual ID columns are computed
// from stored IDs (navfID).
func (ex *executor) scan(v *core.View) (*Result, error) {
	var rel *nrel.Relation
	if v.Nav != nil {
		var err error
		rel, err = ex.scanNav(v)
		if err != nil {
			return nil, err
		}
	} else {
		rel = ex.st.Relation(v)
	}
	res := &Result{Rel: rel, Slots: core.Scan(v).OutSlots()}
	if len(v.VirtualSlots) > 0 {
		// The store's extent is shared (and may be served to concurrent
		// executors); derive virtual columns on a private copy. A nav
		// scan's relation is freshly built above and needs no copy.
		if v.Nav == nil {
			cloned, err := ex.cloneForVirtualIDs(rel, len(v.VirtualSlots))
			if err != nil {
				return nil, err
			}
			res.Rel = cloned
		}
		if err := ex.fillVirtualIDs(res, v); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// cloneForVirtualIDs copies the relation's header and tuples (values are
// shared) with room for the derived ID columns, so fillVirtualIDs never
// writes into the store's cached extent.
func (ex *executor) cloneForVirtualIDs(rel *nrel.Relation, extra int) (*nrel.Relation, error) {
	out := nrel.NewRelation()
	out.Cols = append(make([]string, 0, len(rel.Cols)+extra), rel.Cols...)
	out.Rows = make([]nrel.Tuple, len(rel.Rows))
	for i, row := range rel.Rows {
		if i%cancelCheckEvery == 0 {
			if err := ex.cancelled(); err != nil {
				return nil, err
			}
		}
		out.Rows[i] = append(make(nrel.Tuple, 0, len(row)+extra), row...)
	}
	return out, nil
}

// scanNav evaluates a navigation view: for each base row, navigate the
// relative path inside the stored content and emit (anchor id, target id,
// target value) rows. This is how the C-unfolding of Section 4.6 executes
// without touching the document.
func (ex *executor) scanNav(v *core.View) (*nrel.Relation, error) {
	spec := v.Nav
	base := ex.st.Relation(spec.Base)
	idCol := base.ColIndex(view.SlotCol(spec.BaseSlot, "id"))
	cCol := base.ColIndex(view.SlotCol(spec.BaseSlot, "c"))
	if idCol < 0 || cCol < 0 {
		return nil, fmt.Errorf("algebra: navigation base %s lacks id/c columns", spec.Base.Name)
	}
	// The nav pattern's slots: [anchor(id), target(id,v)].
	k := len(v.Pattern.Returns())
	out := nrel.NewRelation(
		view.SlotCol(k-2, "id"),
		view.SlotCol(k-1, "id"), view.SlotCol(k-1, "v"),
	)
	seen := map[string]bool{}
	for i, row := range base.Rows {
		if i%cancelCheckEvery == 0 {
			if err := ex.cancelled(); err != nil {
				return nil, err
			}
		}
		anchorID := row[idCol]
		content := row[cCol]
		if anchorID.IsNull() || content.IsNull() || content.Content == nil {
			continue
		}
		targets := navigate(content.Content.Root, spec.RelPath)
		for _, tnode := range targets {
			val := nrel.Null()
			if tnode.Value != "" {
				val = nrel.String(tnode.Value)
			}
			r := nrel.Tuple{anchorID, nrel.ID(tnode.ID), val}
			key := anchorID.Render() + "|" + tnode.ID.String()
			if !seen[key] {
				seen[key] = true
				out.Append(r)
			}
		}
	}
	return out, nil
}

// navigate returns the nodes reached by following the child-label path
// from root (exclusive).
func navigate(root *xmltree.Node, path []string) []*xmltree.Node {
	frontier := []*xmltree.Node{root}
	for _, label := range path {
		var next []*xmltree.Node
		for _, n := range frontier {
			for _, c := range n.Children {
				if c.Label == label {
					next = append(next, c)
				}
			}
		}
		frontier = next
		if len(frontier) == 0 {
			return nil
		}
	}
	return frontier
}

// fillVirtualIDs computes derived ID columns by parent-ID steps.
func (ex *executor) fillVirtualIDs(res *Result, v *core.View) error {
	// Resolve in dependency order: a virtual slot may derive from another
	// virtual slot; iterate until all are filled. Each round tries the
	// slots in ascending order so inserted columns land at the same
	// positions on every run — the column list is rendered verbatim into
	// the /query response, so it must not inherit map iteration order.
	pending := map[int]core.VirtualID{}
	for k, vid := range v.VirtualSlots {
		pending[k] = vid
	}
	slots := make([]int, 0, len(pending))
	for k := range pending {
		slots = append(slots, k)
	}
	sort.Ints(slots)
	cols := res.Rel.Cols
	colOf := func(k int) int { return res.Rel.ColIndex(view.SlotCol(k, "id")) }
	for len(pending) > 0 {
		progress := false
		for _, k := range slots {
			vid, ok := pending[k]
			if !ok {
				continue
			}
			if _, stillPending := pending[vid.FromSlot]; stillPending {
				continue
			}
			src := colOf(vid.FromSlot)
			if src < 0 {
				return fmt.Errorf("algebra: virtual slot %d derives from slot %d without id column", k, vid.FromSlot)
			}
			dst := colOf(k)
			if dst < 0 {
				// Insert the derived column.
				res.Rel.Cols = append(cols[:0:0], cols...)
				res.Rel.Cols = append(res.Rel.Cols, view.SlotCol(k, "id"))
				for i, row := range res.Rel.Rows {
					if i%cancelCheckEvery == 0 {
						if err := ex.cancelled(); err != nil {
							return err
						}
					}
					res.Rel.Rows[i] = append(row, nrel.Null())
				}
				dst = len(res.Rel.Cols) - 1
				cols = res.Rel.Cols
			}
			for i, row := range res.Rel.Rows {
				if i%cancelCheckEvery == 0 {
					if err := ex.cancelled(); err != nil {
						return err
					}
				}
				id := row[src]
				if id.IsNull() {
					row[dst] = nrel.Null()
					continue
				}
				derived := id.ID
				for up := 0; up < vid.Up; up++ {
					derived = derived.Parent()
				}
				row[dst] = nrel.ID(derived)
			}
			delete(pending, k)
			progress = true
		}
		if !progress {
			return fmt.Errorf("algebra: cyclic virtual ID derivation")
		}
	}
	return nil
}

func (ex *executor) join(p *core.Plan) (*Result, error) {
	left, err := ex.run(p.Left)
	if err != nil {
		return nil, err
	}
	right, err := ex.joinRight(p, left)
	if err != nil {
		return nil, err
	}
	lid := left.Rel.ColIndex(view.SlotCol(p.LeftSlot, "id"))
	rid := right.Rel.ColIndex(view.SlotCol(p.RightSlot, "id"))
	if lid < 0 || rid < 0 {
		return nil, fmt.Errorf("algebra: join slots lack id columns (%d,%d)", p.LeftSlot, p.RightSlot)
	}
	// stop lets the kernels bail out of their pair-matching loops when the
	// caller is gone; the cancellation check after the kernel turns the
	// partial output into an error before anything is assembled.
	stop := func() bool { return ex.cancelled() != nil }
	if ex.opts.Ctx == nil {
		stop = nil
	}
	var rows []joinedRow
	switch {
	case p.Kind == core.JoinID:
		if w := ex.opts.effectiveWorkers(); w > 1 {
			rows = parallelHashJoin(left.Rel, lid, right.Rel, rid, w, stop)
		} else {
			rows = hashJoin(left.Rel, lid, right.Rel, rid, stop)
		}
	case ex.opts.NestedLoopJoins:
		rows = nestedLoopStructuralJoin(left.Rel, lid, right.Rel, rid, p.Kind == core.JoinParent, stop)
	default:
		rows = stackStructuralJoin(left.Rel, lid, right.Rel, rid, p.Kind == core.JoinParent, stop)
	}
	if p.Outer {
		rows = padOuter(rows, left.Rel, len(right.Rel.Cols), stop)
	}
	if err := ex.cancelled(); err != nil {
		return nil, err
	}
	// Build the output schema: left slots then right slots, renamed.
	slots := append(append([]core.PlanSlot{}, left.Slots...), right.Slots...)
	out := nrel.NewRelation()
	out.Cols = append(out.Cols, left.Rel.Cols...)
	offset := len(left.Slots)
	for _, c := range right.Rel.Cols {
		out.Cols = append(out.Cols, shiftSlotCol(c, offset))
	}
	for i, jr := range rows {
		if i%cancelCheckEvery == 0 {
			if err := ex.cancelled(); err != nil {
				return nil, err
			}
		}
		row := make(nrel.Tuple, 0, len(jr.left)+len(jr.right))
		row = append(row, jr.left...)
		row = append(row, jr.right...)
		out.Append(row)
	}
	return &Result{Rel: out, Slots: slots}, nil
}

type joinedRow struct {
	left, right nrel.Tuple
}

// padOuter appends, for every left row without a match, a row padded with
// ⊥ on the right (left outer join semantics). Like the join kernels it
// may return partial output when stop fires; the caller's cancellation
// check discards it.
func padOuter(rows []joinedRow, left *nrel.Relation, rightWidth int, stop func() bool) []joinedRow {
	seen := map[string]bool{}
	for i, jr := range rows {
		if shouldStop(stop, i) {
			return rows
		}
		seen[renderKey(jr.left)] = true
	}
	nulls := make(nrel.Tuple, rightWidth)
	for i := range nulls {
		nulls[i] = nrel.Null()
	}
	for i, lrow := range left.Rows {
		if shouldStop(stop, i) {
			return rows
		}
		if !seen[renderKey(lrow)] {
			rows = append(rows, joinedRow{lrow, nulls})
		}
	}
	return rows
}

func renderKey(row nrel.Tuple) string {
	var b strings.Builder
	for _, v := range row {
		b.WriteString(v.Render())
		b.WriteByte(0)
	}
	return b.String()
}

// shiftSlotCol renames s<k>.<attr> to s<k+offset>.<attr>.
func shiftSlotCol(col string, offset int) string {
	var k int
	var attr string
	if _, err := fmt.Sscanf(col, "s%d.%s", &k, &attr); err != nil {
		return col
	}
	return view.SlotCol(k+offset, attr)
}

// shouldStop polls an optional cancellation probe every few thousand
// outer-loop iterations; kernels return their partial output on true and
// the caller converts that into an error.
func shouldStop(stop func() bool, i int) bool {
	return stop != nil && i%cancelCheckEvery == 0 && stop()
}

func hashJoin(l *nrel.Relation, lid int, r *nrel.Relation, rid int, stop func() bool) []joinedRow {
	index := map[string][]nrel.Tuple{}
	for i, row := range r.Rows {
		if shouldStop(stop, i) {
			return nil
		}
		v := row[rid]
		if v.IsNull() {
			continue
		}
		index[v.ID.String()] = append(index[v.ID.String()], row)
	}
	var out []joinedRow
	for i, lrow := range l.Rows {
		if shouldStop(stop, i) {
			return out
		}
		v := lrow[lid]
		if v.IsNull() {
			continue
		}
		for _, rrow := range index[v.ID.String()] {
			out = append(out, joinedRow{lrow, rrow})
		}
	}
	return out
}

// nestedLoopStructuralJoin is the quadratic baseline for the ablation.
func nestedLoopStructuralJoin(l *nrel.Relation, lid int, r *nrel.Relation, rid int, parentOnly bool, stop func() bool) []joinedRow {
	var out []joinedRow
	for _, lrow := range l.Rows {
		// Each outer iteration scans all of r; poll every time.
		if stop != nil && stop() {
			return out
		}
		a := lrow[lid]
		if a.IsNull() {
			continue
		}
		for _, rrow := range r.Rows {
			d := rrow[rid]
			if d.IsNull() {
				continue
			}
			if parentOnly {
				if a.ID.IsParentOf(d.ID) {
					out = append(out, joinedRow{lrow, rrow})
				}
			} else if a.ID.IsAncestorOf(d.ID) {
				out = append(out, joinedRow{lrow, rrow})
			}
		}
	}
	return out
}

// stackStructuralJoin implements the Stack-Tree-Desc structural join of
// Al-Khalifa et al. [reference 1 of the paper]: both inputs sorted in
// document order, a stack of pending ancestors, each pair emitted exactly
// once. O(|l| + |r| + |output|).
func stackStructuralJoin(l *nrel.Relation, lid int, r *nrel.Relation, rid int, parentOnly bool, stop func() bool) []joinedRow {
	anc := sortedByID(l.Rows, lid, stop)
	// An in-progress sort always completes, but poll between the two so
	// an abandoned request pays for at most one of them.
	if stop != nil && stop() {
		return nil
	}
	desc := sortedByID(r.Rows, rid, stop)
	var out []joinedRow
	polled := 0
	// Stack entries group ancestor rows sharing the same ID (duplicates
	// arise after prior joins); the stack always holds a root-to-leaf
	// ancestor chain.
	type stackEntry struct {
		id   nodeid.ID
		rows []nrel.Tuple
	}
	var stack []stackEntry
	ai := 0
	for di := 0; di < len(desc); {
		polled++
		if shouldStop(stop, polled) {
			return out
		}
		did := desc[di][rid].ID
		if ai < len(anc) && anc[ai][lid].ID.Compare(did) <= 0 {
			// The next ancestor precedes the next descendant: push it.
			aid := anc[ai][lid].ID
			for len(stack) > 0 {
				top := stack[len(stack)-1]
				if top.id.Equal(aid) || top.id.IsAncestorOf(aid) {
					break
				}
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 && stack[len(stack)-1].id.Equal(aid) {
				stack[len(stack)-1].rows = append(stack[len(stack)-1].rows, anc[ai])
			} else {
				stack = append(stack, stackEntry{id: aid, rows: []nrel.Tuple{anc[ai]}})
			}
			ai++
			continue
		}
		// Emit pairs for the descendant against the current chain.
		for len(stack) > 0 && !stack[len(stack)-1].id.IsAncestorOf(did) {
			stack = stack[:len(stack)-1]
		}
		for _, se := range stack {
			if parentOnly && !se.id.IsParentOf(did) {
				continue
			}
			for _, arow := range se.rows {
				out = append(out, joinedRow{arow, desc[di]})
			}
		}
		di++
	}
	return out
}

func sortedByID(rows []nrel.Tuple, col int, stop func() bool) []nrel.Tuple {
	out := make([]nrel.Tuple, 0, len(rows))
	for i, r := range rows {
		if shouldStop(stop, i) {
			return out
		}
		if !r[col].IsNull() {
			out = append(out, r)
		}
	}
	sortTuples(out, col)
	return out
}

// sortTuples orders rows by document order on the given ID column, keeping
// the input order of equal IDs (duplicates arise after prior joins).
func sortTuples(rows []nrel.Tuple, col int) {
	sort.SliceStable(rows, func(i, j int) bool {
		return rows[i][col].ID.Compare(rows[j][col].ID) < 0
	})
}

func (ex *executor) union(p *core.Plan) (*Result, error) {
	var out *Result
	for _, part := range p.Parts {
		r, err := ex.run(part)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = r
			continue
		}
		if len(r.Rel.Cols) != len(out.Rel.Cols) {
			return nil, fmt.Errorf("algebra: union schema mismatch")
		}
		out.Rel.Rows = append(out.Rel.Rows, r.Rel.Rows...)
	}
	if out == nil {
		return nil, fmt.Errorf("algebra: empty union")
	}
	return out, nil
}

func (ex *executor) project(p *core.Plan) (*Result, error) {
	in, err := ex.run(p.Input)
	if err != nil {
		return nil, err
	}
	out := nrel.NewRelation()
	var colIdx []int
	slots := make([]core.PlanSlot, len(p.Keep))
	for newK, oldK := range p.Keep {
		slots[newK] = in.Slots[oldK]
		for _, attr := range []string{"id", "l", "v", "c"} {
			if ci := in.Rel.ColIndex(view.SlotCol(oldK, attr)); ci >= 0 {
				colIdx = append(colIdx, ci)
				out.Cols = append(out.Cols, view.SlotCol(newK, attr))
			}
		}
	}
	for i, row := range in.Rel.Rows {
		if i%cancelCheckEvery == 0 {
			if err := ex.cancelled(); err != nil {
				return nil, err
			}
		}
		nr := make(nrel.Tuple, len(colIdx))
		for j, ci := range colIdx {
			nr[j] = row[ci]
		}
		out.Append(nr)
	}
	return &Result{Rel: out, Slots: slots}, nil
}

func (ex *executor) selectLabel(p *core.Plan) (*Result, error) {
	in, err := ex.run(p.Input)
	if err != nil {
		return nil, err
	}
	ci := in.Rel.ColIndex(view.SlotCol(p.Slot, "l"))
	if ci < 0 {
		return nil, fmt.Errorf("algebra: σL on slot %d without label column", p.Slot)
	}
	out := nrel.NewRelation(in.Rel.Cols...)
	for i, row := range in.Rel.Rows {
		if i%cancelCheckEvery == 0 {
			if err := ex.cancelled(); err != nil {
				return nil, err
			}
		}
		if row[ci].Kind == nrel.KindString && row[ci].Str == p.Label {
			out.Append(row)
		}
	}
	return &Result{Rel: out, Slots: in.Slots}, nil
}

func (ex *executor) selectValue(p *core.Plan) (*Result, error) {
	in, err := ex.run(p.Input)
	if err != nil {
		return nil, err
	}
	ci := in.Rel.ColIndex(view.SlotCol(p.Slot, "v"))
	if ci < 0 {
		return nil, fmt.Errorf("algebra: σV on slot %d without value column", p.Slot)
	}
	out := nrel.NewRelation(in.Rel.Cols...)
	for i, row := range in.Rel.Rows {
		if i%cancelCheckEvery == 0 {
			if err := ex.cancelled(); err != nil {
				return nil, err
			}
		}
		if row[ci].Kind == nrel.KindString && p.Pred.Eval(predicate.ParseAtom(row[ci].Str)) {
			out.Append(row)
		}
	}
	return &Result{Rel: out, Slots: in.Slots}, nil
}
