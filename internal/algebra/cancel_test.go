package algebra

import (
	"context"
	"errors"
	"testing"

	"xmlviews/internal/core"
	"xmlviews/internal/pattern"
	"xmlviews/internal/view"
	"xmlviews/internal/xmltree"
)

func TestExecuteCancelled(t *testing.T) {
	doc := xmltree.MustParseParen(`site(item(name "pen") item(name "ink"))`)
	v := &core.View{Name: "v1", Pattern: pattern.MustParse(`site(/item[id](/name[v]))`), DerivableParentIDs: true}
	st := view.NewStore(doc, []*core.View{v})
	plan := core.Scan(v)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExecuteWith(plan, st, Options{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled execution returned %v, want context.Canceled", err)
	}
	// A live context leaves execution untouched.
	res, err := ExecuteWith(plan, st, Options{Ctx: context.Background()})
	if err != nil || res.Rel.Len() != 2 {
		t.Fatalf("live context must not disturb execution: %v", err)
	}
}
