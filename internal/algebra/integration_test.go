package algebra

import (
	"testing"

	"xmlviews/internal/core"
	"xmlviews/internal/pattern"
	"xmlviews/internal/summary"
	"xmlviews/internal/view"
	"xmlviews/internal/xmltree"
)

// queryColumns lists the attribute columns of the query's slots in order.
func queryColumns(q *pattern.Pattern) []string {
	var cols []string
	for k, rn := range q.Returns() {
		for _, attr := range []string{"id", "l", "v", "c"} {
			var mask pattern.Attrs
			switch attr {
			case "id":
				mask = pattern.AttrID
			case "l":
				mask = pattern.AttrLabel
			case "v":
				mask = pattern.AttrValue
			case "c":
				mask = pattern.AttrContent
			}
			if rn.Attrs.Has(mask) {
				cols = append(cols, view.SlotCol(k, attr))
			}
		}
	}
	return cols
}

// checkScenario rewrites q over the views, executes every rewriting on the
// document, and compares with direct query evaluation (flattened).
func checkScenario(t *testing.T, docSrc, qSrc string, views ...*core.View) int {
	t.Helper()
	doc := xmltree.MustParseParen(docSrc)
	s := summary.Build(doc)
	q := pattern.MustParse(qSrc)

	res, err := core.Rewrite(q, views, s, core.DefaultRewriteOptions())
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	if len(res.Rewritings) == 0 {
		t.Fatalf("no rewritings for %s", qSrc)
	}

	want := view.MaterializeFlat(&core.View{Name: "q", Pattern: q}, doc).Project(queryColumns(q)...)
	st := view.NewStore(doc, baseViews(views))
	for _, plan := range res.Rewritings {
		got, err := Execute(plan, st)
		if err != nil {
			t.Fatalf("Execute(%s): %v", plan, err)
		}
		gotProj := got.Rel.Project(queryColumns(q)...)
		if !gotProj.EqualAsSet(want) {
			t.Errorf("plan %s result mismatch\n got:\n%s\nwant:\n%s", plan, gotProj.Sorted(), want.Sorted())
		}
	}
	return len(res.Rewritings)
}

// baseViews materializes only the user-defined views; derived views are
// computed by the executor.
func baseViews(views []*core.View) []*core.View {
	out := make([]*core.View, len(views))
	copy(out, views)
	return out
}

func v(name, pat string) *core.View {
	return &core.View{Name: name, Pattern: pattern.MustParse(pat), DerivableParentIDs: true}
}

func TestEndToEndIdentity(t *testing.T) {
	checkScenario(t,
		`site(item(name "pen" price "3") item(name "ink" price "7"))`,
		`site(/item[id](/name[v]))`,
		v("v1", `site(/item[id](/name[v]))`))
}

func TestEndToEndLabelSelection(t *testing.T) {
	checkScenario(t,
		`a(b "1" c "2" b "3")`,
		`a(/b[id])`,
		v("all", `a(/*[id,l])`))
}

func TestEndToEndValueSelection(t *testing.T) {
	checkScenario(t,
		`a(b "1" b "7" b "9")`,
		`a(/b[id]{v>5})`,
		v("vb", `a(/b[id,v])`))
}

func TestEndToEndIDJoin(t *testing.T) {
	checkScenario(t,
		`a(b(c "1" d "x") b(c "2" d "y") b(c "3"))`,
		`a(//b[id](/c[v] /d[v]))`,
		v("vc", `a(//b[id](/c[v]))`),
		v("vd", `a(//b[id](/d[v]))`))
}

func TestEndToEndStructuralJoin(t *testing.T) {
	checkScenario(t,
		`r(a(b "1" b "2") a(b "3") a)`,
		`r(//a[id](//b[id,v]))`,
		v("va", `r(//a[id])`),
		v("vb", `r(//b[id,v])`))
}

func TestEndToEndOptional(t *testing.T) {
	checkScenario(t,
		`site(item(name "pen" mail "m1") item(name "ink"))`,
		`site(/item[id](?/mail[v]))`,
		v("v1", `site(/item[id](?/mail[v]))`))
}

func TestEndToEndVirtualID(t *testing.T) {
	checkScenario(t,
		`a(b(c "1") b(c "2"))`,
		`a(/b[id](/c[v]))`,
		v("vc", `a(/b(/c[id,v]))`))
}

func TestEndToEndNavigation(t *testing.T) {
	checkScenario(t,
		`a(b(d "x" d "y") b(d "z") b)`,
		`a(//b[id](/d[v]))`,
		v("vb", `a(//b[id,c])`))
}

func TestEndToEndUnion(t *testing.T) {
	checkScenario(t,
		`a(b "1" c "2" b "3")`,
		`a(/*[id,v])`,
		v("vb", `a(/b[id,v])`),
		v("vc", `a(/c[id,v])`))
}

// The paper's Figure 5 scenario end to end: the only rewriting is a join
// whose result is not expressible as a single pattern.
func TestEndToEndFigure5(t *testing.T) {
	checkScenario(t,
		`r(a(b "1" c(b "2")) c(b "3" a(b "4")))`,
		`r(//*(//*(//b[id,v])))`,
		v("p1", `r(//a(//b[id,v]))`),
		v("p2", `r(//c(//b[id,v]))`))
}

// The running example of Section 1, scaled down: V1 stores item IDs with
// optional listitem content; V2 stores item names. The query needs both,
// combined by an ID join.
func TestEndToEndRunningExample(t *testing.T) {
	doc := `site(regions(asia(
		item(name "pen" description(parlist(listitem(keyword "Columbus") listitem(text "steel"))) mailbox(mail "m1"))
		item(name "ink" description(parlist(listitem(keyword "Dickens"))) mailbox(mail "m2"))
		item(name "dry" description(parlist) mailbox(mail "m3")))))`
	checkScenario(t, doc,
		`site(//item[id](/name[v] ?//listitem[id]))`,
		v("V1", `site(//item[id](?//listitem[id]))`),
		v("V2", `site(//item[id](/name[v]))`))
}

func TestEndToEndNestedOutput(t *testing.T) {
	// Nested query: the flattened comparison still validates tuple content;
	// nesting metadata is carried on the plan slots.
	doc := `a(b "1" (c "x" c "y") b "2" (c "z"))`
	docT := xmltree.MustParseParen(doc)
	s := summary.Build(docT)
	q := pattern.MustParse(`a(/b[id](n/c[v]))`)
	res, err := core.Rewrite(q, []*core.View{
		v("vb", `a(/b[id])`),
		v("vcv", `a(//c[id,v])`),
	}, s, core.DefaultRewriteOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rewritings) == 0 {
		t.Fatal("no nested rewriting")
	}
	st := view.NewStore(docT, []*core.View{
		v("vb", `a(/b[id])`),
		v("vcv", `a(//c[id,v])`),
	})
	got, err := Execute(res.Rewritings[0], st)
	if err != nil {
		t.Fatal(err)
	}
	// Flat comparison against the flattened query.
	want := view.MaterializeFlat(&core.View{Name: "q", Pattern: q}, docT)
	cols := []string{view.SlotCol(0, "id"), view.SlotCol(1, "v")}
	if !got.Rel.Project(cols...).EqualAsSet(want.Project(cols...)) {
		t.Fatalf("nested plan mismatch\ngot %s\nwant %s",
			got.Rel.Project(cols...).Sorted(), want.Project(cols...).Sorted())
	}
}

func TestStructuralJoinAlgorithmsAgree(t *testing.T) {
	doc := xmltree.MustParseParen(
		`r(a(b "1" a(b "2" b "3") b "4") a(b "5") b "6")`)
	st := view.NewStore(doc, []*core.View{
		v("va", `r(//a[id])`),
		v("vb", `r(//b[id,v])`),
	})
	plan := core.NewJoin(core.JoinAncestor, false,
		core.Scan(v("va", `r(//a[id])`)), 0,
		core.Scan(v("vb", `r(//b[id,v])`)), 0)
	stack, err := ExecuteWith(plan, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	loop, err := ExecuteWith(plan, st, Options{NestedLoopJoins: true})
	if err != nil {
		t.Fatal(err)
	}
	if !stack.Rel.EqualAsSet(loop.Rel) {
		t.Fatalf("join algorithms disagree:\n%s\nvs\n%s", stack.Rel.Sorted(), loop.Rel.Sorted())
	}
	if stack.Rel.Len() == 0 {
		t.Fatal("expected join results")
	}
	// Parent join variant.
	pplan := core.NewJoin(core.JoinParent, false,
		core.Scan(v("va", `r(//a[id])`)), 0,
		core.Scan(v("vb", `r(//b[id,v])`)), 0)
	pstack, err := ExecuteWith(pplan, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ploop, err := ExecuteWith(pplan, st, Options{NestedLoopJoins: true})
	if err != nil {
		t.Fatal(err)
	}
	if !pstack.Rel.EqualAsSet(ploop.Rel) {
		t.Fatalf("parent join algorithms disagree")
	}
	if pstack.Rel.Len() >= stack.Rel.Len() {
		t.Fatal("parent join should be a strict subset of ancestor join here")
	}
}

func TestEndToEndOuterJoin(t *testing.T) {
	// The query's mail is optional, but the views store items and mails
	// separately: only an outer structural join can produce the ⊥ tuples.
	n := checkScenario(t,
		`site(item(name "pen" mail "m1") item(name "ink") item(name "dry" mail "m2"))`,
		`site(/item[id](?//mail[id,v]))`,
		v("vi", `site(//item[id])`),
		v("vm", `site(//mail[id,v])`))
	if n == 0 {
		t.Fatal("no outer join rewriting")
	}
}

func TestEndToEndOuterJoinChain(t *testing.T) {
	// Deeper chain on the right side: probe must be the exact child chain.
	checkScenario(t,
		`r(a(b(c "1")) a(b) a)`,
		`r(/a[id](?/b(/c[id,v])))`,
		v("va", `r(/a[id])`),
		v("vc", `r(/a/b/c[id,v])`))
}
