package algebra

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"xmlviews/internal/nrel"
	"xmlviews/internal/view"
)

// randomIDRelation builds a relation of n rows whose ID column at slot
// `slot` is drawn from a small pool (so joins produce many matches) and
// whose value column distinguishes physically distinct rows.
func randomIDRelation(slot, n int, r *rand.Rand) *nrel.Relation {
	rel := nrel.NewRelation(view.SlotCol(slot, "id"), view.SlotCol(slot, "v"))
	for i := 0; i < n; i++ {
		var row nrel.Tuple
		if r.Intn(20) == 0 {
			row = nrel.Tuple{nrel.Null(), nrel.String(fmt.Sprintf("v%d", i))}
		} else {
			id := nrel.ID([]uint32{1, uint32(r.Intn(40)), uint32(r.Intn(8))})
			row = nrel.Tuple{id, nrel.String(fmt.Sprintf("v%d", i))}
		}
		rel.Append(row)
	}
	return rel
}

func renderJoined(rows []joinedRow) string {
	var b strings.Builder
	for _, jr := range rows {
		b.WriteString(renderKey(jr.left))
		b.WriteByte('|')
		b.WriteString(renderKey(jr.right))
		b.WriteByte('\n')
	}
	return b.String()
}

// TestParallelHashJoinMatchesSequential asserts that the partitioned
// build / chunked probe join produces byte-identical output (rows and
// order) to the sequential hash join, across sizes and worker counts.
func TestParallelHashJoinMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, size := range []int{0, 1, 7, 100, 1337} {
		l := randomIDRelation(0, size, r)
		rr := randomIDRelation(0, size/2+1, r)
		want := renderJoined(hashJoin(l, 0, rr, 0, nil))
		for _, workers := range []int{2, 3, 8} {
			got := renderJoined(parallelHashJoin(l, 0, rr, 0, workers, nil))
			if got != want {
				t.Fatalf("size=%d workers=%d: parallel join diverged", size, workers)
			}
		}
	}
}

// TestParallelHashJoinConcurrentCallers is the -race check: several
// goroutines join the same shared relations concurrently.
func TestParallelHashJoinConcurrentCallers(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	l := randomIDRelation(0, 500, r)
	rr := randomIDRelation(0, 300, r)
	want := renderJoined(hashJoin(l, 0, rr, 0, nil))
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := range errs {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if got := renderJoined(parallelHashJoin(l, 0, rr, 0, 4, nil)); got != want {
				errs[g] = fmt.Errorf("goroutine %d diverged", g)
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestSortTuplesStable checks that document-order sorting keeps the input
// order of duplicate IDs (the stack structural join groups them).
func TestSortTuplesStable(t *testing.T) {
	rel := nrel.NewRelation(view.SlotCol(0, "id"), view.SlotCol(0, "v"))
	ids := [][]uint32{{1, 2}, {1, 1}, {1, 2}, {1}, {1, 1}, {1, 3}}
	for i, id := range ids {
		rel.Append(nrel.Tuple{nrel.ID(id), nrel.String(fmt.Sprintf("r%d", i))})
	}
	rows := append([]nrel.Tuple(nil), rel.Rows...)
	sortTuples(rows, 0)
	var got []string
	for _, row := range rows {
		got = append(got, row[1].Str)
	}
	want := []string{"r3", "r1", "r4", "r0", "r2", "r5"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("order = %v, want %v", got, want)
	}
}
