package algebra

import (
	"hash/maphash"
	"sync"

	"xmlviews/internal/nrel"
)

// Parallel ID hash join. The build side is partitioned by key hash so each
// worker owns a disjoint slice of the hash table (no locking, and per-key
// row lists keep build-side order because exactly one worker appends to
// them, scanning rows in order). The probe side is split into contiguous
// chunks whose outputs are concatenated in chunk order, so the joined rows
// come out in exactly the order the sequential hashJoin produces: probe
// row order, then build row order within a key.

var joinSeed = maphash.MakeSeed()

func parallelHashJoin(l *nrel.Relation, lid int, r *nrel.Relation, rid int, workers int, stop func() bool) []joinedRow {
	// Render build-side keys once, in parallel chunks, collecting the row
	// indices of each (chunk, partition) pair so the build workers below
	// each walk only their own partition's rows.
	rkeys := make([]string, len(r.Rows))
	chunkParts := make([][][]int32, numChunks(workers, len(r.Rows)))
	forChunks(workers, len(r.Rows), func(chunk, lo, hi int) {
		lists := make([][]int32, workers)
		for i := lo; i < hi; i++ {
			if shouldStop(stop, i-lo) {
				break
			}
			if v := r.Rows[i][rid]; !v.IsNull() {
				rkeys[i] = v.ID.String()
				p := maphash.String(joinSeed, rkeys[i]) % uint64(workers)
				lists[p] = append(lists[p], int32(i))
			}
		}
		chunkParts[chunk] = lists
	})

	// Partitioned build: worker w indexes the keys hashing to partition w,
	// visiting chunks in order so per-key row lists keep build-side order.
	parts := make([]map[string][]nrel.Tuple, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := map[string][]nrel.Tuple{}
			for _, lists := range chunkParts {
				for _, i := range lists[w] {
					m[rkeys[i]] = append(m[rkeys[i]], r.Rows[i])
				}
			}
			parts[w] = m
		}(w)
	}
	wg.Wait()

	// Chunked probe; chunk outputs concatenate in probe-row order.
	outs := make([][]joinedRow, numChunks(workers, len(l.Rows)))
	forChunks(workers, len(l.Rows), func(chunk, lo, hi int) {
		var rows []joinedRow
		for i, lrow := range l.Rows[lo:hi] {
			// Bail out of an abandoned probe; the caller discards the
			// partial output once it polls cancellation itself.
			if shouldStop(stop, i) {
				break
			}
			v := lrow[lid]
			if v.IsNull() {
				continue
			}
			k := v.ID.String()
			for _, rrow := range parts[int(maphash.String(joinSeed, k)%uint64(workers))][k] {
				rows = append(rows, joinedRow{lrow, rrow})
			}
		}
		outs[chunk] = rows
	})
	total := 0
	for _, rows := range outs {
		total += len(rows)
	}
	out := make([]joinedRow, 0, total)
	for _, rows := range outs {
		out = append(out, rows...)
	}
	return out
}

func numChunks(workers, n int) int {
	if n <= 0 {
		return 0
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return 1
	}
	size := (n + workers - 1) / workers
	return (n + size - 1) / size
}

// forChunks splits [0, n) into at most `workers` contiguous chunks and
// runs f(chunkIndex, lo, hi) on each concurrently.
func forChunks(workers, n int, f func(chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		f(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	size := (n + workers - 1) / workers
	chunk := 0
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(chunk, lo, hi int) {
			defer wg.Done()
			f(chunk, lo, hi)
		}(chunk, lo, hi)
		chunk++
	}
	wg.Wait()
}
