// Vectorized execution over columnar block handles (ROADMAP: batch-at-a-
// time execution directly over segments). Selection chains above a plain
// view scan run on dictionary codes: the predicate constant is translated
// into the column dictionary once, per-block zone maps skip blocks that
// cannot match, surviving blocks are filtered by integer compares, and the
// string/content columns are materialized only for surviving rows — by
// sharing the backing relation's tuples, so results are byte-identical to
// the row-at-a-time path. Structural joins use the same zone maps to skip
// descendant-side blocks outside the ancestors' ID range.

package algebra

import (
	"xmlviews/internal/core"
	"xmlviews/internal/nodeid"
	"xmlviews/internal/nrel"
	"xmlviews/internal/predicate"
	"xmlviews/internal/store"
	"xmlviews/internal/view"
)

// ExecStats, when attached to Options, accumulates what the vectorized
// path did during one execution; the serving layer turns it into metrics
// and the plan cache records which path ran. It is written by the single
// executor goroutine only.
type ExecStats struct {
	// VecSelectLabel and VecSelectValue count vectorized selection kernels
	// run (one per selection operator executed on dictionary codes).
	VecSelectLabel int
	VecSelectValue int
	// VecJoinPrunes counts structural-join scans pruned by zone-map ID
	// ranges.
	VecJoinPrunes int
	// BlocksScanned and BlocksSkipped count zone-map consultations: skipped
	// blocks were never touched row-wise.
	BlocksScanned int
	BlocksSkipped int
}

// Vectorized reports whether any vectorized kernel ran.
func (s *ExecStats) Vectorized() bool {
	return s != nil && (s.VecSelectLabel > 0 || s.VecSelectValue > 0 || s.VecJoinPrunes > 0)
}

// vectorSelect executes a chain of selections over a plain view scan on
// the view's columnar block handle. ok is false when the plan shape or the
// store cannot serve the vectorized path; the caller then falls back to
// row-at-a-time execution (which also reports the precise error for
// malformed plans — this function never invents new failure modes).
func (ex *executor) vectorSelect(p *core.Plan) (*Result, bool, error) {
	if ex.opts.NoVectorize {
		return nil, false, nil
	}
	var sels []*core.Plan
	cur := p
	for cur.Op == core.OpSelectLabel || cur.Op == core.OpSelectValue {
		sels = append(sels, cur)
		cur = cur.Input
	}
	if cur.Op != core.OpScan || cur.View == nil {
		return nil, false, nil
	}
	blocks := ex.st.Blocks(cur.View)
	if blocks == nil {
		return nil, false, nil
	}
	rel := blocks.Rel

	// Resolve every selection up front: column, dictionary code (σL) or
	// per-dictionary-entry verdicts (σV, the predicate parsed and evaluated
	// once per distinct value instead of once per row).
	type selSpec struct {
		col     *store.Column
		isLabel bool
		code    uint32
		codeOK  bool
		pass    []bool
	}
	specs := make([]selSpec, 0, len(sels))
	// Apply innermost-first, so the scan-adjacent selection drives the
	// zone-map block skipping.
	for i := len(sels) - 1; i >= 0; i-- {
		s := sels[i]
		attr := "l"
		if s.Op == core.OpSelectValue {
			attr = "v"
		}
		ci := rel.ColIndex(view.SlotCol(s.Slot, attr))
		if ci < 0 {
			return nil, false, nil
		}
		spec := selSpec{col: &blocks.Columns[ci], isLabel: s.Op == core.OpSelectLabel}
		if spec.isLabel {
			spec.code, spec.codeOK = spec.col.Code(s.Label)
		} else {
			spec.pass = make([]bool, len(spec.col.Dict))
			for k, v := range spec.col.Dict {
				spec.pass[k] = s.Pred.Eval(predicate.ParseAtom(v))
			}
		}
		specs = append(specs, spec)
	}

	survives := func(sp selSpec, code int32) bool {
		if code < 0 {
			return false
		}
		if sp.isLabel {
			return sp.codeOK && uint32(code) == sp.code
		}
		return int(code) < len(sp.pass) && sp.pass[code]
	}

	// First selection: walk blocks, consulting the zone map.
	first := specs[0]
	var idx []int
	nb := blocks.NumBlocks()
	for bi := 0; bi < nb; bi++ {
		if err := ex.cancelled(); err != nil {
			return nil, true, err
		}
		z := first.col.Zones[bi]
		skip := true
		if first.isLabel {
			skip = !first.codeOK || !z.HasCode(first.code)
		} else {
			for _, code := range z.Codes {
				if int(code) < len(first.pass) && first.pass[code] {
					skip = false
					break
				}
			}
		}
		if skip {
			if ex.opts.Stats != nil {
				ex.opts.Stats.BlocksSkipped++
			}
			continue
		}
		if ex.opts.Stats != nil {
			ex.opts.Stats.BlocksScanned++
		}
		lo, hi := bi*store.BlockRows, (bi+1)*store.BlockRows
		if hi > len(rel.Rows) {
			hi = len(rel.Rows)
		}
		for i := lo; i < hi; i++ {
			if survives(first, first.col.Codes[i]) {
				idx = append(idx, i)
			}
		}
	}
	// Remaining selections filter the survivor list in place.
	for _, sp := range specs[1:] {
		kept := idx[:0]
		for n, i := range idx {
			if n%cancelCheckEvery == 0 {
				if err := ex.cancelled(); err != nil {
					return nil, true, err
				}
			}
			if survives(sp, sp.col.Codes[i]) {
				kept = append(kept, i)
			}
		}
		idx = kept
	}
	if ex.opts.Stats != nil {
		for _, sp := range specs {
			if sp.isLabel {
				ex.opts.Stats.VecSelectLabel++
			} else {
				ex.opts.Stats.VecSelectValue++
			}
		}
	}

	// Late materialization. A view with virtual slots derives its ID
	// columns per scan; doing it after the filter means only surviving
	// rows pay the derivation (the row path derives them for every row
	// before filtering — same values, same column order). Plain views
	// share the backing relation's tuples, exactly as the row path shares
	// its input rows.
	if extra := len(cur.View.VirtualSlots); extra > 0 {
		out := nrel.NewRelation()
		out.Cols = append(make([]string, 0, len(rel.Cols)+extra), rel.Cols...)
		out.Rows = make([]nrel.Tuple, 0, len(idx))
		for n, i := range idx {
			if n%cancelCheckEvery == 0 {
				if err := ex.cancelled(); err != nil {
					return nil, true, err
				}
			}
			row := rel.Rows[i]
			out.Rows = append(out.Rows, append(make(nrel.Tuple, 0, len(row)+extra), row...))
		}
		res := &Result{Rel: out, Slots: core.Scan(cur.View).OutSlots()}
		if err := ex.fillVirtualIDs(res, cur.View); err != nil {
			return nil, true, err
		}
		return res, true, nil
	}
	out := nrel.NewRelation(rel.Cols...)
	out.Rows = make([]nrel.Tuple, 0, len(idx))
	for n, i := range idx {
		if n%cancelCheckEvery == 0 {
			if err := ex.cancelled(); err != nil {
				return nil, true, err
			}
		}
		out.Rows = append(out.Rows, rel.Rows[i])
	}
	return &Result{Rel: out, Slots: core.Scan(cur.View).OutSlots()}, true, nil
}

// joinRight produces the right input of a join. For structural joins whose
// right child is a plain view scan it consults the view's zone maps to
// skip blocks wholly outside the left side's ancestor ID range — a pruned
// row cannot be a descendant (or child) of any left row, so the join
// output is unchanged, order included.
func (ex *executor) joinRight(p *core.Plan, left *Result) (*Result, error) {
	// Views with virtual slots are excluded: the pruned scan emits the
	// stored columns only, but their row-path scan appends derived ID
	// columns the join output must carry.
	if !ex.opts.NoVectorize && p.Kind != core.JoinID && p.Right.Op == core.OpScan &&
		p.Right.View != nil && len(p.Right.View.VirtualSlots) == 0 {
		if blocks := ex.st.Blocks(p.Right.View); blocks != nil {
			if res, ok, err := ex.prunedScan(p, left, blocks); ok || err != nil {
				return res, err
			}
		}
	}
	return ex.run(p.Right)
}

// prunedScan scans the right-side view keeping only blocks overlapping
// [min ancestor ID, max successor-of-ancestor-ID): every descendant of an
// ancestor a lies in [a, succ(a)), so the union of those intervals bounds
// all possible matches.
func (ex *executor) prunedScan(p *core.Plan, left *Result, blocks *store.Blocks) (*Result, bool, error) {
	lid := left.Rel.ColIndex(view.SlotCol(p.LeftSlot, "id"))
	ci := blocks.Rel.ColIndex(view.SlotCol(p.RightSlot, "id"))
	if lid < 0 || ci < 0 {
		return nil, false, nil // the join operator reports the error
	}
	var lo, hi nodeid.ID
	haveRange, hiUnbounded := false, false
	for i, row := range left.Rel.Rows {
		if i%cancelCheckEvery == 0 {
			if err := ex.cancelled(); err != nil {
				return nil, true, err
			}
		}
		v := row[lid]
		if v.IsNull() {
			continue
		}
		s, unb := succID(v.ID)
		if !haveRange {
			haveRange, lo, hi, hiUnbounded = true, v.ID, s, unb
			continue
		}
		if v.ID.Compare(lo) < 0 {
			lo = v.ID
		}
		if unb {
			hiUnbounded = true
		} else if !hiUnbounded && s.Compare(hi) > 0 {
			hi = s
		}
	}
	rel := blocks.Rel
	zones := blocks.Columns[ci].Zones
	out := nrel.NewRelation(rel.Cols...)
	for bi, z := range zones {
		if err := ex.cancelled(); err != nil {
			return nil, true, err
		}
		if !haveRange || !z.OverlapsRange(lo, hi, hiUnbounded) {
			if ex.opts.Stats != nil {
				ex.opts.Stats.BlocksSkipped++
			}
			continue
		}
		if ex.opts.Stats != nil {
			ex.opts.Stats.BlocksScanned++
		}
		blo, bhi := bi*store.BlockRows, (bi+1)*store.BlockRows
		if bhi > len(rel.Rows) {
			bhi = len(rel.Rows)
		}
		out.Rows = append(out.Rows, rel.Rows[blo:bhi]...)
	}
	if ex.opts.Stats != nil {
		ex.opts.Stats.VecJoinPrunes++
	}
	return &Result{Rel: out, Slots: core.Scan(p.Right.View).OutSlots()}, true, nil
}

// succID returns the lexicographic successor bound of id's subtree: id
// with its last component incremented, so subtree(id) ⊆ [id, succ(id)).
// The root (empty ID) and a component at the numeric ceiling have no
// finite bound; unbounded is true for them.
func succID(id nodeid.ID) (s nodeid.ID, unbounded bool) {
	if len(id) == 0 || id[len(id)-1] == ^uint32(0) {
		return nil, true
	}
	s = append(nodeid.ID(nil), id...)
	s[len(s)-1]++
	return s, false
}
