package algebra

import (
	"fmt"
	"math/rand"
	"testing"

	"xmlviews/internal/core"
	"xmlviews/internal/nodeid"
	"xmlviews/internal/pattern"
	"xmlviews/internal/predicate"
	"xmlviews/internal/summary"
	"xmlviews/internal/view"
	"xmlviews/internal/xmltree"
)

// randomVecDoc grows a random document over a small label vocabulary, so
// selections hit duplicate labels and the dictionaries get reuse.
func randomVecDoc(rng *rand.Rand) *xmltree.Document {
	labels := []string{"a", "b", "c", "d"}
	d := xmltree.NewDocument("r")
	var grow func(n *xmltree.Node, depth int)
	grow = func(n *xmltree.Node, depth int) {
		if depth <= 0 {
			return
		}
		for i := rng.Intn(8); i > 0; i-- {
			c := n.AddChild(labels[rng.Intn(len(labels))], fmt.Sprintf("%d", rng.Intn(10)))
			grow(c, depth-1)
		}
	}
	grow(d.Root, 3)
	return d
}

// assertByteIdentical fails unless the two results agree exactly: same
// columns, same row order, same rendered value per cell. This is stronger
// than set equality — the vectorized path must not even reorder rows.
func assertByteIdentical(t *testing.T, vec, row *Result) {
	t.Helper()
	if len(vec.Rel.Cols) != len(row.Rel.Cols) {
		t.Fatalf("columns differ: %v vs %v", vec.Rel.Cols, row.Rel.Cols)
	}
	for i, c := range row.Rel.Cols {
		if vec.Rel.Cols[i] != c {
			t.Fatalf("column %d: %q vs %q", i, vec.Rel.Cols[i], c)
		}
	}
	if vec.Rel.Len() != row.Rel.Len() {
		t.Fatalf("row counts differ: %d vs %d", vec.Rel.Len(), row.Rel.Len())
	}
	for i := range row.Rel.Rows {
		for j := range row.Rel.Rows[i] {
			vr, rr := vec.Rel.Rows[i][j].Render(), row.Rel.Rows[i][j].Render()
			if vr != rr {
				t.Fatalf("row %d col %d: %q vs %q", i, j, vr, rr)
			}
		}
	}
}

// TestVectorizedSelectMatchesRowPath is the equivalence property for the
// selection kernels: over random documents and random selection chains,
// vectorized and row-at-a-time execution produce byte-identical results.
func TestVectorizedSelectMatchesRowPath(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	all := &core.View{Name: "all", Pattern: pattern.MustParse(`r(//*[id,l,v])`)}
	sawVectorized := false
	for trial := 0; trial < 60; trial++ {
		st := view.NewStore(randomVecDoc(rng), []*core.View{all})
		plan := core.Scan(all)
		// A chain of 1-3 random selections; "zz" never occurs, so the
		// empty-result edge is covered too.
		for n := 1 + rng.Intn(3); n > 0; n-- {
			if rng.Intn(2) == 0 {
				lbl := []string{"a", "b", "c", "d", "zz"}[rng.Intn(5)]
				plan = &core.Plan{Op: core.OpSelectLabel, Input: plan, Slot: 0, Label: lbl}
			} else {
				f := []string{"v>5", "v=3", "v<2 | v>7", "false"}[rng.Intn(4)]
				plan = &core.Plan{Op: core.OpSelectValue, Input: plan, Slot: 0, Pred: predicate.MustParse(f)}
			}
		}
		var xs ExecStats
		vec, err := ExecuteWith(plan, st, Options{Stats: &xs})
		if err != nil {
			t.Fatalf("trial %d vectorized: %v", trial, err)
		}
		row, err := ExecuteWith(plan, st, Options{NoVectorize: true})
		if err != nil {
			t.Fatalf("trial %d row path: %v", trial, err)
		}
		assertByteIdentical(t, vec, row)
		if xs.Vectorized() {
			sawVectorized = true
		}
	}
	if !sawVectorized {
		t.Fatal("no trial took the vectorized path; the property test is vacuous")
	}
}

// TestVectorizedJoinMatchesRowPath is the same property for structural
// joins: zone-map pruning of the descendant-side scan must not change the
// join result, order included.
func TestVectorizedJoinMatchesRowPath(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	va := &core.View{Name: "va", Pattern: pattern.MustParse(`r(//a[id])`)}
	vb := &core.View{Name: "vb", Pattern: pattern.MustParse(`r(//b[id,v])`)}
	sawPrune := false
	for trial := 0; trial < 40; trial++ {
		st := view.NewStore(randomVecDoc(rng), []*core.View{va, vb})
		for _, kind := range []core.JoinKind{core.JoinAncestor, core.JoinParent} {
			plan := core.NewJoin(kind, false, core.Scan(va), 0, core.Scan(vb), 0)
			var xs ExecStats
			vec, err := ExecuteWith(plan, st, Options{Stats: &xs})
			if err != nil {
				t.Fatalf("trial %d vectorized: %v", trial, err)
			}
			row, err := ExecuteWith(plan, st, Options{NoVectorize: true})
			if err != nil {
				t.Fatalf("trial %d row path: %v", trial, err)
			}
			assertByteIdentical(t, vec, row)
			if xs.VecJoinPrunes > 0 {
				sawPrune = true
			}
		}
	}
	if !sawPrune {
		t.Fatal("no trial pruned a join scan; the property test is vacuous")
	}
}

// TestVectorizedMatchesRowPathPreparedViews runs real rewritings — whose
// scans reference prepared views with virtual ID slots, the shape the
// daemon executes — on both paths and requires byte-identical results.
func TestVectorizedMatchesRowPathPreparedViews(t *testing.T) {
	doc := xmltree.MustParseParen(`a(b(c "1") b(c "7") b(c "9") b(d "2"))`)
	s := summary.Build(doc)
	views := []*core.View{
		{Name: "vc", Pattern: pattern.MustParse(`a(/b(/c[id,v]))`), DerivableParentIDs: true},
	}
	st := view.NewStore(doc, views)
	sawVectorized := false
	for _, qSrc := range []string{
		`a(/b[id](/c[v]{v>5}))`,
		`a(/b[id](/c[v]))`,
	} {
		q := pattern.MustParse(qSrc)
		res, err := core.Rewrite(q, views, s, core.DefaultRewriteOptions())
		if err != nil {
			t.Fatalf("Rewrite(%s): %v", qSrc, err)
		}
		if len(res.Rewritings) == 0 {
			t.Fatalf("no rewritings for %s", qSrc)
		}
		for _, plan := range res.Rewritings {
			var xs ExecStats
			vec, err := ExecuteWith(plan, st, Options{Stats: &xs})
			if err != nil {
				t.Fatalf("vectorized %s: %v", plan, err)
			}
			row, err := ExecuteWith(plan, st, Options{NoVectorize: true})
			if err != nil {
				t.Fatalf("row path %s: %v", plan, err)
			}
			assertByteIdentical(t, vec, row)
			if xs.Vectorized() {
				sawVectorized = true
			}
		}
	}
	if !sawVectorized {
		t.Fatal("no rewriting took the vectorized path; the prepared-view test is vacuous")
	}
}

// TestSuccID pins the subtree successor bound the join pruning relies on:
// subtree(id) ⊆ [id, succ(id)), with the root and ceiling components
// unbounded.
func TestSuccID(t *testing.T) {
	id := func(cs ...uint32) nodeid.ID { return nodeid.ID(cs) }
	s, unb := succID(id(1, 4))
	if unb || s.Compare(id(1, 5)) != 0 {
		t.Fatalf("succ(1.4) = %v unbounded=%v, want 1.5", s, unb)
	}
	// A descendant sorts before the successor, a following sibling after.
	if desc := id(1, 4, 7); !(desc.Compare(id(1, 4)) >= 0 && desc.Compare(s) < 0) {
		t.Fatal("descendant escapes [id, succ(id))")
	}
	if sib := id(1, 5); sib.Compare(s) < 0 {
		t.Fatal("following sibling inside [id, succ(id))")
	}
	if _, unb := succID(nil); !unb {
		t.Fatal("root must be unbounded")
	}
	if _, unb := succID(id(2, ^uint32(0))); !unb {
		t.Fatal("ceiling component must be unbounded")
	}
}

// benchDoc builds a flat document of n children under root where only the
// contiguous run [rareLo, rareHi) carries the label "rare" — the clustered
// selective predicate the zone maps are designed for.
func benchDoc(n, rareLo, rareHi int) *xmltree.Document {
	d := xmltree.NewDocument("r")
	for i := 0; i < n; i++ {
		lbl := "item"
		if i >= rareLo && i < rareHi {
			lbl = "rare"
		}
		d.Root.AddChild(lbl, fmt.Sprintf("%d", i%100))
	}
	return d
}

// BenchmarkVecSelect compares the two selection paths on a selective,
// clustered label predicate over a 128k-row extent (XMark scale >= 10
// territory for one element type).
func BenchmarkVecSelect(b *testing.B) {
	const n = 128 << 10
	all := &core.View{Name: "all", Pattern: pattern.MustParse(`r(/*[id,l,v])`)}
	st := view.NewStore(benchDoc(n, n/2, n/2+300), []*core.View{all})
	plan := &core.Plan{Op: core.OpSelectLabel, Input: core.Scan(all), Slot: 0, Label: "rare"}
	// Build the store's columnar handle outside the timed loops.
	if _, err := ExecuteWith(plan, st, Options{}); err != nil {
		b.Fatal(err)
	}
	for _, path := range []struct {
		name string
		opts Options
	}{
		{"row", Options{NoVectorize: true}},
		{"vectorized", Options{}},
	} {
		b.Run(path.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := ExecuteWith(plan, st, path.opts)
				if err != nil {
					b.Fatal(err)
				}
				if res.Rel.Len() != 300 {
					b.Fatalf("rows = %d, want 300", res.Rel.Len())
				}
			}
		})
	}
}

// benchJoinStore builds regions regions of leafPerRegion leaves each, one
// region labeled "anc": the ancestor side of the join selects that single
// subtree, so zone maps can skip every other region's leaf blocks.
func benchJoinStore(regions, leafPerRegion int) (*view.Store, *core.View, *core.View) {
	d := xmltree.NewDocument("r")
	for i := 0; i < regions; i++ {
		lbl := "region"
		if i == regions/2 {
			lbl = "anc"
		}
		rg := d.Root.AddChild(lbl, "")
		for j := 0; j < leafPerRegion; j++ {
			rg.AddChild("leaf", fmt.Sprintf("%d", j%100))
		}
	}
	va := &core.View{Name: "va", Pattern: pattern.MustParse(`r(/anc[id])`)}
	vb := &core.View{Name: "vb", Pattern: pattern.MustParse(`r(//leaf[id,v])`)}
	return view.NewStore(d, []*core.View{va, vb}), va, vb
}

// BenchmarkVecJoin compares structural-join execution with and without
// zone-map pruning of the descendant-side scan (128 regions x 1024 leaves,
// one region matching).
func BenchmarkVecJoin(b *testing.B) {
	st, va, vb := benchJoinStore(128, 1024)
	plan := core.NewJoin(core.JoinAncestor, false, core.Scan(va), 0, core.Scan(vb), 0)
	// Build the store's columnar handle outside the timed loops.
	if _, err := ExecuteWith(plan, st, Options{}); err != nil {
		b.Fatal(err)
	}
	for _, path := range []struct {
		name string
		opts Options
	}{
		{"row", Options{NoVectorize: true}},
		{"vectorized", Options{}},
	} {
		b.Run(path.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := ExecuteWith(plan, st, path.opts)
				if err != nil {
					b.Fatal(err)
				}
				if res.Rel.Len() != 1024 {
					b.Fatalf("rows = %d, want 1024", res.Rel.Len())
				}
			}
		})
	}
}
