package core

import (
	"xmlviews/internal/pattern"
	"xmlviews/internal/summary"
)

// adaptToQuery produces the candidate adaptations of a plan to the query's
// schema: the return-slot choices of Proposition 3.7, the σ label/value
// selections of Section 4.6, a projection onto the chosen slots in query
// order, and the unnest/group-by nesting adjustments. Each adaptation is a
// new plan–model pair ready for the two-way containment test.
func (rw *rewriter) adaptToQuery(e entry) []entry {
	qReturns := rw.q.Returns()
	slots := e.plan.OutSlots()
	if len(slots) < len(qReturns) {
		return nil
	}

	// Candidate plan slots per query slot (Proposition 3.7: the plan
	// slot's paths must be able to fall within the query slot's paths).
	cand := make([][]int, len(qReturns))
	for k, rn := range qReturns {
		qSet := map[int]bool{}
		for _, sid := range rw.qPaths[rn.Index] {
			qSet[sid] = true
		}
		for j, ps := range slots {
			if rn.Attrs&^ps.Attrs != 0 {
				continue // the slot lacks a required attribute
			}
			overlap := false
			for sid := range slotPaths(e.model, j) {
				if qSet[sid] {
					overlap = true
					break
				}
			}
			if overlap {
				cand[k] = append(cand[k], j)
			}
		}
		if len(cand[k]) == 0 {
			return nil
		}
	}

	const maxAssignments = 128
	var out []entry
	assign := make([]int, len(qReturns))
	var rec func(k int)
	rec = func(k int) {
		if len(out) >= maxAssignments {
			return
		}
		if k == len(qReturns) {
			if a, ok := rw.buildAdapted(e, assign); ok {
				out = append(out, a)
			}
			return
		}
		for _, j := range cand[k] {
			assign[k] = j
			rec(k + 1)
		}
	}
	rec(0)
	return out
}

// buildAdapted constructs one adapted plan–model pair for a slot
// assignment, or ok=false when a required selection cannot be expressed.
func (rw *rewriter) buildAdapted(e entry, assign []int) (entry, bool) {
	plan := e.plan
	model := e.model
	slots := e.plan.OutSlots()
	qReturns := rw.q.Returns()

	// Selections (Section 4.6): align labels and value predicates.
	for k, rn := range qReturns {
		j := assign[k]
		if rn.Label != pattern.Wildcard && slotNeedsLabelSelect(model, j, rn.Label) {
			if !slots[j].Attrs.Has(pattern.AttrLabel) {
				return entry{}, false
			}
			plan = &Plan{Op: OpSelectLabel, Input: plan, Slot: j, Label: rn.Label}
			model = filterModel(model, func(t *Tree) *Tree {
				sl := t.Slots[j]
				if sl.Node < 0 || t.Label(sl.Node) != rn.Label {
					return nil
				}
				return t
			})
		}
		if !rn.Pred.IsTrue() && slotNeedsValueSelect(model, j, rn) {
			if !slots[j].Attrs.Has(pattern.AttrValue) {
				return entry{}, false
			}
			pred := rn.Pred
			plan = &Plan{Op: OpSelectValue, Input: plan, Slot: j, Pred: pred}
			model = filterModel(model, func(t *Tree) *Tree {
				sl := t.Slots[j]
				if sl.Node < 0 {
					return nil
				}
				out := t.Clone()
				out.Nodes[sl.Node].Pred = out.Nodes[sl.Node].Pred.And(pred)
				out.key = ""
				if !out.Satisfiable() {
					return nil
				}
				return out
			})
		}
	}
	if len(model) == 0 {
		return entry{}, false
	}

	// Value predicates on internal (non-return) query nodes: when the plan
	// exposes a V slot pinned to the predicate node's paths, filter it
	// before projecting it away (Section 4.6's σφ, applied one level more
	// generally). The final two-way containment test validates the choice.
	assigned := map[int]bool{}
	for _, j := range assign {
		assigned[j] = true
	}
	for _, qn := range rw.q.Nodes() {
		if qn.IsReturn() || qn.Pred.IsTrue() {
			continue
		}
		qSet := map[int]bool{}
		for _, sid := range rw.qPaths[qn.Index] {
			qSet[sid] = true
		}
		for j, ps := range slots {
			if assigned[j] || !ps.Attrs.Has(pattern.AttrValue) {
				continue
			}
			within := true
			for sid := range slotPaths(model, j) {
				if !qSet[sid] {
					within = false
					break
				}
			}
			if !within || !slotNeedsValueSelect(model, j, qn) {
				continue
			}
			pred := qn.Pred
			jj := j
			plan = &Plan{Op: OpSelectValue, Input: plan, Slot: jj, Pred: pred}
			model = filterModel(model, func(t *Tree) *Tree {
				sl := t.Slots[jj]
				if sl.Node < 0 {
					return nil
				}
				out := t.Clone()
				out.Nodes[sl.Node].Pred = out.Nodes[sl.Node].Pred.And(pred)
				out.key = ""
				if !out.Satisfiable() {
					return nil
				}
				return out
			})
			assigned[jj] = true
			break
		}
	}
	if len(model) == 0 {
		return entry{}, false
	}

	// Projection onto the chosen slots, in query order.
	plan = &Plan{Op: OpProject, Input: plan, Keep: append([]int(nil), assign...)}
	model = filterModel(model, func(t *Tree) *Tree {
		out := t.Clone()
		ns := make([]Slot, len(assign))
		for k, j := range assign {
			ns[k] = out.Slots[j]
		}
		out.Slots = ns
		out.key = ""
		return out
	})

	// Nesting adjustment (Section 4.6, nested patterns).
	plan, model, ok := rw.adjustNesting(plan, model)
	if !ok {
		return entry{}, false
	}
	return entry{plan: plan, model: model, key: modelKey(model)}, true
}

func slotNeedsLabelSelect(model []*Tree, j int, label string) bool {
	for _, t := range model {
		if sl := t.Slots[j]; sl.Node >= 0 && t.Label(sl.Node) != label {
			return true
		}
	}
	return false
}

func slotNeedsValueSelect(model []*Tree, j int, rn *pattern.Node) bool {
	for _, t := range model {
		if sl := t.Slots[j]; sl.Node >= 0 && !t.Nodes[sl.Node].Pred.Implies(rn.Pred) {
			return true
		}
	}
	return false
}

func filterModel(model []*Tree, f func(*Tree) *Tree) []*Tree {
	byKey := map[string]*Tree{}
	for _, t := range model {
		if out := f(t); out != nil {
			byKey[out.Key()] = out
		}
	}
	return sortedTrees(byKey)
}

// adjustNesting reconciles the plan's per-slot nesting sequences with the
// query's: extra plan steps are removed with unnest; missing steps are
// added with group-by when some plan slot's ID identifies the grouping
// ancestor. Representative sequences are taken from the first trees; the
// final containment tests verify every tree.
func (rw *rewriter) adjustNesting(plan *Plan, model []*Tree) (*Plan, []*Tree, bool) {
	if len(model) == 0 || len(rw.qModel) == 0 {
		return plan, model, true
	}
	for k := range rw.q.Returns() {
		planNest := canonNest(rw.s, model[0].Slots[k].Nest)
		qNest := canonNest(rw.s, representativeNest(rw.qModel, k))
		if model[0].Slots[k].Node < 0 {
			continue
		}
		switch {
		case len(planNest) > len(qNest):
			for i := len(planNest); i > len(qNest); i-- {
				plan = &Plan{Op: OpUnnest, Input: plan, Slots: []int{k}}
				kk := k
				model = filterModel(model, func(t *Tree) *Tree {
					out := t.Clone()
					if n := len(out.Slots[kk].Nest); n > 0 {
						out.Slots[kk].Nest = out.Slots[kk].Nest[:n-1]
					}
					out.key = ""
					return out
				})
			}
		case len(planNest) < len(qNest):
			// Add each missing step by grouping on an ID-bearing slot
			// bound at that summary node.
			missing := missingSteps(planNest, qNest)
			for _, sid := range missing {
				bySlot := findGroupingSlot(rw.s, model, plan.OutSlots(), sid)
				if bySlot < 0 {
					return nil, nil, false
				}
				plan = &Plan{Op: OpGroupBy, Input: plan, Slots: []int{k}, BySID: sid, BySlot: bySlot}
				kk, step := k, sid
				model = filterModel(model, func(t *Tree) *Tree {
					out := t.Clone()
					out.Slots[kk].Nest = insertNestStep(rw.s, out.Slots[kk].Nest, step)
					out.key = ""
					return out
				})
			}
		}
	}
	return plan, model, true
}

// representativeNest returns the first bound nesting sequence of query slot
// k across the query model.
func representativeNest(qModel []*Tree, k int) []int {
	for _, t := range qModel {
		if t.Slots[k].Node >= 0 {
			return t.Slots[k].Nest
		}
	}
	return nil
}

// missingSteps returns the canonical steps of want not present in have
// (multiset difference, order preserved).
func missingSteps(have, want []int) []int {
	used := make([]bool, len(have))
	var out []int
	for _, w := range want {
		found := false
		for i, h := range have {
			if !used[i] && h == w {
				used[i] = true
				found = true
				break
			}
		}
		if !found {
			out = append(out, w)
		}
	}
	return out
}

// findGroupingSlot locates a slot carrying an ID whose bound summary node
// canonicalizes to the nesting step, across every model tree.
func findGroupingSlot(s *summary.Summary, model []*Tree, slots []PlanSlot, sid int) int {
	want := canonNest(s, []int{sid})[0]
	for j, ps := range slots {
		if !ps.Attrs.Has(pattern.AttrID) {
			continue
		}
		ok := true
		for _, t := range model {
			sl := t.Slots[j]
			if sl.Node < 0 || canonNest(s, []int{t.Nodes[sl.Node].SID})[0] != want {
				ok = false
				break
			}
		}
		if ok {
			return j
		}
	}
	return -1
}
