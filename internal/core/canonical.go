package core

import (
	"fmt"
	"sort"

	"xmlviews/internal/pattern"
	"xmlviews/internal/predicate"
	"xmlviews/internal/summary"
)

// ModelOptions tunes canonical model construction.
type ModelOptions struct {
	// MaxTrees caps the number of canonical trees; Model fails beyond it.
	// The theoretical bound is |S|^|p| (Section 3.1), but practical
	// patterns stay tiny (Section 5).
	MaxTrees int
	// Enhanced applies the strong-edge closure of Section 4.1, so that
	// integrity constraints participate in containment. Plain Dataguide
	// reasoning is obtained by disabling it.
	Enhanced bool
}

// DefaultModelOptions enables enhanced summaries with a generous cap.
func DefaultModelOptions() ModelOptions {
	return ModelOptions{MaxTrees: 200000, Enhanced: true}
}

// Model computes the S-canonical model mod_S(p) with default options.
func Model(p *pattern.Pattern, s *summary.Summary) ([]*Tree, error) {
	return ModelWith(p, s, DefaultModelOptions())
}

// ModelWith computes mod_S(p): one canonical tree per embedding of p into
// S (Section 2.4), extended with
//
//   - strong-edge closure for enhanced summaries (Section 4.1),
//   - node formulas for decorated patterns (Section 4.2),
//   - erased-subtree variants for optional edges, kept only when the
//     resulting ⊥ tuple is realizable (Section 4.3), and
//   - per-slot nesting sequences for nested edges (Section 4.5).
//
// The result is deduplicated and sorted by canonical key.
func ModelWith(p *pattern.Pattern, s *summary.Summary, opts ModelOptions) ([]*Tree, error) {
	if opts.MaxTrees <= 0 {
		opts.MaxTrees = DefaultModelOptions().MaxTrees
	}
	paths := pattern.AssociatedPaths(p, s)
	nodes := p.Nodes()
	n := len(nodes)

	assign := make([]int, n) // summary id per pattern node; -1 = erased
	for i := range assign {
		assign[i] = -1
	}
	erased := make([]bool, n)

	byKey := map[string]*Tree{}
	var overflow error

	emit := func() {
		t := buildTree(p, s, assign, erased, opts)
		if t == nil {
			return
		}
		if _, ok := byKey[t.Key()]; !ok {
			byKey[t.Key()] = t
		}
	}

	var rec func(pos int)
	rec = func(pos int) {
		if overflow != nil {
			return
		}
		if pos == n {
			if len(byKey) >= opts.MaxTrees {
				overflow = fmt.Errorf("core: canonical model exceeds %d trees", opts.MaxTrees)
				return
			}
			emit()
			return
		}
		node := nodes[pos]
		if node.Parent != nil && erased[node.Parent.Index] {
			erased[pos] = true
			rec(pos + 1)
			erased[pos] = false
			return
		}
		// Candidates compatible with the parent's assignment.
		for _, sid := range paths[pos] {
			if node.Parent != nil {
				psid := assign[node.Parent.Index]
				if node.Axis == pattern.Child {
					if s.Node(sid).Parent != psid {
						continue
					}
				} else if !s.IsAncestor(psid, sid) {
					continue
				}
			}
			assign[pos] = sid
			rec(pos + 1)
			assign[pos] = -1
		}
		if node.Parent != nil && node.Optional {
			erased[pos] = true
			rec(pos + 1)
			erased[pos] = false
		}
	}
	rec(0)
	if overflow != nil {
		return nil, overflow
	}

	out := make([]*Tree, 0, len(byKey))
	for _, t := range byKey {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })

	// Maximality filter for optional edges: keep a tree only if its return
	// tuple (⊥s included) is actually produced by p on the tree itself —
	// an erased optional subtree whose match is forced by the tree's own
	// nodes makes the ⊥ tuple unrealizable (Section 4.3).
	if p.HasOptional() {
		kept := out[:0]
		for _, t := range out {
			if tupleRealizable(p, t) {
				kept = append(kept, t)
			}
		}
		out = kept
	}
	return out, nil
}

// buildTree constructs one canonical tree from an embedding; nil when the
// root is unassigned or a formula is unsatisfiable.
func buildTree(p *pattern.Pattern, s *summary.Summary, assign []int, erased []bool, opts ModelOptions) *Tree {
	if assign[p.Root.Index] < 0 {
		return nil
	}
	t := NewTree(s)
	t.Nodes[0].Pred = p.Root.Pred
	t.Slots = make([]Slot, p.Arity())
	slotOf := map[int]int{}
	for k, rn := range p.Returns() {
		slotOf[rn.Index] = k
	}

	var build func(n *pattern.Node, treeIdx int, nest []int) bool
	build = func(n *pattern.Node, treeIdx int, nest []int) bool {
		if k, ok := slotOf[n.Index]; ok {
			t.Slots[k] = Slot{Node: treeIdx, Attrs: n.Attrs, Nest: append([]int(nil), nest...)}
		}
		for _, c := range n.Children {
			if erased[c.Index] {
				t.Erased = append(t.Erased, ErasedSub{Parent: treeIdx, Root: c})
				markBottom(p, c, slotOf, t)
				continue
			}
			childIdx := t.AddChain(treeIdx, assign[c.Index], c.Pred)
			childNest := nest
			if c.Nested {
				childNest = append(append([]int(nil), nest...), t.Nodes[treeIdx].SID)
			}
			if !build(c, childIdx, childNest) {
				return false
			}
		}
		return true
	}
	if !build(p.Root, 0, nil) {
		return nil
	}
	if opts.Enhanced {
		applyStrongClosure(t)
	}
	if !t.Satisfiable() {
		return nil
	}
	return t
}

// markBottom sets ⊥ slots for all return nodes in an erased subtree.
func markBottom(p *pattern.Pattern, n *pattern.Node, slotOf map[int]int, t *Tree) {
	if k, ok := slotOf[n.Index]; ok {
		t.Slots[k] = Slot{Node: -1, Attrs: n.Attrs}
	}
	for _, c := range n.Children {
		markBottom(p, c, slotOf, t)
	}
}

// applyStrongClosure adds, under every tree node, the summary children
// reachable by strong edges that are not already present (Section 4.1): a
// conforming document is guaranteed to contain them.
func applyStrongClosure(t *Tree) {
	for i := 0; i < len(t.Nodes); i++ { // t.Nodes grows during the loop
		have := map[int]bool{}
		for _, c := range t.Nodes[i].Children {
			have[t.Nodes[c].SID] = true
		}
		for _, sc := range t.Sum.Node(t.Nodes[i].SID).Children {
			if t.Sum.Node(sc).Strong && !have[sc] {
				t.AddNode(i, sc, predicate.True())
			}
		}
	}
}

// tupleRealizable reports whether the tree's own return tuple is in p(t):
// the optional-edge maximality check.
func tupleRealizable(p *pattern.Pattern, t *Tree) bool {
	matches := matchPattern(p, t, bottomUnlessForced)
	for _, m := range matches {
		if slotsEqual(m.Slots, t.Slots) {
			return true
		}
	}
	return false
}

func slotsEqual(got []int, want []Slot) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i].Node {
			return false
		}
	}
	return true
}
