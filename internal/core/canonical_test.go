package core

import (
	"testing"

	"xmlviews/internal/pattern"
	"xmlviews/internal/summary"
)

// Figure 3's summary: a(b c(b d(b e))), paper node numbering
// 1:a 2:b 3:c 4:b 5:d 6:b 7:e.
func fig3S() *summary.Summary { return summary.MustParse("a(b c(b d(b e)))") }

func modelKeys(t *testing.T, p string, s *summary.Summary) []string {
	t.Helper()
	trees, err := Model(pattern.MustParse(p), s)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, len(trees))
	for i, tr := range trees {
		keys[i] = tr.String()
	}
	return keys
}

func mustModel(t *testing.T, p string, s *summary.Summary) []*Tree {
	t.Helper()
	trees, err := Model(pattern.MustParse(p), s)
	if err != nil {
		t.Fatal(err)
	}
	return trees
}

func TestModelSimpleChain(t *testing.T) {
	s := summary.MustParse("a(b(c))")
	trees := mustModel(t, "a(//c[v])", s)
	if len(trees) != 1 {
		t.Fatalf("model size = %d, want 1: %v", len(trees), modelKeys(t, "a(//c[v])", s))
	}
	tr := trees[0]
	if tr.Size() != 3 {
		t.Fatalf("tree size = %d, want 3 (chain a-b-c)", tr.Size())
	}
	if tr.Slots[0].Node != 2 || tr.Label(tr.Slots[0].Node) != "c" {
		t.Fatalf("slot = %+v", tr.Slots[0])
	}
}

func TestModelWildcardEnumerates(t *testing.T) {
	s := fig3S()
	trees := mustModel(t, "a(//*[id])", s)
	// One tree per non-root summary node: 6.
	if len(trees) != 6 {
		t.Fatalf("model size = %d, want 6: %v", len(trees), modelKeys(t, "a(//*[id])", s))
	}
}

func TestModelTwoStarDedup(t *testing.T) {
	// Section 2.4: distinct embeddings may yield the same canonical tree.
	// p' = /a//*//e: the * can bind c or d on the path to e, but both
	// embeddings produce the chain a-c-d-e.
	s := fig3S()
	trees := mustModel(t, "a(//*(//e[id]))", s)
	if len(trees) != 1 {
		t.Fatalf("model size = %d, want 1 after dedup: %v", len(trees), modelKeys(t, "a(//*(//e[id]))", s))
	}
	if trees[0].Size() != 4 {
		t.Fatalf("tree = %s", trees[0])
	}
}

func TestModelSiblingChainsStaySeparate(t *testing.T) {
	// Two pattern children mapping to the same summary node keep separate
	// tree nodes: the general witness for one-vs-two document nodes.
	s := summary.MustParse("a(b(c d))")
	trees := mustModel(t, "a(/b[id](/c) /b(/d))", s)
	if len(trees) != 1 {
		t.Fatalf("model size = %d: %v", len(trees), modelKeys(t, "a(/b[id](/c) /b(/d))", s))
	}
	tr := trees[0]
	// a + two b's + c + d = 5 nodes.
	if tr.Size() != 5 {
		t.Fatalf("tree size = %d, want 5: %s", tr.Size(), tr)
	}
	if len(tr.Nodes[0].Children) != 2 {
		t.Fatalf("root should have two b children: %s", tr)
	}
}

func TestModelUnsatisfiable(t *testing.T) {
	s := summary.MustParse("a(b)")
	trees := mustModel(t, "a(/z[id])", s)
	if len(trees) != 0 {
		t.Fatalf("unsatisfiable pattern has model %v", modelKeys(t, "a(/z[id])", s))
	}
	// Contradictory predicate.
	trees = mustModel(t, "a(/b[id]{v>5 & v<2})", s)
	if len(trees) != 0 {
		t.Fatalf("contradictory predicate has non-empty model")
	}
	ok, err := Satisfiable(pattern.MustParse("a(//b[id])"), s)
	if err != nil || !ok {
		t.Fatalf("Satisfiable = %v, %v", ok, err)
	}
}

func TestModelStrongClosure(t *testing.T) {
	// Figure 8's idea: strong edges pull guaranteed children into the
	// canonical trees.
	s := summary.MustParse("a(!b(c) !d)")
	trees := mustModel(t, "a(/b[id])", s)
	if len(trees) != 1 {
		t.Fatal("want 1 tree")
	}
	tr := trees[0]
	// Tree must contain a, b (slot), and d (strong child of a); c is not
	// strong under b so it is absent.
	if tr.Size() != 3 {
		t.Fatalf("tree = %s, want a(b d)", tr)
	}
	labels := map[string]bool{}
	for i := range tr.Nodes {
		labels[tr.Label(i)] = true
	}
	if !labels["d"] || labels["c"] {
		t.Fatalf("strong closure wrong: %s", tr)
	}

	// Plain summaries (Enhanced off) omit d.
	plain, err := ModelWith(pattern.MustParse("a(/b[id])"), s, ModelOptions{Enhanced: false})
	if err != nil {
		t.Fatal(err)
	}
	if plain[0].Size() != 2 {
		t.Fatalf("plain tree = %s, want a(b)", plain[0])
	}
}

func TestModelStrongClosureChains(t *testing.T) {
	s := summary.MustParse("a(!b(!c(!d)))")
	trees := mustModel(t, "a[id]", s)
	if len(trees) != 1 || trees[0].Size() != 4 {
		t.Fatalf("strong chain closure failed: %v", modelKeys(t, "a[id]", s))
	}
}

func TestModelOptionalVariants(t *testing.T) {
	s := summary.MustParse("a(c(b))")
	trees := mustModel(t, "a(/c[id](?/b[id]))", s)
	// Two variants: b bound, b erased (⊥) — both realizable since c's b
	// child is not strong.
	if len(trees) != 2 {
		t.Fatalf("model size = %d: %v", len(trees), modelKeys(t, "a(/c[id](?/b[id]))", s))
	}
	bottoms := 0
	for _, tr := range trees {
		if tr.Slots[1].Node < 0 {
			bottoms++
		}
	}
	if bottoms != 1 {
		t.Fatalf("⊥ variants = %d, want 1", bottoms)
	}
}

func TestModelOptionalMaximalityFilter(t *testing.T) {
	// With a strong edge c→b, every c has a b child, so the ⊥ variant is
	// unrealizable and must be filtered out (Section 4.3 maximality).
	s := summary.MustParse("a(c(!b))")
	trees := mustModel(t, "a(/c[id](?/b[id]))", s)
	if len(trees) != 1 {
		t.Fatalf("model size = %d: %v", len(trees), modelKeys(t, "a(/c[id](?/b[id]))", s))
	}
	if trees[0].Slots[1].Node < 0 {
		t.Fatal("the surviving variant must bind b")
	}
}

func TestModelNestingSequences(t *testing.T) {
	s := summary.MustParse("a(b(c))")
	trees := mustModel(t, "a(n/b[id](n/c[id]))", s)
	if len(trees) != 1 {
		t.Fatal("want 1 tree")
	}
	tr := trees[0]
	slotB, slotC := tr.Slots[0], tr.Slots[1]
	if len(slotB.Nest) != 1 || tr.Sum.Node(slotB.Nest[0]).Label != "a" {
		t.Fatalf("b nest = %v", slotB.Nest)
	}
	if len(slotC.Nest) != 2 || tr.Sum.Node(slotC.Nest[1]).Label != "b" {
		t.Fatalf("c nest = %v", slotC.Nest)
	}
}

func TestModelMaxTrees(t *testing.T) {
	s := fig3S()
	_, err := ModelWith(pattern.MustParse("a(//*[id] //*[id] //*[id])"), s, ModelOptions{MaxTrees: 5})
	if err == nil {
		t.Fatal("expected overflow error")
	}
}

func TestModelDecoratedSameSummaryNodeSeparateNodes(t *testing.T) {
	// Two pattern nodes with contradictory formulas on the same summary
	// node must stay separate tree nodes (Section 4.2).
	s := summary.MustParse("a(b)")
	trees := mustModel(t, "a(/b[id]{v=1} /b{v=2})", s)
	if len(trees) != 1 {
		t.Fatalf("model size = %d", len(trees))
	}
	if trees[0].Size() != 3 {
		t.Fatalf("tree = %s, want a with two b children", trees[0])
	}
	if !trees[0].Satisfiable() {
		t.Fatal("tree should be satisfiable with separate nodes")
	}
}

func TestRealizeProducesConformingDoc(t *testing.T) {
	s := fig3S()
	trees := mustModel(t, "a(//d[id]{v>3}(/b[v]{v<2}))", s)
	if len(trees) != 1 {
		t.Fatalf("model size = %d", len(trees))
	}
	doc, nodes := trees[0].Realize()
	if err := s.Annotate(doc); err != nil {
		t.Fatalf("realized doc does not conform: %v", err)
	}
	slot := trees[0].Slots[0]
	if nodes[slot.Node].Label != "d" || nodes[slot.Node].Value != "4" {
		t.Fatalf("realized d = %+v", nodes[slot.Node])
	}
	// The realized doc must produce the tree's return tuple under p.
	p := pattern.MustParse("a(//d[id]{v>3}(/b[v]{v<2}))")
	tuples := p.EvalNodeTuples(doc)
	found := false
	for _, tup := range tuples {
		if tup[0] == nodes[trees[0].Slots[0].Node] && tup[1] == nodes[trees[0].Slots[1].Node] {
			found = true
		}
	}
	if !found {
		t.Fatalf("return tuple not produced on realized doc: %v", tuples)
	}
}
