package core

import "math"

// CostFunc estimates a plan's execution cost; lower is cheaper. It is the
// seam between the rewriting search and a cost model (internal/cost): core
// stays free of statistics, the model stays free of search state.
type CostFunc func(*Plan) (float64, error)

// ChooseBest picks the cheapest rewriting under the cost function. The
// choice is deterministic and independent of the order rewritings were
// discovered in: strictly cheaper plans win, exact ties break on the
// plan's rendered text. Plans whose estimate fails are skipped; when every
// estimate fails (or no cost function is given) the first rewriting is
// returned with an infinite cost, so callers degrade to the old
// first-found behavior rather than failing the query.
//
// It returns the chosen plan (nil when the result holds none), its
// estimated cost, and the number of alternatives considered.
func ChooseBest(res *RewriteResult, costOf CostFunc) (best *Plan, cost float64, considered int) {
	if res == nil || len(res.Rewritings) == 0 {
		return nil, 0, 0
	}
	considered = len(res.Rewritings)
	if costOf == nil {
		return res.Rewritings[0], math.Inf(1), considered
	}
	cost = math.Inf(1)
	for _, p := range res.Rewritings {
		c, err := costOf(p)
		if err != nil {
			continue
		}
		if best == nil || c < cost || (c == cost && p.String() < best.String()) {
			best, cost = p, c
		}
	}
	if best == nil {
		return res.Rewritings[0], math.Inf(1), considered
	}
	return best, cost, considered
}
