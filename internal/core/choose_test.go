package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"xmlviews/internal/pattern"
	"xmlviews/internal/summary"
)

// scanPlans builds n distinct single-scan plans.
func scanPlans(n int) []*Plan {
	out := make([]*Plan, n)
	for i := range out {
		out[i] = Scan(view(fmt.Sprintf("V%02d", i), `a(/b[id])`))
	}
	return out
}

func TestChooseBestPicksMinimum(t *testing.T) {
	plans := scanPlans(4)
	res := &RewriteResult{Rewritings: plans}
	costs := map[*Plan]float64{plans[0]: 40, plans[1]: 10, plans[2]: 30, plans[3]: 20}
	best, c, n := ChooseBest(res, func(p *Plan) (float64, error) { return costs[p], nil })
	if best != plans[1] || c != 10 || n != 4 {
		t.Fatalf("ChooseBest = (%v, %v, %d), want (plans[1], 10, 4)", best, c, n)
	}
}

func TestChooseBestDeterministicUnderPermutation(t *testing.T) {
	plans := scanPlans(6)
	// Two plans tie at the minimum; the tie must break on plan text, not
	// on discovery order.
	costs := map[*Plan]float64{
		plans[0]: 25, plans[1]: 10, plans[2]: 30,
		plans[3]: 10, plans[4]: 50, plans[5]: 17,
	}
	costOf := func(p *Plan) (float64, error) { return costs[p], nil }
	ref, refCost, _ := ChooseBest(&RewriteResult{Rewritings: plans}, costOf)
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		perm := append([]*Plan(nil), plans...)
		r.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		got, gotCost, n := ChooseBest(&RewriteResult{Rewritings: perm}, costOf)
		if got != ref || gotCost != refCost || n != len(plans) {
			t.Fatalf("permutation %d chose %v (%v), reference %v (%v)", trial, got, gotCost, ref, refCost)
		}
	}
}

func TestChooseBestFallbacks(t *testing.T) {
	if best, _, n := ChooseBest(nil, nil); best != nil || n != 0 {
		t.Fatal("nil result must choose nothing")
	}
	if best, _, n := ChooseBest(&RewriteResult{}, nil); best != nil || n != 0 {
		t.Fatal("empty result must choose nothing")
	}
	plans := scanPlans(3)
	res := &RewriteResult{Rewritings: plans}
	// No cost function: first-found wins.
	if best, c, _ := ChooseBest(res, nil); best != plans[0] || !math.IsInf(c, 1) {
		t.Fatalf("without a cost function ChooseBest must fall back to the first rewriting, got %v (%v)", best, c)
	}
	// Every estimate failing: first-found wins too.
	boom := func(*Plan) (float64, error) { return 0, errors.New("no stats") }
	if best, c, _ := ChooseBest(res, boom); best != plans[0] || !math.IsInf(c, 1) {
		t.Fatalf("with failing estimates ChooseBest must fall back to the first rewriting, got %v (%v)", best, c)
	}
	// A failing estimate skips only that plan.
	partial := func(p *Plan) (float64, error) {
		if p == plans[0] {
			return 0, errors.New("no stats")
		}
		if p == plans[1] {
			return 5, nil
		}
		return 3, nil
	}
	if best, c, _ := ChooseBest(res, partial); best != plans[2] || c != 3 {
		t.Fatalf("ChooseBest must skip failing estimates, got %v (%v)", best, c)
	}
}

func TestRewriteCancelled(t *testing.T) {
	doc := summary.MustParse(`site(item(name))`)
	views := []*View{view("V1", `site(/item[id](/name[v]))`)}
	q := pattern.MustParse(`site(/item[id](/name[v]))`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := DefaultRewriteOptions()
	opts.Ctx = ctx
	if _, err := Rewrite(q, views, doc, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled rewrite returned %v, want context.Canceled", err)
	}
	// A live context leaves the search untouched.
	opts.Ctx = context.Background()
	res, err := Rewrite(q, views, doc, opts)
	if err != nil || len(res.Rewritings) == 0 {
		t.Fatalf("live context must not disturb the search: %v, %d rewritings", err, len(res.Rewritings))
	}
}

func TestRewriteCancelledParallel(t *testing.T) {
	doc := summary.MustParse(`site(item(name))`)
	views := []*View{view("V1", `site(/item[id](/name[v]))`)}
	q := pattern.MustParse(`site(/item[id](/name[v]))`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := DefaultRewriteOptions()
	opts.Ctx = ctx
	opts.Workers = 4
	if _, err := Rewrite(q, views, doc, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled parallel rewrite returned %v, want context.Canceled", err)
	}
}
