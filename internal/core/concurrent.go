package core

import (
	"hash/maphash"
	"sync"
)

// The rewriting search shares three memo structures across workers: the
// per-tree cover verdicts (plan ⊆S q direction), the per-adaptation
// verdict pairs, and the summary-implication cache (SubsumeCache). All
// are striped: a key is hashed to one of a fixed number of shards, each
// with its own mutex, so concurrent workers rarely contend. Every cached
// value is a pure function of its key, which is what keeps the parallel
// search deterministic: a hit and a recomputation agree.

const stripeShards = 32

var stripeSeed = maphash.MakeSeed()

func stripeOf(key string) int {
	return int(maphash.String(stripeSeed, key) % stripeShards)
}

// verdict is a pair of containment decisions for one adaptation (eqQ is
// only meaningful when inQ holds).
type verdict struct {
	inQ, eqQ bool
}

// verdictMemo memoizes both containment directions per adaptation
// canonical key. Equal keys mean isomorphic canonical models, so the
// verdicts transfer — the same argument that lets the sequential path
// skip duplicate adaptations outright.
type verdictMemo struct {
	shards [stripeShards]struct {
		mu sync.Mutex
		m  map[string]verdict
	}
}

func newVerdictMemo() *verdictMemo {
	v := &verdictMemo{}
	for i := range v.shards {
		v.shards[i].m = map[string]verdict{}
	}
	return v
}

func (v *verdictMemo) get(key string) (verdict, bool) {
	sh := &v.shards[stripeOf(key)]
	sh.mu.Lock()
	val, ok := sh.m[key]
	sh.mu.Unlock()
	return val, ok
}

func (v *verdictMemo) put(key string, val verdict) {
	sh := &v.shards[stripeOf(key)]
	sh.mu.Lock()
	sh.m[key] = val
	sh.mu.Unlock()
}

// coverMemo memoizes queryCoversTree verdicts by canonical tree key
// (identical trees recur across many candidate plans). Safe for concurrent
// use; the verdict is a pure function of the key for a fixed query.
type coverMemo struct {
	shards [stripeShards]struct {
		mu sync.Mutex
		m  map[string]bool
	}
}

func newCoverMemo() *coverMemo {
	c := &coverMemo{}
	for i := range c.shards {
		c.shards[i].m = map[string]bool{}
	}
	return c
}

func (c *coverMemo) get(key string) (covered, ok bool) {
	sh := &c.shards[stripeOf(key)]
	sh.mu.Lock()
	covered, ok = sh.m[key]
	sh.mu.Unlock()
	return covered, ok
}

func (c *coverMemo) put(key string, covered bool) {
	sh := &c.shards[stripeOf(key)]
	sh.mu.Lock()
	sh.m[key] = covered
	sh.mu.Unlock()
}
