package core

import (
	"fmt"
	"strconv"

	"xmlviews/internal/pattern"
	"xmlviews/internal/predicate"
	"xmlviews/internal/summary"
)

// ContainOptions tunes containment decisions.
type ContainOptions struct {
	Model ModelOptions
	// IgnoreAttrs skips condition 1 of Proposition 4.1 (per-slot attribute
	// equality). The rewriting algorithm uses this, handling attributes
	// separately through slot selection and projection.
	IgnoreAttrs bool
	// Subsume memoizes summary-implication decisions. Callers deciding many
	// containments over one summary should share a cache across calls
	// (NewSubsumeCache); when nil, a transient per-call cache is used.
	Subsume *SubsumeCache
}

// DefaultContainOptions uses the default canonical model settings.
func DefaultContainOptions() ContainOptions {
	return ContainOptions{Model: DefaultModelOptions()}
}

// Contained decides p ⊆S q under summary constraints: for every document t
// with S |= t, p(t) ⊆ q(t) (Definition 3.1, extended to the full pattern
// language in Section 4).
func Contained(p, q *pattern.Pattern, s *summary.Summary) (bool, error) {
	ok, _, err := ContainedWith(p, []*pattern.Pattern{q}, s, DefaultContainOptions())
	return ok, err
}

// ContainedInUnion decides p ⊆S q1 ∪ ... ∪ qm (Proposition 3.2 and the
// union criterion of Section 4.2).
func ContainedInUnion(p *pattern.Pattern, qs []*pattern.Pattern, s *summary.Summary) (bool, error) {
	ok, _, err := ContainedWith(p, qs, s, DefaultContainOptions())
	return ok, err
}

// Equivalent decides p ≡S q (two-way containment). One summary-implication
// cache serves both directions.
func Equivalent(p, q *pattern.Pattern, s *summary.Summary) (bool, error) {
	opts := DefaultContainOptions()
	opts.Subsume = NewSubsumeCache(0)
	ok, _, err := ContainedWith(p, []*pattern.Pattern{q}, s, opts)
	if err != nil || !ok {
		return false, err
	}
	ok, _, err = ContainedWith(q, []*pattern.Pattern{p}, s, opts)
	return ok, err
}

// ContainedWith is the full containment decision procedure. It returns a
// counterexample canonical tree when containment fails.
//
// The procedure follows Proposition 3.1 (condition 3) generalized to the
// extended language: for every canonical tree te of p, the q-side must
// produce te's return tuple on te itself. With value predicates this
// becomes the box-cover condition of Section 4.2: φ_te must imply the
// disjunction of the formulas of the matching q embeddings.
func ContainedWith(p *pattern.Pattern, qs []*pattern.Pattern, s *summary.Summary, opts ContainOptions) (bool, *Tree, error) {
	if len(qs) == 0 {
		return false, nil, fmt.Errorf("core: empty container union")
	}
	if opts.Subsume == nil {
		opts.Subsume = NewSubsumeCache(0)
	}
	for _, q := range qs {
		if q.Arity() != p.Arity() {
			return false, nil, fmt.Errorf("core: arity mismatch: %d vs %d", p.Arity(), q.Arity())
		}
		if !opts.IgnoreAttrs {
			// Proposition 4.1, condition 1: per-slot attribute equality.
			for k, rn := range p.Returns() {
				if rn.Attrs != q.Returns()[k].Attrs {
					return false, nil, nil
				}
			}
		}
	}
	model, err := ModelWith(p, s, opts.Model)
	if err != nil {
		return false, nil, err
	}
	for _, te := range model {
		covered, err := treeCovered(te, qs, opts)
		if err != nil {
			return false, nil, err
		}
		if !covered {
			return false, te, nil
		}
	}
	return true, nil, nil
}

// treeCovered checks whether the return tuple of te is guaranteed to be in
// the union of the qs results on every document realizing te.
func treeCovered(te *Tree, qs []*pattern.Pattern, opts ContainOptions) (bool, error) {
	var cover []predicate.Box
	for _, q := range qs {
		for _, m := range matchPattern(q, te, bottomIfImpossible) {
			if !slotsEqual(m.Slots, te.Slots) {
				continue
			}
			if !matchNestOK(te, m) {
				continue
			}
			if !erasedCompatible(te, m, opts.Subsume) {
				continue
			}
			cover = append(cover, m.Box)
		}
	}
	return te.Box().CoveredBy(cover), nil
}

// matchNestOK enforces Proposition 4.2: per slot, the nesting sequence of
// the q embedding must equal the tree slot's, modulo one-to-one edges; ⊥
// slots are exempt.
func matchNestOK(te *Tree, m match) bool {
	for k, sl := range te.Slots {
		if sl.Node < 0 {
			continue
		}
		if !nestEqual(te.Sum, sl.Nest, m.Nest[k], false) {
			return false
		}
	}
	return true
}

// Satisfiable reports whether p has a non-empty result on some document
// conforming to S: mod_S(p) ≠ ∅ (Section 2.4).
func Satisfiable(p *pattern.Pattern, s *summary.Summary) (bool, error) {
	model, err := Model(p, s)
	if err != nil {
		return false, err
	}
	return len(model) > 0, nil
}

// erasedCompatible guards ⊥ claims by the container. te's return tuple has
// ⊥ at the slots of te.Erased subtrees, which means on the witness
// documents those subtrees have no match. The container match m also bound
// some optional subtrees to ⊥; for the cover to be sound on *every*
// document where p produces the tuple (not just the minimal witness), each
// slot-bearing erased container subtree Tq must be at least as demanding as
// some slot-bearing erased p subtree Tp under the same tree node: any
// document match of Tq implies a match of Tp, witnessed by a homomorphism
// Tp → Tq. Erased subtrees without return slots do not affect the tuple
// and are exempt.
func erasedCompatible(te *Tree, m match, sub *SubsumeCache) bool {
	for _, eq := range m.Erased {
		if !eq.hasSlotIn() {
			continue
		}
		ok := false
		for _, ep := range te.Erased {
			if !ep.hasSlotIn() || ep.Parent != eq.Parent {
				continue
			}
			if homSubsumes(ep.Root, eq.Root) ||
				summaryImplies(te.Sum, te.Nodes[ep.Parent].SID, eq.Root, ep.Root, sub) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// homSubsumes reports whether every document match of subtree tq (under
// some node x) yields a match of subtree tp (under the same x), witnessed
// by a homomorphism h: tp → tq such that
//
//   - h maps tp's root to tq's root, with tp's child axis requiring tq's;
//   - labels: tp's node is * or equals tq's node's concrete label;
//   - formulas: tq's formula implies tp's;
//   - a /-edge of tp maps onto a single /-edge of tq, a //-edge onto a
//     downward tq path of length ≥ 1;
//   - only tq's non-optional spine is used (its optional parts may be
//     absent from a match);
//   - tp's optional children may be skipped.
//
// This is the classical homomorphism containment test, sound and fast.
func homSubsumes(tp, tq *pattern.Node) bool {
	if tp.Axis == pattern.Child && tq.Axis != pattern.Child {
		return false
	}
	return homNode(tp, tq)
}

func homNode(tp, tq *pattern.Node) bool {
	if tq.Label == pattern.Wildcard && tp.Label != pattern.Wildcard {
		return false
	}
	if tp.Label != pattern.Wildcard && tp.Label != tq.Label {
		return false
	}
	if !tq.Pred.Implies(tp.Pred) {
		return false
	}
	for _, pc := range tp.Children {
		if pc.Optional {
			continue
		}
		if !homChild(pc, tq) {
			return false
		}
	}
	return true
}

// homChild finds a target in tq's non-optional spine for tp child pc.
func homChild(pc *pattern.Node, tq *pattern.Node) bool {
	if pc.Axis == pattern.Child {
		for _, qc := range tq.Children {
			if qc.Optional || qc.Axis != pattern.Child {
				continue
			}
			if homNode(pc, qc) {
				return true
			}
		}
		return false
	}
	// Descendant: any non-optional downward path.
	var walk func(q *pattern.Node) bool
	walk = func(q *pattern.Node) bool {
		for _, qc := range q.Children {
			if qc.Optional {
				continue
			}
			if homNode(pc, qc) {
				return true
			}
			if walk(qc) {
				return true
			}
		}
		return false
	}
	return walk(tq)
}

// subsumption under summary constraints: the syntactic homomorphism test
// is complete only for patterns over the same vocabulary shape; under a
// summary, "//increase under an open_auction" may imply "/bidder/increase"
// because increase only occurs below bidder. summaryImplies decides the
// exact condition — every document match of tp under a node on path anchor
// yields a match of tq there — by a 0-ary containment test on anchored
// patterns, memoized in the caller-scoped cache (nil = no memoization).
func summaryImplies(s *summary.Summary, anchor int, tp, tq *pattern.Node, cache *SubsumeCache) bool {
	if cache == nil || !cache.bind(s) {
		return decideSummaryImplies(s, anchor, tp, tq)
	}
	key := strconv.Itoa(anchor) + "|" + subtreeSig(tp) + "|" + subtreeSig(tq)
	if v, ok := cache.get(key); ok {
		return v
	}
	res := decideSummaryImplies(s, anchor, tp, tq)
	cache.put(key, res)
	return res
}

func decideSummaryImplies(s *summary.Summary, anchor int, tp, tq *pattern.Node) bool {
	a := anchoredPattern(s, anchor, tp)
	b := anchoredPattern(s, anchor, tq)
	if a == nil || b == nil {
		return false
	}
	opts := DefaultModelOptions()
	opts.MaxTrees = 5000
	model, err := ModelWith(a, s, opts)
	if err != nil {
		return false
	}
	if len(model) == 0 {
		return true // tp can never match under the anchor
	}
	for _, te := range model {
		var cover []predicate.Box
		for _, m := range matchPattern(b, te, bottomIfImpossible) {
			cover = append(cover, m.Box)
		}
		if !te.Box().CoveredBy(cover) {
			return false
		}
	}
	return true
}

// anchoredPattern builds root→…→anchor (child chain) with the subtree's
// non-optional spine attached, as a 0-ary boolean pattern.
func anchoredPattern(s *summary.Summary, anchor int, sub *pattern.Node) *pattern.Pattern {
	chain, ok := s.ChainBetween(summary.RootID, anchor)
	if !ok {
		return nil
	}
	p := pattern.NewPattern(s.Node(summary.RootID).Label)
	cur := p.Root
	for _, sid := range chain[1:] {
		cur = p.AddChild(cur, s.Node(sid).Label, pattern.Child)
	}
	var attach func(parent *pattern.Node, n *pattern.Node)
	attach = func(parent *pattern.Node, n *pattern.Node) {
		c := p.AddChild(parent, n.Label, n.Axis)
		c.Pred = n.Pred
		for _, ch := range n.Children {
			if ch.Optional {
				continue
			}
			attach(c, ch)
		}
	}
	attach(cur, sub)
	return p.Finish()
}
