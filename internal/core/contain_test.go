package core

import (
	"math/rand"
	"strings"
	"testing"

	"xmlviews/internal/pattern"
	"xmlviews/internal/summary"
	"xmlviews/internal/xmltree"
)

func contained(t *testing.T, p, q string, s *summary.Summary) bool {
	t.Helper()
	ok, err := Contained(pattern.MustParse(p), pattern.MustParse(q), s)
	if err != nil {
		t.Fatal(err)
	}
	return ok
}

func TestContainmentAxes(t *testing.T) {
	s := summary.MustParse("a(b(c(b)))")
	cases := []struct {
		p, q string
		want bool
	}{
		{"a(/b[id])", "a(//b[id])", true},
		{"a(//b[id])", "a(/b[id])", false}, // deep b exists at /a/b/c/b
		{"a(//c[id])", "a(/b(/c[id]))", true},
		{"a(//b[id])", "a(//*[id])", true},
		{"a(//*[id])", "a(//b[id])", false},
		{"a(/b(/c(/b[id])))", "a(//b(//b[id]))", true},
		{"a(//b[id])", "a(//b[id])", true},
	}
	for _, c := range cases {
		if got := contained(t, c.p, c.q, s); got != c.want {
			t.Errorf("%s ⊆ %s = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

// Section 3.2: S = r(a(b)), q = /r//a//b, p1 = /r//b; p1 ≡S q even though
// p1 lacks an a node (implicit from the summary).
func TestImplicitNodeEquivalence(t *testing.T) {
	s := summary.MustParse("r(a(b))")
	p1 := pattern.MustParse("r(//b[id])")
	q := pattern.MustParse("r(//a(//b[id]))")
	eq, err := Equivalent(p1, q, s)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("p1 should be S-equivalent to q")
	}
}

// Figure 6: q asks for b at least two levels below the root; p1 provides
// all b elements, including some not in q — so p1 ⊄ q but q ⊆ p1.
func TestFigure6DepthMismatch(t *testing.T) {
	// S from Figure 6: r(b a(b c) e(f)); q = r(//a(//b[id])) wants b below
	// a; p1 = r(//b[id]) also returns /r/b.
	s := summary.MustParse("r(b a(b c) e(f))")
	if contained(t, "r(//b[id])", "r(//a(//b[id]))", s) {
		t.Fatal("p1 should not be contained in q")
	}
	if !contained(t, "r(//a(//b[id]))", "r(//b[id])", s) {
		t.Fatal("q should be contained in p1")
	}
}

func TestContainmentWitness(t *testing.T) {
	s := summary.MustParse("a(b(c) d)")
	p, q := pattern.MustParse("a(//*[id])"), pattern.MustParse("a(//b[id])")
	ok, witness, err := ContainedWith(p, []*pattern.Pattern{q}, s, DefaultContainOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ok || witness == nil {
		t.Fatal("expected failure with witness")
	}
	// The witness realizes to a doc where p produces a tuple q does not.
	doc, nodes := witness.Realize()
	slotNode := nodes[witness.Slots[0].Node]
	inP, inQ := false, false
	for _, tup := range p.EvalNodeTuples(doc) {
		if tup[0] == slotNode {
			inP = true
		}
	}
	for _, tup := range q.EvalNodeTuples(doc) {
		if tup[0] == slotNode {
			inQ = true
		}
	}
	if !inP || inQ {
		t.Fatalf("witness not a counterexample: inP=%v inQ=%v tree=%s", inP, inQ, witness)
	}
}

func TestEnhancedSummaryEnablesContainment(t *testing.T) {
	// All children of region having description children are items — the
	// summary (unlike a lax DTD) proves * must be item; and the strong
	// edge proves every b has a c child.
	s := summary.MustParse("a(!b(!c) d)")
	// p returns b nodes; q wants b nodes having a c child. Only equivalent
	// because the c edge is strong.
	if !contained(t, "a(/b[id])", "a(/b[id](/c))", s) {
		t.Fatal("strong edge should prove containment")
	}
	// Disable enhanced reasoning: containment must fail.
	opts := DefaultContainOptions()
	opts.Model.Enhanced = false
	ok, _, err := ContainedWith(pattern.MustParse("a(/b[id])"),
		[]*pattern.Pattern{pattern.MustParse("a(/b[id](/c))")}, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("plain summary must not prove containment")
	}
}

// Figure 9 / Section 4.2 worked example, reconstructed on the Figure 3
// summary: pφ2 ⊆S pφ1 ∪ pφ3 ∪ pφ4 but in none individually.
func TestDecoratedUnionContainment(t *testing.T) {
	s := fig3S()
	p2 := pattern.MustParse("a(//*{v=3}(/b[id]{v>0}))")
	p1 := pattern.MustParse("a(//d{v=3}(/b[id]{v<5}))")
	p3 := pattern.MustParse("a(//c{v>1}(/b[id]))")
	p4 := pattern.MustParse("a(//d{v<5}(/b[id]{v>2}))")

	ok, err := ContainedInUnion(p2, []*pattern.Pattern{p1, p3, p4}, s)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("pφ2 should be contained in the union")
	}
	for i, single := range []*pattern.Pattern{p1, p3, p4} {
		ok, err := Contained(p2, single, s)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("pφ2 should not be contained in pattern %d alone", i+1)
		}
	}
	// And pφ1 ⊆ pφ2 fails on values (v<5 does not imply v>0).
	if contained(t, p1.String(), p2.String(), s) {
		t.Fatal("pφ1 ⊄ pφ2 on values")
	}
	// Tightening pφ1's b predicate to (v>0 & v<5) makes it contained.
	p1b := pattern.MustParse("a(//d{v=3}(/b[id]{v>0 & v<5}))")
	if !contained(t, p1b.String(), p2.String(), s) {
		t.Fatal("tightened pφ1 should be contained in pφ2")
	}
}

func TestDecoratedPredicateOnInternalNode(t *testing.T) {
	s := summary.MustParse("a(b(c))")
	if !contained(t, "a(/b{v=2}(/c[id]))", "a(/b{v>1}(/c[id]))", s) {
		t.Fatal("v=2 under v>1 should hold")
	}
	if contained(t, "a(/b{v>1}(/c[id]))", "a(/b{v=2}(/c[id]))", s) {
		t.Fatal("v>1 under v=2 should fail")
	}
}

// Figure 10: optional edges; p1 ⊆S p2.
func TestOptionalContainment(t *testing.T) {
	s := summary.MustParse("a(c(b d(b e)) c2)")
	p1 := pattern.MustParse("a(//c[id](?/b[id] ?/d(/b /e)))")
	p2 := pattern.MustParse("a(//c[id](?/b[id]))")
	ok, err := Contained(p1, p2, s)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("p1 should be contained in p2")
	}
	// Reverse direction fails: p2 produces tuples for c nodes lacking the
	// d subtree... actually p1 also produces those (d is optional). The
	// reverse fails on arity of information: both are 2-ary. p2 ⊆ p1 in
	// fact holds here; check a genuinely failing case instead: required b.
	p3 := pattern.MustParse("a(//c[id](/b[id]))")
	ok, err = Contained(p2, p3, s)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("optional pattern should not be contained in required one")
	}
	ok, err = Contained(p3, p2, s)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("required pattern should be contained in optional one")
	}
}

func TestOptionalMaximalityBlocksContainment(t *testing.T) {
	// p produces (c,⊥) on documents where c has no b child anywhere under
	// d; q's optional //b would bind the deep b instead of ⊥, so the ⊥
	// tuples differ.
	s := summary.MustParse("a(c(b d(!b)))")
	p := pattern.MustParse("a(/c[id](?/b[id]))")
	q := pattern.MustParse("a(/c[id](?//b[id]))")
	if contained(t, p.String(), q.String(), s) {
		t.Fatal("⊥ tuple of p is not produced by q (its descendant b is forced)")
	}
}

func TestAttributeCondition(t *testing.T) {
	// Proposition 4.1 condition 1: attribute sets must match per slot.
	s := summary.MustParse("a(b)")
	if contained(t, "a(/b[id])", "a(/b[v])", s) {
		t.Fatal("ID vs V attribute mismatch must fail")
	}
	if !contained(t, "a(/b[id,v])", "a(/b[id,v])", s) {
		t.Fatal("same attributes should pass")
	}
	// IgnoreAttrs skips the check.
	opts := DefaultContainOptions()
	opts.IgnoreAttrs = true
	ok, _, err := ContainedWith(pattern.MustParse("a(/b[id])"),
		[]*pattern.Pattern{pattern.MustParse("a(/b[v])")}, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("IgnoreAttrs should allow the containment")
	}
}

func TestNestedContainment(t *testing.T) {
	s := summary.MustParse("a(b(c))")
	// Same nesting sequence: contained.
	if !contained(t, "a(/b[id](n/c[id]))", "a(//b[id](n/c[id]))", s) {
		t.Fatal("same nesting should hold")
	}
	// Different nesting signature (2a): fails both ways.
	if contained(t, "a(/b[id](n/c[id]))", "a(/b[id](/c[id]))", s) {
		t.Fatal("nested vs flat must fail")
	}
	if contained(t, "a(/b[id](/c[id]))", "a(/b[id](n/c[id]))", s) {
		t.Fatal("flat vs nested must fail")
	}
}

func TestNestedOneToOneRelaxation(t *testing.T) {
	// With a one-to-one edge a→b, nesting under a equals nesting under b
	// (Proposition 4.2, relaxed condition 2(b)).
	s1 := summary.MustParse("a(=b(c))")
	p := pattern.MustParse("a(n/b(/c[id]))") // grouping at a
	q := pattern.MustParse("a(/b(n/c[id]))") // grouping at b
	ok, err := Contained(p, q, s1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("one-to-one relaxation should allow containment")
	}
	// Without the one-to-one edge the same test fails.
	s2 := summary.MustParse("a(b(c))")
	ok, err = Contained(p, q, s2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("without one-to-one the nesting differs")
	}
}

func TestUnionContainmentPlain(t *testing.T) {
	// Proposition 3.2 without predicates: p ⊆ q1 ∪ q2 via label split.
	s := summary.MustParse("a(b c)")
	p := pattern.MustParse("a(/*[id])")
	q1 := pattern.MustParse("a(/b[id])")
	q2 := pattern.MustParse("a(/c[id])")
	ok, err := ContainedInUnion(p, []*pattern.Pattern{q1, q2}, s)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("* should be covered by b ∪ c")
	}
	ok, err = ContainedInUnion(p, []*pattern.Pattern{q1}, s)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("* is not covered by b alone")
	}
}

func TestArityMismatchError(t *testing.T) {
	s := summary.MustParse("a(b)")
	_, err := Contained(pattern.MustParse("a(/b[id])"), pattern.MustParse("a(/b[id,v] /b[id])"), s)
	if err == nil {
		t.Fatal("arity mismatch should error")
	}
}

// randConjPattern generates a random satisfiable-ish conjunctive pattern
// over the labels of the summary.
func randConjPattern(r *rand.Rand, s *summary.Summary, size int) *pattern.Pattern {
	labels := []string{}
	for _, id := range s.NodeIDs()[1:] {
		labels = append(labels, s.Node(id).Label)
	}
	p := pattern.NewPattern(s.Node(0).Label)
	nodes := []*pattern.Node{p.Root}
	for len(nodes) < size {
		parent := nodes[r.Intn(len(nodes))]
		label := labels[r.Intn(len(labels))]
		if r.Float64() < 0.15 {
			label = pattern.Wildcard
		}
		axis := pattern.Child
		if r.Float64() < 0.5 {
			axis = pattern.Descendant
		}
		n := p.AddChild(parent, label, axis)
		nodes = append(nodes, n)
	}
	p.Finish()
	// Mark one or two non-root nodes as returns.
	all := p.Nodes()
	all[1+r.Intn(len(all)-1)].Attrs = pattern.AttrID
	if r.Float64() < 0.5 {
		all[1+r.Intn(len(all)-1)].Attrs = pattern.AttrID
	}
	return p.Finish()
}

// randomConformingDoc builds a random document conforming (laxly) to s.
func randomConformingDoc(r *rand.Rand, s *summary.Summary) *xmltree.Document {
	doc := xmltree.NewDocument(s.Node(summary.RootID).Label)
	var grow func(n *xmltree.Node, sid, depth int)
	grow = func(n *xmltree.Node, sid, depth int) {
		for _, c := range s.Node(sid).Children {
			count := r.Intn(3)
			if s.Node(c).Strong && count == 0 {
				count = 1
			}
			if depth > 5 {
				count = 0
				if s.Node(c).Strong {
					count = 1
				}
			}
			if s.Node(c).OneToOne {
				count = 1
			}
			for i := 0; i < count; i++ {
				child := n.AddChild(s.Node(c).Label, "")
				grow(child, c, depth+1)
			}
		}
	}
	grow(doc.Root, summary.RootID, 0)
	return doc
}

func tupleKey(tup []*xmltree.Node) string {
	var b strings.Builder
	for _, n := range tup {
		if n == nil {
			b.WriteString("⊥;")
		} else {
			b.WriteString(n.ID.String())
			b.WriteByte(';')
		}
	}
	return b.String()
}

// The central property test: the containment decision agrees with direct
// evaluation. If Contained says yes, no random conforming document may
// exhibit a violating tuple; if it says no, the realized witness document
// must exhibit one.
func TestContainmentAgreesWithEvaluation(t *testing.T) {
	r := rand.New(rand.NewSource(20061017))
	s := summary.MustParse("a(!b(c(b) =d) c(e) d)")
	for trial := 0; trial < 120; trial++ {
		p := randConjPattern(r, s, 2+r.Intn(3))
		q := randConjPattern(r, s, 2+r.Intn(3))
		if p.Arity() != q.Arity() {
			continue
		}
		// Align attributes so condition 1 passes.
		for k, rn := range q.Returns() {
			rn.Attrs = p.Returns()[k].Attrs
		}
		ok, witness, err := ContainedWith(p, []*pattern.Pattern{q}, s, DefaultContainOptions())
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			for i := 0; i < 8; i++ {
				doc := randomConformingDoc(r, s)
				qt := map[string]bool{}
				for _, tup := range q.EvalNodeTuples(doc) {
					qt[tupleKey(tup)] = true
				}
				for _, tup := range p.EvalNodeTuples(doc) {
					if !qt[tupleKey(tup)] {
						t.Fatalf("trial %d: claimed %s ⊆ %s but doc %s has tuple %s only in p",
							trial, p, q, doc.Root, tupleKey(tup))
					}
				}
			}
		} else if witness != nil {
			doc, nodes := witness.Realize()
			want := make([]*xmltree.Node, len(witness.Slots))
			for k, sl := range witness.Slots {
				if sl.Node >= 0 {
					want[k] = nodes[sl.Node]
				}
			}
			inP, inQ := false, false
			wantKey := tupleKey(want)
			for _, tup := range p.EvalNodeTuples(doc) {
				if tupleKey(tup) == wantKey {
					inP = true
				}
			}
			for _, tup := range q.EvalNodeTuples(doc) {
				if tupleKey(tup) == wantKey {
					inQ = true
				}
			}
			if !inP {
				t.Fatalf("trial %d: witness tuple not produced by p=%s on %s (tree %s)",
					trial, p, doc.Root, witness)
			}
			if inQ {
				t.Fatalf("trial %d: witness tuple for %s ⊄ %s is produced by q on %s",
					trial, p, q, doc.Root)
			}
		}
	}
}
