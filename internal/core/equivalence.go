package core

import (
	"xmlviews/internal/pattern"
	"xmlviews/internal/predicate"
)

// planContainedInQueryCached decides plan ⊆S q: for every canonical tree
// of the plan (already projected to q's schema), q must produce the
// tree's return tuple on every document realizing it. This is direction
// one of the ≡S test of Algorithm 1 (line 7). The memo caches the
// per-tree decision by canonical key: equal keys mean isomorphic
// decorated trees with corresponding slots and erased subtrees, so the
// covered/uncovered outcome transfers. (The embeddings themselves do not
// transfer — node indexes are instance-specific.) Both caches may be nil;
// both are safe to share across goroutines.
func planContainedInQueryCached(planModel []*Tree, q *pattern.Pattern, memo *coverMemo, sub *SubsumeCache) bool {
	for _, te := range planModel {
		if len(te.Slots) != q.Arity() {
			return false
		}
		if memo != nil {
			if covered, ok := memo.get(te.Key()); ok {
				if !covered {
					return false
				}
				continue
			}
		}
		covered := queryCoversTree(te, q, sub)
		if memo != nil {
			memo.put(te.Key(), covered)
		}
		if !covered {
			return false
		}
	}
	return true
}

func queryCoversTree(te *Tree, q *pattern.Pattern, sub *SubsumeCache) bool {
	var cover []predicate.Box
	for _, m := range matchPattern(q, te, bottomIfImpossible) {
		if !slotsEqual(m.Slots, te.Slots) {
			continue
		}
		if !matchNestOK(te, m) {
			continue
		}
		if !erasedCompatible(te, m, sub) {
			continue
		}
		cover = append(cover, m.Box)
	}
	return te.Box().CoveredBy(cover)
}

// queryContainedInPlan decides q ⊆S plan: for every canonical tree tq of
// the query, some plan tree must map homomorphically into tq with the right
// slots, and the plan-tree formulas must jointly cover φ_tq.
func queryContainedInPlan(qModel, planModel []*Tree, sub *SubsumeCache) bool {
	for _, tq := range qModel {
		var cover []predicate.Box
		for _, te := range planModel {
			if len(te.Slots) != len(tq.Slots) {
				continue
			}
			for _, h := range treeHoms(te, tq) {
				if !homSlotsOK(te, tq, h, sub) {
					continue
				}
				cover = append(cover, h.Box)
			}
		}
		if !tq.Box().CoveredBy(cover) {
			return false
		}
	}
	return true
}

// homSlotsOK checks slot agreement for a plan-tree-into-query-tree
// homomorphism: bound slots must map onto the query tree's slots, ⊥ slots
// must align with ⊥ slots whose erased subtrees are at least as demanding
// on the plan side (the mirror of erasedCompatible), and nesting sequences
// must agree modulo one-to-one edges.
func homSlotsOK(te, tq *Tree, h treeHom, sub *SubsumeCache) bool {
	for k, sl := range te.Slots {
		qs := tq.Slots[k]
		if sl.Node < 0 {
			if qs.Node >= 0 {
				return false
			}
			continue
		}
		if qs.Node < 0 || h.Map[sl.Node] != qs.Node {
			return false
		}
		if !nestEqual(te.Sum, sl.Nest, qs.Nest, false) {
			return false
		}
	}
	// ⊥ slots: the plan's tuple has ⊥ when its erased view subtrees fail;
	// on documents where q produces the ⊥ tuple, q's erased subtrees fail.
	// Soundness needs: a plan erased subtree match implies a q erased
	// subtree match (hom from q's subtree into the plan's).
	for _, ep := range te.Erased {
		if !ep.hasSlotIn() {
			continue
		}
		ok := false
		for _, eq := range tq.Erased {
			if !eq.hasSlotIn() || eq.Parent != h.Map[ep.Parent] {
				continue
			}
			if homSubsumes(eq.Root, ep.Root) ||
				summaryImplies(tq.Sum, tq.Nodes[eq.Parent].SID, ep.Root, eq.Root, sub) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
