package core

import (
	"xmlviews/internal/pattern"
	"xmlviews/internal/predicate"
)

// bottomPolicy controls when an optional pattern edge may bind ⊥ while
// matching into a canonical tree. The two sides of the containment test
// need opposite conservative defaults (both are sound):
//
//   - bottomUnlessForced (canonical-model generation): ⊥ is allowed unless
//     the tree forces a match — a structural embedding whose every node's
//     tree formula implies the pattern formula. Used by the maximality
//     filter, it keeps every possibly-realizable ⊥ tuple.
//   - bottomIfImpossible (container matching): ⊥ is allowed only when no
//     structural embedding with jointly satisfiable formulas exists, so a
//     container pattern never claims a ⊥ it might not produce.
type bottomPolicy int

const (
	bottomUnlessForced bottomPolicy = iota
	bottomIfImpossible
)

// match is one decorated embedding of a pattern into a canonical tree.
type match struct {
	// Slots holds the tree node bound to each pattern return node, -1 = ⊥.
	Slots []int
	// Box is the conjunction of pattern formulas over tree node variables.
	Box predicate.Box
	// Nest holds, per return slot, the grouping summary ids (nil for ⊥).
	Nest [][]int
	// Erased lists the optional subtrees the embedding bound to ⊥ and the
	// tree node their parent was bound to.
	Erased []ErasedSub
}

// matchPattern enumerates the embeddings of p into canonical tree t under
// the given ⊥ policy. Pattern edges follow tree parent-child edges for /
// and tree ancestry for //.
func matchPattern(p *pattern.Pattern, t *Tree, pol bottomPolicy) []match {
	if !p.Root.MatchesLabel(t.Label(0)) {
		return nil
	}
	if t.Nodes[0].Pred.And(p.Root.Pred).IsFalse() {
		return nil
	}
	assigns := enumMatch(p.Root, 0, t, pol)
	out := make([]match, 0, len(assigns))
	for _, a := range assigns {
		m := match{
			Slots: make([]int, p.Arity()),
			Box:   predicate.NewBox(),
			Nest:  make([][]int, p.Arity()),
		}
		ok := true
		for _, n := range p.Nodes() {
			x, bound := a[n.Index]
			if !bound || x < 0 {
				continue
			}
			if !n.Pred.IsTrue() {
				m.Box = m.Box.Constrain(x, n.Pred)
				if m.Box.IsEmpty() {
					ok = false
					break
				}
			}
		}
		if !ok {
			continue
		}
		for k, rn := range p.Returns() {
			x, bound := a[rn.Index]
			if !bound || x < 0 {
				m.Slots[k] = -1
				continue
			}
			m.Slots[k] = x
			m.Nest[k] = nestOf(rn, a, t)
		}
		// Record erased optional subtrees: optional nodes bound ⊥ whose
		// parent is bound.
		for _, n := range p.Nodes() {
			if n.Parent == nil || !n.Optional {
				continue
			}
			if x, bound := a[n.Index]; bound && x < 0 {
				if px, pb := a[n.Parent.Index]; pb && px >= 0 {
					m.Erased = append(m.Erased, ErasedSub{Parent: px, Root: n})
				}
			}
		}
		out = append(out, m)
	}
	return out
}

// nestOf computes the nesting sequence of a bound return node under an
// assignment: the summary ids of the images of its ancestors whose
// downward edge is nested, root-first.
func nestOf(rn *pattern.Node, a map[int]int, t *Tree) []int {
	var rev []int
	for cur := rn; cur.Parent != nil; cur = cur.Parent {
		if cur.Nested {
			px := a[cur.Parent.Index]
			rev = append(rev, t.Nodes[px].SID)
		}
	}
	out := make([]int, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// enumMatch returns the assignments (pattern index → tree node, -1 = ⊥)
// for the pattern subtree rooted at n with n bound to tree node x.
func enumMatch(n *pattern.Node, x int, t *Tree, pol bottomPolicy) []map[int]int {
	results := []map[int]int{{n.Index: x}}
	for _, c := range n.Children {
		var childAssigns []map[int]int
		for _, cand := range matchCandidates(c, x, t) {
			childAssigns = append(childAssigns, enumMatch(c, cand, t, pol)...)
		}
		allowBottom := false
		if len(childAssigns) == 0 {
			if !c.Optional {
				return nil
			}
			allowBottom = true
		} else if c.Optional && pol == bottomUnlessForced && !forcedMatchExists(c, x, t) {
			allowBottom = true
		}
		if allowBottom {
			erased := map[int]int{}
			markErased(c, erased)
			childAssigns = append(childAssigns, erased)
		}
		merged := make([]map[int]int, 0, len(results)*len(childAssigns))
		for _, r := range results {
			for _, ca := range childAssigns {
				m := make(map[int]int, len(r)+len(ca))
				for k, v := range r {
					m[k] = v
				}
				for k, v := range ca {
					m[k] = v
				}
				merged = append(merged, m)
			}
		}
		results = merged
	}
	return results
}

func markErased(n *pattern.Node, a map[int]int) {
	a[n.Index] = -1
	for _, c := range n.Children {
		markErased(c, a)
	}
}

// matchCandidates returns the tree nodes that pattern node c can bind under
// parent binding x: label match, axis compatibility, and a jointly
// satisfiable formula.
func matchCandidates(c *pattern.Node, x int, t *Tree) []int {
	var out []int
	consider := func(y int) {
		if !c.MatchesLabel(t.Label(y)) {
			return
		}
		if t.Nodes[y].Pred.And(c.Pred).IsFalse() {
			return
		}
		out = append(out, y)
	}
	if c.Axis == pattern.Child {
		for _, y := range t.Nodes[x].Children {
			consider(y)
		}
		return out
	}
	for _, y := range t.Descendants(x) {
		consider(y)
	}
	return out
}

// forcedMatchExists reports whether the tree forces a match for the
// pattern subtree rooted at c under parent binding x: a structural
// embedding where every tree node's formula implies the pattern node's
// formula (so every conforming document realizing the tree matches it).
// Optional descendants of c are ignored — they cannot block the match.
func forcedMatchExists(c *pattern.Node, x int, t *Tree) bool {
	var forced func(n *pattern.Node, px int) bool
	forced = func(n *pattern.Node, px int) bool {
		var cands []int
		if n.Axis == pattern.Child {
			cands = t.Nodes[px].Children
		} else {
			cands = t.Descendants(px)
		}
		for _, y := range cands {
			if !n.MatchesLabel(t.Label(y)) {
				continue
			}
			if !t.Nodes[y].Pred.Implies(n.Pred) {
				continue
			}
			ok := true
			for _, cc := range n.Children {
				if cc.Optional {
					continue
				}
				if !forced(cc, y) {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
		return false
	}
	return forced(c, x)
}
