package core

import (
	"sync"
	"sync/atomic"
)

// Parallel rewriting search.
//
// The left-deep join development of Algorithm 1 is a dynamic program over
// a growing working set: iteration i joins work[i] against every seed plan
// and appends the surviving candidates. Iteration order is what makes the
// sequential result canonical (discovery order, first-representative
// dedup), so the parallel engine processes each DP level in four phases:
//
//  1. generate (parallel): each work entry of the level is handed to a
//     worker that develops all its join candidates (model merges plus the
//     Proposition 3.5 redundancy filter) — pure work against read-only
//     state.
//  2. admit (sequential, cheap): candidates are walked in exactly the
//     order the sequential search visits them — work index, then seed
//     index, then attempt index — replaying the exploration budget, the
//     canonical-model dedup and the working-set growth deterministically.
//  3. judge (parallel): the admitted survivors — exactly the entries the
//     sequential search would run containment on, each unique — get their
//     adaptations and both containment verdicts computed by the worker
//     pool, memoized in the shared concurrency-safe caches.
//  4. commit (sequential): verdicts are replayed in admission order,
//     emitting rewritings and collecting union-phase partials just like
//     the sequential path.
//
// The exploration budget (MaxExplored) needs care: the sequential search
// stops generating mid-pair once the budget runs out, and the budget
// state is only known during the admit phase. Workers therefore generate
// against a soft budget (the budget committed before their level started,
// a lower bound on what admit will have consumed), tag every candidate
// with its attempt index, and admit replays the exact cutoff —
// regenerating a pair synchronously in the rare case the soft budget
// under-generated. When an early exit (FirstOnly / MaxResults) fires
// during commit, the explored counter is rewound to the admitted
// candidate's snapshot so the reported statistics match the sequential
// run exactly.

// pairGen is the generation result for one (work entry, seed) pair.
type pairGen struct {
	lj        int // index into m0
	cands     []taggedCand
	attempts  int
	truncated bool // generation may have stopped before the pair was exhausted
}

// survivor is one admitted candidate awaiting its containment verdicts.
type survivor struct {
	e entry
	// explored snapshots res.PlansExplored after this candidate's pair,
	// the value the counter must rewind to if the search stops here.
	explored int
	pre      []adaptedVerdict
}

// searchParallel runs the seed phase and the left-deep development with a
// worker pool of the given size, producing results identical to
// searchSequential.
func (rw *rewriter) searchParallel(work []entry, m0 []entry, workers int) {
	// Seed phase: the containment verdicts for the single-view plans are
	// precomputed in parallel, then replayed in order.
	seedPre := make([][]adaptedVerdict, len(m0))
	runWorkers(workers, len(m0), func(i int) {
		seedPre[i] = rw.precomputeConsider(m0[i])
	})
	for i, e := range m0 {
		rw.seenAdd(e.key)
		rw.replayConsider(seedPre[i])
		if rw.done() {
			return
		}
	}

	for lo := 0; lo < len(work); {
		hi := len(work)
		batch := work[lo:hi]

		// Generate.
		results := make([][]pairGen, len(batch))
		committed := rw.res.PlansExplored
		var levelUsed atomic.Int64
		runWorkers(workers, len(batch), func(bi int) {
			results[bi] = rw.generateTask(batch[bi], m0, committed, &levelUsed)
		})

		// Admit.
		var survivors []survivor
		for bi := range batch {
			if rw.cancelled() {
				return
			}
			li := batch[bi]
			for _, pg := range results[bi] {
				rem := rw.budgetLeft()
				if pg.truncated && (rem < 0 || pg.attempts < rem) {
					// The soft budget cut generation short of what the true
					// budget allows: redo this pair exactly.
					pg.cands, pg.attempts = rw.genJoinCandidates(li, m0[pg.lj], rem)
				} else if rem >= 0 && pg.attempts > rem {
					kept := pg.cands[:0:0]
					for _, tc := range pg.cands {
						if tc.attempt < rem {
							kept = append(kept, tc)
						}
					}
					pg.cands, pg.attempts = kept, rem
				}
				rw.res.PlansExplored += pg.attempts
				for _, tc := range pg.cands {
					if !rw.seenAdd(tc.e.key) {
						continue
					}
					survivors = append(survivors, survivor{e: tc.e, explored: rw.res.PlansExplored})
					if len(work) < rw.opts.MaxPlans {
						work = append(work, tc.e)
					}
				}
			}
		}

		// Judge.
		runWorkers(workers, len(survivors), func(i int) {
			survivors[i].pre = rw.precomputeConsider(survivors[i].e)
		})

		// Commit.
		for i := range survivors {
			rw.replayConsider(survivors[i].pre)
			if rw.done() {
				rw.res.PlansExplored = survivors[i].explored
				return
			}
		}
		lo = hi
	}
}

// generateTask develops, for one work entry, the join candidates against
// every seed plan. committed is the exploration budget already consumed
// when the level started; the task's own attempts are counted against
// MaxExplored - committed, which never under-runs the cutoff the admit
// phase will apply (its consumed count can only be higher). levelUsed
// accumulates attempts across the whole level: once the level has
// collectively generated a budget's worth, further speculative generation
// is pointless — the admit phase will have run out by then — so the task
// stops and marks its remaining pairs truncated. (Truncation is always
// safe: admit regenerates a truncated pair exactly when it still has
// budget for it.)
func (rw *rewriter) generateTask(li entry, m0 []entry, committed int, levelUsed *atomic.Int64) []pairGen {
	if li.plan.NumScans() >= rw.opts.MaxScansPerPlan {
		return nil
	}
	softRem := -1
	if rw.opts.MaxExplored > 0 {
		softRem = rw.opts.MaxExplored - committed
		if softRem < 0 {
			softRem = 0
		}
	}
	used := 0
	out := make([]pairGen, 0, len(m0))
	for j, lj := range m0 {
		if rw.cancelled() {
			// The caller is gone; whatever the admit phase receives is
			// discarded once it polls cancellation itself.
			return out
		}
		limit := -1
		if softRem >= 0 {
			limit = softRem - used
			if limit < 0 {
				limit = 0
			}
			if levelUsed.Load() >= int64(softRem) {
				limit = 0
			}
		}
		cands, attempts := rw.genJoinCandidates(li, lj, limit)
		used += attempts
		if attempts > 0 {
			levelUsed.Add(int64(attempts))
		}
		out = append(out, pairGen{
			lj: j, cands: cands, attempts: attempts,
			truncated: limit >= 0 && attempts >= limit,
		})
	}
	return out
}

// runWorkers executes f(0..n-1) on up to `workers` goroutines, pulling
// indices from a shared counter, and returns when all calls finished.
func runWorkers(workers, n int, f func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}
