package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"xmlviews/internal/pattern"
	"xmlviews/internal/summary"
)

// rewriteCase is one summary + view set + query workload used to compare
// the sequential and parallel engines.
type rewriteCase struct {
	name  string
	sum   string
	query string
	views []*View
}

func parallelCases() []rewriteCase {
	return []rewriteCase{
		{
			name: "id-join", sum: "a(b(c d))",
			query: "a(//b[id](/c[v] /d[v]))",
			views: []*View{view("vc", "a(//b[id](/c[v]))"), view("vd", "a(//b[id](/d[v]))")},
		},
		{
			name: "figure5", sum: "r(a(b c(b)) c(b a(b)))",
			query: "r(//*(//*(//b[id])))",
			views: []*View{view("p1", "r(//a(//b[id]))"), view("p2", "r(//c(//b[id]))")},
		},
		{
			name: "union", sum: "a(b c)",
			query: "a(/*[id])",
			views: []*View{view("vb", "a(/b[id])"), view("vc", "a(/c[id])")},
		},
		{
			name: "many-views", sum: "s(x(p q) y(p r) z(q r))",
			query: "s(//p[id](?/q))",
			views: []*View{
				view("v1", "s(//p[id])"), view("v2", "s(//q[id])"),
				view("v3", "s(//r[id])"), view("v4", "s(//x[id](/p[id]))"),
				view("v5", "s(//y[id](/p[id]))"), view("v6", "s(/*[id,l])"),
			},
		},
		{
			name: "nested", sum: "a(b(c))",
			query: "a(/b[id](n/c[id,v]))",
			views: []*View{view("vb", "a(/b[id])"), view("vcv", "a(//c[id,v])")},
		},
	}
}

// resultSignature captures the deterministic parts of a RewriteResult:
// everything except the timing fields.
func resultSignature(res *RewriteResult) string {
	sig := fmt.Sprintf("kept=%d/%d explored=%d rewritings=%d\n",
		res.ViewsKept, res.ViewsTotal, res.PlansExplored, len(res.Rewritings))
	for _, p := range res.Rewritings {
		sig += p.String() + "\n"
	}
	return sig
}

// TestParallelRewriteMatchesSequential asserts that the worker-pool search
// produces byte-identical results (plans, order, exploration statistics)
// to the sequential search, across worker counts and budget settings.
func TestParallelRewriteMatchesSequential(t *testing.T) {
	for _, tc := range parallelCases() {
		for _, budget := range []int{7, 800, 4000} {
			t.Run(fmt.Sprintf("%s/budget=%d", tc.name, budget), func(t *testing.T) {
				s := summary.MustParse(tc.sum)
				q := pattern.MustParse(tc.query)
				opts := DefaultRewriteOptions()
				opts.MaxExplored = budget
				seq, err := Rewrite(q, tc.views, s, opts)
				if err != nil {
					t.Fatal(err)
				}
				want := resultSignature(seq)
				for _, workers := range []int{2, 8, -1} {
					opts.Workers = workers
					par, err := Rewrite(q, tc.views, s, opts)
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					if got := resultSignature(par); got != want {
						t.Errorf("workers=%d diverged:\nsequential:\n%s\nparallel:\n%s", workers, want, got)
					}
				}
			})
		}
	}
}

// TestConcurrentRewriteAndContained is the -race regression test: 8
// goroutines share one summary (and one subsume cache) and run both the
// parallel rewriting search and containment decisions concurrently; every
// goroutine must reproduce the sequential results exactly.
func TestConcurrentRewriteAndContained(t *testing.T) {
	s := summary.MustParse("site(regions(item(name mail location)) people(person(name)))")
	views := []*View{
		view("vi", "site(//item[id](/name[v]))"),
		view("vm", "site(//item[id](?/mail[v]))"),
		view("vp", "site(//person[id](/name[v]))"),
		view("vn", "site(//name[id,v])"),
	}
	q := pattern.MustParse("site(//item[id](/name[v] ?/mail[v]))")
	p1 := pattern.MustParse("site(//item[id](/name[v]))")
	p2 := pattern.MustParse("site(//*[id](/name[v]))")

	seqOpts := DefaultRewriteOptions()
	seqOpts.MaxExplored = 1500
	seqOpts.MaxResults = 8
	seq, err := Rewrite(q, views, s, seqOpts)
	if err != nil {
		t.Fatal(err)
	}
	wantSig := resultSignature(seq)
	wantContained, err := Contained(p1, p2, s)
	if err != nil {
		t.Fatal(err)
	}

	shared := NewSubsumeCache(0)
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 3; iter++ {
				opts := DefaultRewriteOptions()
				opts.MaxExplored = 1500
				opts.MaxResults = 8
				opts.Workers = 4
				opts.Subsume = shared
				res, err := Rewrite(q, views, s, opts)
				if err != nil {
					errs[g] = err
					return
				}
				if got := resultSignature(res); got != wantSig {
					errs[g] = fmt.Errorf("goroutine %d: rewrite diverged:\n%s\nwant:\n%s", g, got, wantSig)
					return
				}
				copts := DefaultContainOptions()
				copts.Subsume = shared
				ok, _, err := ContainedWith(p1, []*pattern.Pattern{p2}, s, copts)
				if err != nil {
					errs[g] = err
					return
				}
				if ok != wantContained {
					errs[g] = fmt.Errorf("goroutine %d: containment = %v, want %v", g, ok, wantContained)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestParallelFirstOnly checks the early-exit path: FirstOnly must report
// the same first rewriting in both modes.
func TestParallelFirstOnly(t *testing.T) {
	s := summary.MustParse("a(b)")
	views := []*View{view("v1", "a(/b[id])"), view("v2", "a(//b[id])")}
	q := pattern.MustParse("a(/b[id])")
	opts := DefaultRewriteOptions()
	opts.FirstOnly = true
	seq, err := Rewrite(q, views, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 8
	par, err := Rewrite(q, views, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Rewritings) != 1 || len(par.Rewritings) != 1 {
		t.Fatalf("FirstOnly counts: seq=%d par=%d", len(seq.Rewritings), len(par.Rewritings))
	}
	if seq.Rewritings[0].String() != par.Rewritings[0].String() {
		t.Fatalf("first rewriting differs: %s vs %s", seq.Rewritings[0], par.Rewritings[0])
	}
}

// TestSubsumeCacheSummaryScoped checks that a cache binds to the first
// summary it serves and bypasses (rather than mis-serves) any other:
// the keys are summary-local node indices, so cross-summary hits would
// return wrong verdicts.
func TestSubsumeCacheSummaryScoped(t *testing.T) {
	s1 := summary.MustParse("a(b(c))")
	s2 := summary.MustParse("x(y z)")
	c := NewSubsumeCache(0)
	if !c.bind(s1) {
		t.Fatal("fresh cache must bind its first summary")
	}
	if c.bind(s2) {
		t.Fatal("bound cache must reject a different summary")
	}
	if !c.bind(s1) {
		t.Fatal("bound cache must keep serving its owner")
	}
	// Sharing one ContainOptions across summaries stays correct: the
	// second summary's decisions bypass the bound cache.
	opts := DefaultContainOptions()
	opts.Subsume = NewSubsumeCache(0)
	p1 := pattern.MustParse("a(//c[id])")
	q1 := pattern.MustParse("a(/b(/c[id]))")
	ok, _, err := ContainedWith(p1, []*pattern.Pattern{q1}, s1, opts)
	if err != nil || !ok {
		t.Fatalf("s1 containment: %v %v", ok, err)
	}
	p2 := pattern.MustParse("x(/y[id])")
	ok, _, err = ContainedWith(p2, []*pattern.Pattern{p2}, s2, opts)
	if err != nil || !ok {
		t.Fatalf("s2 self-containment with foreign cache: %v %v", ok, err)
	}
}

func TestSubsumeCacheLRUEviction(t *testing.T) {
	c := NewSubsumeCache(stripeShards) // one slot per shard
	for i := 0; i < 10*stripeShards; i++ {
		c.put(fmt.Sprintf("key-%d", i), i%2 == 0)
	}
	if n := c.Len(); n > stripeShards {
		t.Fatalf("cache exceeded capacity: %d > %d", n, stripeShards)
	}
	c2 := NewSubsumeCache(0)
	c2.put("k", true)
	if v, ok := c2.get("k"); !ok || !v {
		t.Fatal("cache lost a fresh entry")
	}
	if _, ok := c2.get("absent"); ok {
		t.Fatal("phantom cache hit")
	}
}

// TestRunWorkersCoversAll sanity-checks the index-pulling worker pool.
func TestRunWorkersCoversAll(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		hit := make([]int32, 101)
		var mu sync.Mutex
		runWorkers(workers, len(hit), func(i int) {
			mu.Lock()
			hit[i]++
			mu.Unlock()
		})
		want := make([]int32, len(hit))
		for i := range want {
			want[i] = 1
		}
		if !reflect.DeepEqual(hit, want) {
			t.Fatalf("workers=%d: coverage %v", workers, hit)
		}
	}
}
