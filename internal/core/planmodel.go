package core

import (
	"fmt"
	"sort"

	"xmlviews/internal/pattern"
	"xmlviews/internal/predicate"
	"xmlviews/internal/summary"
)

// PlanModel computes the canonical model of a plan. Plans compose exactly
// at the canonical-model level (see DESIGN.md): scans contribute their
// pattern's model, joins merge compatible tree pairs by gluing the join
// nodes and their forced ancestor chains, unions take set union, and the
// remaining operators edit slots, formulas or nesting sequences. The model
// fully characterizes the plan's result on every conforming document, which
// is what makes the ≡S test of Algorithm 1 possible without a syntactic
// "pattern for the plan" (Proposition 3.3's unions are implicit here).
func PlanModel(p *Plan, s *summary.Summary, opts ModelOptions) ([]*Tree, error) {
	switch p.Op {
	case OpScan:
		return ModelWith(p.View.Pattern, s, opts)
	case OpJoin:
		left, err := PlanModel(p.Left, s, opts)
		if err != nil {
			return nil, err
		}
		right, err := PlanModel(p.Right, s, opts)
		if err != nil {
			return nil, err
		}
		return joinModels(left, right, p, s, opts)
	case OpUnion:
		byKey := map[string]*Tree{}
		for _, part := range p.Parts {
			m, err := PlanModel(part, s, opts)
			if err != nil {
				return nil, err
			}
			for _, t := range m {
				byKey[t.Key()] = t
			}
		}
		return sortedTrees(byKey), nil
	case OpProject:
		return mapModel(p.Input, s, opts, func(t *Tree) *Tree {
			out := t.Clone()
			slots := make([]Slot, len(p.Keep))
			for i, k := range p.Keep {
				slots[i] = out.Slots[k]
			}
			out.Slots = slots
			out.key = ""
			return out
		})
	case OpSelectLabel:
		return mapModel(p.Input, s, opts, func(t *Tree) *Tree {
			sl := t.Slots[p.Slot]
			if sl.Node < 0 {
				return nil // σ on ⊥ drops the tuple
			}
			if t.Label(sl.Node) != p.Label {
				return nil
			}
			return t
		})
	case OpSelectValue:
		return mapModel(p.Input, s, opts, func(t *Tree) *Tree {
			sl := t.Slots[p.Slot]
			if sl.Node < 0 {
				return nil
			}
			out := t.Clone()
			out.Nodes[sl.Node].Pred = out.Nodes[sl.Node].Pred.And(p.Pred)
			out.key = ""
			if !out.Satisfiable() {
				return nil
			}
			return out
		})
	case OpUnnest:
		return mapModel(p.Input, s, opts, func(t *Tree) *Tree {
			out := t.Clone()
			for _, k := range p.Slots {
				if n := len(out.Slots[k].Nest); n > 0 {
					out.Slots[k].Nest = out.Slots[k].Nest[:n-1]
				}
			}
			out.key = ""
			return out
		})
	case OpGroupBy:
		return mapModel(p.Input, s, opts, func(t *Tree) *Tree {
			out := t.Clone()
			for _, k := range p.Slots {
				out.Slots[k].Nest = insertNestStep(s, out.Slots[k].Nest, p.BySID)
			}
			out.key = ""
			return out
		})
	}
	return nil, fmt.Errorf("core: unknown plan op %d", p.Op)
}

func mapModel(in *Plan, s *summary.Summary, opts ModelOptions, f func(*Tree) *Tree) ([]*Tree, error) {
	model, err := PlanModel(in, s, opts)
	if err != nil {
		return nil, err
	}
	byKey := map[string]*Tree{}
	for _, t := range model {
		if out := f(t); out != nil {
			byKey[out.Key()] = out
		}
	}
	return sortedTrees(byKey), nil
}

func sortedTrees(byKey map[string]*Tree) []*Tree {
	out := make([]*Tree, 0, len(byKey))
	for _, t := range byKey {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// insertNestStep inserts a grouping step, keeping the sequence ordered by
// summary depth (nesting steps lie along an ancestor chain).
func insertNestStep(s *summary.Summary, nest []int, sid int) []int {
	out := append([]int(nil), nest...)
	out = append(out, sid)
	sort.Slice(out, func(i, j int) bool { return s.Node(out[i]).Depth < s.Node(out[j]).Depth })
	return out
}

// joinModels merges every compatible pair of canonical trees.
func joinModels(left, right []*Tree, p *Plan, s *summary.Summary, opts ModelOptions) ([]*Tree, error) {
	byKey := map[string]*Tree{}
	max := opts.MaxTrees
	if max <= 0 {
		max = DefaultModelOptions().MaxTrees
	}
	for _, t1 := range left {
		for _, t2 := range right {
			m := mergeJoinPair(t1, t2, p, s)
			if m == nil {
				continue
			}
			byKey[m.Key()] = m
			if len(byKey) > max {
				return nil, fmt.Errorf("core: join model exceeds %d trees", max)
			}
		}
	}
	if p.Outer {
		outerVariants(left, p, s, byKey)
		if len(byKey) > max {
			return nil, fmt.Errorf("core: join model exceeds %d trees", max)
		}
	}
	return sortedTrees(byKey), nil
}

// mergeJoinPair merges one pair of trees under the join predicate, or nil
// when the pair is incompatible.
func mergeJoinPair(t1, t2 *Tree, p *Plan, s *summary.Summary) *Tree {
	sl1, sl2 := t1.Slots[p.LeftSlot], t2.Slots[p.RightSlot]
	// Joins operate on top-level (unnested) bound slots.
	if sl1.Node < 0 || sl2.Node < 0 || len(sl1.Nest) > 0 || len(sl2.Nest) > 0 {
		return nil
	}
	s1, s2 := t1.Nodes[sl1.Node].SID, t2.Nodes[sl2.Node].SID
	var x2 int // the t2 node unified with t1's join node
	switch p.Kind {
	case JoinID:
		if s1 != s2 {
			return nil
		}
		x2 = sl2.Node
	case JoinParent:
		if s.Node(s2).Parent != s1 {
			return nil
		}
		x2 = t2.Nodes[sl2.Node].Parent
	case JoinAncestor:
		if !s.IsAncestor(s1, s2) {
			return nil
		}
		x2 = t2.AncestorAtDepth(sl2.Node, s.Node(s1).Depth)
	}
	if x2 < 0 {
		return nil
	}
	out, mapping := mergeTrees(t1, t2, sl1.Node, x2)
	if out == nil {
		return nil
	}
	// Concatenate slots; right slots are remapped, and a nested join adds
	// the grouping step at the join node (Section 4.6).
	for _, sl := range t2.Slots {
		ns := Slot{Node: -1, Attrs: sl.Attrs}
		if sl.Node >= 0 {
			ns.Node = mapping[sl.Node]
			ns.Nest = append([]int(nil), sl.Nest...)
			if p.Nested {
				ns.Nest = insertNestStep(s, ns.Nest, s1)
			}
		}
		out.Slots = append(out.Slots, ns)
	}
	return out
}

// mergeTrees glues t2 onto t1, unifying t2's node x2 with t1's node x1 and,
// transitively, their ancestor chains (which carry the same summary tags
// since tree depth equals summary depth). All other t2 nodes are copied as
// fresh nodes: nodes off the shared ancestor chain may bind different
// document nodes even when they share a summary tag. Formulas of unified
// nodes are conjoined; nil is returned when a conjunction is unsatisfiable.
// The returned mapping translates t2 node indexes to merged indexes.
func mergeTrees(t1, t2 *Tree, x1, x2 int) (*Tree, []int) {
	if t1.Nodes[x1].SID != t2.Nodes[x2].SID {
		return nil, nil
	}
	out := t1.Clone()
	out.key = ""
	mapping := make([]int, len(t2.Nodes))
	for i := range mapping {
		mapping[i] = -1
	}
	// Unify the ancestor chains (same depth ⇒ same summary tag).
	d := t1.Depth(x1)
	for depth := 1; depth <= d; depth++ {
		a := t1.AncestorAtDepth(x1, depth)
		b := t2.AncestorAtDepth(x2, depth)
		mapping[b] = a
		out.Nodes[a].Pred = out.Nodes[a].Pred.And(t2.Nodes[b].Pred)
		if out.Nodes[a].Pred.IsFalse() {
			return nil, nil
		}
	}
	// Copy the remaining t2 nodes in index order (parents precede
	// children by construction).
	for i := range t2.Nodes {
		if mapping[i] >= 0 {
			continue
		}
		parent := t2.Nodes[i].Parent
		if parent < 0 || mapping[parent] < 0 {
			// Should not happen: every node hangs below the root, which
			// is always unified.
			return nil, nil
		}
		mapping[i] = out.AddNode(mapping[parent], t2.Nodes[i].SID, t2.Nodes[i].Pred)
	}
	// Carry t2's erased-subtree records.
	for _, e := range t2.Erased {
		out.Erased = append(out.Erased, ErasedSub{Parent: mapping[e.Parent], Root: e.Root})
	}
	return out, mapping
}

// treeHoms enumerates the homomorphisms of canonical tree te into canonical
// tree tq: root to root, parent-child edges preserved, equal summary tags
// (implied), jointly satisfiable formulas. Used to decide q ⊆S plan: a
// tuple of the plan appears on every document realizing tq exactly when
// some plan tree maps into tq on the right slots.
type treeHom struct {
	Map []int // te node -> tq node
	Box predicate.Box
}

func treeHoms(te, tq *Tree) []treeHom {
	if te.Nodes[0].SID != tq.Nodes[0].SID {
		return nil
	}
	var out []treeHom
	mapping := make([]int, len(te.Nodes))
	var rec func(i int)
	rec = func(i int) {
		if i == len(te.Nodes) {
			hm := treeHom{Map: append([]int(nil), mapping...), Box: predicate.NewBox()}
			for n, m := range hm.Map {
				if !te.Nodes[n].Pred.IsTrue() {
					hm.Box = hm.Box.Constrain(m, te.Nodes[n].Pred)
				}
			}
			if !hm.Box.IsEmpty() {
				out = append(out, hm)
			}
			return
		}
		if te.Nodes[i].Parent < 0 {
			mapping[i] = 0
			rec(i + 1)
			return
		}
		parentImg := mapping[te.Nodes[i].Parent]
		for _, c := range tq.Nodes[parentImg].Children {
			if tq.Nodes[c].SID != te.Nodes[i].SID {
				continue
			}
			if tq.Nodes[c].Pred.And(te.Nodes[i].Pred).IsFalse() {
				continue
			}
			mapping[i] = c
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// outerProbe builds, for an outer join against a right-side scan, the
// synthetic optional subtree whose absence characterizes the ⊥ tuples: a
// pattern describing "the right side has a match joining this anchor".
// The probe must be exact for containment to remain sound in both
// directions, so outer joins are only modeled when the right view is a
// chain pattern (single-child nodes, predicates only on the join leaf)
// and either all axes are child steps or the leaf is a 2-node //leaf.
// It returns nil when no exact probe exists for this anchor tag.
func outerProbe(right *Plan, rightSlot, anchorSID int, kind JoinKind, s *summary.Summary) *pattern.Node {
	if right.Op != OpScan {
		return nil
	}
	p := right.View.Pattern
	// Collect the chain and verify shape.
	var chain []*pattern.Node
	for n := p.Root; ; {
		chain = append(chain, n)
		if len(n.Children) == 0 {
			break
		}
		if len(n.Children) != 1 {
			return nil
		}
		n = n.Children[0]
	}
	leaf := chain[len(chain)-1]
	if leaf != p.Returns()[rightSlot] {
		return nil
	}
	for _, n := range chain[:len(chain)-1] {
		if !n.Pred.IsTrue() || n.Optional {
			return nil
		}
	}
	anchorDepth := s.Node(anchorSID).Depth

	allChild := true
	for _, n := range chain[1:] {
		if n.Axis != pattern.Child {
			allChild = false
		}
	}
	switch {
	case allChild:
		// Pattern depth equals summary depth; the anchor must sit on the
		// chain with matching labels above it.
		if anchorDepth >= len(chain) {
			return nil
		}
		pathChain, ok := s.ChainBetween(summary.RootID, anchorSID)
		if !ok {
			return nil
		}
		for i := 0; i < anchorDepth; i++ {
			if !chain[i].MatchesLabel(s.Node(pathChain[i]).Label) {
				return nil
			}
		}
		// Probe: the child chain below the anchor.
		var root *pattern.Node
		var cur *pattern.Node
		for _, n := range chain[anchorDepth:] {
			c := &pattern.Node{Label: n.Label, Axis: pattern.Child, Optional: root == nil, Pred: n.Pred, Index: -1}
			if root == nil {
				root = c
			} else {
				cur.Children = append(cur.Children, c)
				c.Parent = cur
			}
			cur = c
		}
		cur.Attrs = leaf.Attrs
		return root
	case len(chain) == 2 && leaf.Axis == pattern.Descendant:
		// root(//leaf): the join kind decides the probe's reach — a parent
		// join misses only leaf-labeled children of the anchor, an
		// ancestor join only descendants.
		axis := pattern.Descendant
		if kind == JoinParent {
			axis = pattern.Child
		}
		return &pattern.Node{
			Label: leaf.Label, Axis: axis, Optional: true,
			Pred: leaf.Pred, Attrs: leaf.Attrs, Index: -1,
		}
	}
	return nil
}

// outerVariants adds, for every left tree, the ⊥-padded variant of an
// outer join, recording the probe as an erased subtree. Variants whose
// probe is forced by the tree itself (strong edges) are unrealizable and
// skipped, mirroring the optional-edge maximality filter.
func outerVariants(left []*Tree, p *Plan, s *summary.Summary, byKey map[string]*Tree) {
	rightSlots := p.Right.OutSlots()
	for _, t1 := range left {
		sl1 := t1.Slots[p.LeftSlot]
		if sl1.Node < 0 || len(sl1.Nest) > 0 {
			continue
		}
		probe := outerProbe(p.Right, p.RightSlot, t1.Nodes[sl1.Node].SID, p.Kind, s)
		if probe == nil {
			continue
		}
		if forcedMatchExists(probe, sl1.Node, t1) {
			continue
		}
		out := t1.Clone()
		out.key = ""
		for _, ps := range rightSlots {
			out.Slots = append(out.Slots, Slot{Node: -1, Attrs: ps.Attrs})
		}
		out.Erased = append(out.Erased, ErasedSub{Parent: sl1.Node, Root: probe})
		byKey[out.Key()] = out
	}
}
