package core

import (
	"strconv"
	"strings"

	"xmlviews/internal/pattern"
	"xmlviews/internal/summary"
)

// prepareViews expands the view set for rewriting (Section 4.6):
//
//   - virtual IDs: when the ID scheme supports parent derivation and a
//     pattern node's paths are all at the same vertical distance from its
//     parent's paths, the parent gains a derived ID attribute (navfID);
//   - navigation views: for every slot storing both ID and C with a single
//     associated path, one derived view per descendant path exposes the
//     data reachable by navigating inside the stored content — the
//     executable form of the paper's C-attribute unfolding.
//
// The returned views are clones; the input views are never mutated.
func prepareViews(views []*View, s *summary.Summary, maxNavDepth int) []*View {
	var out []*View
	for _, v := range views {
		pv := &View{
			Name:               v.Name,
			Pattern:            v.Pattern.Clone(),
			DerivableParentIDs: v.DerivableParentIDs,
		}
		if v.DerivableParentIDs {
			addVirtualIDs(pv, s)
			if len(pv.VirtualSlots) > 0 {
				pv.Stored = v.Pattern.Clone()
				pv.StoredSlotMap = storedSlotMap(pv.Stored, pv.Pattern)
			}
		}
		out = append(out, pv)
		out = append(out, navViews(pv, s, maxNavDepth)...)
	}
	return out
}

// storedSlotMap aligns the stored pattern's return slots with the prepared
// pattern's. The two patterns are structurally identical (preparation only
// adds attributes), so nodes correspond by preorder index.
func storedSlotMap(stored, prepared *pattern.Pattern) []int {
	prepSlotAt := map[int]int{} // preorder index -> prepared slot
	for k, rn := range prepared.Returns() {
		prepSlotAt[rn.Index] = k
	}
	out := make([]int, stored.Arity())
	for i, rn := range stored.Returns() {
		out[i] = prepSlotAt[rn.Index]
	}
	return out
}

// addVirtualIDs walks the pattern bottom-up, adding derived ID attributes
// to parents of ID-bearing nodes at constant vertical distance.
func addVirtualIDs(v *View, s *summary.Summary) {
	p := v.Pattern
	paths := pattern.AssociatedPaths(p, s)
	type derivation struct {
		source *pattern.Node
		up     int
	}
	virtual := map[*pattern.Node]derivation{}
	// Iterate to a fixpoint ("this process can be repeated").
	for changed := true; changed; {
		changed = false
		for _, n := range p.Nodes() {
			if n.Parent == nil || !n.Attrs.Has(pattern.AttrID) {
				continue
			}
			parent := n.Parent
			if parent.Attrs.Has(pattern.AttrID) {
				continue
			}
			dist, ok := constantDistance(s, paths[parent.Index], paths[n.Index])
			if !ok {
				continue
			}
			parent.Attrs |= pattern.AttrID
			virtual[parent] = derivation{source: n, up: dist}
			changed = true
		}
	}
	if len(virtual) == 0 {
		return
	}
	p.Finish()
	v.VirtualSlots = map[int]VirtualID{}
	slotOf := map[*pattern.Node]int{}
	for k, rn := range p.Returns() {
		slotOf[rn] = k
	}
	// Walk the pattern's node list rather than the derivation map: every
	// virtual node carries AttrID, so it is a return node with a slot.
	for _, n := range p.Nodes() {
		if d, ok := virtual[n]; ok {
			v.VirtualSlots[slotOf[n]] = VirtualID{FromSlot: slotOf[d.source], Up: d.up}
		}
	}
}

// constantDistance reports the unique depth difference between every path
// of the child set and its ancestor in the parent set.
func constantDistance(s *summary.Summary, parentPaths, childPaths []int) (int, bool) {
	if len(parentPaths) == 0 || len(childPaths) == 0 {
		return 0, false
	}
	dist := -1
	for _, cp := range childPaths {
		found := false
		for _, pp := range parentPaths {
			if pp == cp || s.IsAncestor(pp, cp) {
				d := s.Node(cp).Depth - s.Node(pp).Depth
				if dist == -1 {
					dist = d
				} else if dist != d {
					return 0, false
				}
				found = true
			}
		}
		if !found {
			return 0, false
		}
	}
	if dist <= 0 {
		return 0, false
	}
	return dist, true
}

// navViews builds the derived navigation views of a prepared view.
func navViews(v *View, s *summary.Summary, maxDepth int) []*View {
	if maxDepth <= 0 {
		maxDepth = 8
	}
	paths := pattern.AssociatedPaths(v.Pattern, s)
	var out []*View
	for slot, rn := range v.Pattern.Returns() {
		if !rn.Attrs.Has(pattern.AttrID | pattern.AttrContent) {
			continue
		}
		anchors := paths[rn.Index]
		if len(anchors) != 1 {
			// Multi-path anchors would need a union of navigation views;
			// we keep the C attribute unexpanded in that case.
			continue
		}
		anchor := anchors[0]
		for _, target := range s.Descendants(anchor) {
			if s.Node(target).Depth-s.Node(anchor).Depth > maxDepth {
				continue
			}
			nv := buildNavView(v, slot, anchor, target, s)
			out = append(out, nv)
		}
	}
	return out
}

// buildNavView constructs the pattern root→anchor[id]→target[id,v] and
// wraps it as a derived view.
func buildNavView(base *View, baseSlot, anchor, target int, s *summary.Summary) *View {
	chainTop, _ := s.ChainBetween(summary.RootID, anchor)
	p := pattern.NewPattern(s.Node(summary.RootID).Label)
	cur := p.Root
	for _, sid := range chainTop[1:] {
		cur = p.AddChild(cur, s.Node(sid).Label, pattern.Child)
	}
	cur.Attrs = pattern.AttrID
	chainDown, _ := s.ChainBetween(anchor, target)
	relPath := make([]string, 0, len(chainDown)-1)
	for _, sid := range chainDown[1:] {
		cur = p.AddChild(cur, s.Node(sid).Label, pattern.Child)
		relPath = append(relPath, s.Node(sid).Label)
	}
	cur.Attrs = pattern.AttrID | pattern.AttrValue
	p.Finish()
	return &View{
		Name:               base.Name + "→" + strings.TrimPrefix(s.PathString(target), s.PathString(anchor)),
		Pattern:            p,
		DerivableParentIDs: base.DerivableParentIDs,
		Nav:                &NavSpec{Base: base, BaseSlot: baseSlot, RelPath: relPath},
	}
}

// pruneViews drops views irrelevant to the query (Proposition 3.4): a view
// is kept only if some non-root view node's associated paths intersect, or
// are in ancestor/descendant relation with, some non-root query node's
// paths.
func pruneViews(views []*View, q *pattern.Pattern, s *summary.Summary) []*View {
	qPaths := pattern.AssociatedPaths(q, s)
	qSet := map[int]bool{}
	for _, n := range q.Nodes()[1:] {
		for _, sid := range qPaths[n.Index] {
			qSet[sid] = true
		}
	}
	related := func(x int) bool {
		if qSet[x] {
			return true
		}
		for y := range qSet {
			if s.IsAncestor(x, y) || s.IsAncestor(y, x) {
				return true
			}
		}
		return false
	}
	var out []*View
	for _, v := range views {
		vPaths := pattern.AssociatedPaths(v.Pattern, s)
		keep := false
		for _, n := range v.Pattern.Nodes()[1:] {
			for _, sid := range vPaths[n.Index] {
				if related(sid) {
					keep = true
					break
				}
			}
			if keep {
				break
			}
		}
		if keep {
			out = append(out, v)
		}
	}
	return out
}

// slotPaths returns the set of summary ids a plan slot binds across the
// model, used for the Proposition 3.7 pruning of return-node choices.
func slotPaths(model []*Tree, slot int) map[int]bool {
	out := map[int]bool{}
	for _, t := range model {
		if sl := t.Slots[slot]; sl.Node >= 0 {
			out[t.Nodes[sl.Node].SID] = true
		}
	}
	return out
}

// modelKey is a deterministic key for a whole canonical model.
func modelKey(model []*Tree) string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(len(model)))
	for _, t := range model {
		b.WriteByte('|')
		b.WriteString(t.Key())
	}
	return b.String()
}
