package core

import (
	"xmlviews/internal/xmltree"
)

// Realize turns a canonical tree into a concrete witness document: labels
// come from the summary tags and each node's value is a sample satisfying
// its formula. The returned node list is indexed by canonical tree node
// index, so the document nodes bound to the return slots can be recovered.
//
// Realized documents are the counterexamples containment reports: the
// tree's return tuple is in p(doc) but not in q(doc).
func (t *Tree) Realize() (*xmltree.Document, []*xmltree.Node) {
	nodes := make([]*xmltree.Node, len(t.Nodes))
	doc := xmltree.NewDocument(t.Label(0))
	doc.Root.PathID = t.Nodes[0].SID
	nodes[0] = doc.Root
	setValue(doc.Root, t, 0)
	var build func(ti int)
	build = func(ti int) {
		for _, c := range t.Nodes[ti].Children {
			n := nodes[ti].AddChild(t.Label(c), "")
			n.PathID = t.Nodes[c].SID
			nodes[c] = n
			setValue(n, t, c)
			build(c)
		}
	}
	build(0)
	return doc, nodes
}

func setValue(n *xmltree.Node, t *Tree, ti int) {
	pred := t.Nodes[ti].Pred
	if pred.IsTrue() {
		return
	}
	if a, ok := pred.Sample(); ok {
		n.Value = a.Text()
	}
}
