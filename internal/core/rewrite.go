package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"time"

	"xmlviews/internal/pattern"
	"xmlviews/internal/summary"
)

// ErrUnsatisfiable reports that the query cannot match any document
// conforming to the summary; callers (e.g. a serving layer) can treat it
// as a client error rather than a search failure.
var ErrUnsatisfiable = errors.New("core: query is unsatisfiable under the summary")

// RewriteOptions tunes Algorithm 1.
type RewriteOptions struct {
	Model ModelOptions
	// MaxScansPerPlan bounds the number of view scans per join plan. The
	// theoretical bound is (|q|-1)·|S| (Proposition 3.6); the default of 4
	// covers the practical cases while keeping search tractable.
	MaxScansPerPlan int
	// MaxPlans bounds the working set M.
	MaxPlans int
	// MaxUnion bounds the size of unions tried in the union phase
	// (Algorithm 1, lines 13-14).
	MaxUnion int
	// FirstOnly stops after the first equivalent rewriting.
	FirstOnly bool
	// MaxNavDepth bounds content-navigation view generation.
	MaxNavDepth int
	// DisableVirtualIDs turns off the navfID preprocessing.
	DisableVirtualIDs bool
	// MaxResults bounds the number of rewritings reported.
	MaxResults int
	// MaxExplored bounds the number of join merges attempted; the search
	// stops (reporting what it found) once exhausted.
	MaxExplored int
	// Workers sets the number of goroutines exploring join candidates:
	// 0 or 1 runs the search sequentially, n > 1 fans each DP level of the
	// left-deep development out across n workers, and any negative value
	// uses runtime.GOMAXPROCS(0). Parallel and sequential modes produce
	// identical RewriteResults (rewritings, counters and exploration
	// statistics); only the timing fields differ.
	Workers int
	// Subsume optionally shares a summary-implication cache across calls
	// (useful when rewriting many queries over one summary). When nil, a
	// fresh bounded cache is created per call.
	Subsume *SubsumeCache
	// Ctx optionally cancels the search: it is checked between join-merge
	// batches (the budget loop) and in the union phase, so an abandoned
	// request (e.g. a disconnected HTTP client) stops burning CPU. A nil
	// context never cancels. Rewrite returns the context's error when the
	// search was cut short.
	Ctx context.Context
}

// DefaultRewriteOptions returns the defaults described above.
func DefaultRewriteOptions() RewriteOptions {
	return RewriteOptions{
		Model:           DefaultModelOptions(),
		MaxScansPerPlan: 4,
		MaxPlans:        4000,
		MaxUnion:        3,
		MaxNavDepth:     8,
		MaxResults:      64,
		MaxExplored:     200000,
	}
}

// effectiveWorkers resolves the Workers knob to a concrete worker count.
func (o RewriteOptions) effectiveWorkers() int {
	switch {
	case o.Workers < 0:
		return runtime.GOMAXPROCS(0)
	case o.Workers == 0:
		return 1
	}
	return o.Workers
}

// RewriteResult reports the rewritings found and the timing/pruning
// statistics the paper's Figure 15 plots.
type RewriteResult struct {
	// Rewritings are the S-equivalent plans found, deduplicated up to
	// algebraic equivalence (identical canonical models), in discovery
	// order. Each plan's output schema matches the query's return nodes.
	Rewritings []*Plan
	// Setup is the preprocessing time: view preparation, pruning and the
	// query's canonical model.
	Setup time.Duration
	// First is the time from start until the first rewriting (zero when
	// none was found); Total is the overall time.
	First, Total time.Duration
	// ViewsTotal / ViewsKept count views before and after Proposition 3.4
	// pruning (derived navigation views included).
	ViewsTotal, ViewsKept int
	// PlansExplored counts the plan-model pairs examined.
	PlansExplored int
}

// entry is one plan–model pair of the working set.
type entry struct {
	plan  *Plan
	model []*Tree
	key   string
	// slotP caches, per slot, the summary nodes the slot can bind: the
	// cheap compatibility pre-check for join candidates.
	slotP []map[int]bool
	// reduced caches the Proposition 3.5 redundancy key.
	reduced string
}

func newEntry(plan *Plan, model []*Tree) entry {
	e := entry{plan: plan, model: model, key: modelKey(model)}
	e.reduced = reducedKey(model)
	n := len(plan.OutSlots())
	e.slotP = make([]map[int]bool, n)
	for j := 0; j < n; j++ {
		e.slotP[j] = slotPaths(model, j)
	}
	return e
}

// Rewrite runs Algorithm 1: it finds the plans over the given views that
// are S-equivalent to q, using ⋈=, ⋈≺, ⋈≺≺ (plain and nested), selections,
// projections, unnest/group-by nesting adjustments, and unions.
func Rewrite(q *pattern.Pattern, views []*View, s *summary.Summary, opts RewriteOptions) (*RewriteResult, error) {
	if opts.MaxScansPerPlan <= 0 {
		// Legacy zero-value handling: fill in the unset search bounds,
		// keeping every field the caller did set (flags and engine knobs
		// included).
		def := DefaultRewriteOptions()
		opts.MaxScansPerPlan = def.MaxScansPerPlan
		if opts.MaxPlans <= 0 {
			opts.MaxPlans = def.MaxPlans
		}
		if opts.MaxUnion <= 0 {
			opts.MaxUnion = def.MaxUnion
		}
		if opts.MaxNavDepth <= 0 {
			opts.MaxNavDepth = def.MaxNavDepth
		}
		if opts.MaxResults <= 0 {
			opts.MaxResults = def.MaxResults
		}
		if opts.MaxExplored <= 0 {
			opts.MaxExplored = def.MaxExplored
		}
		if opts.Model.MaxTrees <= 0 {
			opts.Model = def.Model
		}
	}
	start := time.Now()
	res := &RewriteResult{}

	qModel, err := ModelWith(q, s, opts.Model)
	if err != nil {
		return nil, err
	}
	if len(qModel) == 0 {
		return nil, ErrUnsatisfiable
	}
	qPaths := pattern.AssociatedPaths(q, s)

	prepared := prepareViewSet(views, s, opts)
	res.ViewsTotal = len(prepared)
	kept := pruneViews(prepared, q, s)
	res.ViewsKept = len(kept)

	// Build the initial plan–model pairs (M0), most-relevant views first:
	// the left-deep search then reaches promising combinations before the
	// exploration budget runs out.
	var m0 []entry
	for _, v := range kept {
		model, err := ModelWith(v.Pattern, s, opts.Model)
		if err != nil {
			return nil, err
		}
		if len(model) == 0 {
			continue // S-unsatisfiable view
		}
		m0 = append(m0, newEntry(Scan(v), model))
	}
	sortByRelevance(m0, q, qPaths)
	res.Setup = time.Since(start)

	subsume := opts.Subsume
	if subsume == nil {
		subsume = NewSubsumeCache(0)
	}
	rw := &rewriter{
		q: q, qModel: qModel, qPaths: qPaths, s: s, opts: opts,
		seen: map[string]bool{}, adaptedSeen: map[string]bool{},
		resultKeys: map[string]bool{}, cover: newCoverMemo(), subsume: subsume,
		res: res, start: start,
	}
	// Memoize the shared trees' canonical keys up front, so worker
	// goroutines only ever read them.
	for _, t := range qModel {
		t.Key()
	}

	work := append([]entry(nil), m0...)
	if workers := opts.effectiveWorkers(); workers > 1 {
		rw.verdicts = newVerdictMemo()
		rw.searchParallel(work, m0, workers)
	} else {
		rw.searchSequential(work, m0)
	}

	// Union phase (Algorithm 1, lines 13-14).
	rw.unionPhase()
	if rw.cancelled() {
		// The search was cut short; partial results are not the canonical
		// answer, so report the cancellation instead.
		return nil, opts.Ctx.Err()
	}
	res.Total = time.Since(start)
	return res, nil
}

// searchSequential seeds the working set with the single-view plans and
// runs the left-deep join development (Algorithm 1, lines 2-11) on one
// goroutine.
func (rw *rewriter) searchSequential(work []entry, m0 []entry) {
	for _, e := range m0 {
		rw.seenAdd(e.key)
		rw.consider(e)
		if rw.done() {
			return
		}
	}
	for i := 0; i < len(work); i++ {
		if rw.cancelled() {
			return
		}
		li := work[i]
		if li.plan.NumScans() >= rw.opts.MaxScansPerPlan {
			continue
		}
		for _, lj := range m0 {
			cands, attempts := rw.genJoinCandidates(li, lj, rw.budgetLeft())
			rw.res.PlansExplored += attempts
			for _, tc := range cands {
				if !rw.seenAdd(tc.e.key) {
					continue
				}
				rw.consider(tc.e)
				if rw.done() {
					return
				}
				if len(work) < rw.opts.MaxPlans {
					work = append(work, tc.e)
				}
			}
		}
	}
}

func prepareViewSet(views []*View, s *summary.Summary, opts RewriteOptions) []*View {
	if opts.DisableVirtualIDs {
		stripped := make([]*View, len(views))
		for i, v := range views {
			nv := *v
			nv.DerivableParentIDs = false
			stripped[i] = &nv
		}
		views = stripped
	}
	return prepareViews(views, s, opts.MaxNavDepth)
}

// sortByRelevance orders entries by how many query return slots their
// slots can serve (paths overlap and attributes suffice), ties broken by
// smaller canonical models.
func sortByRelevance(m0 []entry, q *pattern.Pattern, qPaths [][]int) {
	score := func(e entry) int {
		total := 0
		for k, rn := range q.Returns() {
			_ = k
			qSet := map[int]bool{}
			for _, sid := range qPaths[rn.Index] {
				qSet[sid] = true
			}
			for j, ps := range e.plan.OutSlots() {
				if rn.Attrs&^ps.Attrs != 0 {
					continue
				}
				hit := false
				for sid := range e.slotP[j] {
					if qSet[sid] {
						hit = true
						break
					}
				}
				if hit {
					total++
					break
				}
			}
		}
		return total
	}
	scores := make(map[*Plan]int, len(m0))
	for _, e := range m0 {
		scores[e.plan] = score(e)
	}
	sort.SliceStable(m0, func(i, j int) bool {
		si, sj := scores[m0[i].plan], scores[m0[j].plan]
		if si != sj {
			return si > sj
		}
		return len(m0[i].model) < len(m0[j].model)
	})
}

type rewriter struct {
	q      *pattern.Pattern
	qModel []*Tree
	qPaths [][]int
	s      *summary.Summary
	opts   RewriteOptions

	// seen is the canonical-model dedup set. It is only touched by the
	// sequential phases of either engine (the parallel admit step runs on
	// one goroutine), so a plain map suffices.
	seen        map[string]bool
	adaptedSeen map[string]bool
	resultKeys  map[string]bool
	// cover memoizes plan-tree cover verdicts; subsume memoizes
	// summary-implication decisions. Both are concurrency-safe and shared
	// by all workers.
	cover   *coverMemo
	subsume *SubsumeCache
	// verdicts memoizes both containment directions per adaptation key so
	// parallel workers don't redo work the sequential path would skip via
	// adaptedSeen. Allocated only in parallel mode.
	verdicts *verdictMemo
	res      *RewriteResult
	start    time.Time

	// partials are adapted plans contained in q but not equivalent,
	// kept for the union phase.
	partials []entry
}

func (rw *rewriter) done() bool {
	if rw.cancelled() {
		return true
	}
	if len(rw.res.Rewritings) == 0 {
		return false
	}
	return rw.opts.FirstOnly || len(rw.res.Rewritings) >= rw.opts.MaxResults
}

// cancelled reports whether the caller's context was cancelled; the search
// loops poll it between join-merge batches.
func (rw *rewriter) cancelled() bool {
	if rw.opts.Ctx == nil {
		return false
	}
	select {
	case <-rw.opts.Ctx.Done():
		return true
	default:
		return false
	}
}

// seenAdd inserts a canonical-model key into the dedup set, reporting
// whether it was absent.
func (rw *rewriter) seenAdd(key string) bool {
	if rw.seen[key] {
		return false
	}
	rw.seen[key] = true
	return true
}

// budgetLeft returns the remaining join-merge budget, or -1 for unlimited.
func (rw *rewriter) budgetLeft() int {
	if rw.opts.MaxExplored <= 0 {
		return -1
	}
	left := rw.opts.MaxExplored - rw.res.PlansExplored
	if left < 0 {
		left = 0
	}
	return left
}

// taggedCand is one join candidate tagged with the attempt index at which
// it was produced, so a bounded exploration budget can be replayed exactly
// when candidates are generated ahead of time by a worker.
type taggedCand struct {
	e       entry
	attempt int
}

// genJoinCandidates develops all joins of li (left) with lj (right), using
// the cached slot path sets as a cheap compatibility pre-check. Every
// nested/outer variant costs one attempt whether or not it yields a
// candidate; generation stops once limit attempts were made (limit < 0 =
// unlimited). Candidates that merely re-derive one child (Proposition 3.5)
// are dropped here.
func (rw *rewriter) genJoinCandidates(li, lj entry, limit int) ([]taggedCand, int) {
	var out []taggedCand
	attempts := 0
	ls, rs := li.plan.OutSlots(), lj.plan.OutSlots()
	for lslot, lps := range ls {
		if !lps.Attrs.Has(pattern.AttrID) {
			continue
		}
		for rslot, rps := range rs {
			if !rps.Attrs.Has(pattern.AttrID) {
				continue
			}
			for _, kind := range []JoinKind{JoinID, JoinParent, JoinAncestor} {
				if !rw.joinFeasible(li.slotP[lslot], lj.slotP[rslot], kind) {
					continue
				}
				for _, variant := range joinVariants(kind, lj.plan) {
					if limit >= 0 && attempts >= limit {
						return out, attempts
					}
					attempt := attempts
					attempts++
					plan := NewJoin(kind, variant.nested, li.plan, lslot, lj.plan, rslot)
					plan.Outer = variant.outer
					model, err := joinModels(li.model, lj.model, plan, rw.s, rw.opts.Model)
					if err != nil || len(model) == 0 {
						continue
					}
					e := newEntry(plan, model)
					// Proposition 3.5: a join that adds nothing to either
					// child opens no new rewriting possibilities.
					if e.reduced == li.reduced || e.reduced == lj.reduced {
						continue
					}
					out = append(out, taggedCand{e: e, attempt: attempt})
				}
			}
		}
	}
	return out, attempts
}

// joinFeasible checks whether any summary-node pair of the two slots can
// satisfy the join predicate.
func (rw *rewriter) joinFeasible(lp, rp map[int]bool, kind JoinKind) bool {
	switch kind {
	case JoinID:
		for x := range lp {
			if rp[x] {
				return true
			}
		}
	case JoinParent:
		for y := range rp {
			if lp[rw.s.Node(y).Parent] {
				return true
			}
		}
	case JoinAncestor:
		for x := range lp {
			for y := range rp {
				if rw.s.IsAncestor(x, y) {
					return true
				}
			}
		}
	}
	return false
}

// joinVariants lists the nested/outer combinations worth trying: nesting
// never applies to same-node joins, and outer joins only help when the
// right side is a scan (the only shape with an exact ⊥ probe).
func joinVariants(kind JoinKind, right *Plan) []struct{ nested, outer bool } {
	variants := []struct{ nested, outer bool }{{false, false}}
	if kind != JoinID {
		variants = append(variants, struct{ nested, outer bool }{true, false})
		if right.Op == OpScan {
			variants = append(variants,
				struct{ nested, outer bool }{false, true},
				struct{ nested, outer bool }{true, true})
		}
	}
	return variants
}

// adaptedVerdict is one adaptation of a candidate plan together with its
// two containment verdicts (eqQ is only meaningful when inQ holds). The
// verdicts are pure functions of the adaptation, so they can be computed
// by a worker ahead of the deterministic merge.
type adaptedVerdict struct {
	a   entry
	inQ bool
	eqQ bool
}

// precomputeConsider runs the slot selection of Proposition 3.7 and the
// Section 4.6 adaptations for one plan–model pair and decides both
// containment directions per adaptation. Read-only on the rewriter except
// for the concurrency-safe memo structures; safe to call from workers.
func (rw *rewriter) precomputeConsider(e entry) []adaptedVerdict {
	adapted := rw.adaptToQuery(e)
	out := make([]adaptedVerdict, 0, len(adapted))
	for _, a := range adapted {
		if rw.cancelled() {
			// The caller is gone; the sequential replay polls done() (which
			// covers cancellation) before using anything returned here.
			return out
		}
		av := adaptedVerdict{a: a}
		if v, ok := rw.verdicts.get(a.key); ok {
			av.inQ, av.eqQ = v.inQ, v.eqQ
			out = append(out, av)
			continue
		}
		av.inQ = planContainedInQueryCached(a.model, rw.q, rw.cover, rw.subsume)
		if av.inQ {
			av.eqQ = queryContainedInPlan(rw.qModel, a.model, rw.subsume)
		}
		rw.verdicts.put(a.key, verdict{av.inQ, av.eqQ})
		out = append(out, av)
	}
	return out
}

// replayConsider applies precomputed verdicts in deterministic order:
// dedup by adaptation key, then emit equivalents and collect partials.
func (rw *rewriter) replayConsider(pre []adaptedVerdict) {
	for _, av := range pre {
		if rw.adaptedSeen[av.a.key] {
			continue
		}
		rw.adaptedSeen[av.a.key] = true
		if !av.inQ {
			continue
		}
		if av.eqQ {
			rw.emit(av.a)
			if rw.done() {
				return
			}
		} else {
			rw.partials = append(rw.partials, av.a)
		}
	}
}

// consider tests one plan–model pair against the query (sequential path:
// the adaptedSeen check short-circuits before the containment tests).
func (rw *rewriter) consider(e entry) {
	adapted := rw.adaptToQuery(e)
	for _, a := range adapted {
		if rw.cancelled() {
			return
		}
		if rw.adaptedSeen[a.key] {
			continue
		}
		rw.adaptedSeen[a.key] = true
		inQ := planContainedInQueryCached(a.model, rw.q, rw.cover, rw.subsume)
		if !inQ {
			continue
		}
		if queryContainedInPlan(rw.qModel, a.model, rw.subsume) {
			rw.emit(a)
			if rw.done() {
				return
			}
		} else {
			rw.partials = append(rw.partials, a)
		}
	}
}

func (rw *rewriter) emit(a entry) {
	if rw.resultKeys[a.key] {
		return
	}
	rw.resultKeys[a.key] = true
	if len(rw.res.Rewritings) == 0 {
		rw.res.First = time.Since(rw.start)
	}
	rw.res.Rewritings = append(rw.res.Rewritings, a.plan)
}

// unionPhase finds minimal unions of partial plans equivalent to q.
func (rw *rewriter) unionPhase() {
	if rw.done() || len(rw.partials) == 0 {
		return
	}
	n := len(rw.partials)
	if n > 24 {
		n = 24 // keep the subset enumeration bounded
	}
	maxK := rw.opts.MaxUnion
	var successful [][]int
	var idx []int
	var try func(startAt, k int)
	try = func(startAt, k int) {
		if rw.done() {
			return
		}
		if len(idx) >= 2 {
			if !rw.supersetOf(successful, idx) {
				var parts []*Plan
				var model []*Tree
				byKey := map[string]*Tree{}
				for _, i := range idx {
					parts = append(parts, rw.partials[i].plan)
					for _, t := range rw.partials[i].model {
						byKey[t.Key()] = t
					}
				}
				model = sortedTrees(byKey)
				if queryContainedInPlan(rw.qModel, model, rw.subsume) {
					u := &Plan{Op: OpUnion, Parts: parts}
					successful = append(successful, append([]int(nil), idx...))
					rw.emit(entry{plan: u, model: model, key: modelKey(model)})
				}
			}
		}
		if len(idx) == k {
			return
		}
		for i := startAt; i < n; i++ {
			idx = append(idx, i)
			try(i+1, k)
			idx = idx[:len(idx)-1]
		}
	}
	for k := 2; k <= maxK && !rw.done(); k++ {
		idx = idx[:0]
		try(0, k)
	}
}

// supersetOf reports whether idx is a superset of an already successful
// subset (those unions would be non-minimal).
func (rw *rewriter) supersetOf(successful [][]int, idx []int) bool {
	in := map[int]bool{}
	for _, i := range idx {
		in[i] = true
	}
	for _, s := range successful {
		all := true
		for _, i := range s {
			if !in[i] {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// reducedKey is the Proposition 3.5 comparison key: the canonical model
// with duplicate slots (same node, attrs, nesting) collapsed, so a join
// that merely re-derives one child is recognized as redundant.
func reducedKey(model []*Tree) string {
	byKey := map[string]*Tree{}
	for _, t := range model {
		r := t.Clone()
		seen := map[string]bool{}
		var slots []Slot
		for _, sl := range r.Slots {
			k := fmt.Sprintf("%d/%v/%v", sl.Node, sl.Attrs, sl.Nest)
			if !seen[k] {
				seen[k] = true
				slots = append(slots, sl)
			}
		}
		r.Slots = slots
		r.key = ""
		byKey[r.Key()] = r
	}
	return modelKey(sortedTrees(byKey))
}
