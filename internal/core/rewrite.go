package core

import (
	"fmt"
	"sort"
	"time"

	"xmlviews/internal/pattern"
	"xmlviews/internal/summary"
)

// RewriteOptions tunes Algorithm 1.
type RewriteOptions struct {
	Model ModelOptions
	// MaxScansPerPlan bounds the number of view scans per join plan. The
	// theoretical bound is (|q|-1)·|S| (Proposition 3.6); the default of 4
	// covers the practical cases while keeping search tractable.
	MaxScansPerPlan int
	// MaxPlans bounds the working set M.
	MaxPlans int
	// MaxUnion bounds the size of unions tried in the union phase
	// (Algorithm 1, lines 13-14).
	MaxUnion int
	// FirstOnly stops after the first equivalent rewriting.
	FirstOnly bool
	// MaxNavDepth bounds content-navigation view generation.
	MaxNavDepth int
	// DisableVirtualIDs turns off the navfID preprocessing.
	DisableVirtualIDs bool
	// MaxResults bounds the number of rewritings reported.
	MaxResults int
	// MaxExplored bounds the number of join merges attempted; the search
	// stops (reporting what it found) once exhausted.
	MaxExplored int
}

// DefaultRewriteOptions returns the defaults described above.
func DefaultRewriteOptions() RewriteOptions {
	return RewriteOptions{
		Model:           DefaultModelOptions(),
		MaxScansPerPlan: 4,
		MaxPlans:        4000,
		MaxUnion:        3,
		MaxNavDepth:     8,
		MaxResults:      64,
		MaxExplored:     200000,
	}
}

// RewriteResult reports the rewritings found and the timing/pruning
// statistics the paper's Figure 15 plots.
type RewriteResult struct {
	// Rewritings are the S-equivalent plans found, deduplicated up to
	// algebraic equivalence (identical canonical models), in discovery
	// order. Each plan's output schema matches the query's return nodes.
	Rewritings []*Plan
	// Setup is the preprocessing time: view preparation, pruning and the
	// query's canonical model.
	Setup time.Duration
	// First is the time from start until the first rewriting (zero when
	// none was found); Total is the overall time.
	First, Total time.Duration
	// ViewsTotal / ViewsKept count views before and after Proposition 3.4
	// pruning (derived navigation views included).
	ViewsTotal, ViewsKept int
	// PlansExplored counts the plan-model pairs examined.
	PlansExplored int
}

// entry is one plan–model pair of the working set.
type entry struct {
	plan  *Plan
	model []*Tree
	key   string
	// slotP caches, per slot, the summary nodes the slot can bind: the
	// cheap compatibility pre-check for join candidates.
	slotP []map[int]bool
	// reduced caches the Proposition 3.5 redundancy key.
	reduced string
}

func newEntry(plan *Plan, model []*Tree) entry {
	e := entry{plan: plan, model: model, key: modelKey(model)}
	e.reduced = reducedKey(model)
	n := len(plan.OutSlots())
	e.slotP = make([]map[int]bool, n)
	for j := 0; j < n; j++ {
		e.slotP[j] = slotPaths(model, j)
	}
	return e
}

// Rewrite runs Algorithm 1: it finds the plans over the given views that
// are S-equivalent to q, using ⋈=, ⋈≺, ⋈≺≺ (plain and nested), selections,
// projections, unnest/group-by nesting adjustments, and unions.
func Rewrite(q *pattern.Pattern, views []*View, s *summary.Summary, opts RewriteOptions) (*RewriteResult, error) {
	if opts.MaxScansPerPlan <= 0 {
		opts = DefaultRewriteOptions()
	}
	start := time.Now()
	res := &RewriteResult{}

	qModel, err := ModelWith(q, s, opts.Model)
	if err != nil {
		return nil, err
	}
	if len(qModel) == 0 {
		return nil, fmt.Errorf("core: query is unsatisfiable under the summary")
	}
	qPaths := pattern.AssociatedPaths(q, s)

	prepared := prepareViewSet(views, s, opts)
	res.ViewsTotal = len(prepared)
	kept := pruneViews(prepared, q, s)
	res.ViewsKept = len(kept)

	// Build the initial plan–model pairs (M0), most-relevant views first:
	// the left-deep search then reaches promising combinations before the
	// exploration budget runs out.
	var m0 []entry
	for _, v := range kept {
		model, err := ModelWith(v.Pattern, s, opts.Model)
		if err != nil {
			return nil, err
		}
		if len(model) == 0 {
			continue // S-unsatisfiable view
		}
		m0 = append(m0, newEntry(Scan(v), model))
	}
	sortByRelevance(m0, q, qPaths)
	res.Setup = time.Since(start)

	rw := &rewriter{
		q: q, qModel: qModel, qPaths: qPaths, s: s, opts: opts,
		seen: map[string]bool{}, adaptedSeen: map[string]bool{},
		resultKeys: map[string]bool{}, matchCache: map[string]bool{},
		res: res, start: start,
	}

	// Seed the working set and test the single-view plans.
	work := append([]entry(nil), m0...)
	for _, e := range m0 {
		rw.seen[e.key] = true
		rw.consider(e)
		if rw.done() {
			res.Total = time.Since(start)
			return res, nil
		}
	}

	// Left-deep join development (Algorithm 1, lines 2-11).
	for i := 0; i < len(work); i++ {
		li := work[i]
		if li.plan.NumScans() >= opts.MaxScansPerPlan {
			continue
		}
		for _, lj := range m0 {
			for _, e := range rw.joinCandidates(li, lj) {
				if rw.seen[e.key] {
					continue
				}
				// Proposition 3.5: a join that adds nothing to either
				// child opens no new rewriting possibilities.
				if e.reduced == li.reduced || e.reduced == lj.reduced {
					continue
				}
				rw.seen[e.key] = true
				rw.consider(e)
				if rw.done() {
					res.Total = time.Since(start)
					return res, nil
				}
				if len(work) < opts.MaxPlans {
					work = append(work, e)
				}
			}
		}
	}

	// Union phase (Algorithm 1, lines 13-14).
	rw.unionPhase()
	res.Total = time.Since(start)
	return res, nil
}

func prepareViewSet(views []*View, s *summary.Summary, opts RewriteOptions) []*View {
	if opts.DisableVirtualIDs {
		stripped := make([]*View, len(views))
		for i, v := range views {
			nv := *v
			nv.DerivableParentIDs = false
			stripped[i] = &nv
		}
		views = stripped
	}
	return prepareViews(views, s, opts.MaxNavDepth)
}

// sortByRelevance orders entries by how many query return slots their
// slots can serve (paths overlap and attributes suffice), ties broken by
// smaller canonical models.
func sortByRelevance(m0 []entry, q *pattern.Pattern, qPaths [][]int) {
	score := func(e entry) int {
		total := 0
		for k, rn := range q.Returns() {
			_ = k
			qSet := map[int]bool{}
			for _, sid := range qPaths[rn.Index] {
				qSet[sid] = true
			}
			for j, ps := range e.plan.OutSlots() {
				if rn.Attrs&^ps.Attrs != 0 {
					continue
				}
				hit := false
				for sid := range e.slotP[j] {
					if qSet[sid] {
						hit = true
						break
					}
				}
				if hit {
					total++
					break
				}
			}
		}
		return total
	}
	scores := make(map[*Plan]int, len(m0))
	for _, e := range m0 {
		scores[e.plan] = score(e)
	}
	sort.SliceStable(m0, func(i, j int) bool {
		si, sj := scores[m0[i].plan], scores[m0[j].plan]
		if si != sj {
			return si > sj
		}
		return len(m0[i].model) < len(m0[j].model)
	})
}

type rewriter struct {
	q      *pattern.Pattern
	qModel []*Tree
	qPaths [][]int
	s      *summary.Summary
	opts   RewriteOptions

	seen        map[string]bool
	adaptedSeen map[string]bool
	resultKeys  map[string]bool
	matchCache  map[string]bool
	res         *RewriteResult
	start       time.Time

	// partials are adapted plans contained in q but not equivalent,
	// kept for the union phase.
	partials []entry
}

func (rw *rewriter) done() bool {
	if len(rw.res.Rewritings) == 0 {
		return false
	}
	return rw.opts.FirstOnly || len(rw.res.Rewritings) >= rw.opts.MaxResults
}

// joinCandidates develops all joins of li (left) with lj (right), using
// the cached slot path sets as a cheap compatibility pre-check.
func (rw *rewriter) joinCandidates(li, lj entry) []entry {
	var out []entry
	ls, rs := li.plan.OutSlots(), lj.plan.OutSlots()
	for lslot, lps := range ls {
		if !lps.Attrs.Has(pattern.AttrID) {
			continue
		}
		for rslot, rps := range rs {
			if !rps.Attrs.Has(pattern.AttrID) {
				continue
			}
			for _, kind := range []JoinKind{JoinID, JoinParent, JoinAncestor} {
				if !rw.joinFeasible(li.slotP[lslot], lj.slotP[rslot], kind) {
					continue
				}
				for _, variant := range joinVariants(kind, lj.plan) {
					if rw.exhausted() {
						return out
					}
					rw.res.PlansExplored++
					plan := NewJoin(kind, variant.nested, li.plan, lslot, lj.plan, rslot)
					plan.Outer = variant.outer
					model, err := joinModels(li.model, lj.model, plan, rw.s, rw.opts.Model)
					if err != nil || len(model) == 0 {
						continue
					}
					out = append(out, newEntry(plan, model))
				}
			}
		}
	}
	return out
}

// joinFeasible checks whether any summary-node pair of the two slots can
// satisfy the join predicate.
func (rw *rewriter) joinFeasible(lp, rp map[int]bool, kind JoinKind) bool {
	switch kind {
	case JoinID:
		for x := range lp {
			if rp[x] {
				return true
			}
		}
	case JoinParent:
		for y := range rp {
			if lp[rw.s.Node(y).Parent] {
				return true
			}
		}
	case JoinAncestor:
		for x := range lp {
			for y := range rp {
				if rw.s.IsAncestor(x, y) {
					return true
				}
			}
		}
	}
	return false
}

// joinVariants lists the nested/outer combinations worth trying: nesting
// never applies to same-node joins, and outer joins only help when the
// right side is a scan (the only shape with an exact ⊥ probe).
func joinVariants(kind JoinKind, right *Plan) []struct{ nested, outer bool } {
	variants := []struct{ nested, outer bool }{{false, false}}
	if kind != JoinID {
		variants = append(variants, struct{ nested, outer bool }{true, false})
		if right.Op == OpScan {
			variants = append(variants,
				struct{ nested, outer bool }{false, true},
				struct{ nested, outer bool }{true, true})
		}
	}
	return variants
}

func (rw *rewriter) exhausted() bool {
	return rw.opts.MaxExplored > 0 && rw.res.PlansExplored >= rw.opts.MaxExplored
}

// consider tests one plan–model pair against the query, with the slot
// selection of Proposition 3.7 and the Section 4.6 adaptations.
func (rw *rewriter) consider(e entry) {
	adapted := rw.adaptToQuery(e)
	for _, a := range adapted {
		if rw.adaptedSeen[a.key] {
			continue
		}
		rw.adaptedSeen[a.key] = true
		inQ := planContainedInQueryCached(a.model, rw.q, rw.matchCache)
		if !inQ {
			continue
		}
		if queryContainedInPlan(rw.qModel, a.model) {
			rw.emit(a)
			if rw.done() {
				return
			}
		} else {
			rw.partials = append(rw.partials, a)
		}
	}
}

func (rw *rewriter) emit(a entry) {
	if rw.resultKeys[a.key] {
		return
	}
	rw.resultKeys[a.key] = true
	if len(rw.res.Rewritings) == 0 {
		rw.res.First = time.Since(rw.start)
	}
	rw.res.Rewritings = append(rw.res.Rewritings, a.plan)
}

// unionPhase finds minimal unions of partial plans equivalent to q.
func (rw *rewriter) unionPhase() {
	if rw.done() || len(rw.partials) == 0 {
		return
	}
	n := len(rw.partials)
	if n > 24 {
		n = 24 // keep the subset enumeration bounded
	}
	maxK := rw.opts.MaxUnion
	var successful [][]int
	var idx []int
	var try func(startAt, k int)
	try = func(startAt, k int) {
		if rw.done() {
			return
		}
		if len(idx) >= 2 {
			if !rw.supersetOf(successful, idx) {
				var parts []*Plan
				var model []*Tree
				byKey := map[string]*Tree{}
				for _, i := range idx {
					parts = append(parts, rw.partials[i].plan)
					for _, t := range rw.partials[i].model {
						byKey[t.Key()] = t
					}
				}
				model = sortedTrees(byKey)
				if queryContainedInPlan(rw.qModel, model) {
					u := &Plan{Op: OpUnion, Parts: parts}
					successful = append(successful, append([]int(nil), idx...))
					rw.emit(entry{plan: u, model: model, key: modelKey(model)})
				}
			}
		}
		if len(idx) == k {
			return
		}
		for i := startAt; i < n; i++ {
			idx = append(idx, i)
			try(i+1, k)
			idx = idx[:len(idx)-1]
		}
	}
	for k := 2; k <= maxK && !rw.done(); k++ {
		idx = idx[:0]
		try(0, k)
	}
}

// supersetOf reports whether idx is a superset of an already successful
// subset (those unions would be non-minimal).
func (rw *rewriter) supersetOf(successful [][]int, idx []int) bool {
	in := map[int]bool{}
	for _, i := range idx {
		in[i] = true
	}
	for _, s := range successful {
		all := true
		for _, i := range s {
			if !in[i] {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// reducedKey is the Proposition 3.5 comparison key: the canonical model
// with duplicate slots (same node, attrs, nesting) collapsed, so a join
// that merely re-derives one child is recognized as redundant.
func reducedKey(model []*Tree) string {
	byKey := map[string]*Tree{}
	for _, t := range model {
		r := t.Clone()
		seen := map[string]bool{}
		var slots []Slot
		for _, sl := range r.Slots {
			k := fmt.Sprintf("%d/%v/%v", sl.Node, sl.Attrs, sl.Nest)
			if !seen[k] {
				seen[k] = true
				slots = append(slots, sl)
			}
		}
		r.Slots = slots
		r.key = ""
		byKey[r.Key()] = r
	}
	return modelKey(sortedTrees(byKey))
}
