package core

import (
	"strings"
	"testing"

	"xmlviews/internal/pattern"
	"xmlviews/internal/summary"
)

func view(name, pat string) *View {
	return &View{Name: name, Pattern: pattern.MustParse(pat), DerivableParentIDs: true}
}

func rewrite(t *testing.T, q string, s *summary.Summary, views ...*View) *RewriteResult {
	t.Helper()
	res, err := Rewrite(pattern.MustParse(q), views, s, DefaultRewriteOptions())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func planStrings(res *RewriteResult) []string {
	out := make([]string, len(res.Rewritings))
	for i, p := range res.Rewritings {
		out[i] = p.String()
	}
	return out
}

func TestRewriteIdentity(t *testing.T) {
	s := summary.MustParse("a(b(c))")
	res := rewrite(t, "a(//b[id](/c[v]))", s, view("v1", "a(//b[id](/c[v]))"))
	if len(res.Rewritings) == 0 {
		t.Fatal("identity rewriting not found")
	}
	if !strings.Contains(res.Rewritings[0].String(), "v1") {
		t.Fatalf("plan = %s", res.Rewritings[0])
	}
}

func TestRewriteRequiresSelection(t *testing.T) {
	s := summary.MustParse("a(b c)")
	// The view stores all children with their labels; the query wants only
	// b nodes: σ L=b must be inserted (Section 4.6).
	res := rewrite(t, "a(/b[id])", s, view("all", "a(/*[id,l])"))
	if len(res.Rewritings) == 0 {
		t.Fatal("selection-based rewriting not found")
	}
	found := false
	for _, p := range res.Rewritings {
		if strings.Contains(p.String(), "σ") && strings.Contains(p.String(), "L=b") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no σL=b in %v", planStrings(res))
	}
	// Without the L attribute, the selection cannot be executed.
	res = rewrite(t, "a(/b[id])", s, view("noL", "a(/*[id])"))
	if len(res.Rewritings) != 0 {
		t.Fatalf("rewriting without L attribute should fail: %v", planStrings(res))
	}
}

func TestRewriteValueSelection(t *testing.T) {
	s := summary.MustParse("a(b)")
	res := rewrite(t, "a(/b[id]{v>5})", s, view("vb", "a(/b[id,v])"))
	if len(res.Rewritings) == 0 {
		t.Fatal("value-selection rewriting not found")
	}
	if !strings.Contains(res.Rewritings[0].String(), "σ") {
		t.Fatalf("plan = %s", res.Rewritings[0])
	}
	// A view already restricted to v>5 needs no selection.
	res = rewrite(t, "a(/b[id]{v>5})", s, view("vb5", "a(/b[id]{v>5})"))
	if len(res.Rewritings) == 0 {
		t.Fatal("pre-restricted view should rewrite directly")
	}
	// A view restricted to v>9 only stores a subset: no rewriting.
	res = rewrite(t, "a(/b[id]{v>5})", s, view("vb9", "a(/b[id]{v>9})"))
	if len(res.Rewritings) != 0 {
		t.Fatalf("narrower view must not rewrite: %v", planStrings(res))
	}
}

func TestRewriteIDJoin(t *testing.T) {
	s := summary.MustParse("a(b(c d))")
	res := rewrite(t, "a(//b[id](/c[v] /d[v]))", s,
		view("vc", "a(//b[id](/c[v]))"),
		view("vd", "a(//b[id](/d[v]))"))
	if len(res.Rewritings) == 0 {
		t.Fatal("ID-join rewriting not found")
	}
	found := false
	for _, p := range planStrings(res) {
		if strings.Contains(p, "⋈=") && strings.Contains(p, "vc") && strings.Contains(p, "vd") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no vc ⋈= vd plan in %v", planStrings(res))
	}
}

func TestRewriteStructuralJoin(t *testing.T) {
	s := summary.MustParse("r(a(b))")
	res := rewrite(t, "r(//a[id](//b[id]))", s,
		view("va", "r(//a[id])"),
		view("vb", "r(//b[id])"))
	if len(res.Rewritings) == 0 {
		t.Fatal("structural-join rewriting not found")
	}
	joined := false
	for _, p := range planStrings(res) {
		if strings.Contains(p, "⋈≺") {
			joined = true
		}
	}
	if !joined {
		t.Fatalf("no structural join in %v", planStrings(res))
	}
}

// Figure 5: the join of two patterns may have no equivalent single pattern
// (a-above-c vs c-above-a), but the canonical-model representation handles
// it exactly.
func TestRewriteFigure5JoinWithoutPatternEquivalent(t *testing.T) {
	// b occurs at /r/a/b, /r/a/c/b, /r/c/b and /r/c/a/b. p1 returns the
	// first, second and fourth; p2 the second, third and fourth; the query
	// (b at depth ≥ 4) is exactly their join — which has no single
	// equivalent tree pattern (a-above-c vs c-above-a).
	s := summary.MustParse("r(a(b c(b)) c(b a(b)))")
	q := "r(//*(//*(//b[id])))"
	res := rewrite(t, q, s,
		view("p1", "r(//a(//b[id]))"),
		view("p2", "r(//c(//b[id]))"))
	if len(res.Rewritings) == 0 {
		t.Fatal("Figure 5 join rewriting not found")
	}
	joined := false
	for _, p := range planStrings(res) {
		if strings.Contains(p, "⋈=") && strings.Contains(p, "p1") && strings.Contains(p, "p2") {
			joined = true
		}
	}
	if !joined {
		t.Fatalf("expected p1 ⋈= p2 in %v", planStrings(res))
	}
	// Neither view alone suffices: every reported plan must mention both.
	for _, p := range planStrings(res) {
		if !strings.Contains(p, "p1") || !strings.Contains(p, "p2") {
			t.Fatalf("plan %s does not combine both views", p)
		}
	}
}

func TestRewriteUnionPhase(t *testing.T) {
	s := summary.MustParse("a(b c)")
	res := rewrite(t, "a(/*[id])", s, view("vb", "a(/b[id])"), view("vc", "a(/c[id])"))
	if len(res.Rewritings) == 0 {
		t.Fatal("union rewriting not found")
	}
	found := false
	for _, p := range planStrings(res) {
		if strings.Contains(p, "∪") && strings.Contains(p, "vb") && strings.Contains(p, "vc") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no union plan in %v", planStrings(res))
	}
}

func TestRewriteVirtualIDs(t *testing.T) {
	s := summary.MustParse("a(b(c))")
	// The view stores only c's ID, but Dewey IDs derive b's ID (navfID).
	v := view("vc", "a(/b(/c[id,v]))")
	res := rewrite(t, "a(/b[id](/c[v]))", s, v)
	if len(res.Rewritings) == 0 {
		t.Fatal("virtual-ID rewriting not found")
	}
	// With virtual IDs disabled, no rewriting exists.
	opts := DefaultRewriteOptions()
	opts.DisableVirtualIDs = true
	res2, err := Rewrite(pattern.MustParse("a(/b[id](/c[v]))"), []*View{v}, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rewritings) != 0 {
		t.Fatalf("rewriting should need virtual IDs: %v", planStrings(res2))
	}
}

func TestRewriteNavigationView(t *testing.T) {
	s := summary.MustParse("a(b(d))")
	// The view stores b's ID and content; d's data is reachable only by
	// navigating inside the content (the paper's 〈listitem〉/keyword case).
	v := view("vb", "a(//b[id,c])")
	res := rewrite(t, "a(//b[id](/d[v]))", s, v)
	if len(res.Rewritings) == 0 {
		t.Fatal("navigation rewriting not found")
	}
	nav := false
	for _, p := range planStrings(res) {
		if strings.Contains(p, "→") {
			nav = true
		}
	}
	if !nav {
		t.Fatalf("no navigation view in %v", planStrings(res))
	}
}

func TestRewriteNestedJoin(t *testing.T) {
	s := summary.MustParse("a(b(c))")
	res := rewrite(t, "a(/b[id](n/c[id,v]))", s,
		view("vb", "a(/b[id])"),
		view("vcv", "a(//c[id,v])"))
	if len(res.Rewritings) == 0 {
		t.Fatal("nested-join rewriting not found")
	}
	// The nested output may be produced either by a nested structural join
	// or by the algebraically equivalent flat join + group-by; the rewriter
	// dedups such plans, so accept either form.
	nested := false
	for _, p := range planStrings(res) {
		if strings.Contains(p, "n⋈") || strings.Contains(p, "group") {
			nested = true
		}
	}
	if !nested {
		t.Fatalf("no nesting-producing plan in %v", planStrings(res))
	}
	// A flat query must not accept nested output without an unnest.
	res2 := rewrite(t, "a(/b[id](/c[id,v]))", s,
		view("vb", "a(/b[id])"),
		view("vcv", "a(//c[id,v])"))
	for _, p := range planStrings(res2) {
		if strings.Contains(p, "n⋈") && !strings.Contains(p, "unnest") {
			t.Fatalf("flat query got nested join without unnest: %s", p)
		}
		if strings.Contains(p, "group") {
			t.Fatalf("flat query got grouping plan: %s", p)
		}
	}
	if len(res2.Rewritings) == 0 {
		t.Fatal("flat join rewriting not found")
	}
}

func TestRewriteOptionalViewForQueryWithOptional(t *testing.T) {
	// The running example's shape: the view stores optional data, the
	// query also tolerates missing data; the view is usable directly.
	s := summary.MustParse("site(item(name mail))")
	res := rewrite(t, "site(/item[id](?/mail[v]))", s,
		view("v1", "site(/item[id](?/mail[v]))"))
	if len(res.Rewritings) == 0 {
		t.Fatal("optional view should rewrite optional query")
	}
	// A view with a *required* mail only stores a subset: no rewriting.
	res2 := rewrite(t, "site(/item[id](?/mail[v]))", s,
		view("v2", "site(/item[id](/mail[v]))"))
	if len(res2.Rewritings) != 0 {
		t.Fatalf("required-mail view must not rewrite optional query: %v", planStrings(res2))
	}
}

// Summary-based optimization (Section 1): when every item has a mail
// descendant (strong edge), a view without the mail condition still
// rewrites a query that requires mail.
func TestRewriteStrongEdgeDropsCondition(t *testing.T) {
	sStrong := summary.MustParse("site(item(name !mail))")
	sWeak := summary.MustParse("site(item(name mail))")
	v := view("items", "site(/item[id](/name[v]))")
	q := "site(/item[id](/name[v] /mail))"
	res := rewrite(t, q, sStrong, v)
	if len(res.Rewritings) == 0 {
		t.Fatal("strong mail edge should make the view sufficient")
	}
	res2 := rewrite(t, q, sWeak, v)
	if len(res2.Rewritings) != 0 {
		t.Fatalf("without the strong edge the view stores too much: %v", planStrings(res2))
	}
}

func TestRewritePruning(t *testing.T) {
	s := summary.MustParse("a(b(c) x(y))")
	// The x/y view is unrelated to the query; Proposition 3.4 prunes it.
	res := rewrite(t, "a(//b[id])", s,
		view("vb", "a(//b[id])"),
		view("vy", "a(//y[id])"))
	if res.ViewsKept >= res.ViewsTotal {
		t.Fatalf("pruning kept everything: %d of %d", res.ViewsKept, res.ViewsTotal)
	}
	if len(res.Rewritings) == 0 {
		t.Fatal("rewriting still expected")
	}
}

func TestRewriteFirstOnly(t *testing.T) {
	s := summary.MustParse("a(b)")
	opts := DefaultRewriteOptions()
	opts.FirstOnly = true
	res, err := Rewrite(pattern.MustParse("a(/b[id])"), []*View{
		view("v1", "a(/b[id])"), view("v2", "a(//b[id])"),
	}, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rewritings) != 1 {
		t.Fatalf("FirstOnly returned %d rewritings", len(res.Rewritings))
	}
	if res.First == 0 || res.Total < res.First {
		t.Fatalf("timing wrong: first=%v total=%v", res.First, res.Total)
	}
}

func TestRewriteNoViews(t *testing.T) {
	s := summary.MustParse("a(b)")
	res := rewrite(t, "a(/b[id])", s)
	if len(res.Rewritings) != 0 {
		t.Fatal("no views, no rewritings")
	}
}

func TestRewriteUnsatisfiableQuery(t *testing.T) {
	s := summary.MustParse("a(b)")
	_, err := Rewrite(pattern.MustParse("a(/z[id])"), []*View{view("v", "a(/b[id])")}, s, DefaultRewriteOptions())
	if err == nil {
		t.Fatal("unsatisfiable query should error")
	}
}
