package core

import (
	"container/list"
	"sync"
	"sync/atomic"

	"xmlviews/internal/summary"
)

// SubsumeCache memoizes summary-implication decisions (summaryImplies):
// whether, under a given summary, every document match of one erased
// subtree below an anchor path yields a match of another. The decision is
// a full 0-ary containment test, so repeated (anchor, subtree, subtree)
// triples are well worth caching.
//
// The cache is scoped to one summary: callers create one per summary (or
// per containment session) and hand it through ContainOptions. This
// replaces an earlier package-global map keyed by *summary.Summary, which
// pinned every summary ever used in memory and serialized all lookups
// behind a single mutex. A SubsumeCache is bounded (LRU eviction) and
// sharded, so the parallel rewriting search can share one instance across
// its worker pool without contention or unbounded growth.
//
// The scoping is enforced: the cache binds to the first summary it is
// used with, and lookups under any other summary bypass it (keys are
// summary-local node indices, so cross-summary hits would be wrong).
type SubsumeCache struct {
	owner  atomic.Pointer[summary.Summary]
	shards [stripeShards]subsumeShard
}

// bind reports whether the cache may serve decisions for s, claiming the
// cache for s when it is still unbound.
func (c *SubsumeCache) bind(s *summary.Summary) bool {
	if owner := c.owner.Load(); owner != nil {
		return owner == s
	}
	return c.owner.CompareAndSwap(nil, s) || c.owner.Load() == s
}

type subsumeShard struct {
	mu  sync.Mutex
	m   map[string]*list.Element
	lru list.List // front = most recently used
	cap int
}

type subsumeEntry struct {
	key string
	val bool
}

// DefaultSubsumeCap is the default total capacity of a SubsumeCache.
const DefaultSubsumeCap = 1 << 14

// NewSubsumeCache creates a bounded cache; capacity <= 0 uses
// DefaultSubsumeCap. The capacity is split evenly across shards.
func NewSubsumeCache(capacity int) *SubsumeCache {
	if capacity <= 0 {
		capacity = DefaultSubsumeCap
	}
	perShard := capacity / stripeShards
	if perShard < 1 {
		perShard = 1
	}
	c := &SubsumeCache{}
	for i := range c.shards {
		c.shards[i].m = map[string]*list.Element{}
		c.shards[i].cap = perShard
	}
	return c
}

// Len returns the number of cached decisions.
func (c *SubsumeCache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

func (c *SubsumeCache) get(key string) (val, ok bool) {
	sh := &c.shards[stripeOf(key)]
	sh.mu.Lock()
	if el, hit := sh.m[key]; hit {
		sh.lru.MoveToFront(el)
		val, ok = el.Value.(subsumeEntry).val, true
	}
	sh.mu.Unlock()
	return val, ok
}

func (c *SubsumeCache) put(key string, val bool) {
	sh := &c.shards[stripeOf(key)]
	sh.mu.Lock()
	if el, hit := sh.m[key]; hit {
		sh.lru.MoveToFront(el)
		el.Value = subsumeEntry{key, val}
	} else {
		sh.m[key] = sh.lru.PushFront(subsumeEntry{key, val})
		if sh.lru.Len() > sh.cap {
			oldest := sh.lru.Back()
			sh.lru.Remove(oldest)
			delete(sh.m, oldest.Value.(subsumeEntry).key)
		}
	}
	sh.mu.Unlock()
}
