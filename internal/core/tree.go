// Package core implements the paper's primary contribution: the canonical
// model construction (Sections 2.4, 4.1–4.5), tree pattern containment
// under Dataguide constraints (Propositions 3.1, 3.2, 4.1, 4.2), and
// view-based rewriting (Algorithm 1 plus the Section 4.6 extensions).
package core

import (
	"sort"
	"strconv"
	"strings"

	"xmlviews/internal/pattern"
	"xmlviews/internal/predicate"
	"xmlviews/internal/summary"
)

// Tree is a canonical tree: a labeled tree whose every node is tagged with
// a summary node (its path) and decorated with a value formula. Tree edges
// always connect a summary node to one of its summary children, so the path
// from the root to any tree node spells that node's rooted path.
//
// Unlike the paper's initial definition (which presents canonical trees as
// S-subtrees), a Tree may contain several sibling nodes tagged with the
// same summary node: this is the general form required for decorated
// patterns (Section 4.2) and for the join merges of the rewriting algorithm
// (Figure 5), and it is what makes canonical trees exact witness documents.
type Tree struct {
	Sum   *summary.Summary
	Nodes []TNode
	Slots []Slot
	// Erased records the optional pattern subtrees that were erased (bound
	// to ⊥) when this tree was built, together with the tree node their
	// parent was bound to. Containment needs them: a container pattern may
	// only claim a ⊥ slot if its own erased subtree is at least as easy to
	// match as the one recorded here (see erasedCompatible).
	Erased []ErasedSub

	key string // cached canonical form
}

// ErasedSub is one erased optional subtree.
type ErasedSub struct {
	Parent int           // tree node the subtree's parent pattern node was bound to
	Root   *pattern.Node // the optional pattern child at the erased edge
}

// hasSlotIn reports whether the erased subtree contains a return node.
func (e ErasedSub) hasSlotIn() bool {
	found := false
	var walk func(n *pattern.Node)
	walk = func(n *pattern.Node) {
		if n.IsReturn() {
			found = true
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(e.Root)
	return found
}

// TNode is one canonical tree node.
type TNode struct {
	SID      int // summary node tag
	Parent   int // tree node index; -1 for the root
	Children []int
	Pred     predicate.Formula
}

// Slot is one return position of a canonical tree: the tree node bound to
// the corresponding pattern return node (or ⊥), the attributes stored
// there, and the nesting sequence (Section 4.5) as summary node ids.
type Slot struct {
	Node  int // tree node index, or -1 for ⊥
	Attrs pattern.Attrs
	Nest  []int // summary ids of the grouping ancestors; nil for ⊥ slots
}

// NewTree creates a canonical tree with a root tagged by the summary root.
func NewTree(s *summary.Summary) *Tree {
	t := &Tree{Sum: s}
	t.Nodes = append(t.Nodes, TNode{SID: summary.RootID, Parent: -1, Pred: predicate.True()})
	return t
}

// AddNode appends a child node under parent with the given summary tag and
// formula, returning its index. The tag must be a summary child of the
// parent's tag.
func (t *Tree) AddNode(parent, sid int, pred predicate.Formula) int {
	if t.Sum.Node(sid).Parent != t.Nodes[parent].SID {
		panic("core: AddNode violates summary edge structure")
	}
	idx := len(t.Nodes)
	t.Nodes = append(t.Nodes, TNode{SID: sid, Parent: parent, Pred: pred})
	t.Nodes[parent].Children = append(t.Nodes[parent].Children, idx)
	t.key = ""
	return idx
}

// AddChain appends the chain of summary nodes leading from the parent tree
// node's tag down to summary node sid (exclusive of the parent's tag),
// returning the index of the final node, which is decorated with pred;
// intermediate nodes get T.
func (t *Tree) AddChain(parent, sid int, pred predicate.Formula) int {
	chain, ok := t.Sum.ChainBetween(t.Nodes[parent].SID, sid)
	if !ok {
		panic("core: AddChain target not a descendant of parent tag")
	}
	cur := parent
	for i, s := range chain[1:] {
		f := predicate.True()
		if i == len(chain)-2 {
			f = pred
		}
		cur = t.AddNode(cur, s, f)
	}
	return cur
}

// Size returns the number of tree nodes.
func (t *Tree) Size() int { return len(t.Nodes) }

// Arity returns the number of return slots.
func (t *Tree) Arity() int { return len(t.Slots) }

// Depth returns the tree depth of node i (root = 1).
func (t *Tree) Depth(i int) int {
	d := 0
	for ; i >= 0; i = t.Nodes[i].Parent {
		d++
	}
	return d
}

// AncestorAtDepth returns the ancestor-or-self of node i at tree depth d
// (root = 1), or -1.
func (t *Tree) AncestorAtDepth(i, d int) int {
	cur := i
	for cd := t.Depth(i); cd > d; cd-- {
		cur = t.Nodes[cur].Parent
	}
	if cur >= 0 && t.Depth(cur) == d {
		return cur
	}
	return -1
}

// IsAncestor reports whether tree node a is a proper ancestor of b.
func (t *Tree) IsAncestor(a, b int) bool {
	for cur := t.Nodes[b].Parent; cur >= 0; cur = t.Nodes[cur].Parent {
		if cur == a {
			return true
		}
	}
	return false
}

// Label returns the label of tree node i (its summary tag's label).
func (t *Tree) Label(i int) string { return t.Sum.Node(t.Nodes[i].SID).Label }

// Box returns the tree's formula conjunction φ_te as a box over tree node
// indexes; nodes with T are omitted.
func (t *Tree) Box() predicate.Box {
	b := predicate.NewBox()
	for i, n := range t.Nodes {
		if !n.Pred.IsTrue() {
			b = b.Constrain(i, n.Pred)
		}
	}
	return b
}

// Satisfiable reports whether no node formula is F.
func (t *Tree) Satisfiable() bool {
	for _, n := range t.Nodes {
		if n.Pred.IsFalse() {
			return false
		}
	}
	return true
}

// Descendants returns the proper descendants of tree node i in preorder.
func (t *Tree) Descendants(i int) []int {
	var out []int
	var walk func(int)
	walk = func(cur int) {
		for _, c := range t.Nodes[cur].Children {
			out = append(out, c)
			walk(c)
		}
	}
	walk(i)
	return out
}

// Key returns a canonical serialization of the tree: structure, tags,
// formulas, slot positions, attributes and nesting sequences. Two trees
// with equal keys are isomorphic with identical decorations, which is the
// equality used for canonical-model dedup and for the redundant-join check
// of Proposition 3.5.
func (t *Tree) Key() string {
	if t.key != "" {
		return t.key
	}
	slotsAt := map[int][]int{}
	for k, sl := range t.Slots {
		if sl.Node >= 0 {
			slotsAt[sl.Node] = append(slotsAt[sl.Node], k)
		}
	}
	var render func(i int) string
	render = func(i int) string {
		n := t.Nodes[i]
		var b strings.Builder
		b.WriteString(strconv.Itoa(n.SID))
		if !n.Pred.IsTrue() {
			b.WriteByte('{')
			b.WriteString(n.Pred.String())
			b.WriteByte('}')
		}
		if ks := slotsAt[i]; len(ks) > 0 {
			b.WriteByte('[')
			for j, k := range ks {
				if j > 0 {
					b.WriteByte(',')
				}
				b.WriteString(strconv.Itoa(k))
			}
			b.WriteByte(']')
		}
		if len(n.Children) > 0 {
			parts := make([]string, 0, len(n.Children))
			for _, c := range n.Children {
				parts = append(parts, render(c))
			}
			sort.Strings(parts)
			b.WriteByte('(')
			b.WriteString(strings.Join(parts, " "))
			b.WriteByte(')')
		}
		return b.String()
	}
	var b strings.Builder
	b.WriteString(render(0))
	for _, sl := range t.Slots {
		b.WriteByte(';')
		if sl.Node < 0 {
			b.WriteByte('~')
		}
		b.WriteString(sl.Attrs.String())
		b.WriteByte(':')
		for _, s := range sl.Nest {
			b.WriteString(strconv.Itoa(s))
			b.WriteByte('.')
		}
	}
	erased := make([]string, 0, len(t.Erased))
	for _, e := range t.Erased {
		erased = append(erased, strconv.Itoa(e.Parent)+"@"+subtreeSig(e.Root))
	}
	sort.Strings(erased)
	for _, e := range erased {
		b.WriteByte('!')
		b.WriteString(e)
	}
	t.key = b.String()
	return t.key
}

// subtreeSig serializes a pattern subtree (structure, labels, predicates,
// axes) for dedup keys.
func subtreeSig(n *pattern.Node) string {
	var b strings.Builder
	b.WriteString(n.Axis.String())
	b.WriteString(n.Label)
	if !n.Pred.IsTrue() {
		b.WriteByte('{')
		b.WriteString(n.Pred.String())
		b.WriteByte('}')
	}
	if n.Optional {
		b.WriteByte('?')
	}
	if len(n.Children) > 0 {
		parts := make([]string, 0, len(n.Children))
		for _, c := range n.Children {
			parts = append(parts, subtreeSig(c))
		}
		sort.Strings(parts)
		b.WriteByte('(')
		b.WriteString(strings.Join(parts, " "))
		b.WriteByte(')')
	}
	return b.String()
}

// String renders the tree with labels for debugging.
func (t *Tree) String() string {
	var render func(i int) string
	render = func(i int) string {
		n := t.Nodes[i]
		s := t.Label(i)
		for k, sl := range t.Slots {
			if sl.Node == i {
				s += "#" + strconv.Itoa(k)
			}
		}
		if !n.Pred.IsTrue() {
			s += "{" + n.Pred.String() + "}"
		}
		if len(n.Children) > 0 {
			parts := make([]string, 0, len(n.Children))
			for _, c := range n.Children {
				parts = append(parts, render(c))
			}
			s += "(" + strings.Join(parts, " ") + ")"
		}
		return s
	}
	out := render(0)
	for k, sl := range t.Slots {
		if sl.Node < 0 {
			out += " #" + strconv.Itoa(k) + "=⊥"
		}
	}
	return out
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	out := &Tree{Sum: t.Sum, key: t.key}
	out.Nodes = make([]TNode, len(t.Nodes))
	for i, n := range t.Nodes {
		cn := n
		cn.Children = append([]int(nil), n.Children...)
		out.Nodes[i] = cn
	}
	out.Slots = make([]Slot, len(t.Slots))
	for i, sl := range t.Slots {
		cs := sl
		cs.Nest = append([]int(nil), sl.Nest...)
		out.Slots[i] = cs
	}
	out.Erased = append([]ErasedSub(nil), t.Erased...)
	return out
}

// canonNest maps every element of a nesting sequence to the top of its
// one-to-one chain: if the edge into a summary node is one-to-one, nesting
// under it is equivalent to nesting under its parent (the relaxation of
// Proposition 4.2, condition 2(b)).
func canonNest(s *summary.Summary, nest []int) []int {
	out := make([]int, len(nest))
	for i, id := range nest {
		cur := id
		for cur != summary.RootID && s.Node(cur).OneToOne {
			cur = s.Node(cur).Parent
		}
		out[i] = cur
	}
	return out
}

// nestEqual compares two nesting sequences modulo one-to-one edges. A nil
// p-side sequence (⊥ slot) matches anything.
func nestEqual(s *summary.Summary, a, b []int, aIsBottom bool) bool {
	if aIsBottom {
		return true
	}
	ca, cb := canonNest(s, a), canonNest(s, b)
	if len(ca) != len(cb) {
		return false
	}
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}
