// Package cost implements the statistics-backed cost model that picks
// which of the rewritings found by core.Rewrite actually executes.
//
// The model estimates, bottom-up over a logical plan, an output
// cardinality and a total work figure per operator:
//
//   - scans are priced at their extent size — actual row/byte counts from
//     the store catalog when available, otherwise estimated from the
//     summary's per-node cardinalities;
//   - join output sizes come from the summary chain cardinalities: an ID
//     join on a summary node keeps |L|·|R|/count(node) pairs, parent and
//     ancestor joins follow the parent-edge fanout (each descendant row has
//     exactly one ancestor on a given summary path); nested variants pay a
//     grouping penalty;
//   - label selections keep the fraction of the slot's weight whose
//     summary nodes carry the label, value selections apply a default
//     selectivity (no value histograms are kept);
//   - unions are additive.
//
// Summaries without statistics (hand-built, or catalogs written before
// statistics existed) degrade to uniform estimates: every summary node
// counts as one document node, so plans are ranked by shape only.
package cost

import (
	"fmt"
	"math"
	"sort"

	"xmlviews/internal/core"
	"xmlviews/internal/pattern"
	"xmlviews/internal/store"
	"xmlviews/internal/summary"
)

// Stats bundles what the model needs: the summary (whose nodes may carry
// cardinality statistics) and per-view extent sizes from a store catalog.
type Stats struct {
	Sum *summary.Summary
	// Rows and Bytes are per-view extent sizes keyed by view name; views
	// absent from the maps are estimated from the summary.
	Rows  map[string]int
	Bytes map[string]int64
}

// FromSummary builds statistics from a summary alone (no catalog): scan
// sizes are estimated from the summary cardinalities.
func FromSummary(s *summary.Summary) *Stats {
	return &Stats{Sum: s, Rows: map[string]int{}, Bytes: map[string]int64{}}
}

// FromCatalog builds statistics from a store catalog and its parsed
// summary: scans of cataloged views are priced at their actual row counts
// and the byte volume of the base segment plus any unfolded delta chain
// (the extent an opened store actually replays; the catalog's Bytes field
// alone covers only the base segment until compaction).
func FromCatalog(cat *store.Catalog, s *summary.Summary) *Stats {
	st := FromSummary(s)
	for _, e := range cat.Views {
		st.Rows[e.Name] = e.Rows
		b := e.Bytes
		for _, d := range e.Deltas {
			b += d.Bytes
		}
		st.Bytes[e.Name] = b
	}
	return st
}

// Cost is the estimate for one plan.
type Cost struct {
	// Total is the estimated work in row-visit units; lower is cheaper.
	Total float64
	// Rows is the estimated output cardinality.
	Rows float64
}

// Model constants. The absolute scale is irrelevant (costs only rank
// plans); the ratios encode that nested joins pay a grouping pass, outer
// joins an extra probe, and that byte volume matters for scans.
const (
	// bytesPerUnit converts scanned bytes into row-visit units.
	bytesPerUnit = 256
	// nestedPenalty multiplies a nested join variant's own cost.
	nestedPenalty = 2.0
	// valueSelectivity is the default selectivity of a value predicate
	// (no value histograms are kept).
	valueSelectivity = 0.25
)

// vectorizableScan reports whether the executor serves selections above
// this plan from the view's columnar block handle — any stored view scan,
// plain or prepared; only navigation views build their rows on the fly
// and stay row-at-a-time. This is the shape algebra's vectorSelect accepts.
func vectorizableScan(p *core.Plan) bool {
	return p.Op == core.OpScan && p.View != nil && p.View.Nav == nil
}

// blockPassFraction estimates the fraction of input rows a vectorized
// selection actually visits when zone maps skip non-matching blocks.
// Extents are document-ordered, so rows matching one summary path cluster:
// the matching rows span about s·nblocks blocks plus one straddler, giving
// a visited fraction of s + BlockRows/rows (capped at one). See
// docs/cost.md for the derivation.
func blockPassFraction(s, rows float64) float64 {
	if rows <= 0 {
		return 1
	}
	f := s + float64(store.BlockRows)/rows
	if f > 1 {
		return 1
	}
	return f
}

// Estimator estimates plan costs against one Stats snapshot. It is
// read-only after construction and safe for concurrent use.
type Estimator struct {
	st *Stats
}

// NewEstimator returns an estimator over the statistics.
func NewEstimator(st *Stats) *Estimator { return &Estimator{st: st} }

// Estimate returns the cost of a plan.
func (e *Estimator) Estimate(p *core.Plan) (Cost, error) {
	est, err := e.node(p, map[*core.Plan]*nodeEst{})
	if err != nil {
		return Cost{}, err
	}
	return Cost{Total: est.cost, Rows: est.rows}, nil
}

// PlanCost adapts Estimate to core.ChooseBest's cost-function signature.
func (e *Estimator) PlanCost(p *core.Plan) (float64, error) {
	c, err := e.Estimate(p)
	if err != nil {
		return 0, err
	}
	return c.Total, nil
}

// nodeEst is the per-operator estimate: cost, output rows, and per output
// slot the distribution of summary nodes its bindings come from.
type nodeEst struct {
	cost  float64
	rows  float64
	slots []slotDist
}

// slotDist maps summary node id to the expected fraction of output rows
// whose slot binds a document node on that path; fractions sum to at most
// one, and the missing mass is the ⊥ share (outer-join padding scales
// distributions down accordingly).
type slotDist map[int]float64

// ids returns the distribution's summary node ids in sorted order, so
// float accumulations are order-stable across runs (Go randomizes map
// iteration; ChooseBest's tie-break depends on exact cost equality).
func (d slotDist) ids() []int {
	out := make([]int, 0, len(d))
	for sid := range d {
		out = append(out, sid)
	}
	sort.Ints(out)
	return out
}

// subtreeTextBytes estimates the text volume of one stored content
// subtree on the given summary path: the total text under the path's
// nodes divided by their count.
func (e *Estimator) subtreeTextBytes(sid int) float64 {
	s := e.st.Sum
	total := s.Node(sid).TextBytes
	for _, d := range s.Descendants(sid) {
		total += s.Node(d).TextBytes
	}
	c := s.Node(sid).Count
	if c <= 0 || total <= 0 {
		return 0
	}
	return float64(total) / float64(c)
}

// count returns the document-node count of a summary node, with the
// uniform fallback of one for summaries without statistics.
func (e *Estimator) count(sid int) float64 {
	c := e.st.Sum.Node(sid).Count
	if c <= 0 {
		return 1
	}
	return float64(c)
}

func (e *Estimator) node(p *core.Plan, memo map[*core.Plan]*nodeEst) (*nodeEst, error) {
	if est, ok := memo[p]; ok {
		return est, nil
	}
	var est *nodeEst
	var err error
	switch p.Op {
	case core.OpScan:
		est, err = e.scan(p.View)
	case core.OpJoin:
		est, err = e.join(p, memo)
	case core.OpUnion:
		est, err = e.union(p, memo)
	case core.OpProject:
		est, err = e.project(p, memo)
	case core.OpSelectLabel:
		est, err = e.selectLabel(p, memo)
	case core.OpSelectValue:
		est, err = e.selectValue(p, memo)
	case core.OpUnnest, core.OpGroupBy:
		// Flat execution passes tuples through; group-by pays one pass
		// over its input for the grouping sort.
		in, ierr := e.node(p.Input, memo)
		if ierr != nil {
			err = ierr
			break
		}
		est = &nodeEst{cost: in.cost, rows: in.rows, slots: in.slots}
		if p.Op == core.OpGroupBy {
			est.cost += in.rows
		}
	default:
		err = fmt.Errorf("cost: unknown operator %d", p.Op)
	}
	if err != nil {
		return nil, err
	}
	memo[p] = est
	return est, nil
}

// scan prices a view scan and derives its slot distributions from the
// summary nodes each return node can bind (pattern.AssociatedPaths).
func (e *Estimator) scan(v *core.View) (*nodeEst, error) {
	paths := pattern.AssociatedPaths(v.Pattern, e.st.Sum)
	returns := v.Pattern.Returns()
	est := &nodeEst{slots: make([]slotDist, len(returns))}

	// Output rows: the catalog's actual count when the extent is stored;
	// otherwise the largest per-slot cardinality over the summary (a flat
	// extent has one row per binding of its most numerous slot).
	rows, cataloged := 0.0, false
	if v.Nav == nil {
		if n, ok := e.st.Rows[v.Name]; ok {
			rows, cataloged = float64(n), true
		}
	}
	for j, rn := range returns {
		total := 0.0
		for _, sid := range paths[rn.Index] {
			total += e.count(sid)
		}
		if total <= 0 {
			// The slot cannot bind under the summary; the extent is empty.
			est.slots[j] = slotDist{}
			continue
		}
		d := make(slotDist, len(paths[rn.Index]))
		for _, sid := range paths[rn.Index] {
			d[sid] = e.count(sid) / total
		}
		est.slots[j] = d
		if !cataloged && total > rows {
			rows = total
		}
	}
	est.rows = rows
	est.cost = rows
	if b, ok := e.st.Bytes[v.Name]; ok && v.Nav == nil {
		est.cost += float64(b) / bytesPerUnit
	} else {
		// No catalog byte count: estimate the extent's data volume from
		// the summary's text statistics, so a content-bearing view is
		// never priced like a slim one just because the store is offline
		// (zero without statistics — the uniform fallback ranks by shape).
		bytesEst := 0.0
		for j, rn := range returns {
			for _, sid := range est.slots[j].ids() {
				perRow := 0.0
				if rn.Attrs.Has(pattern.AttrValue) {
					perRow += e.st.Sum.AvgTextBytes(sid)
				}
				if rn.Attrs.Has(pattern.AttrContent) {
					perRow += e.subtreeTextBytes(sid)
				}
				bytesEst += rows * est.slots[j][sid] * perRow
			}
		}
		est.cost += bytesEst / bytesPerUnit
	}
	// A navigation view pays for reading every base row's content subtree
	// on top of emitting its own rows.
	if v.Nav != nil {
		base, err := e.scan(v.Nav.Base)
		if err != nil {
			return nil, err
		}
		est.cost += base.cost
	}
	return est, nil
}

func (e *Estimator) join(p *core.Plan, memo map[*core.Plan]*nodeEst) (*nodeEst, error) {
	l, err := e.node(p.Left, memo)
	if err != nil {
		return nil, err
	}
	r, err := e.node(p.Right, memo)
	if err != nil {
		return nil, err
	}
	if p.LeftSlot >= len(l.slots) || p.RightSlot >= len(r.slots) {
		return nil, fmt.Errorf("cost: join slot out of range (%d,%d)", p.LeftSlot, p.RightSlot)
	}
	A, B := l.slots[p.LeftSlot], r.slots[p.RightSlot]

	// Output estimate from the summary chain cardinalities. Every matched
	// pair is attributed to the ancestor-side summary node: an ID join
	// keeps |L_x|·|R_x|/count(x) pairs per shared node x; a parent join
	// matches each right row's unique parent against the left rows on that
	// parent's path; an ancestor join sums that over the whole chain.
	out := 0.0
	s := e.st.Sum
	switch p.Kind {
	case core.JoinID:
		for _, sid := range A.ids() {
			if wr, ok := B[sid]; ok {
				out += (l.rows * A[sid]) * (r.rows * wr) / e.count(sid)
			}
		}
	case core.JoinParent:
		for _, sid := range B.ids() {
			parent := s.Node(sid).Parent
			if parent < 0 {
				continue
			}
			if wl, ok := A[parent]; ok {
				out += (r.rows * B[sid]) * (l.rows * wl) / e.count(parent)
			}
		}
	case core.JoinAncestor:
		for _, sid := range B.ids() {
			for _, anc := range A.ids() {
				if s.IsAncestor(anc, sid) {
					out += (r.rows * B[sid]) * (l.rows * A[anc]) / e.count(anc)
				}
			}
		}
	}

	joinCost := l.rows + r.rows + out
	if p.Nested {
		joinCost *= nestedPenalty
	}
	rslots := r.slots
	if p.Outer {
		// Left rows without a match survive padded with ⊥ on the right.
		matched := out
		if out < l.rows {
			out = l.rows
		}
		joinCost += l.rows
		// The padded share binds ⊥: scale the right side's distributions
		// down to the matched fraction, so a selection above the outer
		// join prices the ⊥ rows it will drop.
		if out > 0 && matched < out {
			share := matched / out
			rslots = make([]slotDist, len(r.slots))
			for j, d := range r.slots {
				nd := make(slotDist, len(d))
				for sid, f := range d {
					nd[sid] = f * share
				}
				rslots[j] = nd
			}
		}
	}
	est := &nodeEst{
		cost:  l.cost + r.cost + joinCost,
		rows:  out,
		slots: append(append([]slotDist{}, l.slots...), rslots...),
	}
	return est, nil
}

func (e *Estimator) union(p *core.Plan, memo map[*core.Plan]*nodeEst) (*nodeEst, error) {
	est := &nodeEst{}
	var parts []*nodeEst
	for _, part := range p.Parts {
		pe, err := e.node(part, memo)
		if err != nil {
			return nil, err
		}
		est.cost += pe.cost
		est.rows += pe.rows
		parts = append(parts, pe)
	}
	// Merge the branches' slot distributions weighted by their row
	// shares, so a selection above the union sees the union's actual mix
	// of summary nodes, not just the first branch's.
	if len(parts) > 0 {
		est.slots = make([]slotDist, len(parts[0].slots))
		for j := range est.slots {
			d := slotDist{}
			for _, pe := range parts {
				if j >= len(pe.slots) || est.rows <= 0 {
					continue
				}
				share := pe.rows / est.rows
				for sid, f := range pe.slots[j] {
					d[sid] += f * share
				}
			}
			est.slots[j] = d
		}
	}
	return est, nil
}

func (e *Estimator) project(p *core.Plan, memo map[*core.Plan]*nodeEst) (*nodeEst, error) {
	in, err := e.node(p.Input, memo)
	if err != nil {
		return nil, err
	}
	slots := make([]slotDist, len(p.Keep))
	for i, k := range p.Keep {
		if k >= len(in.slots) {
			return nil, fmt.Errorf("cost: projection slot %d out of range", k)
		}
		slots[i] = in.slots[k]
	}
	return &nodeEst{cost: in.cost, rows: in.rows, slots: slots}, nil
}

func (e *Estimator) selectLabel(p *core.Plan, memo map[*core.Plan]*nodeEst) (*nodeEst, error) {
	in, err := e.node(p.Input, memo)
	if err != nil {
		return nil, err
	}
	if p.Slot >= len(in.slots) {
		return nil, fmt.Errorf("cost: selection slot %d out of range", p.Slot)
	}
	// Weights are absolute row fractions (⊥ bindings carry no weight), so
	// the matching sids' summed weight IS the selectivity: rows whose
	// slot binds ⊥ or another label are dropped by the executor.
	d := in.slots[p.Slot]
	kept := 0.0
	nd := slotDist{}
	for _, sid := range d.ids() {
		if e.st.Sum.Node(sid).Label == p.Label {
			kept += d[sid]
			nd[sid] = d[sid]
		}
	}
	if kept > 1 {
		kept = 1
	}
	if kept > 0 {
		// Every surviving row binds a kept sid: renormalize to one.
		for sid := range nd {
			nd[sid] /= kept
		}
	}
	slots := append([]slotDist{}, in.slots...)
	slots[p.Slot] = nd
	// A selection directly above a vectorizable scan runs on dictionary
	// codes with zone-map block skipping: it only visits rows in blocks the
	// zones cannot rule out.
	passCost := in.rows
	if vectorizableScan(p.Input) {
		passCost = in.rows * blockPassFraction(kept, in.rows)
	}
	return &nodeEst{cost: in.cost + passCost, rows: in.rows * kept, slots: slots}, nil
}

func (e *Estimator) selectValue(p *core.Plan, memo map[*core.Plan]*nodeEst) (*nodeEst, error) {
	in, err := e.node(p.Input, memo)
	if err != nil {
		return nil, err
	}
	passCost := in.rows
	if vectorizableScan(p.Input) {
		passCost = in.rows * blockPassFraction(valueSelectivity, in.rows)
	}
	return &nodeEst{cost: in.cost + passCost, rows: in.rows * valueSelectivity, slots: in.slots}, nil
}

// String renders a cost compactly for tooling output.
func (c Cost) String() string {
	return fmt.Sprintf("cost=%.1f rows≈%.1f", c.Total, math.Round(c.Rows*10)/10)
}
