package cost

import (
	"testing"

	"xmlviews/internal/core"
	"xmlviews/internal/pattern"
	"xmlviews/internal/summary"
	"xmlviews/internal/xmltree"
)

// testWorld builds a small document, its summary (with statistics) and two
// views: items with names, and all names.
func testWorld(t *testing.T) (*summary.Summary, *core.View, *core.View) {
	t.Helper()
	doc := xmltree.MustParseParen(
		`site(item(name "pen") item(name "ink") item(name "dry") person(name "bob"))`)
	s := summary.Build(doc)
	vi := &core.View{Name: "VI", Pattern: pattern.MustParse(`site(/item[id](/name[v]))`)}
	vn := &core.View{Name: "VN", Pattern: pattern.MustParse(`site(//name[id,v])`)}
	return s, vi, vn
}

func TestScanCostMonotonicInRows(t *testing.T) {
	s, vi, _ := testWorld(t)
	small, big := FromSummary(s), FromSummary(s)
	small.Rows[vi.Name] = 10
	big.Rows[vi.Name] = 10000
	cSmall, err := NewEstimator(small).Estimate(core.Scan(vi))
	if err != nil {
		t.Fatal(err)
	}
	cBig, err := NewEstimator(big).Estimate(core.Scan(vi))
	if err != nil {
		t.Fatal(err)
	}
	if cBig.Total <= cSmall.Total {
		t.Fatalf("more rows must cost more: %v vs %v", cBig, cSmall)
	}
	if cBig.Rows <= cSmall.Rows {
		t.Fatalf("more rows must estimate more output: %v vs %v", cBig, cSmall)
	}
}

func TestScanCostMonotonicInBytes(t *testing.T) {
	s, vi, _ := testWorld(t)
	slim, fat := FromSummary(s), FromSummary(s)
	slim.Rows[vi.Name], fat.Rows[vi.Name] = 100, 100
	slim.Bytes[vi.Name], fat.Bytes[vi.Name] = 1024, 1<<20
	cSlim, _ := NewEstimator(slim).Estimate(core.Scan(vi))
	cFat, _ := NewEstimator(fat).Estimate(core.Scan(vi))
	if cFat.Total <= cSlim.Total {
		t.Fatalf("more bytes must cost more: %v vs %v", cFat, cSlim)
	}
}

func TestNestedJoinAtLeastPlain(t *testing.T) {
	s, vi, vn := testWorld(t)
	st := FromSummary(s)
	st.Rows[vi.Name], st.Rows[vn.Name] = 100, 400
	est := NewEstimator(st)
	plain := core.NewJoin(core.JoinParent, false, core.Scan(vi), 0, core.Scan(vn), 0)
	nested := core.NewJoin(core.JoinParent, true, core.Scan(vi), 0, core.Scan(vn), 0)
	cPlain, err := est.Estimate(plain)
	if err != nil {
		t.Fatal(err)
	}
	cNested, err := est.Estimate(nested)
	if err != nil {
		t.Fatal(err)
	}
	if cNested.Total < cPlain.Total {
		t.Fatalf("nested join must cost at least the plain join: %v vs %v", cNested, cPlain)
	}
}

func TestJoinOutputUsesChainCardinalities(t *testing.T) {
	s, vi, vn := testWorld(t)
	st := FromSummary(s)
	// 3 items, 4 names (3 item names + 1 person name).
	st.Rows[vi.Name], st.Rows[vn.Name] = 3, 4
	est := NewEstimator(st)
	// Parent join item ≺ name: only item names survive — 3 rows expected.
	j := core.NewJoin(core.JoinParent, false, core.Scan(vi), 0, core.Scan(vn), 0)
	c, err := est.Estimate(j)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows < 2 || c.Rows > 4 {
		t.Fatalf("parent-join output estimate %v, want ~3", c.Rows)
	}
	// An ID join on the same slots is infeasible (item and name paths are
	// disjoint): estimated output 0.
	id := core.NewJoin(core.JoinID, false, core.Scan(vi), 0, core.Scan(vn), 0)
	cid, err := est.Estimate(id)
	if err != nil {
		t.Fatal(err)
	}
	if cid.Rows != 0 {
		t.Fatalf("disjoint ID join output %v, want 0", cid.Rows)
	}
}

func TestUniformFallbackWithoutStats(t *testing.T) {
	// Hand-built summary: no counts anywhere.
	s := summary.MustParse(`site(item(name) person(name))`)
	if s.HasStats() {
		t.Fatal("hand-built summary must not carry stats")
	}
	vi := &core.View{Name: "VI", Pattern: pattern.MustParse(`site(/item[id](/name[v]))`)}
	est := NewEstimator(FromSummary(s))
	c, err := est.Estimate(core.Scan(vi))
	if err != nil {
		t.Fatal(err)
	}
	if c.Total <= 0 || c.Rows <= 0 {
		t.Fatalf("uniform fallback must produce positive estimates, got %v", c)
	}
}

func TestSelections(t *testing.T) {
	s, _, vn := testWorld(t)
	st := FromSummary(s)
	st.Rows[vn.Name] = 4
	est := NewEstimator(st)
	scan := core.Scan(vn)
	base, _ := est.Estimate(scan)

	sel := &core.Plan{Op: core.OpSelectValue, Slot: 0, Input: scan}
	c, err := est.Estimate(sel)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows >= base.Rows {
		t.Fatalf("value selection must reduce rows: %v vs %v", c.Rows, base.Rows)
	}
	if c.Total <= base.Total {
		t.Fatalf("selection costs a pass over its input: %v vs %v", c.Total, base.Total)
	}

	lab := &core.Plan{Op: core.OpSelectLabel, Slot: 0, Label: "name", Input: scan}
	cl, err := est.Estimate(lab)
	if err != nil {
		t.Fatal(err)
	}
	// Every row of VN is a name: label selectivity 1.
	if cl.Rows != base.Rows {
		t.Fatalf("label selection on the slot's own label keeps all rows: %v vs %v", cl.Rows, base.Rows)
	}
	labMiss := &core.Plan{Op: core.OpSelectLabel, Slot: 0, Label: "zzz", Input: scan}
	cm, err := est.Estimate(labMiss)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Rows != 0 {
		t.Fatalf("label selection on an absent label keeps nothing, got %v", cm.Rows)
	}
}

func TestUnionAdditive(t *testing.T) {
	s, vi, vn := testWorld(t)
	st := FromSummary(s)
	st.Rows[vi.Name], st.Rows[vn.Name] = 3, 4
	est := NewEstimator(st)
	a, b := core.Scan(vi), core.Scan(vi)
	u := &core.Plan{Op: core.OpUnion, Parts: []*core.Plan{a, b}}
	cu, err := est.Estimate(u)
	if err != nil {
		t.Fatal(err)
	}
	ca, _ := est.Estimate(a)
	if cu.Rows != 2*ca.Rows {
		t.Fatalf("union rows %v, want %v", cu.Rows, 2*ca.Rows)
	}
	if cu.Total < 2*ca.Total {
		t.Fatalf("union cost %v, want at least %v", cu.Total, 2*ca.Total)
	}
}

// TestContentViewPricedWithoutCatalog reproduces the fat-vs-slim choice
// through the summary-only statistics path (what xvrewrite -cost uses): a
// view storing content subtrees must cost more than a structurally
// identical slim view even when no catalog byte counts exist.
func TestContentViewPricedWithoutCatalog(t *testing.T) {
	doc := xmltree.MustParseParen(
		`site(item(name "pen" desc "a long description body") item(name "ink" desc "another long description"))`)
	s := summary.Build(doc)
	fat := &core.View{Name: "VFAT", Pattern: pattern.MustParse(`site(/item[id,c](/name[v]))`)}
	slim := &core.View{Name: "VSLIM", Pattern: pattern.MustParse(`site(/item[id](/name[v]))`)}
	est := NewEstimator(FromSummary(s))
	cFat, err := est.Estimate(core.Scan(fat))
	if err != nil {
		t.Fatal(err)
	}
	cSlim, err := est.Estimate(core.Scan(slim))
	if err != nil {
		t.Fatal(err)
	}
	if cFat.Total <= cSlim.Total {
		t.Fatalf("content-bearing scan must cost more than the slim one without catalog bytes: %v vs %v", cFat, cSlim)
	}
}

func TestOuterJoinPaddingPricedBySelection(t *testing.T) {
	s, vi, vn := testWorld(t)
	st := FromSummary(s)
	st.Rows[vi.Name], st.Rows[vn.Name] = 100, 1
	est := NewEstimator(st)
	outer := core.NewJoin(core.JoinParent, false, core.Scan(vi), 0, core.Scan(vn), 0)
	outer.Outer = true
	cj, err := est.Estimate(outer)
	if err != nil {
		t.Fatal(err)
	}
	// Matched pairs ≈ 25 (1 name row × 3/4 item-name weight × 100/3 items
	// per item path); the outer join floors output at the 100 left rows.
	if cj.Rows != 100 {
		t.Fatalf("outer join rows %v, want 100 (left-padded)", cj.Rows)
	}
	// A label selection on the padded side must keep only the matched
	// share — the executor drops ⊥-padded rows — not all 100.
	sel := &core.Plan{Op: core.OpSelectLabel, Slot: 2, Label: "name", Input: outer}
	c, err := est.Estimate(sel)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows != 25 {
		t.Fatalf("selection above outer join estimated %v rows, want 25 (⊥ padding dropped)", c.Rows)
	}
}

func TestUnionMergesBranchDistributions(t *testing.T) {
	s, _, _ := testWorld(t)
	vi := &core.View{Name: "VIonly", Pattern: pattern.MustParse(`site(/item[id])`)}
	vp := &core.View{Name: "VPonly", Pattern: pattern.MustParse(`site(/person[id])`)}
	st := FromSummary(s)
	st.Rows[vi.Name], st.Rows[vp.Name] = 3, 1
	est := NewEstimator(st)
	u := &core.Plan{Op: core.OpUnion, Parts: []*core.Plan{core.Scan(vi), core.Scan(vp)}}
	sel := &core.Plan{Op: core.OpSelectLabel, Slot: 0, Label: "item", Input: u}
	c, err := est.Estimate(sel)
	if err != nil {
		t.Fatal(err)
	}
	// The union mixes 3 item rows and 1 person row; selecting on the
	// item label must keep 3, not all 4 (which a first-branch-only slot
	// distribution would predict).
	if c.Rows != 3 {
		t.Fatalf("label selection over union estimated %v rows, want 3", c.Rows)
	}
}

func TestFromCatalogPricesScans(t *testing.T) {
	s, vi, _ := testWorld(t)
	// FromSummary without rows estimates from the summary counts (3 items).
	est := NewEstimator(FromSummary(s))
	c, err := est.Estimate(core.Scan(vi))
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows != 3 {
		t.Fatalf("summary-estimated scan rows %v, want 3", c.Rows)
	}
}
