// Package datagen synthesizes the documents of the paper's evaluation
// (Table 1): XMark auction documents at several scales, two DBLP snapshots,
// and Shakespeare / Nasa / SwissProt analogs.
//
// The real files are not available offline, so each generator reproduces
// the *path structure* that drives the algorithms: the summary shape and
// size, XMark's recursive parlist/listitem nesting, the formatting tags
// (bold, keyword, emph) that blow up pattern canonical models, and the
// strong / one-to-one edges the rewriting exploits. Absolute byte counts
// differ from the paper; summary statistics have the same shape.
//
// All generators are deterministic for a given seed.
package datagen

import (
	"fmt"
	"math/rand"

	"xmlviews/internal/xmltree"
)

// ApproxBytes estimates the serialized size of a document without
// serializing it: tags, brackets and values.
func ApproxBytes(doc *xmltree.Document) int {
	total := 0
	doc.Root.Walk(func(n *xmltree.Node) bool {
		total += 2*len(n.Label) + 5 + len(n.Value)
		return true
	})
	return total
}

// XMark generates an XMark-like auction document. scale is roughly the
// number of items per region; the paper's XMark11/111/233 documents map to
// growing scales. Deeper parlist/listitem recursion unlocks at larger
// scales, which is what makes the real XMark summary grow slightly (536 →
// 548 nodes) as documents grow.
func XMark(scale int, seed int64) *xmltree.Document {
	r := rand.New(rand.NewSource(seed))
	g := &xmarkGen{r: r, maxParlistDepth: 2}
	if scale >= 20 {
		g.maxParlistDepth = 3
	}
	doc := xmltree.NewDocument("site")

	regions := doc.Root.AddChild("regions", "")
	for _, region := range []string{"africa", "asia", "australia", "europe", "namerica", "samerica"} {
		rn := regions.AddChild(region, "")
		for i := 0; i < scale; i++ {
			g.item(rn, i, i == 0)
		}
	}

	categories := doc.Root.AddChild("categories", "")
	for i := 0; i < 1+scale/4; i++ {
		c := categories.AddChild("category", "")
		c.AddChild("@id", fmt.Sprintf("category%d", i))
		c.AddChild("name", g.word())
		g.description(c, 2, i == 0)
	}

	catgraph := doc.Root.AddChild("catgraph", "")
	for i := 0; i < scale/2+1; i++ {
		e := catgraph.AddChild("edge", "")
		e.AddChild("@from", fmt.Sprintf("category%d", g.r.Intn(scale/4+1)))
		e.AddChild("@to", fmt.Sprintf("category%d", g.r.Intn(scale/4+1)))
	}

	people := doc.Root.AddChild("people", "")
	for i := 0; i < scale*2; i++ {
		g.person(people, i, i == 0)
	}

	open := doc.Root.AddChild("open_auctions", "")
	for i := 0; i < scale*2; i++ {
		g.openAuction(open, i, i == 0)
	}

	closed := doc.Root.AddChild("closed_auctions", "")
	for i := 0; i < scale; i++ {
		g.closedAuction(closed, i, i == 0)
	}
	return doc
}

type xmarkGen struct {
	r               *rand.Rand
	maxParlistDepth int
}

var words = []string{
	"Columbus", "fountain", "pen", "Invincia", "Monteverdi", "stainless",
	"steel", "gold", "plated", "italic", "nib", "vintage", "rare", "lot",
	"mint", "boxed", "antique", "silver", "walnut", "ebony",
}

func (g *xmarkGen) word() string { return words[g.r.Intn(len(words))] }

func (g *xmarkGen) text(parent *xmltree.Node) {
	g.textSat(parent, false)
}

func (g *xmarkGen) textSat(parent *xmltree.Node, saturate bool) {
	t := parent.AddChild("text", g.word()+" "+g.word())
	// Formatting tags appear under text with some probability; they make
	// the summary bushy the way the real XMark DTD does.
	for _, tag := range []string{"bold", "keyword", "emph"} {
		if saturate || g.r.Float64() < 0.5 {
			t.AddChild(tag, g.word())
		}
	}
}

func (g *xmarkGen) parlist(parent *xmltree.Node, depth, maxDepth int) {
	pl := parent.AddChild("parlist", "")
	n := 1 + g.r.Intn(2)
	for i := 0; i < n; i++ {
		li := pl.AddChild("listitem", "")
		if depth < maxDepth && g.r.Float64() < 0.4 {
			g.parlist(li, depth+1, maxDepth) // the DTD's unbounded recursion, shallow in practice
		} else {
			g.text(li)
		}
	}
}

// saturatedParlist deterministically produces the full recursion chain down
// to maxDepth with every formatting tag, so that summaries are stable: the
// first item of each container exercises every path its scale allows.
func (g *xmarkGen) saturatedParlist(parent *xmltree.Node, depth, maxDepth int) {
	pl := parent.AddChild("parlist", "")
	li := pl.AddChild("listitem", "")
	t := li.AddChild("text", g.word())
	t.AddChild("bold", g.word())
	t.AddChild("keyword", g.word())
	t.AddChild("emph", g.word())
	if depth < maxDepth {
		li2 := pl.AddChild("listitem", "")
		g.saturatedParlist(li2, depth+1, maxDepth)
	}
}

func (g *xmarkGen) description(parent *xmltree.Node, maxDepth int, saturate bool) {
	d := parent.AddChild("description", "")
	if saturate {
		g.saturatedParlist(d, 1, maxDepth)
		return
	}
	if g.r.Float64() < 0.5 {
		g.parlist(d, 1, maxDepth)
	} else {
		g.text(d)
	}
}

func (g *xmarkGen) item(region *xmltree.Node, i int, saturate bool) {
	it := region.AddChild("item", "")
	it.AddChild("@id", fmt.Sprintf("item%d", i))
	it.AddChild("location", "United States")
	it.AddChild("quantity", fmt.Sprintf("%d", 1+g.r.Intn(5)))
	it.AddChild("name", g.word()+" "+g.word())
	it.AddChild("payment", "Cash")
	g.description(it, g.maxParlistDepth, saturate)
	it.AddChild("shipping", "Will ship internationally")
	mb := it.AddChild("mailbox", "")
	mails := g.r.Intn(3)
	if saturate {
		mails = 1
	}
	for m := 0; m < mails; m++ {
		mail := mb.AddChild("mail", "")
		mail.AddChild("from", g.word()+"@example.com")
		mail.AddChild("to", g.word()+"@example.org")
		mail.AddChild("date", fmt.Sprintf("%02d/%02d/2006", 1+g.r.Intn(12), 1+g.r.Intn(28)))
		g.textSat(mail, saturate)
	}
	if saturate || g.r.Float64() < 0.5 {
		it.AddChild("incategory", fmt.Sprintf("category%d", g.r.Intn(4)))
	}
}

func (g *xmarkGen) person(people *xmltree.Node, i int, saturate bool) {
	p := people.AddChild("person", "")
	p.AddChild("@id", fmt.Sprintf("person%d", i))
	p.AddChild("name", g.word()+" "+g.word())
	p.AddChild("emailaddress", fmt.Sprintf("mailto:p%d@example.com", i))
	if saturate || g.r.Float64() < 0.6 {
		p.AddChild("phone", fmt.Sprintf("+1 (%d) 555-01%02d", 100+g.r.Intn(900), g.r.Intn(100)))
	}
	if saturate || g.r.Float64() < 0.7 {
		a := p.AddChild("address", "")
		a.AddChild("street", fmt.Sprintf("%d %s St", 1+g.r.Intn(99), g.word()))
		a.AddChild("city", g.word())
		a.AddChild("country", "United States")
		a.AddChild("zipcode", fmt.Sprintf("%05d", g.r.Intn(100000)))
	}
	if saturate || g.r.Float64() < 0.4 {
		w := p.AddChild("watches", "")
		for j := 0; j <= g.r.Intn(3); j++ {
			w.AddChild("watch", fmt.Sprintf("open_auction%d", g.r.Intn(20)))
		}
	}
	if saturate || g.r.Float64() < 0.3 {
		pr := p.AddChild("profile", "")
		pr.AddChild("interest", fmt.Sprintf("category%d", g.r.Intn(4)))
		pr.AddChild("income", fmt.Sprintf("%d", 20000+g.r.Intn(80000)))
	}
}

func (g *xmarkGen) openAuction(open *xmltree.Node, i int, saturate bool) {
	oa := open.AddChild("open_auction", "")
	oa.AddChild("@id", fmt.Sprintf("open_auction%d", i))
	oa.AddChild("initial", fmt.Sprintf("%.2f", 1+g.r.Float64()*100))
	bidders := g.r.Intn(3)
	if saturate {
		bidders = 1
	}
	for b := 0; b < bidders; b++ {
		bd := oa.AddChild("bidder", "")
		bd.AddChild("date", "04/06/2006")
		bd.AddChild("time", "10:14:32")
		bd.AddChild("increase", fmt.Sprintf("%.2f", 1+g.r.Float64()*10))
		bd.AddChild("personref", fmt.Sprintf("person%d", g.r.Intn(40)))
	}
	oa.AddChild("current", fmt.Sprintf("%.2f", 1+g.r.Float64()*200))
	oa.AddChild("itemref", fmt.Sprintf("item%d", g.r.Intn(20)))
	oa.AddChild("seller", fmt.Sprintf("person%d", g.r.Intn(40)))
	an := oa.AddChild("annotation", "")
	an.AddChild("author", fmt.Sprintf("person%d", g.r.Intn(40)))
	g.description(an, 2, saturate)
	oa.AddChild("quantity", "1")
	oa.AddChild("type", "Regular")
	iv := oa.AddChild("interval", "")
	iv.AddChild("start", "01/01/2006")
	iv.AddChild("end", "12/31/2006")
}

func (g *xmarkGen) closedAuction(closed *xmltree.Node, i int, saturate bool) {
	ca := closed.AddChild("closed_auction", "")
	ca.AddChild("seller", fmt.Sprintf("person%d", g.r.Intn(40)))
	ca.AddChild("buyer", fmt.Sprintf("person%d", g.r.Intn(40)))
	ca.AddChild("itemref", fmt.Sprintf("item%d", g.r.Intn(20)))
	ca.AddChild("price", fmt.Sprintf("%.2f", 1+g.r.Float64()*300))
	ca.AddChild("date", "05/05/2006")
	ca.AddChild("quantity", "1")
	ca.AddChild("type", "Regular")
	if saturate || g.r.Float64() < 0.6 {
		an := ca.AddChild("annotation", "")
		an.AddChild("author", fmt.Sprintf("person%d", g.r.Intn(40)))
		g.description(an, 2, saturate)
	}
}

// DBLP generates a DBLP-like bibliography. newer=true adds the element
// kinds that appeared between the 2002 and 2005 snapshots, growing the
// summary the way Table 1 shows (145 → 159 nodes).
func DBLP(scale int, seed int64, newer bool) *xmltree.Document {
	r := rand.New(rand.NewSource(seed))
	doc := xmltree.NewDocument("dblp")
	kinds := []string{"article", "inproceedings", "proceedings", "book", "incollection", "phdthesis", "mastersthesis", "www"}
	for i := 0; i < scale*8; i++ {
		kind := kinds[r.Intn(len(kinds))]
		rec := doc.Root.AddChild(kind, "")
		rec.AddChild("@key", fmt.Sprintf("%s/%d", kind, i))
		for a := 0; a <= r.Intn(3); a++ {
			rec.AddChild("author", words[r.Intn(len(words))])
		}
		rec.AddChild("title", words[r.Intn(len(words))]+" studies")
		rec.AddChild("year", fmt.Sprintf("%d", 1990+r.Intn(15)))
		switch kind {
		case "article":
			rec.AddChild("journal", "TODS")
			rec.AddChild("volume", fmt.Sprintf("%d", 1+r.Intn(30)))
			rec.AddChild("pages", "1-20")
			if r.Float64() < 0.5 {
				rec.AddChild("ee", "db/journals/tods")
			}
		case "inproceedings":
			rec.AddChild("booktitle", "VLDB")
			rec.AddChild("pages", "100-111")
			if r.Float64() < 0.3 {
				rec.AddChild("crossref", "conf/vldb/2005")
			}
		case "proceedings":
			rec.AddChild("publisher", "ACM")
			rec.AddChild("isbn", "1-23456-789-0")
		case "book":
			rec.AddChild("publisher", "Springer")
			rec.AddChild("series", "LNCS")
		case "www":
			rec.AddChild("url", "http://example.org")
		}
		if r.Float64() < 0.2 {
			rec.AddChild("cite", fmt.Sprintf("article/%d", r.Intn(100)))
		}
		if newer {
			// Post-2002 additions.
			switch kind {
			case "article":
				if r.Float64() < 0.4 {
					rec.AddChild("number", fmt.Sprintf("%d", 1+r.Intn(12)))
				}
				if r.Float64() < 0.2 {
					rec.AddChild("note", "to appear")
				}
			case "inproceedings":
				if r.Float64() < 0.3 {
					rec.AddChild("ee", "db/conf/vldb")
				}
			case "www":
				rec.AddChild("editor", words[r.Intn(len(words))])
			}
		}
	}
	return doc
}

// Shakespeare generates a play-collection document in the structure of the
// Bosak Shakespeare corpus.
func Shakespeare(scale int, seed int64) *xmltree.Document {
	r := rand.New(rand.NewSource(seed))
	doc := xmltree.NewDocument("PLAYS")
	for p := 0; p < 1+scale/4; p++ {
		play := doc.Root.AddChild("PLAY", "")
		play.AddChild("TITLE", "The Tragedy of "+words[r.Intn(len(words))])
		fm := play.AddChild("FM", "")
		fm.AddChild("P", "Text placed in the public domain")
		personae := play.AddChild("PERSONAE", "")
		personae.AddChild("TITLE", "Dramatis Personae")
		for i := 0; i < 4; i++ {
			personae.AddChild("PERSONA", words[r.Intn(len(words))])
		}
		pg := personae.AddChild("PGROUP", "")
		pg.AddChild("PERSONA", words[r.Intn(len(words))])
		pg.AddChild("GRPDESCR", "members of the court")
		for a := 0; a < 2+scale/2; a++ {
			act := play.AddChild("ACT", "")
			act.AddChild("TITLE", fmt.Sprintf("ACT %d", a+1))
			for sc := 0; sc < 2; sc++ {
				scene := act.AddChild("SCENE", "")
				scene.AddChild("TITLE", fmt.Sprintf("SCENE %d", sc+1))
				if r.Float64() < 0.5 {
					scene.AddChild("STAGEDIR", "Enter "+words[r.Intn(len(words))])
				}
				for sp := 0; sp < 3+r.Intn(4); sp++ {
					speech := scene.AddChild("SPEECH", "")
					speech.AddChild("SPEAKER", words[r.Intn(len(words))])
					for l := 0; l <= r.Intn(4); l++ {
						speech.AddChild("LINE", "so speaks the "+words[r.Intn(len(words))])
					}
				}
			}
		}
	}
	return doc
}

// Nasa generates a dataset-catalog document in the structure of the NASA
// ADC XML corpus (a flat summary, as Table 1 reports).
func Nasa(scale int, seed int64) *xmltree.Document {
	r := rand.New(rand.NewSource(seed))
	doc := xmltree.NewDocument("datasets")
	for i := 0; i < scale*6; i++ {
		ds := doc.Root.AddChild("dataset", "")
		ds.AddChild("@subject", "astronomy")
		ds.AddChild("title", "catalog "+words[r.Intn(len(words))])
		ds.AddChild("altname", fmt.Sprintf("ADC %d", i))
		ref := ds.AddChild("reference", "")
		src := ref.AddChild("source", "")
		other := src.AddChild("other", "")
		other.AddChild("author", words[r.Intn(len(words))])
		other.AddChild("year", fmt.Sprintf("%d", 1970+r.Intn(30)))
		hist := ds.AddChild("history", "")
		ing := hist.AddChild("ingest", "")
		ing.AddChild("date", "1999-01-01")
		ing.AddChild("creator", words[r.Intn(len(words))])
		th := ds.AddChild("tableHead", "")
		for f := 0; f <= r.Intn(4); f++ {
			fld := th.AddChild("field", "")
			fld.AddChild("name", fmt.Sprintf("col%d", f))
			fld.AddChild("units", "mag")
		}
		if r.Float64() < 0.5 {
			ds.AddChild("keywords", "stars photometry")
		}
	}
	return doc
}

// SwissProt generates a protein-database document in the structure of the
// SwissProt XML corpus.
func SwissProt(scale int, seed int64) *xmltree.Document {
	r := rand.New(rand.NewSource(seed))
	doc := xmltree.NewDocument("root")
	for i := 0; i < scale*8; i++ {
		e := doc.Root.AddChild("Entry", "")
		e.AddChild("@id", fmt.Sprintf("P%05d", i))
		e.AddChild("AC", fmt.Sprintf("Q%05d", i))
		e.AddChild("Mod", "01-JAN-1998")
		e.AddChild("Descr", words[r.Intn(len(words))]+" protein")
		for s := 0; s <= r.Intn(3); s++ {
			sp := e.AddChild("Species", "Homo sapiens")
			_ = sp
		}
		org := e.AddChild("Org", "Eukaryota")
		_ = org
		for rr := 0; rr <= r.Intn(3); rr++ {
			refr := e.AddChild("Ref", "")
			refr.AddChild("@num", fmt.Sprintf("%d", rr+1))
			refr.AddChild("Comment", "sequence analysis")
			cit := refr.AddChild("Cite", "")
			cit.AddChild("@db", "MEDLINE")
			au := refr.AddChild("Author", words[r.Intn(len(words))])
			_ = au
			refr.AddChild("MedlineID", fmt.Sprintf("%08d", r.Intn(99999999)))
		}
		for f := 0; f <= r.Intn(4); f++ {
			feat := e.AddChild("Features", "")
			dom := feat.AddChild("DOMAIN", "")
			dom.AddChild("Descr", "transmembrane")
			dom.AddChild("From", fmt.Sprintf("%d", r.Intn(100)))
			dom.AddChild("To", fmt.Sprintf("%d", 100+r.Intn(100)))
		}
		kw := e.AddChild("Keywords", "")
		for k := 0; k <= r.Intn(3); k++ {
			kw.AddChild("Keyword", words[r.Intn(len(words))])
		}
	}
	return doc
}
