package datagen

import (
	"testing"

	"xmlviews/internal/summary"
)

func TestXMarkDeterministic(t *testing.T) {
	a := XMark(3, 42)
	b := XMark(3, 42)
	if a.Root.String() != b.Root.String() {
		t.Fatal("XMark generation not deterministic")
	}
	c := XMark(3, 43)
	if a.Root.String() == c.Root.String() {
		t.Fatal("different seeds should differ")
	}
}

func TestXMarkSummaryShape(t *testing.T) {
	doc := XMark(5, 1)
	s := summary.Build(doc)
	// The real XMark summary has a few hundred nodes; ours must be in the
	// same regime and contain the paths the paper's examples rely on.
	if s.Size() < 150 {
		t.Fatalf("XMark summary too small: %d", s.Size())
	}
	for _, path := range []string{
		"/site/regions/asia/item/description/parlist/listitem",
		"/site/regions/asia/item/mailbox/mail/from",
		"/site/people/person/name",
		"/site/open_auctions/open_auction/bidder/increase",
		"/site/closed_auctions/closed_auction/price",
	} {
		if s.FindPath(path) < 0 {
			t.Errorf("missing path %s", path)
		}
	}
	ns, n1 := s.Stats()
	if ns == 0 || n1 == 0 {
		t.Errorf("expected strong and one-to-one edges, got %d, %d", ns, n1)
	}
}

func TestXMarkSummaryGrowsSlowly(t *testing.T) {
	small := summary.Build(XMark(2, 7))
	big := summary.Build(XMark(30, 7))
	if big.Size() <= small.Size() {
		t.Fatalf("summary should grow: %d vs %d", small.Size(), big.Size())
	}
	// Table 1: from XMark11 to XMark233 the summary grows ~10%; our analog
	// grows ~20% (the deeper recursion paths weigh more in a smaller base
	// summary) while the document grows >10x — same qualitative shape.
	if float64(big.Size()) > 1.35*float64(small.Size()) {
		t.Fatalf("summary grew too much: %d -> %d", small.Size(), big.Size())
	}
	if ApproxBytes(XMark(30, 7)) < 5*ApproxBytes(XMark(2, 7)) {
		t.Fatal("document should grow much faster than summary")
	}
}

func TestXMarkRecursionDepthUnlocksWithScale(t *testing.T) {
	small := summary.Build(XMark(2, 7))
	big := summary.Build(XMark(30, 7))
	deep := "/site/regions/asia/item/description/parlist/listitem/parlist/listitem/parlist"
	if small.FindPath(deep) >= 0 {
		t.Skip("small doc already reached deep recursion with this seed")
	}
	if big.FindPath(deep) < 0 {
		t.Error("large document should reach deeper parlist recursion")
	}
}

func TestDBLPSnapshots(t *testing.T) {
	old := summary.Build(DBLP(10, 5, false))
	newer := summary.Build(DBLP(10, 5, true))
	if newer.Size() <= old.Size() {
		t.Fatalf("2005 snapshot should have more paths: %d vs %d", old.Size(), newer.Size())
	}
	if old.FindPath("/dblp/article/journal") < 0 {
		t.Error("missing /dblp/article/journal")
	}
	if newer.FindPath("/dblp/article/number") < 0 {
		t.Error("missing post-2002 path /dblp/article/number")
	}
	if old.FindPath("/dblp/article/number") >= 0 {
		t.Error("2002 snapshot should not contain /dblp/article/number")
	}
}

func TestOtherCorpora(t *testing.T) {
	cases := []struct {
		name    string
		size    int
		minPath string
	}{
		{"shakespeare", summary.Build(Shakespeare(4, 1)).Size(), "/PLAYS/PLAY/ACT/SCENE/SPEECH/LINE"},
		{"nasa", summary.Build(Nasa(4, 1)).Size(), "/datasets/dataset/tableHead/field/name"},
		{"swissprot", summary.Build(SwissProt(4, 1)).Size(), "/root/Entry/Ref/Cite"},
	}
	docs := map[string]int{"shakespeare": 0, "nasa": 1, "swissprot": 2}
	_ = docs
	for _, c := range cases {
		if c.size < 10 {
			t.Errorf("%s summary too small: %d", c.name, c.size)
		}
	}
	if summary.Build(Shakespeare(4, 1)).FindPath(cases[0].minPath) < 0 {
		t.Error("shakespeare missing SPEECH/LINE path")
	}
	if summary.Build(Nasa(4, 1)).FindPath(cases[1].minPath) < 0 {
		t.Error("nasa missing field path")
	}
	if summary.Build(SwissProt(4, 1)).FindPath(cases[2].minPath) < 0 {
		t.Error("swissprot missing Ref/Cite path")
	}
}

func TestApproxBytesTracksSize(t *testing.T) {
	small, big := XMark(2, 3), XMark(8, 3)
	if ApproxBytes(big) <= ApproxBytes(small) {
		t.Fatal("ApproxBytes should grow with the document")
	}
}
