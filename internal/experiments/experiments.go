// Package experiments implements the paper's Section 5 evaluation: one
// driver per table/figure, shared by cmd/xvbench and the root benchmark
// suite. Each driver returns structured rows so callers can print the same
// series the paper plots.
package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"xmlviews/internal/core"
	"xmlviews/internal/datagen"
	"xmlviews/internal/patgen"
	"xmlviews/internal/pattern"
	"xmlviews/internal/summary"
	"xmlviews/internal/xmark"
	"xmlviews/internal/xmltree"
)

// Table1Row is one line of Table 1: a document and its summary statistics.
type Table1Row struct {
	Name      string
	Nodes     int
	ApproxKB  int
	S         int // |S|
	Strong    int // nS
	OneToOne  int // n1
	BuildTime time.Duration
}

// Table1 generates the eight corpora analogs and summarizes them. scale
// multiplies every corpus size (1 = quick, 8 = heavier).
func Table1(scale int) []Table1Row {
	if scale <= 0 {
		scale = 1
	}
	docs := []struct {
		name string
		doc  *xmltree.Document
	}{
		{"Shakespeare", datagen.Shakespeare(4*scale, 11)},
		{"Nasa", datagen.Nasa(6*scale, 12)},
		{"SwissProt", datagen.SwissProt(8*scale, 13)},
		{"XMark-S", datagen.XMark(3*scale, 14)},
		{"XMark-M", datagen.XMark(12*scale, 14)},
		{"XMark-L", datagen.XMark(24*scale, 14)},
		{"DBLP'02", datagen.DBLP(10*scale, 15, false)},
		{"DBLP'05", datagen.DBLP(20*scale, 15, true)},
	}
	rows := make([]Table1Row, 0, len(docs))
	for _, d := range docs {
		start := time.Now()
		s := summary.Build(d.doc)
		build := time.Since(start)
		ns, n1 := s.Stats()
		rows = append(rows, Table1Row{
			Name: d.name, Nodes: d.doc.Size(),
			ApproxKB: datagen.ApproxBytes(d.doc) / 1024,
			S:        s.Size(), Strong: ns, OneToOne: n1, BuildTime: build,
		})
	}
	return rows
}

// XMarkSummary builds the reference XMark summary used by the pattern
// experiments (the analog of the paper's 548-node summary).
func XMarkSummary() *summary.Summary {
	return summary.Build(datagen.XMark(24, 14))
}

// DBLPSummary builds the DBLP'05 summary for Figure 14.
func DBLPSummary() *summary.Summary {
	return summary.Build(datagen.DBLP(20, 15, true))
}

// Fig13QueryRow is one bar of Figure 13 (top): an XMark query pattern, its
// canonical model size, and its self-containment decision time.
type Fig13QueryRow struct {
	Query     int
	ModelSize int
	Time      time.Duration
}

// Fig13XMarkQueries measures canonical model size and self-containment
// time for the 20 XMark queries (Figure 13, top).
func Fig13XMarkQueries(s *summary.Summary) ([]Fig13QueryRow, error) {
	rows := make([]Fig13QueryRow, 0, xmark.Count)
	// One summary-implication cache across the 20 decisions (one summary).
	opts := core.DefaultContainOptions()
	opts.Subsume = core.NewSubsumeCache(0)
	for i := 1; i <= xmark.Count; i++ {
		q := xmark.Query(i)
		model, err := core.Model(q, s)
		if err != nil {
			return nil, fmt.Errorf("Q%d: %v", i, err)
		}
		start := time.Now()
		ok, _, err := core.ContainedWith(q, []*pattern.Pattern{xmark.Query(i)}, s, opts)
		if err != nil {
			return nil, fmt.Errorf("Q%d: %v", i, err)
		}
		if !ok {
			return nil, fmt.Errorf("Q%d not self-contained", i)
		}
		rows = append(rows, Fig13QueryRow{Query: i, ModelSize: len(model), Time: time.Since(start)})
	}
	return rows, nil
}

// SyntheticRow is one point of the synthetic containment curves
// (Figures 13 bottom and 14): pattern size n, return arity r, and the mean
// decision times for positive and negative outcomes.
type SyntheticRow struct {
	N, R               int
	Positive, Negative time.Duration
	PosCount, NegCount int
}

// SyntheticConfig parameterizes the synthetic containment experiment.
type SyntheticConfig struct {
	Sizes        []int    // pattern sizes n
	Arities      []int    // return arities r
	PerSize      int      // patterns generated per (n, r); the paper uses 40
	ReturnLabels []string // labels drawn for return nodes, by arity
	Optional     float64  // optional-edge probability (paper: 0.5)
	Seed         int64
}

// DefaultSyntheticConfig mirrors Section 5: n = 3..13, r = 1..3, return
// labels fixed per summary.
func DefaultSyntheticConfig(labels ...string) SyntheticConfig {
	return SyntheticConfig{
		Sizes:        []int{3, 5, 7, 9, 11, 13},
		Arities:      []int{1, 2, 3},
		PerSize:      12,
		ReturnLabels: labels,
		Optional:     0.5,
		Seed:         20061017,
	}
}

// Synthetic runs pairwise containment over generated patterns and averages
// decision times, separating positive from negative outcomes (the paper's
// Figure 13 bottom / Figure 14 protocol: p(n,i,r) ⊆S p(n,j,r)).
func Synthetic(s *summary.Summary, cfg SyntheticConfig) ([]SyntheticRow, error) {
	r := rand.New(rand.NewSource(cfg.Seed))
	copts := relaxedContain()
	copts.Subsume = core.NewSubsumeCache(0) // shared across the pair loop
	var rows []SyntheticRow
	for _, n := range cfg.Sizes {
		for _, arity := range cfg.Arities {
			if arity > len(cfg.ReturnLabels) {
				continue
			}
			pats := make([]*pattern.Pattern, 0, cfg.PerSize)
			for len(pats) < cfg.PerSize {
				gcfg := patgen.DefaultConfig(n, cfg.ReturnLabels[:arity]...)
				gcfg.Optional = cfg.Optional
				p, err := patgen.Generate(s, gcfg, r)
				if err != nil {
					return nil, err
				}
				pats = append(pats, p)
			}
			row := SyntheticRow{N: n, R: arity}
			var posTotal, negTotal time.Duration
			for i := 0; i < len(pats); i++ {
				for j := i; j < len(pats); j++ {
					start := time.Now()
					ok, _, err := core.ContainedWith(pats[i], []*pattern.Pattern{pats[j]}, s, copts)
					el := time.Since(start)
					if err != nil {
						continue // canonical model overflow: skip the pair
					}
					if ok {
						posTotal += el
						row.PosCount++
					} else {
						negTotal += el
						row.NegCount++
					}
				}
			}
			if row.PosCount > 0 {
				row.Positive = posTotal / time.Duration(row.PosCount)
			}
			if row.NegCount > 0 {
				row.Negative = negTotal / time.Duration(row.NegCount)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func relaxedContain() core.ContainOptions {
	opts := core.DefaultContainOptions()
	opts.IgnoreAttrs = true
	opts.Model.MaxTrees = 20000
	return opts
}

// Fig15Row is one query of Figure 15: the rewriting timings and pruning
// statistics.
type Fig15Row struct {
	Query                 int
	Setup, First, Total   time.Duration
	Rewritings            int
	ViewsKept, ViewsTotal int
	PlansExplored         int
}

// Fig15Views builds the paper's view set: one 2-node view per XMark tag
// (root + tag, storing ID and V) plus extra random 3-node views with 50%
// optional edges and per-node P(ID,V) = 0.75.
func Fig15Views(s *summary.Summary, randomViews int, seed int64) []*core.View {
	r := rand.New(rand.NewSource(seed))
	var views []*core.View
	seenLabel := map[string]bool{}
	for _, id := range s.NodeIDs()[1:] {
		label := s.Node(id).Label
		if seenLabel[label] {
			continue
		}
		seenLabel[label] = true
		p := pattern.NewPattern(s.Node(summary.RootID).Label)
		n := p.AddChild(p.Root, label, pattern.Descendant)
		n.Attrs = pattern.AttrID | pattern.AttrValue
		views = append(views, &core.View{
			Name:    "seed:" + label,
			Pattern: p.Finish(), DerivableParentIDs: true,
		})
	}
	for i := 0; i < randomViews; i++ {
		v := randomThreeNodeView(s, r, i)
		if v != nil {
			views = append(views, v)
		}
	}
	return views
}

// randomThreeNodeView builds root→a→b with random axes, optional edges
// with probability 0.5, and ID,V stored with probability 0.75 per node.
func randomThreeNodeView(s *summary.Summary, r *rand.Rand, i int) *core.View {
	ids := s.NodeIDs()[1:]
	a := ids[r.Intn(len(ids))]
	desc := s.Descendants(a)
	if len(desc) == 0 {
		return nil
	}
	b := desc[r.Intn(len(desc))]
	p := pattern.NewPattern(s.Node(summary.RootID).Label)
	axisA := pattern.Descendant
	if s.Node(a).Parent == summary.RootID && r.Float64() < 0.5 {
		axisA = pattern.Child
	}
	na := p.AddChild(p.Root, s.Node(a).Label, axisA)
	axisB := pattern.Descendant
	if s.Node(b).Parent == a && r.Float64() < 0.5 {
		axisB = pattern.Child
	}
	nb := p.AddChild(na, s.Node(b).Label, axisB)
	stored := false
	for _, n := range []*pattern.Node{na, nb} {
		if r.Float64() < 0.75 {
			n.Attrs = pattern.AttrID | pattern.AttrValue
			stored = true
		}
	}
	if !stored {
		nb.Attrs = pattern.AttrID | pattern.AttrValue
	}
	if r.Float64() < 0.5 {
		nb.Optional = true
	}
	return &core.View{
		Name:    fmt.Sprintf("rnd%d:%s/%s", i, s.Node(a).Label, s.Node(b).Label),
		Pattern: p.Finish(), DerivableParentIDs: true,
	}
}

// Fig15 rewrites the 20 XMark query patterns against the view set.
// workers tunes the parallel search (0 or 1 = sequential, n > 1 = that
// many workers, negative = GOMAXPROCS); the results are identical across
// worker counts, only the timings change. One summary-implication cache
// is shared across all 20 queries (they run over the same summary).
func Fig15(s *summary.Summary, randomViews, workers int) ([]Fig15Row, error) {
	views := Fig15Views(s, randomViews, 77)
	opts := core.DefaultRewriteOptions()
	opts.MaxScansPerPlan = 3
	opts.MaxResults = 4
	opts.MaxExplored = 30000
	opts.MaxNavDepth = 3
	opts.Workers = workers
	opts.Subsume = core.NewSubsumeCache(0)
	rows := make([]Fig15Row, 0, xmark.Count)
	for i := 1; i <= xmark.Count; i++ {
		res, err := core.Rewrite(xmark.Query(i), views, s, opts)
		if err != nil {
			return nil, fmt.Errorf("Q%d: %v", i, err)
		}
		rows = append(rows, Fig15Row{
			Query: i, Setup: res.Setup, First: res.First, Total: res.Total,
			Rewritings: len(res.Rewritings),
			ViewsKept:  res.ViewsKept, ViewsTotal: res.ViewsTotal,
			PlansExplored: res.PlansExplored,
		})
	}
	return rows, nil
}

// AblationRow compares enhanced-summary rewriting against plain summaries
// on the running example (Section 1 / E7 in DESIGN.md).
type AblationRow struct {
	Name               string
	EnhancedRewritings int
	PlainRewritings    int
	EnhancedTime       time.Duration
	PlainTime          time.Duration
}

// AblationEnhancedSummary runs the strong-edge ablation: a view without
// the query's mail condition rewrites the query only when the summary
// records that every item has a mail descendant.
func AblationEnhancedSummary() (AblationRow, error) {
	sStrong := summary.MustParse("site(!regions(!item(!name !mail =location)))")
	v := &core.View{Name: "items", Pattern: pattern.MustParse(`site(//item[id](/name[v]))`), DerivableParentIDs: true}
	q := pattern.MustParse(`site(//item[id](/name[v] /mail))`)

	opts := core.DefaultRewriteOptions()
	start := time.Now()
	enh, err := core.Rewrite(q, []*core.View{v}, sStrong, opts)
	if err != nil {
		return AblationRow{}, err
	}
	enhTime := time.Since(start)

	opts.Model.Enhanced = false
	start = time.Now()
	plain, err := core.Rewrite(q, []*core.View{v}, sStrong, opts)
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		Name:               "strong-edge mail constraint",
		EnhancedRewritings: len(enh.Rewritings),
		PlainRewritings:    len(plain.Rewritings),
		EnhancedTime:       enhTime,
		PlainTime:          time.Since(start),
	}, nil
}
