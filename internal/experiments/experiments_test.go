package experiments

import (
	"testing"
	"time"

	"xmlviews/internal/core"
	"xmlviews/internal/xmark"
)

func TestTable1Shape(t *testing.T) {
	rows := Table1(1)
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.S == 0 || r.Nodes == 0 || r.Strong == 0 {
			t.Errorf("%s: degenerate row %+v", r.Name, r)
		}
		if r.S > r.Nodes {
			t.Errorf("%s: summary larger than document", r.Name)
		}
	}
	// Qualitative Table 1 shapes: summaries are small and document size
	// dominates; DBLP'05 has more paths than DBLP'02; XMark summaries grow
	// slowly with scale.
	if byName["DBLP'05"].S <= byName["DBLP'02"].S {
		t.Error("DBLP'05 should have more paths than DBLP'02")
	}
	if byName["XMark-L"].Nodes < 4*byName["XMark-S"].Nodes {
		t.Error("XMark-L should be much larger than XMark-S")
	}
	if float64(byName["XMark-L"].S) > 1.4*float64(byName["XMark-S"].S) {
		t.Error("XMark summary should grow slowly")
	}
}

func TestFig13TopRuns(t *testing.T) {
	s := XMarkSummary()
	rows, err := Fig13XMarkQueries(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != xmark.Count {
		t.Fatalf("rows = %d", len(rows))
	}
	// Q7 is the canonical-model outlier.
	max, maxQ := 0, 0
	for _, r := range rows {
		if r.ModelSize > max {
			max, maxQ = r.ModelSize, r.Query
		}
	}
	if maxQ != 7 {
		t.Errorf("outlier is Q%d (size %d), expected Q7", maxQ, max)
	}
}

func TestSyntheticSmall(t *testing.T) {
	s := DBLPSummary()
	cfg := DefaultSyntheticConfig("article", "author")
	cfg.Sizes = []int{3, 5}
	cfg.PerSize = 4
	rows, err := Synthetic(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 sizes × 2 arities
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PosCount == 0 {
			t.Errorf("n=%d r=%d: no positive cases (self-containment at least)", r.N, r.R)
		}
	}
}

func TestFig15SmallRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("rewriting workload")
	}
	s := XMarkSummary()
	views := Fig15Views(s, 5, 77)
	if len(views) < 40 {
		t.Fatalf("view set too small: %d", len(views))
	}
	opts := core.DefaultRewriteOptions()
	opts.MaxScansPerPlan = 3
	opts.FirstOnly = true
	opts.MaxExplored = 12000
	opts.MaxNavDepth = 2
	start := time.Now()
	res, err := core.Rewrite(xmark.Query(1), views, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Q1: %d rewritings in %v (explored %d, views %d/%d)",
		len(res.Rewritings), time.Since(start), res.PlansExplored, res.ViewsKept, res.ViewsTotal)
	if res.ViewsKept >= res.ViewsTotal {
		t.Error("pruning should drop views")
	}
	if len(res.Rewritings) == 0 {
		t.Error("Q1 should be rewritable from the seed views (outer join)")
	}
}

func TestAblation(t *testing.T) {
	row, err := AblationEnhancedSummary()
	if err != nil {
		t.Fatal(err)
	}
	if row.EnhancedRewritings == 0 {
		t.Error("enhanced summary should enable the rewriting")
	}
	if row.PlainRewritings != 0 {
		t.Error("plain summary must not find a rewriting")
	}
}

// TestXMarkParallelRewriteMatchesSequential runs representative XMark
// queries against the Figure 15 view set in both engine modes and asserts
// identical rewritings (plans and order) and statistics.
func TestXMarkParallelRewriteMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("rewriting workload")
	}
	s := XMarkSummary()
	views := Fig15Views(s, 5, 77)
	base := core.DefaultRewriteOptions()
	base.MaxScansPerPlan = 3
	base.MaxResults = 4
	base.MaxExplored = 1000
	base.MaxNavDepth = 2
	for _, qi := range []int{1, 5} {
		seqOpts := base
		res, err := core.Rewrite(xmark.Query(qi), views, s, seqOpts)
		if err != nil {
			t.Fatalf("Q%d sequential: %v", qi, err)
		}
		parOpts := base
		parOpts.Workers = 8
		par, err := core.Rewrite(xmark.Query(qi), views, s, parOpts)
		if err != nil {
			t.Fatalf("Q%d parallel: %v", qi, err)
		}
		if res.PlansExplored != par.PlansExplored || res.ViewsKept != par.ViewsKept ||
			len(res.Rewritings) != len(par.Rewritings) {
			t.Fatalf("Q%d stats diverged: sequential explored=%d kept=%d n=%d, parallel explored=%d kept=%d n=%d",
				qi, res.PlansExplored, res.ViewsKept, len(res.Rewritings),
				par.PlansExplored, par.ViewsKept, len(par.Rewritings))
		}
		for i := range res.Rewritings {
			if res.Rewritings[i].String() != par.Rewritings[i].String() {
				t.Fatalf("Q%d plan %d diverged:\n%s\nvs\n%s",
					qi, i, res.Rewritings[i], par.Rewritings[i])
			}
		}
	}
}
