package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is phase 1 of the interprocedural framework: a module-wide,
// go/types-resolved call graph. It is deliberately a *static reference*
// graph, not a points-to analysis: an edge means "this body names that
// function", either by calling it (EdgeCall) or by taking its value
// (EdgeRef, covering method values like `h := s.snapshot` and function
// values passed as callbacks). Calls through interfaces or stored
// function variables resolve to the interface method or not at all —
// analyzers that consume the graph must stay sound under that
// approximation (facts.go treats unresolvable uses of a tracked value
// as escapes for exactly this reason).
//
// Calls inside function literals are attributed to the enclosing
// declared function, with Edge.InFuncLit set so consumers that care
// about goroutine boundaries (the polls-ctx fact) can exclude them.

// EdgeKind distinguishes a call from a reference that takes the
// function's value.
type EdgeKind int

const (
	// EdgeCall is a direct call or method call.
	EdgeCall EdgeKind = iota
	// EdgeRef is a method value or function value reference: the function
	// escapes as data and may be called anywhere later.
	EdgeRef
)

func (k EdgeKind) String() string {
	if k == EdgeRef {
		return "ref"
	}
	return "call"
}

// Edge is one resolved use of Callee inside Caller's body.
type Edge struct {
	Caller string
	Callee string
	Kind   EdgeKind
	Pos    token.Pos
	// Site is the call expression for EdgeCall edges, nil for EdgeRef.
	Site *ast.CallExpr
	// InFuncLit marks uses inside a function literal of the caller: the
	// use is still attributed to the enclosing declaration, but it may
	// execute on another goroutine or not at all.
	InFuncLit bool
}

// FuncNode is one function in the graph, keyed like lockcheck's registry
// (pkgpath.Func or pkgpath.Recv.Method). Functions outside the loaded
// program (standard library, interface methods) get a node with nil Pkg
// and Decl so their incoming edges are still navigable.
type FuncNode struct {
	Key  string
	Pkg  *Package
	Decl *ast.FuncDecl
	Out  []*Edge
	In   []*Edge
}

// CallGraph is the module-wide function reference graph.
type CallGraph struct {
	Nodes map[string]*FuncNode
}

// Node returns the node for key, or nil.
func (g *CallGraph) Node(key string) *FuncNode { return g.Nodes[key] }

// Keys returns every node key in sorted order (for deterministic
// iteration; Go randomizes map order).
func (g *CallGraph) Keys() []string {
	keys := make([]string, 0, len(g.Nodes))
	for k := range g.Nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CallGraph returns the program's call graph, building it on first use.
func (p *Program) CallGraph() *CallGraph {
	p.cgOnce.Do(func() { p.cg = buildCallGraph(p) })
	return p.cg
}

func buildCallGraph(prog *Program) *CallGraph {
	g := &CallGraph{Nodes: map[string]*FuncNode{}}
	// Declared functions first, so callee lookups find Pkg and Decl.
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				key := declKey(pkg.Path, fd)
				g.Nodes[key] = &FuncNode{Key: key, Pkg: pkg, Decl: fd}
			}
		}
	}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				g.addEdges(pkg, g.Nodes[declKey(pkg.Path, fd)], fd)
			}
		}
	}
	return g
}

func (g *CallGraph) ensure(key string) *FuncNode {
	n := g.Nodes[key]
	if n == nil {
		n = &FuncNode{Key: key}
		g.Nodes[key] = n
	}
	return n
}

func (g *CallGraph) addEdge(e *Edge) {
	caller := g.ensure(e.Caller)
	callee := g.ensure(e.Callee)
	caller.Out = append(caller.Out, e)
	callee.In = append(callee.In, e)
}

// addEdges walks one function body recording call and reference edges.
// The walk keeps an explicit node stack so uses inside function literals
// are recognized, and remembers which identifiers are call heads so the
// callee of `f(x)` is not double-counted as a reference to f.
func (g *CallGraph) addEdges(pkg *Package, caller *FuncNode, fd *ast.FuncDecl) {
	var stack []ast.Node
	callHeads := map[*ast.Ident]bool{}
	inLit := func() bool {
		for _, n := range stack {
			if _, ok := n.(*ast.FuncLit); ok {
				return true
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch s := n.(type) {
		case *ast.CallExpr:
			if fn, id := resolveCall(pkg.Info, s); fn != nil {
				callHeads[id] = true
				g.addEdge(&Edge{
					Caller:    caller.Key,
					Callee:    funcKey(fn),
					Kind:      EdgeCall,
					Pos:       s.Pos(),
					Site:      s,
					InFuncLit: inLit(),
				})
			}
		case *ast.Ident:
			if callHeads[s] {
				return true
			}
			if fn, ok := pkg.Info.Uses[s].(*types.Func); ok {
				g.addEdge(&Edge{
					Caller:    caller.Key,
					Callee:    funcKey(fn),
					Kind:      EdgeRef,
					Pos:       s.Pos(),
					InFuncLit: inLit(),
				})
			}
		}
		return true
	})
}

// resolveCall is calleeFunc plus the identifier that names the callee,
// and unwraps explicit instantiations of generic functions (f[T](x)).
func resolveCall(info *types.Info, call *ast.CallExpr) (*types.Func, *ast.Ident) {
	fun := unparen(call.Fun)
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = unparen(ix.X)
	case *ast.IndexListExpr:
		fun = unparen(ix.X)
	}
	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil, nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	if fn == nil {
		return nil, nil
	}
	return fn, id
}
