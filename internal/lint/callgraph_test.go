package lint_test

import (
	"strings"
	"testing"

	"xmlviews/internal/lint"
)

// loadChain loads the three-package fact-chain fixture: apppkg calls
// only wrappkg, wrappkg wraps storepkg, so every fact observed in
// apppkg crossed two package boundaries.
func loadChain(t *testing.T) *lint.Program {
	t.Helper()
	prog, err := lint.LoadDirs([]lint.DirSpec{
		{Dir: "testdata/chain/storepkg", Path: "fixture/chain/storepkg"},
		{Dir: "testdata/chain/wrappkg", Path: "fixture/chain/wrappkg"},
		{Dir: "testdata/chain/apppkg", Path: "fixture/chain/apppkg"},
	})
	if err != nil {
		t.Fatalf("loading chain fixture: %v", err)
	}
	return prog
}

// hasEdge reports an edge caller -> callee of the given kind.
func hasEdge(g *lint.CallGraph, caller, callee string, kind lint.EdgeKind) bool {
	n := g.Node(caller)
	if n == nil {
		return false
	}
	for _, e := range n.Out {
		if e.Callee == callee && e.Kind == kind {
			return true
		}
	}
	return false
}

func TestCallGraphChainEdges(t *testing.T) {
	g := loadChain(t).CallGraph()

	// Cross-package calls resolve to fully-keyed nodes.
	for _, want := range [][2]string{
		{"fixture/chain/wrappkg.Cached", "fixture/chain/storepkg.Store.Extent"},
		{"fixture/chain/wrappkg.GrowAll", "fixture/chain/storepkg.Grow"},
		{"fixture/chain/wrappkg.CheckStop", "fixture/chain/storepkg.Cancelled"},
		{"fixture/chain/apppkg.MutateSharedBuggy", "fixture/chain/wrappkg.Cached"},
		{"fixture/chain/apppkg.MutateSharedBuggy", "fixture/chain/wrappkg.GrowAll"},
	} {
		if !hasEdge(g, want[0], want[1], lint.EdgeCall) {
			t.Errorf("missing call edge %s -> %s", want[0], want[1])
		}
	}

	// A method value is a reference edge, not a call: the function
	// escapes as data.
	if !hasEdge(g, "fixture/chain/apppkg.ExtentFn", "fixture/chain/storepkg.Store.Extent", lint.EdgeRef) {
		t.Errorf("missing ref edge for the s.Extent method value in ExtentFn")
	}
	if hasEdge(g, "fixture/chain/apppkg.ExtentFn", "fixture/chain/storepkg.Store.Extent", lint.EdgeCall) {
		t.Errorf("the s.Extent method value must not count as a call edge")
	}

	// Incoming edges are navigable from the callee side too.
	grow := g.Node("fixture/chain/storepkg.Grow")
	if grow == nil || len(grow.In) == 0 {
		t.Fatalf("storepkg.Grow has no incoming edges")
	}
	if grow.Pkg == nil || grow.Decl == nil {
		t.Errorf("storepkg.Grow node lost its package or declaration")
	}
}

// TestFactsPropagateAcrossChain: facts seeded in storepkg must survive
// the wrappkg wrappers — the fixpoints that make the analyzers
// interprocedural rather than per-package.
func TestFactsPropagateAcrossChain(t *testing.T) {
	facts := loadChain(t).Facts()

	if !facts.SharedReturn["fixture/chain/storepkg.Store.Extent"] {
		t.Errorf("sharedreturn directive on Store.Extent not picked up")
	}
	if !facts.SharedReturn["fixture/chain/wrappkg.Cached"] {
		t.Errorf("sharedreturn did not propagate through the Cached wrapper")
	}
	if !facts.Mutates["fixture/chain/storepkg.Grow"][0] {
		t.Errorf("Grow's direct parameter mutation not detected")
	}
	if !facts.Mutates["fixture/chain/wrappkg.GrowAll"][0] {
		t.Errorf("mutates fact did not follow the argument through GrowAll")
	}
	if !facts.PollsCtx["fixture/chain/storepkg.Cancelled"] {
		t.Errorf("Cancelled's select-based poll not detected")
	}
	if !facts.PollsCtx["fixture/chain/wrappkg.CheckStop"] {
		t.Errorf("polls-ctx fact did not propagate through CheckStop")
	}
	if !facts.ReadsExtents["fixture/chain/wrappkg.ReadSize"][0] {
		t.Errorf("reads-extents fact did not cross the Cached wrapper into ReadSize")
	}
}

// TestShareMutAcrossChain: the end-to-end payoff — a mutation in
// apppkg is reported even though both the shared source and the
// mutator are two packages away.
func TestShareMutAcrossChain(t *testing.T) {
	prog := loadChain(t)
	diags := lint.Run(prog, []*lint.Analyzer{lint.ShareMut}, lint.RunOptions{Force: true})
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 diagnostic, got %d: %v", len(diags), diags)
	}
	d := diags[0]
	if !strings.HasSuffix(d.Pos.Filename, "apppkg.go") {
		t.Errorf("diagnostic in %s, want apppkg.go", d.Pos.Filename)
	}
	if !strings.Contains(d.Message, "wrappkg.GrowAll") || !strings.Contains(d.Message, "shared via") {
		t.Errorf("unexpected message: %s", d.Message)
	}
}

// TestCallGraphFacadeResolution: the public xmlviews facade re-exports
// the internal packages; its one-line wrappers must resolve to real
// cross-package edges, and the internal facts must be visible through
// the same program.
func TestCallGraphFacadeResolution(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the facade and its dependencies from source")
	}
	prog, err := lint.LoadPackages([]string{"xmlviews", "xmlviews/internal/view"})
	if err != nil {
		t.Fatalf("loading facade: %v", err)
	}
	g := prog.CallGraph()
	if !hasEdge(g, "xmlviews.NewStore", "xmlviews/internal/view.NewStore", lint.EdgeCall) {
		t.Errorf("facade re-export xmlviews.NewStore -> view.NewStore not resolved")
	}
	if !prog.Facts().SharedReturn["xmlviews/internal/view.Store.Relation"] {
		t.Errorf("view.Store.Relation's sharedreturn annotation not visible through the facade program")
	}
}
