package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// CtxPoll pins the PR 4 cancellation guarantee: every tuple/row loop in
// the rewrite and execution engines polls cancellation, so a client that
// disconnects stops burning CPU within a bounded number of rows
// (cancelCheckEvery in internal/algebra).
//
// A "tuple loop" is a range over a slice or array whose element type's
// name matches tuple|row (nrel.Tuple, joinedRow, ...). A loop is polled
// when its body — or the body of an enclosing loop in the same function,
// which bounds the unpolled work by one inner pass — contains one of:
//
//   - a call to a recognized poll helper: cancelled, done, shouldStop,
//     stop, poll (the project's established names; docs/lint.md says to
//     extend the list rather than invent a sixth synonym);
//   - a Done() or Err() call on a context.Context;
//   - a select statement (polling a done channel).
//
// Loops that must not poll — the incremental-maintenance engine applies
// updates under the store lock where a half-applied abort would be worse
// than a slow one — carry //xvlint:nopoll on the loop or on the enclosing
// function's doc comment, with the reason alongside.
var CtxPoll = &Analyzer{
	Name:    "ctxpoll",
	Summary: "tuple/row loops in the engines must poll cancellation",
	Doc: "flags tuple/row loops in the rewrite/execution/maintenance engines " +
		"(algebra, core, maintain) that lack a cancellation poll",
	Roots: []string{
		"xmlviews/internal/algebra",
		"xmlviews/internal/core",
		"xmlviews/internal/maintain",
	},
	Run: runCtxPoll,
}

var tupleTypeRE = regexp.MustCompile(`(?i)tuple|row`)

// pollHelperNames are the project's sanctioned cancellation-poll helpers.
var pollHelperNames = map[string]bool{
	"cancelled":  true,
	"done":       true,
	"shouldStop": true,
	"stop":       true,
	"poll":       true,
}

func runCtxPoll(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := funcDirective(pass.Pkg.Fset, fd, "nopoll"); ok {
				continue
			}
			ctxPollFunc(pass, fd)
		}
	}
}

// ctxPollFunc walks the function body keeping a stack of enclosing loops;
// function literals reset the stack (a closure's loop does not inherit the
// polling of the loop that created it — it may run on another goroutine).
func ctxPollFunc(pass *Pass, fd *ast.FuncDecl) {
	var walk func(n ast.Node, enclosingPolled bool)
	walk = func(n ast.Node, enclosingPolled bool) {
		switch s := n.(type) {
		case *ast.FuncLit:
			walkChildren(s.Body, func(c ast.Node) { walk(c, false) })
			return
		case *ast.RangeStmt:
			polled := enclosingPolled || bodyPolled(pass, s.Body)
			if !polled && isTupleLoop(pass.Pkg.Info, s) && !pass.Pkg.stmtAnnotated(s.Pos(), "nopoll") {
				pass.Reportf(s.Pos(),
					"tuple loop without a cancellation poll: check a ctx/stop probe every few thousand rows "+
						"(see cancelCheckEvery in internal/algebra) or annotate //xvlint:nopoll with the reason")
			}
			walkChildren(s.Body, func(c ast.Node) { walk(c, polled) })
			return
		case *ast.ForStmt:
			polled := enclosingPolled || bodyPolled(pass, s.Body)
			walkChildren(s.Body, func(c ast.Node) { walk(c, polled) })
			return
		}
		walkChildren(n, func(c ast.Node) { walk(c, enclosingPolled) })
	}
	walkChildren(fd.Body, func(c ast.Node) { walk(c, false) })
}

// walkChildren visits n's immediate children.
func walkChildren(n ast.Node, visit func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			visit(c)
		}
		return false
	})
}

// isTupleLoop reports whether the range statement iterates a slice/array
// of tuples or rows.
func isTupleLoop(info *types.Info, rs *ast.RangeStmt) bool {
	tv, ok := info.Types[rs.X]
	if !ok {
		return false
	}
	var elem types.Type
	switch u := tv.Type.Underlying().(type) {
	case *types.Slice:
		elem = u.Elem()
	case *types.Array:
		elem = u.Elem()
	default:
		return false
	}
	named := namedType(elem)
	return named != nil && tupleTypeRE.MatchString(named.Obj().Name())
}

// bodyPolled reports whether the block polls cancellation directly or
// calls (outside function literals) a function the polls-ctx fact says
// reaches a poll — the v2 interprocedural upgrade, so extracting a
// loop's poll into a helper keeps the loop legal.
func bodyPolled(pass *Pass, body *ast.BlockStmt) bool {
	if containsPoll(pass.Pkg.Info, body) {
		return true
	}
	facts := pass.Prog.Facts()
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if fn, _ := resolveCall(pass.Pkg.Info, call); fn != nil && facts.PollsCtx[funcKey(fn)] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// containsPoll reports whether the block contains a cancellation poll,
// at any nesting depth but not across function-literal boundaries.
func containsPoll(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			found = true
			return false
		case *ast.CallExpr:
			if isPollCall(info, s) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isPollCall recognizes calls to the sanctioned poll helpers and to
// Done/Err on a context.Context.
func isPollCall(info *types.Info, call *ast.CallExpr) bool {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return pollHelperNames[fun.Name]
	case *ast.SelectorExpr:
		if pollHelperNames[fun.Sel.Name] {
			return true
		}
		if fun.Sel.Name == "Done" || fun.Sel.Name == "Err" {
			if tv, ok := info.Types[fun.X]; ok && isContextType(tv.Type) {
				return true
			}
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}
