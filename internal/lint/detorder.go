package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetOrder flags map-range iteration in determinism-critical packages.
//
// Since PR 4, cost accumulations iterate summary ids in sorted order so
// that ChooseBest's cost-equality tie-break sees byte-identical floats
// across runs and restarts; rendered summaries, plan text and HTTP
// response bodies carry the same guarantee. The executor (algebra) is in
// scope because a query result's column list and row order are rendered
// verbatim into the /query response. Go randomizes map iteration order,
// so a bare `for k := range m` in these packages is presumed to leak that
// randomness into an output unless the loop is provably
// order-independent:
//
//   - a reduction writing only m2[k] for the range key k (every iteration
//     touches a distinct key, so the iteration order cannot matter):
//     assignments, compound assignments, ++/--, delete(m2, k);
//   - an existence scan that only sets a boolean/constant and breaks or
//     returns a constant;
//   - a key-collect loop (`s = append(s, k)`) whose slice is subsequently
//     passed to a sort.* call in the same function — the canonical
//     sorted-iteration idiom.
//
// Anything else needs an explicit //xvlint:orderindependent annotation on
// the loop (same line or the line above), so every suppression is a
// reviewed decision with a written justification.
var DetOrder = &Analyzer{
	Name:    "detorder",
	Summary: "map-range order must not reach rendered output or cost accumulation",
	Doc: "flags map-range loops in determinism-critical packages (cost, core, summary, serve, obs) " +
		"whose iteration order could reach plan text, cost estimates, rendered summaries, HTTP bodies " +
		"or the Prometheus exposition",
	Roots: []string{
		"xmlviews/internal/algebra",
		"xmlviews/internal/cost",
		"xmlviews/internal/core",
		"xmlviews/internal/obs",
		"xmlviews/internal/summary",
		"xmlviews/internal/serve",
	},
	Run: runDetOrder,
}

func runDetOrder(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				detOrderFunc(pass, fd)
			}
		}
	}
}

func detOrderFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if pass.Pkg.stmtAnnotated(rs.Pos(), "orderindependent") {
			return true
		}
		if orderIndependentLoop(info, rs, fd) {
			return true
		}
		pass.Reportf(rs.Pos(),
			"map iteration order is random and this loop is not provably order-independent; "+
				"iterate sorted keys (see slotDist.ids in internal/cost) or annotate //xvlint:orderindependent with a justification")
		return true
	})
}

// orderIndependentLoop recognizes the loop shapes whose result cannot
// depend on iteration order.
func orderIndependentLoop(info *types.Info, rs *ast.RangeStmt, fd *ast.FuncDecl) bool {
	keyObj := rangeVarObject(info, rs.Key)
	if collectThenSort(info, rs, fd, keyObj) {
		return true
	}
	for _, stmt := range rs.Body.List {
		if !orderIndependentStmt(info, stmt, keyObj) {
			return false
		}
	}
	return len(rs.Body.List) > 0
}

// rangeVarObject resolves a range variable to its object (nil for `_` or
// absent variables).
func rangeVarObject(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return info.ObjectOf(id)
}

// orderIndependentStmt reports whether one body statement is of a shape
// that commutes across iterations with distinct keys.
func orderIndependentStmt(info *types.Info, stmt ast.Stmt, keyObj types.Object) bool {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		lhs := unparen(s.Lhs[0])
		// m2[k] = ..., m2[k] += ... — per-key writes: distinct iterations
		// write distinct keys, so order cannot matter. The written map may
		// be the ranged one or another; what matters is that the index is
		// exactly the range key.
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			if s.Tok == token.DEFINE {
				return false
			}
			return indexIsKey(info, ix, keyObj) && rhsSafe(info, s.Rhs[0], ix)
		}
		// flag = true / n = 0 — idempotent constant stores (the existence
		// scan shape); any iteration order yields the same final value.
		if id, ok := lhs.(*ast.Ident); ok && s.Tok == token.ASSIGN {
			tv, ok := info.Types[s.Rhs[0]]
			return ok && tv.Value != nil && info.ObjectOf(id) != nil
		}
		return false
	case *ast.IncDecStmt:
		// m2[k]++ — a commutative integer reduction per distinct key.
		ix, ok := unparen(s.X).(*ast.IndexExpr)
		return ok && indexIsKey(info, ix, keyObj)
	case *ast.ExprStmt:
		// delete(m2, k) — each iteration removes a distinct key.
		call, ok := s.X.(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return false
		}
		fn, ok := unparen(call.Fun).(*ast.Ident)
		if !ok || fn.Name != "delete" {
			return false
		}
		if b, ok := info.Uses[fn].(*types.Builtin); !ok || b.Name() != "delete" {
			return false
		}
		arg, ok := unparen(call.Args[1]).(*ast.Ident)
		return ok && keyObj != nil && info.ObjectOf(arg) == keyObj
	case *ast.BranchStmt:
		return s.Tok == token.BREAK || s.Tok == token.CONTINUE
	case *ast.ReturnStmt:
		// return true / return nil, 0 — existence scans short-circuit with
		// constants only; returning an iteration-dependent value would leak
		// the order.
		for _, r := range s.Results {
			tv, ok := info.Types[r]
			if !ok || (tv.Value == nil && !tv.IsNil()) {
				return false
			}
		}
		return true
	case *ast.IfStmt:
		// Guards around the shapes above: the condition selects which keys
		// participate, which is itself order-free over distinct keys.
		if s.Init != nil && !orderIndependentStmt(info, s.Init, keyObj) {
			return false
		}
		for _, st := range s.Body.List {
			if !orderIndependentStmt(info, st, keyObj) {
				return false
			}
		}
		switch el := s.Else.(type) {
		case nil:
			return true
		case *ast.BlockStmt:
			for _, st := range el.List {
				if !orderIndependentStmt(info, st, keyObj) {
					return false
				}
			}
			return true
		case *ast.IfStmt:
			return orderIndependentStmt(info, el, keyObj)
		}
		return false
	case *ast.RangeStmt, *ast.ForStmt:
		// A nested loop whose own body is order-independent with respect to
		// the outer key (the nested existence scan in joinFeasible: range two
		// slot sets, return true on the first ancestor pair). The inner
		// loop's key is NOT granted per-key write rights — only the outer
		// key's distinctness is known here — so inner writes must stand on
		// constants, breaks and returns alone.
		var body *ast.BlockStmt
		if r, ok := s.(*ast.RangeStmt); ok {
			body = r.Body
		} else {
			body = s.(*ast.ForStmt).Body
		}
		for _, st := range body.List {
			if !orderIndependentStmt(info, st, nil) {
				return false
			}
		}
		return true
	case *ast.EmptyStmt:
		return true
	}
	return false
}

// indexIsKey reports whether ix indexes by exactly the loop's key
// variable.
func indexIsKey(info *types.Info, ix *ast.IndexExpr, keyObj types.Object) bool {
	if keyObj == nil {
		return false
	}
	id, ok := unparen(ix.Index).(*ast.Ident)
	return ok && info.ObjectOf(id) == keyObj
}

// rhsSafe verifies the per-key write's right-hand side cannot observe
// another iteration's effect: it must not read the written map under a key
// other than the range key (reading lhs itself — `m2[k] += x` desugared —
// is fine; reading unrelated state is fine, the loop writes nothing else).
func rhsSafe(info *types.Info, rhs ast.Expr, lhs *ast.IndexExpr) bool {
	safe := true
	ast.Inspect(rhs, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		if sameObject(info, ix.X, lhs.X) && !sameObject(info, ix.Index, lhs.Index) {
			safe = false
		}
		return safe
	})
	return safe
}

// collectThenSort recognizes `for k := range m { s = append(s, k) }`
// followed by sort.*(… s …) later in the same function: collecting keys
// (or values) for sorted iteration is THE sanctioned idiom.
func collectThenSort(info *types.Info, rs *ast.RangeStmt, fd *ast.FuncDecl, keyObj types.Object) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	asg, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 || (asg.Tok != token.ASSIGN && asg.Tok != token.DEFINE) {
		return false
	}
	call, ok := unparen(asg.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	if fn, ok := unparen(call.Fun).(*ast.Ident); !ok || fn.Name != "append" {
		return false
	} else if b, ok := info.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	dst, ok := unparen(asg.Lhs[0]).(*ast.Ident)
	if !ok {
		return false
	}
	dstObj := info.ObjectOf(dst)
	if dstObj == nil {
		return false
	}
	// The appended element must involve the key or value variable (we are
	// collecting the map's contents, not something else).
	valObj := rangeVarObject(info, rs.Value)
	elem := call.Args[len(call.Args)-1]
	if !usesObject(info, elem, keyObj) && !usesObject(info, elem, valObj) {
		return false
	}
	// A later sort call in the same function must mention the slice.
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		c, ok := n.(*ast.CallExpr)
		if !ok || c.Pos() < rs.End() {
			return true
		}
		sel, ok := unparen(c.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		if pn, ok := info.Uses[pkgID].(*types.PkgName); !ok || pn.Imported().Path() != "sort" {
			return true
		}
		for _, a := range c.Args {
			if usesObject(info, a, dstObj) {
				sorted = true
			}
		}
		return !sorted
	})
	return sorted
}
