package lint

import (
	"go/ast"
	"go/types"
)

// ErrClose flags discarded error returns from Close, Sync and WriteFile
// on the persist path (internal/store, internal/serve).
//
// The store's durability protocol writes data segments first and the
// catalog last, so a crash never leaves the manifest referencing
// half-written files. That only holds if write-path errors actually
// surface: a `f.Close()` whose error vanishes can acknowledge a batch
// whose delta segment never reached the disk. The analyzer flags
//
//   - expression statements:  f.Close()
//   - defers:                 defer f.Close()
//   - goroutines:             go f.Close()
//
// calling a function or method named Close, Sync or WriteFile whose last
// result is an error. An explicit blank assignment (`_ = f.Close()`) is
// not flagged — it is visible in review — and a site can carry
// //xvlint:errok with a justification (read-path close where the data has
// already been validated, error path where the primary error wins).
var ErrClose = &Analyzer{
	Name:    "errclose",
	Summary: "persist-path Close/Sync/WriteFile errors must not be discarded",
	Doc: "flags discarded errors from Close/Sync/WriteFile in the persistence layers " +
		"(store, serve), where a dropped error can break the write-catalog-last protocol",
	Roots: []string{
		"xmlviews/internal/store",
		"xmlviews/internal/serve",
	},
	Run: runErrClose,
}

// errCloseNames are the flagged function/method names.
var errCloseNames = map[string]bool{
	"Close":     true,
	"Sync":      true,
	"WriteFile": true,
}

func runErrClose(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			var kind string
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
				kind = "discarded"
			case *ast.DeferStmt:
				call = s.Call
				kind = "discarded by defer"
			case *ast.GoStmt:
				call = s.Call
				kind = "discarded by go"
			default:
				return true
			}
			if call == nil {
				return true
			}
			name, ok := errCloseCallee(pass.Pkg.Info, call)
			if !ok {
				return true
			}
			if pass.Pkg.stmtAnnotated(n.Pos(), "errok") {
				return true
			}
			pass.Reportf(call.Pos(),
				"error from %s %s on the persist path: handle it (stage-then-commit, see writeFileAtomic), "+
					"assign it to _ if the primary error wins, or annotate //xvlint:errok with the reason",
				name, kind)
			return true
		})
	}
}

// errCloseCallee reports whether the call invokes a Close/Sync/WriteFile
// returning an error.
func errCloseCallee(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || !errCloseNames[fn.Name()] {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return "", false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	n := namedType(last)
	if n == nil || n.Obj().Name() != "error" || n.Obj().Pkg() != nil {
		return "", false
	}
	return fn.Name(), true
}
