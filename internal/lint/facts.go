package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Facts is phase 1's per-function summary layer, modeled on go/analysis
// facts but computed eagerly over the whole program (the module is small
// enough that a fixpoint over every function costs less than the type
// check that precedes it). Phase 2 analyzers consume facts across
// package boundaries: sharemut asks "does this callee mutate its
// argument", snapdiscipline asks "does this callee read extents from the
// store I hand it", ctxpoll asks "does this helper poll cancellation".
//
// All facts are keyed by funcKey (pkgpath.Func / pkgpath.Recv.Method).
// Parameter indices count declared parameters left to right from 0; the
// receiver is index -1.
type Facts struct {
	// SharedReturn marks functions whose return value aliases storage
	// shared beyond the call (seeded by //xvlint:sharedreturn doc
	// directives, propagated through trivial wrappers that `return` a
	// shared-returning call — the facade's re-exports).
	SharedReturn map[string]bool
	// Mutates records which parameters a function writes through:
	// element/field/deref assignment, copy into, or passing the parameter
	// onward to a callee that mutates it.
	Mutates map[string]map[int]bool
	// ReadsExtents records parameters through which the function
	// (transitively) calls a SharedReturn accessor, or which escape into
	// storage the analysis cannot follow. snapdiscipline uses it to stop
	// the live store from being handed to extent readers.
	ReadsExtents map[string]map[int]bool
	// HoldsLock lists the mutex names a function requires via
	// //xvlint:requires or visibly acquires in its body.
	HoldsLock map[string][]string
	// PollsCtx marks functions whose body (or a callee's, outside
	// function literals) reaches a cancellation poll.
	PollsCtx map[string]bool
}

// Facts returns the program's fact set, computing it on first use.
func (p *Program) Facts() *Facts {
	p.factsOnce.Do(func() { p.facts = computeFacts(p) })
	return p.facts
}

// argFlow is one "caller parameter flows into callee parameter" record,
// the substrate both propagation fixpoints run on.
type argFlow struct {
	caller    string
	callerIdx int
	callee    string
	calleeIdx int // -1 = callee receiver
}

func computeFacts(prog *Program) *Facts {
	facts := &Facts{
		SharedReturn: map[string]bool{},
		Mutates:      map[string]map[int]bool{},
		ReadsExtents: map[string]map[int]bool{},
		HoldsLock:    map[string][]string{},
		PollsCtx:     map[string]bool{},
	}
	g := prog.CallGraph()

	returnedCallees := map[string][]string{}
	var flows []argFlow
	declared := map[string]bool{}
	for key, node := range g.Nodes {
		if node.Decl != nil {
			declared[key] = true
		}
	}

	for _, key := range g.Keys() {
		node := g.Nodes[key]
		if node.Decl == nil {
			continue
		}
		pkg, fd := node.Pkg, node.Decl

		if _, ok := funcDirective(pkg.Fset, fd, "sharedreturn"); ok {
			facts.SharedReturn[key] = true
		}
		if d, ok := funcDirective(pkg.Fset, fd, "requires"); ok && d.Arg != "" {
			facts.HoldsLock[key] = append(facts.HoldsLock[key], d.Arg)
		}
		if fd.Body == nil {
			continue
		}
		for mu := range lockAcquisitions(fd) {
			facts.HoldsLock[key] = append(facts.HoldsLock[key], mu)
		}
		sort.Strings(facts.HoldsLock[key])
		if containsPoll(pkg.Info, fd.Body) {
			facts.PollsCtx[key] = true
		}
		returnedCallees[key] = directReturnedCallees(pkg.Info, fd)

		params := paramObjects(pkg.Info, fd)
		if m := directMutations(pkg.Info, fd, params); len(m) > 0 {
			facts.Mutates[key] = m
		}
		flows = append(flows, paramFlows(pkg.Info, key, fd, params)...)
	}

	// SharedReturn fixpoint: a wrapper that returns a shared-returning
	// call shares the same storage (xmlviews.NewStore -> view.NewStore
	// style re-exports keep their callee's fact).
	for changed := true; changed; {
		changed = false
		for key, callees := range returnedCallees {
			if facts.SharedReturn[key] {
				continue
			}
			for _, callee := range callees {
				if facts.SharedReturn[callee] {
					facts.SharedReturn[key] = true
					changed = true
					break
				}
			}
		}
	}

	// Mutates fixpoint over argument flows.
	for changed := true; changed; {
		changed = false
		for _, fl := range flows {
			if facts.Mutates[fl.callee][fl.calleeIdx] && !facts.Mutates[fl.caller][fl.callerIdx] {
				if facts.Mutates[fl.caller] == nil {
					facts.Mutates[fl.caller] = map[int]bool{}
				}
				facts.Mutates[fl.caller][fl.callerIdx] = true
				changed = true
			}
		}
	}

	// ReadsExtents: direct uses first (needs the final SharedReturn set),
	// then the same flow fixpoint.
	for _, key := range g.Keys() {
		node := g.Nodes[key]
		if node.Decl == nil || node.Decl.Body == nil {
			continue
		}
		params := paramObjects(node.Pkg.Info, node.Decl)
		if r := directExtentReads(node.Pkg.Info, node.Decl, params, facts.SharedReturn, declared); len(r) > 0 {
			facts.ReadsExtents[key] = r
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fl := range flows {
			if fl.calleeIdx < 0 {
				continue
			}
			if facts.ReadsExtents[fl.callee][fl.calleeIdx] && !facts.ReadsExtents[fl.caller][fl.callerIdx] {
				if facts.ReadsExtents[fl.caller] == nil {
					facts.ReadsExtents[fl.caller] = map[int]bool{}
				}
				facts.ReadsExtents[fl.caller][fl.callerIdx] = true
				changed = true
			}
		}
	}

	// PollsCtx fixpoint: a call (outside function literals, which may run
	// on another goroutine) to a polling function polls.
	for changed := true; changed; {
		changed = false
		for _, key := range g.Keys() {
			if facts.PollsCtx[key] {
				continue
			}
			for _, e := range g.Nodes[key].Out {
				if e.Kind == EdgeCall && !e.InFuncLit && facts.PollsCtx[e.Callee] {
					facts.PollsCtx[key] = true
					changed = true
					break
				}
			}
		}
	}
	return facts
}

// paramObjects maps the function's receiver (-1) and parameters (0..n-1)
// to their declared objects. Blank and unnamed parameters are skipped —
// nothing can flow through a name that does not exist.
func paramObjects(info *types.Info, fd *ast.FuncDecl) map[types.Object]int {
	out := map[types.Object]int{}
	add := func(names []*ast.Ident, idx int) {
		for _, name := range names {
			if name.Name == "_" {
				continue
			}
			if obj := info.Defs[name]; obj != nil {
				out[obj] = idx
			}
		}
	}
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		add(fd.Recv.List[0].Names, -1)
	}
	if fd.Type.Params != nil {
		idx := 0
		for _, field := range fd.Type.Params.List {
			if len(field.Names) == 0 {
				idx++
				continue
			}
			for _, name := range field.Names {
				add([]*ast.Ident{name}, idx)
				idx++
			}
		}
	}
	return out
}

// pathBase unwraps a selector/index/slice/deref chain to its base
// identifier (rel.Rows[i] -> rel), or nil for anything else.
func pathBase(e ast.Expr) *ast.Ident {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// directMutations finds the parameters this body writes through: an
// assignment or ++/-- whose left side is a selector/index/deref path
// rooted at the parameter (a bare `p = x` rebinds the local copy and is
// not a mutation), or a copy() with the parameter's data as destination.
func directMutations(info *types.Info, fd *ast.FuncDecl, params map[types.Object]int) map[int]bool {
	out := map[int]bool{}
	through := func(e ast.Expr) {
		if base := pathBase(e); base != nil && unparen(e) != ast.Expr(base) {
			if idx, ok := params[info.ObjectOf(base)]; ok {
				out[idx] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				through(lhs)
			}
		case *ast.IncDecStmt:
			through(s.X)
		case *ast.CallExpr:
			if id, ok := unparen(s.Fun).(*ast.Ident); ok && id.Name == "copy" && len(s.Args) == 2 {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					if base := pathBase(s.Args[0]); base != nil {
						if idx, ok := params[info.ObjectOf(base)]; ok {
							out[idx] = true
						}
					}
				}
			}
		}
		return true
	})
	return out
}

// paramFlows records every call argument (and method receiver) that is a
// path rooted at one of the caller's parameters, so the Mutates and
// ReadsExtents fixpoints can walk caller->callee. Taking the address of
// the parameter flows the parameter itself.
func paramFlows(info *types.Info, callerKey string, fd *ast.FuncDecl, params map[types.Object]int) []argFlow {
	var flows []argFlow
	flowBase := func(e ast.Expr) (int, bool) {
		e = unparen(e)
		if ue, ok := e.(*ast.UnaryExpr); ok && ue.Op == token.AND {
			e = unparen(ue.X)
		}
		base := pathBase(e)
		if base == nil {
			return 0, false
		}
		idx, ok := params[info.ObjectOf(base)]
		return idx, ok
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, _ := resolveCall(info, call)
		if fn == nil {
			return true
		}
		calleeKey := funcKey(fn)
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				if i, ok := flowBase(sel.X); ok {
					flows = append(flows, argFlow{callerKey, i, calleeKey, -1})
				}
			}
		}
		for j, arg := range call.Args {
			if i, ok := flowBase(arg); ok {
				flows = append(flows, argFlow{callerKey, i, calleeKey, j})
			}
		}
		return true
	})
	return flows
}

// directReturnedCallees lists functions whose result this function
// returns directly (`return f(...)` with a single result), outside any
// function literal — the shape of the facade's re-exports.
func directReturnedCallees(info *types.Info, fd *ast.FuncDecl) []string {
	var out []string
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		for _, anc := range stack[:len(stack)-1] {
			if _, ok := anc.(*ast.FuncLit); ok {
				return true
			}
		}
		if call, ok := unparen(ret.Results[0]).(*ast.CallExpr); ok {
			if fn, _ := resolveCall(info, call); fn != nil {
				out = append(out, funcKey(fn))
			}
		}
		return true
	})
	return out
}

// directExtentReads classifies every use of each parameter. A parameter
// "reads extents" when a SharedReturn accessor is called on it, or when
// it escapes into storage the analysis cannot follow (assigned away,
// stored in a composite literal, returned, sent on a channel, or passed
// to a function without a declaration in the program). Flow into
// declared callees is handled by the fixpoint, not here.
func directExtentReads(info *types.Info, fd *ast.FuncDecl, params map[types.Object]int, shared, declared map[string]bool) map[int]bool {
	out := map[int]bool{}
	var stack []ast.Node
	// parentOf returns the nearest non-paren ancestor above the node at
	// the top of the stack.
	parentOf := func() ast.Node {
		for i := len(stack) - 2; i >= 0; i-- {
			if _, ok := stack[i].(*ast.ParenExpr); ok {
				continue
			}
			return stack[i]
		}
		return nil
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		idx, isParam := params[info.ObjectOf(id)]
		if !isParam {
			return true
		}
		switch p := parentOf().(type) {
		case *ast.SelectorExpr:
			// p.Method(...) or p.Field: a shared-returning accessor call
			// (or its method value — the receiver escapes into the bound
			// value) reads extents; everything else through the selector
			// is the callee's business (method) or a plain field read.
			if fn, _ := info.Uses[p.Sel].(*types.Func); fn != nil && shared[funcKey(fn)] {
				out[idx] = true
			}
		case *ast.CallExpr:
			// A call argument (the callee position is a SelectorExpr or
			// Ident parent, handled above/below). Declared callees are
			// covered by the flow fixpoint; undeclared or unresolvable
			// callees swallow the value — treat as an extent read unless
			// it is a harmless builtin.
			if unparen(p.Fun) == ast.Expr(id) {
				break // calling the parameter itself
			}
			fn, _ := resolveCall(info, p)
			if fn == nil {
				if hid, ok := unparen(p.Fun).(*ast.Ident); ok {
					if _, isB := info.Uses[hid].(*types.Builtin); isB && (hid.Name == "len" || hid.Name == "cap") {
						break
					}
				}
				out[idx] = true
			} else if !declared[funcKey(fn)] {
				// Standard-library or otherwise undeclared callee: the
				// flow fixpoint has no facts to consult, so assume the
				// worst of the argument.
				out[idx] = true
			}
		case *ast.BinaryExpr, *ast.SwitchStmt, *ast.CaseClause, *ast.RangeStmt, *ast.IfStmt:
			// Comparisons and iteration read, they do not alias.
		case *ast.AssignStmt:
			onLHS := false
			for _, lhs := range p.Lhs {
				if unparen(lhs) == ast.Expr(id) {
					onLHS = true
				}
			}
			if !onLHS {
				out[idx] = true // q := p aliases the parameter away
			}
		default:
			out[idx] = true
		}
		return true
	})
	// The flow fixpoint needs arg-position uses resolved against the
	// callee's facts; undeclared callee args were already marked above.
	return out
}
