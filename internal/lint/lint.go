// Package lint implements xvlint, the project's invariant checker: four
// static analyzers that machine-check whole-codebase rules which earlier
// PRs established by convention and spot tests.
//
//   - detorder: map-range iteration in determinism-critical packages must
//     not reach rendered output or cost accumulation (plan text, cost
//     estimates, summary text, HTTP bodies must be byte-identical across
//     runs; Go randomizes map iteration order).
//   - lockcheck: functions annotated //xvlint:requires(<mu>) (catalog
//     mutation, compaction, epoch advance) may only be reached from callers
//     that hold the lock.
//   - ctxpoll: tuple/row loops in the rewrite/execution/maintenance engines
//     must poll cancellation, so an abandoned request stops burning CPU.
//   - errclose: error returns from Close/Sync/WriteFile on the persist path
//     must not be discarded; a dropped error can silently violate the
//     write-catalog-last durability protocol.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, diagnostics, testdata fixtures with "// want"
// expectations) but is built on the standard library alone — go/parser,
// go/types and the source importer — so the module keeps zero external
// dependencies. See docs/lint.md for the invariant catalogue and the
// annotation reference.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// Analyzer is one named check. Run reports diagnostics for a single
// package; analyzers that need program-wide context (lockcheck's
// annotation registry spans packages) read Pass.Prog.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and test fixtures.
	Name string
	// Summary is the one-line description shown by `xvlint help` and as
	// the rule description in SARIF output.
	Summary string
	// Doc is the one-paragraph description printed by `xvlint help`.
	Doc string
	// Roots restricts where diagnostics are REPORTED: a package is checked
	// only when its import path equals a root or is the root's "/..."
	// subtree. Empty means every package (fixture tests run analyzers
	// directly, bypassing Roots via the driver's Force option).
	Roots []string
	// Run reports this analyzer's diagnostics for pass's package.
	Run func(pass *Pass)
}

// All returns the full xvlint suite in the order diagnostics are grouped:
// the four intraprocedural v1 analyzers, then the four interprocedural v2
// analyzers built on the call-graph/facts layer.
func All() []*Analyzer {
	return []*Analyzer{
		DetOrder, LockCheck, CtxPoll, ErrClose,
		ShareMut, SnapDiscipline, MetricCheck, VerGate,
	}
}

// AppliesTo reports whether the analyzer checks the given import path.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	if len(a.Roots) == 0 {
		return true
	}
	for _, r := range a.Roots {
		if pkgPath == r || strings.HasPrefix(pkgPath, r+"/") {
			return true
		}
	}
	return false
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// directives maps filename -> line -> directives on that line.
	directives map[string]map[int][]Directive
}

// Program is everything one xvlint invocation loaded. Analyzers that check
// cross-package properties (lockcheck) consult every package here, not
// just the one under analysis.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package

	// Phase-1 interprocedural layers, built lazily and shared by every
	// analyzer pass over this program (see callgraph.go and facts.go).
	cgOnce    sync.Once
	cg        *CallGraph
	factsOnce sync.Once
	facts     *Facts
}

// Pass carries one analyzer run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Prog     *Program

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportAt records a diagnostic at an explicit file position. vergate
// uses it to point findings into format.manifest, which has no AST.
func (p *Pass) ReportAt(pos token.Position, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunOptions tunes Run.
type RunOptions struct {
	// Force runs every analyzer on every package, ignoring Roots (the
	// fixture tests use it; the CLI keeps analyzers scoped).
	Force bool
}

// Run applies the analyzers to every package of the program (honoring
// each analyzer's Roots unless opts.Force) and returns the diagnostics
// sorted by file position.
func Run(prog *Program, analyzers []*Analyzer, opts RunOptions) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		for _, a := range analyzers {
			if !opts.Force && !a.AppliesTo(pkg.Path) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, Prog: prog, diags: &diags}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// Directive is one parsed //xvlint:<name>(<arg>) annotation. Every
// suppression in the codebase is one of these, so every exception to an
// invariant is a greppable, reviewed decision.
type Directive struct {
	// Name is the directive keyword: orderindependent, requires, lockheld,
	// nopoll, errok.
	Name string
	// Arg is the parenthesized argument (the mutex name for requires and
	// lockheld), or "".
	Arg string
}

// The directive may be followed by free text — the justification lives on
// the same line as the suppression it explains.
var directiveRE = regexp.MustCompile(`^xvlint:([a-z]+)(?:\(([^)]*)\))?(?:\s|$)`)

// parseDirectives indexes every //xvlint: comment of the file by line.
func parseDirectives(fset *token.FileSet, f *ast.File) map[int][]Directive {
	out := map[int][]Directive{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			m := directiveRE.FindStringSubmatch(text)
			if m == nil {
				continue
			}
			line := fset.Position(c.Pos()).Line
			out[line] = append(out[line], Directive{Name: m[1], Arg: strings.TrimSpace(m[2])})
		}
	}
	return out
}

// directivesAt returns the directives attached to a statement-level node:
// those on the node's first line or on the line immediately above it.
func (pkg *Package) directivesAt(pos token.Pos) []Directive {
	p := pkg.Fset.Position(pos)
	byLine := pkg.directives[p.Filename]
	if byLine == nil {
		return nil
	}
	out := append([]Directive(nil), byLine[p.Line-1]...)
	return append(out, byLine[p.Line]...)
}

// stmtAnnotated reports whether the statement starting at pos carries the
// named directive (same line or the line above).
func (pkg *Package) stmtAnnotated(pos token.Pos, name string) bool {
	for _, d := range pkg.directivesAt(pos) {
		if d.Name == name {
			return true
		}
	}
	return false
}

// funcDirective returns the first directive with the given name in the
// function's doc comment, if any.
func funcDirective(fset *token.FileSet, fd *ast.FuncDecl, name string) (Directive, bool) {
	if fd.Doc == nil {
		return Directive{}, false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if m := directiveRE.FindStringSubmatch(text); m != nil && m[1] == name {
			return Directive{Name: m[1], Arg: strings.TrimSpace(m[2])}, true
		}
	}
	return Directive{}, false
}

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (direct calls and method calls; nil for indirect calls through
// variables, built-ins and type conversions).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// funcKey names a function the way lockcheck's annotation registry keys
// it: pkgpath.Func or pkgpath.Recv.Method (pointer receivers stripped).
func funcKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	key := fn.Pkg().Path() + "."
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			key += n.Obj().Name() + "."
		}
	}
	return key + fn.Name()
}

// declKey is funcKey for a declaration in the given package.
func declKey(pkgPath string, fd *ast.FuncDecl) string {
	key := pkgPath + "."
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		// Strip type parameters (Recv[T]) if present.
		if idx, ok := t.(*ast.IndexExpr); ok {
			t = idx.X
		}
		if id, ok := t.(*ast.Ident); ok {
			key += id.Name + "."
		}
	}
	return key + fd.Name.Name
}

// namedType unwraps pointers and returns the expression type's named form,
// or nil.
func namedType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// sameObject reports whether two expressions statically resolve to the
// same variable chain: identical identifiers or selector paths (a.b.c).
// Used to compare "the map being ranged" with "the map being written".
func sameObject(info *types.Info, a, b ast.Expr) bool {
	a, b = unparen(a), unparen(b)
	switch ae := a.(type) {
	case *ast.Ident:
		be, ok := b.(*ast.Ident)
		return ok && info.ObjectOf(ae) != nil && info.ObjectOf(ae) == info.ObjectOf(be)
	case *ast.SelectorExpr:
		be, ok := b.(*ast.SelectorExpr)
		return ok && ae.Sel.Name == be.Sel.Name && sameObject(info, ae.X, be.X)
	case *ast.IndexExpr:
		be, ok := b.(*ast.IndexExpr)
		return ok && sameObject(info, ae.X, be.X) && sameObject(info, ae.Index, be.Index)
	}
	return false
}

// usesObject reports whether expr mentions the object anywhere.
func usesObject(info *types.Info, expr ast.Expr, obj types.Object) bool {
	if expr == nil || obj == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
