// Package linttest runs lint analyzers against fixture packages with
// analysistest-style "// want" expectations: a comment `// want "regexp"`
// (or backquoted) on a line asserts that exactly that line gets a
// diagnostic whose message matches the regexp. Unmatched diagnostics and
// unmatched expectations both fail the test, so a fixture pins an
// analyzer's behavior from both sides — what it must flag and what it
// must leave alone.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"xmlviews/internal/lint"
)

// wantRE matches `want` followed by one quoted or backquoted pattern.
var wantRE = regexp.MustCompile("want\\s+(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads the fixture package in dir and checks the analyzers'
// diagnostics against the fixture's want comments. Analyzers run with
// Force (package-scope Roots do not apply to fixtures).
func Run(t *testing.T, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	prog, err := lint.LoadDir(dir, "fixture/"+filepath.Base(dir))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags := lint.Run(prog, analyzers, lint.RunOptions{Force: true})

	var wants []*expectation
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
						pat, err := unquote(m[1])
						if err != nil {
							t.Fatalf("%s: bad want literal %s: %v", pkg.Fset.Position(c.Pos()), m[1], err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pkg.Fset.Position(c.Pos()), pat, err)
						}
						pos := pkg.Fset.Position(c.Pos())
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
					}
				}
			}
		}
	}

	// vergate points manifest findings into format.manifest itself; the
	// fixture's expectations ride in its # comments.
	mpath := filepath.Join(dir, lint.ManifestName)
	if data, err := os.ReadFile(mpath); err == nil {
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				pat, err := unquote(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want literal %s: %v", mpath, i+1, m[1], err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", mpath, i+1, pat, err)
				}
				wants = append(wants, &expectation{file: mpath, line: i + 1, re: re, raw: pat})
			}
		}
	}

	for _, d := range diags {
		if w := match(wants, d); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("unexpected diagnostic at %s: [%s] %s", d.Pos, d.Analyzer, d.Message)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// match finds the first unmatched expectation on the diagnostic's line
// whose pattern matches its message.
func match(wants []*expectation, d lint.Diagnostic) *expectation {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			return w
		}
	}
	return nil
}

func unquote(lit string) (string, error) {
	if len(lit) >= 2 && lit[0] == '`' {
		return lit[1 : len(lit)-1], nil
	}
	s, err := strconv.Unquote(lit)
	if err != nil {
		return "", fmt.Errorf("%v", err)
	}
	return s, nil
}
