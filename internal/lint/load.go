package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// The loader resolves package patterns with `go list` and type-checks the
// matched packages from source with the standard library's source
// importer, so xvlint needs no dependency outside the Go distribution.
// Only the packages' shipped files are analyzed: _test.go files are the
// test harness, not the serving surface the invariants protect.

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Incomplete bool
	Error      *struct{ Err string }
}

// LoadPackages loads and type-checks the packages matched by the patterns
// (e.g. "./..."), relative to the current working directory, which must be
// inside the module.
func LoadPackages(patterns []string) (*Program, error) {
	args := append([]string{"list", "-e", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, errBuf.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(&out)
	for dec.More() {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })

	fset := token.NewFileSet()
	// One shared importer so transitively imported packages (std and
	// in-module) are type-checked from source once per invocation.
	imp := importer.ForCompiler(fset, "source", nil)
	prog := &Program{Fset: fset}
	for _, lp := range pkgs {
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		var paths []string
		for _, f := range lp.GoFiles {
			paths = append(paths, filepath.Join(lp.Dir, f))
		}
		pkg, err := checkPackage(fset, imp, lp.ImportPath, paths)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
	}
	return prog, nil
}

// LoadDir loads the single package contained in dir (every non-test .go
// file), type-checked under the given import path. Fixture tests use it.
func LoadDir(dir, importPath string) (*Program, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %v", err)
	}
	var paths []string
	for _, e := range ents {
		name := e.Name()
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			paths = append(paths, filepath.Join(dir, name))
		}
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(paths)
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	pkg, err := checkPackage(fset, imp, importPath, paths)
	if err != nil {
		return nil, err
	}
	return &Program{Fset: fset, Packages: []*Package{pkg}}, nil
}

// DirSpec names one fixture package for LoadDirs.
type DirSpec struct {
	Dir  string
	Path string // import path the package type-checks under
}

// LoadDirs loads several fixture packages that may import one another,
// in dependency order (imported packages first). The call-graph and
// facts tests use it to model cross-package chains that LoadDir's
// single-package loader cannot express.
func LoadDirs(specs []DirSpec) (*Program, error) {
	fset := token.NewFileSet()
	imp := &chainImporter{
		pkgs: map[string]*types.Package{},
		next: importer.ForCompiler(fset, "source", nil),
	}
	prog := &Program{Fset: fset}
	for _, spec := range specs {
		ents, err := os.ReadDir(spec.Dir)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		var paths []string
		for _, e := range ents {
			name := e.Name()
			if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
				paths = append(paths, filepath.Join(spec.Dir, name))
			}
		}
		if len(paths) == 0 {
			return nil, fmt.Errorf("lint: no Go files in %s", spec.Dir)
		}
		sort.Strings(paths)
		pkg, err := checkPackage(fset, imp, spec.Path, paths)
		if err != nil {
			return nil, err
		}
		imp.pkgs[spec.Path] = pkg.Types
		prog.Packages = append(prog.Packages, pkg)
	}
	return prog, nil
}

// chainImporter serves already-checked fixture packages by import path
// and defers everything else (the standard library) to the source
// importer.
type chainImporter struct {
	pkgs map[string]*types.Package
	next types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.pkgs[path]; ok {
		return p, nil
	}
	return c.next.Import(path)
}

// checkPackage parses and type-checks one package's files.
func checkPackage(fset *token.FileSet, imp types.Importer, importPath string, paths []string) (*Package, error) {
	var files []*ast.File
	dirs := map[string]map[int][]Directive{}
	for _, path := range paths {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
		dirs[fset.Position(f.Pos()).Filename] = parseDirectives(fset, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, err)
	}
	return &Package{
		Path:       importPath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		directives: dirs,
	}, nil
}
