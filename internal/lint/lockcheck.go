package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// LockCheck enforces annotation-driven lock discipline.
//
// A function whose doc comment carries //xvlint:requires(<mu>) mutates
// state guarded by the mutex named <mu> (the catalog, the delta chains,
// the store epoch) and may only be reached from callers that hold it. The
// check runs over the call graph of every analyzed package: a call to an
// annotated function is legal when the calling function
//
//   - is itself annotated //xvlint:requires(<mu>) — the obligation
//     propagates to ITS callers; or
//   - acquires the mutex on a path before the call: a statement
//     `<expr>.<mu>.Lock()` (or `<mu>.Lock()`) precedes the call site in
//     the same function body; or
//   - the call site is annotated //xvlint:lockheld(<mu>) — the reviewer
//     asserts the discipline holds by other means (single-threaded
//     construction, offline CLI with exclusive directory access) and says
//     so in an adjacent comment.
//
// The held-lock detection is positional, not path-sensitive: it proves
// "this function thought about the lock", not "every path holds it" —
// the race detector and the serve soak test cover the dynamic side. What
// the analyzer buys is that nobody can call ApplyAndPersist or
// CompactCatalog from new code without either taking updMu or leaving a
// reviewable annotation behind.
//
// The check also enforces single-goroutine OWNERSHIP domains. A function
// annotated //xvlint:owner(<name>) is internal to the named domain — the
// group committer, say — and may only be called from
//
//   - another function annotated //xvlint:owner(<name>) with the same
//     name (committer-internal calls); or
//   - a call site annotated //xvlint:ownedby(<name>): the domain's
//     sanctioned entry point, normally the one `go` statement that starts
//     the owning goroutine.
//
// Holding the right mutex does NOT discharge an ownership obligation:
// the committer owns more than a lock (the document, the batch ordering,
// the ack protocol), so a handler that locks updMu and applies a batch
// directly is still wrong — exactly the shape the group-commit refactor
// removed from handleUpdate.
var LockCheck = &Analyzer{
	Name:    "lockcheck",
	Summary: "//xvlint:requires(mu) needs mu held; //xvlint:owner(name) functions are goroutine-internal",
	Doc: "calls to functions annotated //xvlint:requires(mu) must come from callers that hold mu " +
		"(annotated themselves, a visible mu.Lock(), or an explicit //xvlint:lockheld(mu) waiver); " +
		"calls to functions annotated //xvlint:owner(name) must come from same-owner functions or " +
		"an //xvlint:ownedby(name) waived site (the owning goroutine's entry point)",
	Roots: nil, // call sites are checked wherever the annotated functions are reachable
	Run:   runLockCheck,
}

// lockRequirements collects the program-wide registry of annotated
// functions: funcKey -> required mutex name.
func lockRequirements(prog *Program) map[string]string {
	return funcAnnotations(prog, "requires")
}

// ownerDomains collects the program-wide ownership registry:
// funcKey -> owning domain name.
func ownerDomains(prog *Program) map[string]string {
	return funcAnnotations(prog, "owner")
}

// funcAnnotations indexes every function whose doc comment carries the
// named one-argument directive: funcKey -> argument.
func funcAnnotations(prog *Program, name string) map[string]string {
	out := map[string]string{}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if d, ok := funcDirective(pkg.Fset, fd, name); ok && d.Arg != "" {
					out[declKey(pkg.Path, fd)] = d.Arg
				}
			}
		}
	}
	return out
}

func runLockCheck(pass *Pass) {
	req := lockRequirements(pass.Prog)
	own := ownerDomains(pass.Prog)
	if len(req) == 0 && len(own) == 0 {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lockCheckFunc(pass, fd, req, own)
		}
	}
}

func lockCheckFunc(pass *Pass, fd *ast.FuncDecl, req, own map[string]string) {
	info := pass.Pkg.Info
	callerHolds := map[string]bool{}
	if d, ok := funcDirective(pass.Pkg.Fset, fd, "requires"); ok && d.Arg != "" {
		callerHolds[d.Arg] = true
	}
	callerOwner := ""
	if d, ok := funcDirective(pass.Pkg.Fset, fd, "owner"); ok {
		callerOwner = d.Arg
	}

	// Positions at which each mutex name is visibly acquired in this body.
	acquired := lockAcquisitions(fd)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		// Ownership first: it is the stronger obligation (a held lock does
		// not discharge it), and a call can owe both.
		if owner, ok := own[funcKey(fn)]; ok && callerOwner != owner && !siteOwnedBy(pass.Pkg, call, owner) {
			pass.Reportf(call.Pos(),
				"call to %s is internal to the %s goroutine: annotate the caller //xvlint:owner(%s) "+
					"or mark the goroutine entry point //xvlint:ownedby(%s)",
				fn.Name(), owner, owner, owner)
		}
		mu, ok := req[funcKey(fn)]
		if !ok {
			return true
		}
		if callerHolds[mu] {
			return true
		}
		if acquiredBefore(acquired[mu], call.Pos()) {
			return true
		}
		if siteWaived(pass.Pkg, call, mu) {
			return true
		}
		pass.Reportf(call.Pos(),
			"call to %s requires holding %s: take the lock before the call, annotate the caller "+
				"//xvlint:requires(%s), or waive the site with //xvlint:lockheld(%s) and a justification",
			fn.Name(), mu, mu, mu)
		return true
	})
}

// lockAcquisitions maps mutex names to the positions of `<x>.<mu>.Lock()`
// (or `<mu>.Lock()`) statements in the function body.
func lockAcquisitions(fd *ast.FuncDecl) map[string][]token.Pos {
	out := map[string][]token.Pos{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Lock" || len(call.Args) != 0 {
			return true
		}
		var muName string
		switch x := unparen(sel.X).(type) {
		case *ast.SelectorExpr:
			muName = x.Sel.Name
		case *ast.Ident:
			muName = x.Name
		default:
			return true
		}
		out[muName] = append(out[muName], call.Pos())
		return true
	})
	return out
}

// acquiredBefore reports whether any recorded acquisition precedes pos.
func acquiredBefore(positions []token.Pos, pos token.Pos) bool {
	for _, p := range positions {
		if p < pos {
			return true
		}
	}
	return false
}

// siteWaived reports an //xvlint:lockheld(mu) annotation at the call site.
func siteWaived(pkg *Package, call *ast.CallExpr, mu string) bool {
	for _, d := range pkg.directivesAt(call.Pos()) {
		if d.Name == "lockheld" && strings.TrimSpace(d.Arg) == mu {
			return true
		}
	}
	return false
}

// siteOwnedBy reports an //xvlint:ownedby(owner) annotation at the call
// site: the sanctioned entry point into an ownership domain.
func siteOwnedBy(pkg *Package, call *ast.CallExpr, owner string) bool {
	for _, d := range pkg.directivesAt(call.Pos()) {
		if d.Name == "ownedby" && strings.TrimSpace(d.Arg) == owner {
			return true
		}
	}
	return false
}
