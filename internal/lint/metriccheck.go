package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// MetricCheck freezes the observability surface three ways.
//
// Label cardinality: every argument of a CounterVec/GaugeVec .With(...)
// call must come from a compile-time-bounded set — a constant, a local
// variable assigned only constants (the execPath := "row" / "vectorized"
// pattern), or a parameter whose every call site (via the call graph)
// passes a bounded value. A request-derived string would mint one time
// series per distinct value and blow up the exposition; sites that are
// bounded for reasons the analysis cannot see (strconv.Itoa of an HTTP
// status) carry //xvlint:boundedlabel with the reason.
//
// Registration: metric names registered on an obs Registry in the
// serving layer must be compile-time constants matching xvserve_[a-z_]+
// and registered exactly once program-wide (the Registry panics on
// duplicates at runtime; the analyzer moves that to lint time).
//
// /stats: the Stats struct's json field set is pinned against the
// allowlist below. Dashboards and the soak harness parse these keys;
// renaming or dropping one is a breaking API change that must be made
// here, deliberately, not as a side effect of a refactor.
var MetricCheck = &Analyzer{
	Name:    "metriccheck",
	Summary: "metric labels bounded, names xvserve_* registered once, /stats keys pinned",
	Doc: "flags unbounded CounterVec/GaugeVec label values (request-derived strings), " +
		"metric names that are non-constant, mis-shaped (xvserve_[a-z_]+) or registered twice, " +
		"and drift in the frozen /stats JSON field set",
	Roots: []string{"xmlviews/internal/serve"},
	Run:   runMetricCheck,
}

var metricNameRE = regexp.MustCompile(`^xvserve_[a-z_]+$`)

// statsAllowlist is the frozen /stats key set. Changing the surface
// means editing this list in the same PR — which is the point.
var statsAllowlist = []string{
	"uptime_seconds", "views", "epoch", "degraded", "queries",
	"rewrites_run", "client_disconnects", "errors", "rows_served",
	"plan_cache_hits", "plan_cache_misses", "plan_cache_size",
	"plan_hit_rate", "subsume_cache_entries", "rewrite_ms_total",
	"exec_ms_total", "updates_applied", "tuples_added", "tuples_deleted",
	"cache_invalidations", "maintain_ms_total", "max_delta_chain",
	"delta_bytes", "compactions_run", "delta_segments_folded",
	"compact_bytes_reclaimed", "compact_errors",
}

// registrarMethods are the obs.Registry constructors; the first argument
// is the metric name.
var registrarMethods = map[string]bool{
	"Counter": true, "CounterVec": true, "Gauge": true,
	"GaugeFunc": true, "Histogram": true,
}

func runMetricCheck(pass *Pass) {
	checkLabelBounds(pass)
	checkRegistrations(pass)
	checkStatsStruct(pass)
}

// --- label cardinality ---

func checkLabelBounds(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "With" {
					return true
				}
				tv, ok := info.Types[sel.X]
				if !ok {
					return true
				}
				named := namedType(tv.Type)
				if named == nil {
					return true
				}
				if name := named.Obj().Name(); name != "CounterVec" && name != "GaugeVec" {
					return true
				}
				if pass.Pkg.stmtAnnotated(call.Pos(), "boundedlabel") {
					return true
				}
				for _, arg := range call.Args {
					if !boundedExpr(pass, pass.Pkg, fd, arg, map[string]bool{}) {
						pass.Reportf(arg.Pos(),
							"metric label value %s is not compile-time bounded: a request-derived label mints "+
								"unbounded time series; map it to a fixed set first or annotate "+
								"//xvlint:boundedlabel with why the value space is bounded",
							types.ExprString(arg))
					}
				}
				return true
			})
		}
	}
}

// boundedExpr reports whether, in the context of fd, e can only take
// values from a compile-time-bounded set.
func boundedExpr(pass *Pass, pkg *Package, fd *ast.FuncDecl, e ast.Expr, seen map[string]bool) bool {
	e = unparen(e)
	if tv, ok := pkg.Info.Types[e]; ok && tv.Value != nil {
		return true // constant
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pkg.Info.ObjectOf(id)
	if obj == nil {
		return false
	}
	if _, isConst := obj.(*types.Const); isConst {
		return true
	}
	v, isVar := obj.(*types.Var)
	if !isVar {
		return false
	}
	if idx, isParam := paramObjects(pkg.Info, fd)[v]; isParam {
		if idx < 0 {
			return false // receiver
		}
		return boundedParam(pass, declKey(pkg.Path, fd), idx, seen)
	}
	// A local: bounded iff every assignment to it in this body is.
	assigns := 0
	bounded := true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			lid, ok := unparen(lhs).(*ast.Ident)
			if !ok || pkg.Info.ObjectOf(lid) != v {
				continue
			}
			assigns++
			if len(as.Rhs) == len(as.Lhs) {
				if !boundedExpr(pass, pkg, fd, as.Rhs[i], seen) {
					bounded = false
				}
			} else {
				bounded = false // multi-value assignment: opaque
			}
		}
		return true
	})
	return assigns > 0 && bounded
}

// boundedParam reports whether every call site of the function passes a
// bounded value for the parameter — the interprocedural half: a helper
// like instrument(path, h) keeps a bounded label when all its callers
// pass literals.
func boundedParam(pass *Pass, fnKey string, idx int, seen map[string]bool) bool {
	memo := fnKey + "#" + strconv.Itoa(idx)
	if seen[memo] {
		return true // cycle: bounded unless some site breaks it
	}
	seen[memo] = true
	node := pass.Prog.CallGraph().Node(fnKey)
	if node == nil || len(node.In) == 0 {
		return false
	}
	sawCall := false
	for _, e := range node.In {
		if e.Kind != EdgeCall || e.Site == nil {
			return false // method value: call sites unknowable
		}
		caller := pass.Prog.CallGraph().Node(e.Caller)
		if caller == nil || caller.Decl == nil || idx >= len(e.Site.Args) {
			return false
		}
		sawCall = true
		if !boundedExpr(pass, caller.Pkg, caller.Decl, e.Site.Args[idx], seen) {
			return false
		}
	}
	return sawCall
}

// --- registration ---

// metricRegistration is one Registry constructor call.
type metricRegistration struct {
	pkg  *Package
	call *ast.CallExpr
	name string // constant value, "" when non-constant
}

// collectRegistrations finds every Registry metric constructor call in
// the program.
func collectRegistrations(prog *Program) []metricRegistration {
	var regs []metricRegistration
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || !registrarMethods[sel.Sel.Name] {
					return true
				}
				tv, ok := pkg.Info.Types[sel.X]
				if !ok {
					return true
				}
				named := namedType(tv.Type)
				if named == nil || named.Obj().Name() != "Registry" {
					return true
				}
				reg := metricRegistration{pkg: pkg, call: call}
				if atv, ok := pkg.Info.Types[call.Args[0]]; ok && atv.Value != nil && atv.Value.Kind() == constant.String {
					reg.name = constant.StringVal(atv.Value)
				}
				regs = append(regs, reg)
				return true
			})
		}
	}
	return regs
}

func checkRegistrations(pass *Pass) {
	regs := collectRegistrations(pass.Prog)
	byName := map[string]int{}
	for _, r := range regs {
		if r.name != "" {
			byName[r.name]++
		}
	}
	for _, r := range regs {
		if r.pkg != pass.Pkg {
			continue // diagnostics stay in the package under analysis
		}
		if r.name == "" {
			pass.Reportf(r.call.Args[0].Pos(),
				"metric name must be a compile-time constant so the exposition surface is reviewable in one grep")
			continue
		}
		if !metricNameRE.MatchString(r.name) {
			pass.Reportf(r.call.Args[0].Pos(),
				"metric name %q does not match xvserve_[a-z_]+: the serving layer's exposition prefix is frozen",
				r.name)
		}
		if byName[r.name] > 1 {
			pass.Reportf(r.call.Pos(),
				"metric %q is registered %d times; the Registry panics on duplicates at startup — register once and share the handle",
				r.name, byName[r.name])
		}
	}
}

// --- /stats pin ---

func checkStatsStruct(pass *Pass) {
	allow := map[string]bool{}
	for _, k := range statsAllowlist {
		allow[k] = true
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Name.Name != "Stats" {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			got := map[string]bool{}
			tagged := false
			for _, field := range st.Fields.List {
				key := jsonKey(field)
				if key == "" {
					continue
				}
				tagged = true
				got[key] = true
				if !allow[key] {
					pass.Reportf(field.Pos(),
						"/stats key %q is not in the frozen field set: dashboards parse this surface — "+
							"add the key to statsAllowlist in internal/lint/metriccheck.go in the same change, deliberately",
						key)
				}
			}
			if !tagged {
				return true // an unrelated Stats type with no json surface
			}
			var missing []string
			for _, k := range statsAllowlist {
				if !got[k] {
					missing = append(missing, k)
				}
			}
			if len(missing) > 0 {
				sort.Strings(missing)
				pass.Reportf(ts.Pos(),
					"/stats is missing frozen keys %s: dashboards parse these — removing one is a breaking "+
						"change that must also edit statsAllowlist in internal/lint/metriccheck.go",
					strings.Join(missing, ", "))
			}
			return true
		})
	}
}

// jsonKey extracts the json key from a struct field tag ("" for
// untagged fields, "-", or option-only tags).
func jsonKey(field *ast.Field) string {
	if field.Tag == nil {
		return ""
	}
	raw, err := strconv.Unquote(field.Tag.Value)
	if err != nil {
		return ""
	}
	tag := reflect.StructTag(raw).Get("json")
	if tag == "" || tag == "-" {
		return ""
	}
	if i := strings.Index(tag, ","); i >= 0 {
		tag = tag[:i]
	}
	return tag
}
