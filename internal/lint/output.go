package lint

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Machine-readable output for CI. The JSON form is a flat findings
// array for scripts; the SARIF form (2.1.0, minimal subset) is what
// GitHub's code-scanning upload turns into inline PR annotations.
// Both render the same sorted Diagnostic slice Run returns, so text,
// JSON and SARIF outputs of one invocation always agree.

// JSONFinding is one diagnostic in -json output.
type JSONFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// Findings converts diagnostics to their JSON form, with file paths
// relative to the working directory when possible (CI annotates paths
// relative to the repo root).
func Findings(diags []Diagnostic) []JSONFinding {
	out := make([]JSONFinding, 0, len(diags))
	for _, d := range diags {
		out = append(out, JSONFinding{
			Analyzer: d.Analyzer,
			File:     relPath(d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	return out
}

// WriteJSON renders the diagnostics as a JSON findings array.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Findings(diags))
}

// sarif* mirror the SARIF 2.1.0 property names GitHub code scanning
// consumes; everything optional is omitted.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
	FullDescription  sarifMessage `json:"fullDescription,omitempty"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders the diagnostics as a SARIF 2.1.0 log with one rule
// per analyzer.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, diags []Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Summary},
			FullDescription:  sarifMessage{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(relPath(d.Pos.Filename))},
					Region:           sarifRegion{StartLine: max(d.Pos.Line, 1), StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "xvlint", Rules: rules}},
			Results: results,
		}},
	})
}

// relPath makes a path relative to the working directory when that
// yields something inside the tree.
func relPath(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(wd, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}
