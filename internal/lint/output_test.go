package lint_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"xmlviews/internal/lint"
)

// realBugDiags runs sharemut over its fixture and returns the findings
// from realbug.go — the functions that reproduce, shape for shape, the
// pre-fix fillVirtualIDs and plan-cache defects. The output formats are
// validated against these rather than synthetic diagnostics, so the
// JSON/SARIF a CI run would have produced for the real bugs is pinned.
func realBugDiags(t *testing.T) []lint.Diagnostic {
	t.Helper()
	prog, err := lint.LoadDir("testdata/sharemut", "fixture/sharemut")
	if err != nil {
		t.Fatalf("loading sharemut fixture: %v", err)
	}
	diags := lint.Run(prog, []*lint.Analyzer{lint.ShareMut}, lint.RunOptions{Force: true})
	var out []lint.Diagnostic
	for _, d := range diags {
		if strings.HasSuffix(d.Pos.Filename, "realbug.go") {
			out = append(out, d)
		}
	}
	if len(out) == 0 {
		t.Fatalf("no diagnostics in realbug.go; the pre-fix defect shapes went undetected")
	}
	return out
}

func TestJSONOutput(t *testing.T) {
	diags := realBugDiags(t)
	var buf bytes.Buffer
	if err := lint.WriteJSON(&buf, diags); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var findings []lint.JSONFinding
	if err := json.Unmarshal(buf.Bytes(), &findings); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(findings) != len(diags) {
		t.Fatalf("got %d findings for %d diagnostics", len(findings), len(diags))
	}
	found := false
	for _, f := range findings {
		if f.Analyzer != "sharemut" {
			t.Errorf("finding attributed to %q, want sharemut", f.Analyzer)
		}
		if f.Line <= 0 || f.File == "" {
			t.Errorf("finding lost its position: %+v", f)
		}
		if strings.Contains(f.Message, "shared via") && strings.Contains(f.File, "realbug.go") {
			found = true
		}
	}
	if !found {
		t.Errorf("the fillVirtualIDs-shape finding did not survive the JSON round trip: %s", buf.String())
	}
}

func TestSARIFOutput(t *testing.T) {
	diags := realBugDiags(t)
	var buf bytes.Buffer
	if err := lint.WriteSARIF(&buf, lint.All(), diags); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}

	// Decode through interface{} so the assertions check the wire
	// property names GitHub's upload consumes, not our struct tags.
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("-sarif output is not valid JSON: %v\n%s", err, buf.String())
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("version %q schema %q, want SARIF 2.1.0", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("want exactly 1 run, got %d", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "xvlint" {
		t.Errorf("driver name %q, want xvlint", run.Tool.Driver.Name)
	}
	rules := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		rules[r.ID] = true
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has no shortDescription", r.ID)
		}
	}
	for _, a := range lint.All() {
		if !rules[a.Name] {
			t.Errorf("analyzer %s missing from the SARIF rules", a.Name)
		}
	}
	if len(run.Results) != len(diags) {
		t.Fatalf("got %d results for %d diagnostics", len(run.Results), len(diags))
	}
	for _, res := range run.Results {
		if !rules[res.RuleID] {
			t.Errorf("result rule %q not declared in the rules array", res.RuleID)
		}
		if res.Level != "error" {
			t.Errorf("result level %q, want error", res.Level)
		}
		if len(res.Locations) != 1 {
			t.Fatalf("result without a location: %+v", res)
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.Region.StartLine <= 0 {
			t.Errorf("non-positive startLine in %+v", loc)
		}
		if uri := loc.ArtifactLocation.URI; uri == "" || strings.Contains(uri, "\\") {
			t.Errorf("artifact URI %q must be non-empty and slash-separated", uri)
		}
	}
}
