package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ShareMut enforces the clone-before-mutate rule for shared storage.
//
// Accessors annotated //xvlint:sharedreturn (view.Store's extent and
// Blocks lookups, the plan cache's entries) return values whose backing
// storage is shared with the cache and with concurrent readers — the
// PR 2 fillVirtualIDs race and the PR 8 prepared-Blocks invalidation
// bug were both a caller mutating such a value in place. The analyzer
// taints every value obtained from a shared-returning call, follows the
// taint through assignments, field/index paths, range loops and append
// results, and reports when a tainted value is written through:
//
//   - an element/field/deref assignment (rel.Rows[i] = t, blk.data = b);
//   - an append whose destination slice aliases shared backing;
//   - a copy() with shared data as destination;
//   - a call to a function the mutates fact says writes through that
//     parameter or receiver (including sort.Slice and friends).
//
// Writes that stay inside a value copy (v := row[j]; v.Kind = k) are
// not shared and are not flagged: a write counts only when the path
// from the tainted base traverses a pointer, slice or map.
//
// Re-binding a tainted variable from a non-shared source — the clone
// idiom rel = rel.Clone(), or building a fresh relation — clears its
// taint. Deliberate in-place mutation (construction-time code that owns
// the storage it just built) carries //xvlint:aliasok with the reason.
//
// Like lockcheck, the tracking is positional, not path-sensitive: it
// follows statements in source order and is an auditing aid, not a
// proof; the race detector covers the dynamic side.
var ShareMut = &Analyzer{
	Name:    "sharemut",
	Summary: "values from //xvlint:sharedreturn accessors must be cloned before mutation",
	Doc: "flags mutation of values obtained from //xvlint:sharedreturn accessors " +
		"(cached extents, Blocks handles, plan-cache entries): element/field assigns, " +
		"appends into aliased slices, and passing them to known-mutating callees, " +
		"unless the value was re-bound from a clone or the site carries //xvlint:aliasok",
	Roots: []string{
		"xmlviews/internal/algebra",
		"xmlviews/internal/core",
		"xmlviews/internal/maintain",
		"xmlviews/internal/serve",
		"xmlviews/internal/view",
	},
	Run: runShareMut,
}

// knownStdlibMutators maps undeclared (standard library) functions to
// the argument index they mutate, so sorting a shared slice in place is
// still caught even without a mutates fact.
var knownStdlibMutators = map[string]int{
	"sort.Slice":       0,
	"sort.SliceStable": 0,
	"sort.Sort":        0,
}

func runShareMut(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				shareMutFunc(pass, fd)
			}
		}
	}
}

// taintState tracks which local objects currently alias shared storage,
// each with the display name of the accessor the value came from.
type taintState map[types.Object]string

func shareMutFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	facts := pass.Prog.Facts()
	taint := taintState{}
	// Appends whose report is owned by the enclosing self-append
	// assignment (sh.Rows = append(sh.Rows, ...)) — one finding, not two.
	selfAppend := map[*ast.CallExpr]bool{}

	taintedBase := func(e ast.Expr) (string, bool) {
		base := pathBase(e)
		if base == nil {
			return "", false
		}
		src, ok := taint[info.ObjectOf(base)]
		return src, ok
	}

	report := func(n ast.Node, src, what string) {
		if pass.Pkg.stmtAnnotated(n.Pos(), "aliasok") {
			return
		}
		pass.Reportf(n.Pos(),
			"%s a value shared via %s: clone it first (the backing storage is visible to "+
				"concurrent readers and the cache) or annotate //xvlint:aliasok with why the alias is safe",
			what, src)
	}

	// taintsValue reports whether evaluating e yields a value aliasing
	// shared storage, and names its source.
	var taintsValue func(e ast.Expr) (string, bool)
	taintsValue = func(e ast.Expr) (string, bool) {
		e = unparen(e)
		switch x := e.(type) {
		case *ast.CallExpr:
			if fn, _ := resolveCall(info, x); fn != nil && facts.SharedReturn[funcKey(fn)] {
				return shortFuncKey(funcKey(fn)), true
			}
			// append(shared, ...) returns a slice that may share the
			// shared backing array.
			if id, ok := unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" && len(x.Args) > 0 {
				if _, isB := info.Uses[id].(*types.Builtin); isB {
					return taintedBase(x.Args[0])
				}
			}
			return "", false
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				return taintsValue(x.X)
			}
			return "", false
		case *ast.CompositeLit:
			// A fresh struct/slice holding a shared pointer is not itself
			// shared: writing its fields replaces pointers rather than
			// mutating the pointee. Mutations reached through the stored
			// pointer are beyond this (deliberately local) tracking.
			return "", false
		default:
			return taintedBase(e)
		}
	}

	setTaint := func(id *ast.Ident, src string) {
		obj := info.ObjectOf(id)
		if obj == nil || id.Name == "_" {
			return
		}
		if t := obj.Type(); t != nil && isBasicType(t) {
			return // ints/strings cannot reach shared storage
		}
		taint[obj] = src
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			shareMutAssign(pass, s, info, taint, selfAppend, taintsValue, setTaint, taintedBase, report)
		case *ast.IncDecStmt:
			if src, ok := taintedBase(s.X); ok && sharedWritePath(info, s.X) {
				report(s, src, "incrementing through")
			}
		case *ast.RangeStmt:
			if src, ok := taintsValue(s.X); ok {
				for _, v := range []ast.Expr{s.Key, s.Value} {
					if id, ok := v.(*ast.Ident); ok {
						setTaint(id, src)
					}
				}
			}
		case *ast.CallExpr:
			shareMutCall(pass, s, info, facts, selfAppend, taintedBase, report)
		}
		return true
	})
}

// shareMutAssign handles taint creation, taint clearing on re-binding,
// and mutation reports for assignments.
func shareMutAssign(pass *Pass, s *ast.AssignStmt, info *types.Info, taint taintState,
	selfAppend map[*ast.CallExpr]bool,
	taintsValue func(ast.Expr) (string, bool),
	setTaint func(*ast.Ident, string),
	taintedBase func(ast.Expr) (string, bool),
	report func(ast.Node, string, string)) {

	// Multi-value form: x, ok := sharedCall() taints every bind.
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		src, tainted := taintsValue(s.Rhs[0])
		for _, lhs := range s.Lhs {
			if id, ok := unparen(lhs).(*ast.Ident); ok {
				if tainted {
					setTaint(id, src)
				} else {
					delete(taint, info.ObjectOf(id))
				}
			}
		}
		return
	}
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		rhs := s.Rhs[i]
		if id, ok := unparen(lhs).(*ast.Ident); ok {
			// Bare binding: taint or clear. rel = rel.Clone() clears.
			if src, ok := taintsValue(rhs); ok {
				setTaint(id, src)
			} else {
				delete(taint, info.ObjectOf(id))
			}
			continue
		}
		// Path assignment: writing through a tainted base mutates the
		// shared storage.
		if src, ok := taintedBase(lhs); ok && sharedWritePath(info, lhs) {
			if call, ok := unparen(rhs).(*ast.CallExpr); ok {
				if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 && sameObject(info, call.Args[0], lhs) {
					selfAppend[call] = true
				}
			}
			report(s, src, "assigning through")
		}
	}
}

// shareMutCall reports mutating uses of tainted values at call sites.
func shareMutCall(pass *Pass, call *ast.CallExpr, info *types.Info, facts *Facts,
	selfAppend map[*ast.CallExpr]bool,
	taintedBase func(ast.Expr) (string, bool),
	report func(ast.Node, string, string)) {

	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := info.Uses[id].(*types.Builtin); isB {
			switch id.Name {
			case "append":
				if selfAppend[call] {
					return
				}
				if src, ok := taintedBase(call.Args[0]); ok {
					report(call, src, "appending into")
				}
			case "copy":
				if len(call.Args) == 2 {
					if src, ok := taintedBase(call.Args[0]); ok {
						report(call, src, "copying into")
					}
				}
			}
			return
		}
	}
	fn, _ := resolveCall(info, call)
	if fn == nil {
		return
	}
	key := funcKey(fn)
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if src, ok := taintedBase(sel.X); ok && facts.Mutates[key][-1] {
				report(call, src, "calling mutating method "+fn.Name()+" on")
			}
		}
	}
	for j, arg := range call.Args {
		src, tainted := taintedBase(arg)
		if !tainted {
			continue
		}
		if facts.Mutates[key][j] {
			report(call, src, "passing to mutating "+shortFuncKey(key)+" argument of")
		} else if idx, known := knownStdlibMutators[key]; known && idx == j {
			report(call, src, "passing to in-place "+key+" argument of")
		}
	}
}

// sharedWritePath reports whether the assignment path dereferences
// shared memory: its base or any intermediate step is a pointer, slice
// or map. A field write on a struct value copy stays local and is fine.
func sharedWritePath(info *types.Info, lhs ast.Expr) bool {
	e := unparen(lhs)
	for {
		var inner ast.Expr
		switch x := e.(type) {
		case *ast.SelectorExpr:
			inner = x.X
		case *ast.IndexExpr:
			inner = x.X
		case *ast.SliceExpr:
			inner = x.X
		case *ast.StarExpr:
			inner = x.X
		case *ast.Ident:
			return false
		default:
			return false
		}
		inner = unparen(inner)
		if tv, ok := info.Types[inner]; ok && isRefLike(tv.Type) {
			return true
		}
		e = inner
	}
}

// isRefLike reports whether values of the type share backing storage
// when copied.
func isRefLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// isBasicType reports scalar types that cannot alias shared storage.
func isBasicType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Basic)
	return ok
}

// shortFuncKey trims the module path from a function key for messages:
// xmlviews/internal/view.Store.Relation -> view.Store.Relation.
func shortFuncKey(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}
