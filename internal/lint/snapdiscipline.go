package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// SnapDiscipline pins the PR 3 epoch-snapshot rule for the serving
// layer: request handling must obtain extents through Snapshot(), never
// by reading the live store directly, so one request never observes two
// different epochs (a torn read across a concurrent update).
//
// The live store is marked at its declaration: the struct field holding
// it carries //xvlint:livestore. Every use of an annotated field is then
// classified:
//
//   - calling Snapshot() on it — the sanctioned read path;
//   - calling a non-shared-returning method (Epoch, Document, the
//     update entry points, which serialize under their own locks) — ok;
//   - calling a //xvlint:sharedreturn accessor (Relation, Blocks), or
//     taking its method value — a direct extent read, reported;
//   - passing it to a callee whose reads-extents fact says the callee
//     (transitively) reads extents from that parameter, or to a callee
//     the analysis cannot see into — reported;
//   - aliasing it away (assignment, composite literal, return, channel
//     send) — reported, because the alias escapes the discipline.
//
// Sites that are correct for reasons the analysis cannot see (an update
// path that holds the update lock and WANTS the live store) carry
// //xvlint:snapok with the reason.
var SnapDiscipline = &Analyzer{
	Name:    "snapdiscipline",
	Summary: "serve must read extents via Snapshot(), not the live store",
	Doc: "flags direct extent reads from //xvlint:livestore fields in the serving layer: " +
		"shared-returning accessor calls, passing the live store to extent-reading callees, " +
		"and aliasing it away; reads go through Snapshot() or carry //xvlint:snapok",
	Roots: []string{"xmlviews/internal/serve"},
	Run:   runSnapDiscipline,
}

// liveStoreFields collects the program-wide set of struct fields
// annotated //xvlint:livestore.
func liveStoreFields(prog *Program) map[types.Object]bool {
	fields := map[types.Object]bool{}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok || st.Fields == nil {
					return true
				}
				for _, field := range st.Fields.List {
					if !fieldAnnotated(pkg, field, "livestore") {
						continue
					}
					for _, name := range field.Names {
						if obj := pkg.Info.Defs[name]; obj != nil {
							fields[obj] = true
						}
					}
				}
				return true
			})
		}
	}
	return fields
}

// fieldAnnotated reports a directive on the field's own line (trailing
// comment) or in its doc comment. The statement-level line-above rule
// would bleed onto the next field of the struct, so it does not apply.
func fieldAnnotated(pkg *Package, field *ast.Field, name string) bool {
	p := pkg.Fset.Position(field.Pos())
	for _, d := range pkg.directives[p.Filename][p.Line] {
		if d.Name == name {
			return true
		}
	}
	if field.Doc != nil {
		for _, c := range field.Doc.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if m := directiveRE.FindStringSubmatch(text); m != nil && m[1] == name {
				return true
			}
		}
	}
	return false
}

func runSnapDiscipline(pass *Pass) {
	fields := liveStoreFields(pass.Prog)
	if len(fields) == 0 {
		return
	}
	facts := pass.Prog.Facts()
	info := pass.Pkg.Info
	declared := map[string]bool{}
	for key, node := range pass.Prog.CallGraph().Nodes {
		if node.Decl != nil {
			declared[key] = true
		}
	}

	for _, f := range pass.Pkg.Files {
		var stack []ast.Node
		parentOf := func() ast.Node {
			for i := len(stack) - 2; i >= 0; i-- {
				if _, ok := stack[i].(*ast.ParenExpr); ok {
					continue
				}
				return stack[i]
			}
			return nil
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !fields[info.Uses[sel.Sel]] {
				return true
			}
			if pass.Pkg.stmtAnnotated(sel.Pos(), "snapok") {
				return true
			}
			report := func(format string, args ...any) {
				pass.Reportf(sel.Pos(), "%s is the live store: %s — read through Snapshot() "+
					"(one epoch per request) or annotate //xvlint:snapok with why the live store is intended",
					types.ExprString(sel), fmt.Sprintf(format, args...))
			}
			switch p := parentOf().(type) {
			case *ast.SelectorExpr:
				// s.st.Method or s.st.Field. Snapshot and other
				// non-shared methods are the sanctioned surface; a
				// shared-returning accessor is a direct extent read.
				if fn, _ := info.Uses[p.Sel].(*types.Func); fn != nil && facts.SharedReturn[funcKey(fn)] {
					report("calling shared-returning accessor %s reads extents outside any epoch", fn.Name())
				}
			case *ast.CallExpr:
				for j, arg := range p.Args {
					if unparen(arg) != ast.Expr(sel) {
						continue
					}
					fn, _ := resolveCall(info, p)
					if fn == nil {
						report("passed to an unresolvable callee the analysis cannot vet")
					} else if key := funcKey(fn); !declared[key] {
						report("passed to %s, which is outside the analyzed program", shortFuncKey(key))
					} else if facts.ReadsExtents[key][j] {
						report("%s reads extents from this argument (reads-extents fact)", shortFuncKey(key))
					}
				}
			case *ast.BinaryExpr, *ast.SwitchStmt, *ast.CaseClause, *ast.IfStmt:
				// Comparisons (s.st == nil) do not leak the store.
			case *ast.AssignStmt:
				for _, lhs := range p.Lhs {
					if unparen(lhs) == ast.Expr(sel) {
						return true // initializing the field itself
					}
				}
				report("aliased into a variable, escaping the snapshot discipline")
			case *ast.ReturnStmt:
				report("returned to the caller, escaping the snapshot discipline")
			default:
				report("aliased away (%T), escaping the snapshot discipline", p)
			}
			return true
		})
	}
}
