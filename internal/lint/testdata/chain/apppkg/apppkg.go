// Package apppkg is the top of the fact chain: it only ever talks to
// wrappkg, so every diagnostic here proves a fact crossed two package
// boundaries.
package apppkg

import (
	"fixture/chain/storepkg"
	"fixture/chain/wrappkg"
)

// MutateSharedBuggy obtains a shared extent through the middle package
// and mutates it through another middle-package wrapper.
func MutateSharedBuggy(s *storepkg.Store) {
	rel := wrappkg.Cached(s, "v")
	wrappkg.GrowAll(rel) // want `shared via`
}

// MutateOwnedOK builds its own relation; no shared storage involved.
func MutateOwnedOK() *storepkg.Rel {
	rel := &storepkg.Rel{}
	wrappkg.GrowAll(rel)
	return rel
}

// ExtentFn takes the accessor's method value; the call graph records
// this as a reference edge, not a call.
func ExtentFn(s *storepkg.Store) func(string) *storepkg.Rel {
	return s.Extent
}
