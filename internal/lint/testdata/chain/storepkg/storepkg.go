// Package storepkg is the bottom of the three-package fact chain used
// by the call-graph and facts tests: the facts originate here and must
// survive the wrappkg wrappers on their way to apppkg.
package storepkg

// Rel is a cached extent.
type Rel struct {
	Rows []int
}

// Store caches extents.
type Store struct {
	rels map[string]*Rel
}

// Extent returns the shared cached extent.
//
//xvlint:sharedreturn
func (s *Store) Extent(name string) *Rel {
	return s.rels[name]
}

// Grow mutates its parameter in place.
func Grow(r *Rel) {
	r.Rows = append(r.Rows, 0)
}

// Cancelled polls the done channel — the cancellation primitive the
// polls-ctx fact tracks.
func Cancelled(done chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}
