// Package wrappkg is the middle of the fact chain: trivial wrappers
// that must pass the storepkg facts through unchanged.
package wrappkg

import "fixture/chain/storepkg"

// Cached re-exports the shared accessor; sharedreturn propagates
// through the direct return.
func Cached(s *storepkg.Store, name string) *storepkg.Rel {
	return s.Extent(name)
}

// GrowAll forwards its argument to the mutator; the mutates fact
// follows the argument flow.
func GrowAll(r *storepkg.Rel) {
	storepkg.Grow(r)
}

// CheckStop forwards the poll; polls-ctx propagates through the call.
func CheckStop(done chan struct{}) bool {
	return storepkg.Cancelled(done)
}

// ReadSize reads an extent from the store it is handed, one level
// removed — the reads-extents fact crosses the wrapper.
func ReadSize(s *storepkg.Store) int {
	return len(Cached(s, "v").Rows)
}
