// Fixture for the ctxpoll analyzer: tuple loops without a cancellation
// poll are flagged; the sanctioned poll shapes and the nopoll annotation
// are not.
package ctxpoll

import "context"

type Tuple struct{ id int }

type rowPair struct{ left, right Tuple }

// sumBad burns CPU with no way to stop it.
func sumBad(rows []Tuple) int {
	n := 0
	for _, t := range rows { // want `tuple loop without a cancellation poll`
		n += t.id
	}
	return n
}

// pairBad: the element type matches row, so pair loops are covered too.
func pairBad(pairs []rowPair) int {
	n := 0
	for _, p := range pairs { // want `tuple loop without a cancellation poll`
		n += p.left.id
	}
	return n
}

// sumCtx polls the context directly.
func sumCtx(ctx context.Context, rows []Tuple) int {
	n := 0
	for i, t := range rows {
		if i%1024 == 0 && ctx.Err() != nil {
			return n
		}
		n += t.id
	}
	return n
}

// sumHelper polls through a probe callback named like the project's
// helpers.
func sumHelper(rows []Tuple, cancelled func() bool) int {
	n := 0
	for _, t := range rows {
		if cancelled() {
			break
		}
		n += t.id
	}
	return n
}

// sumSelect polls a done channel.
func sumSelect(done chan struct{}, rows []Tuple) int {
	n := 0
	for _, t := range rows {
		select {
		case <-done:
			return n
		default:
		}
		n += t.id
	}
	return n
}

// nested: a poll in the enclosing loop bounds the unpolled inner work by
// one block, which is the project's accepted granularity.
func nested(ctx context.Context, blocks [][]Tuple) int {
	n := 0
	for _, block := range blocks {
		if ctx.Err() != nil {
			return n
		}
		for _, t := range block {
			n += t.id
		}
	}
	return n
}

// closureResets: a poll OUTSIDE a function literal does not cover loops
// inside it — the literal may run on another goroutine.
func closureResets(ctx context.Context, rows []Tuple) func() int {
	if ctx.Err() != nil {
		return nil
	}
	return func() int {
		n := 0
		for _, t := range rows { // want `tuple loop without a cancellation poll`
			n += t.id
		}
		return n
	}
}

// checkEvery wraps the context poll the way extracted helpers do; it
// carries no sanctioned name, so only the polls-ctx fact can vouch for
// it.
func checkEvery(ctx context.Context, i int) bool {
	return i%1024 == 0 && ctx.Err() != nil
}

// sumViaHelper polls through the extracted helper: the interprocedural
// fact covers the loop even though nothing in the body matches a poll
// shape syntactically.
func sumViaHelper(ctx context.Context, rows []Tuple) int {
	n := 0
	for i, t := range rows {
		if checkEvery(ctx, i) {
			return n
		}
		n += t.id
	}
	return n
}

// applyAll must not be interrupted; the annotation names the reason.
//
//xvlint:nopoll applies under the store lock; aborting would leave half-applied state
func applyAll(rows []Tuple) int {
	n := 0
	for _, t := range rows {
		n += t.id
	}
	return n
}

// loopAnnotated carries the annotation on the loop itself.
func loopAnnotated(rows []Tuple) int {
	n := 0
	//xvlint:nopoll bounded by the caller's batch cap
	for _, t := range rows {
		n += t.id
	}
	return n
}

// notTuples ranges ints: out of scope regardless of polling.
func notTuples(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}
