package ctxpoll

// padOuterBuggy reproduces the pre-fix shape of algebra.padOuter (one of
// the defects this analyzer caught in this PR): the outer-join padding
// pass walked every joined row and every left row with no stop probe,
// so a disconnected client kept paying for the padding of an arbitrarily
// large join.
func padOuterBuggy(rows []rowPair, left []Tuple) []rowPair {
	seen := map[int]bool{}
	for _, jr := range rows { // want `tuple loop without a cancellation poll`
		seen[jr.left.id] = true
	}
	for _, lrow := range left { // want `tuple loop without a cancellation poll`
		if !seen[lrow.id] {
			rows = append(rows, rowPair{left: lrow})
		}
	}
	return rows
}

// padOuterFixed is the shipped fix: both passes poll through the same
// stop probe the join kernels use, returning partial output the caller's
// cancellation check discards.
func padOuterFixed(rows []rowPair, left []Tuple, stop func() bool) []rowPair {
	shouldStop := func(i int) bool { return stop != nil && i%4096 == 0 && stop() }
	seen := map[int]bool{}
	for i, jr := range rows {
		if shouldStop(i) {
			return rows
		}
		seen[jr.left.id] = true
	}
	for i, lrow := range left {
		if shouldStop(i) {
			return rows
		}
		rows = appendMissing(rows, seen, lrow)
	}
	return rows
}

func appendMissing(rows []rowPair, seen map[int]bool, lrow Tuple) []rowPair {
	if !seen[lrow.id] {
		rows = append(rows, rowPair{left: lrow})
	}
	return rows
}
