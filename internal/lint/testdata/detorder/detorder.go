// Fixture for the detorder analyzer: map-range loops that must be
// flagged, the order-independent shapes that must not be, and the
// annotation escape hatch.
package detorder

import (
	"fmt"
	"sort"
)

// renderBad leaks map iteration order into a rendered string.
func renderBad(m map[string]int) string {
	out := ""
	for k, v := range m { // want `map iteration order is random`
		out += fmt.Sprintf("%s=%d;", k, v)
	}
	return out
}

// sumFloats leaks iteration order into a float accumulation (float
// addition does not commute in rounding).
func sumFloats(m map[int]float64) float64 {
	var s float64
	for _, v := range m { // want `map iteration order is random`
		s += v
	}
	return s
}

// renderSorted is the sanctioned idiom: collect keys, sort, iterate.
func renderSorted(m map[string]int) string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%s=%d;", k, m[k])
	}
	return out
}

// scale writes one distinct key per iteration: order cannot matter.
func scale(d map[int]float64, f float64) map[int]float64 {
	nd := make(map[int]float64, len(d))
	for sid, v := range d {
		nd[sid] = v * f
	}
	return nd
}

// merge accumulates per distinct key: also order-free.
func merge(dst, src map[int]float64) {
	for sid, v := range src {
		dst[sid] += v
	}
}

// mergeIndirect writes dst under a key that is NOT the range key: two
// iterations may collide on remap[sid], so the winner is order-dependent.
func mergeIndirect(dst, src map[int]float64, remap map[int]int) {
	for sid, v := range src { // want `map iteration order is random`
		dst[remap[sid]] = v
	}
}

// readOther reads the written map under another key on the RHS: the read
// observes earlier iterations' writes, so order matters.
func readOther(m map[int]float64) map[int]float64 {
	nd := map[int]float64{}
	for sid, v := range m { // want `map iteration order is random`
		nd[sid] = v + nd[sid-1]
	}
	return nd
}

// anyNegative is an existence scan: constant return, order-free.
func anyNegative(m map[int]float64) bool {
	for _, v := range m {
		if v < 0 {
			return true
		}
	}
	return false
}

// pruneZeros deletes the range key per iteration: order-free.
func pruneZeros(m map[int]float64) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// nestedExistence mirrors joinFeasible's ancestor scan: a nested map
// range whose only effect is a constant return.
func nestedExistence(lp, rp map[int]bool) bool {
	for x := range lp {
		for y := range rp {
			if x == y {
				return true
			}
		}
	}
	return false
}

// countMatches increments a plain scalar — commutative, but beyond what
// the recognizers prove — so the reviewed justification rides on an
// annotation.
func countMatches(m map[int]bool) int {
	n := 0
	//xvlint:orderindependent integer increment commutes across iterations
	for _, ok := range m {
		if ok {
			n++
		}
	}
	return n
}
