package detorder

import "sort"

// fillColumns reproduces the pre-fix shape of algebra.fillVirtualIDs
// (the defect this analyzer caught in this PR): resolving virtual slots
// by ranging the pending map appended the derived columns in map
// iteration order, and the column list is rendered verbatim into the
// /query response — the same query could answer with differently ordered
// columns on different runs.
type relation struct {
	cols []string
	rows [][]int
}

func fillColumnsBuggy(rel *relation, virtual map[int]string) {
	pending := map[int]string{}
	for k, name := range virtual {
		pending[k] = name
	}
	for len(pending) > 0 {
		for k, name := range pending { // want `map iteration order is random`
			rel.cols = append(rel.cols, name)
			delete(pending, k)
		}
	}
}

// fillColumnsFixed is the shipped fix: each round tries the slots in
// ascending order, so inserted columns land identically on every run.
func fillColumnsFixed(rel *relation, virtual map[int]string) {
	pending := map[int]string{}
	for k, name := range virtual {
		pending[k] = name
	}
	slots := make([]int, 0, len(pending))
	for k := range pending {
		slots = append(slots, k)
	}
	sort.Ints(slots)
	for len(pending) > 0 {
		for _, k := range slots {
			name, ok := pending[k]
			if !ok {
				continue
			}
			rel.cols = append(rel.cols, name)
			delete(pending, k)
		}
	}
}
