// Fixture for the errclose analyzer: discarded Close/Sync/WriteFile
// errors are flagged; handled errors, visible blank assigns, closers
// without error results, and annotated sites are not.
package errclose

type file struct{}

func (f *file) Close() error { return nil }
func (f *file) Sync() error  { return nil }

// notifier's Close returns nothing: never flagged.
type notifier struct{}

func (n *notifier) Close() {}

func writeBad(f *file) {
	f.Sync()  // want `error from Sync discarded`
	f.Close() // want `error from Close discarded`
}

func deferBad(f *file) {
	defer f.Close() // want `error from Close discarded by defer`
}

func goBad(f *file) {
	go f.Close() // want `error from Close discarded by go`
}

func writeHandled(f *file) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// blankAssign is visible in review: allowed without annotation.
func blankAssign(f *file) {
	_ = f.Close()
}

// annotated records why the error may drop.
func annotated(f *file) error {
	err := f.Sync()
	if err != nil {
		f.Close() //xvlint:errok primary error wins; nothing was renamed into place
		return err
	}
	return f.Close()
}

func noErrorResult(n *notifier) {
	n.Close()
}

// WriteFile is flagged by name+signature wherever it is defined.
func WriteFile(path string, b []byte) error { _ = path; _ = b; return nil }

func callWriteFile() {
	WriteFile("x", nil) // want `error from WriteFile discarded`
}
