package errclose

import "os"

// writeFileAtomicBuggy reproduces the pre-fix shape of
// store.writeFileAtomic (the defect this analyzer caught in this PR):
// the write-error path dropped tmp.Close()'s error silently — invisible
// in review, unlike a blank assign — on the exact path where the persist
// protocol depends on every error surfacing.
func writeFileAtomicBuggy(path string, data []byte) error {
	tmp, err := os.CreateTemp(".", ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close() // want `error from Close discarded`
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// writeFileAtomicFixed is the shipped fix: the close on the error path
// carries a reviewed annotation (the write error is the root cause and
// the temp file is removed), and the success path syncs before renaming.
func writeFileAtomicFixed(path string, data []byte) error {
	tmp, err := os.CreateTemp(".", ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close() //xvlint:errok primary error wins; the temp file is removed
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close() //xvlint:errok primary error wins; the temp file is removed
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
