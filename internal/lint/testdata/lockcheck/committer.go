// Fixture for lockcheck's ownership extension: //xvlint:owner(name)
// functions form a single-goroutine domain reachable only from same-owner
// functions or an //xvlint:ownedby(name) waived site (the `go` statement
// that starts the owning goroutine). Holding the right mutex does not
// discharge the obligation.
package lockcheck

import "sync"

type daemon struct {
	updMu sync.Mutex
	q     chan int
	n     int
}

// applyAndPersist is the maintenance entry point: committer-internal and
// additionally serialized by updMu.
//
//xvlint:owner(committer)
//xvlint:requires(updMu)
func (s *daemon) applyAndPersist() { s.n++ }

// commitLoop is the committer goroutine body.
//
//xvlint:owner(committer)
func (s *daemon) commitLoop() {
	for range s.q {
		s.commitGroup()
	}
}

// commitGroup is committer-internal: same-owner calls are free.
//
//xvlint:owner(committer)
func (s *daemon) commitGroup() {
	s.updMu.Lock()
	defer s.updMu.Unlock()
	s.applyAndPersist()
}

// start spawns the committer: the one sanctioned entry into the domain.
func (s *daemon) start() {
	//xvlint:ownedby(committer) goroutine entry point: this go statement IS the committer
	go s.commitLoop()
}

// handleUpdateBuggy reproduces, shape for shape, what the group-commit
// refactor removed from the /update handler: applying and persisting
// directly under updMu instead of enqueueing for the committer. The lock
// discharges the requires obligation but NOT the ownership one.
func (s *daemon) handleUpdateBuggy() {
	s.updMu.Lock()
	defer s.updMu.Unlock()
	s.applyAndPersist() // want `internal to the committer goroutine`
}

// wrongOwner: membership in a different domain does not help.
//
//xvlint:owner(compactor)
func (s *daemon) wrongOwner() {
	s.commitGroup() // want `internal to the committer goroutine`
}

// wrongOwnedBy names the wrong domain: not a sanctioned entry point.
func (s *daemon) wrongOwnedBy() {
	go s.commitLoop() //xvlint:ownedby(compactor) // want `internal to the committer goroutine`
}
