// Fixture for the lockcheck analyzer: calls to //xvlint:requires(mu)
// functions from callers that hold the lock, callers that don't, and the
// two sanctioned escapes (propagating the annotation, waiving the site).
package lockcheck

import "sync"

type catalog struct {
	updMu sync.Mutex
	mu    sync.RWMutex
	n     int
}

// applyLocked mutates catalog state serialized by updMu.
//
//xvlint:requires(updMu)
func (c *catalog) applyLocked() { c.n++ }

// compactLocked also runs under updMu.
//
//xvlint:requires(updMu)
func (c *catalog) compactLocked() { c.n = 0 }

// good takes the lock before the call.
func (c *catalog) good() {
	c.updMu.Lock()
	defer c.updMu.Unlock()
	c.applyLocked()
}

// bad calls without the lock.
func (c *catalog) bad() {
	c.applyLocked() // want `requires holding updMu`
}

// wrongLock holds a different mutex: not good enough.
func (c *catalog) wrongLock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.applyLocked() // want `requires holding updMu`
}

// propagated is itself annotated, pushing the obligation to ITS callers.
//
//xvlint:requires(updMu)
func (c *catalog) propagated() {
	c.applyLocked()
	c.compactLocked()
}

// waived asserts the discipline holds by other means.
func newCatalog() *catalog {
	c := &catalog{}
	c.applyLocked() //xvlint:lockheld(updMu) single-threaded construction, c has not escaped
	return c
}

// waiverWrongName does not discharge a requirement on a different mutex.
func (c *catalog) waiverWrongName() {
	c.applyLocked() //xvlint:lockheld(mu) // want `requires holding updMu`
}

// lockAfter takes the lock only after the call: positional detection
// must still flag it.
func (c *catalog) lockAfter() {
	c.applyLocked() // want `requires holding updMu`
	c.updMu.Lock()
	c.updMu.Unlock()
}
