package lockcheck

import "sync"

// server reproduces the pre-fix shape of serve.New (the defect this
// analyzer caught in this PR): construction called refreshChainGauges —
// documented as "callers hold updMu" — without taking the lock, leaving
// the discipline unenforceable the moment anyone copied the pattern into
// a concurrent path.
type server struct {
	updMu    sync.Mutex
	maxChain int64
}

//xvlint:requires(updMu)
func (s *server) refreshChainGauges() { s.maxChain++ }

func newServerBuggy() *server {
	s := &server{}
	s.refreshChainGauges() // want `requires holding updMu`
	return s
}

// newServerFixed is the shipped fix: take the uncontended lock so the
// invariant is uniform and machine-checkable.
func newServerFixed() *server {
	s := &server{}
	s.updMu.Lock()
	s.refreshChainGauges()
	s.updMu.Unlock()
	return s
}
