// Package metriccheck exercises the three frozen observability
// surfaces: label cardinality on vector metrics, registration
// discipline on the Registry, and the pinned /stats field set. The
// analyzer matches the obs types by name (CounterVec, GaugeVec,
// Registry), so the fixture models them locally and stays stdlib-only.
package metriccheck

// CounterVec models obs.CounterVec by name.
type CounterVec struct{}

// With selects the child counter for a label combination.
func (v *CounterVec) With(labels ...string) *Counter { return &Counter{} }

// Counter models obs.Counter.
type Counter struct{}

func (c *Counter) Inc() {}

// GaugeVec models obs.GaugeVec by name.
type GaugeVec struct{}

func (v *GaugeVec) With(labels ...string) *Counter { return &Counter{} }

// Registry models obs.Registry by name; the constructor methods are
// the registration surface the analyzer audits.
type Registry struct{}

func (r *Registry) Counter(name, help string) *Counter       { return &Counter{} }
func (r *Registry) CounterVec(name, help string) *CounterVec { return &CounterVec{} }
func (r *Registry) Gauge(name, help string) *Counter         { return &Counter{} }

// --- label cardinality ---

const methodLabel = "GET"

// ConstLabelOK: literals and constants are bounded.
func ConstLabelOK(v *CounterVec) {
	v.With("query", methodLabel).Inc()
}

// LocalBoundedOK is the execPath pattern: a local assigned only
// constants stays bounded.
func LocalBoundedOK(v *CounterVec, vectorized bool) {
	path := "row"
	if vectorized {
		path = "vectorized"
	}
	v.With(path).Inc()
}

// record is the instrument middleware shape: the label comes in as a
// parameter, bounded because every call site passes a literal.
func record(v *CounterVec, route string) {
	v.With(route).Inc()
}

func RecordCallers(v *CounterVec) {
	record(v, "/query")
	record(v, "/stats")
}

// RequestLabelBuggy is the cardinality defect: a request-derived
// string becomes a label and mints one time series per distinct value.
func RequestLabelBuggy(v *CounterVec, userQuery string) {
	v.With(userQuery).Inc() // want `not compile-time bounded`
}

// DerivedLocalBuggy: a local fed from an unbounded parameter is
// unbounded too.
func DerivedLocalBuggy(g *GaugeVec, q string) {
	label := q
	g.With(label).Inc() // want `not compile-time bounded`
}

// WaivedLabel records the reviewed reason the value space is bounded
// even though the analysis cannot prove it.
func WaivedLabel(v *CounterVec, status string) {
	//xvlint:boundedlabel status codes are a fixed finite registry
	v.With(status).Inc()
}

// --- registration ---

const goodName = "xvserve_queries_total"

func RegisterOK(r *Registry) *Counter {
	return r.Counter(goodName, "queries served")
}

func RegisterBadNameBuggy(r *Registry) *Counter {
	return r.Counter("http-requests", "wrong shape") // want `does not match xvserve_`
}

func RegisterNonConstBuggy(r *Registry, name string) *Counter {
	return r.Counter(name, "dynamic name") // want `must be a compile-time constant`
}

func RegisterTwiceBuggy(r *Registry) {
	r.Gauge("xvserve_epoch", "the epoch")        // want `registered 2 times`
	r.Gauge("xvserve_epoch", "the epoch, again") // want `registered 2 times`
}

// --- /stats pin ---

// Stats mirrors the real /stats body with one alien key and most of
// the frozen set missing, so both directions of drift are pinned.
type Stats struct { // want `missing frozen keys`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Views         int     `json:"views"`
	Epoch         int64   `json:"epoch"`
	Bogus         string  `json:"bogus_field"` // want `not in the frozen field set`
	internal      int
}
