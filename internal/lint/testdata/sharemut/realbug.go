package sharemut

// This file reproduces the defect shapes sharemut was built to catch —
// in-place mutation of cached extents that earlier PRs hit for real.

// FillVirtualIDsBuggy is the fillVirtualIDs defect shape: deriving
// virtual ID columns by writing into the store's cached extent, so a
// concurrent reader of the same relation observes half-rewritten rows.
func FillVirtualIDsBuggy(s *Store) *Relation {
	rel := s.Relation("v")
	fill(rel) // want `shared via`
	return rel
}

// FillVirtualIDsFixed is the shipped fix: clone the relation (header
// and row slice) before deriving, then mutate the private copy.
func FillVirtualIDsFixed(s *Store) *Relation {
	rel := s.Relation("v")
	rel = rel.Clone()
	fill(rel)
	return rel
}

// planEntry models the plan cache's value type; the plan tree inside is
// shared among every cache hit.
type planEntry struct {
	steps []string
	cost  float64
}

// planCache models serve's plan cache.
type planCache struct {
	m map[string]planEntry
}

// get returns the cached entry; hits share the plan tree.
//
//xvlint:sharedreturn
func (c *planCache) get(key string) (planEntry, bool) {
	e, ok := c.m[key]
	return e, ok
}

// RewriteCachedPlanBuggy is the plan-cache defect shape: rewriting a
// cached plan's step slice in place poisons every later hit.
func RewriteCachedPlanBuggy(c *planCache) {
	e, ok := c.get("q")
	if !ok {
		return
	}
	e.steps[0] = "rewritten" // want `shared via`
}
