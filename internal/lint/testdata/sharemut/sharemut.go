// Package sharemut exercises the clone-before-mutate analyzer: values
// obtained from //xvlint:sharedreturn accessors must not be written
// through until cloned. The types model the view store's surface
// (relations whose backing arrays are shared with the cache and every
// concurrent reader) without importing it, so the fixture stays
// self-contained.
package sharemut

import "sort"

// Tuple is one row; its cells alias the segment's decoded strings.
type Tuple []string

// Relation is a cached extent: header plus rows.
type Relation struct {
	Cols []string
	Rows []Tuple
	Name string
}

// Clone copies the header and the row slice (row values stay shared,
// which matches the real store's copy-on-write depth).
func (r *Relation) Clone() *Relation {
	return &Relation{
		Cols: append([]string(nil), r.Cols...),
		Rows: append([]Tuple(nil), r.Rows...),
		Name: r.Name,
	}
}

// Append grows the relation in place.
func (r *Relation) Append(t Tuple) {
	r.Rows = append(r.Rows, t)
}

// Store caches one extent per view name.
type Store struct {
	rels map[string]*Relation
}

// Relation returns the cached extent. The backing storage is shared
// with the cache and every concurrent reader.
//
//xvlint:sharedreturn
func (s *Store) Relation(name string) *Relation {
	return s.rels[name]
}

// Lookup is a trivial wrapper; the sharedreturn fact must propagate
// through it.
func Lookup(s *Store, name string) *Relation {
	return s.Relation(name)
}

// fill writes an ID column into every row, through its parameter.
func fill(r *Relation) {
	for i := range r.Rows {
		r.Rows[i] = append(r.Rows[i], "id")
	}
}

func DirectFieldWrite(s *Store) {
	rel := s.Relation("v")
	rel.Name = "renamed" // want `shared via`
}

func IndexWrite(s *Store) {
	rel := s.Relation("v")
	rel.Rows[0] = Tuple{"x"} // want `shared via`
}

func AppendIntoShared(s *Store) []string {
	rel := s.Relation("v")
	return append(rel.Cols, "extra") // want `shared via`
}

func MutatingMethod(s *Store) {
	rel := s.Relation("v")
	rel.Append(Tuple{"x"}) // want `shared via`
}

func RangeRowWrite(s *Store) {
	rel := s.Relation("v")
	for _, row := range rel.Rows {
		row[0] = "id" // want `shared via`
	}
}

func ViaWrapper(s *Store) {
	rel := Lookup(s, "v")
	rel.Cols[0] = "renamed" // want `shared via`
}

func SortShared(s *Store) {
	rel := s.Relation("v")
	sort.Slice(rel.Rows, func(i, j int) bool { // want `shared via`
		return len(rel.Rows[i]) < len(rel.Rows[j])
	})
}

func CopyIntoShared(s *Store, fresh []Tuple) {
	rel := s.Relation("v")
	copy(rel.Rows, fresh) // want `shared via`
}

// CloneFirst is the sanctioned idiom: a bare reassignment through
// Clone launders the taint.
func CloneFirst(s *Store) {
	rel := s.Relation("v")
	rel = rel.Clone()
	rel.Name = "mine"
	fill(rel)
}

// CopyOut clones by hand: copying FROM the shared extent into a fresh
// slice is reading, not writing.
func CopyOut(s *Store) []Tuple {
	rel := s.Relation("v")
	rows := make([]Tuple, len(rel.Rows))
	copy(rows, rel.Rows)
	rows[0] = Tuple{"x"}
	return rows
}

// StructCopyStaysLocal: assigning a field of a by-value copy never
// reaches the shared storage, because no pointer-like step is crossed.
type header struct{ Name string }

type described struct {
	Hdr  header
	Rows []Tuple
}

// Described returns the shared descriptor.
//
//xvlint:sharedreturn
func (s *Store) Described(name string) described {
	return described{}
}

func StructCopyStaysLocal(s *Store) header {
	d := s.Described("v")
	h := d.Hdr
	h.Name = "local"
	return h
}

// Waived: the annotation records the reviewed reason aliasing is safe
// here (e.g. single-owner construction before publication).
func WaivedWrite(s *Store) {
	rel := s.Relation("v")
	//xvlint:aliasok construction path: store not yet published to readers
	rel.Name = "boot"
}

// ReadOnly never writes; reads through shared values are always fine.
func ReadOnly(s *Store) int {
	rel := s.Relation("v")
	n := len(rel.Rows)
	for _, row := range rel.Rows {
		n += len(row)
	}
	return n
}
