// Package snapdiscipline exercises the epoch-snapshot rule: request
// handlers must obtain extents through Snapshot(), never by reading the
// live store directly. The types model serve's surface (a Server
// holding a //xvlint:livestore field) without importing it.
package snapdiscipline

// Relation is a cached extent.
type Relation struct {
	Rows [][]string
}

// Store models the view store.
type Store struct {
	rels  map[string]*Relation
	epoch int64
}

// Relation returns the live extent, shared with concurrent readers.
//
//xvlint:sharedreturn
func (s *Store) Relation(name string) *Relation {
	return s.rels[name]
}

// Snapshot freezes the store at the current epoch — the sanctioned
// read path.
func (s *Store) Snapshot() *Store {
	return &Store{rels: s.rels, epoch: s.epoch}
}

// Epoch reads a counter, not extents.
func (s *Store) Epoch() int64 {
	return s.epoch
}

// Server holds the live store behind the annotated field.
type Server struct {
	// st is the live store; handlers read extents through Snapshot().
	st *Store //xvlint:livestore
	// started is NOT the live store: the annotation must not bleed
	// from the field above onto this one.
	started bool
}

// execute reads extents from whatever store it is handed; the
// reads-extents fact marks its first parameter.
func execute(st *Store, q string) *Relation {
	return st.Relation(q)
}

// epochOf touches only the counter; handing it the live store is fine.
func epochOf(st *Store) int64 {
	return st.Epoch()
}

// HandleQueryBuggy is the pre-snapshot defect shape: reading an extent
// straight off the live store tears across a concurrent update.
func (s *Server) HandleQueryBuggy(q string) *Relation {
	return s.st.Relation(q) // want `shared-returning accessor`
}

// HandleQueryFixed snapshots first: every read in the request sees one
// epoch.
func (s *Server) HandleQueryFixed(q string) *Relation {
	es := s.st.Snapshot()
	return es.Relation(q)
}

// HandleExecBuggy leaks the live store into an extent-reading callee —
// caught transitively through the reads-extents fact.
func (s *Server) HandleExecBuggy(q string) *Relation {
	return execute(s.st, q) // want `reads extents from this argument`
}

func (s *Server) HandleExecFixed(q string) *Relation {
	return execute(s.st.Snapshot(), q)
}

// AliasBuggy copies the live store into a variable, escaping the
// discipline.
func (s *Server) AliasBuggy() {
	st := s.st // want `aliased into a variable`
	_ = st
}

// ReturnBuggy hands the live store to the caller.
func (s *Server) ReturnBuggy() *Store {
	return s.st // want `returned to the caller`
}

// EpochOK: the callee's fact set proves it never reads extents.
func (s *Server) EpochOK() int64 {
	return epochOf(s.st)
}

// CompareOK: nil checks do not leak the store.
func (s *Server) CompareOK() bool {
	return s.st == nil
}

// InitOK: assigning the field itself is construction, not a read.
func (s *Server) InitOK(st *Store) {
	s.st = st
}

// UpdateWaived models the update path: it holds the update lock and
// deliberately wants the live store, recorded by the annotation.
func (s *Server) UpdateWaived(q string) *Relation {
	//xvlint:snapok update path: serialized by the update lock, live store intended
	return s.st.Relation(q)
}

// StartedOK uses the unannotated neighbour field freely.
func (s *Server) StartedOK() bool {
	return s.started
}
