package vergate

// This file reproduces the defect that motivated the guard rule: the
// caret-ID format change made version-1 sequential ordinals silently
// misread as caret IDs, and the decoder of the day only checked the
// ceiling — old files decoded as garbage instead of being refused.

const (
	// CaretVersion is the version that changed the ID encoding.
	CaretVersion = 2
	// MinCaretVersion still admits version 1, but no guard refuses
	// anything below it.
	MinCaretVersion = 1 // want `no decode guard compares the wire version against both`
)

// decodeCaretBuggy is the pre-fix shape: a ceiling check only, no
// floor, so the readable range exists in the constants but not in the
// code.
func decodeCaretBuggy(ver int) string {
	if ver > CaretVersion {
		return "refused"
	}
	return "decoded"
}
