// Package vergate exercises the format-version gate: floor/current
// ordering, range guards, per-version decode arms, the verok waiver,
// and the format.manifest drift checks (this package's manifest is
// deliberately stale — see the want comments inside it).
package vergate

// The healthy pair: floor below current, a range guard, and a decode
// arm for the one readable version above the floor.
const (
	// Version is the current format version.
	Version = 3
	// MinReadVersion is the decode floor.
	MinReadVersion = 2
)

// decode models the segment decoder: refuse out-of-range versions,
// then branch on the readable ones.
func decode(ver int) string {
	if ver < MinReadVersion || ver > Version {
		return "refused"
	}
	if ver >= 3 {
		return "zones"
	}
	return "flat"
}

// The inverted pair: the floor exceeds the version being written.
const (
	BadVersion    = 2
	MinBadVersion = 3 // want `exceeds BadVersion`
)

func decodeBad(ver int) string {
	if ver < MinBadVersion || ver > BadVersion {
		return "refused"
	}
	return "decoded"
}

// The gap pair: version 2 is readable but nothing in the decoder
// branches on it, so it silently decodes like version 1.
const (
	GapVersion    = 2 // want `no decode arm mentions it`
	MinGapVersion = 1
)

func decodeGap(ver int) string {
	if ver < MinGapVersion || ver > GapVersion {
		return "refused"
	}
	return "decoded"
}

// The waived pair: the payload is self-describing, so both readable
// versions deliberately share one decode path.
const (
	// FlexVersion's readable range needs no version arm.
	//
	//xvlint:verok(2) payload is self-describing; v1 and v2 share one decode path
	FlexVersion    = 2
	MinFlexVersion = 1
)

func decodeFlex(ver int) string {
	if ver < MinFlexVersion || ver > FlexVersion {
		return "refused"
	}
	return "decoded"
}

// StaleVersion drifted from the value the manifest recorded.
const StaleVersion = 2

// OrphanVersion is missing from the manifest entirely.
const OrphanVersion = 7 // want `not recorded in format.manifest`
