package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// VerGate keeps the on-disk format's version story coherent. Three
// rules, per version-constant pair (MinXVersion / XVersion, e.g.
// MinReadVersion+Version for segments, MinCatalogVersion+CatalogVersion
// for the manifest):
//
//   - the floor may not exceed the current version (MinX <= X);
//   - a decode guard comparing the wire version against BOTH constants
//     must exist (the refuse-out-of-range check PR 3 introduced when
//     version-1 ordinals became silently misreadable);
//   - every version in the readable range (MinX+1 .. X) must have a
//     decode arm — a comparison or switch case against that version
//     number outside the guard itself (the `ver >= 3` zone-map arm).
//     A version with no format-conditional decoding (readable because
//     the payload is forward-compatible) carries //xvlint:verok(<n>)
//     on the constant declaration with the reason.
//
// Independent of the pairs, the package carries a format.manifest
// recording every version constant's value and a content hash of every
// encode-path file. Editing an encoder without revisiting the version
// constants now fails lint until `go run ./cmd/xvlint -writemanifest
// <pkg>` is rerun — making "did this change the wire format?" an
// explicit question in every such diff.
var VerGate = &Analyzer{
	Name:    "vergate",
	Summary: "version floors ordered, readable versions have decode arms, format files manifest-hashed",
	Doc: "flags version-constant pairs with MinX > X, readable versions without a decode arm, " +
		"missing range guards, and encode-path files changed without regenerating format.manifest " +
		"(go run ./cmd/xvlint -writemanifest <pkg>)",
	Roots: []string{"xmlviews/internal/store"},
	Run:   runVerGate,
}

// ManifestName is the per-package format manifest vergate checks.
const ManifestName = "format.manifest"

// versionConst is one package-level integer constant whose name ends in
// "Version".
type versionConst struct {
	name string
	val  int64
	pos  token.Pos
	obj  types.Object
}

func runVerGate(pass *Pass) {
	consts := versionConsts(pass.Pkg)
	pairs := versionPairs(consts)
	for _, p := range pairs {
		checkVersionPair(pass, p[0], p[1])
	}
	checkManifest(pass, consts)
}

// versionConsts collects the package's *Version integer constants.
func versionConsts(pkg *Package) []versionConst {
	var out []versionConst
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if !strings.HasSuffix(name.Name, "Version") {
						continue
					}
					obj, ok := pkg.Info.Defs[name].(*types.Const)
					if !ok {
						continue
					}
					v, ok := constant.Int64Val(constant.ToInt(obj.Val()))
					if !ok {
						continue
					}
					out = append(out, versionConst{name.Name, v, name.Pos(), obj})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// versionPairs matches MinX floors with their current-version partner:
// MinCatalogVersion pairs with CatalogVersion, MinReadVersion (no
// ReadVersion exists) with Version.
func versionPairs(consts []versionConst) [][2]versionConst {
	byName := map[string]versionConst{}
	for _, c := range consts {
		byName[c.name] = c
	}
	var pairs [][2]versionConst
	for _, c := range consts {
		if !strings.HasPrefix(c.name, "Min") {
			continue
		}
		base := strings.TrimPrefix(c.name, "Min")
		cur, ok := byName[base]
		if !ok {
			cur, ok = byName[strings.Replace(base, "Read", "", 1)]
		}
		if ok {
			pairs = append(pairs, [2]versionConst{c, cur})
		}
	}
	return pairs
}

func checkVersionPair(pass *Pass, min, cur versionConst) {
	if min.val > cur.val {
		pass.Reportf(min.pos,
			"%s (%d) exceeds %s (%d): the floor of the readable range is above the version being written",
			min.name, min.val, cur.name, cur.val)
		return
	}
	// Guards: expressions mentioning BOTH constants of the pair — the
	// range check that refuses unreadable versions.
	var guards []ast.Expr
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			if usesObject(pass.Pkg.Info, be, min.obj) && usesObject(pass.Pkg.Info, be, cur.obj) {
				guards = append(guards, be)
				return false
			}
			return true
		})
	}
	if len(guards) == 0 {
		pass.Reportf(min.pos,
			"no decode guard compares the wire version against both %s and %s: out-of-range versions "+
				"would be decoded blind instead of refused",
			min.name, cur.name)
		return
	}
	inGuard := func(pos token.Pos) bool {
		for _, g := range guards {
			if g.Pos() <= pos && pos < g.End() {
				return true
			}
		}
		return false
	}
	// The wire-version expressions this pair's guards test (`ver`,
	// `c.FormatVersion`). A decode arm counts only when it compares one
	// of THESE, so codec's `ver >= 3` cannot satisfy the catalog pair.
	verExprs := guardVersionExprs(pass.Pkg.Info, guards)
	for v := min.val + 1; v <= cur.val; v++ {
		if versionWaived(pass.Pkg, min, cur, v) || hasDecodeArm(pass, v, verExprs, inGuard) {
			continue
		}
		pass.Reportf(cur.pos,
			"version %d is readable (%s=%d .. %s=%d) but no decode arm mentions it: either the decoder "+
				"silently treats it like another version, or the arm compares a different constant — add the "+
				"arm or annotate the constant //xvlint:verok(%d) with why none is needed",
			v, min.name, min.val, cur.name, cur.val, v)
	}
}

// versionWaived reports an //xvlint:verok(<n>) annotation on either
// constant of the pair.
func versionWaived(pkg *Package, min, cur versionConst, v int64) bool {
	for _, pos := range []token.Pos{min.pos, cur.pos} {
		for _, d := range pkg.directivesAt(pos) {
			if d.Name == "verok" && d.Arg == strconv.FormatInt(v, 10) {
				return true
			}
		}
	}
	return false
}

// guardVersionExprs extracts the non-constant operands of the guards'
// comparisons: the expressions that carry the wire version.
func guardVersionExprs(info *types.Info, guards []ast.Expr) []ast.Expr {
	var out []ast.Expr
	for _, g := range guards {
		ast.Inspect(g, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
				for _, side := range []ast.Expr{be.X, be.Y} {
					if tv, ok := info.Types[side]; ok && tv.Value == nil {
						out = append(out, side)
					}
				}
			}
			return true
		})
	}
	return out
}

// hasDecodeArm looks for a comparison or switch case, outside any range
// guard, that tests one of the pair's wire-version expressions against
// the literal version value.
func hasDecodeArm(pass *Pass, v int64, verExprs []ast.Expr, inGuard func(token.Pos) bool) bool {
	info := pass.Pkg.Info
	isVer := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		if !ok || tv.Value == nil {
			return false
		}
		got, ok := constant.Int64Val(constant.ToInt(tv.Value))
		return ok && got == v
	}
	isWireExpr := func(e ast.Expr) bool {
		for _, w := range verExprs {
			if sameObject(info, e, w) {
				return true
			}
		}
		return false
	}
	found := false
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if found {
				return false
			}
			switch s := n.(type) {
			case *ast.BinaryExpr:
				switch s.Op {
				case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
					if inGuard(s.Pos()) {
						return true
					}
					if (isVer(s.X) && isWireExpr(s.Y)) || (isVer(s.Y) && isWireExpr(s.X)) {
						found = true
					}
				}
			case *ast.SwitchStmt:
				if s.Tag == nil || !isWireExpr(s.Tag) {
					return true
				}
				ast.Inspect(s.Body, func(c ast.Node) bool {
					if cc, ok := c.(*ast.CaseClause); ok {
						for _, e := range cc.List {
							if isVer(e) && !inGuard(e.Pos()) {
								found = true
							}
						}
					}
					return !found
				})
			}
			return !found
		})
	}
	return found
}

// --- manifest ---

// manifestEntry is one parsed format.manifest line.
type manifestEntry struct {
	line int
	kind string // "version" or "file"
	name string
	val  string
}

// parseManifest reads a format.manifest, ignoring blanks and # comments
// (fixture want-expectations ride in comments).
func parseManifest(path string) ([]manifestEntry, bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	var out []manifestEntry
	for i, line := range strings.Split(string(data), "\n") {
		if j := strings.Index(line, "#"); j >= 0 {
			line = line[:j]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 3 || (fields[0] != "version" && fields[0] != "file") {
			return nil, true, fmt.Errorf("%s:%d: want `version <Name> <value>` or `file <name> <sha256>`", path, i+1)
		}
		out = append(out, manifestEntry{line: i + 1, kind: fields[0], name: fields[1], val: fields[2]})
	}
	return out, true, nil
}

func checkManifest(pass *Pass, consts []versionConst) {
	if len(pass.Pkg.Files) == 0 {
		return
	}
	dir := filepath.Dir(pass.Pkg.Fset.Position(pass.Pkg.Files[0].Pos()).Filename)
	path := filepath.Join(dir, ManifestName)
	entries, exists, err := parseManifest(path)
	if err != nil {
		pass.ReportAt(token.Position{Filename: path, Line: 1, Column: 1}, "unreadable manifest: %v", err)
		return
	}
	at := func(line int) token.Position {
		return token.Position{Filename: path, Line: line, Column: 1}
	}
	if !exists {
		if len(consts) == 0 {
			return // nothing versioned to pin
		}
		pass.Reportf(pass.Pkg.Files[0].Pos(),
			"package has version constants but no %s: run `go run ./cmd/xvlint -writemanifest ./%s` so "+
				"encode-path edits are tied to a format-version review", ManifestName, relDir(dir))
		return
	}
	byName := map[string]versionConst{}
	for _, c := range consts {
		byName[c.name] = c
	}
	covered := map[string]bool{}
	for _, e := range entries {
		switch e.kind {
		case "version":
			covered["v:"+e.name] = true
			c, ok := byName[e.name]
			if !ok {
				pass.ReportAt(at(e.line), "manifest lists constant %s, which no longer exists: regenerate with -writemanifest", e.name)
				continue
			}
			if strconv.FormatInt(c.val, 10) != e.val {
				pass.ReportAt(at(e.line),
					"%s changed (%s in the manifest, %d in the code): confirm readers of the old format still "+
						"work, then regenerate with -writemanifest", e.name, e.val, c.val)
			}
		case "file":
			covered["f:"+e.name] = true
			sum, err := fileSHA256(filepath.Join(dir, e.name))
			if err != nil {
				pass.ReportAt(at(e.line), "manifest lists %s, which is unreadable (%v): regenerate with -writemanifest", e.name, err)
				continue
			}
			if sum != e.val {
				pass.ReportAt(at(e.line),
					"encode-path file %s changed without a format-version review: check whether the wire format "+
						"moved (bump the version constants if so), then regenerate with -writemanifest", e.name)
			}
		}
	}
	for _, c := range consts {
		if !covered["v:"+c.name] {
			pass.Reportf(c.pos, "%s is not recorded in %s: regenerate with -writemanifest", c.name, ManifestName)
		}
	}
	for _, name := range packageGoFiles(dir) {
		if !covered["f:"+name] {
			pass.ReportAt(at(1), "%s is not covered by the manifest: regenerate with -writemanifest", name)
		}
	}
}

// WriteManifest regenerates dir/format.manifest for a package with the
// given version constants; the CLI's -writemanifest flag calls it.
func WriteManifest(pkg *Package) (string, error) {
	if len(pkg.Files) == 0 {
		return "", fmt.Errorf("lint: no files in %s", pkg.Path)
	}
	dir := filepath.Dir(pkg.Fset.Position(pkg.Files[0].Pos()).Filename)
	var b strings.Builder
	fmt.Fprintf(&b, "# Format manifest for %s, checked by xvlint's vergate analyzer.\n", pkg.Path)
	b.WriteString("# Regenerate after any deliberate format change: go run ./cmd/xvlint -writemanifest <pkg>\n")
	for _, c := range versionConsts(pkg) {
		fmt.Fprintf(&b, "version %s %d\n", c.name, c.val)
	}
	for _, name := range packageGoFiles(dir) {
		sum, err := fileSHA256(filepath.Join(dir, name))
		if err != nil {
			return "", fmt.Errorf("lint: %v", err)
		}
		fmt.Fprintf(&b, "file %s %s\n", name, sum)
	}
	path := filepath.Join(dir, ManifestName)
	return path, os.WriteFile(path, []byte(b.String()), 0o644)
}

// packageGoFiles lists the non-test Go files in dir, sorted.
func packageGoFiles(dir string) []string {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range ents {
		name := e.Name()
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

func fileSHA256(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// relDir makes dir relative to the working directory for messages.
func relDir(dir string) string {
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, dir); err == nil {
			return rel
		}
	}
	return dir
}
