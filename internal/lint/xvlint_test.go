package lint_test

import (
	"testing"

	"xmlviews/internal/lint"
	"xmlviews/internal/lint/linttest"
)

// The fixture packages under testdata/ pin each analyzer from both
// sides: lines with a `// want "regexp"` comment must be flagged with a
// matching message, every other line must stay silent. Each fixture also
// contains a *Buggy function reproducing, shape for shape, a real defect
// this PR's first xvlint run found in the repo — so the analyzers are
// demonstrably able to catch the bugs they were built for.

func TestDetOrderFixtures(t *testing.T) {
	linttest.Run(t, "testdata/detorder", lint.DetOrder)
}

func TestLockCheckFixtures(t *testing.T) {
	linttest.Run(t, "testdata/lockcheck", lint.LockCheck)
}

func TestCtxPollFixtures(t *testing.T) {
	linttest.Run(t, "testdata/ctxpoll", lint.CtxPoll)
}

func TestErrCloseFixtures(t *testing.T) {
	linttest.Run(t, "testdata/errclose", lint.ErrClose)
}

func TestShareMutFixtures(t *testing.T) {
	linttest.Run(t, "testdata/sharemut", lint.ShareMut)
}

func TestSnapDisciplineFixtures(t *testing.T) {
	linttest.Run(t, "testdata/snapdiscipline", lint.SnapDiscipline)
}

func TestMetricCheckFixtures(t *testing.T) {
	linttest.Run(t, "testdata/metriccheck", lint.MetricCheck)
}

func TestVerGateFixtures(t *testing.T) {
	linttest.Run(t, "testdata/vergate", lint.VerGate)
}

// TestRepoIsClean runs the full suite over the real codebase: the tree
// must carry zero outstanding diagnostics, so a change that violates an
// invariant fails `go test` even before the CI lint job runs.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	prog, err := lint.LoadPackages([]string{"xmlviews/..."})
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	diags := lint.Run(prog, lint.All(), lint.RunOptions{})
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func TestAppliesTo(t *testing.T) {
	a := &lint.Analyzer{Roots: []string{"xmlviews/internal/store"}}
	for path, want := range map[string]bool{
		"xmlviews/internal/store":     true,
		"xmlviews/internal/store/sub": true,
		"xmlviews/internal/storage":   false,
		"xmlviews/internal/serve":     false,
	} {
		if got := a.AppliesTo(path); got != want {
			t.Errorf("AppliesTo(%q) = %v, want %v", path, got, want)
		}
	}
	all := &lint.Analyzer{}
	if !all.AppliesTo("anything/at/all") {
		t.Errorf("an analyzer without Roots must apply everywhere")
	}
}
