package maintain

import (
	"strings"
	"testing"

	"xmlviews/internal/pattern"
)

func matchLast(t *testing.T, patSrc string, nodeLabel, path string) bool {
	t.Helper()
	p := pattern.MustParse(patSrc)
	var pn *pattern.Node
	for _, n := range p.Nodes() {
		if n.Label == nodeLabel {
			pn = n
		}
	}
	if pn == nil {
		t.Fatalf("pattern %s has no node %q", patSrc, nodeLabel)
	}
	return chainMatchesPath(chainOf(pn), strings.Split(path, "/"))
}

func TestChainMatchesPath(t *testing.T) {
	cases := []struct {
		pat, node, path string
		want            bool
	}{
		{`a(/b[id](/c[v]))`, "c", "a/b/c", true},
		{`a(/b[id](/c[v]))`, "c", "a/b/d", false},
		{`a(/b[id](/c[v]))`, "b", "a/b", true},
		{`a(//c[v])`, "c", "a/b/c", true},
		{`a(//c[v])`, "c", "a/c", true},
		{`a(//c[v])`, "c", "a/b/c/d", false}, // must end at c
		{`a(/b(//d[id]))`, "d", "a/b/x/y/d", true},
		{`a(/b(//d[id]))`, "d", "a/x/y/d", false}, // b must be the first step
		{`a(//*[id])`, "*", "a/anything", true},
		{`a(/b[id] /c[v])`, "c", "a/c", true},
		{`b(//c[v])`, "c", "a/b/c", false}, // root label must match
		// Descendant chains may skip several levels then continue by child.
		{`a(//b(/c[id]))`, "c", "a/x/b/c", true},
		{`a(//b(/c[id]))`, "c", "a/b/x/c", false},
		// A //-step can land on several candidate positions; any viable
		// split must be found (b at position 1 fails, position 3 works).
		{`a(//b(/b[id](/c[v])))`, "c", "a/b/x/b/b/c", true},
	}
	for _, c := range cases {
		if got := matchLast(t, c.pat, c.node, c.path); got != c.want {
			t.Errorf("pattern %s node %s vs path %s = %v, want %v", c.pat, c.node, c.path, got, c.want)
		}
	}
}
