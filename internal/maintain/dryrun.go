package maintain

import (
	"fmt"

	"xmlviews/internal/xmltree"
)

// DryRun validates update batches against a document by actually applying
// them, with full undo. A group committer uses it to give each queued
// request its own verdict before sealing a merged batch: requests are
// validated in queue order against the document as the earlier accepted
// requests will have left it (an insert under a node a prior request
// deletes must fail, exactly as the merged apply would fail), then Undo
// restores the document so the real maintenance pass starts from the
// original state.
//
// A DryRun owns the document between NewDryRun and Undo: callers must not
// read or mutate it concurrently (the serving layer's single committer
// goroutine satisfies this by construction).
type DryRun struct {
	doc  *xmltree.Document
	undo []func()
}

// NewDryRun starts a validation pass over doc.
func NewDryRun(doc *xmltree.Document) *DryRun {
	return &DryRun{doc: doc}
}

// Apply applies one request's updates all-or-nothing: on error the
// request's own partial effects are rolled back (earlier accepted
// requests stay applied) and the error identifies the failing update with
// the same "update %d" wording ComputeDeltas uses, so a request rejected
// at validation reads identically to one rejected by a solo apply.
func (d *DryRun) Apply(updates []xmltree.Update) error {
	var local []func()
	for i, u := range updates {
		_, un, err := applyWithUndo(d.doc, u)
		if err != nil {
			rollback(local)
			return fmt.Errorf("maintain: update %d: %w", i, err)
		}
		local = append(local, un)
	}
	d.undo = append(d.undo, local...)
	return nil
}

// Undo restores the document to its state at NewDryRun, reversing every
// accepted Apply. Node identity is preserved (subtrees are spliced back,
// not re-parsed), so a subsequent real apply re-derives the same IDs.
// Undo is idempotent.
func (d *DryRun) Undo() {
	rollback(d.undo)
	d.undo = nil
}
