package maintain

import (
	"strings"
	"testing"

	"xmlviews/internal/xmltree"
)

func TestDryRunValidatesInQueueOrder(t *testing.T) {
	doc := xmltree.MustParseParen(`a(b "1" c "2")`)
	b := doc.Root.Children[0]
	c := doc.Root.Children[1]
	before := doc.Root.String()

	dry := NewDryRun(doc)
	// Request 1: delete b — accepted.
	if err := dry.Apply([]xmltree.Update{{Kind: xmltree.UpdateDelete, Target: b.ID}}); err != nil {
		t.Fatalf("request 1: %v", err)
	}
	// Request 2: insert under the node request 1 deleted — must fail,
	// exactly as the merged apply would.
	err := dry.Apply([]xmltree.Update{
		{Kind: xmltree.UpdateInsert, Parent: b.ID, Subtree: xmltree.MustParseParen(`d "3"`)},
	})
	if err == nil {
		t.Fatal("insert under a deleted node validated clean")
	}
	if !strings.Contains(err.Error(), "update 0") {
		t.Fatalf("error %q does not carry the per-update index wording", err)
	}
	// Request 3: touch a surviving node — accepted.
	if err := dry.Apply([]xmltree.Update{{Kind: xmltree.UpdateSetValue, Target: c.ID, Value: "9"}}); err != nil {
		t.Fatalf("request 3: %v", err)
	}

	dry.Undo()
	if got := doc.Root.String(); got != before {
		t.Fatalf("Undo did not restore the document:\n got %s\nwant %s", got, before)
	}
	if doc.Root.Children[0] != b || doc.Root.Children[1] != c {
		t.Fatal("Undo did not restore node identity")
	}
	dry.Undo() // idempotent
	if got := doc.Root.String(); got != before {
		t.Fatalf("second Undo corrupted the document: %s", got)
	}
}

func TestDryRunApplyIsAllOrNothingPerRequest(t *testing.T) {
	doc := xmltree.MustParseParen(`a(b "1")`)
	b := doc.Root.Children[0]
	before := doc.Root.String()

	dry := NewDryRun(doc)
	err := dry.Apply([]xmltree.Update{
		{Kind: xmltree.UpdateSetValue, Target: b.ID, Value: "2"},
		{Kind: xmltree.UpdateDelete, Target: xmltree.MustParseParen(`z`).Root.ID}, // unknown target
	})
	if err == nil {
		t.Fatal("bad second update validated clean")
	}
	// The failing request's first update must have been rolled back even
	// before Undo.
	if got := doc.Root.String(); got != before {
		t.Fatalf("failing request leaked partial effects: %s", got)
	}
	dry.Undo()
	if got := doc.Root.String(); got != before {
		t.Fatalf("document corrupted after Undo: %s", got)
	}
}
