package maintain

import (
	"encoding/json"
	"fmt"

	"xmlviews/internal/nodeid"
	"xmlviews/internal/xmltree"
)

// UpdateJSON is the wire form of one update, used by the xvserve /update
// endpoint and the xvstore apply subcommand:
//
//	{"op":"insert","parent":"1.3","before":"1.3.5","subtree":"name \"pen\""}
//	{"op":"delete","target":"1.3.5"}
//	{"op":"rename","target":"1.3","label":"item"}
//	{"op":"settext","target":"1.3","value":"7"}
//
// IDs are dotted Dewey identifiers; subtrees use the parenthesized tree
// notation of xmltree.ParseParen.
type UpdateJSON struct {
	Op      string `json:"op"`
	Parent  string `json:"parent,omitempty"`
	Before  string `json:"before,omitempty"`
	Subtree string `json:"subtree,omitempty"`
	Target  string `json:"target,omitempty"`
	Label   string `json:"label,omitempty"`
	Value   string `json:"value,omitempty"`
}

// updatesEnvelope is the request body form: {"updates":[...]}.
type updatesEnvelope struct {
	Updates []UpdateJSON `json:"updates"`
}

// ParseUpdates decodes an update batch from JSON: either a bare array of
// update objects or an {"updates": [...]} envelope.
func ParseUpdates(data []byte) ([]xmltree.Update, error) {
	var raw []UpdateJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		var env updatesEnvelope
		if err2 := json.Unmarshal(data, &env); err2 != nil || env.Updates == nil {
			return nil, fmt.Errorf("maintain: update batch is neither an array nor an {\"updates\":[...]} object: %v", err)
		}
		raw = env.Updates
	}
	out := make([]xmltree.Update, 0, len(raw))
	for i, r := range raw {
		u, err := r.Decode()
		if err != nil {
			return nil, fmt.Errorf("maintain: update %d: %w", i, err)
		}
		out = append(out, u)
	}
	return out, nil
}

// Decode converts the wire form to a typed update.
func (r UpdateJSON) Decode() (xmltree.Update, error) {
	id := func(field, s string, required bool) (nodeid.ID, error) {
		if s == "" {
			if required {
				return nil, fmt.Errorf("%s op needs %q", r.Op, field)
			}
			return nil, nil
		}
		v, err := nodeid.Parse(s)
		if err != nil {
			return nil, fmt.Errorf("bad %s: %v", field, err)
		}
		return v, nil
	}
	switch r.Op {
	case "insert":
		parent, err := id("parent", r.Parent, true)
		if err != nil {
			return xmltree.Update{}, err
		}
		before, err := id("before", r.Before, false)
		if err != nil {
			return xmltree.Update{}, err
		}
		if r.Subtree == "" {
			return xmltree.Update{}, fmt.Errorf("insert op needs a subtree")
		}
		sub, err := xmltree.ParseParen(r.Subtree)
		if err != nil {
			return xmltree.Update{}, fmt.Errorf("bad subtree: %v", err)
		}
		return xmltree.Update{Kind: xmltree.UpdateInsert, Parent: parent, Before: before, Subtree: sub}, nil
	case "delete":
		target, err := id("target", r.Target, true)
		if err != nil {
			return xmltree.Update{}, err
		}
		return xmltree.Update{Kind: xmltree.UpdateDelete, Target: target}, nil
	case "rename":
		target, err := id("target", r.Target, true)
		if err != nil {
			return xmltree.Update{}, err
		}
		if r.Label == "" {
			return xmltree.Update{}, fmt.Errorf("rename op needs a label")
		}
		return xmltree.Update{Kind: xmltree.UpdateRename, Target: target, Label: r.Label}, nil
	case "settext":
		target, err := id("target", r.Target, true)
		if err != nil {
			return xmltree.Update{}, err
		}
		return xmltree.Update{Kind: xmltree.UpdateSetValue, Target: target, Value: r.Value}, nil
	}
	return xmltree.Update{}, fmt.Errorf("unknown op %q (want insert, delete, rename or settext)", r.Op)
}

// Encode converts a typed update to its wire form.
func Encode(u xmltree.Update) UpdateJSON {
	out := UpdateJSON{Op: u.Kind.String()}
	switch u.Kind {
	case xmltree.UpdateInsert:
		out.Parent = u.Parent.String()
		if !u.Before.IsNull() {
			out.Before = u.Before.String()
		}
		if u.Subtree != nil && u.Subtree.Root != nil {
			out.Subtree = u.Subtree.Root.String()
		}
	case xmltree.UpdateDelete:
		out.Target = u.Target.String()
	case xmltree.UpdateRename:
		out.Target = u.Target.String()
		out.Label = u.Label
	case xmltree.UpdateSetValue:
		out.Target = u.Target.String()
		out.Value = u.Value
	}
	return out
}

// EncodeUpdates renders a batch in the {"updates":[...]} envelope form.
func EncodeUpdates(ups []xmltree.Update) ([]byte, error) {
	env := updatesEnvelope{Updates: make([]UpdateJSON, len(ups))}
	for i, u := range ups {
		env.Updates[i] = Encode(u)
	}
	return json.Marshal(env)
}
