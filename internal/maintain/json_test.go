package maintain

import (
	"testing"

	"xmlviews/internal/xmltree"
)

func TestParseUpdatesForms(t *testing.T) {
	bare := `[{"op":"insert","parent":"1","subtree":"b \"x\""},{"op":"delete","target":"1.1"}]`
	env := `{"updates":` + bare + `}`
	for _, src := range []string{bare, env} {
		ups, err := ParseUpdates([]byte(src))
		if err != nil {
			t.Fatalf("ParseUpdates(%s): %v", src, err)
		}
		if len(ups) != 2 || ups[0].Kind != xmltree.UpdateInsert || ups[1].Kind != xmltree.UpdateDelete {
			t.Fatalf("decoded %v", ups)
		}
		if ups[0].Subtree.Root.Label != "b" || ups[0].Subtree.Root.Value != "x" {
			t.Fatalf("subtree decoded wrong: %s", ups[0].Subtree.Root)
		}
	}
}

func TestParseUpdatesErrors(t *testing.T) {
	cases := []string{
		`{"nope":1}`,
		`[{"op":"insert","parent":"1"}]`,                                  // no subtree
		`[{"op":"insert","subtree":"b"}]`,                                 // no parent
		`[{"op":"insert","parent":"1.2","subtree":"b"}]`,                  // ill-formed ID (even tail)
		`[{"op":"insert","parent":"1","subtree":"b("}]`,                   // bad paren
		`[{"op":"delete"}]`,                                               // no target
		`[{"op":"rename","target":"1.1"}]`,                                // no label
		`[{"op":"teleport","target":"1.1"}]`,                              // unknown op
		`[{"op":"insert","parent":"x","subtree":"b"}]`,                    // unparseable ID
		`[{"op":"insert","parent":"1","before":"", "subtree":"b"}]` + "x", // trailing garbage
	}
	for _, src := range cases {
		if _, err := ParseUpdates([]byte(src)); err == nil {
			t.Errorf("ParseUpdates(%s) succeeded, want error", src)
		}
	}
}

func TestUpdateJSONRoundTrip(t *testing.T) {
	ups := []xmltree.Update{
		{Kind: xmltree.UpdateInsert, Parent: []uint32{1, 3}, Before: []uint32{1, 3, 1},
			Subtree: xmltree.MustParseParen(`m(x "7")`)},
		{Kind: xmltree.UpdateDelete, Target: []uint32{1, 5}},
		{Kind: xmltree.UpdateRename, Target: []uint32{1, 3}, Label: "zz"},
		{Kind: xmltree.UpdateSetValue, Target: []uint32{1, 3}, Value: "v v"},
	}
	data, err := EncodeUpdates(ups)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseUpdates(data)
	if err != nil {
		t.Fatalf("re-parse %s: %v", data, err)
	}
	if len(back) != len(ups) {
		t.Fatalf("round trip lost updates: %d != %d", len(back), len(ups))
	}
	for i := range ups {
		if Encode(back[i]) != Encode(ups[i]) {
			t.Errorf("update %d round trip: %+v != %+v", i, Encode(back[i]), Encode(ups[i]))
		}
	}
}
