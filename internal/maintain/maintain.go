// Package maintain implements incremental maintenance of materialized
// tree-pattern views under typed document updates (xmltree.Update).
//
// The engine maps every update of a batch against every view's tree
// pattern before touching any extent. For each update it collects the set
// of affected rooted label paths — the paths of inserted, deleted or
// renamed nodes, the path of a retexted node, and the ancestor paths whose
// content (C) attribute sees the change — and checks, per view, whether
// any pattern node's root chain can match one of them (the same label/axis
// embedding discipline core's matching uses, minus value predicates, which
// keeps the test a sound over-approximation). Views that cannot match any
// affected path are proven unaffected and skipped outright; this
// irrelevance filter is what makes a multi-view store cheap to maintain,
// since a typical update touches few views.
//
// For the remaining views the engine computes tuple deltas *scoped to the
// change*: for chain-shaped views storing a required identifier (see
// scope.go) it evaluates the pattern only under the affected Dewey subtree
// root — before and after each update — and splices the difference into
// the key-sorted extent by binary search, so maintenance cost follows the
// size of the change, not of the document. Views outside that class fall
// back to full re-evaluation and a whole-extent diff, which keeps the
// engine exactly faithful to the paper's optional-edge and set semantics
// in every case (the scoped path is provably exact for its class; the
// differential oracle cross-checks both). Batches are atomic: if any
// update fails to apply, the document is rolled back, the maintained
// summary clone is discarded, and no extent changes.
package maintain

import (
	"context"
	"fmt"
	"strings"
	"time"

	"xmlviews/internal/core"
	"xmlviews/internal/nodeid"
	"xmlviews/internal/nrel"
	"xmlviews/internal/obs"
	"xmlviews/internal/pattern"
	"xmlviews/internal/summary"
	"xmlviews/internal/xmltree"
)

// Materializer produces a view's flat extent over a document. The view
// package passes view.MaterializeFlat; taking it as a parameter keeps this
// package importable from view without a cycle.
type Materializer func(*core.View, *xmltree.Document) *nrel.Relation

// ScopedMaterializer produces the witnessed part of a view's flat extent
// under a scope root: the rows whose witness identifier (the id column of
// the flattened pattern's witnessReturn-th return node) lies at or below
// root, evaluated without leaving root's chain and subtree. The view
// package passes view.MaterializeFlatScoped.
type ScopedMaterializer func(v *core.View, doc *xmltree.Document, root nodeid.ID, witnessReturn int) *nrel.Relation

// Engine bundles the evaluation hooks and maintained state ComputeDeltas
// threads through a batch.
type Engine struct {
	// Mat re-evaluates a full extent (the fallback path). Required.
	Mat Materializer
	// MatScoped evaluates the witnessed scoped extent. nil disables the
	// scoped fast path (every relevant view is fully recomputed).
	MatScoped ScopedMaterializer
	// Summary is the incrementally maintained summary of the document. It
	// is cloned per batch; the advanced clone is returned in
	// Batch.Maintained on success and discarded on failure. nil builds a
	// fresh one from the document (O(document), so callers should cache).
	Summary *summary.Maintained
	// SortedExtents asserts that current() returns extents sorted by row
	// key (maintain.SortByKey order). The scoped fast path splices by
	// binary search and silently corrupts unsorted extents, so it is only
	// taken when this is set; view.Store establishes the invariant before
	// its first batch.
	SortedExtents bool
	// Ctx, when it carries an obs.Trace, makes the engine record aggregate
	// "diff" and "splice" spans for the batch (the scoped evaluations +
	// extent diffing, and the sorted splices + net-delta folds). nil or an
	// untraced context costs nothing.
	Ctx context.Context
}

// trace returns the engine context's trace (nil when absent: every
// obs.Trace method is a no-op on nil).
func (e Engine) trace() *obs.Trace {
	if e.Ctx == nil {
		return nil
	}
	return obs.FromContext(e.Ctx)
}

// Delta is the tuple-level change to one view's flat extent.
type Delta struct {
	View *core.View
	// Adds and Dels share the extent's column schema. A row moves from the
	// extent when it appears in Dels and into it when it appears in Adds.
	Adds, Dels *nrel.Relation
	// New is the full maintained extent after the batch.
	New *nrel.Relation
}

// Batch is the result of maintaining a store through one update batch.
type Batch struct {
	// Deltas holds one entry per view whose extent changed.
	Deltas []*Delta
	// Skipped lists views the relevance mapping proved unaffected (their
	// extents were not even re-evaluated).
	Skipped []string
	// Scoped counts the relevant views maintained through the scoped fast
	// path (vs. full recomputation).
	Scoped int
	// Summary is the path summary of the updated document, maintained
	// incrementally through the batch and snapshotted with canonical node
	// ids (the serving side rewrites against it).
	Summary *summary.Summary
	// Maintained is the advanced mutable summary; callers that cache one
	// across batches (view.Store) commit it on success.
	Maintained *summary.Maintained
}

// viewState tracks one view through a batch.
type viewState struct {
	relevant bool
	// full marks the fallback path: recompute the whole extent after the
	// batch. Set when the view is not scoped-diffable.
	full bool
	// analyzed/fast cache the scoped-diff eligibility analysis.
	analyzed bool
	fast     *fastView
	// working is the view's key-sorted extent being spliced through the
	// batch (a copy of the current extent, taken on first touch).
	working *nrel.Relation
	// net accumulates the batch's membership changes.
	net *netDelta
}

// ComputeDeltas applies the update batch to doc (in place, atomically) and
// returns the per-view extent deltas. current returns a view's extent
// before the batch (key-sorted when eng.SortedExtents); eng supplies the
// evaluation hooks and the maintained summary.
func ComputeDeltas(doc *xmltree.Document, views []*core.View, updates []xmltree.Update,
	current func(*core.View) *nrel.Relation, eng Engine) (*Batch, error) {
	if len(updates) == 0 {
		return nil, fmt.Errorf("maintain: empty update batch")
	}
	msum := eng.Summary
	if msum == nil {
		msum = summary.NewMaintained(doc)
	}
	work := msum.Clone()
	fastOK := eng.MatScoped != nil && eng.SortedExtents

	// Aggregate phase timings for the batch's trace; timed only when the
	// engine context actually carries one.
	tr := eng.trace()
	var diffDur, spliceDur time.Duration
	var t0 time.Time

	states := make([]*viewState, len(views))
	for i := range states {
		states[i] = &viewState{}
	}

	fail := func(undo []func(), i int, err error) (*Batch, error) {
		rollback(undo)
		return nil, fmt.Errorf("maintain: update %d: %w", i, err)
	}

	var undo []func()
	for i := range updates {
		u := updates[i]
		// The affected rooted label paths of this update, including the
		// post-apply shapes of inserts and renames (computable pre-apply
		// from the update itself).
		ps := newPathSet()
		if err := ps.collect(doc, u); err != nil {
			return fail(undo, i, err)
		}
		// Scoped pre-apply evaluations for the relevant fast views.
		type pending struct {
			j     int
			scope updateScope
			old   *nrel.Relation
		}
		var pend []pending
		for j, v := range views {
			st := states[j]
			if !ps.relevant(v.Pattern) {
				continue
			}
			st.relevant = true
			if st.full {
				continue
			}
			if !st.analyzed {
				st.analyzed = true
				if fastOK {
					st.fast, _ = analyzeFast(v)
				}
				if st.fast == nil {
					st.full = true
					continue
				}
			}
			sc, ok := scopeFor(u, doc, st.fast)
			if !ok {
				// The update will fail to apply; let the apply report it.
				continue
			}
			p := pending{j: j, scope: sc}
			if sc.pre != nil {
				if tr != nil {
					t0 = time.Now()
				}
				p.old = eng.MatScoped(v, doc, sc.pre, st.fast.witnessReturn)
				if tr != nil {
					diffDur += time.Since(t0)
				}
			}
			pend = append(pend, p)
		}

		// Apply the update, maintaining the summary clone around it
		// (remove-before-detach, add-after-attach).
		if u.Kind == xmltree.UpdateDelete {
			if n := doc.FindByID(u.Target); n != nil && n.Parent != nil {
				if err := work.RemoveSubtree(n); err != nil {
					return fail(undo, i, err)
				}
			}
		}
		var renamed *xmltree.Node
		if u.Kind == xmltree.UpdateRename {
			// An invalid rename (empty label) is rejected by applyWithUndo
			// below; the summary work done here is discarded on failure.
			if n := doc.FindByID(u.Target); n != nil && n.Parent != nil {
				renamed = n
				if err := work.RemoveSubtree(n); err != nil {
					return fail(undo, i, err)
				}
			}
		}
		var textDelta int64
		if u.Kind == xmltree.UpdateSetValue {
			if n := doc.FindByID(u.Target); n != nil {
				textDelta = int64(len(u.Value)) - int64(len(n.Value))
			}
		}
		node, un, err := applyWithUndo(doc, u)
		if err != nil {
			return fail(undo, i, err)
		}
		undo = append(undo, un)
		switch u.Kind {
		case xmltree.UpdateInsert:
			err = work.AddSubtree(node)
		case xmltree.UpdateRename:
			if renamed != nil {
				err = work.AddSubtree(renamed)
			} else {
				work.RenameRoot(u.Label)
			}
		case xmltree.UpdateSetValue:
			err = work.AdjustText(node, textDelta)
		}
		if err != nil {
			return fail(undo, i, err)
		}

		// Scoped post-apply evaluations and splices.
		for _, p := range pend {
			v, st := views[p.j], states[p.j]
			root := p.scope.pre
			if p.scope.postFromInserted {
				root = node.ID
			}
			if tr != nil {
				t0 = time.Now()
			}
			newRel := eng.MatScoped(v, doc, root, st.fast.witnessReturn)
			adds, dels := diffKeyed(p.old, newRel)
			if tr != nil {
				diffDur += time.Since(t0)
			}
			if adds.Len() == 0 && dels.Len() == 0 {
				continue
			}
			if st.working == nil {
				cur := current(v)
				st.working = nrel.NewRelation(cur.Cols...)
				st.working.Rows = append([]nrel.Tuple(nil), cur.Rows...)
				st.net = newNetDelta()
			}
			if tr != nil {
				t0 = time.Now()
			}
			added, deleted := spliceSorted(st.working, adds, dels)
			// Net-delta folding must run to completion once the splice
			// mutated st.working, or working and net disagree; both loops
			// are bounded by one update's scoped delta.
			//xvlint:nopoll splice already applied; aborting desyncs working from net
			for _, row := range deleted {
				st.net.delRow(row)
			}
			//xvlint:nopoll splice already applied; aborting desyncs working from net
			for _, row := range added {
				st.net.addRow(row)
			}
			if tr != nil {
				spliceDur += time.Since(t0)
			}
		}
	}

	work.RecomputeEdgeFlags()
	batch := &Batch{Summary: work.Snapshot(), Maintained: work}
	for j, v := range views {
		st := states[j]
		if !st.relevant {
			batch.Skipped = append(batch.Skipped, v.Name)
			continue
		}
		if st.full {
			if tr != nil {
				t0 = time.Now()
			}
			newRel := SortByKey(eng.Mat(v, doc))
			adds, dels := diffRelations(current(v), newRel)
			if tr != nil {
				diffDur += time.Since(t0)
			}
			if adds.Len() == 0 && dels.Len() == 0 {
				continue
			}
			batch.Deltas = append(batch.Deltas, &Delta{View: v, Adds: adds, Dels: dels, New: newRel})
			continue
		}
		batch.Scoped++
		if st.working == nil || st.net.empty() {
			continue
		}
		adds, dels := st.net.relations(st.working.Cols)
		batch.Deltas = append(batch.Deltas, &Delta{View: v, Adds: adds, Dels: dels, New: st.working})
	}
	if tr != nil {
		end := time.Now()
		if diffDur > 0 {
			tr.AddSpan("diff", end.Add(-diffDur), diffDur)
		}
		if spliceDur > 0 {
			tr.AddSpan("splice", end.Add(-spliceDur), spliceDur)
		}
	}
	return batch, nil
}

func rollback(undo []func()) {
	for i := len(undo) - 1; i >= 0; i-- {
		undo[i]()
	}
}

// applyWithUndo applies one update, returning the node it touched and a
// closure restoring the document to its prior state (splicing nodes back
// by identity, so no ID is reallocated on rollback).
func applyWithUndo(doc *xmltree.Document, u xmltree.Update) (*xmltree.Node, func(), error) {
	switch u.Kind {
	case xmltree.UpdateInsert:
		n, err := doc.InsertSubtree(u.Parent, u.Before, u.Subtree)
		if err != nil {
			return nil, nil, err
		}
		return n, func() {
			p := n.Parent
			for i, c := range p.Children {
				if c == n {
					p.Children = append(p.Children[:i:i], p.Children[i+1:]...)
					return
				}
			}
		}, nil
	case xmltree.UpdateDelete:
		n := doc.FindByID(u.Target)
		if n == nil || n.Parent == nil {
			// Delegate error wording to the real operation.
			_, err := doc.DeleteSubtree(u.Target)
			return nil, nil, err
		}
		parent := n.Parent
		pos := -1
		for i, c := range parent.Children {
			if c == n {
				pos = i
				break
			}
		}
		if _, err := doc.DeleteSubtree(u.Target); err != nil {
			return nil, nil, err
		}
		return n, func() {
			parent.Children = append(parent.Children, nil)
			copy(parent.Children[pos+1:], parent.Children[pos:])
			parent.Children[pos] = n
			n.Parent = parent
		}, nil
	case xmltree.UpdateRename:
		n := doc.FindByID(u.Target)
		if n == nil {
			_, err := doc.RenameNode(u.Target, u.Label)
			return nil, nil, err
		}
		old := n.Label
		if _, err := doc.RenameNode(u.Target, u.Label); err != nil {
			return nil, nil, err
		}
		return n, func() { n.Label = old }, nil
	case xmltree.UpdateSetValue:
		n := doc.FindByID(u.Target)
		if n == nil {
			_, err := doc.SetNodeValue(u.Target, u.Value)
			return nil, nil, err
		}
		old := n.Value
		if _, err := doc.SetNodeValue(u.Target, u.Value); err != nil {
			return nil, nil, err
		}
		return n, func() { n.Value = old }, nil
	}
	return nil, nil, fmt.Errorf("unknown update kind %d", u.Kind)
}

// diffRelations returns the rows of new missing from old (adds) and the
// rows of old missing from new (dels), under set semantics.
//
//xvlint:nopoll runs under the batch's update lock; a partial diff would persist a hole
func diffRelations(old, new *nrel.Relation) (adds, dels *nrel.Relation) {
	adds, dels = nrel.NewRelation(new.Cols...), nrel.NewRelation(new.Cols...)
	oldKeys := make(map[string]bool, old.Len())
	for _, row := range old.Rows {
		oldKeys[rowKey(row)] = true
	}
	newKeys := make(map[string]bool, new.Len())
	for _, row := range new.Rows {
		k := rowKey(row)
		newKeys[k] = true
		if !oldKeys[k] {
			adds.Rows = append(adds.Rows, row)
		}
	}
	for _, row := range old.Rows {
		if !newKeys[rowKey(row)] {
			dels.Rows = append(dels.Rows, row)
		}
	}
	return adds, dels
}

// FoldDelta applies a delta to an extent: rows in dels leave, rows in adds
// enter (ignored when already present), preserving storage order. It is
// the replay primitive for delta segments.
//
//xvlint:nopoll replay primitive for store open and compaction; a partial fold is a corrupt extent
func FoldDelta(base, adds, dels *nrel.Relation) *nrel.Relation {
	out := nrel.NewRelation(base.Cols...)
	delKeys := make(map[string]bool, dels.Len())
	for _, row := range dels.Rows {
		delKeys[rowKey(row)] = true
	}
	have := make(map[string]bool, base.Len())
	for _, row := range base.Rows {
		k := rowKey(row)
		if delKeys[k] {
			continue
		}
		have[k] = true
		out.Rows = append(out.Rows, row)
	}
	for _, row := range adds.Rows {
		if k := rowKey(row); !have[k] {
			have[k] = true
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

func rowKey(row nrel.Tuple) string {
	var b strings.Builder
	for _, v := range row {
		b.WriteString(v.Render())
		b.WriteByte(0)
	}
	return b.String()
}

// pathSet accumulates the rooted label paths a batch affects.
type pathSet struct {
	// nodes are the paths of created/removed/renamed/retexted nodes: a
	// pattern node binding (or newly failing to bind) one of them is what
	// changes an extent row.
	nodes map[string][]string
	// ancestors are the paths of nodes whose content subtree changed; they
	// matter only to pattern nodes storing the C attribute.
	ancestors map[string][]string
}

func newPathSet() *pathSet {
	return &pathSet{nodes: map[string][]string{}, ancestors: map[string][]string{}}
}

func pathKey(p []string) string { return strings.Join(p, "\x1f") }

func (ps *pathSet) addNode(p []string) {
	ps.nodes[pathKey(p)] = append([]string(nil), p...)
}

func (ps *pathSet) addAncestors(p []string) {
	for i := 1; i <= len(p); i++ {
		ps.ancestors[pathKey(p[:i])] = append([]string(nil), p[:i]...)
	}
}

// labelPath returns the rooted label path of a live document node.
func labelPath(n *xmltree.Node) []string {
	var rev []string
	for cur := n; cur != nil; cur = cur.Parent {
		rev = append(rev, cur.Label)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// addSubtreeShapes records the paths of every node of a subtree whose root
// sits at the given base path (base already includes the root's label —
// or, with an override, the label it is about to receive).
func (ps *pathSet) addSubtreeShapes(base []string, root *xmltree.Node) {
	ps.addNode(base)
	var walk func(prefix []string, n *xmltree.Node)
	walk = func(prefix []string, n *xmltree.Node) {
		for _, c := range n.Children {
			p := append(append([]string(nil), prefix...), c.Label)
			ps.addNode(p)
			walk(p, c)
		}
	}
	walk(base, root)
}

// addSubtreePaths records the paths of every node of a live subtree.
func (ps *pathSet) addSubtreePaths(root *xmltree.Node) {
	ps.addSubtreeShapes(labelPath(root), root)
}

// collect records the paths update u affects, evaluated against the
// pre-update document. The post-apply shapes of inserts and renames are
// derivable from the update itself, so the whole affected-path set is
// known before anything mutates.
func (ps *pathSet) collect(doc *xmltree.Document, u xmltree.Update) error {
	switch u.Kind {
	case xmltree.UpdateInsert:
		parent := doc.FindByID(u.Parent)
		if parent == nil {
			return fmt.Errorf("insert parent %s not found", u.Parent)
		}
		if u.Subtree == nil || u.Subtree.Root == nil {
			return fmt.Errorf("insert with empty subtree")
		}
		base := labelPath(parent)
		ps.addAncestors(base)
		ps.addSubtreeShapes(append(base, u.Subtree.Root.Label), u.Subtree.Root)
	case xmltree.UpdateDelete:
		n := doc.FindByID(u.Target)
		if n == nil {
			return fmt.Errorf("delete target %s not found", u.Target)
		}
		ps.addSubtreePaths(n)
		if n.Parent != nil {
			ps.addAncestors(labelPath(n.Parent))
		}
	case xmltree.UpdateRename:
		n := doc.FindByID(u.Target)
		if n == nil {
			return fmt.Errorf("rename target %s not found", u.Target)
		}
		ps.addSubtreePaths(n) // old shape
		path := labelPath(n)
		ps.addSubtreeShapes(append(path[:len(path)-1:len(path)-1], u.Label), n) // new shape
		if n.Parent != nil {
			ps.addAncestors(labelPath(n.Parent))
		}
	case xmltree.UpdateSetValue:
		n := doc.FindByID(u.Target)
		if n == nil {
			return fmt.Errorf("settext target %s not found", u.Target)
		}
		ps.addNode(labelPath(n))
		ps.addAncestors(labelPath(n))
	default:
		return fmt.Errorf("unknown update kind %d", u.Kind)
	}
	return nil
}

// relevant reports whether the batch can affect the extent of a view with
// the given pattern: some pattern node's root chain matches an affected
// node path, or a C-storing pattern node's chain matches a path whose
// content changed. Renames and the post-apply insert hook also feed the
// node-path set, so both the old and new shape of a changed region are
// tested.
func (ps *pathSet) relevant(p *pattern.Pattern) bool {
	for _, pn := range p.Nodes() {
		chain := chainOf(pn)
		for _, path := range ps.nodes {
			if chainMatchesPath(chain, path) {
				return true
			}
		}
		if pn.Attrs.Has(pattern.AttrContent) {
			for _, path := range ps.ancestors {
				if chainMatchesPath(chain, path) {
					return true
				}
			}
		}
	}
	return false
}

// chainStep is one edge of a pattern node's root chain.
type chainStep struct {
	label      string
	descendant bool
}

func chainOf(n *pattern.Node) []chainStep {
	var rev []chainStep
	for cur := n; cur != nil; cur = cur.Parent {
		rev = append(rev, chainStep{label: cur.Label, descendant: cur.Parent != nil && cur.Axis == pattern.Descendant})
	}
	out := make([]chainStep, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

func stepMatches(s chainStep, label string) bool {
	return s.label == pattern.Wildcard || s.label == label
}

// chainMatchesPath reports whether the chain can embed into the rooted
// label path with its last step bound to the path's last label. Value
// predicates and optional markers are ignored: the test over-approximates,
// which is the sound direction for a relevance filter.
func chainMatchesPath(chain []chainStep, path []string) bool {
	if len(path) == 0 || !stepMatches(chain[0], path[0]) {
		return false
	}
	cur := map[int]bool{0: true}
	for _, s := range chain[1:] {
		next := map[int]bool{}
		for p := range cur {
			if s.descendant {
				for q := p + 1; q < len(path); q++ {
					if stepMatches(s, path[q]) {
						next[q] = true
					}
				}
			} else if q := p + 1; q < len(path) && stepMatches(s, path[q]) {
				next[q] = true
			}
		}
		if len(next) == 0 {
			return false
		}
		cur = next
	}
	return cur[len(path)-1]
}
