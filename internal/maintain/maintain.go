// Package maintain implements incremental maintenance of materialized
// tree-pattern views under typed document updates (xmltree.Update).
//
// The engine maps every update of a batch against every view's tree
// pattern before touching any extent. For each update it collects the set
// of affected rooted label paths — the paths of inserted, deleted or
// renamed nodes, the path of a retexted node, and the ancestor paths whose
// content (C) attribute sees the change — and checks, per view, whether
// any pattern node's root chain can match one of them (the same label/axis
// embedding discipline core's matching uses, minus value predicates, which
// keeps the test a sound over-approximation). Views that cannot match any
// affected path are proven unaffected and skipped outright; this
// irrelevance filter is what makes a multi-view store cheap to maintain,
// since a typical update touches few views.
//
// For the remaining views the engine re-evaluates the (flat) extent over
// the updated document and emits the tuple delta against the current
// extent. Recomputation keeps the engine exactly faithful to the paper's
// optional-edge and set semantics (an insertion can retract ⊥-padded rows,
// a deletion can resurrect them, and a tuple with several embeddings
// survives losing one); per-embedding delta propagation is future work.
// Batches are atomic: if any update fails to apply, the document is rolled
// back and no extent changes.
package maintain

import (
	"fmt"
	"strings"

	"xmlviews/internal/core"
	"xmlviews/internal/nrel"
	"xmlviews/internal/pattern"
	"xmlviews/internal/summary"
	"xmlviews/internal/xmltree"
)

// Materializer produces a view's flat extent over a document. The view
// package passes view.MaterializeFlat; taking it as a parameter keeps this
// package importable from view without a cycle.
type Materializer func(*core.View, *xmltree.Document) *nrel.Relation

// Delta is the tuple-level change to one view's flat extent.
type Delta struct {
	View *core.View
	// Adds and Dels share the extent's column schema. A row moves from the
	// extent when it appears in Dels and into it when it appears in Adds.
	Adds, Dels *nrel.Relation
	// New is the full maintained extent after the batch.
	New *nrel.Relation
}

// Batch is the result of maintaining a store through one update batch.
type Batch struct {
	// Deltas holds one entry per view whose extent changed.
	Deltas []*Delta
	// Skipped lists views the relevance mapping proved unaffected (their
	// extents were not even re-evaluated).
	Skipped []string
	// Summary is the path summary of the updated document, rebuilt after
	// the batch (updates can add paths and invalidate strong/one-to-one
	// edge annotations, and the serving side rewrites against it).
	Summary *summary.Summary
}

// ComputeDeltas applies the update batch to doc (in place, atomically) and
// returns the per-view extent deltas. current returns a view's extent
// before the batch; mat re-evaluates one over the updated document.
func ComputeDeltas(doc *xmltree.Document, views []*core.View, updates []xmltree.Update,
	current func(*core.View) *nrel.Relation, mat Materializer) (*Batch, error) {
	if len(updates) == 0 {
		return nil, fmt.Errorf("maintain: empty update batch")
	}
	paths := newPathSet()
	var undo []func()
	for i := range updates {
		u := updates[i]
		if err := paths.collect(doc, u); err != nil {
			rollback(undo)
			return nil, fmt.Errorf("maintain: update %d: %w", i, err)
		}
		node, un, err := applyWithUndo(doc, u)
		if err != nil {
			rollback(undo)
			return nil, fmt.Errorf("maintain: update %d: %w", i, err)
		}
		undo = append(undo, un)
		// collect sees the pre-update document; the paths of freshly
		// inserted nodes (and of a renamed subtree's new shape) only exist
		// now, so gather them post-apply.
		if u.Kind == xmltree.UpdateInsert || u.Kind == xmltree.UpdateRename {
			paths.addSubtreePaths(node)
		}
	}

	batch := &Batch{Summary: summary.Build(doc)}
	for _, v := range views {
		if !paths.relevant(v.Pattern) {
			batch.Skipped = append(batch.Skipped, v.Name)
			continue
		}
		newRel := mat(v, doc)
		old := current(v)
		adds, dels := diffRelations(old, newRel)
		if adds.Len() == 0 && dels.Len() == 0 {
			continue
		}
		batch.Deltas = append(batch.Deltas, &Delta{View: v, Adds: adds, Dels: dels, New: newRel})
	}
	return batch, nil
}

func rollback(undo []func()) {
	for i := len(undo) - 1; i >= 0; i-- {
		undo[i]()
	}
}

// applyWithUndo applies one update, returning the node it touched and a
// closure restoring the document to its prior state (splicing nodes back
// by identity, so no ID is reallocated on rollback).
func applyWithUndo(doc *xmltree.Document, u xmltree.Update) (*xmltree.Node, func(), error) {
	switch u.Kind {
	case xmltree.UpdateInsert:
		n, err := doc.InsertSubtree(u.Parent, u.Before, u.Subtree)
		if err != nil {
			return nil, nil, err
		}
		return n, func() {
			p := n.Parent
			for i, c := range p.Children {
				if c == n {
					p.Children = append(p.Children[:i:i], p.Children[i+1:]...)
					return
				}
			}
		}, nil
	case xmltree.UpdateDelete:
		n := doc.FindByID(u.Target)
		if n == nil || n.Parent == nil {
			// Delegate error wording to the real operation.
			_, err := doc.DeleteSubtree(u.Target)
			return nil, nil, err
		}
		parent := n.Parent
		pos := -1
		for i, c := range parent.Children {
			if c == n {
				pos = i
				break
			}
		}
		if _, err := doc.DeleteSubtree(u.Target); err != nil {
			return nil, nil, err
		}
		return n, func() {
			parent.Children = append(parent.Children, nil)
			copy(parent.Children[pos+1:], parent.Children[pos:])
			parent.Children[pos] = n
			n.Parent = parent
		}, nil
	case xmltree.UpdateRename:
		n := doc.FindByID(u.Target)
		if n == nil {
			_, err := doc.RenameNode(u.Target, u.Label)
			return nil, nil, err
		}
		old := n.Label
		if _, err := doc.RenameNode(u.Target, u.Label); err != nil {
			return nil, nil, err
		}
		return n, func() { n.Label = old }, nil
	case xmltree.UpdateSetValue:
		n := doc.FindByID(u.Target)
		if n == nil {
			_, err := doc.SetNodeValue(u.Target, u.Value)
			return nil, nil, err
		}
		old := n.Value
		if _, err := doc.SetNodeValue(u.Target, u.Value); err != nil {
			return nil, nil, err
		}
		return n, func() { n.Value = old }, nil
	}
	return nil, nil, fmt.Errorf("unknown update kind %d", u.Kind)
}

// diffRelations returns the rows of new missing from old (adds) and the
// rows of old missing from new (dels), under set semantics.
func diffRelations(old, new *nrel.Relation) (adds, dels *nrel.Relation) {
	adds, dels = nrel.NewRelation(new.Cols...), nrel.NewRelation(new.Cols...)
	oldKeys := make(map[string]bool, old.Len())
	for _, row := range old.Rows {
		oldKeys[rowKey(row)] = true
	}
	newKeys := make(map[string]bool, new.Len())
	for _, row := range new.Rows {
		k := rowKey(row)
		newKeys[k] = true
		if !oldKeys[k] {
			adds.Rows = append(adds.Rows, row)
		}
	}
	for _, row := range old.Rows {
		if !newKeys[rowKey(row)] {
			dels.Rows = append(dels.Rows, row)
		}
	}
	return adds, dels
}

// FoldDelta applies a delta to an extent: rows in dels leave, rows in adds
// enter (ignored when already present), preserving storage order. It is
// the replay primitive for delta segments.
func FoldDelta(base, adds, dels *nrel.Relation) *nrel.Relation {
	out := nrel.NewRelation(base.Cols...)
	delKeys := make(map[string]bool, dels.Len())
	for _, row := range dels.Rows {
		delKeys[rowKey(row)] = true
	}
	have := make(map[string]bool, base.Len())
	for _, row := range base.Rows {
		k := rowKey(row)
		if delKeys[k] {
			continue
		}
		have[k] = true
		out.Rows = append(out.Rows, row)
	}
	for _, row := range adds.Rows {
		if k := rowKey(row); !have[k] {
			have[k] = true
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

func rowKey(row nrel.Tuple) string {
	var b strings.Builder
	for _, v := range row {
		b.WriteString(v.Render())
		b.WriteByte(0)
	}
	return b.String()
}

// pathSet accumulates the rooted label paths a batch affects.
type pathSet struct {
	// nodes are the paths of created/removed/renamed/retexted nodes: a
	// pattern node binding (or newly failing to bind) one of them is what
	// changes an extent row.
	nodes map[string][]string
	// ancestors are the paths of nodes whose content subtree changed; they
	// matter only to pattern nodes storing the C attribute.
	ancestors map[string][]string
}

func newPathSet() *pathSet {
	return &pathSet{nodes: map[string][]string{}, ancestors: map[string][]string{}}
}

func pathKey(p []string) string { return strings.Join(p, "\x1f") }

func (ps *pathSet) addNode(p []string) {
	ps.nodes[pathKey(p)] = append([]string(nil), p...)
}

func (ps *pathSet) addAncestors(p []string) {
	for i := 1; i <= len(p); i++ {
		ps.ancestors[pathKey(p[:i])] = append([]string(nil), p[:i]...)
	}
}

// labelPath returns the rooted label path of a live document node.
func labelPath(n *xmltree.Node) []string {
	var rev []string
	for cur := n; cur != nil; cur = cur.Parent {
		rev = append(rev, cur.Label)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// addSubtreePaths records the paths of every node of a live subtree.
func (ps *pathSet) addSubtreePaths(root *xmltree.Node) {
	base := labelPath(root)
	ps.addNode(base)
	var walk func(prefix []string, n *xmltree.Node)
	walk = func(prefix []string, n *xmltree.Node) {
		for _, c := range n.Children {
			p := append(append([]string(nil), prefix...), c.Label)
			ps.addNode(p)
			walk(p, c)
		}
	}
	walk(base, root)
}

// collect records the paths update u affects, evaluated against the
// pre-update document.
func (ps *pathSet) collect(doc *xmltree.Document, u xmltree.Update) error {
	switch u.Kind {
	case xmltree.UpdateInsert:
		parent := doc.FindByID(u.Parent)
		if parent == nil {
			return fmt.Errorf("insert parent %s not found", u.Parent)
		}
		// The inserted nodes' paths are recorded post-apply (the caller
		// calls addSubtreePaths on the created node); here only the content
		// change along the insertion path is known.
		ps.addAncestors(labelPath(parent))
	case xmltree.UpdateDelete:
		n := doc.FindByID(u.Target)
		if n == nil {
			return fmt.Errorf("delete target %s not found", u.Target)
		}
		ps.addSubtreePaths(n)
		if n.Parent != nil {
			ps.addAncestors(labelPath(n.Parent))
		}
	case xmltree.UpdateRename:
		n := doc.FindByID(u.Target)
		if n == nil {
			return fmt.Errorf("rename target %s not found", u.Target)
		}
		ps.addSubtreePaths(n) // old paths; new ones are collected post-apply
		if n.Parent != nil {
			ps.addAncestors(labelPath(n.Parent))
		}
	case xmltree.UpdateSetValue:
		n := doc.FindByID(u.Target)
		if n == nil {
			return fmt.Errorf("settext target %s not found", u.Target)
		}
		ps.addNode(labelPath(n))
		ps.addAncestors(labelPath(n))
	default:
		return fmt.Errorf("unknown update kind %d", u.Kind)
	}
	return nil
}

// relevant reports whether the batch can affect the extent of a view with
// the given pattern: some pattern node's root chain matches an affected
// node path, or a C-storing pattern node's chain matches a path whose
// content changed. Renames and the post-apply insert hook also feed the
// node-path set, so both the old and new shape of a changed region are
// tested.
func (ps *pathSet) relevant(p *pattern.Pattern) bool {
	for _, pn := range p.Nodes() {
		chain := chainOf(pn)
		for _, path := range ps.nodes {
			if chainMatchesPath(chain, path) {
				return true
			}
		}
		if pn.Attrs.Has(pattern.AttrContent) {
			for _, path := range ps.ancestors {
				if chainMatchesPath(chain, path) {
					return true
				}
			}
		}
	}
	return false
}

// chainStep is one edge of a pattern node's root chain.
type chainStep struct {
	label      string
	descendant bool
}

func chainOf(n *pattern.Node) []chainStep {
	var rev []chainStep
	for cur := n; cur != nil; cur = cur.Parent {
		rev = append(rev, chainStep{label: cur.Label, descendant: cur.Parent != nil && cur.Axis == pattern.Descendant})
	}
	out := make([]chainStep, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

func stepMatches(s chainStep, label string) bool {
	return s.label == pattern.Wildcard || s.label == label
}

// chainMatchesPath reports whether the chain can embed into the rooted
// label path with its last step bound to the path's last label. Value
// predicates and optional markers are ignored: the test over-approximates,
// which is the sound direction for a relevance filter.
func chainMatchesPath(chain []chainStep, path []string) bool {
	if len(path) == 0 || !stepMatches(chain[0], path[0]) {
		return false
	}
	cur := map[int]bool{0: true}
	for _, s := range chain[1:] {
		next := map[int]bool{}
		for p := range cur {
			if s.descendant {
				for q := p + 1; q < len(path); q++ {
					if stepMatches(s, path[q]) {
						next[q] = true
					}
				}
			} else if q := p + 1; q < len(path) && stepMatches(s, path[q]) {
				next[q] = true
			}
		}
		if len(next) == 0 {
			return false
		}
		cur = next
	}
	return cur[len(path)-1]
}
