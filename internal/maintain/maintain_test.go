package maintain_test

import (
	"strings"
	"testing"

	"xmlviews/internal/core"
	"xmlviews/internal/maintain"
	"xmlviews/internal/nrel"
	"xmlviews/internal/pattern"
	"xmlviews/internal/view"
	"xmlviews/internal/xmltree"
)

func mkView(name, pat string) *core.View {
	return &core.View{Name: name, Pattern: pattern.MustParse(pat), DerivableParentIDs: true}
}

// compute runs one batch over a fresh extent snapshot and sanity-checks
// that folding the deltas over the old extents reproduces the recomputed
// ones.
func compute(t *testing.T, doc *xmltree.Document, views []*core.View, ups ...xmltree.Update) *maintain.Batch {
	t.Helper()
	old := map[string]*nrel.Relation{}
	for _, v := range views {
		old[v.Name] = maintain.SortByKey(view.MaterializeFlat(v, doc))
	}
	batch, err := maintain.ComputeDeltas(doc, views, ups,
		func(v *core.View) *nrel.Relation { return old[v.Name] },
		maintain.Engine{Mat: view.MaterializeFlat, MatScoped: view.MaterializeFlatScoped, SortedExtents: true})
	if err != nil {
		t.Fatalf("ComputeDeltas: %v", err)
	}
	for _, d := range batch.Deltas {
		folded := maintain.FoldDelta(old[d.View.Name], d.Adds, d.Dels)
		if !folded.EqualAsSet(d.New) {
			t.Fatalf("view %s: folded delta diverges from recomputed extent\nfolded:\n%s\nnew:\n%s",
				d.View.Name, folded.Sorted(), d.New.Sorted())
		}
	}
	return batch
}

func ins(parent, before, sub string) xmltree.Update {
	u := xmltree.Update{Kind: xmltree.UpdateInsert, Subtree: xmltree.MustParseParen(sub)}
	u.Parent = mustID(parent)
	u.Before = mustID(before)
	return u
}

func mustID(s string) (id []uint32) {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ".")
	for _, p := range parts {
		var v uint32
		for i := 0; i < len(p); i++ {
			v = v*10 + uint32(p[i]-'0')
		}
		id = append(id, v)
	}
	return id
}

func TestInsertProducesAdds(t *testing.T) {
	doc := xmltree.MustParseParen(`site(item(name "pen"))`)
	vName := mkView("vname", `site(/item[id](/name[v]))`)
	vOther := mkView("vother", `site(/person[id])`)
	batch := compute(t, doc, []*core.View{vName, vOther},
		ins("1", "", `item(name "ink")`))
	if len(batch.Deltas) != 1 || batch.Deltas[0].View != vName {
		t.Fatalf("deltas = %v, want exactly vname", batch.Deltas)
	}
	d := batch.Deltas[0]
	if d.Adds.Len() != 1 || d.Dels.Len() != 0 {
		t.Fatalf("adds %d dels %d, want 1/0:\n%s%s", d.Adds.Len(), d.Dels.Len(), d.Adds, d.Dels)
	}
	if len(batch.Skipped) != 1 || batch.Skipped[0] != "vother" {
		t.Fatalf("skipped = %v, want [vother]", batch.Skipped)
	}
}

func TestOptionalEdgeRetraction(t *testing.T) {
	doc := xmltree.MustParseParen(`a(b)`)
	v := mkView("v", `a(/b[id](?/c[v]))`)
	// Before: one row (id_b, ⊥). Inserting c must retract it.
	batch := compute(t, doc, []*core.View{v}, ins("1.1", "", `c "7"`))
	if len(batch.Deltas) != 1 {
		t.Fatalf("no delta for optional flip")
	}
	d := batch.Deltas[0]
	if d.Dels.Len() != 1 || d.Adds.Len() != 1 {
		t.Fatalf("adds %d dels %d, want 1/1\nadds:\n%s\ndels:\n%s", d.Adds.Len(), d.Dels.Len(), d.Adds, d.Dels)
	}
	if got := d.Dels.Rows[0][1].Render(); got != "⊥" {
		t.Fatalf("retracted row should carry ⊥, got %s", got)
	}
	if got := d.Adds.Rows[0][1].Render(); got != "7" {
		t.Fatalf("added row should carry the new value, got %s", got)
	}

	// And deleting c resurrects the ⊥ row.
	c := doc.Root.Children[0].Children[0]
	batch = compute(t, doc, []*core.View{v}, xmltree.Update{Kind: xmltree.UpdateDelete, Target: c.ID})
	d = batch.Deltas[0]
	if d.Adds.Len() != 1 || d.Adds.Rows[0][1].Render() != "⊥" {
		t.Fatalf("⊥ row not resurrected:\n%s", d.Adds)
	}
}

func TestSetSemanticsSurvivesLosingOneEmbedding(t *testing.T) {
	// Two b nodes carry the same value; deleting one must not remove the
	// tuple (the other embedding still derives it).
	doc := xmltree.MustParseParen(`a(b "x" b "x")`)
	v := mkView("v", `a(/b[v])`)
	b1 := doc.Root.Children[0]
	batch := compute(t, doc, []*core.View{v}, xmltree.Update{Kind: xmltree.UpdateDelete, Target: b1.ID})
	if len(batch.Deltas) != 0 {
		t.Fatalf("extent should be unchanged, got deltas %v (adds %d dels %d)",
			batch.Deltas[0].View.Name, batch.Deltas[0].Adds.Len(), batch.Deltas[0].Dels.Len())
	}
}

func TestContentColumnTracksAncestorChange(t *testing.T) {
	doc := xmltree.MustParseParen(`a(b(d "x"))`)
	v := mkView("v", `a(/b[id,c])`)
	// Inserting below b changes b's stored content subtree.
	batch := compute(t, doc, []*core.View{v}, ins("1.1", "", `e "y"`))
	if len(batch.Deltas) != 1 {
		t.Fatal("content view not maintained on descendant insert")
	}
	d := batch.Deltas[0]
	if d.Dels.Len() != 1 || d.Adds.Len() != 1 {
		t.Fatalf("adds %d dels %d, want 1/1", d.Adds.Len(), d.Dels.Len())
	}
	if got := d.Adds.Rows[0][1].Render(); !strings.Contains(got, "e \"y\"") {
		t.Fatalf("new content row lacks inserted node: %s", got)
	}

	// A settext below b also changes content even though no node is
	// added or removed.
	dnode := doc.Root.Children[0].Children[0]
	batch = compute(t, doc, []*core.View{v}, xmltree.Update{Kind: xmltree.UpdateSetValue, Target: dnode.ID, Value: "z"})
	if len(batch.Deltas) != 1 {
		t.Fatal("content view not maintained on descendant settext")
	}
}

func TestRenameAffectsOldAndNewShape(t *testing.T) {
	doc := xmltree.MustParseParen(`a(b "1" c "2")`)
	vb := mkView("vb", `a(/b[v])`)
	vc := mkView("vc", `a(/c[v])`)
	b := doc.Root.Children[0]
	batch := compute(t, doc, []*core.View{vb, vc}, xmltree.Update{Kind: xmltree.UpdateRename, Target: b.ID, Label: "c"})
	if len(batch.Deltas) != 2 {
		t.Fatalf("rename should touch both views, got %d deltas", len(batch.Deltas))
	}
}

func TestRollbackOnFailedBatch(t *testing.T) {
	doc := xmltree.MustParseParen(`a(b "1")`)
	before := doc.Root.String()
	v := mkView("v", `a(/b[v])`)
	old := maintain.SortByKey(view.MaterializeFlat(v, doc))
	_, err := maintain.ComputeDeltas(doc, []*core.View{v},
		[]xmltree.Update{
			ins("1", "", `b "2"`),
			{Kind: xmltree.UpdateDelete, Target: mustID("1.9")}, // missing target
		},
		func(*core.View) *nrel.Relation { return old },
		maintain.Engine{Mat: view.MaterializeFlat, MatScoped: view.MaterializeFlatScoped, SortedExtents: true})
	if err == nil {
		t.Fatal("failed batch reported success")
	}
	if got := doc.Root.String(); got != before {
		t.Fatalf("document not rolled back: %s != %s", got, before)
	}
}

func TestSummaryRebuiltAfterBatch(t *testing.T) {
	doc := xmltree.MustParseParen(`a(b)`)
	v := mkView("v", `a(/b[id])`)
	old := maintain.SortByKey(view.MaterializeFlat(v, doc))
	batch, err := maintain.ComputeDeltas(doc, []*core.View{v},
		[]xmltree.Update{ins("1.1", "", `newlabel "x"`)},
		func(*core.View) *nrel.Relation { return old },
		maintain.Engine{Mat: view.MaterializeFlat, MatScoped: view.MaterializeFlatScoped, SortedExtents: true})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Summary.FindPath("/a/b/newlabel") < 0 {
		t.Fatalf("summary missing inserted path:\n%s", batch.Summary)
	}
}

func TestEmptyBatchRejected(t *testing.T) {
	doc := xmltree.MustParseParen(`a`)
	if _, err := maintain.ComputeDeltas(doc, nil, nil, nil, maintain.Engine{}); err == nil {
		t.Fatal("empty batch accepted")
	}
}
