package maintain

import (
	"xmlviews/internal/core"
	"xmlviews/internal/nodeid"
	"xmlviews/internal/pattern"
	"xmlviews/internal/xmltree"
)

// Scoped extent diffing (the fast maintenance path).
//
// For a change under a document node r, a view tuple can only appear or
// disappear if one of its embeddings passes through r's region. If the
// view's flattened pattern is a *chain* (every node has at most one child)
// and stores the identifier of some node with no optional edge above it —
// the *witness* — then every row binds the witness to a concrete node, and
// for a changed row that node lies on r's root chain or inside r's
// subtree. Widening the scope root r' to the shallowest ancestor-or-self
// of r the witness chain can bind gives the key property: every embedding
// of every row whose witness lies in subtree-or-self(r') is itself fully
// contained in chain(r') ∪ subtree(r'). Evaluating the pattern scoped to
// that region (pattern.EvalScope) and keeping only witnessed rows
// therefore yields *exactly* the full extent's witnessed-row subset, on
// both sides of the update — so their set difference is the exact delta,
// and rows outside the witnessed subset are provably unchanged. No full
// re-evaluation, no full-extent diff; the multi-embedding and optional-⊥
// subtleties that defeat naive per-embedding differencing are handled by
// construction, because both sides see every surviving embedding of every
// candidate row.
//
// Views whose pattern is not a chain (a change in one branch pairs with
// bindings of sibling branches anywhere in the document) or stores no
// required identifier fall back to full recomputation for the batch.

// fastView is the per-view analysis enabling scoped diffing.
type fastView struct {
	// witnessReturn indexes the witness node in the flattened pattern's
	// return list; witnessCol is its id column in the renamed extent.
	witnessReturn int
	// chain is the witness node's root chain, for scope-root matching.
	chain []chainStep
	// cChains are the root chains of content-storing nodes strictly above
	// the witness. A change anywhere below such a binding rewrites the C
	// column of every row under it, so the scope root must hoist to the
	// shallowest node those chains can bind on the change's root chain.
	cChains [][]chainStep
}

// flattenChain returns the view's evaluation pattern with nesting markers
// stripped (mirroring view.MaterializeFlat) if it is a chain, else nil.
func flattenChain(v *core.View) *pattern.Pattern {
	pat := v.Pattern
	if v.Stored != nil {
		pat = v.Stored
	}
	flat := pat.Clone()
	for _, n := range flat.Nodes() {
		if len(n.Children) > 1 {
			return nil
		}
		n.Nested = false
	}
	return flat.Finish()
}

// analyzeFast decides scoped-diff eligibility for a view and computes its
// witness.
func analyzeFast(v *core.View) (*fastView, bool) {
	flat := flattenChain(v)
	if flat == nil {
		return nil, false
	}
	witness := -1
	var wnode *pattern.Node
	for k, rn := range flat.Returns() {
		if !rn.Attrs.Has(pattern.AttrID) {
			continue
		}
		required := true
		for cur := rn; cur.Parent != nil; cur = cur.Parent {
			if cur.Optional {
				required = false
				break
			}
		}
		if required {
			// Returns are in preorder; on a chain, later means deeper.
			witness, wnode = k, rn
		}
	}
	if witness < 0 {
		return nil, false
	}
	fv := &fastView{witnessReturn: witness, chain: chainOf(wnode)}
	for _, rn := range flat.Returns() {
		if rn.Attrs.Has(pattern.AttrContent) && rn.Index < wnode.Index {
			fv.cChains = append(fv.cChains, chainOf(rn))
		}
	}
	return fv, true
}

// updateScope is the scoped-diff region of one update for one fast view.
type updateScope struct {
	// pre is the scope root for the pre-apply evaluation; nil when the
	// changed region does not exist before the update (an insert whose
	// witness can only bind at or below the inserted root), in which case
	// the old scoped extent is empty by construction.
	pre nodeid.ID
	// postFromInserted indicates the post-apply scope root is the freshly
	// inserted node (filled in after the insert applies); otherwise the
	// post root equals pre.
	postFromInserted bool
}

// ancestorChain returns root..n and the corresponding label path.
func ancestorChain(n *xmltree.Node) (nodes []*xmltree.Node, labels []string) {
	var rev []*xmltree.Node
	for cur := n; cur != nil; cur = cur.Parent {
		rev = append(rev, cur)
	}
	for i := len(rev) - 1; i >= 0; i-- {
		nodes = append(nodes, rev[i])
		labels = append(labels, rev[i].Label)
	}
	return nodes, labels
}

// shallowestMatch returns the smallest i such that the chain can bind the
// i-th node of the label path (1-based prefix length), or -1.
func shallowestMatch(chain []chainStep, labels []string) int {
	for i := 1; i <= len(labels); i++ {
		if chainMatchesPath(chain, labels[:i]) {
			return i
		}
	}
	return -1
}

// shallowestScope returns the shallowest binding position of the witness
// chain or any fanning content chain on the label path, or -1.
func (fv *fastView) shallowestScope(labels []string) int {
	best := shallowestMatch(fv.chain, labels)
	for _, cc := range fv.cChains {
		if i := shallowestMatch(cc, labels); i >= 1 && (best < 0 || i < best) {
			best = i
		}
	}
	return best
}

// scopeFor computes the scoped-diff region for update u against a fast
// view, before the update applies. The changed node's ancestor-or-self
// chain is scanned top-down for the shallowest node the witness can bind;
// when the witness can only bind strictly inside the changed subtree, the
// scope root is the changed node itself.
func scopeFor(u xmltree.Update, doc *xmltree.Document, fv *fastView) (updateScope, bool) {
	switch u.Kind {
	case xmltree.UpdateInsert:
		parent := doc.FindByID(u.Parent)
		if parent == nil || u.Subtree == nil || u.Subtree.Root == nil {
			return updateScope{}, false
		}
		nodes, labels := ancestorChain(parent)
		labels = append(labels, u.Subtree.Root.Label)
		if i := fv.shallowestScope(labels); i >= 1 && i <= len(nodes) {
			return updateScope{pre: nodes[i-1].ID}, true
		}
		// The witness binds only at or below the inserted root, which does
		// not exist yet: nothing is witnessed pre-apply.
		return updateScope{postFromInserted: true}, true
	case xmltree.UpdateDelete, xmltree.UpdateSetValue:
		n := doc.FindByID(u.Target)
		if n == nil {
			return updateScope{}, false
		}
		nodes, labels := ancestorChain(n)
		if i := fv.shallowestScope(labels); i >= 1 {
			return updateScope{pre: nodes[i-1].ID}, true
		}
		return updateScope{pre: n.ID}, true
	case xmltree.UpdateRename:
		n := doc.FindByID(u.Target)
		if n == nil {
			return updateScope{}, false
		}
		nodes, labels := ancestorChain(n)
		i := fv.shallowestScope(labels)
		renamed := append(append([]string(nil), labels[:len(labels)-1]...), u.Label)
		if j := fv.shallowestScope(renamed); j >= 1 && (i < 0 || j < i) {
			i = j // the new shape matches shallower; cover both
		}
		if i >= 1 {
			return updateScope{pre: nodes[i-1].ID}, true
		}
		return updateScope{pre: n.ID}, true
	}
	return updateScope{}, false
}
