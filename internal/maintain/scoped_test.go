package maintain_test

import (
	"fmt"
	"math/rand"
	"testing"

	"xmlviews/internal/core"
	"xmlviews/internal/maintain"
	"xmlviews/internal/nrel"
	"xmlviews/internal/view"
	"xmlviews/internal/xmltree"
)

// computeChecked runs one batch and asserts every delta's New extent is
// tuple-identical to a from-scratch rematerialization of the updated
// document; it returns the batch for shape assertions.
func computeChecked(t *testing.T, doc *xmltree.Document, views []*core.View, ups ...xmltree.Update) *maintain.Batch {
	t.Helper()
	batch := compute(t, doc, views, ups...)
	newByView := map[string]*nrel.Relation{}
	for _, d := range batch.Deltas {
		newByView[d.View.Name] = d.New
	}
	for _, v := range views {
		want := view.MaterializeFlat(v, doc)
		got, ok := newByView[v.Name]
		if !ok {
			got = maintain.SortByKey(view.MaterializeFlat(v, doc)) // unchanged: recompute for comparison
		}
		if !got.EqualAsSet(want) {
			t.Fatalf("view %s extent diverges from rebuild\nmaintained:\n%s\nrebuild:\n%s",
				v.Name, got.Sorted(), want.Sorted())
		}
	}
	return batch
}

// TestScopedFastPathTaken: a chain view with a required id takes the
// scoped path, and the spliced extent matches a rebuild.
func TestScopedFastPathTaken(t *testing.T) {
	doc := xmltree.MustParseParen(
		`site(region(item(name "pen") item(name "ink")) region(item(name "pad")))`)
	v := mkView("v", `site(//item[id](/name[v]))`)
	target := doc.Root.Children[0].Children[0].Children[0] // first name
	batch := computeChecked(t, doc, []*core.View{v},
		xmltree.Update{Kind: xmltree.UpdateSetValue, Target: target.ID, Value: "pencil"})
	if batch.Scoped != 1 {
		t.Fatalf("Scoped = %d, want 1 (fast path not taken)", batch.Scoped)
	}
	if len(batch.Deltas) != 1 || batch.Deltas[0].Adds.Len() != 1 || batch.Deltas[0].Dels.Len() != 1 {
		t.Fatalf("unexpected delta shape: %+v", batch.Deltas)
	}
}

// TestScopedDuplicateValueAcrossBoundary: two sibling names carry the same
// value; retexting one must keep the row alive (the sibling embedding is
// outside the retexted node's subtree but inside the widened witness
// scope).
func TestScopedDuplicateValueAcrossBoundary(t *testing.T) {
	doc := xmltree.MustParseParen(`site(item(name "pen" name "pen"))`)
	v := mkView("v", `site(/item[id](/name[v]))`)
	n1 := doc.Root.Children[0].Children[0]
	batch := computeChecked(t, doc, []*core.View{v},
		xmltree.Update{Kind: xmltree.UpdateSetValue, Target: n1.ID, Value: "ink"})
	if batch.Scoped != 1 {
		t.Fatalf("Scoped = %d, want 1", batch.Scoped)
	}
	d := batch.Deltas[0]
	// (item,"pen") survives via the second name; only (item,"ink") is added.
	if d.Adds.Len() != 1 || d.Dels.Len() != 0 {
		t.Fatalf("adds %d dels %d, want 1/0\nadds:\n%s\ndels:\n%s", d.Adds.Len(), d.Dels.Len(), d.Adds, d.Dels)
	}
}

// TestScopedContentAboveWitness: a content column stored above the witness
// fans a deep change out to every row under the content binding; the scope
// must hoist to it.
func TestScopedContentAboveWitness(t *testing.T) {
	doc := xmltree.MustParseParen(
		`site(people(person(name "ann") person(name "bob")))`)
	v := mkView("v", `site(/people[c](/person[id]))`)
	deep := doc.Root.Children[0].Children[0].Children[0] // ann's name
	batch := computeChecked(t, doc, []*core.View{v},
		xmltree.Update{Kind: xmltree.UpdateSetValue, Target: deep.ID, Value: "anne"})
	if batch.Scoped != 1 {
		t.Fatalf("Scoped = %d, want 1", batch.Scoped)
	}
	// Every row's C column changed: 2 dels + 2 adds.
	d := batch.Deltas[0]
	if d.Adds.Len() != 2 || d.Dels.Len() != 2 {
		t.Fatalf("adds %d dels %d, want 2/2 (content fan-out missed)", d.Adds.Len(), d.Dels.Len())
	}
}

// TestScopedOptionalFlip: optional edges below the witness flip between ⊥
// and bound on the scoped path too.
func TestScopedOptionalFlip(t *testing.T) {
	doc := xmltree.MustParseParen(`site(person(name "ann") person(name "bob" phone "1"))`)
	v := mkView("v", `site(/person[id](?/phone[v]))`)
	p1 := doc.Root.Children[0]
	batch := computeChecked(t, doc, []*core.View{v},
		ins(p1.ID.String(), "", `phone "2"`))
	if batch.Scoped != 1 {
		t.Fatalf("Scoped = %d, want 1", batch.Scoped)
	}
	d := batch.Deltas[0]
	if d.Adds.Len() != 1 || d.Dels.Len() != 1 {
		t.Fatalf("adds %d dels %d, want 1/1 (⊥ retraction missed)", d.Adds.Len(), d.Dels.Len())
	}
}

// TestScopedFallbackMultiBranch: a branching pattern is not scoped-
// diffable and must fall back to full recomputation — still correct.
func TestScopedFallbackMultiBranch(t *testing.T) {
	doc := xmltree.MustParseParen(`site(item(name "pen" price "3"))`)
	v := mkView("v", `site(/item[id](/name[v] /price[v]))`)
	batch := computeChecked(t, doc, []*core.View{v},
		ins("1", "", `item(name "ink" price "7")`))
	if batch.Scoped != 0 {
		t.Fatalf("Scoped = %d, want 0 (multi-branch must fall back)", batch.Scoped)
	}
	if len(batch.Deltas) != 1 || batch.Deltas[0].Adds.Len() != 1 {
		t.Fatalf("unexpected delta: %+v", batch.Deltas)
	}
}

// TestScopedNoIDFallback: a chain view storing no identifier has no
// witness and must fall back.
func TestScopedNoIDFallback(t *testing.T) {
	doc := xmltree.MustParseParen(`site(item(name "pen"))`)
	v := mkView("v", `site(//name[v])`)
	batch := computeChecked(t, doc, []*core.View{v},
		ins("1", "", `item(name "pen")`)) // duplicate value: extent unchanged
	if batch.Scoped != 0 {
		t.Fatalf("Scoped = %d, want 0", batch.Scoped)
	}
	if len(batch.Deltas) != 0 {
		t.Fatalf("set semantics violated: %+v", batch.Deltas[0].Adds)
	}
}

// TestScopedRenameSubtree: renaming an interior node moves whole-subtree
// rows between shapes on the scoped path.
func TestScopedRenameSubtree(t *testing.T) {
	doc := xmltree.MustParseParen(
		`site(region(item(name "pen")) region(item(name "ink")))`)
	v := mkView("v", `site(//item[id](/name[v]))`)
	r1 := doc.Root.Children[0]
	batch := computeChecked(t, doc, []*core.View{v},
		xmltree.Update{Kind: xmltree.UpdateRename, Target: r1.ID, Label: "zone"})
	if batch.Scoped != 1 {
		t.Fatalf("Scoped = %d, want 1", batch.Scoped)
	}
	// //item still matches under the renamed region, so nothing changes.
	if len(batch.Deltas) != 0 {
		t.Fatalf("rename under // should not change the extent: %+v", batch.Deltas)
	}

	// Renaming the item itself retracts its row.
	item := r1.Children[0]
	batch = computeChecked(t, doc, []*core.View{v},
		xmltree.Update{Kind: xmltree.UpdateRename, Target: item.ID, Label: "gadget"})
	if len(batch.Deltas) != 1 || batch.Deltas[0].Dels.Len() != 1 || batch.Deltas[0].Adds.Len() != 0 {
		t.Fatalf("rename of item should retract one row: %+v", batch.Deltas)
	}
}

// TestScopedMultiUpdateBatchNets: within one batch, an insert followed by
// a delete of the same subtree must net out to no delta.
func TestScopedMultiUpdateBatchNets(t *testing.T) {
	doc := xmltree.MustParseParen(`site(item(name "pen"))`)
	v := mkView("v", `site(//item[id](/name[v]))`)
	st := view.NewStore(doc, []*core.View{v})
	batch, err := st.ApplyUpdates([]xmltree.Update{
		{Kind: xmltree.UpdateInsert, Parent: doc.Root.ID, Subtree: xmltree.MustParseParen(`item(name "ink")`)},
	})
	if err != nil {
		t.Fatal(err)
	}
	inserted := doc.Root.Children[len(doc.Root.Children)-1]
	batch, err = st.ApplyUpdates([]xmltree.Update{
		{Kind: xmltree.UpdateSetValue, Target: inserted.Children[0].ID, Value: "dye"},
		{Kind: xmltree.UpdateDelete, Target: inserted.ID},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Deltas) != 1 {
		t.Fatalf("deltas = %d, want 1 (the ink row leaves)", len(batch.Deltas))
	}
	d := batch.Deltas[0]
	if d.Adds.Len() != 0 || d.Dels.Len() != 1 {
		t.Fatalf("netting failed: adds %d dels %d\nadds:\n%s\ndels:\n%s", d.Adds.Len(), d.Dels.Len(), d.Adds, d.Dels)
	}
	if want := view.MaterializeFlat(v, doc); !d.New.EqualAsSet(want) {
		t.Fatalf("final extent diverges:\n%s\nwant:\n%s", d.New.Sorted(), want.Sorted())
	}
}

// TestScopedRandomParity drives random batches through a store whose views
// are all scoped-diffable and cross-checks extents against rebuilds — a
// focused differential for the fast path (the broader oracle in
// internal/view covers mixed fast/fallback stores).
func TestScopedRandomParity(t *testing.T) {
	labels := []string{"region", "item", "name", "price", "note"}
	views := []*core.View{
		mkView("vitem", `site(//item[id](/name[v]))`),
		mkView("vprice", `site(//price[id,v])`),
		mkView("vnote", `site(//item[id,c])`),
		mkView("vopt", `site(//item[id](?/note[v]))`),
	}
	for seed := int64(0); seed < 3; seed++ {
		r := rand.New(rand.NewSource(400 + seed))
		doc := xmltree.MustParseParen(
			`site(region(item(name "a" price "1") item(name "b")) region(item(name "a" note "n")))`)
		st := view.NewStore(doc, views)
		for round := 0; round < 60; round++ {
			nodes := doc.Nodes()
			n := nodes[r.Intn(len(nodes))]
			var u xmltree.Update
			switch r.Intn(4) {
			case 0:
				sub := xmltree.NewDocument(labels[r.Intn(len(labels))])
				sub.Root.Value = fmt.Sprintf("s%d", round)
				if r.Intn(2) == 0 {
					sub.Root.AddChild(labels[r.Intn(len(labels))], "a")
				}
				u = xmltree.Update{Kind: xmltree.UpdateInsert, Parent: n.ID, Subtree: sub}
			case 1:
				if n.Parent == nil || doc.Size() < 5 {
					continue
				}
				u = xmltree.Update{Kind: xmltree.UpdateDelete, Target: n.ID}
			case 2:
				if n.Parent == nil {
					continue
				}
				u = xmltree.Update{Kind: xmltree.UpdateRename, Target: n.ID, Label: labels[r.Intn(len(labels))]}
			default:
				u = xmltree.Update{Kind: xmltree.UpdateSetValue, Target: n.ID, Value: fmt.Sprintf("t%d", r.Intn(4))}
			}
			if _, err := st.ApplyUpdates([]xmltree.Update{u}); err != nil {
				t.Fatalf("seed %d round %d: %v", seed, round, err)
			}
			for _, v := range views {
				want := view.MaterializeFlat(v, doc)
				if got := st.Relation(v); !got.EqualAsSet(want) {
					t.Fatalf("seed %d round %d (%v): %s diverged\nmaintained:\n%s\nrebuild:\n%s",
						seed, round, u.Kind, v.Name, got.Sorted(), want.Sorted())
				}
			}
		}
	}
}
