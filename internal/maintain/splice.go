package maintain

import (
	"sort"

	"xmlviews/internal/nrel"
)

// Maintained extents are kept sorted by each row's rendered key (the same
// rendering set semantics uses for row identity everywhere). The sorted
// invariant is what makes per-batch maintenance proportional to the delta:
// membership tests and splices are binary searches instead of full-extent
// map builds.

// SortByKey returns a copy of the relation with rows sorted by their
// rendered keys. Keys are computed once per row (O(n) renders, not
// O(n log n)). view.Store establishes the maintained-extent invariant with
// it when updates begin.
//
//xvlint:nopoll runs once per view under the update lock when updates begin; sorts cannot be resumed
func SortByKey(r *nrel.Relation) *nrel.Relation {
	out := nrel.NewRelation(r.Cols...)
	out.Rows = append([]nrel.Tuple(nil), r.Rows...)
	keys := make([]string, len(out.Rows))
	for i, row := range out.Rows {
		keys[i] = rowKey(row)
	}
	sort.Sort(&keyedRows{rows: out.Rows, keys: keys})
	return out
}

type keyedRows struct {
	rows []nrel.Tuple
	keys []string
}

func (k *keyedRows) Len() int           { return len(k.rows) }
func (k *keyedRows) Less(i, j int) bool { return k.keys[i] < k.keys[j] }
func (k *keyedRows) Swap(i, j int) {
	k.rows[i], k.rows[j] = k.rows[j], k.rows[i]
	k.keys[i], k.keys[j] = k.keys[j], k.keys[i]
}

// keyCache memoizes rendered row keys during one splice. The binary
// searches for a batch's delta rows revisit the same upper midpoints, and
// rendering a row is not free (content columns serialize whole subtrees),
// so each probed row is rendered at most once per splice. Rows are
// identified by their first value's address: splices move tuple headers
// around, but a row's backing values stay put, so the identity survives
// the memmoves (unlike an index or a slice-element pointer).
type keyCache map[*nrel.Value]string

func (kc keyCache) key(row nrel.Tuple) string {
	if len(row) == 0 {
		return rowKey(row)
	}
	p := &row[0]
	if k, ok := kc[p]; ok {
		return k
	}
	k := rowKey(row)
	kc[p] = k
	return k
}

// spliceSorted applies a small delta to a key-sorted extent in place:
// deleted keys leave, added rows enter at their sorted position when
// absent. It reports which rows actually changed membership, so callers
// can accumulate exact net deltas under set semantics. Cost per delta row
// is O(log n) key comparisons (probed keys render once per splice) plus
// the memmove.
//
//xvlint:nopoll in-place extent mutation under the update lock; a partial splice is a corrupt extent
func spliceSorted(rel *nrel.Relation, adds, dels *nrel.Relation) (added, deleted []nrel.Tuple) {
	kc := keyCache{}
	search := func(key string) (int, bool) {
		pos := sort.Search(len(rel.Rows), func(i int) bool { return kc.key(rel.Rows[i]) >= key })
		return pos, pos < len(rel.Rows) && kc.key(rel.Rows[pos]) == key
	}
	for _, row := range dels.Rows {
		if pos, ok := search(rowKey(row)); ok {
			rel.Rows = append(rel.Rows[:pos], rel.Rows[pos+1:]...)
			deleted = append(deleted, row)
		}
	}
	for _, row := range adds.Rows {
		key := rowKey(row)
		if pos, ok := search(key); !ok {
			rel.Rows = append(rel.Rows, nil)
			copy(rel.Rows[pos+1:], rel.Rows[pos:])
			rel.Rows[pos] = row
			added = append(added, row)
		}
	}
	return added, deleted
}

// diffKeyed returns the rows of b absent from a (adds) and the rows of a
// absent from b (dels), under set semantics; a may be nil (everything in b
// is an add). Both inputs are small scoped relations, so plain maps are
// fine here.
//
//xvlint:nopoll inputs are one update's scoped evaluations, bounded by scope size, under the update lock
func diffKeyed(a, b *nrel.Relation) (adds, dels *nrel.Relation) {
	adds, dels = nrel.NewRelation(b.Cols...), nrel.NewRelation(b.Cols...)
	var aKeys map[string]bool
	if a != nil {
		aKeys = make(map[string]bool, len(a.Rows))
		for _, row := range a.Rows {
			aKeys[rowKey(row)] = true
		}
	}
	bKeys := make(map[string]bool, b.Len())
	for _, row := range b.Rows {
		k := rowKey(row)
		bKeys[k] = true
		if !aKeys[k] {
			adds.Rows = append(adds.Rows, row)
		}
	}
	if a != nil {
		for _, row := range a.Rows {
			if !bKeys[rowKey(row)] {
				dels.Rows = append(dels.Rows, row)
			}
		}
	}
	return adds, dels
}

// netDelta accumulates one view's membership changes across the updates of
// a batch: a row added then deleted (or vice versa) nets out.
type netDelta struct {
	add map[string]nrel.Tuple
	del map[string]nrel.Tuple
}

func newNetDelta() *netDelta {
	return &netDelta{add: map[string]nrel.Tuple{}, del: map[string]nrel.Tuple{}}
}

func (nd *netDelta) addRow(row nrel.Tuple) {
	k := rowKey(row)
	if _, ok := nd.del[k]; ok {
		delete(nd.del, k)
		return
	}
	nd.add[k] = row
}

func (nd *netDelta) delRow(row nrel.Tuple) {
	k := rowKey(row)
	if _, ok := nd.add[k]; ok {
		delete(nd.add, k)
		return
	}
	nd.del[k] = row
}

func (nd *netDelta) empty() bool { return len(nd.add) == 0 && len(nd.del) == 0 }

// relations renders the accumulated delta as two relations with rows in
// key order, so persisted delta segments are deterministic.
func (nd *netDelta) relations(cols []string) (adds, dels *nrel.Relation) {
	adds, dels = nrel.NewRelation(cols...), nrel.NewRelation(cols...)
	for _, m := range []struct {
		src map[string]nrel.Tuple
		dst *nrel.Relation
	}{{nd.add, adds}, {nd.del, dels}} {
		keys := make([]string, 0, len(m.src))
		for k := range m.src {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			m.dst.Rows = append(m.dst.Rows, m.src[k])
		}
	}
	return adds, dels
}
