// Package nodeid implements Dewey-style structural node identifiers.
//
// A Dewey ID encodes the path of child ordinals from the document root to a
// node: the root is [1], its first child [1 1], the third child of that
// child [1 1 3], and so on. Dewey IDs have the two "structural ID"
// properties the paper relies on (Section 1 and Section 4.6):
//
//   - the parent/ancestor relationship between two nodes is decidable by
//     comparing their IDs alone (prefix test), enabling structural joins;
//   - the ID of a node's parent is derivable from the node's own ID
//     (truncation), enabling "virtual ID" attributes during rewriting.
//
// IDs also order nodes in document order (lexicographic comparison), which
// the stack-based structural join in internal/algebra depends on.
package nodeid

import (
	"fmt"
	"strconv"
	"strings"
)

// ID is a Dewey structural identifier. The zero value (nil) is the "null"
// ID, used for optional pattern nodes that did not bind.
type ID []uint32

// New returns a copy of the given components as an ID.
func New(components ...uint32) ID {
	id := make(ID, len(components))
	copy(id, components)
	return id
}

// Root is the ID of a document root.
func Root() ID { return ID{1} }

// IsNull reports whether the ID is the null identifier.
func (id ID) IsNull() bool { return len(id) == 0 }

// Depth returns the depth of the node; the root has depth 1.
func (id ID) Depth() int { return len(id) }

// Child returns the ID of the ord-th child (1-based) of the node.
func (id ID) Child(ord uint32) ID {
	c := make(ID, len(id)+1)
	copy(c, id)
	c[len(id)] = ord
	return c
}

// Parent returns the ID of the node's parent, or the null ID for the root
// (and for the null ID). This is the navfID primitive of Section 4.6.
func (id ID) Parent() ID {
	if len(id) <= 1 {
		return nil
	}
	return id[:len(id)-1].Clone()
}

// AncestorAtDepth returns the prefix of the ID at the given depth, or the
// null ID if depth is out of range. AncestorAtDepth(id.Depth()) is the ID
// itself.
func (id ID) AncestorAtDepth(depth int) ID {
	if depth < 1 || depth > len(id) {
		return nil
	}
	return id[:depth].Clone()
}

// Clone returns an independent copy of the ID.
func (id ID) Clone() ID {
	if id == nil {
		return nil
	}
	c := make(ID, len(id))
	copy(c, id)
	return c
}

// Equal reports whether two IDs identify the same node.
func (id ID) Equal(other ID) bool {
	if len(id) != len(other) {
		return false
	}
	for i := range id {
		if id[i] != other[i] {
			return false
		}
	}
	return true
}

// IsAncestorOf reports whether id is a proper ancestor of other.
func (id ID) IsAncestorOf(other ID) bool {
	if len(id) == 0 || len(id) >= len(other) {
		return false
	}
	for i := range id {
		if id[i] != other[i] {
			return false
		}
	}
	return true
}

// IsParentOf reports whether id is the parent of other.
func (id ID) IsParentOf(other ID) bool {
	return len(other) == len(id)+1 && id.IsAncestorOf(other)
}

// Compare orders IDs in document order: -1 if id precedes other, 0 if they
// are equal, +1 if id follows other. An ancestor precedes its descendants.
func (id ID) Compare(other ID) int {
	n := len(id)
	if len(other) < n {
		n = len(other)
	}
	for i := 0; i < n; i++ {
		switch {
		case id[i] < other[i]:
			return -1
		case id[i] > other[i]:
			return 1
		}
	}
	switch {
	case len(id) < len(other):
		return -1
	case len(id) > len(other):
		return 1
	}
	return 0
}

// String renders the ID in dotted form, e.g. "1.3.2". The null ID renders
// as "⊥".
func (id ID) String() string {
	if id.IsNull() {
		return "⊥"
	}
	var b strings.Builder
	for i, c := range id {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.FormatUint(uint64(c), 10))
	}
	return b.String()
}

// Parse parses a dotted Dewey ID such as "1.3.2". It rejects empty input
// and non-positive components.
func Parse(s string) (ID, error) {
	if s == "" || s == "⊥" {
		return nil, nil
	}
	parts := strings.Split(s, ".")
	id := make(ID, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("nodeid: invalid component %q in %q: %v", p, s, err)
		}
		if v == 0 {
			return nil, fmt.Errorf("nodeid: component must be positive in %q", s)
		}
		id = append(id, uint32(v))
	}
	return id, nil
}

// VerticalDistance returns the depth difference other.Depth()-id.Depth() if
// id is an ancestor-or-self of other, and ok=false otherwise. Rewriting
// uses it to detect the constant "vertical distance" condition that enables
// virtual IDs (Section 4.6).
func (id ID) VerticalDistance(other ID) (dist int, ok bool) {
	if id.Equal(other) {
		return 0, true
	}
	if id.IsAncestorOf(other) {
		return len(other) - len(id), true
	}
	return 0, false
}
