// Package nodeid implements Dewey-style structural node identifiers with
// ORDPATH-like careting for order-preserving insertion.
//
// A Dewey ID encodes the path of level ordinals from the document root to a
// node. Dewey IDs have the two "structural ID" properties the paper relies
// on (Section 1 and Section 4.6):
//
//   - the parent/ancestor relationship between two nodes is decidable by
//     comparing their IDs alone (prefix test), enabling structural joins;
//   - the ID of a node's parent is derivable from the node's own ID
//     (truncation), enabling "virtual ID" attributes during rewriting.
//
// IDs also order nodes in document order (lexicographic comparison), which
// the stack-based structural join in internal/algebra depends on.
//
// # Careting
//
// To keep those properties under document updates, components follow the
// ORDPATH convention (O'Neil et al., SIGMOD 2004): an odd component
// terminates a level, while an even component (0 included) is a caret that
// extends the current level with the following components. Children are
// born with odd ordinals 1, 3, 5, …; inserting a sibling between 1.3 and
// 1.5 allocates 1.4.1 — one level deep, ordered between its neighbours —
// without renumbering any existing node. Every well-formed node ID
// therefore ends in an odd component, a proper prefix ending in an odd
// component is exactly an ancestor, and lexicographic order remains
// document order.
package nodeid

import (
	"fmt"
	"strconv"
	"strings"
)

// ID is a Dewey structural identifier. The zero value (nil) is the "null"
// ID, used for optional pattern nodes that did not bind.
type ID []uint32

// New returns a copy of the given components as an ID.
func New(components ...uint32) ID {
	id := make(ID, len(components))
	copy(id, components)
	return id
}

// Root is the ID of a document root.
func Root() ID { return ID{1} }

// IsNull reports whether the ID is the null identifier.
func (id ID) IsNull() bool { return len(id) == 0 }

// IsWellFormed reports whether the ID is a well-formed node identifier:
// non-null and ending in an odd (level-terminating) component.
func (id ID) IsWellFormed() bool {
	return len(id) > 0 && id[len(id)-1]%2 == 1
}

// Depth returns the depth of the node — the number of levels, i.e. of odd
// components; the root has depth 1. Caret (even) components extend the
// level ended by the next odd component and do not add depth.
func (id ID) Depth() int {
	d := 0
	for _, c := range id {
		if c%2 == 1 {
			d++
		}
	}
	return d
}

// Child returns the ID of the ord-th child (1-based birth position) of the
// node: ordinal k is encoded as the odd component 2k-1, leaving the even
// components free for carets.
func (id ID) Child(ord uint32) ID {
	c := make(ID, len(id)+1)
	copy(c, id)
	c[len(id)] = 2*ord - 1
	return c
}

// Parent returns the ID of the node's parent, or the null ID for the root
// (and for the null ID). This is the navfID primitive of Section 4.6. The
// whole last level is stripped: its terminating odd component and any caret
// components gluing to it.
func (id ID) Parent() ID {
	i := len(id) - 1
	if i < 0 {
		return nil
	}
	// Skip the terminating component, then any carets before it.
	for i--; i >= 0 && id[i]%2 == 0; i-- {
	}
	if i < 0 {
		return nil
	}
	return id[:i+1].Clone()
}

// AncestorAtDepth returns the prefix of the ID covering the first depth
// levels, or the null ID if depth is out of range. AncestorAtDepth(
// id.Depth()) is the ID itself.
func (id ID) AncestorAtDepth(depth int) ID {
	if depth < 1 {
		return nil
	}
	seen := 0
	for i, c := range id {
		if c%2 == 1 {
			seen++
			if seen == depth {
				return id[:i+1].Clone()
			}
		}
	}
	return nil
}

// Clone returns an independent copy of the ID.
func (id ID) Clone() ID {
	if id == nil {
		return nil
	}
	c := make(ID, len(id))
	copy(c, id)
	return c
}

// Equal reports whether two IDs identify the same node.
func (id ID) Equal(other ID) bool {
	if len(id) != len(other) {
		return false
	}
	for i := range id {
		if id[i] != other[i] {
			return false
		}
	}
	return true
}

// IsAncestorOf reports whether id is a proper ancestor of other. For
// well-formed IDs (odd last component) the proper-prefix test is exact:
// a prefix ending in an odd component always falls on a level boundary.
func (id ID) IsAncestorOf(other ID) bool {
	if len(id) == 0 || len(id) >= len(other) {
		return false
	}
	for i := range id {
		if id[i] != other[i] {
			return false
		}
	}
	return true
}

// IsParentOf reports whether id is the parent of other: an ancestor whose
// remainder is exactly one level.
func (id ID) IsParentOf(other ID) bool {
	if !id.IsAncestorOf(other) {
		return false
	}
	levels := 0
	for _, c := range other[len(id):] {
		if c%2 == 1 {
			levels++
		}
	}
	return levels == 1
}

// Compare orders IDs in document order: -1 if id precedes other, 0 if they
// are equal, +1 if id follows other. An ancestor precedes its descendants.
func (id ID) Compare(other ID) int {
	n := len(id)
	if len(other) < n {
		n = len(other)
	}
	for i := 0; i < n; i++ {
		switch {
		case id[i] < other[i]:
			return -1
		case id[i] > other[i]:
			return 1
		}
	}
	switch {
	case len(id) < len(other):
		return -1
	case len(id) > len(other):
		return 1
	}
	return 0
}

// String renders the ID in dotted form, e.g. "1.3.2". The null ID renders
// as "⊥".
func (id ID) String() string {
	if id.IsNull() {
		return "⊥"
	}
	var b strings.Builder
	for i, c := range id {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.FormatUint(uint64(c), 10))
	}
	return b.String()
}

// Parse parses a dotted Dewey ID such as "1.3.2". It rejects empty
// components and IDs that are not well-formed node identifiers (the last
// component must be odd; caret components, 0 included, may only appear
// before it).
func Parse(s string) (ID, error) {
	if s == "" || s == "⊥" {
		return nil, nil
	}
	parts := strings.Split(s, ".")
	id := make(ID, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("nodeid: invalid component %q in %q: %v", p, s, err)
		}
		id = append(id, uint32(v))
	}
	if !id.IsWellFormed() {
		return nil, fmt.Errorf("nodeid: %q does not end in an odd (level-terminating) component", s)
	}
	return id, nil
}

// VerticalDistance returns the depth difference other.Depth()-id.Depth() if
// id is an ancestor-or-self of other, and ok=false otherwise. Rewriting
// uses it to detect the constant "vertical distance" condition that enables
// virtual IDs (Section 4.6).
func (id ID) VerticalDistance(other ID) (dist int, ok bool) {
	if id.Equal(other) {
		return 0, true
	}
	if id.IsAncestorOf(other) {
		return other.Depth() - id.Depth(), true
	}
	return 0, false
}

// SiblingBetween allocates a fresh child ID under parent, ordered strictly
// between the adjacent siblings left and right (either or both may be nil:
// nil left means insert before the first child, nil right means append
// after the last). No existing ID changes — this is the Dewey-order-
// preserving allocation used by subtree insertion. left and right must be
// children of parent, with left < right when both are given.
func SiblingBetween(parent, left, right ID) (ID, error) {
	check := func(name string, sib ID) ([]uint32, error) {
		if !parent.IsParentOf(sib) {
			return nil, fmt.Errorf("nodeid: %s sibling %s is not a child of %s", name, sib, parent)
		}
		return sib[len(parent):], nil
	}
	var level []uint32
	switch {
	case left == nil && right == nil:
		level = []uint32{1}
	case left == nil:
		r, err := check("right", right)
		if err != nil {
			return nil, err
		}
		level = levelBefore(r)
	case right == nil:
		l, err := check("left", left)
		if err != nil {
			return nil, err
		}
		level = levelAfter(l)
	default:
		l, err := check("left", left)
		if err != nil {
			return nil, err
		}
		r, err := check("right", right)
		if err != nil {
			return nil, err
		}
		if left.Compare(right) >= 0 {
			return nil, fmt.Errorf("nodeid: siblings out of order (%s >= %s)", left, right)
		}
		level = levelBetween(l, r)
	}
	out := make(ID, 0, len(parent)+len(level))
	out = append(out, parent...)
	out = append(out, level...)
	return out, nil
}

// A level is a component sequence of the form even* odd: zero or more
// caret components followed by one terminating odd component. The helpers
// below construct levels ordered around existing ones; all results keep
// that form, so concatenating parent+level always yields a well-formed ID.

// levelBefore returns a level strictly below s in lexicographic order.
func levelBefore(s []uint32) []uint32 {
	switch {
	case s[0] == 0:
		// Can't go below a 0 caret at this position; recurse past it.
		return append([]uint32{0}, levelBefore(s[1:])...)
	case s[0]%2 == 0:
		// Even ≥ 2: the odd value just below it terminates a level.
		return []uint32{s[0] - 1}
	case s[0] >= 3:
		return []uint32{s[0] - 2}
	default: // s == [1]
		return []uint32{0, 1}
	}
}

// levelAfter returns a level strictly above s.
func levelAfter(s []uint32) []uint32 {
	if s[0]%2 == 1 {
		return []uint32{s[0] + 2}
	}
	return []uint32{s[0] + 1}
}

// levelBetween returns a level strictly between l and r (l < r). Distinct
// levels are never prefixes of one another (each contains exactly one odd
// component, its last), so they differ at some position.
func levelBetween(l, r []uint32) []uint32 {
	i := 0
	for ; i < len(l) && i < len(r) && l[i] == r[i]; i++ {
	}
	if r[i]-l[i] >= 2 {
		// Room for a component strictly between the two.
		x := l[i] + 1
		out := append(append([]uint32{}, l[:i]...), x)
		if x%2 == 0 {
			out = append(out, 1)
		}
		return out
	}
	// Adjacent components: no integer fits at position i.
	if i < len(l)-1 {
		// l extends beyond i, so bumping its terminating odd component into
		// a caret stays below r (they still differ at i).
		out := append([]uint32{}, l[:len(l)-1]...)
		return append(out, l[len(l)-1]+1, 1)
	}
	// l ends at i; r[i] = l[i]+1 is even, so r extends further. Follow r
	// and drop just below its remaining components.
	out := append([]uint32{}, r[:i+1]...)
	return append(out, levelBefore(r[i+1:])...)
}
