package nodeid

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestRootAndChildren(t *testing.T) {
	r := Root()
	if got := r.String(); got != "1" {
		t.Fatalf("Root() = %q, want %q", got, "1")
	}
	c := r.Child(3)
	if got := c.String(); got != "1.3" {
		t.Fatalf("Child(3) = %q, want %q", got, "1.3")
	}
	gc := c.Child(2)
	if got := gc.String(); got != "1.3.2" {
		t.Fatalf("grandchild = %q, want %q", got, "1.3.2")
	}
	if gc.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3", gc.Depth())
	}
}

func TestParentDerivation(t *testing.T) {
	id := New(1, 5, 3, 1)
	p := id.Parent()
	if got := p.String(); got != "1.5.3" {
		t.Fatalf("Parent = %q, want 1.5.3", got)
	}
	if got := Root().Parent(); !got.IsNull() {
		t.Fatalf("Parent of root = %v, want null", got)
	}
	if got := ID(nil).Parent(); !got.IsNull() {
		t.Fatalf("Parent of null = %v, want null", got)
	}
}

func TestAncestorAtDepth(t *testing.T) {
	id := New(1, 5, 3, 1)
	cases := []struct {
		depth int
		want  string
	}{
		{1, "1"}, {2, "1.5"}, {3, "1.5.3"}, {4, "1.5.3.1"},
	}
	for _, c := range cases {
		if got := id.AncestorAtDepth(c.depth).String(); got != c.want {
			t.Errorf("AncestorAtDepth(%d) = %q, want %q", c.depth, got, c.want)
		}
	}
	if got := id.AncestorAtDepth(0); !got.IsNull() {
		t.Errorf("AncestorAtDepth(0) = %v, want null", got)
	}
	if got := id.AncestorAtDepth(5); !got.IsNull() {
		t.Errorf("AncestorAtDepth(5) = %v, want null", got)
	}
}

func TestStructuralRelationships(t *testing.T) {
	a := New(1, 3)
	b := New(1, 3, 2)
	c := New(1, 3, 2, 7)
	d := New(1, 4)

	if !a.IsParentOf(b) {
		t.Error("1.3 should be parent of 1.3.2")
	}
	if a.IsParentOf(c) {
		t.Error("1.3 should not be parent of 1.3.2.7")
	}
	if !a.IsAncestorOf(c) {
		t.Error("1.3 should be ancestor of 1.3.2.7")
	}
	if a.IsAncestorOf(a) {
		t.Error("ancestor must be proper")
	}
	if a.IsAncestorOf(d) || d.IsAncestorOf(a) {
		t.Error("siblings are not ancestors")
	}
	if b.IsAncestorOf(a) {
		t.Error("descendant is not ancestor")
	}
}

func TestDocumentOrder(t *testing.T) {
	ids := []ID{
		New(1, 3, 2, 7),
		New(1),
		New(1, 4),
		New(1, 3),
		New(1, 3, 2),
		New(1, 3, 10),
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Compare(ids[j]) < 0 })
	want := []string{"1", "1.3", "1.3.2", "1.3.2.7", "1.3.10", "1.4"}
	for i, w := range want {
		if got := ids[i].String(); got != w {
			t.Fatalf("sorted[%d] = %q, want %q (full %v)", i, got, w, ids)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, s := range []string{"1", "1.2.3", "1.100.42"} {
		id, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if id.String() != s {
			t.Fatalf("round trip %q -> %q", s, id.String())
		}
	}
	for _, s := range []string{"a", "1.0", "1..2", "1.-3"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
	if id, err := Parse(""); err != nil || !id.IsNull() {
		t.Errorf("Parse(\"\") = %v, %v; want null, nil", id, err)
	}
}

func TestVerticalDistance(t *testing.T) {
	a := New(1, 2)
	b := New(1, 2, 4, 9)
	if d, ok := a.VerticalDistance(b); !ok || d != 2 {
		t.Errorf("VerticalDistance = %d,%v; want 2,true", d, ok)
	}
	if d, ok := a.VerticalDistance(a); !ok || d != 0 {
		t.Errorf("self distance = %d,%v; want 0,true", d, ok)
	}
	if _, ok := b.VerticalDistance(a); ok {
		t.Error("descendant->ancestor distance should fail")
	}
	if _, ok := New(1, 3).VerticalDistance(b); ok {
		t.Error("unrelated distance should fail")
	}
}

func randomID(r *rand.Rand) ID {
	depth := 1 + r.Intn(6)
	id := make(ID, depth)
	id[0] = 1
	for i := 1; i < depth; i++ {
		id[i] = uint32(1 + r.Intn(9))
	}
	return id
}

// Property: Compare is a total order consistent with Equal, and an ancestor
// always precedes its descendants.
func TestCompareProperties(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		a, b := randomID(r), randomID(r)
		ab, ba := a.Compare(b), b.Compare(a)
		if ab != -ba {
			t.Fatalf("Compare not antisymmetric: %v vs %v: %d %d", a, b, ab, ba)
		}
		if (ab == 0) != a.Equal(b) {
			t.Fatalf("Compare==0 disagrees with Equal: %v vs %v", a, b)
		}
		if a.IsAncestorOf(b) && ab != -1 {
			t.Fatalf("ancestor %v should precede descendant %v", a, b)
		}
	}
}

// Property: Parent is the unique ancestor at depth-1, and parse/print round-trips.
func TestParentProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		id := ID{1}
		for _, c := range raw {
			id = append(id, uint32(c%9)+1)
		}
		if id.Depth() > 1 {
			p := id.Parent()
			if !p.IsParentOf(id) || !p.Equal(id.AncestorAtDepth(id.Depth()-1)) {
				return false
			}
		}
		back, err := Parse(id.String())
		return err == nil && back.Equal(id)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(1, 2, 3)
	b := a.Clone()
	b[2] = 9
	if a[2] != 3 {
		t.Fatal("Clone shares storage with original")
	}
}
