package nodeid

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestRootAndChildren(t *testing.T) {
	r := Root()
	if got := r.String(); got != "1" {
		t.Fatalf("Root() = %q, want %q", got, "1")
	}
	c := r.Child(3)
	if got := c.String(); got != "1.5" {
		t.Fatalf("Child(3) = %q, want %q (third birth ordinal)", got, "1.5")
	}
	gc := c.Child(2)
	if got := gc.String(); got != "1.5.3" {
		t.Fatalf("grandchild = %q, want %q", got, "1.5.3")
	}
	if gc.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3", gc.Depth())
	}
}

func TestParentDerivation(t *testing.T) {
	id := New(1, 5, 3, 1)
	p := id.Parent()
	if got := p.String(); got != "1.5.3" {
		t.Fatalf("Parent = %q, want 1.5.3", got)
	}
	if got := Root().Parent(); !got.IsNull() {
		t.Fatalf("Parent of root = %v, want null", got)
	}
	if got := ID(nil).Parent(); !got.IsNull() {
		t.Fatalf("Parent of null = %v, want null", got)
	}
	// A caret level strips as one unit: 1.4.1 is a child of 1, not of 1.4.
	if got := New(1, 4, 1).Parent().String(); got != "1" {
		t.Fatalf("Parent(1.4.1) = %q, want 1", got)
	}
	if got := New(1, 3, 2, 0, 5).Parent().String(); got != "1.3" {
		t.Fatalf("Parent(1.3.2.0.5) = %q, want 1.3", got)
	}
}

func TestCaretDepth(t *testing.T) {
	cases := []struct {
		id   ID
		want int
	}{
		{New(1), 1},
		{New(1, 4, 1), 2},
		{New(1, 3, 2, 0, 5), 3},
		{New(1, 0, 1), 2},
	}
	for _, c := range cases {
		if got := c.id.Depth(); got != c.want {
			t.Errorf("Depth(%s) = %d, want %d", c.id, got, c.want)
		}
	}
}

func TestAncestorAtDepth(t *testing.T) {
	id := New(1, 5, 3, 1)
	cases := []struct {
		depth int
		want  string
	}{
		{1, "1"}, {2, "1.5"}, {3, "1.5.3"}, {4, "1.5.3.1"},
	}
	for _, c := range cases {
		if got := id.AncestorAtDepth(c.depth).String(); got != c.want {
			t.Errorf("AncestorAtDepth(%d) = %q, want %q", c.depth, got, c.want)
		}
	}
	if got := id.AncestorAtDepth(0); !got.IsNull() {
		t.Errorf("AncestorAtDepth(0) = %v, want null", got)
	}
	if got := id.AncestorAtDepth(5); !got.IsNull() {
		t.Errorf("AncestorAtDepth(5) = %v, want null", got)
	}
	// Caret components stay glued to their level.
	caret := New(1, 4, 1, 3)
	if got := caret.AncestorAtDepth(2).String(); got != "1.4.1" {
		t.Errorf("AncestorAtDepth(2) of 1.4.1.3 = %q, want 1.4.1", got)
	}
}

func TestStructuralRelationships(t *testing.T) {
	a := New(1, 3)
	b := New(1, 3, 5)
	c := New(1, 3, 5, 7)
	d := New(1, 5)

	if !a.IsParentOf(b) {
		t.Error("1.3 should be parent of 1.3.5")
	}
	if a.IsParentOf(c) {
		t.Error("1.3 should not be parent of 1.3.5.7")
	}
	if !a.IsAncestorOf(c) {
		t.Error("1.3 should be ancestor of 1.3.5.7")
	}
	if a.IsAncestorOf(a) {
		t.Error("ancestor must be proper")
	}
	if a.IsAncestorOf(d) || d.IsAncestorOf(a) {
		t.Error("siblings are not ancestors")
	}
	if b.IsAncestorOf(a) {
		t.Error("descendant is not ancestor")
	}
	// Caret children: 1.3 is the parent of 1.3.4.1 (a careted level).
	if !a.IsParentOf(New(1, 3, 4, 1)) {
		t.Error("1.3 should be parent of careted child 1.3.4.1")
	}
	if a.IsParentOf(New(1, 3, 4, 1, 3)) {
		t.Error("1.3 is grandparent, not parent, of 1.3.4.1.3")
	}
}

func TestDocumentOrder(t *testing.T) {
	ids := []ID{
		New(1, 3, 2, 7),
		New(1),
		New(1, 4, 1),
		New(1, 3),
		New(1, 3, 3),
		New(1, 3, 11),
		New(1, 5),
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Compare(ids[j]) < 0 })
	want := []string{"1", "1.3", "1.3.2.7", "1.3.3", "1.3.11", "1.4.1", "1.5"}
	for i, w := range want {
		if got := ids[i].String(); got != w {
			t.Fatalf("sorted[%d] = %q, want %q (full %v)", i, got, w, ids)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, s := range []string{"1", "1.2.3", "1.100.43", "1.4.0.1"} {
		id, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if id.String() != s {
			t.Fatalf("round trip %q -> %q", s, id.String())
		}
	}
	for _, s := range []string{"a", "1.0", "1.2", "1..2", "1.-3"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
	if id, err := Parse(""); err != nil || !id.IsNull() {
		t.Errorf("Parse(\"\") = %v, %v; want null, nil", id, err)
	}
}

func TestVerticalDistance(t *testing.T) {
	a := New(1, 3)
	b := New(1, 3, 5, 9)
	if d, ok := a.VerticalDistance(b); !ok || d != 2 {
		t.Errorf("VerticalDistance = %d,%v; want 2,true", d, ok)
	}
	if d, ok := a.VerticalDistance(a); !ok || d != 0 {
		t.Errorf("self distance = %d,%v; want 0,true", d, ok)
	}
	if _, ok := b.VerticalDistance(a); ok {
		t.Error("descendant->ancestor distance should fail")
	}
	if _, ok := New(1, 5).VerticalDistance(b); ok {
		t.Error("unrelated distance should fail")
	}
	// Careted descendant: 1.4.1 is one level below 1.
	if d, ok := Root().VerticalDistance(New(1, 4, 1)); !ok || d != 1 {
		t.Errorf("VerticalDistance(1, 1.4.1) = %d,%v; want 1,true", d, ok)
	}
}

func TestSiblingBetween(t *testing.T) {
	parent := Root()
	first, err := SiblingBetween(parent, nil, nil)
	if err != nil || first.String() != "1.1" {
		t.Fatalf("first child = %v, %v; want 1.1", first, err)
	}
	cases := []struct {
		left, right string
	}{
		{"1.1", ""},      // append
		{"", "1.1"},      // prepend
		{"1.3", "1.5"},   // adjacent odd siblings
		{"1.1", "1.3"},   // adjacent with no room
		{"1.3", "1.4.1"}, // right is a caret child
		{"1.4.1", "1.5"}, // left is a caret child
		{"1.4.1", "1.4.3"},
		{"1.4.1", "1.4.2.1"},
		{"1.0.1", "1.1"},
	}
	for _, c := range cases {
		var l, r ID
		if c.left != "" {
			l, _ = Parse(c.left)
		}
		if c.right != "" {
			r, _ = Parse(c.right)
		}
		got, err := SiblingBetween(parent, l, r)
		if err != nil {
			t.Fatalf("SiblingBetween(%q, %q): %v", c.left, c.right, err)
		}
		if !got.IsWellFormed() {
			t.Fatalf("SiblingBetween(%q, %q) = %s: not well-formed", c.left, c.right, got)
		}
		if !parent.IsParentOf(got) {
			t.Fatalf("SiblingBetween(%q, %q) = %s: not a child of %s", c.left, c.right, got, parent)
		}
		if l != nil && l.Compare(got) >= 0 {
			t.Fatalf("SiblingBetween(%q, %q) = %s: not after left", c.left, c.right, got)
		}
		if r != nil && got.Compare(r) >= 0 {
			t.Fatalf("SiblingBetween(%q, %q) = %s: not before right", c.left, c.right, got)
		}
	}
	if _, err := SiblingBetween(parent, New(1, 5), New(1, 3)); err == nil {
		t.Error("out-of-order siblings not rejected")
	}
	if _, err := SiblingBetween(parent, New(1, 3, 3), nil); err == nil {
		t.Error("non-child left sibling not rejected")
	}
}

// Property: an arbitrary sequence of insertions at random positions keeps
// every allocated ID well-formed, strictly ordered, a child of the parent,
// and never disturbs earlier IDs.
func TestSiblingBetweenInsertionStorm(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	parent := New(1, 5, 3)
	sibs := []ID{}
	for i := 0; i < 2000; i++ {
		pos := r.Intn(len(sibs) + 1)
		var left, right ID
		if pos > 0 {
			left = sibs[pos-1]
		}
		if pos < len(sibs) {
			right = sibs[pos]
		}
		id, err := SiblingBetween(parent, left, right)
		if err != nil {
			t.Fatalf("insert %d at %d: %v", i, pos, err)
		}
		if !id.IsWellFormed() || !parent.IsParentOf(id) || parent.IsAncestorOf(parent) {
			t.Fatalf("insert %d: bad ID %s", i, id)
		}
		sibs = append(sibs[:pos:pos], append([]ID{id}, sibs[pos:]...)...)
		// Also descend occasionally so depths interleave with carets.
		if i%97 == 0 {
			child := id.Child(1)
			if !id.IsParentOf(child) || child.Depth() != id.Depth()+1 {
				t.Fatalf("child of careted ID %s broken: %s", id, child)
			}
		}
	}
	for i := 1; i < len(sibs); i++ {
		if sibs[i-1].Compare(sibs[i]) >= 0 {
			t.Fatalf("order violated at %d: %s >= %s", i, sibs[i-1], sibs[i])
		}
		if sibs[i-1].IsAncestorOf(sibs[i]) || sibs[i].IsAncestorOf(sibs[i-1]) {
			t.Fatalf("siblings %s and %s claim ancestry", sibs[i-1], sibs[i])
		}
	}
}

func randomID(r *rand.Rand) ID {
	depth := 1 + r.Intn(6)
	id := ID{1}
	for i := 1; i < depth; i++ {
		// Random caret run then an odd terminator.
		for r.Intn(4) == 0 {
			id = append(id, uint32(r.Intn(5))*2)
		}
		id = append(id, uint32(r.Intn(5))*2+1)
	}
	return id
}

// Property: Compare is a total order consistent with Equal, and an ancestor
// always precedes its descendants.
func TestCompareProperties(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		a, b := randomID(r), randomID(r)
		ab, ba := a.Compare(b), b.Compare(a)
		if ab != -ba {
			t.Fatalf("Compare not antisymmetric: %v vs %v: %d %d", a, b, ab, ba)
		}
		if (ab == 0) != a.Equal(b) {
			t.Fatalf("Compare==0 disagrees with Equal: %v vs %v", a, b)
		}
		if a.IsAncestorOf(b) && ab != -1 {
			t.Fatalf("ancestor %v should precede descendant %v", a, b)
		}
	}
}

// Property: Parent is the unique ancestor at depth-1, and parse/print
// round-trips, for IDs containing caret runs.
func TestParentProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		id := ID{1}
		for _, c := range raw {
			if c%3 == 0 {
				id = append(id, uint32(c%8)) // even caret (may be 0)
			}
			id = append(id, uint32(c%8)|1) // odd terminator
		}
		if id.Depth() > 1 {
			p := id.Parent()
			if !p.IsParentOf(id) || !p.Equal(id.AncestorAtDepth(id.Depth()-1)) {
				return false
			}
		}
		back, err := Parse(id.String())
		return err == nil && back.Equal(id)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(1, 2, 3)
	b := a.Clone()
	b[2] = 9
	if a[2] != 3 {
		t.Fatal("Clone shares storage with original")
	}
}
