// Package nrel implements the nested relations produced by materialized
// views and algebraic plans (Sections 1, 4.4, 4.5 of the paper): tables
// whose tuples hold atomic values, structural identifiers, node contents,
// the null constant ⊥, and — under nested pattern edges — nested tables.
package nrel

import (
	"sort"
	"strings"

	"xmlviews/internal/nodeid"
	"xmlviews/internal/xmltree"
)

// Kind discriminates the variants of a Value.
type Kind int

const (
	// KindNull is the null constant ⊥ produced by optional edges.
	KindNull Kind = iota
	// KindString is an atomic value (a node label or text value).
	KindString
	// KindID is a structural identifier.
	KindID
	// KindContent is a node's content: the subtree rooted at the node.
	KindContent
	// KindTable is a nested table produced by a nested edge.
	KindTable
)

// Value is one field of a tuple.
type Value struct {
	Kind    Kind
	Str     string
	ID      nodeid.ID
	Content *xmltree.Document
	Table   *Relation
}

// Null is the ⊥ value.
func Null() Value { return Value{Kind: KindNull} }

// String wraps an atomic string value.
func String(s string) Value { return Value{Kind: KindString, Str: s} }

// ID wraps a structural identifier.
func ID(id nodeid.ID) Value { return Value{Kind: KindID, ID: id} }

// Content wraps a node's content subtree.
func Content(d *xmltree.Document) Value { return Value{Kind: KindContent, Content: d} }

// Table wraps a nested relation.
func Table(r *Relation) Value { return Value{Kind: KindTable, Table: r} }

// IsNull reports whether the value is ⊥.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// Render returns a deterministic textual form of the value, used for
// printing, equality, and sorting.
func (v Value) Render() string {
	switch v.Kind {
	case KindNull:
		return "⊥"
	case KindString:
		return v.Str
	case KindID:
		return v.ID.String()
	case KindContent:
		if v.Content == nil {
			return "⊥"
		}
		return v.Content.Root.String()
	case KindTable:
		if v.Table == nil {
			return "[]"
		}
		return v.Table.render(true)
	}
	return "?"
}

// Equal reports deep equality of two values. Nested tables compare as sets
// of tuples (order-insensitive), matching the set semantics of pattern
// results.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindNull:
		return true
	case KindString:
		return v.Str == o.Str
	case KindID:
		return v.ID.Equal(o.ID)
	case KindContent:
		return v.Render() == o.Render()
	case KindTable:
		return v.Table.EqualAsSet(o.Table)
	}
	return false
}

// Tuple is one row of a relation.
type Tuple []Value

// Relation is a nested table with named columns.
type Relation struct {
	Cols []string
	Rows []Tuple
}

// NewRelation creates an empty relation with the given column names.
func NewRelation(cols ...string) *Relation {
	return &Relation{Cols: cols}
}

// Append adds a row; it must have exactly len(Cols) values.
func (r *Relation) Append(row Tuple) {
	if len(row) != len(r.Cols) {
		panic("nrel: row arity mismatch")
	}
	r.Rows = append(r.Rows, row)
}

// Len returns the number of rows.
func (r *Relation) Len() int {
	if r == nil {
		return 0
	}
	return len(r.Rows)
}

// ColIndex returns the index of the named column, or -1.
func (r *Relation) ColIndex(name string) int {
	for i, c := range r.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// Project returns a new relation keeping only the named columns, in order.
func (r *Relation) Project(cols ...string) *Relation {
	idx := make([]int, len(cols))
	for i, c := range cols {
		j := r.ColIndex(c)
		if j < 0 {
			panic("nrel: unknown column " + c)
		}
		idx[i] = j
	}
	out := NewRelation(cols...)
	for _, row := range r.Rows {
		nr := make(Tuple, len(idx))
		for i, j := range idx {
			nr[i] = row[j]
		}
		out.Append(nr)
	}
	return out
}

// Distinct returns the relation with duplicate rows removed (set
// semantics), preserving first-occurrence order.
func (r *Relation) Distinct() *Relation {
	out := NewRelation(r.Cols...)
	seen := map[string]bool{}
	for _, row := range r.Rows {
		k := renderRow(row)
		if !seen[k] {
			seen[k] = true
			out.Append(row)
		}
	}
	return out
}

// EqualAsSet reports whether two relations have the same columns and the
// same set of rows, ignoring order and duplicates.
func (r *Relation) EqualAsSet(o *Relation) bool {
	if r == nil || o == nil {
		return r.Len() == 0 && o.Len() == 0
	}
	if len(r.Cols) != len(o.Cols) {
		return false
	}
	return r.canonical() == o.canonical()
}

func (r *Relation) canonical() string {
	rows := make([]string, 0, len(r.Rows))
	seen := map[string]bool{}
	for _, row := range r.Rows {
		k := renderRow(row)
		if !seen[k] {
			seen[k] = true
			rows = append(rows, k)
		}
	}
	sort.Strings(rows)
	return strings.Join(rows, "\n")
}

func renderRow(row Tuple) string {
	parts := make([]string, len(row))
	for i, v := range row {
		parts[i] = v.Render()
	}
	return strings.Join(parts, " | ")
}

// String renders the relation as a small text table with a header.
func (r *Relation) String() string { return r.render(false) }

func (r *Relation) render(compact bool) string {
	if r == nil {
		return "[]"
	}
	var b strings.Builder
	if compact {
		b.WriteByte('[')
		for i, row := range r.Rows {
			if i > 0 {
				b.WriteString("; ")
			}
			b.WriteString(renderRow(row))
		}
		b.WriteByte(']')
		return b.String()
	}
	b.WriteString(strings.Join(r.Cols, " | "))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		b.WriteString(renderRow(row))
		b.WriteByte('\n')
	}
	return b.String()
}

// Sorted returns the rows sorted by their rendered form; useful for
// deterministic test output.
func (r *Relation) Sorted() *Relation {
	out := NewRelation(r.Cols...)
	out.Rows = append(out.Rows, r.Rows...)
	sort.Slice(out.Rows, func(i, j int) bool {
		return renderRow(out.Rows[i]) < renderRow(out.Rows[j])
	})
	return out
}
