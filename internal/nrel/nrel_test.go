package nrel

import (
	"testing"

	"xmlviews/internal/nodeid"
	"xmlviews/internal/xmltree"
)

func TestValueRenderAndEqual(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "⊥"},
		{String("pen"), "pen"},
		{ID(nodeid.New(1, 2, 3)), "1.2.3"},
		{Content(xmltree.MustParseParen(`a(b "1")`)), `a(b "1")`},
	}
	for _, c := range cases {
		if got := c.v.Render(); got != c.want {
			t.Errorf("Render = %q, want %q", got, c.want)
		}
		if !c.v.Equal(c.v) {
			t.Errorf("%v not equal to itself", c.v)
		}
	}
	if String("a").Equal(Null()) || String("a").Equal(String("b")) {
		t.Error("Equal too permissive")
	}
	if !ID(nodeid.New(1, 2)).Equal(ID(nodeid.New(1, 2))) {
		t.Error("ID equality failed")
	}
}

func TestTableValueEqualAsSet(t *testing.T) {
	r1 := NewRelation("x")
	r1.Append(Tuple{String("1")})
	r1.Append(Tuple{String("2")})
	r2 := NewRelation("x")
	r2.Append(Tuple{String("2")})
	r2.Append(Tuple{String("1")})
	r2.Append(Tuple{String("1")}) // duplicate: set semantics
	if !Table(r1).Equal(Table(r2)) {
		t.Error("tables should compare as sets")
	}
	r3 := NewRelation("x")
	r3.Append(Tuple{String("3")})
	if Table(r1).Equal(Table(r3)) {
		t.Error("different tables reported equal")
	}
	if !Table(nil).Equal(Table(NewRelation("x"))) {
		t.Error("nil and empty tables should be equal")
	}
}

func TestProjectDistinctSorted(t *testing.T) {
	r := NewRelation("a", "b")
	r.Append(Tuple{String("2"), String("x")})
	r.Append(Tuple{String("1"), String("y")})
	r.Append(Tuple{String("2"), String("z")})
	p := r.Project("a")
	if len(p.Cols) != 1 || p.Len() != 3 {
		t.Fatalf("Project = %v", p)
	}
	d := p.Distinct()
	if d.Len() != 2 {
		t.Fatalf("Distinct = %d rows", d.Len())
	}
	sorted := d.Sorted()
	if sorted.Rows[0][0].Str != "1" {
		t.Fatalf("Sorted = %v", sorted)
	}
	// Projection of an unknown column panics.
	defer func() {
		if recover() == nil {
			t.Error("Project of unknown column should panic")
		}
	}()
	r.Project("zz")
}

func TestAppendArityPanic(t *testing.T) {
	r := NewRelation("a", "b")
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch should panic")
		}
	}()
	r.Append(Tuple{String("1")})
}

func TestColIndexAndLen(t *testing.T) {
	r := NewRelation("a", "b")
	if r.ColIndex("b") != 1 || r.ColIndex("zz") != -1 {
		t.Error("ColIndex wrong")
	}
	var nilRel *Relation
	if nilRel.Len() != 0 {
		t.Error("nil relation Len should be 0")
	}
}

func TestEqualAsSetSchemas(t *testing.T) {
	a := NewRelation("x", "y")
	b := NewRelation("x")
	if a.EqualAsSet(b) {
		t.Error("different widths reported equal")
	}
}
