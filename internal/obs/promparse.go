package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ParseHistograms extracts the unlabeled histogram series from a
// Prometheus text exposition (the format WritePrometheus emits), keyed by
// family name. It is the scrape side of the registry: xvstore's `stats`
// subcommand uses it to estimate latency quantiles from a live daemon's
// /metrics, and the tests use it to round-trip the exposition.
//
// Cumulative bucket counts are converted back to per-bucket counts; a
// non-monotone bucket sequence or a +Inf bucket disagreeing with _count is
// an error (those invariants are what make the exposition scrapeable).
func ParseHistograms(data []byte) (map[string]HistogramSnapshot, error) {
	type acc struct {
		uppers []float64
		cums   []float64
		sum    float64
		count  float64
		hasCnt bool
	}
	accs := map[string]*acc{}
	get := func(name string) *acc {
		a, ok := accs[name]
		if !ok {
			a = &acc{}
			accs[name] = a
		}
		return a
	}
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		series, value, ok := splitSample(line)
		if !ok {
			return nil, fmt.Errorf("obs: line %d: malformed sample %q", ln+1, line)
		}
		switch {
		case strings.Contains(series, "_bucket{"):
			name, le, ok := bucketParts(series)
			if !ok {
				continue // labeled beyond le; not ours
			}
			a := get(name)
			bound := math.Inf(1)
			if le != "+Inf" {
				b, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return nil, fmt.Errorf("obs: line %d: bad le %q", ln+1, le)
				}
				bound = b
			}
			if !math.IsInf(bound, 1) {
				a.uppers = append(a.uppers, bound)
			}
			a.cums = append(a.cums, value)
		case strings.HasSuffix(series, "_sum") && !strings.Contains(series, "{"):
			get(strings.TrimSuffix(series, "_sum")).sum = value
		case strings.HasSuffix(series, "_count") && !strings.Contains(series, "{"):
			a := get(strings.TrimSuffix(series, "_count"))
			a.count = value
			a.hasCnt = true
		}
	}
	out := map[string]HistogramSnapshot{}
	var names []string
	for name := range accs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := accs[name]
		if len(a.cums) == 0 || !a.hasCnt {
			continue // _sum/_count of a summary-less family; not a histogram
		}
		if len(a.cums) != len(a.uppers)+1 {
			return nil, fmt.Errorf("obs: histogram %s: %d buckets for %d bounds (missing +Inf?)", name, len(a.cums), len(a.uppers))
		}
		if !sort.Float64sAreSorted(a.uppers) {
			return nil, fmt.Errorf("obs: histogram %s: bucket bounds not ascending", name)
		}
		s := HistogramSnapshot{Uppers: a.uppers, Counts: make([]int64, len(a.cums)), Sum: a.sum, Count: int64(a.count)}
		prev := 0.0
		for i, c := range a.cums {
			if c < prev {
				return nil, fmt.Errorf("obs: histogram %s: bucket counts not monotone", name)
			}
			s.Counts[i] = int64(c - prev)
			prev = c
		}
		if int64(prev) != s.Count {
			return nil, fmt.Errorf("obs: histogram %s: +Inf bucket %d != count %d", name, int64(prev), s.Count)
		}
		out[name] = s
	}
	return out, nil
}

// splitSample splits "series value" (the trailing float) on the last
// space, so label values containing spaces survive.
func splitSample(line string) (series string, value float64, ok bool) {
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		return "", 0, false
	}
	v, err := strconv.ParseFloat(line[i+1:], 64)
	if err != nil {
		return "", 0, false
	}
	return strings.TrimSpace(line[:i]), v, true
}

// bucketParts splits `name_bucket{le="X"}` into (name, X); series with any
// other labels are reported not-ok.
func bucketParts(series string) (name, le string, ok bool) {
	i := strings.Index(series, "_bucket{")
	if i < 0 {
		return "", "", false
	}
	name = series[:i]
	rest := series[i+len("_bucket{"):]
	if !strings.HasSuffix(rest, "}") {
		return "", "", false
	}
	rest = strings.TrimSuffix(rest, "}")
	if !strings.HasPrefix(rest, `le="`) || !strings.HasSuffix(rest, `"`) {
		return "", "", false
	}
	le = strings.TrimSuffix(strings.TrimPrefix(rest, `le="`), `"`)
	if strings.Contains(le, `"`) {
		return "", "", false
	}
	return name, le, true
}
