package obs

import (
	"math"
	"strings"
	"testing"
)

// TestParseHistogramsRoundTrip scrapes back what WritePrometheus emitted.
func TestParseHistogramsRoundTrip(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("rt_seconds", "round trip", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	r.Counter("plain_total", "not a histogram").Inc()
	r.Gauge("g", "gauge").Set(3)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	hs, err := ParseHistograms([]byte(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 1 {
		t.Fatalf("parsed %d histograms, want 1: %v", len(hs), hs)
	}
	got, ok := hs["rt_seconds"]
	if !ok {
		t.Fatalf("rt_seconds missing: %v", hs)
	}
	want := h.Snapshot()
	if got.Count != want.Count || math.Abs(got.Sum-want.Sum) > 1e-9 {
		t.Fatalf("count/sum: got %+v want %+v", got, want)
	}
	for i := range want.Counts {
		if got.Counts[i] != want.Counts[i] {
			t.Fatalf("bucket %d: got %+v want %+v", i, got, want)
		}
	}
	if q := got.Quantile(0.5); math.IsNaN(q) {
		t.Fatal("quantile over scraped histogram is NaN")
	}
}

func TestParseHistogramsErrors(t *testing.T) {
	cases := map[string]string{
		"non-monotone": "h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"inf-vs-count": "h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 9\n",
		"missing-inf":  "h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"bad-le":       "h_bucket{le=\"xx\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
		"bad-sample":   "h_bucket{le=\"1\"} notanumber\n",
	}
	for name, in := range cases {
		if _, err := ParseHistograms([]byte(in)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
	// Comments, blanks and unrelated series are skipped quietly.
	ok := "# HELP x y\n\nplain_total 3\nother_sum 1\n"
	hs, err := ParseHistograms([]byte(ok))
	if err != nil || len(hs) != 0 {
		t.Fatalf("benign input: %v %v", hs, err)
	}
}
