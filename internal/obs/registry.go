// Package obs is the observability layer of the serving stack: a
// standard-library-only metrics registry (counters, gauges, fixed-bucket
// latency histograms) with Prometheus text exposition, per-request traces
// carried through contexts, a bounded ring of recent traces, and runtime
// gauges. The daemon (internal/serve) threads one Registry and one trace
// per request through the whole query and update pipeline; xvstore's
// `stats` subcommand scrapes the exposition back with ParseHistograms.
//
// Everything here is safe for concurrent use. Exposition output is
// deterministic: metric families render in sorted name order and labeled
// series in sorted label order, so two scrapes of the same state are
// byte-identical (xvlint's detorder analyzer checks the package for map
// iteration that could break this).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// collector is one registered metric family: it knows its metadata and
// renders its sample lines (without the HELP/TYPE header) in a
// deterministic order.
type collector interface {
	meta() familyMeta
	write(b *strings.Builder)
}

type familyMeta struct {
	name, help, kind string
}

// Registry holds metric families by name. The zero value is not usable;
// call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]collector{}}
}

func (r *Registry) register(c collector) {
	m := c.meta()
	if !validName(m.name) {
		panic("obs: invalid metric name " + strconv.Quote(m.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[m.name]; dup {
		panic("obs: duplicate metric name " + strconv.Quote(m.name))
	}
	r.families[m.name] = c
}

// Counter registers and returns a monotonically increasing counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{fam: familyMeta{name, help, "counter"}}
	r.register(c)
	return c
}

// CounterVec registers a counter family with a fixed label set; series are
// created on first With.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	for _, l := range labels {
		if !validName(l) {
			panic("obs: invalid label name " + strconv.Quote(l))
		}
	}
	v := &CounterVec{fam: familyMeta{name, help, "counter"},
		labels: labels, children: map[string]*Counter{}}
	r.register(v)
	return v
}

// Gauge registers and returns a settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{fam: familyMeta{name, help, "gauge"}}
	r.register(g)
	return g
}

// GaugeFunc registers a gauge whose value is sampled from fn at scrape
// time (cheap snapshots of live state: cache sizes, epochs, goroutines).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&gaugeFunc{fam: familyMeta{name, help, "gauge"}, fn: fn})
}

// Histogram registers a fixed-bucket histogram. uppers are the ascending
// bucket upper bounds (an implicit +Inf bucket is always appended); nil
// uses DefBuckets, which suit request latencies in seconds.
func (r *Registry) Histogram(name, help string, uppers []float64) *Histogram {
	if uppers == nil {
		uppers = DefBuckets
	}
	for i := 1; i < len(uppers); i++ {
		if uppers[i] <= uppers[i-1] {
			panic("obs: histogram buckets for " + name + " are not strictly ascending")
		}
	}
	h := &Histogram{fam: familyMeta{name, help, "histogram"},
		uppers: append([]float64(nil), uppers...),
		counts: make([]atomic.Int64, len(uppers)+1)}
	r.register(h)
	return h
}

// DefBuckets spans 25µs to 10s: the range of a cached-plan point lookup up
// to a long analytical query, in seconds.
var DefBuckets = []float64{
	25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4), families sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	var names []string
	for n := range r.families {
		names = append(names, n)
	}
	cols := make([]collector, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		cols = append(cols, r.families[n])
	}
	r.mu.Unlock()
	var b strings.Builder
	for _, c := range cols {
		m := c.meta()
		fmt.Fprintf(&b, "# HELP %s %s\n", m.name, escapeHelp(m.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.kind)
		c.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	fam    familyMeta
	labels string // rendered {k="v",...} suffix; "" for unlabeled
	n      atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds d, which must not be negative (counters only go up).
func (c *Counter) Add(d int64) { c.n.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

func (c *Counter) meta() familyMeta { return c.fam }

func (c *Counter) write(b *strings.Builder) {
	b.WriteString(c.fam.name)
	b.WriteString(c.labels)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(c.n.Load(), 10))
	b.WriteByte('\n')
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct {
	fam      familyMeta
	labels   []string
	mu       sync.Mutex
	children map[string]*Counter
}

// With returns the counter for the given label values (created on first
// use). The number of values must match the registered label names.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s takes %d label value(s), got %d", v.fam.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x1f")
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[key]
	if !ok {
		var sb strings.Builder
		sb.WriteByte('{')
		for i, l := range v.labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(l)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(values[i]))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
		c = &Counter{fam: v.fam, labels: sb.String()}
		v.children[key] = c
	}
	return c
}

// Value returns the current count for the given label values without
// creating the series (0 when absent).
func (v *CounterVec) Value(values ...string) int64 {
	key := strings.Join(values, "\x1f")
	v.mu.Lock()
	c := v.children[key]
	v.mu.Unlock()
	if c == nil {
		return 0
	}
	return c.Value()
}

func (v *CounterVec) meta() familyMeta { return v.fam }

func (v *CounterVec) write(b *strings.Builder) {
	v.mu.Lock()
	var keys []string
	for k := range v.children {
		keys = append(keys, k)
	}
	kids := make([]*Counter, 0, len(keys))
	sort.Strings(keys)
	for _, k := range keys {
		kids = append(kids, v.children[k])
	}
	v.mu.Unlock()
	for _, c := range kids {
		c.write(b)
	}
}

// Gauge is a settable float metric (current sizes, epochs, thresholds).
type Gauge struct {
	fam  familyMeta
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) meta() familyMeta { return g.fam }

func (g *Gauge) write(b *strings.Builder) {
	fmt.Fprintf(b, "%s %s\n", g.fam.name, formatFloat(g.Value()))
}

type gaugeFunc struct {
	fam familyMeta
	fn  func() float64
}

func (g *gaugeFunc) meta() familyMeta { return g.fam }

func (g *gaugeFunc) write(b *strings.Builder) {
	fmt.Fprintf(b, "%s %s\n", g.fam.name, formatFloat(g.fn()))
}

// Histogram counts observations into fixed buckets and keeps their sum; it
// is the latency metric of the pipeline phases. Observations are lock-free
// (one atomic add per bucket walk plus a CAS loop for the float sum).
type Histogram struct {
	fam    familyMeta
	uppers []float64      // ascending upper bounds, excluding +Inf
	counts []atomic.Int64 // len(uppers)+1; last is the +Inf overflow bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one value (for latencies: seconds).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.uppers, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Snapshot freezes the histogram's state for quantile estimation. The
// per-bucket counts are loaded one atomic at a time, so a snapshot taken
// concurrently with observations may be torn by a few in-flight counts;
// for monitoring-grade quantiles that is immaterial.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Uppers: append([]float64(nil), h.uppers...),
		Counts: make([]int64, len(h.counts)),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

func (h *Histogram) meta() familyMeta { return h.fam }

func (h *Histogram) write(b *strings.Builder) {
	var cum int64
	for i, up := range h.uppers {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{le=\"%s\"} %d\n", h.fam.name, formatFloat(up), cum)
	}
	cum += h.counts[len(h.uppers)].Load()
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", h.fam.name, cum)
	fmt.Fprintf(b, "%s_sum %s\n", h.fam.name, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count %d\n", h.fam.name, cum)
}

// HistogramSnapshot is a frozen histogram: bucket bounds, per-bucket
// (non-cumulative) counts with a final +Inf bucket, sum and total count.
// It is produced by Histogram.Snapshot and by ParseHistograms.
type HistogramSnapshot struct {
	Uppers []float64 // ascending upper bounds, excluding +Inf
	Counts []int64   // len(Uppers)+1, last is the +Inf bucket
	Sum    float64
	Count  int64
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the bucket holding the target rank — the same estimate Prometheus'
// histogram_quantile computes. It returns NaN for an empty histogram and
// the highest finite bound when the rank falls in the +Inf bucket; use
// QuantileBound to distinguish that overflow clamp from a real estimate.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	v, _ := s.QuantileBound(q)
	return v
}

// QuantileBound is Quantile with an explicit overflow indicator: when the
// target rank falls in the +Inf bucket the true quantile is unknown, so it
// returns the highest finite bound with overflow=true, meaning "at least
// this much". Displays should render such a value as a lower bound (e.g.
// ">10s"), not as the estimate itself.
func (s HistogramSnapshot) QuantileBound(q float64) (v float64, overflow bool) {
	if s.Count == 0 || q <= 0 || q > 1 {
		return math.NaN(), false
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(s.Uppers) {
			// Target rank is past the last finite bound.
			if len(s.Uppers) == 0 {
				return math.NaN(), false
			}
			return s.Uppers[len(s.Uppers)-1], true
		}
		lo := 0.0
		if i > 0 {
			lo = s.Uppers[i-1]
		}
		if c == 0 {
			return s.Uppers[i], false
		}
		return lo + (s.Uppers[i]-lo)*(rank-prev)/float64(c), false
	}
	if len(s.Uppers) == 0 {
		return math.NaN(), false
	}
	return s.Uppers[len(s.Uppers)-1], true
}

// formatFloat renders a sample value: integers without a decimal point,
// everything else in the shortest exact form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// validName checks the Prometheus metric/label name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}
