package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", g.Value())
	}
	g.SetInt(7)
	if g.Value() != 7 {
		t.Fatalf("gauge = %v, want 7", g.Value())
	}
	r.GaugeFunc("test_func", "sampled", func() float64 { return 42 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_total a counter\n# TYPE test_total counter\ntest_total 5\n",
		"# TYPE test_gauge gauge\ntest_gauge 7\n",
		"test_func 42\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "requests", "path", "code")
	v.With("/query", "200").Add(3)
	v.With("/query", "404").Inc()
	v.With("/update", "200").Inc()
	if got := v.Value("/query", "200"); got != 3 {
		t.Fatalf("Value = %d, want 3", got)
	}
	if got := v.Value("/nope", "500"); got != 0 {
		t.Fatalf("absent series Value = %d, want 0", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Series render sorted by label values, once per family header.
	i200 := strings.Index(out, `req_total{path="/query",code="200"} 3`)
	i404 := strings.Index(out, `req_total{path="/query",code="404"} 1`)
	iUpd := strings.Index(out, `req_total{path="/update",code="200"} 1`)
	if i200 < 0 || i404 < 0 || iUpd < 0 || !(i200 < i404 && i404 < iUpd) {
		t.Fatalf("vec series missing or out of order:\n%s", out)
	}
	if strings.Count(out, "# TYPE req_total") != 1 {
		t.Fatalf("family header not unique:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("esc_total", "escapes", "view")
	v.With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{view="a\"b\\c\nd"} 1`) {
		t.Fatalf("bad escaping:\n%s", b.String())
	}
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Fatalf("sum = %v, want 56.05", h.Sum())
	}
	s := h.Snapshot()
	wantCounts := []int64{1, 2, 1, 1}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, s.Counts[i], w, s)
		}
	}
	h.ObserveDuration(50 * time.Millisecond)
	if h.Count() != 6 {
		t.Fatalf("ObserveDuration not counted")
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="10"} 5`,
		`lat_seconds_bucket{le="+Inf"} 6`,
		"lat_seconds_count 6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBoundary(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b_seconds", "boundaries", []float64{1, 2})
	h.Observe(1) // le is inclusive: exactly 1 lands in the first bucket
	s := h.Snapshot()
	if s.Counts[0] != 1 {
		t.Fatalf("le=1 bucket = %d, want 1 (le is inclusive)", s.Counts[0])
	}
}

func TestQuantile(t *testing.T) {
	s := HistogramSnapshot{
		Uppers: []float64{1, 2, 4},
		Counts: []int64{10, 10, 0, 0}, // 20 observations, uniform over (0,2]
		Count:  20,
	}
	if got := s.Quantile(0.5); math.Abs(got-1) > 1e-9 {
		t.Fatalf("p50 = %v, want 1", got)
	}
	if got := s.Quantile(0.75); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("p75 = %v, want 1.5", got)
	}
	if got := s.Quantile(1); math.Abs(got-2) > 1e-9 {
		t.Fatalf("p100 = %v, want 2", got)
	}
	// Rank in the +Inf bucket clamps to the highest finite bound, and
	// QuantileBound reports the clamp so callers can render ">1s" instead
	// of claiming the bound is the estimate.
	inf := HistogramSnapshot{Uppers: []float64{1}, Counts: []int64{1, 9}, Count: 10}
	if got := inf.Quantile(0.99); got != 1 {
		t.Fatalf("overflow quantile = %v, want 1", got)
	}
	if v, overflow := inf.QuantileBound(0.99); v != 1 || !overflow {
		t.Fatalf("QuantileBound(0.99) = %v, %v, want 1, true", v, overflow)
	}
	if v, overflow := inf.QuantileBound(0.1); v != 1 || overflow {
		t.Fatalf("QuantileBound(0.1) = %v, %v, want 1, false", v, overflow)
	}
	if _, overflow := s.QuantileBound(0.75); overflow {
		t.Fatal("in-range quantile must not report overflow")
	}
	empty := HistogramSnapshot{Uppers: []float64{1}, Counts: []int64{0, 0}}
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Fatal("empty histogram quantile must be NaN")
	}
	if !math.IsNaN(s.Quantile(0)) || !math.IsNaN(s.Quantile(1.5)) {
		t.Fatal("out-of-range q must be NaN")
	}
}

// TestExpositionDeterministic pins the ordering contract: families sorted
// by name, two renders byte-identical.
func TestExpositionDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "last").Inc()
	r.Counter("aa_total", "first").Inc()
	r.Histogram("mm_seconds", "middle", []float64{1}).Observe(0.5)
	var b1, b2 strings.Builder
	if err := r.WritePrometheus(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("two renders of the same state differ")
	}
	iA := strings.Index(b1.String(), "# HELP aa_total")
	iM := strings.Index(b1.String(), "# HELP mm_seconds")
	iZ := strings.Index(b1.String(), "# HELP zz_total")
	if !(iA >= 0 && iA < iM && iM < iZ) {
		t.Fatalf("families not sorted:\n%s", b1.String())
	}
}

func TestRegistryPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "x")
	mustPanic(t, "duplicate name", func() { r.Counter("dup_total", "y") })
	mustPanic(t, "invalid name", func() { r.Counter("1bad", "y") })
	mustPanic(t, "invalid label", func() { r.CounterVec("v_total", "y", "bad-label") })
	mustPanic(t, "unsorted buckets", func() { r.Histogram("h_seconds", "y", []float64{2, 1}) })
	v := r.CounterVec("arity_total", "y", "a", "b")
	mustPanic(t, "label arity", func() { v.With("only-one") })
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", what)
		}
	}()
	f()
}

// TestRegistryConcurrent hammers every metric kind from many goroutines
// while scraping (run with -race).
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_total", "c")
	g := r.Gauge("gg", "g")
	h := r.Histogram("hh_seconds", "h", nil)
	v := r.CounterVec("vv_total", "v", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				c.Inc()
				g.SetInt(int64(j))
				h.Observe(float64(j) / 1000)
				v.With([]string{"a", "b", "c"}[j%3]).Inc()
				if j%50 == 0 {
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 1600 || h.Count() != 1600 {
		t.Fatalf("lost updates: counter=%d hist=%d", c.Value(), h.Count())
	}
	if v.Value("a")+v.Value("b")+v.Value("c") != 1600 {
		t.Fatal("vec lost updates")
	}
}
