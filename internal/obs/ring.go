package obs

import (
	"sync"
	"time"
)

// TraceRecord is a finished request's trace as kept in the ring and served
// by GET /debug/traces: correlation id, route, outcome, wall time, the
// handler's annotations (query text, plan, epoch, ...) and the recorded
// spans.
type TraceRecord struct {
	ID        string            `json:"request_id"`
	Time      time.Time         `json:"time"`
	Path      string            `json:"path"`
	Status    int               `json:"status"`
	DurMicros int64             `json:"dur_us"`
	Attrs     map[string]string `json:"attrs,omitempty"`
	Spans     []Span            `json:"spans,omitempty"`
}

// Ring is a bounded, concurrency-safe buffer of recent trace records; when
// full, the oldest record is overwritten.
type Ring struct {
	mu   sync.Mutex
	buf  []TraceRecord
	next int
	n    int
}

// DefaultRingSize bounds the trace ring when the caller passes no size.
const DefaultRingSize = 128

// NewRing returns a ring holding up to n records (n <= 0: DefaultRingSize).
func NewRing(n int) *Ring {
	if n <= 0 {
		n = DefaultRingSize
	}
	return &Ring{buf: make([]TraceRecord, n)}
}

// Add appends a record, evicting the oldest when full.
func (r *Ring) Add(rec TraceRecord) {
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Len returns the number of records held.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Snapshot returns the held records, newest first.
func (r *Ring) Snapshot() []TraceRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceRecord, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}
