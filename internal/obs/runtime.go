package obs

import (
	"runtime"
	"sync"
	"time"
)

// runtimeSampler caches one runtime.MemStats read per sampling window so a
// scrape of several memory gauges pays for a single (stop-the-world-ish)
// ReadMemStats, and scrape storms cannot turn the gauges into a GC
// pressure source of their own.
type runtimeSampler struct {
	mu   sync.Mutex
	last time.Time
	ms   runtime.MemStats
}

const runtimeSampleWindow = time.Second

func (rs *runtimeSampler) get(f func(*runtime.MemStats) float64) float64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if time.Since(rs.last) > runtimeSampleWindow {
		runtime.ReadMemStats(&rs.ms)
		rs.last = time.Now()
	}
	return f(&rs.ms)
}

// RegisterRuntimeMetrics adds the Go runtime gauges — goroutines, heap,
// GC — to the registry. Memory gauges share one cached MemStats sample
// (refreshed at most once per second).
func RegisterRuntimeMetrics(r *Registry) {
	rs := &runtimeSampler{}
	r.GaugeFunc("go_goroutines", "Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 { return rs.get(func(m *runtime.MemStats) float64 { return float64(m.HeapAlloc) }) })
	r.GaugeFunc("go_heap_objects", "Number of allocated heap objects.",
		func() float64 { return rs.get(func(m *runtime.MemStats) float64 { return float64(m.HeapObjects) }) })
	r.GaugeFunc("go_sys_bytes", "Bytes of memory obtained from the OS.",
		func() float64 { return rs.get(func(m *runtime.MemStats) float64 { return float64(m.Sys) }) })
	r.GaugeFunc("go_gc_cycles_total", "Completed GC cycles.",
		func() float64 { return rs.get(func(m *runtime.MemStats) float64 { return float64(m.NumGC) }) })
	r.GaugeFunc("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.",
		func() float64 {
			return rs.get(func(m *runtime.MemStats) float64 { return float64(m.PauseTotalNs) / 1e9 })
		})
}
