package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one named, timed segment of a request's pipeline. Start is the
// offset from the trace's begin time, so spans order and nest naturally
// without carrying absolute clocks.
type Span struct {
	Name  string
	Start time.Duration
	Dur   time.Duration
}

// MarshalJSON renders the span with microsecond offsets, the resolution
// the serving layer reports everywhere else.
func (s Span) MarshalJSON() ([]byte, error) {
	type spanJSON struct {
		Name        string `json:"name"`
		StartMicros int64  `json:"start_us"`
		DurMicros   int64  `json:"dur_us"`
	}
	return json.Marshal(spanJSON{s.Name, s.Start.Microseconds(), s.Dur.Microseconds()})
}

// Trace collects the spans and annotations of one request. All methods are
// safe for concurrent use and safe on a nil receiver (they no-op), so
// library code can record spans unconditionally: code running outside a
// traced request pays one nil check.
type Trace struct {
	// ID is the request correlation id (client-supplied X-Request-Id or
	// generated).
	ID string
	// Begin anchors the span offsets.
	Begin time.Time

	mu    sync.Mutex
	spans []Span
	attrs map[string]string
}

// NewTrace starts a trace now.
func NewTrace(id string) *Trace {
	return &Trace{ID: id, Begin: time.Now()}
}

type traceKey struct{}

// WithTrace attaches the trace to the context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the context's trace, or nil when the request is not
// traced.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// StartSpan opens a named span on the context's trace and returns the
// function that closes it. Without a trace both calls are no-ops, so call
// sites need no conditionals:
//
//	done := obs.StartSpan(ctx, "execute")
//	defer done()
func StartSpan(ctx context.Context, name string) func() {
	return FromContext(ctx).StartSpan(name)
}

// StartSpan opens a named span; the returned function records it.
func (t *Trace) StartSpan(name string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		end := time.Now()
		t.mu.Lock()
		t.spans = append(t.spans, Span{Name: name, Start: start.Sub(t.Begin), Dur: end.Sub(start)})
		t.mu.Unlock()
	}
}

// AddSpan records an already-measured span (aggregated timings, e.g. the
// maintenance engine's total splice time across a batch).
func (t *Trace) AddSpan(name string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Start: start.Sub(t.Begin), Dur: d})
	t.mu.Unlock()
}

// Spans returns a copy of the spans recorded so far, in recording order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// SpanTotal sums the durations of all spans with the given name.
func (t *Trace) SpanTotal(name string) time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var total time.Duration
	for _, s := range t.spans {
		if s.Name == name {
			total += s.Dur
		}
	}
	return total
}

// Annotate attaches a key/value pair to the trace (query text, chosen
// plan, epoch): the slow-query log and the trace ring render them.
func (t *Trace) Annotate(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.attrs == nil {
		t.attrs = map[string]string{}
	}
	t.attrs[key] = value
	t.mu.Unlock()
}

// Annotations returns a copy of the trace's annotations.
func (t *Trace) Annotations() map[string]string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]string, len(t.attrs))
	for k, v := range t.attrs {
		out[k] = v
	}
	return out
}

// reqSeq backs the request-id fallback when the system randomness source
// fails (it practically cannot; the counter keeps ids unique regardless).
var reqSeq atomic.Int64

// NewRequestID returns a fresh 16-hex-digit request id.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "req-" + hex.EncodeToString(timeSeed()) + "-" + hex.EncodeToString([]byte{byte(reqSeq.Add(1))})
	}
	return hex.EncodeToString(b[:])
}

func timeSeed() []byte {
	n := time.Now().UnixNano()
	return []byte{byte(n >> 40), byte(n >> 32), byte(n >> 24), byte(n >> 16), byte(n >> 8), byte(n)}
}

// ValidRequestID reports whether a client-supplied request id is printable
// ASCII of sane length, i.e. safe to echo into headers, JSON and logs.
func ValidRequestID(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' || id[i] == '"' {
			return false
		}
	}
	return true
}
