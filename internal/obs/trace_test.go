package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpans(t *testing.T) {
	tr := NewTrace("abc123")
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("FromContext lost the trace")
	}
	done := StartSpan(ctx, "rewrite")
	time.Sleep(time.Millisecond)
	done()
	tr.AddSpan("splice", time.Now(), 5*time.Millisecond)
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Name != "rewrite" || spans[1].Name != "splice" {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].Dur <= 0 || spans[0].Start < 0 {
		t.Fatalf("rewrite span not timed: %+v", spans[0])
	}
	if got := tr.SpanTotal("splice"); got != 5*time.Millisecond {
		t.Fatalf("SpanTotal = %v", got)
	}
	if got := tr.SpanTotal("missing"); got != 0 {
		t.Fatalf("SpanTotal of absent span = %v", got)
	}

	data, err := json.Marshal(spans[1])
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"name":"splice","start_us"`; !strings.Contains(string(data), want) {
		t.Fatalf("span JSON %s missing %q", data, want)
	}
	if !strings.Contains(string(data), `"dur_us":5000`) {
		t.Fatalf("span JSON %s: wrong dur", data)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.StartSpan("x")()
	tr.AddSpan("y", time.Now(), time.Second)
	tr.Annotate("k", "v")
	if tr.Spans() != nil || tr.Annotations() != nil || tr.SpanTotal("x") != 0 {
		t.Fatal("nil trace must be inert")
	}
	// A context without a trace: StartSpan is a no-op closure.
	StartSpan(context.Background(), "z")()
}

func TestTraceAnnotations(t *testing.T) {
	tr := NewTrace("id")
	tr.Annotate("query", "site(/a)")
	tr.Annotate("epoch", "3")
	tr.Annotate("query", "site(/b)") // overwrite wins
	got := tr.Annotations()
	if got["query"] != "site(/b)" || got["epoch"] != "3" {
		t.Fatalf("annotations = %v", got)
	}
	got["query"] = "mutated"
	if tr.Annotations()["query"] != "site(/b)" {
		t.Fatal("Annotations must return a copy")
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace("race")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				end := tr.StartSpan("s")
				tr.Annotate(fmt.Sprintf("k%d", i), "v")
				end()
				_ = tr.Spans()
			}
		}(i)
	}
	wg.Wait()
	if n := len(tr.Spans()); n != 800 {
		t.Fatalf("spans = %d, want 800", n)
	}
}

func TestRequestIDs(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewRequestID()
		if !ValidRequestID(id) {
			t.Fatalf("generated id %q not valid", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
	for id, want := range map[string]bool{
		"abc-123":                true,
		"ABC_def.456":            true,
		"":                       false,
		"has space":              false,
		"has\"quote":             false,
		"ctrl\x01char":           false,
		strings.Repeat("x", 129): false,
		strings.Repeat("y", 128): true,
		"non-ascii-\xc3\xa9":     false,
	} {
		if got := ValidRequestID(id); got != want {
			t.Errorf("ValidRequestID(%q) = %v, want %v", id, got, want)
		}
	}
}

func TestRing(t *testing.T) {
	r := NewRing(3)
	if r.Len() != 0 || len(r.Snapshot()) != 0 {
		t.Fatal("fresh ring not empty")
	}
	for i := 1; i <= 5; i++ {
		r.Add(TraceRecord{ID: fmt.Sprintf("r%d", i)})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	snap := r.Snapshot()
	want := []string{"r5", "r4", "r3"} // newest first, oldest evicted
	for i, w := range want {
		if snap[i].ID != w {
			t.Fatalf("snapshot = %v, want %v", snap, want)
		}
	}
	if NewRing(0).Len() != 0 {
		t.Fatal("default-size ring unusable")
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(16)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Add(TraceRecord{ID: "x"})
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if r.Len() != 16 {
		t.Fatalf("Len = %d, want 16", r.Len())
	}
}
