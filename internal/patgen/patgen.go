// Package patgen generates the synthetic, satisfiable tree patterns of the
// paper's evaluation (Section 5): patterns of n nodes over a given summary,
// with node fanout up to 3, wildcard probability 0.1, value-predicate
// probability 0.2 over 10 distinct constants, descendant-edge probability
// 0.5, and optional-edge probability 0.5; return-node labels are fixed so
// patterns do not return unrelated nodes.
//
// Satisfiability by construction: every pattern node is anchored to a
// summary node, and edges follow summary ancestry, so an embedding into the
// summary always exists.
package patgen

import (
	"fmt"
	"math/rand"

	"xmlviews/internal/pattern"
	"xmlviews/internal/predicate"
	"xmlviews/internal/summary"
)

// Config mirrors the paper's generator parameters.
type Config struct {
	Size         int      // number of pattern nodes (incl. root)
	ReturnLabels []string // one return node per label, attributes ID,V
	Wildcard     float64  // P(label = *), default 0.1
	Pred         float64  // P(v = c predicate), default 0.2
	Desc         float64  // P(// edge), default 0.5
	Optional     float64  // P(optional edge), default 0.5
	Values       int      // distinct predicate constants, default 10
	Fanout       int      // max children per node, default 3
}

// DefaultConfig returns the Section 5 parameters.
func DefaultConfig(size int, returnLabels ...string) Config {
	return Config{
		Size: size, ReturnLabels: returnLabels,
		Wildcard: 0.1, Pred: 0.2, Desc: 0.5, Optional: 0.5,
		Values: 10, Fanout: 3,
	}
}

// Generate produces one satisfiable pattern, or an error when a return
// label does not occur in the summary.
func Generate(s *summary.Summary, cfg Config, r *rand.Rand) (*pattern.Pattern, error) {
	anchors := make([]int, 0, len(cfg.ReturnLabels))
	for _, label := range cfg.ReturnLabels {
		ids := s.NodesWithLabel(label)
		if len(ids) == 0 {
			return nil, fmt.Errorf("patgen: label %q not in summary", label)
		}
		anchors = append(anchors, ids[r.Intn(len(ids))])
	}

	p := pattern.NewPattern(s.Node(summary.RootID).Label)
	// nodeAnchor maps each pattern node to its summary anchor.
	nodeAnchor := map[*pattern.Node]int{p.Root: summary.RootID}
	fanout := map[*pattern.Node]int{}

	// Grow a chain from the closest existing pattern node down to each
	// return anchor; edges contract into // with probability cfg.Desc.
	for i, anchor := range anchors {
		attach, attachAnchor := deepestAncestorNode(s, p, nodeAnchor, anchor)
		chain, ok := s.ChainBetween(attachAnchor, anchor)
		if !ok {
			// anchor not below the attach point; hang it from the root.
			attach = p.Root
			chain, _ = s.ChainBetween(summary.RootID, anchor)
		}
		cur := attach
		for j := 1; j < len(chain); j++ {
			// Contract: skip intermediate steps with probability Desc.
			if j < len(chain)-1 && r.Float64() < cfg.Desc {
				continue
			}
			axis := pattern.Child
			if nodeAnchor[cur] != s.Node(chain[j]).Parent {
				axis = pattern.Descendant
			}
			n := p.AddChild(cur, s.Node(chain[j]).Label, axis)
			nodeAnchor[n] = chain[j]
			fanout[cur]++
			cur = n
		}
		if nodeAnchor[cur] != anchor {
			// Contraction consumed the final step; add it explicitly.
			axis := pattern.Descendant
			if nodeAnchor[cur] == s.Node(anchor).Parent {
				axis = pattern.Child
			}
			n := p.AddChild(cur, s.Node(anchor).Label, axis)
			nodeAnchor[n] = anchor
			fanout[cur]++
			cur = n
		}
		cur.Attrs = pattern.AttrID | pattern.AttrValue
		_ = i
	}
	p.Finish()

	// Pad with random nodes up to Size. The attempt budget guards against
	// saturated patterns (every node at max fanout or anchored at a
	// summary leaf), where the requested size is unreachable.
	for attempts := 0; p.Size() < cfg.Size && attempts < 50*cfg.Size; attempts++ {
		nodes := p.Nodes()
		parent := nodes[r.Intn(len(nodes))]
		if fanout[parent] >= cfg.Fanout {
			continue
		}
		pAnchor := nodeAnchor[parent]
		desc := s.Descendants(pAnchor)
		if len(desc) == 0 {
			continue
		}
		target := desc[r.Intn(len(desc))]
		axis := pattern.Descendant
		if s.Node(target).Parent == pAnchor || r.Float64() >= cfg.Desc {
			if s.Node(target).Parent != pAnchor {
				// keep // when the target is deeper
			} else {
				axis = pattern.Child
			}
		}
		n := p.AddChild(parent, s.Node(target).Label, axis)
		nodeAnchor[n] = target
		fanout[parent]++
		p.Finish()
	}

	// Decorations.
	for _, n := range p.Nodes() {
		if n.Parent == nil {
			continue
		}
		if !n.IsReturn() && r.Float64() < cfg.Wildcard {
			n.Label = pattern.Wildcard
		}
		if r.Float64() < cfg.Pred {
			c := predicate.Num(float64(r.Intn(cfg.Values)))
			n.Pred = predicate.Eq(c)
		}
		if cfg.Optional > 0 && !subtreeHasReturn(n) && r.Float64() < cfg.Optional {
			n.Optional = true
		}
	}
	return p.Finish(), nil
}

// deepestAncestorNode finds the pattern node whose anchor is the deepest
// ancestor-or-self of the target summary node.
func deepestAncestorNode(s *summary.Summary, p *pattern.Pattern, anchors map[*pattern.Node]int, target int) (*pattern.Node, int) {
	best := p.Root
	bestAnchor := summary.RootID
	bestDepth := 1
	for n, a := range anchors {
		if a == target || s.IsAncestor(a, target) {
			if d := s.Node(a).Depth; d > bestDepth {
				best, bestAnchor, bestDepth = n, a, d
			}
		}
	}
	return best, bestAnchor
}

func subtreeHasReturn(n *pattern.Node) bool {
	if n.IsReturn() {
		return true
	}
	for _, c := range n.Children {
		if subtreeHasReturn(c) {
			return true
		}
	}
	return false
}
