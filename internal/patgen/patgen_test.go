package patgen

import (
	"math/rand"
	"testing"

	"xmlviews/internal/core"
	"xmlviews/internal/pattern"
	"xmlviews/internal/summary"
)

func testSummary() *summary.Summary {
	return summary.MustParse("site(regions(item(name keyword description(parlist(listitem(text(bold keyword)))))) people(person(name)))")
}

func TestGenerateSatisfiable(t *testing.T) {
	s := testSummary()
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 25; i++ {
		cfg := DefaultConfig(3+r.Intn(7), "item", "name")
		p, err := Generate(s, cfg, r)
		if err != nil {
			t.Fatal(err)
		}
		if p.Size() < 3 {
			t.Fatalf("size %d too small (requested %d): %s", p.Size(), cfg.Size, p)
		}
		if p.Arity() < 2 {
			t.Fatalf("arity %d: %s", p.Arity(), p)
		}
		ok, err := core.Satisfiable(p, s)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if !ok {
			t.Fatalf("generated pattern unsatisfiable: %s", p)
		}
	}
}

func TestGenerateReturnLabels(t *testing.T) {
	s := testSummary()
	r := rand.New(rand.NewSource(2))
	cfg := DefaultConfig(6, "keyword")
	p, err := Generate(s, cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, rn := range p.Returns() {
		if rn.Label == "keyword" && rn.Attrs.Has(pattern.AttrID|pattern.AttrValue) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no keyword return node in %s", p)
	}
}

func TestGenerateUnknownLabel(t *testing.T) {
	s := testSummary()
	r := rand.New(rand.NewSource(3))
	if _, err := Generate(s, DefaultConfig(4, "nonexistent"), r); err == nil {
		t.Fatal("unknown return label should fail")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s := testSummary()
	p1, _ := Generate(s, DefaultConfig(8, "item"), rand.New(rand.NewSource(7)))
	p2, _ := Generate(s, DefaultConfig(8, "item"), rand.New(rand.NewSource(7)))
	if p1.String() != p2.String() {
		t.Fatalf("not deterministic:\n%s\n%s", p1, p2)
	}
}

func TestOptionalProbabilityZero(t *testing.T) {
	s := testSummary()
	r := rand.New(rand.NewSource(4))
	cfg := DefaultConfig(10, "item")
	cfg.Optional = 0
	for i := 0; i < 10; i++ {
		p, err := Generate(s, cfg, r)
		if err != nil {
			t.Fatal(err)
		}
		if p.HasOptional() {
			t.Fatalf("optional edge with probability 0: %s", p)
		}
	}
}
