package pattern

import (
	"xmlviews/internal/nodeid"
	"xmlviews/internal/nrel"
	"xmlviews/internal/predicate"
	"xmlviews/internal/xmltree"
)

// Column naming: for a return node with preorder index i, its attribute
// columns are "I<i>", "L<i>", "V<i>", "C<i>"; a nested edge whose lower node
// has index i produces a single table-valued column "A<i>" (the paper's
// A attribute, Figures 1 and 12).

// Columns returns the top-level column names of the relation the pattern
// produces (nested tables count as one column).
func (p *Pattern) Columns() []string { return colsOf(p.Root) }

func colsOf(n *Node) []string {
	cols := ownCols(n)
	for _, c := range n.Children {
		if c.Nested {
			cols = append(cols, "A"+itoa(c.Index))
		} else {
			cols = append(cols, colsOf(c)...)
		}
	}
	return cols
}

func ownCols(n *Node) []string {
	var cols []string
	if n.Attrs.Has(AttrID) {
		cols = append(cols, "I"+itoa(n.Index))
	}
	if n.Attrs.Has(AttrLabel) {
		cols = append(cols, "L"+itoa(n.Index))
	}
	if n.Attrs.Has(AttrValue) {
		cols = append(cols, "V"+itoa(n.Index))
	}
	if n.Attrs.Has(AttrContent) {
		cols = append(cols, "C"+itoa(n.Index))
	}
	return cols
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}

// Eval evaluates the pattern on a document and returns its nested relation
// under set semantics. This is the materialization semantics of Figures 1,
// 11 and 12: optional edges produce ⊥ (or empty nested tables) when the
// subtree cannot bind; nested edges group bindings into table values.
func (p *Pattern) Eval(doc *xmltree.Document) *nrel.Relation {
	return p.evalScoped(doc, nil)
}

// Scope restricts evaluation to the document region an update can affect:
// the nodes on the chain from the document root down to Root, plus Root's
// whole subtree. Because a node outside that region can contain no node
// inside it, the evaluator prunes whole sibling subtrees, making scoped
// evaluation O(depth·fanout + |subtree(Root)|) instead of O(document).
type Scope struct {
	// Root is the Dewey identifier of the scope's subtree root. It need not
	// identify a live node (a deleted subtree's old root, or an inserted
	// root evaluated against the pre-insertion document, scope to nothing
	// below while their ancestor chain still evaluates).
	Root nodeid.ID
}

// Contains reports whether a node with the given identifier is inside the
// scope: an ancestor-or-self of Root, or within Root's subtree.
func (sc *Scope) Contains(id nodeid.ID) bool {
	return id.Equal(sc.Root) || id.IsAncestorOf(sc.Root) || sc.Root.IsAncestorOf(id)
}

// EvalScope evaluates the pattern like Eval, but binds pattern nodes only
// to document nodes within the scope. The result is exactly the set of
// rows every one of whose embeddings' bindings lie on the scope's
// root-chain or inside its subtree — the incremental maintenance engine's
// candidate set for a change under the scope root.
func (p *Pattern) EvalScope(doc *xmltree.Document, sc Scope) *nrel.Relation {
	return p.evalScoped(doc, &sc)
}

func (p *Pattern) evalScoped(doc *xmltree.Document, sc *Scope) *nrel.Relation {
	cols := p.Columns()
	out := nrel.NewRelation(cols...)
	if !p.Root.MatchesLabel(doc.Root.Label) || !nodePredOK(p.Root, doc.Root) {
		return out
	}
	if sc != nil && !sc.Contains(doc.Root.ID) {
		return out
	}
	rel := evalNode(p.Root, doc.Root, sc)
	if rel == nil {
		return out
	}
	return rel.Distinct()
}

// nodePredOK evaluates the node's value predicate against a document node.
func nodePredOK(n *Node, dn *xmltree.Node) bool {
	if n.Pred.IsTrue() {
		return true
	}
	return n.Pred.Eval(predicate.ParseAtom(dn.Value))
}

// evalNode returns the relation for the pattern subtree rooted at n, with n
// bound to dn; nil means no embedding exists (dn fails).
func evalNode(n *Node, dn *xmltree.Node, sc *Scope) *nrel.Relation {
	own := ownValues(n, dn)
	rel := nrel.NewRelation(ownCols(n)...)
	rel.Append(own)
	for _, c := range n.Children {
		childRel := evalChildEdge(c, dn, sc)
		if childRel == nil {
			return nil
		}
		rel = crossProduct(rel, childRel)
	}
	return rel
}

// evalChildEdge returns the relation contributed by the edge to child c
// under parent binding dn, or nil if the (non-optional) edge cannot bind.
// With a scope, out-of-scope candidates are skipped and — since a node
// outside the scope has its entire subtree outside it — their subtrees are
// not descended into.
func evalChildEdge(c *Node, dn *xmltree.Node, sc *Scope) *nrel.Relation {
	var matched *nrel.Relation
	collect := func(cand *xmltree.Node) {
		if !c.MatchesLabel(cand.Label) || !nodePredOK(c, cand) {
			return
		}
		r := evalNode(c, cand, sc)
		if r == nil {
			return
		}
		if matched == nil {
			matched = nrel.NewRelation(r.Cols...)
		}
		matched.Rows = append(matched.Rows, r.Rows...)
	}
	if c.Axis == Child {
		for _, cand := range dn.Children {
			if sc != nil && !sc.Contains(cand.ID) {
				continue
			}
			collect(cand)
		}
	} else {
		var walk func(*xmltree.Node)
		walk = func(x *xmltree.Node) {
			for _, cand := range x.Children {
				if sc != nil && !sc.Contains(cand.ID) {
					continue
				}
				collect(cand)
				walk(cand)
			}
		}
		walk(dn)
	}

	if c.Nested {
		inner := matched
		if inner == nil {
			if !c.Optional {
				return nil
			}
			inner = nrel.NewRelation(colsOf(c)...)
		}
		wrap := nrel.NewRelation("A" + itoa(c.Index))
		wrap.Append(nrel.Tuple{nrel.Table(inner.Distinct())})
		return wrap
	}
	if matched == nil {
		if !c.Optional {
			return nil
		}
		return nullRelation(c)
	}
	return matched
}

// nullRelation returns a single all-⊥ row for the subtree rooted at c;
// nested columns inside get empty tables.
func nullRelation(c *Node) *nrel.Relation {
	cols := colsOf(c)
	rel := nrel.NewRelation(cols...)
	row := make(nrel.Tuple, len(cols))
	for i, col := range cols {
		if col[0] == 'A' {
			idx := atoiSafe(col[1:])
			inner := findByIndex(c, idx)
			row[i] = nrel.Table(nrel.NewRelation(colsOf(inner)...))
		} else {
			row[i] = nrel.Null()
		}
	}
	rel.Append(row)
	return rel
}

func findByIndex(root *Node, idx int) *Node {
	var found *Node
	var walk func(*Node)
	walk = func(n *Node) {
		if n.Index == idx {
			found = n
			return
		}
		for _, ch := range n.Children {
			if found == nil {
				walk(ch)
			}
		}
	}
	walk(root)
	return found
}

func atoiSafe(s string) int {
	v := 0
	for i := 0; i < len(s); i++ {
		v = v*10 + int(s[i]-'0')
	}
	return v
}

func ownValues(n *Node, dn *xmltree.Node) nrel.Tuple {
	var row nrel.Tuple
	if n.Attrs.Has(AttrID) {
		row = append(row, nrel.ID(dn.ID))
	}
	if n.Attrs.Has(AttrLabel) {
		row = append(row, nrel.String(dn.Label))
	}
	if n.Attrs.Has(AttrValue) {
		if dn.Value == "" {
			row = append(row, nrel.Null())
		} else {
			row = append(row, nrel.String(dn.Value))
		}
	}
	if n.Attrs.Has(AttrContent) {
		row = append(row, nrel.Content(dn.SubtreeKeepIDs()))
	}
	return row
}

func crossProduct(a, b *nrel.Relation) *nrel.Relation {
	cols := append(append([]string{}, a.Cols...), b.Cols...)
	out := nrel.NewRelation(cols...)
	for _, ra := range a.Rows {
		for _, rb := range b.Rows {
			row := make(nrel.Tuple, 0, len(ra)+len(rb))
			row = append(row, ra...)
			row = append(row, rb...)
			out.Append(row)
		}
	}
	return out
}

// EvalNodeTuples evaluates the pattern treating nested edges as plain ones
// and returns, for every embedding, the document nodes bound to the return
// nodes (nil for optional non-bindings). It is the node-tuple semantics of
// Section 2.2 / Proposition 2.1, used for cross-checking the canonical
// model machinery and for tests.
func (p *Pattern) EvalNodeTuples(doc *xmltree.Document) [][]*xmltree.Node {
	if !p.Root.MatchesLabel(doc.Root.Label) || !nodePredOK(p.Root, doc.Root) {
		return nil
	}
	bindings := enumBindings(p.Root, doc.Root)
	var out [][]*xmltree.Node
	seen := map[string]bool{}
	for _, b := range bindings {
		tuple := make([]*xmltree.Node, 0, p.Arity())
		key := ""
		for _, rn := range p.Returns() {
			dn := b[rn.Index]
			tuple = append(tuple, dn)
			if dn == nil {
				key += "⊥;"
			} else {
				key += dn.ID.String() + ";"
			}
		}
		if !seen[key] {
			seen[key] = true
			out = append(out, tuple)
		}
	}
	return out
}

// enumBindings returns all optional embeddings of the subtree rooted at n
// with n bound to dn, as maps from pattern node index to document node
// (nil for ⊥).
func enumBindings(n *Node, dn *xmltree.Node) []map[int]*xmltree.Node {
	results := []map[int]*xmltree.Node{{n.Index: dn}}
	for _, c := range n.Children {
		var childBindings []map[int]*xmltree.Node
		candidates := candidateNodes(c, dn)
		for _, cand := range candidates {
			childBindings = append(childBindings, enumBindings(c, cand)...)
		}
		if len(childBindings) == 0 {
			if !c.Optional {
				return nil
			}
			nulls := map[int]*xmltree.Node{}
			subtreeIndexes(c, func(i int) { nulls[i] = nil })
			childBindings = []map[int]*xmltree.Node{nulls}
		}
		var merged []map[int]*xmltree.Node
		for _, r := range results {
			for _, cb := range childBindings {
				m := make(map[int]*xmltree.Node, len(r)+len(cb))
				for k, v := range r {
					m[k] = v
				}
				for k, v := range cb {
					m[k] = v
				}
				merged = append(merged, m)
			}
		}
		results = merged
	}
	return results
}

func candidateNodes(c *Node, dn *xmltree.Node) []*xmltree.Node {
	var out []*xmltree.Node
	consider := func(x *xmltree.Node) {
		if c.MatchesLabel(x.Label) && nodePredOK(c, x) {
			out = append(out, x)
		}
	}
	if c.Axis == Child {
		for _, x := range dn.Children {
			consider(x)
		}
		return out
	}
	var walk func(*xmltree.Node)
	walk = func(x *xmltree.Node) {
		for _, ch := range x.Children {
			consider(ch)
			walk(ch)
		}
	}
	walk(dn)
	return out
}

func subtreeIndexes(n *Node, fn func(int)) {
	fn(n.Index)
	for _, c := range n.Children {
		subtreeIndexes(c, fn)
	}
}
