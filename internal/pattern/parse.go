package pattern

import (
	"fmt"
	"strings"

	"xmlviews/internal/predicate"
)

// Parse parses the pattern surface syntax:
//
//	pattern  := node
//	node     := label attrs? pred? children?
//	attrs    := '[' name (',' name)* ']'          name ∈ {id,l,v,c}
//	pred     := '{' formula '}'                   (see predicate.Parse)
//	children := '(' edge (' ' edge)* ')'
//	edge     := 'n'? '?'? axis node               (either marker order)
//	axis     := '/' | '//'
//
// Example: `site(//item[id,v]{v>3}(/name[v] n?//listitem[c]))`.
//
// For convenience, Parse also accepts a leading XPath-like linear form:
// `/a//b[v]` is sugar for `a(//b[v])`.
func Parse(src string) (*Pattern, error) {
	p := &patParser{src: src}
	p.skipSpace()
	var pat *Pattern
	var err error
	if strings.HasPrefix(p.src[p.pos:], "/") {
		pat, err = p.parseLinear()
	} else {
		pat, err = p.parseTree()
	}
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("pattern: trailing input at %d in %q", p.pos, p.src)
	}
	return pat.Finish(), nil
}

// MustParse is Parse that panics on error.
func MustParse(src string) *Pattern {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type patParser struct {
	src string
	pos int
}

func (p *patParser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// isLabelByte is the label alphabet of the surface syntax; label() and
// IsValidLabel must agree on it.
func isLabelByte(c byte) bool {
	return c == '@' || c == '_' || c == '-' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// IsValidLabel reports whether s is expressible as a node label in the
// surface syntax: the wildcard, or a non-empty run of label bytes. Front
// ends (e.g. the XQuery translator) use it to reject labels that would
// produce patterns whose canonical text does not re-parse.
func IsValidLabel(s string) bool {
	if s == Wildcard {
		return true
	}
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isLabelByte(s[i]) {
			return false
		}
	}
	return true
}

func (p *patParser) label() (string, error) {
	start := p.pos
	if p.pos < len(p.src) && p.src[p.pos] == '*' {
		p.pos++
		return Wildcard, nil
	}
	for p.pos < len(p.src) && isLabelByte(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("pattern: expected label at %d in %q", p.pos, p.src)
	}
	return p.src[start:p.pos], nil
}

// parseTree parses the parenthesized form starting at a root label.
func (p *patParser) parseTree() (*Pattern, error) {
	label, err := p.label()
	if err != nil {
		return nil, err
	}
	pat := NewPattern(label)
	if err := p.decorations(pat.Root); err != nil {
		return nil, err
	}
	if err := p.children(pat, pat.Root); err != nil {
		return nil, err
	}
	return pat, nil
}

// parseLinear parses `/a//b[v]{v>2}/c` into a single-branch pattern.
func (p *patParser) parseLinear() (*Pattern, error) {
	var pat *Pattern
	var cur *Node
	for {
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != '/' {
			break
		}
		axis := Child
		p.pos++
		if p.pos < len(p.src) && p.src[p.pos] == '/' {
			axis = Descendant
			p.pos++
		}
		label, err := p.label()
		if err != nil {
			return nil, err
		}
		if pat == nil {
			if axis == Descendant {
				return nil, fmt.Errorf("pattern: linear form must start with /root, got //")
			}
			pat = NewPattern(label)
			cur = pat.Root
		} else {
			cur = pat.AddChild(cur, label, axis)
		}
		if err := p.decorations(cur); err != nil {
			return nil, err
		}
		if err := p.children(pat, cur); err != nil {
			return nil, err
		}
	}
	if pat == nil {
		return nil, fmt.Errorf("pattern: empty linear pattern")
	}
	return pat, nil
}

// decorations parses optional [attrs] and {pred} after a label.
func (p *patParser) decorations(n *Node) error {
	if p.pos < len(p.src) && p.src[p.pos] == '[' {
		end := strings.IndexByte(p.src[p.pos:], ']')
		if end < 0 {
			return fmt.Errorf("pattern: missing ']' at %d in %q", p.pos, p.src)
		}
		list := p.src[p.pos+1 : p.pos+end]
		p.pos += end + 1
		for _, name := range strings.Split(list, ",") {
			switch strings.ToLower(strings.TrimSpace(name)) {
			case "id":
				n.Attrs |= AttrID
			case "l", "label":
				n.Attrs |= AttrLabel
			case "v", "val", "value":
				n.Attrs |= AttrValue
			case "c", "cont", "content":
				n.Attrs |= AttrContent
			case "":
			default:
				return fmt.Errorf("pattern: unknown attribute %q in %q", name, p.src)
			}
		}
	}
	if p.pos < len(p.src) && p.src[p.pos] == '{' {
		end := strings.IndexByte(p.src[p.pos:], '}')
		if end < 0 {
			return fmt.Errorf("pattern: missing '}' at %d in %q", p.pos, p.src)
		}
		f, err := predicate.Parse(p.src[p.pos+1 : p.pos+end])
		if err != nil {
			return err
		}
		n.Pred = f
		p.pos += end + 1
	}
	return nil
}

// children parses an optional parenthesized edge list. When no list
// follows, the position is restored so chained-step detection can see
// whether whitespace separated the next step.
func (p *patParser) children(pat *Pattern, parent *Node) error {
	save := p.pos
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != '(' {
		p.pos = save
		return nil
	}
	p.pos++
	for {
		p.skipSpace()
		if p.pos < len(p.src) && p.src[p.pos] == ')' {
			p.pos++
			return nil
		}
		if p.pos >= len(p.src) {
			return fmt.Errorf("pattern: missing ')' in %q", p.src)
		}
		if err := p.edge(pat, parent); err != nil {
			return err
		}
	}
}

func (p *patParser) edge(pat *Pattern, parent *Node) error {
	nested, optional := false, false
	for {
		if p.pos < len(p.src) && p.src[p.pos] == 'n' && p.pos+1 < len(p.src) &&
			(p.src[p.pos+1] == '/' || p.src[p.pos+1] == '?') {
			nested = true
			p.pos++
			continue
		}
		if p.pos < len(p.src) && p.src[p.pos] == '?' {
			optional = true
			p.pos++
			continue
		}
		break
	}
	if p.pos >= len(p.src) || p.src[p.pos] != '/' {
		return fmt.Errorf("pattern: expected axis at %d in %q", p.pos, p.src)
	}
	axis := Child
	p.pos++
	if p.pos < len(p.src) && p.src[p.pos] == '/' {
		axis = Descendant
		p.pos++
	}
	label, err := p.label()
	if err != nil {
		return err
	}
	n := pat.AddChild(parent, label, axis)
	n.Optional = optional
	n.Nested = nested
	if err := p.decorations(n); err != nil {
		return err
	}
	if err := p.children(pat, n); err != nil {
		return err
	}
	// A step that follows without intervening whitespace continues the
	// chain: `a(/b/c)` is root→b→c, while `a(/b /c)` is two siblings.
	if p.pos < len(p.src) && chainAhead(p.src[p.pos:]) {
		return p.edge(pat, n)
	}
	return nil
}

func chainAhead(rest string) bool {
	i := 0
	for i < len(rest) && (rest[i] == 'n' || rest[i] == '?') {
		i++
	}
	return i < len(rest) && rest[i] == '/'
}
