package pattern

import (
	"sort"

	"xmlviews/internal/summary"
)

// AssociatedPaths computes, for every pattern node, the set of summary
// nodes the pattern node can map to under some embedding of the pattern
// into the summary (Definition 2.1). The result is indexed by node Index;
// each entry is sorted. Optional subtrees do not constrain their ancestors
// (they may bind ⊥), but their own sets are restricted to summary nodes
// reachable from a surviving parent candidate.
//
// The computation is the O(|p| × |S|) procedure noted after Definition 2.1:
// a top-down candidate pass, a bottom-up arc-consistency prune, and a final
// top-down prune. On trees this is exact.
func AssociatedPaths(p *Pattern, s *summary.Summary) [][]int {
	n := p.Size()
	cand := make([]map[int]bool, n)

	// Top-down: initial candidates.
	root := p.Root
	cand[root.Index] = map[int]bool{}
	if root.MatchesLabel(s.Node(summary.RootID).Label) {
		cand[root.Index][summary.RootID] = true
	}
	var down func(m *Node)
	down = func(m *Node) {
		for _, c := range m.Children {
			set := map[int]bool{}
			for sp := range cand[m.Index] {
				addCandidates(s, sp, c, set)
			}
			cand[c.Index] = set
			down(c)
		}
	}
	down(root)

	// Bottom-up: a candidate survives only if every non-optional child has
	// a compatible surviving candidate.
	var up func(m *Node)
	up = func(m *Node) {
		for _, c := range m.Children {
			up(c)
		}
		for sp := range cand[m.Index] {
			ok := true
			for _, c := range m.Children {
				if c.Optional {
					continue
				}
				if !hasCompatible(s, sp, c, cand[c.Index]) {
					ok = false
					break
				}
			}
			if !ok {
				delete(cand[m.Index], sp)
			}
		}
	}
	up(root)

	// Final top-down: drop candidates unreachable from surviving parents.
	var prune func(m *Node)
	prune = func(m *Node) {
		for _, c := range m.Children {
			reach := map[int]bool{}
			for sp := range cand[m.Index] {
				addCandidates(s, sp, c, reach)
			}
			for sc := range cand[c.Index] {
				if !reach[sc] {
					delete(cand[c.Index], sc)
				}
			}
			prune(c)
		}
	}
	prune(root)

	out := make([][]int, n)
	for i, set := range cand {
		ids := make([]int, 0, len(set))
		for id := range set {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		out[i] = ids
	}
	return out
}

// addCandidates adds to set the summary nodes under sp that pattern node c
// can map to along its axis.
func addCandidates(s *summary.Summary, sp int, c *Node, set map[int]bool) {
	if c.Axis == Child {
		for _, sc := range s.Node(sp).Children {
			if c.MatchesLabel(s.Node(sc).Label) {
				set[sc] = true
			}
		}
		return
	}
	for _, sc := range s.Descendants(sp) {
		if c.MatchesLabel(s.Node(sc).Label) {
			set[sc] = true
		}
	}
}

// hasCompatible reports whether some candidate of c is a child/descendant
// of sp along c's axis.
func hasCompatible(s *summary.Summary, sp int, c *Node, candC map[int]bool) bool {
	for sc := range candC {
		if c.Axis == Child {
			if s.Node(sc).Parent == sp {
				return true
			}
		} else if s.IsAncestor(sp, sc) {
			return true
		}
	}
	return false
}

// SatisfiableUnder reports whether the pattern has at least one embedding
// into the summary (treating optional subtrees as absent if necessary):
// the S-satisfiability test of Section 2.4.
func SatisfiableUnder(p *Pattern, s *summary.Summary) bool {
	paths := AssociatedPaths(p, s)
	// The root (and transitively every non-optional node) must have at
	// least one surviving candidate.
	var check func(n *Node) bool
	check = func(n *Node) bool {
		if len(paths[n.Index]) == 0 {
			return false
		}
		for _, c := range n.Children {
			if c.Optional {
				continue
			}
			if !check(c) {
				return false
			}
		}
		return true
	}
	return check(p.Root)
}
