// Package pattern implements the paper's extended tree pattern language:
// conjunctive tree patterns (Section 2.2) enriched with value predicates
// (Section 4.2), optional edges (Section 4.3), per-node attributes ID, L,
// V, C (Section 4.4), and nested edges (Section 4.5).
//
// A pattern is a tree of nodes labeled from L ∪ {*}. Each non-root node is
// connected to its parent by a /-edge (child) or //-edge (descendant) that
// may independently be optional (dashed in the paper) and/or nested
// (n-labeled). Nodes that store at least one attribute are the pattern's
// return nodes.
package pattern

import (
	"fmt"
	"strings"

	"xmlviews/internal/predicate"
)

// Axis is the relationship of a node to its parent.
type Axis int

const (
	// Child is the /-edge.
	Child Axis = iota
	// Descendant is the //-edge.
	Descendant
)

func (a Axis) String() string {
	if a == Child {
		return "/"
	}
	return "//"
}

// Attrs is a bitmask of the attributes a node stores (Section 4.4).
type Attrs uint8

const (
	// AttrID stores the node's structural identifier.
	AttrID Attrs = 1 << iota
	// AttrLabel stores the node's label (useful with * nodes).
	AttrLabel
	// AttrValue stores the node's atomic value.
	AttrValue
	// AttrContent stores the node's content (the subtree rooted there).
	AttrContent
)

// Has reports whether all attributes in mask are present.
func (a Attrs) Has(mask Attrs) bool { return a&mask == mask }

// Count returns the number of attributes stored.
func (a Attrs) Count() int {
	n := 0
	for _, m := range []Attrs{AttrID, AttrLabel, AttrValue, AttrContent} {
		if a.Has(m) {
			n++
		}
	}
	return n
}

// Names returns the attribute names in canonical order (id, l, v, c).
func (a Attrs) Names() []string {
	var out []string
	if a.Has(AttrID) {
		out = append(out, "id")
	}
	if a.Has(AttrLabel) {
		out = append(out, "l")
	}
	if a.Has(AttrValue) {
		out = append(out, "v")
	}
	if a.Has(AttrContent) {
		out = append(out, "c")
	}
	return out
}

func (a Attrs) String() string { return strings.Join(a.Names(), ",") }

// Wildcard is the label matching any node label.
const Wildcard = "*"

// Node is one pattern node.
type Node struct {
	Label    string
	Axis     Axis // edge from Parent; ignored on the root
	Optional bool // dashed edge from Parent
	Nested   bool // n-labeled edge from Parent
	Pred     predicate.Formula
	Attrs    Attrs
	Parent   *Node
	Children []*Node

	// Index is the node's preorder position in its pattern, assigned by
	// Pattern.Finish; -1 before that.
	Index int
}

// IsReturn reports whether the node is a return node (stores attributes).
func (n *Node) IsReturn() bool { return n.Attrs != 0 }

// MatchesLabel reports whether the pattern node's label accepts the given
// tree label.
func (n *Node) MatchesLabel(label string) bool {
	return n.Label == Wildcard || n.Label == label
}

// NestingDepth returns the number of nested edges on the path from the
// pattern root down to (and including) the node's own incoming edge.
func (n *Node) NestingDepth() int {
	d := 0
	for cur := n; cur.Parent != nil; cur = cur.Parent {
		if cur.Nested {
			d++
		}
	}
	return d
}

// Pattern is a tree pattern. Construct with NewPattern/AddChild (or Parse)
// and call Finish before use; Finish is idempotent and recomputes the node
// index and return-node list.
type Pattern struct {
	Root *Node

	nodes   []*Node // preorder
	returns []*Node // return nodes, in preorder
}

// NewPattern creates a pattern whose root has the given label. The root
// edge fields are unused.
func NewPattern(rootLabel string) *Pattern {
	p := &Pattern{Root: &Node{Label: rootLabel, Pred: predicate.True(), Index: -1}}
	return p
}

// AddChild adds a child pattern node under parent and returns it.
func (p *Pattern) AddChild(parent *Node, label string, axis Axis) *Node {
	c := &Node{Label: label, Axis: axis, Pred: predicate.True(), Parent: parent, Index: -1}
	parent.Children = append(parent.Children, c)
	return c
}

// Finish assigns preorder indexes and collects return nodes. It must be
// called after structural mutation and before Size/Nodes/Returns/At are
// used. It returns the pattern for chaining.
func (p *Pattern) Finish() *Pattern {
	p.nodes = p.nodes[:0]
	p.returns = p.returns[:0]
	var walk func(n *Node)
	walk = func(n *Node) {
		n.Index = len(p.nodes)
		p.nodes = append(p.nodes, n)
		if n.IsReturn() {
			p.returns = append(p.returns, n)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(p.Root)
	return p
}

// Size returns the number of pattern nodes.
func (p *Pattern) Size() int { return len(p.nodes) }

// Nodes returns the pattern nodes in preorder. The slice must not be
// modified.
func (p *Pattern) Nodes() []*Node { return p.nodes }

// Returns returns the return nodes in preorder. The slice must not be
// modified.
func (p *Pattern) Returns() []*Node { return p.returns }

// Arity returns the number of return nodes.
func (p *Pattern) Arity() int { return len(p.returns) }

// At returns the node with the given preorder index.
func (p *Pattern) At(i int) *Node { return p.nodes[i] }

// HasOptional reports whether any edge is optional.
func (p *Pattern) HasOptional() bool {
	for _, n := range p.nodes[1:] {
		if n.Optional {
			return true
		}
	}
	return false
}

// HasNested reports whether any edge is nested.
func (p *Pattern) HasNested() bool {
	for _, n := range p.nodes[1:] {
		if n.Nested {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the pattern, already finished.
func (p *Pattern) Clone() *Pattern {
	out := &Pattern{}
	var copyNode func(n *Node, parent *Node) *Node
	copyNode = func(n *Node, parent *Node) *Node {
		c := &Node{
			Label: n.Label, Axis: n.Axis, Optional: n.Optional, Nested: n.Nested,
			Pred: n.Pred, Attrs: n.Attrs, Parent: parent, Index: -1,
		}
		for _, ch := range n.Children {
			c.Children = append(c.Children, copyNode(ch, c))
		}
		return c
	}
	out.Root = copyNode(p.Root, nil)
	return out.Finish()
}

// String renders the pattern in the surface syntax accepted by Parse:
//
//	site(//item[id,v]{v>3}(/name[v] n?//listitem[c]))
//
// Children are parenthesized and space-separated; each edge shows its
// nested marker 'n', optional marker '?', and axis, in that order.
func (p *Pattern) String() string {
	var b strings.Builder
	writePatternNode(&b, p.Root, true)
	return b.String()
}

func writePatternNode(b *strings.Builder, n *Node, isRoot bool) {
	if !isRoot {
		if n.Nested {
			b.WriteByte('n')
		}
		if n.Optional {
			b.WriteByte('?')
		}
		b.WriteString(n.Axis.String())
	}
	b.WriteString(n.Label)
	if n.Attrs != 0 {
		b.WriteByte('[')
		b.WriteString(n.Attrs.String())
		b.WriteByte(']')
	}
	if !n.Pred.IsTrue() {
		b.WriteByte('{')
		b.WriteString(n.Pred.String())
		b.WriteByte('}')
	}
	if len(n.Children) > 0 {
		b.WriteByte('(')
		for i, c := range n.Children {
			if i > 0 {
				b.WriteByte(' ')
			}
			writePatternNode(b, c, false)
		}
		b.WriteByte(')')
	}
}

// Validate checks structural well-formedness: the root must not be
// optional/nested, labels must be non-empty, and at least one return node
// should exist for the pattern to be useful as a query or view.
func (p *Pattern) Validate() error {
	if p.Root == nil {
		return fmt.Errorf("pattern: nil root")
	}
	for _, n := range p.nodes {
		if n.Label == "" {
			return fmt.Errorf("pattern: empty label")
		}
	}
	if p.Arity() == 0 {
		return fmt.Errorf("pattern: no return nodes")
	}
	return nil
}
