package pattern

import (
	"strings"
	"testing"

	"xmlviews/internal/summary"
	"xmlviews/internal/xmltree"
)

func TestParseTreeForm(t *testing.T) {
	p := MustParse(`site(//item[id,v]{v>3}(/name[v] n?//listitem[c]))`)
	if p.Size() != 4 {
		t.Fatalf("Size = %d, want 4", p.Size())
	}
	item := p.Root.Children[0]
	if item.Label != "item" || item.Axis != Descendant {
		t.Fatalf("item node wrong: %+v", item)
	}
	if !item.Attrs.Has(AttrID | AttrValue) {
		t.Fatalf("item attrs = %v", item.Attrs)
	}
	if item.Pred.IsTrue() {
		t.Fatal("item predicate lost")
	}
	name := item.Children[0]
	if name.Axis != Child || !name.Attrs.Has(AttrValue) || name.Optional || name.Nested {
		t.Fatalf("name node wrong: %+v", name)
	}
	li := item.Children[1]
	if !li.Optional || !li.Nested || li.Axis != Descendant || !li.Attrs.Has(AttrContent) {
		t.Fatalf("listitem node wrong: %+v", li)
	}
	if p.Arity() != 3 {
		t.Fatalf("Arity = %d, want 3", p.Arity())
	}
}

func TestParseLinearForm(t *testing.T) {
	p := MustParse(`/a//b[v]{v>2}/c[id]`)
	if p.Size() != 3 {
		t.Fatalf("Size = %d", p.Size())
	}
	if p.Root.Label != "a" {
		t.Fatalf("root = %s", p.Root.Label)
	}
	b := p.Root.Children[0]
	if b.Axis != Descendant || b.Label != "b" {
		t.Fatalf("b wrong: %+v", b)
	}
	if c := b.Children[0]; c.Axis != Child || !c.Attrs.Has(AttrID) {
		t.Fatalf("c wrong: %+v", c)
	}
}

func TestParseWildcardAndErrors(t *testing.T) {
	p := MustParse(`a(//*[l](/b[v]))`)
	if p.Root.Children[0].Label != Wildcard {
		t.Fatal("wildcard lost")
	}
	for _, bad := range []string{
		"", "(", "a(", "a(/b", "a(b)", "a(/b[z])", "a(/b{v>})", "//a", "a)b",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		`site(//item[id,v]{v>3}(/name[v] n?//listitem[c]))`,
		`a(/b[id] //c(?/d[v]{v=1 | v=3}))`,
		`a(//*[l,c])`,
		`regions(//*[id](/description(/parlist(?/listitem[v](//bold[v])))))`,
	}
	for _, src := range srcs {
		p := MustParse(src)
		q := MustParse(p.String())
		if p.String() != q.String() {
			t.Errorf("round trip changed %q -> %q -> %q", src, p.String(), q.String())
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := MustParse(`a(//b[id](?/c[v]))`)
	q := p.Clone()
	q.Root.Children[0].Label = "zzz"
	q.Root.Children[0].Attrs = 0
	if p.Root.Children[0].Label != "b" || !p.Root.Children[0].Attrs.Has(AttrID) {
		t.Fatal("Clone shares nodes")
	}
	if q.Finish().Arity() == p.Arity() {
		t.Fatal("clone mutation should have changed arity")
	}
}

func TestNestingDepth(t *testing.T) {
	p := MustParse(`a(n//b[id](n/c(/d[v])))`)
	d := p.Root.Children[0].Children[0].Children[0]
	if got := d.NestingDepth(); got != 2 {
		t.Fatalf("NestingDepth = %d, want 2", got)
	}
	if got := p.Root.NestingDepth(); got != 0 {
		t.Fatalf("root NestingDepth = %d", got)
	}
}

// Figure 2: pattern p = a(b*(...)) with boxed return nodes, document d.
// p = a(/b //*(//b[return] /d(/e[return]))) — adapted: return nodes boxed
// in the figure are the lower * and e.
func fig2() (*xmltree.Document, *Pattern) {
	doc := xmltree.MustParseParen(
		`a(b "1" c(b "2" d(e "3")) d(c(b "5" d(b "4" b e "6"))) b(c(d(e "6"))))`)
	p := MustParse(`a(/b //*(/b[id] /d(/e[v])))`)
	return doc, p
}

func TestEvalNodeTuplesFigure2(t *testing.T) {
	doc, p := fig2()
	tuples := p.EvalNodeTuples(doc)
	if len(tuples) == 0 {
		t.Fatal("no embeddings found")
	}
	// Every returned b must have the parent * with a d child containing e,
	// and the document must contain an a-rooted b child (it does).
	for _, tup := range tuples {
		if len(tup) != 2 {
			t.Fatalf("arity = %d", len(tup))
		}
		b, e := tup[0], tup[1]
		if b.Label != "b" || e.Label != "e" {
			t.Fatalf("labels wrong: %s %s", b.Label, e.Label)
		}
		if b.Parent != e.Parent.Parent {
			t.Fatalf("b and e not under same *: %s %s", b.ID, e.ID)
		}
	}
}

func TestEvalSimple(t *testing.T) {
	doc := xmltree.MustParseParen(`site(item(name "pen" price "3") item(name "ink" price "7"))`)
	p := MustParse(`site(/item(/name[v] /price[v]{v>5}))`)
	rel := p.Eval(doc)
	if rel.Len() != 1 {
		t.Fatalf("rows = %d, want 1\n%s", rel.Len(), rel)
	}
	if rel.Rows[0][0].Str != "ink" || rel.Rows[0][1].Str != "7" {
		t.Fatalf("row = %v", rel.Rows[0])
	}
}

func TestEvalOptionalProducesNulls(t *testing.T) {
	// Figure 10 shape: some c nodes lack the optional d subtree.
	doc := xmltree.MustParseParen(`a(c(b b(e)) c(x))`)
	p := MustParse(`a(//c[id](?/b[id]))`)
	rel := p.Eval(doc)
	if rel.Len() != 3 {
		t.Fatalf("rows = %d, want 3\n%s", rel.Len(), rel.Sorted())
	}
	nulls := 0
	for _, row := range rel.Rows {
		if row[1].IsNull() {
			nulls++
			if row[0].IsNull() {
				t.Fatal("parent must still bind")
			}
		}
	}
	if nulls != 1 {
		t.Fatalf("null rows = %d, want 1\n%s", nulls, rel.Sorted())
	}
}

func TestEvalOptionalMaximality(t *testing.T) {
	// Optional edges bind when they can (Definition 4.1, condition 3b):
	// no spurious ⊥ row for a c that has a b child.
	doc := xmltree.MustParseParen(`a(c(b "1"))`)
	p := MustParse(`a(/c[id](?/b[v]))`)
	rel := p.Eval(doc)
	if rel.Len() != 1 {
		t.Fatalf("rows = %d, want 1\n%s", rel.Len(), rel)
	}
	if rel.Rows[0][1].IsNull() {
		t.Fatal("optional edge must bind when a match exists")
	}
}

func TestEvalNested(t *testing.T) {
	// Figure 12 semantics: nested edge groups bindings into one table.
	doc := xmltree.MustParseParen(`a(c(e "1" e "2") c(e "3") c(x))`)
	p := MustParse(`a(/c[id](n?/e[v]))`)
	rel := p.Eval(doc)
	if rel.Len() != 3 {
		t.Fatalf("rows = %d, want 3\n%s", rel.Len(), rel)
	}
	sizes := map[int]int{}
	for _, row := range rel.Rows {
		if row[1].Kind != 4 /* KindTable */ {
			t.Fatalf("expected table value, got %v", row[1].Kind)
		}
		sizes[row[1].Table.Len()]++
	}
	if sizes[2] != 1 || sizes[1] != 1 || sizes[0] != 1 {
		t.Fatalf("table sizes = %v, want one each of 0,1,2", sizes)
	}
}

func TestEvalNestedNonOptionalRequiresMatch(t *testing.T) {
	doc := xmltree.MustParseParen(`a(c(e "1") c(x))`)
	p := MustParse(`a(/c[id](n/e[v]))`)
	rel := p.Eval(doc)
	if rel.Len() != 1 {
		t.Fatalf("rows = %d, want 1 (c without e must be dropped)\n%s", rel.Len(), rel)
	}
}

func TestEvalPredicateOnInternalNode(t *testing.T) {
	doc := xmltree.MustParseParen(`a(b "3" (c "x") b "9" (c "y"))`)
	p := MustParse(`a(/b{v<5}(/c[v]))`)
	rel := p.Eval(doc)
	if rel.Len() != 1 || rel.Rows[0][0].Str != "x" {
		t.Fatalf("rel = %s", rel)
	}
}

func TestEvalAttributesAndColumns(t *testing.T) {
	doc := xmltree.MustParseParen(`a(b "7" (c))`)
	p := MustParse(`a(/b[id,l,v,c])`)
	rel := p.Eval(doc)
	wantCols := []string{"I1", "L1", "V1", "C1"}
	if strings.Join(rel.Cols, ",") != strings.Join(wantCols, ",") {
		t.Fatalf("cols = %v", rel.Cols)
	}
	row := rel.Rows[0]
	if row[0].ID.String() != "1.1" || row[1].Str != "b" || row[2].Str != "7" {
		t.Fatalf("row = %v", row)
	}
	if row[3].Content.Root.Label != "b" || len(row[3].Content.Root.Children) != 1 {
		t.Fatalf("content = %v", row[3].Render())
	}
}

func TestEvalRootMismatch(t *testing.T) {
	doc := xmltree.MustParseParen(`z(b)`)
	p := MustParse(`a(/b[id])`)
	if rel := p.Eval(doc); rel.Len() != 0 {
		t.Fatalf("rows = %d, want 0", rel.Len())
	}
}

// Figure 3 right: paths associated to p's nodes under summary S.
func TestAssociatedPathsFigure3(t *testing.T) {
	// Summary S from Figure 3, node numbering by preorder:
	// 1:a 2:b(under a) 3:c(under a) 4:b(under c) 5:d(under c) 6:b(under d) 7:e(under d).
	s := summary.MustParse(`a(b c(b d(b e)))`)
	p := MustParse(`a(/b //*(/b[id] /d(/e[v])))`)
	paths := AssociatedPaths(p, s)
	get := func(i int) []int { return paths[i] }
	// Node order (preorder): 0:a 1:b 2:* 3:b 4:d 5:e
	if got := get(0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("a paths = %v", got)
	}
	// b (first child): paper says 1 (direct child of root) -> our id for /a/b.
	ab := s.FindPath("/a/b")
	if got := get(1); len(got) != 1 || got[0] != ab {
		t.Fatalf("b paths = %v, want [%d]", got, ab)
	}
	// * node: it needs a b child and a d child that itself has an e child,
	// which only /a/c satisfies (/a/c/d has no d child).
	ac, acd := s.FindPath("/a/c"), s.FindPath("/a/c/d")
	if got := get(2); len(got) != 1 || got[0] != ac {
		t.Fatalf("* paths = %v, want [%d]", got, ac)
	}
	// lower b: only /a/c/b once * is pinned to /a/c.
	acb := s.FindPath("/a/c/b")
	if got := get(3); len(got) != 1 || got[0] != acb {
		t.Fatalf("lower b paths = %v, want [%d]", got, acb)
	}
	acde := s.FindPath("/a/c/d/e")
	if got := get(4); len(got) != 1 || got[0] != acd {
		t.Fatalf("d paths = %v, want [%d]", got, acd)
	}
	if got := get(5); len(got) != 1 || got[0] != acde {
		t.Fatalf("e paths = %v, want [%d]", got, acde)
	}
}

func TestAssociatedPathsPrunesViaChildren(t *testing.T) {
	s := summary.MustParse(`r(a(b) a2(c))`)
	p := MustParse(`r(//*[id](/b[v]))`)
	paths := AssociatedPaths(p, s)
	star := paths[1]
	if len(star) != 1 || s.PathString(star[0]) != "/r/a" {
		t.Fatalf("* should prune to /r/a, got %v", star)
	}
}

func TestAssociatedPathsOptionalDoesNotPrune(t *testing.T) {
	s := summary.MustParse(`r(a a2(c))`)
	p := MustParse(`r(//*[id](?/b[v]))`)
	paths := AssociatedPaths(p, s)
	if len(paths[1]) != 3 {
		t.Fatalf("* candidates = %v, want all three of a,a2,c", paths[1])
	}
	if len(paths[2]) != 0 {
		t.Fatalf("optional b has no candidate paths, got %v", paths[2])
	}
	if !SatisfiableUnder(p, s) {
		t.Fatal("pattern with unmatchable optional subtree is still satisfiable")
	}
}

func TestSatisfiableUnder(t *testing.T) {
	s := summary.MustParse(`r(a(b))`)
	if !SatisfiableUnder(MustParse(`r(//b[id])`), s) {
		t.Fatal("r//b should be satisfiable")
	}
	if SatisfiableUnder(MustParse(`r(/b[id])`), s) {
		t.Fatal("r/b should be unsatisfiable (b is below a)")
	}
	if SatisfiableUnder(MustParse(`r(//z[id])`), s) {
		t.Fatal("r//z should be unsatisfiable")
	}
	if !SatisfiableUnder(MustParse(`r(//a[id](?/z))`), s) {
		t.Fatal("optional missing child keeps satisfiability")
	}
	if SatisfiableUnder(MustParse(`x(//a[id])`), s) {
		t.Fatal("wrong root should be unsatisfiable")
	}
}

func TestValidate(t *testing.T) {
	if err := MustParse(`a(/b[id])`).Validate(); err != nil {
		t.Fatalf("valid pattern rejected: %v", err)
	}
	p := NewPattern("a").Finish()
	if err := p.Validate(); err == nil {
		t.Fatal("pattern without return nodes should be invalid")
	}
}

func TestParseChainedSteps(t *testing.T) {
	p := MustParse(`r(/a/b//c[id,v])`)
	if p.Size() != 4 {
		t.Fatalf("chain size = %d, want 4: %s", p.Size(), p)
	}
	c := p.Root.Children[0].Children[0].Children[0]
	if c.Label != "c" || c.Axis != Descendant || !c.Attrs.Has(AttrID|AttrValue) {
		t.Fatalf("chain leaf wrong: %s", p)
	}
	// Spaces still separate siblings.
	q := MustParse(`r(/a /b)`)
	if len(q.Root.Children) != 2 {
		t.Fatalf("siblings parsed as chain: %s", q)
	}
	// Markers participate in chains.
	m := MustParse(`r(/a?/b)`)
	b := m.Root.Children[0].Children[0]
	if !b.Optional || b.Label != "b" {
		t.Fatalf("chained optional wrong: %s", m)
	}
}
