// Package predicate implements the value-predicate formulas φ(v) of
// Section 4.2 of the paper: boolean combinations of atoms v θ c with
// θ ∈ {=, <, >} (plus ≤, ≥, ≠ for convenience) over a totally ordered
// domain of atomic values.
//
// Formulas are kept in a canonical form — a sorted union of disjoint
// intervals — so that conjunction, disjunction, negation, implication, and
// satisfiability are all cheap and deterministic. The package also provides
// multi-variable Boxes (one formula per variable) and the box-cover test
// that decides condition 2 of the union-containment criterion of
// Section 4.2: φ_te ⇒ ∨_{t'e} φ_{t'e}.
//
// The atomic domain mixes numbers and strings; all numbers order before all
// strings, numbers order numerically, strings lexicographically. The paper
// assumes an enumerable total order; we use the dense order of the reals /
// strings, which only makes the implication test more conservative on
// integer data (e.g. 2<v ∧ v<3 is treated as satisfiable).
package predicate

import (
	"strconv"
	"strings"
)

// Atom is an atomic value from the ordered domain A: either a number or a
// string. The zero value is the number 0.
type Atom struct {
	str   string
	num   float64
	isStr bool
}

// Num returns the numeric atom with the given value.
func Num(v float64) Atom { return Atom{num: v} }

// Str returns the string atom with the given value.
func Str(s string) Atom { return Atom{str: s, isStr: true} }

// ParseAtom interprets a literal: if it parses as a number it is numeric,
// otherwise it is a string. Quoted literals ("..." or '...') are always
// strings.
func ParseAtom(lit string) Atom {
	if len(lit) >= 2 {
		if (lit[0] == '"' && lit[len(lit)-1] == '"') || (lit[0] == '\'' && lit[len(lit)-1] == '\'') {
			return Str(lit[1 : len(lit)-1])
		}
	}
	if f, err := strconv.ParseFloat(lit, 64); err == nil {
		return Num(f)
	}
	return Str(lit)
}

// IsString reports whether the atom is from the string part of the domain.
func (a Atom) IsString() bool { return a.isStr }

// Compare totally orders atoms: numbers before strings, numbers
// numerically, strings lexicographically. It returns -1, 0, or +1.
func (a Atom) Compare(b Atom) int {
	if a.isStr != b.isStr {
		if b.isStr {
			return -1
		}
		return 1
	}
	if a.isStr {
		return strings.Compare(a.str, b.str)
	}
	switch {
	case a.num < b.num:
		return -1
	case a.num > b.num:
		return 1
	}
	return 0
}

// String renders the atom; string atoms are quoted.
func (a Atom) String() string {
	if a.isStr {
		return strconv.Quote(a.str)
	}
	return strconv.FormatFloat(a.num, 'g', -1, 64)
}

// Text returns the raw textual value of the atom (unquoted).
func (a Atom) Text() string {
	if a.isStr {
		return a.str
	}
	return strconv.FormatFloat(a.num, 'g', -1, 64)
}
