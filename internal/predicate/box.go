package predicate

import (
	"sort"
	"strconv"
	"strings"
)

// Box is a conjunction of per-variable formulas: the φ_te(v1,...,v|S|) of
// Section 4.2. Variables are identified by integers (in the paper, summary
// node ids; in this implementation, canonical-tree node ids). A variable
// absent from the map is unconstrained (T). The zero value is the
// all-true box.
type Box map[int]Formula

// NewBox returns an empty (all-true) box.
func NewBox() Box { return Box{} }

// Constrain returns a copy of the box with the variable additionally
// constrained by f (conjunction with any existing constraint).
func (b Box) Constrain(v int, f Formula) Box {
	out := b.Clone()
	if cur, ok := out[v]; ok {
		out[v] = cur.And(f)
	} else if !f.IsTrue() {
		out[v] = f
	}
	return out
}

// Clone returns an independent copy of the box.
func (b Box) Clone() Box {
	out := make(Box, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}

// IsEmpty reports whether the box denotes no valuation (some variable's
// formula is unsatisfiable).
func (b Box) IsEmpty() bool {
	for _, f := range b {
		if f.IsFalse() {
			return true
		}
	}
	return false
}

// And returns the conjunction of two boxes.
func (b Box) And(other Box) Box {
	out := b.Clone()
	for v, f := range other {
		if cur, ok := out[v]; ok {
			out[v] = cur.And(f)
		} else {
			out[v] = f
		}
	}
	return out
}

// get returns the constraint on v, defaulting to True.
func (b Box) get(v int) Formula {
	if f, ok := b[v]; ok {
		return f
	}
	return True()
}

// CoveredBy reports whether every valuation satisfying b satisfies at least
// one of the boxes in cover: b ⇒ ∨ cover. This is the decision procedure
// for condition 2 of the union-containment criterion (Section 4.2). It runs
// by recursive box subtraction; the worst case is exponential in the number
// of distinct constants (the paper's N^|S| bound), but boxes in practice
// constrain very few variables.
func (b Box) CoveredBy(cover []Box) bool {
	if b.IsEmpty() {
		return true
	}
	// Drop covering boxes that are themselves empty.
	live := cover[:0:0]
	for _, c := range cover {
		if !c.IsEmpty() {
			live = append(live, c)
		}
	}
	return subtractCovered(b, live)
}

// subtractCovered reports whether box b is covered by the union of boxes cs.
func subtractCovered(b Box, cs []Box) bool {
	if b.IsEmpty() {
		return true
	}
	if len(cs) == 0 {
		return false
	}
	c := cs[0]
	rest := cs[1:]
	// Variables where c constrains b; process in sorted order for
	// determinism.
	vars := make([]int, 0, len(b)+len(c))
	seen := map[int]bool{}
	for v := range b {
		if !seen[v] {
			seen[v] = true
			vars = append(vars, v)
		}
	}
	for v := range c {
		if !seen[v] {
			seen[v] = true
			vars = append(vars, v)
		}
	}
	sort.Ints(vars)

	// b \ c = union over i of pieces where vars[0..i-1] are inside c and
	// vars[i] is outside c. Each piece must be covered by the remaining
	// boxes.
	inside := b // progressively restricted copy
	for _, v := range vars {
		cf := c.get(v)
		if cf.IsTrue() {
			continue
		}
		outPart := inside.get(v).And(cf.Not())
		if !outPart.IsFalse() {
			piece := inside.Clone()
			piece[v] = outPart
			if !subtractCovered(piece, rest) {
				return false
			}
		}
		inPart := inside.get(v).And(cf)
		if inPart.IsFalse() {
			// b ∩ c is empty from here on; all remaining mass was
			// handled as "outside" pieces plus what stays in inside —
			// but inside∧c = ∅ means the rest of b is entirely outside
			// on this variable and was just checked.
			return true
		}
		inside = inside.Clone()
		inside[v] = inPart
	}
	// The fully-inside piece is covered by c itself.
	return true
}

// String renders the box deterministically for debugging and dedup keys.
func (b Box) String() string {
	if len(b) == 0 {
		return "true"
	}
	vars := make([]int, 0, len(b))
	for v := range b {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	var parts []string
	for _, v := range vars {
		if b[v].IsTrue() {
			continue
		}
		parts = append(parts, "v"+strconv.Itoa(v)+":("+strings.ReplaceAll(b[v].String(), " ", "")+")")
	}
	if len(parts) == 0 {
		return "true"
	}
	return strings.Join(parts, " & ")
}
