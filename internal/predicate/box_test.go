package predicate

import (
	"math/rand"
	"testing"
)

func box(pairs ...interface{}) Box {
	b := NewBox()
	for i := 0; i < len(pairs); i += 2 {
		b = b.Constrain(pairs[i].(int), MustParse(pairs[i+1].(string)))
	}
	return b
}

func TestBoxBasics(t *testing.T) {
	b := box(1, "v=3", 2, "v>0")
	if b.IsEmpty() {
		t.Fatal("satisfiable box reported empty")
	}
	if e := b.Constrain(1, MustParse("v=4")); !e.IsEmpty() {
		t.Fatal("contradictory box not empty")
	}
	c := b.And(box(2, "v<5", 3, "v=1"))
	if c.IsEmpty() {
		t.Fatalf("And produced empty: %v", c)
	}
	if got := c.get(2); !got.Equal(MustParse("v>0 & v<5")) {
		t.Fatalf("And constraint wrong: %v", got)
	}
}

// The paper's worked example, Section 4.2: deciding
// pφ2 ⊆S pφ1 ∪ pφ3 ∪ pφ4. Variables are summary node numbers (Fig 3).
func TestBoxCoverPaperExample(t *testing.T) {
	// φt'φ2 = (v3 = 3) ∧ (v4 > 0); covered by φtφ3 = (v3 > 1).
	t1 := box(3, "v=3", 4, "v>0")
	if !t1.CoveredBy([]Box{box(3, "v>1")}) {
		t.Fatal("φt'φ2 should be covered by φtφ3")
	}
	// φt''φ2 = (v5 = 3) ∧ (v6 > 0); covered by
	// φtφ1 = (v5 = 3) ∧ (v6 < 5) ∨ φtφ4 = (v5 < 5) ∧ (v6 > 2).
	t2 := box(5, "v=3", 6, "v>0")
	cover := []Box{box(5, "v=3", 6, "v<5"), box(5, "v<5", 6, "v>2")}
	if !t2.CoveredBy(cover) {
		t.Fatal("φt''φ2 should be covered by φtφ1 ∨ φtφ4")
	}
	// Neither alone suffices.
	if t2.CoveredBy(cover[:1]) {
		t.Fatal("φtφ1 alone should not cover")
	}
	if t2.CoveredBy(cover[1:]) {
		t.Fatal("φtφ4 alone should not cover")
	}
}

func TestBoxCoverEdgeCases(t *testing.T) {
	if !NewBox().CoveredBy([]Box{NewBox()}) {
		t.Fatal("true covered by true")
	}
	if NewBox().CoveredBy(nil) {
		t.Fatal("true covered by nothing")
	}
	if NewBox().CoveredBy([]Box{box(1, "v=1")}) {
		t.Fatal("true covered by a strict subset")
	}
	if !box(1, "v=1", 2, "v=2").And(box(1, "v=9")).CoveredBy(nil) {
		t.Fatal("empty box covered by nothing should hold")
	}
	// Split cover: v1 in (−∞,5) ∪ [5,∞) covers everything.
	b := box(1, "v>0")
	if !b.CoveredBy([]Box{box(1, "v<5"), box(1, "v>=5")}) {
		t.Fatal("split cover failed")
	}
	// Cover with a gap.
	if b.CoveredBy([]Box{box(1, "v<5"), box(1, "v>5")}) {
		t.Fatal("gap at 5 missed")
	}
}

func TestBoxCoverMultiVariable(t *testing.T) {
	// [0,10]x[0,10] is covered by left half + right half.
	b := box(1, "v>=0 & v<=10", 2, "v>=0 & v<=10")
	halves := []Box{
		box(1, "v<=4"),
		box(1, "v>4"),
	}
	if !b.CoveredBy(halves) {
		t.Fatal("half cover failed")
	}
	// Quadrants covering only three corners leave a hole.
	quads := []Box{
		box(1, "v<=5", 2, "v<=5"),
		box(1, "v>5", 2, "v<=5"),
		box(1, "v<=5", 2, "v>5"),
	}
	if b.CoveredBy(quads) {
		t.Fatal("missing quadrant not detected")
	}
	quads = append(quads, box(1, "v>5", 2, "v>5"))
	if !b.CoveredBy(quads) {
		t.Fatal("full quadrant cover failed")
	}
}

// Property: CoveredBy agrees with pointwise sampling on random boxes.
func TestBoxCoverSamplingProperty(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	randBox := func() Box {
		b := NewBox()
		for v := 1; v <= 2; v++ {
			if r.Intn(3) == 0 {
				continue
			}
			b = b.Constrain(v, randFormula(r, 2))
		}
		return b
	}
	for trial := 0; trial < 300; trial++ {
		b := randBox()
		cover := []Box{randBox(), randBox()}
		got := b.CoveredBy(cover)
		// Sample a grid of points; if CoveredBy says yes, no witness point
		// may be in b and outside all cover boxes.
		if got {
			for x := -1.0; x <= 10.5; x += 0.5 {
				for y := -1.0; y <= 10.5; y += 0.5 {
					inB := b.get(1).Eval(Num(x)) && b.get(2).Eval(Num(y))
					if !inB {
						continue
					}
					inCover := false
					for _, c := range cover {
						if c.get(1).Eval(Num(x)) && c.get(2).Eval(Num(y)) {
							inCover = true
							break
						}
					}
					if !inCover {
						t.Fatalf("CoveredBy=true but point (%v,%v) uncovered; b=%v cover=%v", x, y, b, cover)
					}
				}
			}
		}
	}
}
