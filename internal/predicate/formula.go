package predicate

import "strings"

// bound is one endpoint of an interval. inf means the endpoint is at
// infinity (lo: -∞, hi: +∞); open means the endpoint value is excluded.
type bound struct {
	a    Atom
	open bool
	inf  bool
}

// interval is a non-empty range of the atom domain.
type interval struct {
	lo, hi bound
}

// empty reports whether the interval denotes no values.
func (iv interval) empty() bool {
	if iv.lo.inf || iv.hi.inf {
		return false
	}
	c := iv.lo.a.Compare(iv.hi.a)
	if c > 0 {
		return true
	}
	if c == 0 {
		return iv.lo.open || iv.hi.open
	}
	return false
}

func (iv interval) contains(v Atom) bool {
	if !iv.lo.inf {
		c := v.Compare(iv.lo.a)
		if c < 0 || (c == 0 && iv.lo.open) {
			return false
		}
	}
	if !iv.hi.inf {
		c := v.Compare(iv.hi.a)
		if c > 0 || (c == 0 && iv.hi.open) {
			return false
		}
	}
	return true
}

// cmpLo orders lower bounds: -∞ first, then by value, closed before open.
func cmpLo(a, b bound) int {
	if a.inf || b.inf {
		if a.inf && b.inf {
			return 0
		}
		if a.inf {
			return -1
		}
		return 1
	}
	if c := a.a.Compare(b.a); c != 0 {
		return c
	}
	if a.open == b.open {
		return 0
	}
	if !a.open {
		return -1
	}
	return 1
}

// cmpHi orders upper bounds: open before closed at the same value, +∞ last.
func cmpHi(a, b bound) int {
	if a.inf || b.inf {
		if a.inf && b.inf {
			return 0
		}
		if a.inf {
			return 1
		}
		return -1
	}
	if c := a.a.Compare(b.a); c != 0 {
		return c
	}
	if a.open == b.open {
		return 0
	}
	if a.open {
		return -1
	}
	return 1
}

// maxLo / minHi pick the tighter bound for intersections.
func maxLo(a, b bound) bound {
	if cmpLo(a, b) >= 0 {
		return a
	}
	return b
}

func minHi(a, b bound) bound {
	if cmpHi(a, b) <= 0 {
		return a
	}
	return b
}

// adjacentOrOverlap reports whether interval a (which sorts no later than b
// by lower bound) touches or overlaps b, so that they merge into one
// interval.
func adjacentOrOverlap(a, b interval) bool {
	if a.hi.inf || b.lo.inf {
		return true
	}
	c := a.hi.a.Compare(b.lo.a)
	if c > 0 {
		return true
	}
	if c < 0 {
		return false
	}
	// Touching at a point: merge unless both endpoints exclude it.
	return !(a.hi.open && b.lo.open)
}

// Formula is a predicate φ(v) over one variable, held as a canonical sorted
// union of disjoint intervals. The zero value is False. Formulas are
// immutable; all operations return new values.
type Formula struct {
	ivs []interval
}

// False is the unsatisfiable formula.
func False() Formula { return Formula{} }

// True is the always-true formula T.
func True() Formula {
	return Formula{ivs: []interval{{lo: bound{inf: true}, hi: bound{inf: true}}}}
}

// Eq returns the formula v = c.
func Eq(c Atom) Formula {
	return Formula{ivs: []interval{{lo: bound{a: c}, hi: bound{a: c}}}}
}

// Lt returns v < c.
func Lt(c Atom) Formula {
	return Formula{ivs: []interval{{lo: bound{inf: true}, hi: bound{a: c, open: true}}}}
}

// Le returns v ≤ c.
func Le(c Atom) Formula {
	return Formula{ivs: []interval{{lo: bound{inf: true}, hi: bound{a: c}}}}
}

// Gt returns v > c.
func Gt(c Atom) Formula {
	return Formula{ivs: []interval{{lo: bound{a: c, open: true}, hi: bound{inf: true}}}}
}

// Ge returns v ≥ c.
func Ge(c Atom) Formula {
	return Formula{ivs: []interval{{lo: bound{a: c}, hi: bound{inf: true}}}}
}

// Ne returns v ≠ c.
func Ne(c Atom) Formula { return Eq(c).Not() }

// normalize sorts and merges a set of intervals into canonical form.
func normalize(ivs []interval) Formula {
	kept := ivs[:0]
	for _, iv := range ivs {
		if !iv.empty() {
			kept = append(kept, iv)
		}
	}
	if len(kept) == 0 {
		return Formula{}
	}
	// Insertion sort by lower bound (interval counts are tiny in practice).
	for i := 1; i < len(kept); i++ {
		for j := i; j > 0 && cmpLo(kept[j].lo, kept[j-1].lo) < 0; j-- {
			kept[j], kept[j-1] = kept[j-1], kept[j]
		}
	}
	out := []interval{kept[0]}
	for _, iv := range kept[1:] {
		last := &out[len(out)-1]
		if adjacentOrOverlap(*last, iv) {
			last.hi = maxHi(last.hi, iv.hi)
		} else {
			out = append(out, iv)
		}
	}
	return Formula{ivs: out}
}

func maxHi(a, b bound) bound {
	if cmpHi(a, b) >= 0 {
		return a
	}
	return b
}

// IsFalse reports whether the formula is unsatisfiable.
func (f Formula) IsFalse() bool { return len(f.ivs) == 0 }

// IsTrue reports whether the formula accepts every value.
func (f Formula) IsTrue() bool {
	return len(f.ivs) == 1 && f.ivs[0].lo.inf && f.ivs[0].hi.inf
}

// Eval reports whether the formula holds for value v.
func (f Formula) Eval(v Atom) bool {
	for _, iv := range f.ivs {
		if iv.contains(v) {
			return true
		}
	}
	return false
}

// Or returns the disjunction of the two formulas.
func (f Formula) Or(g Formula) Formula {
	ivs := make([]interval, 0, len(f.ivs)+len(g.ivs))
	ivs = append(ivs, f.ivs...)
	ivs = append(ivs, g.ivs...)
	return normalize(ivs)
}

// And returns the conjunction of the two formulas.
func (f Formula) And(g Formula) Formula {
	var ivs []interval
	for _, a := range f.ivs {
		for _, b := range g.ivs {
			iv := interval{lo: maxLo(a.lo, b.lo), hi: minHi(a.hi, b.hi)}
			if !iv.empty() {
				ivs = append(ivs, iv)
			}
		}
	}
	if ivs == nil {
		return Formula{}
	}
	return normalize(ivs)
}

// Not returns the complement of the formula.
func (f Formula) Not() Formula {
	if f.IsFalse() {
		return True()
	}
	var ivs []interval
	lo := bound{inf: true}
	for _, iv := range f.ivs {
		if !iv.lo.inf {
			ivs = append(ivs, interval{lo: lo, hi: bound{a: iv.lo.a, open: !iv.lo.open}})
		}
		if iv.hi.inf {
			return normalize(ivs)
		}
		lo = bound{a: iv.hi.a, open: !iv.hi.open}
	}
	ivs = append(ivs, interval{lo: lo, hi: bound{inf: true}})
	return normalize(ivs)
}

// Implies reports whether f ⇒ g, i.e. every value satisfying f satisfies g.
func (f Formula) Implies(g Formula) bool { return f.And(g.Not()).IsFalse() }

// Equal reports whether the two formulas denote the same set of values.
func (f Formula) Equal(g Formula) bool { return f.Implies(g) && g.Implies(f) }

// String renders the formula in the surface syntax accepted by Parse.
func (f Formula) String() string {
	if f.IsFalse() {
		return "false"
	}
	if f.IsTrue() {
		return "true"
	}
	parts := make([]string, 0, len(f.ivs))
	for _, iv := range f.ivs {
		parts = append(parts, ivString(iv))
	}
	return strings.Join(parts, " | ")
}

func ivString(iv interval) string {
	if !iv.lo.inf && !iv.hi.inf && !iv.lo.open && !iv.hi.open && iv.lo.a.Compare(iv.hi.a) == 0 {
		return "v=" + iv.lo.a.String()
	}
	var parts []string
	if !iv.lo.inf {
		op := "v>="
		if iv.lo.open {
			op = "v>"
		}
		parts = append(parts, op+iv.lo.a.String())
	}
	if !iv.hi.inf {
		op := "v<="
		if iv.hi.open {
			op = "v<"
		}
		parts = append(parts, op+iv.hi.a.String())
	}
	return strings.Join(parts, " & ")
}

// Sample returns some atom satisfying the formula, with ok=false when the
// formula is unsatisfiable. It is used to realize canonical trees as
// concrete witness documents in tests and counterexample reporting.
func (f Formula) Sample() (Atom, bool) {
	if f.IsFalse() {
		return Atom{}, false
	}
	iv := f.ivs[0]
	switch {
	case iv.lo.inf && iv.hi.inf:
		return Num(0), true
	case iv.lo.inf:
		// (-∞, hi]: something strictly below hi works in all cases.
		if iv.hi.a.IsString() {
			if !iv.hi.open {
				return iv.hi.a, true
			}
			if iv.hi.a.Text() == "" {
				return Num(0), true // any number precedes any string
			}
			return Num(0), true
		}
		return Num(iv.hi.a.num - 1), true
	case iv.hi.inf:
		if !iv.lo.open {
			return iv.lo.a, true
		}
		if iv.lo.a.IsString() {
			return Str(iv.lo.a.Text() + "\x01"), true
		}
		return Num(iv.lo.a.num + 1), true
	default:
		if !iv.lo.open {
			return iv.lo.a, true
		}
		if !iv.hi.open {
			return iv.hi.a, true
		}
		// Open-open, non-empty: midpoint for numbers, successor string
		// otherwise (lo+"\x01" is above lo; normalization guarantees the
		// interval is non-empty, and for strings the successor is below
		// any longer upper bound with this prefix; if not, fall back to
		// the upper bound's prefix trick).
		if !iv.lo.a.IsString() && !iv.hi.a.IsString() {
			return Num((iv.lo.a.num + iv.hi.a.num) / 2), true
		}
		if iv.lo.a.IsString() {
			cand := Str(iv.lo.a.Text() + "\x01")
			if iv.contains(cand) {
				return cand, true
			}
		}
		// Mixed number/string open interval, e.g. (5, "a"): numbers just
		// above the numeric bound work.
		if !iv.lo.a.IsString() {
			cand := Num(iv.lo.a.num + 1)
			if iv.contains(cand) {
				return cand, true
			}
			cand = Num(iv.lo.a.num + 0.5)
			if iv.contains(cand) {
				return cand, true
			}
		}
		return Atom{}, false
	}
}
