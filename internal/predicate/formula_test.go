package predicate

import (
	"math/rand"
	"testing"
)

func TestAtomOrdering(t *testing.T) {
	cases := []struct {
		a, b Atom
		want int
	}{
		{Num(1), Num(2), -1},
		{Num(2), Num(2), 0},
		{Num(3), Num(2), 1},
		{Num(1e9), Str(""), -1}, // numbers before strings
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Str("b"), Num(5), 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestParseAtom(t *testing.T) {
	if a := ParseAtom("3.5"); a.IsString() || a.Compare(Num(3.5)) != 0 {
		t.Errorf("ParseAtom(3.5) = %v", a)
	}
	if a := ParseAtom(`"3.5"`); !a.IsString() || a.Text() != "3.5" {
		t.Errorf("ParseAtom(quoted) = %v", a)
	}
	if a := ParseAtom("gold"); !a.IsString() || a.Text() != "gold" {
		t.Errorf("ParseAtom(gold) = %v", a)
	}
}

func TestBasicConstructorsEval(t *testing.T) {
	cases := []struct {
		f    Formula
		v    Atom
		want bool
	}{
		{Eq(Num(3)), Num(3), true},
		{Eq(Num(3)), Num(4), false},
		{Lt(Num(3)), Num(2), true},
		{Lt(Num(3)), Num(3), false},
		{Le(Num(3)), Num(3), true},
		{Gt(Num(3)), Num(3), false},
		{Gt(Num(3)), Num(4), true},
		{Ge(Num(3)), Num(3), true},
		{Ne(Num(3)), Num(3), false},
		{Ne(Num(3)), Num(5), true},
		{True(), Str("x"), true},
		{False(), Str("x"), false},
		{Eq(Str("gold")), Str("gold"), true},
		{Eq(Str("gold")), Str("silver"), false},
	}
	for i, c := range cases {
		if got := c.f.Eval(c.v); got != c.want {
			t.Errorf("case %d: %v.Eval(%v) = %v, want %v", i, c.f, c.v, got, c.want)
		}
	}
}

func TestAndOrNot(t *testing.T) {
	f := Gt(Num(2)).And(Lt(Num(5))) // 2 < v < 5
	if f.Eval(Num(2)) || !f.Eval(Num(3)) || f.Eval(Num(5)) {
		t.Fatalf("interval conjunction wrong: %v", f)
	}
	g := f.Or(Eq(Num(7)))
	if !g.Eval(Num(7)) || g.Eval(Num(6)) {
		t.Fatalf("disjunction wrong: %v", g)
	}
	n := f.Not()
	if n.Eval(Num(3)) || !n.Eval(Num(2)) || !n.Eval(Num(5)) || !n.Eval(Num(100)) {
		t.Fatalf("negation wrong: %v", n)
	}
	if !f.And(f.Not()).IsFalse() {
		t.Fatal("f ∧ ¬f should be false")
	}
	if !f.Or(f.Not()).IsTrue() {
		t.Fatalf("f ∨ ¬f should be true, got %v", f.Or(f.Not()))
	}
}

func TestUnsatisfiableConjunction(t *testing.T) {
	f := Gt(Num(5)).And(Lt(Num(2)))
	if !f.IsFalse() {
		t.Fatalf("v>5 & v<2 should be false, got %v", f)
	}
	g := Eq(Num(3)).And(Eq(Num(4)))
	if !g.IsFalse() {
		t.Fatalf("v=3 & v=4 should be false, got %v", g)
	}
}

func TestNormalizationMergesAdjacent(t *testing.T) {
	// [1,2] ∪ (2,3] = [1,3]
	f := Ge(Num(1)).And(Le(Num(2))).Or(Gt(Num(2)).And(Le(Num(3))))
	want := Ge(Num(1)).And(Le(Num(3)))
	if !f.Equal(want) {
		t.Fatalf("merge failed: %v vs %v", f, want)
	}
	// (1,2) ∪ (2,3) keeps the hole at 2.
	g := Gt(Num(1)).And(Lt(Num(2))).Or(Gt(Num(2)).And(Lt(Num(3))))
	if g.Eval(Num(2)) {
		t.Fatal("hole at 2 lost")
	}
	if len(g.ivs) != 2 {
		t.Fatalf("expected 2 intervals, got %d (%v)", len(g.ivs), g)
	}
}

func TestImplies(t *testing.T) {
	cases := []struct {
		f, g string
		want bool
	}{
		{"v=3", "v>1", true},
		{"v>1", "v=3", false},
		{"v=3 & v<5", "v>2 | v<1", true},
		{"v>2 & v<5", "v>2 & v<6", true},
		{"v>2 & v<6", "v>2 & v<5", false},
		{"v=3 | v=4", "v>=3 & v<=4", true},
		{"false", "v=1", true},
		{"v=1", "true", true},
		{"true", "v=1", false},
		// From the paper's worked example (Section 4.2): φt'φ2 ⇒ φtφ3.
		{"v=3", "v>1", true},
		// φt''φ2 = (v=3 ∧ w>0): single-variable slice checks.
		{"v=3", "v<5", true},
		{"v>0", "v>2 | v<5", true},
		{"v=gold", `v="gold" | v="silver"`, true},
		{"v=bronze", `v="gold" | v="silver"`, false},
	}
	for _, c := range cases {
		f, g := MustParse(c.f), MustParse(c.g)
		if got := f.Implies(g); got != c.want {
			t.Errorf("(%s) ⇒ (%s) = %v, want %v", c.f, c.g, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "v", "v==3", "x=3", "v=3 &", "v=3 )", "(v=3", "v='abc"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	exprs := []string{
		"v=3", "v>2 & v<5", "v<1 | v>9", "v=3 | v=5", "true", "false",
		`v="gold"`, "v>=2 & v<=8", "v!=4",
	}
	for _, e := range exprs {
		f := MustParse(e)
		back, err := Parse(f.String())
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", f.String(), e, err)
		}
		if !back.Equal(f) {
			t.Errorf("round trip %q -> %q changed semantics", e, f.String())
		}
	}
}

func randFormula(r *rand.Rand, depth int) Formula {
	if depth == 0 || r.Intn(3) == 0 {
		c := Num(float64(r.Intn(10)))
		switch r.Intn(5) {
		case 0:
			return Eq(c)
		case 1:
			return Lt(c)
		case 2:
			return Gt(c)
		case 3:
			return Le(c)
		default:
			return Ge(c)
		}
	}
	a, b := randFormula(r, depth-1), randFormula(r, depth-1)
	if r.Intn(2) == 0 {
		return a.And(b)
	}
	return a.Or(b)
}

// Property test: the interval representation agrees with direct evaluation
// of boolean combinations on sample points, and De Morgan laws hold.
func TestFormulaAlgebraProperties(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	points := make([]Atom, 0, 40)
	for i := -2; i <= 11; i++ {
		points = append(points, Num(float64(i)), Num(float64(i)+0.5))
	}
	for i := 0; i < 500; i++ {
		f := randFormula(r, 3)
		g := randFormula(r, 3)
		and, or := f.And(g), f.Or(g)
		notf := f.Not()
		dm1 := f.And(g).Not()
		dm2 := f.Not().Or(g.Not())
		if !dm1.Equal(dm2) {
			t.Fatalf("De Morgan failed for %v, %v", f, g)
		}
		for _, p := range points {
			if and.Eval(p) != (f.Eval(p) && g.Eval(p)) {
				t.Fatalf("And mismatch at %v: %v %v", p, f, g)
			}
			if or.Eval(p) != (f.Eval(p) || g.Eval(p)) {
				t.Fatalf("Or mismatch at %v: %v %v", p, f, g)
			}
			if notf.Eval(p) == f.Eval(p) {
				t.Fatalf("Not mismatch at %v: %v", p, f)
			}
		}
		if f.Implies(g) {
			for _, p := range points {
				if f.Eval(p) && !g.Eval(p) {
					t.Fatalf("Implies lied: %v => %v but %v", f, g, p)
				}
			}
		}
	}
}
