package predicate

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses a formula in the surface syntax used by the pattern
// language:
//
//	formula := term ('|' term)*
//	term    := factor ('&' factor)*
//	factor  := 'v' op literal | '(' formula ')' | 'true' | 'false'
//	op      := '=' | '!=' | '<' | '<=' | '>' | '>='
//	literal := number | "string" | 'string' | bareword
//
// Examples: `v=3`, `v>2 & v<5`, `v="gold" | v="silver"`.
func Parse(input string) (Formula, error) {
	p := &formulaParser{src: input}
	f, err := p.parseOr()
	if err != nil {
		return Formula{}, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return Formula{}, fmt.Errorf("predicate: trailing input at %d in %q", p.pos, input)
	}
	return f, nil
}

// MustParse is Parse that panics on error; intended for tests and
// programmatically constructed patterns.
func MustParse(input string) Formula {
	f, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return f
}

type formulaParser struct {
	src string
	pos int
}

func (p *formulaParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *formulaParser) eat(s string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *formulaParser) parseOr() (Formula, error) {
	f, err := p.parseAnd()
	if err != nil {
		return Formula{}, err
	}
	for p.eat("|") {
		g, err := p.parseAnd()
		if err != nil {
			return Formula{}, err
		}
		f = f.Or(g)
	}
	return f, nil
}

func (p *formulaParser) parseAnd() (Formula, error) {
	f, err := p.parseFactor()
	if err != nil {
		return Formula{}, err
	}
	for p.eat("&") {
		g, err := p.parseFactor()
		if err != nil {
			return Formula{}, err
		}
		f = f.And(g)
	}
	return f, nil
}

func (p *formulaParser) parseFactor() (Formula, error) {
	p.skipSpace()
	if p.eat("(") {
		f, err := p.parseOr()
		if err != nil {
			return Formula{}, err
		}
		if !p.eat(")") {
			return Formula{}, fmt.Errorf("predicate: missing ')' at %d in %q", p.pos, p.src)
		}
		return f, nil
	}
	if p.eat("true") {
		return True(), nil
	}
	if p.eat("false") {
		return False(), nil
	}
	if !p.eat("v") {
		return Formula{}, fmt.Errorf("predicate: expected 'v' at %d in %q", p.pos, p.src)
	}
	var op string
	switch {
	case p.eat("!="):
		op = "!="
	case p.eat("<="):
		op = "<="
	case p.eat(">="):
		op = ">="
	case p.eat("="):
		op = "="
	case p.eat("<"):
		op = "<"
	case p.eat(">"):
		op = ">"
	default:
		return Formula{}, fmt.Errorf("predicate: expected comparison operator at %d in %q", p.pos, p.src)
	}
	lit, err := p.parseLiteral()
	if err != nil {
		return Formula{}, err
	}
	c := ParseAtom(lit)
	switch op {
	case "=":
		return Eq(c), nil
	case "!=":
		return Ne(c), nil
	case "<":
		return Lt(c), nil
	case "<=":
		return Le(c), nil
	case ">":
		return Gt(c), nil
	default:
		return Ge(c), nil
	}
}

func (p *formulaParser) parseLiteral() (string, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return "", fmt.Errorf("predicate: expected literal at end of %q", p.src)
	}
	if q := p.src[p.pos]; q == '"' || q == '\'' {
		end := strings.IndexByte(p.src[p.pos+1:], q)
		if end < 0 {
			return "", fmt.Errorf("predicate: unterminated string at %d in %q", p.pos, p.src)
		}
		lit := p.src[p.pos : p.pos+end+2]
		p.pos += end + 2
		return lit, nil
	}
	start := p.pos
	for p.pos < len(p.src) {
		r := rune(p.src[p.pos])
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '.' || r == '-' || r == '+' || r == '_' {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", fmt.Errorf("predicate: expected literal at %d in %q", p.pos, p.src)
	}
	return p.src[start:p.pos], nil
}
