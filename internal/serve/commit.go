package serve

// Group commit: /update requests no longer apply and persist their batch
// under a handler-held lock. They enqueue into a commit queue and a
// single committer goroutine drains it, merging every queued request into
// one epoch — one summary clone, one diff/splice pass over the
// concatenated update list, one staged persist + fsync — then acks each
// waiting request individually. While one group fsyncs, the next group
// accumulates, so update throughput scales with concurrent writers
// instead of being 1/latency.
//
// Per-request semantics are preserved by validating each request with a
// dry-run apply (maintain.DryRun) in queue order before the group seals:
// a malformed request fails alone with 422 and is excluded from the
// merged batch; the rest of the group still commits. Once sealed, the
// group commits under a context detached from every member request, so a
// client disconnect never cancels a commit it joined — the departed
// request is answered 499 by its handler while the committer finishes
// the group for everyone else.

import (
	"context"
	"errors"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"xmlviews/internal/core"
	"xmlviews/internal/cost"
	"xmlviews/internal/maintain"
	"xmlviews/internal/obs"
	"xmlviews/internal/view"
	"xmlviews/internal/xmltree"
)

// defaultGroupMax caps how many requests merge into one commit group.
const defaultGroupMax = 64

// commitQueueDepth bounds how many parsed requests can wait for the
// committer before enqueueing itself blocks (backpressure).
const commitQueueDepth = 256

// commitReq is one parsed, size-checked /update request waiting for the
// committer. done is buffered so the committer can ack without ever
// blocking on a handler that stopped listening (client disconnect).
type commitReq struct {
	updates []xmltree.Update
	tr      *obs.Trace
	enq     time.Time
	done    chan commitAck
}

// commitAck is the committer's per-request verdict: resp on success, an
// HTTP status and message otherwise.
type commitAck struct {
	status int
	errMsg string
	resp   *UpdateResponse
}

func (r *commitReq) ack(a commitAck) { r.done <- a }

func (s *Server) groupMax() int {
	if s.cfg.GroupMax > 0 {
		return s.cfg.GroupMax
	}
	return defaultGroupMax
}

// commitLoop is the committer goroutine: it owns the document, the
// summary, the catalog mutation path and the epoch-scoped cache swap.
// Every update reaching disk flows through here, one group at a time.
//
//xvlint:owner(committer)
func (s *Server) commitLoop() {
	defer s.commitWG.Done()
	for {
		select {
		case <-s.commitStop:
			s.drainQueue()
			return
		case first := <-s.commitQ:
			s.commitGroup(s.collectGroup(first))
		}
	}
}

// collectGroup seals one commit group: the first request plus whatever
// queued behind it (natural batching — while the previous group fsynced,
// writers accumulated), topped up during an optional GroupWait straggler
// window, capped at GroupMax.
//
//xvlint:owner(committer)
func (s *Server) collectGroup(first *commitReq) []*commitReq {
	group := []*commitReq{first}
	max := s.groupMax()
	for len(group) < max {
		select {
		case r := <-s.commitQ:
			group = append(group, r)
			continue
		default:
		}
		break
	}
	if wait := s.cfg.GroupWait; wait > 0 && len(group) < max {
		timer := time.NewTimer(wait)
		defer timer.Stop()
	straggle:
		for len(group) < max {
			select {
			case r := <-s.commitQ:
				group = append(group, r)
			case <-timer.C:
				break straggle
			case <-s.commitStop:
				break straggle
			}
		}
	}
	return group
}

// drainQueue answers every request still queued at shutdown; none of them
// joined a sealed group, so refusing them is exact.
//
//xvlint:owner(committer)
func (s *Server) drainQueue() {
	for {
		select {
		case r := <-s.commitQ:
			r.ack(commitAck{status: http.StatusServiceUnavailable, errMsg: "server is shutting down"})
		default:
			return
		}
	}
}

// commitGroup validates each member request, merges the accepted ones
// into one batch, applies and persists it as one epoch, swaps the
// epoch-scoped caches, and acks every member with its own result.
//
//xvlint:owner(committer)
func (s *Server) commitGroup(group []*commitReq) {
	now := time.Now()
	for _, r := range group {
		s.met.queueWait.ObserveDuration(now.Sub(r.enq))
	}
	if s.degraded.Load() {
		for _, r := range group {
			r.ack(commitAck{status: http.StatusServiceUnavailable,
				errMsg: "updates disabled: an earlier batch was applied in memory but not persisted; restart the server against the store directory"})
		}
		return
	}

	// updMu serializes the commit against the online compactor (catalog
	// mutation and segment files must not interleave with a fold).
	s.updMu.Lock()
	defer s.updMu.Unlock()
	if s.st.Document() == nil {
		if err := s.loadDocument(); err != nil {
			for _, r := range group {
				r.ack(commitAck{status: http.StatusConflict, errMsg: "store is not updatable: " + err.Error()})
			}
			return
		}
	}

	// Per-request validation, in queue order, against the document as the
	// earlier accepted requests will have left it: an insert under a node
	// an earlier request deletes must fail exactly as the merged apply
	// would. Rejected requests fail alone; the group commits without them.
	dry := maintain.NewDryRun(s.st.Document())
	var live []*commitReq
	var merged []xmltree.Update
	for _, r := range group {
		if err := dry.Apply(r.updates); err != nil {
			r.ack(commitAck{status: http.StatusUnprocessableEntity, errMsg: err.Error()})
			continue
		}
		live = append(live, r)
		merged = append(merged, r.updates...)
	}
	dry.Undo()
	if len(live) == 0 {
		return
	}

	// The group is sealed: commit under a trace and context detached from
	// every member request, so a departing client cannot cancel work its
	// groupmates depend on. The group trace's spans are fanned out to each
	// member's trace below.
	gtr := obs.NewTrace(obs.NewRequestID())
	ctx := obs.WithTrace(context.Background(), gtr)

	start := time.Now()
	res, err := view.ApplyAndPersistStaged(ctx, s.cfg.Dir, s.cat, s.st, merged,
		func(res *view.UpdateResult) {
			// The merged batch is applied: the store installed the new
			// extent version. Swap the epoch-scoped caches immediately —
			// plans and containment verdicts computed under the old summary
			// must not survive, and queries pin store version and caches
			// together (see snapshot), so the swap must not wait out the
			// disk persist. If the persist then fails, memory ahead of disk
			// is the degraded state handled below.
			s.mu.Lock()
			s.sum = res.Summary
			s.subsume = core.NewSubsumeCache(0)
			s.plans = newPlanCache(s.cfg.PlanCacheSize)
			s.est = cost.NewEstimator(cost.FromCatalog(s.cat, res.Summary))
			s.cacheEpoch = res.Epoch
			s.mu.Unlock()
			s.met.invalidations.Inc()
		})
	// The pipeline recorded "apply", "persist" and "catalog" spans on the
	// group trace (plus the engine's diff/splice aggregates under apply);
	// feed the phase histograms from the same measurements.
	if d := gtr.SpanTotal("apply"); d > 0 {
		s.met.applySeconds.ObserveDuration(d)
	}
	if d := gtr.SpanTotal("persist") + gtr.SpanTotal("catalog"); d > 0 {
		s.met.persistSeconds.ObserveDuration(d)
	}
	var perr *view.PersistError
	if err != nil && !errors.As(err, &perr) {
		// Validation accepted the group but the maintenance engine did
		// not; memory and directory are unchanged (the visibility hook
		// only runs after a successful apply), so the whole group fails
		// without degrading the server.
		for _, r := range live {
			r.ack(commitAck{status: http.StatusUnprocessableEntity, errMsg: err.Error()})
		}
		return
	}
	s.met.updates.Add(int64(len(live)))
	s.met.groupCommits.Inc()
	s.met.groupSize.Observe(float64(len(live)))
	for _, c := range res.Changed {
		s.met.tuplesAdded.Add(int64(c.Adds))
		s.met.tuplesDeleted.Add(int64(c.Dels))
	}
	dur := time.Since(start)
	s.met.maintainSeconds.ObserveDuration(dur)
	gtr.AddSpan("maintain", start, dur)
	gtr.Annotate("epoch", strconv.FormatInt(res.Epoch, 10))
	gtr.Annotate("group_size", strconv.Itoa(len(live)))

	if perr != nil {
		s.degraded.Store(true)
		s.log.Error("update group applied in memory but not persisted; updates disabled",
			slog.String("group_trace", gtr.ID), slog.Int("group_size", len(live)),
			slog.String("error", perr.Error()))
		for _, r := range live {
			s.fanOutSpans(r, gtr)
			r.ack(commitAck{status: http.StatusInternalServerError,
				errMsg: perr.Error() + "; queries keep serving the applied batch from memory, further updates are disabled"})
		}
		return
	}
	// The group persisted: the catalog now carries the new row counts, so
	// refresh the cost estimator built eagerly in the visibility hook
	// (same summary, fresher cardinalities).
	s.mu.Lock()
	s.est = cost.NewEstimator(cost.FromCatalog(s.cat, res.Summary))
	s.mu.Unlock()
	// The delta chains grew by one segment per changed view. Refresh the
	// gauges (updMu is held) and wake the compactor when the policy trips.
	s.refreshChainGauges()
	if !s.cfg.CompactDisabled && s.overThreshold() {
		s.signalCompact()
	}
	changed := res.Changed
	if changed == nil {
		changed = []view.ChangedView{}
	}
	for _, r := range live {
		s.fanOutSpans(r, gtr)
		r.ack(commitAck{resp: &UpdateResponse{
			Epoch:          res.Epoch,
			Applied:        len(r.updates),
			Changed:        changed,
			Skipped:        res.Skipped,
			MaintainMicros: dur.Microseconds(),
			GroupSize:      len(live),
		}})
	}
}

// fanOutSpans copies the group trace's committer-phase spans onto one
// member request's trace, preserving absolute timing, so per-request
// traces (ring, slow log, trace=1) still show apply/persist/catalog
// phases under group commit.
func (s *Server) fanOutSpans(r *commitReq, gtr *obs.Trace) {
	for _, sp := range gtr.Spans() {
		r.tr.AddSpan(sp.Name, gtr.Begin.Add(sp.Start), sp.Dur)
	}
	r.tr.Annotate("group_trace", gtr.ID)
}
