package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"xmlviews/internal/core"
	"xmlviews/internal/pattern"
	"xmlviews/internal/view"
	"xmlviews/internal/xmltree"
)

// BenchmarkGroupCommit measures end-to-end /update throughput as writer
// concurrency grows. Under group commit the per-request cost amortizes —
// one summary clone, one diff/splice, one fsync per group — so ops/sec
// should scale with writers instead of staying pinned at 1/commit-latency.
func BenchmarkGroupCommit(b *testing.B) {
	for _, writers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("writers-%d", writers), func(b *testing.B) {
			dir := b.TempDir()
			doc := xmltree.MustParseParen(`site(item(name "n0" price "1"))`)
			views := []*core.View{
				{Name: "vname", Pattern: pattern.MustParse(`site(/item[id](/name[v]))`), DerivableParentIDs: true},
				{Name: "vprice", Pattern: pattern.MustParse(`site(//price[id,v])`), DerivableParentIDs: true},
			}
			if _, err := view.BuildStore(dir, doc, views); err != nil {
				b.Fatal(err)
			}
			srv, err := New(Config{Dir: dir, Workers: 2, PlanCacheSize: 16})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			work := make(chan int)
			var wg sync.WaitGroup
			var failed sync.Once
			var benchErr error
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := range work {
						body := fmt.Sprintf(`[{"op":"settext","target":"1.1.3","value":"%d"}]`, i)
						resp, err := http.Post(ts.URL+"/update", "application/json", strings.NewReader(body))
						if err != nil {
							failed.Do(func() { benchErr = err })
							return
						}
						data, _ := io.ReadAll(resp.Body)
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							failed.Do(func() {
								benchErr = fmt.Errorf("update %d: status %d: %s", i, resp.StatusCode, data)
							})
							return
						}
					}
				}()
			}

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				work <- i
			}
			close(work)
			wg.Wait()
			b.StopTimer()
			if benchErr != nil {
				b.Fatal(benchErr)
			}
		})
	}
}
