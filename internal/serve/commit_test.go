package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"xmlviews/internal/core"
	"xmlviews/internal/pattern"
	"xmlviews/internal/view"
	"xmlviews/internal/xmltree"
)

// TestServeGroupCommitSurvivesClientDisconnect is the regression test for
// detached group commits: a client that disconnects while its request sits
// in a sealed (or sealing) group must get 499, but the group must still
// commit — cancelling the member request must not cancel work its
// groupmates depend on.
func TestServeGroupCommitSurvivesClientDisconnect(t *testing.T) {
	// A generous straggler window keeps the group open long enough for the
	// cancellation to land while the update is unambiguously in flight.
	ts, _ := newUpdatableServer(t, Config{GroupWait: 300 * time.Millisecond})

	ctx, cancel := context.WithCancel(context.Background())
	body := `[{"op":"insert","parent":"1","subtree":"item(name \"gone\" price \"5\")"}]`
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/update", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")

	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			err = fmt.Errorf("disconnected request answered %d", resp.StatusCode)
		}
		done <- err
	}()
	// Let the request reach the commit queue (the committer is holding the
	// group open for GroupWait), then walk away.
	time.Sleep(100 * time.Millisecond)
	cancel()
	if err := <-done; err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("client Do: %v, want context cancellation", err)
	}

	// The committer must finish the group regardless: the epoch advances
	// and the insert is applied, even though nobody is listening.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var st Stats
		getJSON(t, ts.URL+"/stats", &st)
		if st.Epoch == 1 && st.UpdatesApplied == 1 {
			if st.ClientDisconnects < 1 {
				t.Fatalf("disconnect not counted: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("abandoned group never committed: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	var resp QueryResponse
	q := url.QueryEscape(`site(/item[id](/name[v]))`)
	if code := getJSON(t, ts.URL+"/query?q="+q, &resp); code != http.StatusOK {
		t.Fatalf("query status %d", code)
	}
	if len(resp.Rows) != 3 {
		t.Fatalf("insert from the disconnected client not applied: %d rows", len(resp.Rows))
	}
}

// TestServeGroupCommitRejectsBadMemberOnly pins per-request validation
// under group commit: a malformed request merged into a group fails alone
// with 422 while its groupmates commit.
func TestServeGroupCommitRejectsBadMemberOnly(t *testing.T) {
	ts, _ := newUpdatableServer(t, Config{GroupWait: 300 * time.Millisecond})

	type outcome struct {
		code int
		up   UpdateResponse
	}
	bodies := []string{
		`[{"op":"insert","parent":"1","subtree":"item(name \"g1\" price \"1\")"}]`,
		`[{"op":"delete","target":"1.99"}]`, // no such node: must fail alone
		`[{"op":"insert","parent":"1","subtree":"item(name \"g2\" price \"2\")"}]`,
	}
	results := make([]outcome, len(bodies))
	var wg sync.WaitGroup
	for i, body := range bodies {
		wg.Add(1)
		go func(i int, body string) {
			defer wg.Done()
			results[i].code = postUpdate(t, ts, body, &results[i].up)
		}(i, body)
	}
	wg.Wait()

	if results[1].code != http.StatusUnprocessableEntity {
		t.Fatalf("bad member: status %d, want 422", results[1].code)
	}
	for _, i := range []int{0, 2} {
		if results[i].code != http.StatusOK {
			t.Fatalf("good member %d: status %d, want 200", i, results[i].code)
		}
		if results[i].up.Applied != 1 || results[i].up.GroupSize < 1 {
			t.Fatalf("good member %d response: %+v", i, results[i].up)
		}
	}

	// Both good inserts landed; the bad delete left no trace. The two good
	// requests may have merged into one group or committed as two.
	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.UpdatesApplied != 2 {
		t.Fatalf("updates_applied = %d, want 2: %+v", st.UpdatesApplied, st)
	}
	epochs := map[int64]bool{results[0].up.Epoch: true, results[2].up.Epoch: true}
	if int(st.Epoch) != len(epochs) {
		t.Fatalf("epoch %d, want %d (one per group)", st.Epoch, len(epochs))
	}
	var resp QueryResponse
	q := url.QueryEscape(`site(/item[id](/name[v]))`)
	if code := getJSON(t, ts.URL+"/query?q="+q, &resp); code != http.StatusOK {
		t.Fatalf("query status %d", code)
	}
	if len(resp.Rows) != 4 {
		t.Fatalf("%d rows, want 4 (2 initial + 2 inserted)", len(resp.Rows))
	}
}

// metricValue scrapes GET /metrics for one sample line and returns its
// value (0 if the family never fired).
func metricValue(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.Fields(line)[1], 64)
		if err != nil {
			t.Fatalf("bad sample %q: %v", line, err)
		}
		return v
	}
	return 0
}

// TestServeSoakGroupCommit is the race-enabled group-commit soak: 8
// concurrent HTTP writers push 200 update batches through the daemon while
// 3 readers query and scrape stats. It asserts the epoch advances exactly
// one per committed group (the acked epochs form a contiguous 1..E with no
// gaps), every ack matches its outcome, MVCC retention stays bounded, and
// the persisted store reopens with extents identical to a from-scratch
// rebuild of the final document.
func TestServeSoakGroupCommit(t *testing.T) {
	const (
		writers     = 8
		perWriter   = 25
		maxVersions = 4
	)
	dir := t.TempDir()
	doc := xmltree.MustParseParen(`site(item(name "n0" price "1"))`)
	views := []*core.View{
		{Name: "vname", Pattern: pattern.MustParse(`site(/item[id](/name[v]))`), DerivableParentIDs: true},
		{Name: "vprice", Pattern: pattern.MustParse(`site(//price[id,v])`), DerivableParentIDs: true},
	}
	if _, err := view.BuildStore(dir, doc, views); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Dir: dir, Workers: 2, PlanCacheSize: 16,
		GroupWait: time.Millisecond, MaxVersions: maxVersions})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	var (
		mu     sync.Mutex
		epochs []int64
	)
	done := make(chan struct{})
	errs := make(chan error, writers+8)
	var wg, writerWG sync.WaitGroup

	for w := 0; w < writers; w++ {
		wg.Add(1)
		writerWG.Add(1)
		go func(w int) {
			defer wg.Done()
			defer writerWG.Done()
			last := int64(0)
			for i := 0; i < perWriter; i++ {
				body := fmt.Sprintf(`[{"op":"insert","parent":"1","subtree":"item(name \"w%dn%d\" price \"%d\")"}]`, w, i, i%7)
				resp, err := http.Post(ts.URL+"/update", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("writer %d batch %d: status %d: %s", w, i, resp.StatusCode, data)
					return
				}
				var up UpdateResponse
				if err := json.Unmarshal(data, &up); err != nil {
					errs <- fmt.Errorf("writer %d batch %d: %v", w, i, err)
					return
				}
				// Acks must match outcomes: this writer's one update was
				// applied at the acked epoch, inside a plausible group.
				if up.Applied != 1 || up.Epoch <= last || up.GroupSize < 1 || up.GroupSize > writers {
					errs <- fmt.Errorf("writer %d batch %d: implausible ack %+v (last epoch %d)", w, i, up, last)
					return
				}
				last = up.Epoch
				mu.Lock()
				epochs = append(epochs, up.Epoch)
				mu.Unlock()
			}
		}(w)
	}

	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := url.QueryEscape(`site(/item[id](/name[v]))`)
			for {
				select {
				case <-done:
					return
				default:
				}
				r, err := http.Get(ts.URL + "/query?q=" + q)
				if err != nil {
					errs <- err
					return
				}
				data, _ := io.ReadAll(r.Body)
				r.Body.Close()
				if r.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("query status %d: %s", r.StatusCode, data)
					return
				}
				var resp QueryResponse
				if err := json.Unmarshal(data, &resp); err != nil {
					errs <- err
					return
				}
				if resp.TotalRows < 1 || resp.TotalRows > 1+writers*perWriter {
					errs <- fmt.Errorf("implausible result: %d rows at epoch %d", resp.TotalRows, resp.Epoch)
					return
				}
				// MVCC retention must hold while readers pin snapshots.
				if v := srv.st.Versions(); v > maxVersions {
					errs <- fmt.Errorf("retention bound broken: %d versions (max %d)", v, maxVersions)
					return
				}
			}
		}()
	}

	writerWG.Wait()
	close(done)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Epoch contiguity: every member of a group is acked with the group's
	// epoch, so the acked epochs must cover exactly 1..E with no gaps — the
	// epoch advanced precisely one per committed group.
	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.UpdatesApplied != writers*perWriter {
		t.Fatalf("updates_applied = %d, want %d", st.UpdatesApplied, writers*perWriter)
	}
	distinct := map[int64]bool{}
	for _, e := range epochs {
		distinct[e] = true
	}
	if int64(len(distinct)) != st.Epoch {
		t.Fatalf("%d distinct acked epochs but final epoch %d", len(distinct), st.Epoch)
	}
	for e := int64(1); e <= st.Epoch; e++ {
		if !distinct[e] {
			t.Fatalf("epoch %d skipped (final epoch %d)", e, st.Epoch)
		}
	}
	if groups := metricValue(t, ts, "xvserve_group_commits_total"); int64(groups) != st.Epoch {
		t.Fatalf("group_commits_total %v, want %d (one per epoch)", groups, st.Epoch)
	}
	if n := metricValue(t, ts, "xvserve_commit_group_size_count"); int64(n) != st.Epoch {
		t.Fatalf("group size histogram observed %v groups, want %d", n, st.Epoch)
	}
	if sum := metricValue(t, ts, "xvserve_commit_group_size_sum"); int(sum) != writers*perWriter {
		t.Fatalf("group size histogram sum %v, want %d (every request in exactly one group)", sum, writers*perWriter)
	}
	if st.Epoch >= writers*perWriter {
		t.Logf("warning: no batching happened (epoch %d for %d requests)", st.Epoch, writers*perWriter)
	}
	finalEpoch := st.Epoch
	srv.Close() // flush the committer before inspecting the directory

	// Reopen parity: the persisted store must match a from-scratch rebuild
	// over the final document.
	cat, st2, err := view.OpenUpdatableStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Epoch != finalEpoch {
		t.Fatalf("persisted epoch %d, want %d", cat.Epoch, finalEpoch)
	}
	final := st2.Document()
	for _, v := range views {
		want := view.MaterializeFlat(v, final)
		if got := st2.Relation(v); !got.EqualAsSet(want) {
			t.Fatalf("persisted extent of %s diverges from rebuild\nstore:\n%s\nrebuild:\n%s",
				v.Name, got.Sorted(), want.Sorted())
		}
	}
}
