package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"

	"xmlviews/internal/core"
	"xmlviews/internal/pattern"
	"xmlviews/internal/view"
	"xmlviews/internal/xmltree"
)

// newCostServer is newTestServer but returning the Server too, for tests
// that poke at internals (counters, direct handler calls).
func newCostServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	doc := xmltree.MustParseParen(
		`site(item(name "pen" price "3") item(name "ink" price "7") item(name "dry" price "2"))`)
	views := []*core.View{
		{Name: "vname", Pattern: pattern.MustParse(`site(/item[id](/name[v]))`), DerivableParentIDs: true},
		{Name: "vprice", Pattern: pattern.MustParse(`site(/item[id](/price[v]))`), DerivableParentIDs: true},
	}
	if _, err := view.BuildStore(dir, doc, views); err != nil {
		t.Fatal(err)
	}
	cfg.Dir = dir
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestServeExplain(t *testing.T) {
	_, ts := newCostServer(t, Config{Workers: 2})
	q := url.QueryEscape(`site(/item[id](/name[v]))`)

	resp, err := http.Get(ts.URL + "/query?q=" + q + "&explain=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	// Shape: the documented fields must be present, and no rows.
	var shape map[string]json.RawMessage
	if err := json.Unmarshal(body, &shape); err != nil {
		t.Fatalf("bad JSON %q: %v", body, err)
	}
	for _, field := range []string{"query", "plan", "cost", "alternatives", "plan_cached", "epoch", "rewrite_us"} {
		if _, ok := shape[field]; !ok {
			t.Errorf("explain response lacks %q: %s", field, body)
		}
	}
	if _, ok := shape["rows"]; ok {
		t.Errorf("explain response must not execute/render rows: %s", body)
	}
	var er ExplainResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Plan == "" || er.Alternatives < 1 || er.Cost <= 0 {
		t.Fatalf("explain content wrong: %+v", er)
	}

	// The explain verdict is the cached plan: the follow-up executing query
	// hits the cache and runs the same plan.
	var qr QueryResponse
	if code := getJSON(t, ts.URL+"/query?q="+q, &qr); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !qr.PlanCached || qr.Plan != er.Plan || qr.Cost != er.Cost || qr.Alternatives != er.Alternatives {
		t.Fatalf("executed query disagrees with explain: %+v vs %+v", qr, er)
	}
}

func TestServeLimitOffset(t *testing.T) {
	_, ts := newCostServer(t, Config{Workers: 2})
	q := url.QueryEscape(`site(/item[id](/name[v]))`)

	var full QueryResponse
	if code := getJSON(t, ts.URL+"/query?q="+q, &full); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if full.TotalRows != 3 || len(full.Rows) != 3 || full.Offset != 0 {
		t.Fatalf("full response wrong: total=%d rows=%d offset=%d", full.TotalRows, len(full.Rows), full.Offset)
	}

	var win QueryResponse
	if code := getJSON(t, ts.URL+"/query?q="+q+"&limit=1&offset=1", &win); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if win.TotalRows != 3 || len(win.Rows) != 1 || win.Offset != 1 {
		t.Fatalf("window wrong: total=%d rows=%d offset=%d", win.TotalRows, len(win.Rows), win.Offset)
	}
	if win.Rows[0][0] != full.Rows[1][0] {
		t.Fatalf("offset window returned %v, want %v", win.Rows[0], full.Rows[1])
	}

	// Offset past the end: empty window, same total.
	var past QueryResponse
	if code := getJSON(t, ts.URL+"/query?q="+q+"&offset=99", &past); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if past.TotalRows != 3 || len(past.Rows) != 0 {
		t.Fatalf("past-the-end window wrong: total=%d rows=%d", past.TotalRows, len(past.Rows))
	}

	// Bad parameters are client errors.
	var er errorResponse
	if code := getJSON(t, ts.URL+"/query?q="+q+"&limit=-1", &er); code != http.StatusBadRequest {
		t.Fatalf("negative limit: status %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/query?q="+q+"&offset=x", &er); code != http.StatusBadRequest {
		t.Fatalf("bad offset: status %d, want 400", code)
	}
}

func TestServeDefaultResponseCap(t *testing.T) {
	_, ts := newCostServer(t, Config{Workers: 2, MaxResponseRows: 2})
	q := url.QueryEscape(`site(/item[id](/name[v]))`)
	var qr QueryResponse
	if code := getJSON(t, ts.URL+"/query?q="+q, &qr); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if qr.TotalRows != 3 || len(qr.Rows) != 2 {
		t.Fatalf("capped response wrong: total=%d rows=%d", qr.TotalRows, len(qr.Rows))
	}
	// An explicit limit above the cap is clamped to it.
	var big QueryResponse
	if code := getJSON(t, ts.URL+"/query?q="+q+"&limit=100", &big); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(big.Rows) != 2 {
		t.Fatalf("limit above cap must clamp: rows=%d", len(big.Rows))
	}
}

// TestServeSingleflight fires many concurrent requests for one cold query
// and checks that only a single rewriting search ran.
func TestServeSingleflight(t *testing.T) {
	srv, ts := newCostServer(t, Config{Workers: 2})
	q := url.QueryEscape(`site(/item[id](/name[v] /price[v]))`)

	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/query?q=" + q)
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- io.EOF
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent query failed: %v", err)
	}
	if got := srv.met.rewritesRun.Value(); got != 1 {
		t.Fatalf("rewrites run = %d, want 1 (singleflight must collapse the stampede)", got)
	}
	if got := srv.met.queries.Value(); got != clients {
		t.Fatalf("queries = %d, want %d", got, clients)
	}
	// Only the leader is a plan-cache miss; followers obtained the shared
	// verdict without a search and count as hits.
	if got := srv.met.planMisses.Value(); got != 1 {
		t.Fatalf("plan-cache misses = %d, want 1", got)
	}
	if got := srv.met.planHits.Value(); got != clients-1 {
		t.Fatalf("plan-cache hits = %d, want %d", got, clients-1)
	}
}

// TestServeClientGone exercises the 499 path: a request whose context is
// already cancelled must not produce a plan, burn the search, or be cached.
func TestServeClientGone(t *testing.T) {
	srv, _ := newCostServer(t, Config{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodGet, "/query?q="+url.QueryEscape(`site(/item[id](/name[v]))`), nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("status %d, want %d: %s", rec.Code, statusClientClosedRequest, rec.Body.String())
	}

	// The aborted search must not have poisoned the plan cache: a live
	// request succeeds and runs its own search.
	req2 := httptest.NewRequest(http.MethodGet, "/query?q="+url.QueryEscape(`site(/item[id](/name[v]))`), nil)
	rec2 := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec2, req2)
	if rec2.Code != http.StatusOK {
		t.Fatalf("follow-up status %d: %s", rec2.Code, rec2.Body.String())
	}
}
