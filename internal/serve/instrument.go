package serve

import (
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"time"

	"xmlviews/internal/obs"
)

// statusWriter remembers the status code a handler answered with, so the
// instrument middleware can label the request counter and the trace record.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument wraps a route handler with the per-request observability
// envelope: it resolves the request id (a valid client-supplied
// X-Request-Id is honored, anything else replaced), starts a trace on the
// request context, echoes the id on the response, and after the handler
// returns it counts the response by route and status. Pipeline routes
// (/query, /update) additionally land in the trace ring and, past the
// slow-request threshold, in the structured log.
func (s *Server) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if !obs.ValidRequestID(id) {
			id = obs.NewRequestID()
		}
		tr := obs.NewTrace(id)
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r.WithContext(obs.WithTrace(r.Context(), tr)))
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		dur := time.Since(tr.Begin)
		//xvlint:boundedlabel status codes are a fixed finite registry
		s.met.httpRequests.With(path, strconv.Itoa(status)).Inc()
		if path != "/query" && path != "/update" {
			return
		}
		s.ring.Add(obs.TraceRecord{
			ID:        id,
			Time:      tr.Begin,
			Path:      path,
			Status:    status,
			DurMicros: dur.Microseconds(),
			Attrs:     tr.Annotations(),
			Spans:     tr.Spans(),
		})
		if s.cfg.SlowQuery > 0 && dur >= s.cfg.SlowQuery {
			s.logSlow(path, status, dur, tr)
		}
	}
}

// logSlow emits exactly one structured log line for a slow pipeline
// request: correlation id, route, outcome, total latency, the trace's
// annotations (query text, plan, cost, epoch) in sorted key order, and the
// recorded span timings.
func (s *Server) logSlow(path string, status int, dur time.Duration, tr *obs.Trace) {
	args := []any{
		slog.String("request_id", tr.ID),
		slog.String("path", path),
		slog.Int("status", status),
		slog.Int64("dur_us", dur.Microseconds()),
	}
	attrs := tr.Annotations()
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		args = append(args, slog.String(k, attrs[k]))
	}
	if spans := tr.Spans(); len(spans) > 0 {
		args = append(args, slog.Any("spans", spans))
	}
	s.log.Warn("slow request", args...)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, r, http.StatusMethodNotAllowed, "use GET")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// handleTraces serves the bounded ring of recent /query and /update
// traces, newest first.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, r, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, s.ring.Snapshot())
}

// DebugHandler returns the daemon's debug routes — the Go pprof profiler
// plus the same /metrics and /debug/traces the main handler serves — meant
// for a separate, non-public listener (xvserve -debugaddr). Profiling is
// never mounted on the serving mux.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/traces", s.handleTraces)
	return mux
}

// Registry exposes the server's metrics registry so embedders (the CLI,
// tests) can read instruments or add their own before serving.
func (s *Server) Registry() *obs.Registry { return s.reg }
