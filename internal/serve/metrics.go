package serve

import (
	"xmlviews/internal/algebra"
	"xmlviews/internal/core"
	"xmlviews/internal/obs"
)

// metricsSet bundles every metric family the daemon maintains, registered
// on one obs.Registry that GET /metrics exposes. The /stats JSON body is
// derived from the same instruments, so the two endpoints can never
// disagree about a count.
type metricsSet struct {
	// Per-route request counts by final status code; the instrument
	// middleware observes every response, so error-rate dashboards need no
	// separate error series per route.
	httpRequests *obs.CounterVec // labels: path, code
	// viewReads counts, per stored view, how many times an executed plan
	// scanned it — the access pattern view selection tools want.
	viewReads *obs.CounterVec // label: view
	// vecKernels counts vectorized kernel executions by kernel name
	// (select_label, select_value, join_prune); vecBlocksScanned and
	// vecBlocksSkipped count zone-map consultations, so the skip ratio is
	// observable per deployment.
	vecKernels       *obs.CounterVec // label: kernel
	vecBlocksScanned *obs.Counter
	vecBlocksSkipped *obs.Counter

	// Query-path counters (the former /stats atomics).
	queries     *obs.Counter
	rewritesRun *obs.Counter
	clientsGone *obs.Counter
	errors      *obs.Counter
	planHits    *obs.Counter
	planMisses  *obs.Counter
	rowsServed  *obs.Counter

	// Update-path counters. groupCommits counts committed groups (one
	// epoch each); updates counts the member requests, so
	// updates/groupCommits is the realized batching factor.
	updates       *obs.Counter
	tuplesAdded   *obs.Counter
	tuplesDeleted *obs.Counter
	invalidations *obs.Counter
	groupCommits  *obs.Counter

	// Compaction counters.
	compactions      *obs.Counter
	compactFolded    *obs.Counter
	compactReclaimed *obs.Counter
	compactErrors    *obs.Counter

	// Per-phase latency histograms, in seconds. rewriteSeconds observes
	// only requests that ran or directly hit a search (singleflight
	// followers are excluded, mirroring the /stats rewrite time); the
	// maintain family splits the end-to-end batch latency into the
	// in-memory apply and the disk persist.
	rewriteSeconds  *obs.Histogram
	costSeconds     *obs.Histogram
	snapshotSeconds *obs.Histogram
	execSeconds     *obs.Histogram
	encodeSeconds   *obs.Histogram
	maintainSeconds *obs.Histogram
	applySeconds    *obs.Histogram
	persistSeconds  *obs.Histogram
	compactSeconds  *obs.Histogram
	// Group-commit instruments: how many requests each committed group
	// merged (a size distribution, not a latency), and how long requests
	// waited in the commit queue before their group sealed.
	groupSize *obs.Histogram
	queueWait *obs.Histogram

	// Delta-chain gauges, refreshed after every update and compaction.
	maxChain   *obs.Gauge
	deltaBytes *obs.Gauge
}

func newMetricsSet(r *obs.Registry) *metricsSet {
	return &metricsSet{
		httpRequests: r.CounterVec("xvserve_http_requests_total",
			"HTTP requests served, by route and status code.", "path", "code"),
		viewReads: r.CounterVec("xvserve_view_reads_total",
			"Materialized-view scans by executed plans, per view.", "view"),
		vecKernels: r.CounterVec("xvserve_vec_kernels_total",
			"Vectorized kernel executions, by kernel.", "kernel"),
		vecBlocksScanned: r.Counter("xvserve_vec_blocks_scanned_total",
			"Zone-map blocks the vectorized path scanned row-wise."),
		vecBlocksSkipped: r.Counter("xvserve_vec_blocks_skipped_total",
			"Zone-map blocks the vectorized path skipped without touching rows."),

		queries:     r.Counter("xvserve_queries_total", "Queries received on /query."),
		rewritesRun: r.Counter("xvserve_rewrites_run_total", "Rewriting searches actually run (cache hits and singleflight followers excluded)."),
		clientsGone: r.Counter("xvserve_client_disconnects_total", "Requests whose client disconnected before the answer (HTTP 499)."),
		errors:      r.Counter("xvserve_errors_total", "Requests answered with an error status (client disconnects excluded)."),
		planHits:    r.Counter("xvserve_plan_cache_hits_total", "Plan cache hits, including singleflight followers."),
		planMisses:  r.Counter("xvserve_plan_cache_misses_total", "Plan cache misses that led a rewriting search."),
		rowsServed:  r.Counter("xvserve_rows_served_total", "Result rows rendered into /query responses."),

		updates:       r.Counter("xvserve_updates_applied_total", "Update batches applied."),
		tuplesAdded:   r.Counter("xvserve_tuples_added_total", "Tuples added to view extents by updates."),
		tuplesDeleted: r.Counter("xvserve_tuples_deleted_total", "Tuples deleted from view extents by updates."),
		invalidations: r.Counter("xvserve_cache_invalidations_total", "Epoch advances that dropped the plan and subsume caches."),
		groupCommits:  r.Counter("xvserve_group_commits_total", "Committed update groups (one epoch, one fsync each)."),

		compactions:      r.Counter("xvserve_compactions_total", "Online compaction runs that folded at least one chain."),
		compactFolded:    r.Counter("xvserve_compact_segments_folded_total", "Delta segments folded into base segments."),
		compactReclaimed: r.Counter("xvserve_compact_reclaimed_bytes_total", "Bytes of superseded segment files deleted by compaction."),
		compactErrors:    r.Counter("xvserve_compact_errors_total", "Failed online compaction attempts."),

		rewriteSeconds:  r.Histogram("xvserve_rewrite_seconds", "Rewrite phase latency: plan-cache lookup plus search when one ran.", nil),
		costSeconds:     r.Histogram("xvserve_cost_seconds", "Cost estimation latency: picking the cheapest of the enumerated rewritings.", nil),
		snapshotSeconds: r.Histogram("xvserve_snapshot_seconds", "Epoch snapshot latency: freezing summary, caches and extents.", nil),
		execSeconds:     r.Histogram("xvserve_exec_seconds", "Plan execution latency (completed executions only).", nil),
		encodeSeconds:   r.Histogram("xvserve_encode_seconds", "Response encoding latency: sorting, windowing and rendering result rows.", nil),
		maintainSeconds: r.Histogram("xvserve_maintain_seconds", "End-to-end update batch latency: apply, persist and cache swap.", nil),
		applySeconds:    r.Histogram("xvserve_maintain_apply_seconds", "In-memory maintenance latency of update batches (diff + splice).", nil),
		persistSeconds:  r.Histogram("xvserve_maintain_persist_seconds", "Disk persistence latency of update batches (delta and document writes).", nil),
		compactSeconds:  r.Histogram("xvserve_compact_seconds", "Online compaction latency under the update lock.", nil),
		groupSize: r.Histogram("xvserve_commit_group_size", "Requests merged per committed group.",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128}),
		queueWait: r.Histogram("xvserve_commit_queue_wait_seconds", "Time update requests waited in the commit queue before their group sealed.", nil),

		maxChain:   r.Gauge("xvserve_max_delta_chain", "Longest per-view delta chain, in segments."),
		deltaBytes: r.Gauge("xvserve_delta_bytes", "Total size of all delta segments, in bytes."),
	}
}

// observeExecStats folds one completed execution's vectorized-path
// counters into the metric families.
func (m *metricsSet) observeExecStats(xs *algebra.ExecStats) {
	if xs.VecSelectLabel > 0 {
		m.vecKernels.With("select_label").Add(int64(xs.VecSelectLabel))
	}
	if xs.VecSelectValue > 0 {
		m.vecKernels.With("select_value").Add(int64(xs.VecSelectValue))
	}
	if xs.VecJoinPrunes > 0 {
		m.vecKernels.With("join_prune").Add(int64(xs.VecJoinPrunes))
	}
	m.vecBlocksScanned.Add(int64(xs.BlocksScanned))
	m.vecBlocksSkipped.Add(int64(xs.BlocksSkipped))
}

// scannedViews walks an executed plan and calls f once per OpScan leaf with
// the scanned view's name (a view joined against itself is counted twice:
// the counter measures scans, not distinct views).
func scannedViews(p *core.Plan, f func(name string)) {
	if p == nil {
		return
	}
	switch p.Op {
	case core.OpScan:
		if p.View != nil {
			f(p.View.Name)
		}
	case core.OpJoin:
		scannedViews(p.Left, f)
		scannedViews(p.Right, f)
	case core.OpUnion:
		for _, part := range p.Parts {
			scannedViews(part, f)
		}
	default:
		scannedViews(p.Input, f)
	}
}
