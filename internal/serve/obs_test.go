package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"xmlviews/internal/obs"
)

// runWorkload drives a scripted mix over a server: two identical queries
// (a miss then a cache hit), an explain, one update and one bad request,
// so every pipeline phase has observations.
func runWorkload(t *testing.T, ts *httptest.Server) {
	t.Helper()
	q := url.QueryEscape(`site(/item[id](/name[v]))`)
	for i := 0; i < 2; i++ {
		var qr QueryResponse
		if code := getJSON(t, ts.URL+"/query?q="+q, &qr); code != http.StatusOK {
			t.Fatalf("query %d: status %d", i, code)
		}
	}
	var ex ExplainResponse
	if code := getJSON(t, ts.URL+"/query?explain=1&q="+q, &ex); code != http.StatusOK {
		t.Fatalf("explain: status %d", code)
	}
	var up UpdateResponse
	if code := postUpdate(t, ts,
		`{"updates":[{"op":"insert","parent":"1","subtree":"item(name \"dry\" price \"2\")"}]}`, &up); code != http.StatusOK {
		t.Fatalf("update: status %d: %+v", code, up)
	}
	var er errorResponse
	if code := getJSON(t, ts.URL+"/query?q=%28broken", &er); code != http.StatusBadRequest {
		t.Fatalf("bad query: status %d", code)
	}
}

// expositionSamples parses a Prometheus text page line by line, failing
// the test when a sample appears before its family's # HELP and # TYPE
// lines or a line does not scan. It returns every sample keyed by its
// full series text (name plus label set).
func expositionSamples(t *testing.T, body string) map[string]float64 {
	t.Helper()
	helped := map[string]bool{}
	typed := map[string]bool{}
	samples := map[string]float64{}
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, _ := strings.Cut(rest, " ")
			helped[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			fields := strings.Fields(rest)
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown metric type %q", ln+1, fields[1])
			}
			if !helped[fields[0]] {
				t.Fatalf("line %d: TYPE for %s before its HELP", ln+1, fields[0])
			}
			typed[fields[0]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: malformed sample %q", ln+1, line)
		}
		series, valStr := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: sample value %q does not parse: %v", ln+1, valStr, err)
		}
		fam := series
		if i := strings.IndexByte(fam, '{'); i >= 0 {
			fam = fam[:i]
		}
		if !typed[fam] {
			// Histogram samples carry the family name plus a suffix.
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(fam,
				"_bucket"), "_sum"), "_count")
			if !typed[base] {
				t.Fatalf("line %d: sample %s before (or without) its HELP/TYPE header", ln+1, series)
			}
		}
		if _, dup := samples[series]; dup {
			t.Fatalf("line %d: duplicate series %s", ln+1, series)
		}
		samples[series] = v
	}
	return samples
}

func TestServeMetricsExposition(t *testing.T) {
	ts, _ := newUpdatableServer(t, Config{Workers: 2, PlanCacheSize: 8})
	runWorkload(t, ts)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}

	samples := expositionSamples(t, string(body))
	// ParseHistograms re-validates bucket monotonicity and +Inf == _count
	// for every histogram family on the page.
	hists, err := obs.ParseHistograms(body)
	if err != nil {
		t.Fatalf("histograms do not parse: %v", err)
	}

	for _, want := range []struct {
		series string
		min    float64
	}{
		{`xvserve_queries_total`, 3}, // 2 executed + explain; the parse error never reached the pipeline
		{`xvserve_rewrites_run_total`, 1},
		{`xvserve_plan_cache_hits_total`, 2},
		{`xvserve_plan_cache_misses_total`, 1},
		{`xvserve_errors_total`, 1},
		{`xvserve_updates_applied_total`, 1},
		{`xvserve_tuples_added_total`, 2}, // name + price rows
		{`xvserve_http_requests_total{path="/query",code="200"}`, 3},
		{`xvserve_http_requests_total{path="/query",code="400"}`, 1},
		{`xvserve_http_requests_total{path="/update",code="200"}`, 1},
		{`xvserve_view_reads_total{view="vname"}`, 2},
		{`xvserve_epoch`, 1},
		{`go_goroutines`, 1},
	} {
		if got := samples[want.series]; got < want.min {
			t.Errorf("%s = %v, want >= %v", want.series, got, want.min)
		}
	}
	for _, h := range []struct {
		name string
		min  int64
	}{
		{"xvserve_rewrite_seconds", 3}, // miss + hit + explain
		{"xvserve_cost_seconds", 1},
		{"xvserve_snapshot_seconds", 3},
		{"xvserve_exec_seconds", 2},
		{"xvserve_encode_seconds", 2},
		{"xvserve_maintain_seconds", 1},
		{"xvserve_maintain_apply_seconds", 1},
		{"xvserve_maintain_persist_seconds", 1},
	} {
		snap, ok := hists[h.name]
		if !ok {
			t.Errorf("histogram %s missing from exposition", h.name)
			continue
		}
		if snap.Count < h.min {
			t.Errorf("%s count = %d, want >= %d", h.name, snap.Count, h.min)
		}
	}

	// The exposition is deterministic: a second scrape of quiesced state
	// must order families and series identically.
	resp2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	order := func(b []byte) []string {
		var names []string
		for _, line := range strings.Split(string(b), "\n") {
			if strings.HasPrefix(line, "# TYPE ") {
				names = append(names, line)
			}
		}
		return names
	}
	o1, o2 := order(body), order(body2)
	if len(o1) != len(o2) {
		t.Fatalf("family count changed between scrapes: %d vs %d", len(o1), len(o2))
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("family order differs at %d: %q vs %q", i, o1[i], o2[i])
		}
	}
}

// statsFields is the golden /stats schema: the exact JSON field set the
// endpoint has always served. New observability data goes to /metrics;
// this list only changes when the /stats contract deliberately does.
var statsFields = []string{
	"uptime_seconds", "views", "epoch", "degraded",
	"queries", "rewrites_run", "client_disconnects", "errors", "rows_served",
	"plan_cache_hits", "plan_cache_misses", "plan_cache_size", "plan_hit_rate",
	"subsume_cache_entries", "rewrite_ms_total", "exec_ms_total",
	"updates_applied", "tuples_added", "tuples_deleted", "cache_invalidations",
	"maintain_ms_total", "max_delta_chain", "delta_bytes",
	"compactions_run", "delta_segments_folded", "compact_bytes_reclaimed",
	"compact_errors",
}

func TestServeStatsFieldIdentity(t *testing.T) {
	ts, _ := newUpdatableServer(t, Config{Workers: 2, PlanCacheSize: 8})
	runWorkload(t, ts)

	var stats map[string]any
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, f := range statsFields {
		if _, ok := stats[f]; !ok {
			t.Errorf("/stats lost field %q", f)
		}
	}
	for k := range stats {
		found := false
		for _, f := range statsFields {
			if k == f {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("/stats grew unexpected field %q (new data belongs on /metrics)", k)
		}
	}

	// /stats and /metrics are views of the same registry: shared counters
	// must agree exactly.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	samples := expositionSamples(t, string(body))
	for stat, series := range map[string]string{
		"queries":         "xvserve_queries_total",
		"rewrites_run":    "xvserve_rewrites_run_total",
		"updates_applied": "xvserve_updates_applied_total",
		"tuples_added":    "xvserve_tuples_added_total",
	} {
		if stats[stat] != samples[series] { // both float64 after JSON decoding
			t.Errorf("%s: /stats says %v, /metrics says %v", stat, stats[stat], samples[series])
		}
	}

	// The latency totals are fractional milliseconds now: after real work
	// they must be > 0 even when every request was sub-millisecond.
	if v, ok := stats["rewrite_ms_total"].(float64); !ok || v <= 0 {
		t.Errorf("rewrite_ms_total = %v, want > 0 (sub-ms work must not truncate away)", stats["rewrite_ms_total"])
	}
	if v, ok := stats["maintain_ms_total"].(float64); !ok || v <= 0 {
		t.Errorf("maintain_ms_total = %v, want > 0", stats["maintain_ms_total"])
	}
}

func TestServeRequestID(t *testing.T) {
	ts, _ := newUpdatableServer(t, Config{Workers: 2})
	q := url.QueryEscape(`site(/item[id](/name[v]))`)

	// Absent header: the server generates an id and returns it.
	resp, err := http.Get(ts.URL + "/query?q=" + q)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	gen := resp.Header.Get("X-Request-Id")
	if !obs.ValidRequestID(gen) {
		t.Fatalf("generated X-Request-Id %q not valid", gen)
	}

	// Valid client id: echoed on the response and in error bodies.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/query?q=%28broken", nil)
	req.Header.Set("X-Request-Id", "client-id-1")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "client-id-1" {
		t.Fatalf("echoed id = %q, want client-id-1", got)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.RequestID != "client-id-1" {
		t.Fatalf("error body request_id = %q, want client-id-1", er.RequestID)
	}
	if er.Error == "" {
		t.Fatal("error body lost its message")
	}

	// Invalid client id (embedded space): replaced, not echoed.
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "bad id")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got == "bad id" || !obs.ValidRequestID(got) {
		t.Fatalf("invalid client id must be replaced; got %q", got)
	}
}

func TestServeTraceInResponse(t *testing.T) {
	ts, _ := newUpdatableServer(t, Config{Workers: 2})
	q := url.QueryEscape(`site(/item[id](/name[v]))`)

	var plain QueryResponse
	if code := getJSON(t, ts.URL+"/query?q="+q, &plain); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if plain.Trace != nil {
		t.Fatal("trace must be opt-in on /query")
	}

	var traced QueryResponse
	if code := getJSON(t, ts.URL+"/query?trace=1&q="+q, &traced); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if traced.Trace == nil || !obs.ValidRequestID(traced.Trace.RequestID) {
		t.Fatalf("trace=1 response carries no trace: %+v", traced.Trace)
	}
	names := map[string]bool{}
	for _, sp := range traced.Trace.Spans {
		names[sp.Name] = true
		if sp.Dur < 0 || sp.Start < 0 {
			t.Fatalf("span %q has negative timing: %+v", sp.Name, sp)
		}
	}
	for _, want := range []string{"snapshot", "rewrite", "execute", "encode"} {
		if !names[want] {
			t.Errorf("trace lacks %q span; got %v", want, traced.Trace.Spans)
		}
	}

	var ex ExplainResponse
	if code := getJSON(t, ts.URL+"/query?explain=1&q="+q, &ex); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if ex.Trace == nil || len(ex.Trace.Spans) == 0 {
		t.Fatal("explain must always carry the trace")
	}

	var up UpdateResponse
	if code := postUpdate(t, ts,
		`{"updates":[{"op":"insert","parent":"1","subtree":"item(name \"dry\")"}]}`, &up); code != http.StatusOK {
		t.Fatalf("update status %d", code)
	}
	// The update's pipeline spans land in the debug ring.
	var recs []obs.TraceRecord
	if code := getJSON(t, ts.URL+"/debug/traces", &recs); code != http.StatusOK {
		t.Fatalf("debug/traces status %d", code)
	}
	var updRec *obs.TraceRecord
	for i := range recs {
		if recs[i].Path == "/update" {
			updRec = &recs[i]
			break
		}
	}
	if updRec == nil {
		t.Fatalf("no /update record in ring: %+v", recs)
	}
	spanNames := map[string]bool{}
	for _, sp := range updRec.Spans {
		spanNames[sp.Name] = true
	}
	for _, want := range []string{"apply", "persist", "catalog", "maintain"} {
		if !spanNames[want] {
			t.Errorf("update trace lacks %q span; got %+v", want, updRec.Spans)
		}
	}
}

// syncBuffer makes a bytes.Buffer safe for the handler goroutines that
// write log lines while the test reads them.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestServeSlowQueryLog(t *testing.T) {
	buf := &syncBuffer{}
	ts, _ := newUpdatableServer(t, Config{
		Workers:   2,
		SlowQuery: time.Nanosecond, // everything is slow
		Logger:    slog.New(slog.NewJSONHandler(buf, nil)),
	})
	q := url.QueryEscape(`site(/item[id](/name[v]))`)
	var qr QueryResponse
	if code := getJSON(t, ts.URL+"/query?q="+q, &qr); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("slow query must produce exactly one log line, got %d:\n%s", len(lines), buf.String())
	}
	var entry map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, lines[0])
	}
	id, _ := entry["request_id"].(string)
	if !obs.ValidRequestID(id) {
		t.Fatalf("log line carries no request id: %v", entry)
	}
	if entry["path"] != "/query" || entry["msg"] != "slow request" {
		t.Fatalf("unexpected log entry: %v", entry)
	}
	if entry["query"] != `site(/item[id](/name[v]))` {
		t.Fatalf("log line lost the query text: %v", entry)
	}
	if _, ok := entry["plan"]; !ok {
		t.Fatalf("log line lost the plan: %v", entry)
	}
	if _, ok := entry["spans"].([]any); !ok {
		t.Fatalf("log line lost the span timings: %v", entry)
	}

	// The same request id must be findable in /debug/traces.
	var recs []obs.TraceRecord
	if code := getJSON(t, ts.URL+"/debug/traces", &recs); code != http.StatusOK {
		t.Fatalf("debug/traces status %d", code)
	}
	found := false
	for _, rec := range recs {
		if rec.ID == id {
			found = true
			if rec.Path != "/query" || rec.Status != http.StatusOK {
				t.Fatalf("ring record mismatch: %+v", rec)
			}
		}
	}
	if !found {
		t.Fatalf("logged request id %s not in /debug/traces: %+v", id, recs)
	}
}

func TestDebugHandlerRoutes(t *testing.T) {
	_, storeDir := newUpdatableServer(t, Config{Workers: 2})
	srv, err := New(Config{Dir: storeDir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	dts := httptest.NewServer(srv.DebugHandler())
	defer dts.Close()

	for path, want := range map[string]string{
		"/debug/pprof/":       "text/html",
		"/debug/pprof/symbol": "text/plain",
		"/metrics":            "text/plain",
		"/debug/traces":       "application/json",
	} {
		resp, err := http.Get(dts.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d: %s", path, resp.StatusCode, body)
			continue
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, want) {
			t.Errorf("%s: content type %q, want prefix %q", path, ct, want)
		}
	}
}

// TestServeMetricsConcurrent hammers /metrics while queries and updates
// run, so the race detector sees scrapes concurrent with observations.
func TestServeMetricsConcurrent(t *testing.T) {
	ts, _ := newUpdatableServer(t, Config{Workers: 2, SlowQuery: time.Nanosecond,
		Logger: slog.New(slog.NewJSONHandler(io.Discard, nil))})
	q := url.QueryEscape(`site(/item[id](/name[v]))`)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				resp, err := http.Get(ts.URL + "/query?trace=1&q=" + q)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 5; j++ {
			body := fmt.Sprintf(`{"updates":[{"op":"insert","parent":"1","subtree":"item(name \"n%d\")"}]}`, j)
			resp, err := http.Post(ts.URL+"/update", "application/json", strings.NewReader(body))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				for _, p := range []string{"/metrics", "/stats", "/debug/traces"} {
					resp, err := http.Get(ts.URL + p)
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
			}
		}()
	}
	wg.Wait()
}
