package serve

import (
	"container/list"
	"sync"

	"xmlviews/internal/core"
)

// planCache is a bounded LRU of rewriting results keyed by the query's
// canonical pattern text. Negatives are cached too — both "no equivalent
// rewriting exists" (nil plan) and "unsatisfiable under the summary" — so
// hopeless queries don't re-run the search.
type planCache struct {
	mu  sync.Mutex
	m   map[string]*list.Element
	lru list.List // front = most recently used
	cap int
}

// cachedPlan is one rewriting verdict: a plan, or one of the two negative
// outcomes.
type cachedPlan struct {
	plan          *core.Plan
	unsatisfiable bool
}

type planEntry struct {
	key string
	val cachedPlan
}

// defaultPlanCacheCap bounds the plan cache when the caller passes <= 0.
const defaultPlanCacheCap = 256

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = defaultPlanCacheCap
	}
	return &planCache{m: map[string]*list.Element{}, cap: capacity}
}

// get returns the cached verdict for the key and whether an entry exists.
func (c *planCache) get(key string) (cachedPlan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return cachedPlan{}, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*planEntry).val, true
}

func (c *planCache) put(key string, v cachedPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*planEntry).val = v
		c.lru.MoveToFront(el)
		return
	}
	c.m[key] = c.lru.PushFront(&planEntry{key: key, val: v})
	for len(c.m) > c.cap {
		last := c.lru.Back()
		c.lru.Remove(last)
		delete(c.m, last.Value.(*planEntry).key)
	}
}

func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
