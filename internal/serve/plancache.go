package serve

import (
	"container/list"
	"context"
	"errors"
	"sync"

	"xmlviews/internal/core"
)

// errPlanPanic is what flight waiters observe when the leader's
// computation panicked before producing a verdict.
var errPlanPanic = errors.New("serve: plan computation panicked")

// planCache is a bounded LRU of rewriting results keyed by the query's
// canonical pattern text. Negatives are cached too — both "no equivalent
// rewriting exists" (nil plan) and "unsatisfiable under the summary" — so
// hopeless queries don't re-run the search.
//
// The cache also deduplicates concurrent misses: compute runs the search
// once per key while every other request for the same key waits for that
// leader's verdict (per-key singleflight), so a thundering herd on a cold
// cache costs one rewrite, not one per request.
type planCache struct {
	mu      sync.Mutex
	m       map[string]*list.Element
	lru     list.List // front = most recently used
	cap     int
	flights map[string]*flightCall
}

// cachedPlan is one rewriting verdict: the chosen plan with its estimated
// cost and the number of alternatives the search produced, or one of the
// two negative outcomes.
type cachedPlan struct {
	plan          *core.Plan
	unsatisfiable bool
	// cost is the chosen plan's estimated cost (-1 when no estimate was
	// possible); alternatives is how many rewritings ChooseBest considered.
	cost         float64
	alternatives int
	// execPath records which execution path the plan's most recent run
	// took ("vectorized" or "row"); empty until the plan first executes.
	execPath string
}

type planEntry struct {
	key string
	val cachedPlan
}

// flightCall is one in-progress computation; done is closed when val/err
// are set.
type flightCall struct {
	done chan struct{}
	val  cachedPlan
	err  error
}

// defaultPlanCacheCap bounds the plan cache when the caller passes <= 0.
const defaultPlanCacheCap = 256

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = defaultPlanCacheCap
	}
	return &planCache{m: map[string]*list.Element{}, cap: capacity, flights: map[string]*flightCall{}}
}

// get returns the cached verdict for the key and whether an entry exists.
// The entry's plan tree is shared with every other hit on the key:
// callers must not mutate it.
//
//xvlint:sharedreturn
func (c *planCache) get(key string) (cachedPlan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return cachedPlan{}, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*planEntry).val, true
}

// putLocked inserts a verdict; the only writer is compute's flight
// teardown (callers hold mu), so every cache fill goes through the
// singleflight path.
func (c *planCache) putLocked(key string, v cachedPlan) {
	if el, ok := c.m[key]; ok {
		el.Value.(*planEntry).val = v
		c.lru.MoveToFront(el)
		return
	}
	c.m[key] = c.lru.PushFront(&planEntry{key: key, val: v})
	for len(c.m) > c.cap {
		last := c.lru.Back()
		c.lru.Remove(last)
		delete(c.m, last.Value.(*planEntry).key)
	}
}

// compute returns the verdict for the key, running fn at most once across
// concurrent callers: the first caller becomes the leader and computes;
// the rest wait on the leader's result or their own context. A successful
// verdict is stored in the LRU before waiters wake. leader reports whether
// this caller ran fn itself — when a leader's context is cancelled
// mid-search its waiters receive the cancellation error and may retry
// (the dead flight is removed first, so a retry elects a new leader).
func (c *planCache) compute(ctx context.Context, key string, fn func() (cachedPlan, error)) (val cachedPlan, leader bool, err error) {
	c.mu.Lock()
	if el, ok := c.m[key]; ok {
		// Filled while this request was parked on the mutex.
		c.lru.MoveToFront(el)
		v := el.Value.(*planEntry).val
		c.mu.Unlock()
		return v, false, nil
	}
	if fc, ok := c.flights[key]; ok {
		c.mu.Unlock()
		if ctx == nil {
			<-fc.done
			return fc.val, false, fc.err
		}
		select {
		case <-fc.done:
			return fc.val, false, fc.err
		case <-ctx.Done():
			return cachedPlan{}, false, ctx.Err()
		}
	}
	fc := &flightCall{done: make(chan struct{})}
	c.flights[key] = fc
	c.mu.Unlock()

	// The flight must be torn down even if fn panics (net/http recovers
	// handler panics and keeps the server alive): a leaked entry would
	// wedge every future request for this key on a done channel that
	// never closes.
	defer func() {
		c.mu.Lock()
		delete(c.flights, key)
		if fc.err == nil {
			c.putLocked(key, fc.val)
		}
		c.mu.Unlock()
		close(fc.done)
	}()
	// Pre-set the error so waiters observe a failure, not an empty
	// verdict, if fn panics before assigning.
	fc.err = errPlanPanic
	fc.val, fc.err = fn()
	return fc.val, true, fc.err
}

// recordExecPath notes which execution path the cached plan's latest run
// took, so explain answers and operators can see whether a plan actually
// runs vectorized. A key evicted (or never cached) is a no-op.
func (c *planCache) recordExecPath(key, path string) {
	c.mu.Lock()
	if el, ok := c.m[key]; ok {
		el.Value.(*planEntry).val.execPath = path
	}
	c.mu.Unlock()
}

func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
