package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"

	"xmlviews/internal/core"
	"xmlviews/internal/pattern"
	"xmlviews/internal/view"
	"xmlviews/internal/xmltree"
)

// newTestServer builds a store directory from a small document and serves
// it. Views cover the query both exactly and via an ID join.
func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	dir := t.TempDir()
	doc := xmltree.MustParseParen(
		`site(item(name "pen" price "3" mail "m1") item(name "ink" price "7") item(name "dry" price "2"))`)
	views := []*core.View{
		{Name: "vname", Pattern: pattern.MustParse(`site(/item[id](/name[v]))`), DerivableParentIDs: true},
		{Name: "vprice", Pattern: pattern.MustParse(`site(/item[id](/price[v]))`), DerivableParentIDs: true},
	}
	if _, err := view.BuildStore(dir, doc, views); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Dir: dir, Workers: 2, PlanCacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("bad JSON %q: %v", body, err)
	}
	return resp.StatusCode
}

func TestServeQueryAndPlanCache(t *testing.T) {
	ts := newTestServer(t)
	q := url.QueryEscape(`site(/item[id](/name[v] /price[v]))`)

	var first QueryResponse
	if code := getJSON(t, ts.URL+"/query?q="+q, &first); code != http.StatusOK {
		t.Fatalf("status %d: %+v", code, first)
	}
	if first.PlanCached {
		t.Fatal("first query cannot be a plan-cache hit")
	}
	if len(first.Rows) != 3 {
		t.Fatalf("rows = %d, want 3: %+v", len(first.Rows), first.Rows)
	}

	var second QueryResponse
	if code := getJSON(t, ts.URL+"/query?q="+q, &second); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !second.PlanCached {
		t.Fatal("repeated query must hit the plan cache")
	}
	if second.Plan != first.Plan || len(second.Rows) != len(first.Rows) {
		t.Fatal("cached plan answered differently")
	}

	var st Stats
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if st.PlanCacheHits < 1 || st.PlanCacheMisses < 1 || st.Queries < 2 {
		t.Fatalf("stats not counting: %+v", st)
	}
	if st.Views != 2 || st.PlanCacheSize != 1 {
		t.Fatalf("stats wrong: %+v", st)
	}
}

// TestServeExecPath pins the execution-path reporting: every /query answer
// names the path it ran ("vectorized" or "row"), and once a plan has
// executed, explain reports that plan's most recent path.
func TestServeExecPath(t *testing.T) {
	ts := newTestServer(t)
	q := url.QueryEscape(`site(/item[id](/name[v]))`)

	var ex ExplainResponse
	if code := getJSON(t, ts.URL+"/query?explain=1&q="+q, &ex); code != http.StatusOK {
		t.Fatalf("explain status %d", code)
	}
	if ex.LastExecPath != "" {
		t.Fatalf("unexecuted plan reports last_exec_path %q", ex.LastExecPath)
	}

	var resp QueryResponse
	if code := getJSON(t, ts.URL+"/query?q="+q, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.ExecPath != "vectorized" && resp.ExecPath != "row" {
		t.Fatalf("exec_path = %q, want vectorized or row", resp.ExecPath)
	}

	if code := getJSON(t, ts.URL+"/query?explain=1&q="+q, &ex); code != http.StatusOK {
		t.Fatalf("explain status %d", code)
	}
	if ex.LastExecPath != resp.ExecPath {
		t.Fatalf("last_exec_path = %q, want %q", ex.LastExecPath, resp.ExecPath)
	}
}

// TestServeLimitWindow pins the limit parameter's semantics, in
// particular that an explicit limit=0 is a count-only probe: the row
// window stays empty while TotalRows still reports the full cardinality.
func TestServeLimitWindow(t *testing.T) {
	ts := newTestServer(t)
	q := url.QueryEscape(`site(/item[id](/name[v]))`)
	cases := []struct {
		name     string
		params   string
		wantRows int
	}{
		{"absent limit serves everything", "", 3},
		{"explicit limit=0 is a count-only probe", "&limit=0", 0},
		{"small limit windows the result", "&limit=2", 2},
		{"limit past the cap clamps, not errors", "&limit=999999", 3},
		{"offset pages within the window", "&limit=2&offset=2", 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp QueryResponse
			if code := getJSON(t, ts.URL+"/query?q="+q+tc.params, &resp); code != http.StatusOK {
				t.Fatalf("status %d: %+v", code, resp)
			}
			if len(resp.Rows) != tc.wantRows {
				t.Fatalf("rows = %d, want %d: %+v", len(resp.Rows), tc.wantRows, resp.Rows)
			}
			if resp.TotalRows != 3 {
				t.Fatalf("total_rows = %d, want 3", resp.TotalRows)
			}
		})
	}
}

func TestServeXQuery(t *testing.T) {
	ts := newTestServer(t)
	xq := url.QueryEscape(`for $x in doc("d.xml")/item return <r> {$x/name/text()} </r>`)
	var resp QueryResponse
	if code := getJSON(t, ts.URL+"/query?xq="+xq, &resp); code != http.StatusOK {
		t.Fatalf("status %d: %+v", code, resp)
	}
	if len(resp.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (%+v)", len(resp.Rows), resp)
	}
}

func TestServeErrors(t *testing.T) {
	ts := newTestServer(t)
	var e errorResponse
	if code := getJSON(t, ts.URL+"/query", &e); code != http.StatusBadRequest {
		t.Fatalf("missing query: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/query?q=%28broken", &e); code != http.StatusBadRequest {
		t.Fatalf("parse error: status %d", code)
	}
	// A satisfiable query no stored view covers: clean 422, and the
	// negative result is cached.
	q := url.QueryEscape(`site(/item[id](/mail[v]))`)
	for i := 0; i < 2; i++ {
		if code := getJSON(t, ts.URL+"/query?q="+q, &e); code != http.StatusUnprocessableEntity {
			t.Fatalf("unanswerable query: status %d (%+v)", code, e)
		}
	}
	// A query unsatisfiable under the summary: also a client error.
	q = url.QueryEscape(`site(/nosuchlabel[id])`)
	if code := getJSON(t, ts.URL+"/query?q="+q, &e); code != http.StatusUnprocessableEntity {
		t.Fatalf("unsatisfiable query: status %d (%+v)", code, e)
	}
	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.PlanCacheHits < 1 {
		t.Fatalf("negative rewriting not cached: %+v", st)
	}
}

func TestServeHealthz(t *testing.T) {
	ts := newTestServer(t)
	var h map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if h["status"] != "ok" {
		t.Fatalf("healthz body: %v", h)
	}
}

// TestServeConcurrentQueries exercises the whole daemon path from many
// goroutines (run with -race): mixed queries share the plan cache, the
// subsume cache and the view store.
func TestServeConcurrentQueries(t *testing.T) {
	ts := newTestServer(t)
	queries := []string{
		`site(/item[id](/name[v]))`,
		`site(/item[id](/price[v]))`,
		`site(/item[id](/name[v] /price[v]))`,
	}
	wantRows := 3
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				q := queries[(g+i)%len(queries)]
				var resp QueryResponse
				r, err := http.Get(ts.URL + "/query?q=" + url.QueryEscape(q))
				if err != nil {
					errs <- err
					return
				}
				body, _ := io.ReadAll(r.Body)
				r.Body.Close()
				if r.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d for %s: %s", r.StatusCode, q, body)
					return
				}
				if err := json.Unmarshal(body, &resp); err != nil {
					errs <- err
					return
				}
				if len(resp.Rows) != wantRows {
					errs <- fmt.Errorf("%s: got %d rows, want %d", q, len(resp.Rows), wantRows)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	// First encounters of each query may miss concurrently (up to one per
	// goroutine per query shape); everything else must hit the plan cache.
	minHits := int64(48 - 8*len(queries))
	if st.Queries != 48 || st.PlanCacheHits < minHits || st.PlanCacheHits+st.PlanCacheMisses != 48 {
		t.Fatalf("stats after concurrent run: %+v", st)
	}
	if st.PlanCacheSize != len(queries) {
		t.Fatalf("plan cache size = %d, want %d", st.PlanCacheSize, len(queries))
	}
}
