// Package serve implements the xvserve query daemon: an HTTP server that
// answers tree-pattern (and XQuery-translated) queries from a persistent
// view store built by xvstore, without ever touching the source document.
//
// A server loads the store directory's catalog, parses the recorded
// summary and view definitions, memory-loads the extents, and then for
// each query runs the view-based rewriting (core.Rewrite) — memoized by a
// bounded LRU plan cache keyed by the query's canonical pattern text and
// sharing one summary-implication cache across all queries — and executes
// the chosen plan with the parallel algebra executor.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"xmlviews/internal/algebra"
	"xmlviews/internal/core"
	"xmlviews/internal/pattern"
	"xmlviews/internal/store"
	"xmlviews/internal/summary"
	"xmlviews/internal/view"
	"xmlviews/internal/xquery"
)

// Config tunes a Server.
type Config struct {
	// Dir is the store directory (catalog.json + segments) to serve.
	Dir string
	// Workers is handed to both the rewriting search and the algebra
	// executor; <= 0 means use all CPUs.
	Workers int
	// PlanCacheSize bounds the LRU plan cache (<= 0: default 256).
	PlanCacheSize int
}

// Server answers queries over one store directory. It is safe for
// concurrent use.
type Server struct {
	cfg     Config
	cat     *store.Catalog
	sum     *summary.Summary
	views   []*core.View
	st      *view.Store
	subsume *core.SubsumeCache
	plans   *planCache
	started time.Time

	queries      atomic.Int64
	errors       atomic.Int64
	planHits     atomic.Int64
	planMisses   atomic.Int64
	rowsServed   atomic.Int64
	rewriteNanos atomic.Int64
	execNanos    atomic.Int64
}

// New opens the store directory and builds a ready-to-serve Server.
func New(cfg Config) (*Server, error) {
	cat, err := store.OpenCatalog(cfg.Dir)
	if err != nil {
		return nil, err
	}
	sum, err := summary.Parse(cat.Summary)
	if err != nil {
		return nil, fmt.Errorf("serve: catalog summary does not parse: %w", err)
	}
	views := make([]*core.View, 0, len(cat.Views))
	for _, e := range cat.Views {
		p, err := pattern.Parse(e.Pattern)
		if err != nil {
			return nil, fmt.Errorf("serve: catalog view %q pattern does not parse: %w", e.Name, err)
		}
		views = append(views, &core.View{Name: e.Name, Pattern: p, DerivableParentIDs: true})
	}
	st, err := view.OpenStoreWithCatalog(cfg.Dir, cat, views)
	if err != nil {
		return nil, err
	}
	return &Server{
		cfg:     cfg,
		cat:     cat,
		sum:     sum,
		views:   views,
		st:      st,
		subsume: core.NewSubsumeCache(0),
		plans:   newPlanCache(cfg.PlanCacheSize),
		started: time.Now(),
	}, nil
}

// Views returns the number of views served.
func (s *Server) Views() int { return len(s.views) }

// Handler returns the server's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// QueryResponse is the JSON answer to /query.
type QueryResponse struct {
	// Query is the canonical pattern text the request resolved to.
	Query string `json:"query"`
	// Plan is the executed rewriting plan.
	Plan string `json:"plan"`
	// PlanCached reports a plan-cache hit (the rewriting search was
	// skipped).
	PlanCached bool `json:"plan_cached"`
	// Columns and Rows are the result: one rendered string per value.
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	// RewriteMicros and ExecMicros are this request's latencies; the
	// rewrite time is ~0 on plan-cache hits.
	RewriteMicros int64 `json:"rewrite_us"`
	ExecMicros    int64 `json:"exec_us"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	if err := r.ParseForm(); err != nil {
		s.fail(w, http.StatusBadRequest, "bad form: %v", err)
		return
	}
	qSrc, xqSrc := r.Form.Get("q"), r.Form.Get("xq")
	var q *pattern.Pattern
	var err error
	switch {
	case qSrc != "" && xqSrc != "":
		s.fail(w, http.StatusBadRequest, "pass either q (tree pattern) or xq (XQuery), not both")
		return
	case qSrc != "":
		q, err = pattern.Parse(qSrc)
	case xqSrc != "":
		q, err = xquery.Translate(xqSrc, s.sum.Node(summary.RootID).Label)
	default:
		s.fail(w, http.StatusBadRequest, "missing query: pass q (tree pattern) or xq (XQuery)")
		return
	}
	if err != nil {
		s.fail(w, http.StatusBadRequest, "query does not parse: %v", err)
		return
	}

	s.queries.Add(1)
	key := q.String()
	rewriteStart := time.Now()
	verdict, hit := s.plans.get(key)
	if hit {
		s.planHits.Add(1)
	} else {
		s.planMisses.Add(1)
		verdict.plan, err = s.rewrite(q)
		if errors.Is(err, core.ErrUnsatisfiable) {
			verdict.unsatisfiable = true
		} else if err != nil {
			s.fail(w, http.StatusInternalServerError, "rewrite: %v", err)
			return
		}
		s.plans.put(key, verdict)
	}
	rewriteDur := time.Since(rewriteStart)
	s.rewriteNanos.Add(rewriteDur.Nanoseconds())
	if verdict.unsatisfiable {
		s.fail(w, http.StatusUnprocessableEntity, "%v", core.ErrUnsatisfiable)
		return
	}
	plan := verdict.plan
	if plan == nil {
		s.fail(w, http.StatusUnprocessableEntity, "no equivalent rewriting of %s over the stored views", key)
		return
	}

	execStart := time.Now()
	out, err := algebra.ExecuteWith(plan, s.st, algebra.Options{Workers: s.workers()})
	execDur := time.Since(execStart)
	s.execNanos.Add(execDur.Nanoseconds())
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "execute: %v", err)
		return
	}
	rel := out.Rel.Sorted()
	rows := make([][]string, 0, rel.Len())
	for _, row := range rel.Rows {
		rendered := make([]string, len(row))
		for i, v := range row {
			rendered[i] = v.Render()
		}
		rows = append(rows, rendered)
	}
	s.rowsServed.Add(int64(len(rows)))
	writeJSON(w, http.StatusOK, &QueryResponse{
		Query:         key,
		Plan:          plan.String(),
		PlanCached:    hit,
		Columns:       rel.Cols,
		Rows:          rows,
		RewriteMicros: rewriteDur.Microseconds(),
		ExecMicros:    execDur.Microseconds(),
	})
}

// rewrite runs the search and returns the first equivalent plan, or nil
// when none exists.
func (s *Server) rewrite(q *pattern.Pattern) (*core.Plan, error) {
	opts := core.DefaultRewriteOptions()
	opts.Workers = s.workers()
	opts.Subsume = s.subsume
	opts.FirstOnly = true
	res, err := core.Rewrite(q, s.views, s.sum, opts)
	if err != nil {
		return nil, err
	}
	if len(res.Rewritings) == 0 {
		return nil, nil
	}
	return res.Rewritings[0], nil
}

func (s *Server) workers() int {
	if s.cfg.Workers <= 0 {
		return -1 // resolved to GOMAXPROCS by both core and algebra
	}
	return s.cfg.Workers
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"views":  len(s.views),
	})
}

// Stats is the JSON body of /stats.
type Stats struct {
	UptimeSeconds   float64 `json:"uptime_seconds"`
	Views           int     `json:"views"`
	Queries         int64   `json:"queries"`
	Errors          int64   `json:"errors"`
	RowsServed      int64   `json:"rows_served"`
	PlanCacheHits   int64   `json:"plan_cache_hits"`
	PlanCacheMisses int64   `json:"plan_cache_misses"`
	PlanCacheSize   int     `json:"plan_cache_size"`
	PlanHitRate     float64 `json:"plan_hit_rate"`
	SubsumeEntries  int     `json:"subsume_cache_entries"`
	RewriteMillis   int64   `json:"rewrite_ms_total"`
	ExecMillis      int64   `json:"exec_ms_total"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.planHits.Load(), s.planMisses.Load()
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	writeJSON(w, http.StatusOK, &Stats{
		UptimeSeconds:   time.Since(s.started).Seconds(),
		Views:           len(s.views),
		Queries:         s.queries.Load(),
		Errors:          s.errors.Load(),
		RowsServed:      s.rowsServed.Load(),
		PlanCacheHits:   hits,
		PlanCacheMisses: misses,
		PlanCacheSize:   s.plans.len(),
		PlanHitRate:     rate,
		SubsumeEntries:  s.subsume.Len(),
		RewriteMillis:   s.rewriteNanos.Load() / 1e6,
		ExecMillis:      s.execNanos.Load() / 1e6,
	})
}

func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.errors.Add(1)
	writeJSON(w, code, &errorResponse{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(body)
}
