// Package serve implements the xvserve query daemon: an HTTP server that
// answers tree-pattern (and XQuery-translated) queries from a persistent
// view store built by xvstore, without ever touching the source document.
//
// A server loads the store directory's catalog, parses the recorded
// summary and view definitions, memory-loads the extents, and then for
// each query runs the view-based rewriting (core.Rewrite) — memoized by a
// bounded LRU plan cache keyed by the query's canonical pattern text and
// sharing one summary-implication cache across all queries — and executes
// the chosen plan with the parallel algebra executor.
//
// The daemon also accepts typed document updates on POST /update. A batch
// is maintained through the incremental engine (internal/maintain),
// persisted as append-only delta segments, and bumps the store epoch; the
// plan and summary-implication caches are dropped with the old epoch, so a
// plan (or a cached negative verdict) computed against a stale summary can
// never answer a later query.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"xmlviews/internal/algebra"
	"xmlviews/internal/core"
	"xmlviews/internal/maintain"
	"xmlviews/internal/pattern"
	"xmlviews/internal/store"
	"xmlviews/internal/summary"
	"xmlviews/internal/view"
	"xmlviews/internal/xquery"
)

// Config tunes a Server.
type Config struct {
	// Dir is the store directory (catalog.json + segments) to serve.
	Dir string
	// Workers is handed to both the rewriting search and the algebra
	// executor; <= 0 means use all CPUs.
	Workers int
	// PlanCacheSize bounds the LRU plan cache (<= 0: default 256).
	PlanCacheSize int
	// ReadOnly disables POST /update.
	ReadOnly bool
	// MaxUpdateBytes bounds an update request body (<= 0: default 8 MiB).
	MaxUpdateBytes int64
}

// Server answers queries over one store directory. It is safe for
// concurrent use; updates serialize among themselves and against the
// epoch-keyed caches.
type Server struct {
	cfg     Config
	cat     *store.Catalog
	views   []*core.View
	st      *view.Store
	started time.Time

	// mu guards the epoch-scoped state: the summary (updates can change
	// it) and the plan/subsume caches, which are swapped wholesale when
	// the epoch advances. An update holds the write lock across the whole
	// apply-and-swap, so a query's snapshot (caches + frozen extents) is
	// always internally consistent.
	mu      sync.RWMutex
	sum     *summary.Summary
	subsume *core.SubsumeCache
	plans   *planCache

	// updMu serializes update batches end-to-end (memory apply + disk
	// persist), so delta chains append in epoch order. degraded is set
	// when a batch was applied in memory but could not be persisted;
	// further updates are refused so the directory's delta chains never
	// skip an epoch.
	updMu    sync.Mutex
	degraded atomic.Bool

	queries       atomic.Int64
	errors        atomic.Int64
	planHits      atomic.Int64
	planMisses    atomic.Int64
	rowsServed    atomic.Int64
	rewriteNanos  atomic.Int64
	execNanos     atomic.Int64
	updates       atomic.Int64
	tuplesAdded   atomic.Int64
	tuplesDeleted atomic.Int64
	invalidations atomic.Int64
	maintainNanos atomic.Int64
}

// New opens the store directory and builds a ready-to-serve Server.
func New(cfg Config) (*Server, error) {
	cat, err := store.OpenCatalog(cfg.Dir)
	if err != nil {
		return nil, err
	}
	sum, err := summary.Parse(cat.Summary)
	if err != nil {
		return nil, fmt.Errorf("serve: catalog summary does not parse: %w", err)
	}
	views, err := view.ViewsFromCatalog(cat)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	st, err := view.OpenStoreWithCatalog(cfg.Dir, cat, views)
	if err != nil {
		return nil, err
	}
	return &Server{
		cfg:     cfg,
		cat:     cat,
		sum:     sum,
		views:   views,
		st:      st,
		subsume: core.NewSubsumeCache(0),
		plans:   newPlanCache(cfg.PlanCacheSize),
		started: time.Now(),
	}, nil
}

// Views returns the number of views served.
func (s *Server) Views() int { return len(s.views) }

// Handler returns the server's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/update", s.handleUpdate)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// epochState is a consistent snapshot of one epoch: the summary, the
// caches keyed to it, and the store's extents frozen at it.
type epochState struct {
	sum     *summary.Summary
	subsume *core.SubsumeCache
	plans   *planCache
	st      *view.Store
	epoch   int64
}

func (s *Server) snapshot() epochState {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := s.st.Snapshot()
	return epochState{sum: s.sum, subsume: s.subsume, plans: s.plans, st: st, epoch: st.Epoch()}
}

// QueryResponse is the JSON answer to /query.
type QueryResponse struct {
	// Query is the canonical pattern text the request resolved to.
	Query string `json:"query"`
	// Plan is the executed rewriting plan.
	Plan string `json:"plan"`
	// PlanCached reports a plan-cache hit (the rewriting search was
	// skipped).
	PlanCached bool `json:"plan_cached"`
	// Epoch is the store epoch the answer reflects.
	Epoch int64 `json:"epoch"`
	// Columns and Rows are the result: one rendered string per value.
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	// RewriteMicros and ExecMicros are this request's latencies; the
	// rewrite time is ~0 on plan-cache hits.
	RewriteMicros int64 `json:"rewrite_us"`
	ExecMicros    int64 `json:"exec_us"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	if err := r.ParseForm(); err != nil {
		s.fail(w, http.StatusBadRequest, "bad form: %v", err)
		return
	}
	es := s.snapshot()
	qSrc, xqSrc := r.Form.Get("q"), r.Form.Get("xq")
	var q *pattern.Pattern
	var err error
	switch {
	case qSrc != "" && xqSrc != "":
		s.fail(w, http.StatusBadRequest, "pass either q (tree pattern) or xq (XQuery), not both")
		return
	case qSrc != "":
		q, err = pattern.Parse(qSrc)
	case xqSrc != "":
		q, err = xquery.Translate(xqSrc, es.sum.Node(summary.RootID).Label)
	default:
		s.fail(w, http.StatusBadRequest, "missing query: pass q (tree pattern) or xq (XQuery)")
		return
	}
	if err != nil {
		s.fail(w, http.StatusBadRequest, "query does not parse: %v", err)
		return
	}

	s.queries.Add(1)
	key := q.String()
	rewriteStart := time.Now()
	verdict, hit := es.plans.get(key)
	if hit {
		s.planHits.Add(1)
	} else {
		s.planMisses.Add(1)
		verdict.plan, err = s.rewrite(q, es)
		if errors.Is(err, core.ErrUnsatisfiable) {
			verdict.unsatisfiable = true
		} else if err != nil {
			s.fail(w, http.StatusInternalServerError, "rewrite: %v", err)
			return
		}
		es.plans.put(key, verdict)
	}
	rewriteDur := time.Since(rewriteStart)
	s.rewriteNanos.Add(rewriteDur.Nanoseconds())
	if verdict.unsatisfiable {
		s.fail(w, http.StatusUnprocessableEntity, "%v", core.ErrUnsatisfiable)
		return
	}
	plan := verdict.plan
	if plan == nil {
		s.fail(w, http.StatusUnprocessableEntity, "no equivalent rewriting of %s over the stored views", key)
		return
	}

	execStart := time.Now()
	out, err := algebra.ExecuteWith(plan, es.st, algebra.Options{Workers: s.workers()})
	execDur := time.Since(execStart)
	s.execNanos.Add(execDur.Nanoseconds())
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "execute: %v", err)
		return
	}
	rel := out.Rel.Sorted()
	rows := make([][]string, 0, rel.Len())
	for _, row := range rel.Rows {
		rendered := make([]string, len(row))
		for i, v := range row {
			rendered[i] = v.Render()
		}
		rows = append(rows, rendered)
	}
	s.rowsServed.Add(int64(len(rows)))
	writeJSON(w, http.StatusOK, &QueryResponse{
		Query:         key,
		Plan:          plan.String(),
		PlanCached:    hit,
		Epoch:         es.epoch,
		Columns:       rel.Cols,
		Rows:          rows,
		RewriteMicros: rewriteDur.Microseconds(),
		ExecMicros:    execDur.Microseconds(),
	})
}

// UpdateResponse is the JSON answer to /update.
type UpdateResponse struct {
	// Epoch is the store epoch after the batch.
	Epoch int64 `json:"epoch"`
	// Applied is the number of updates in the batch.
	Applied int `json:"applied"`
	// Changed lists per-view delta sizes; Skipped counts views the
	// relevance mapping proved unaffected.
	Changed []view.ChangedView `json:"changed"`
	Skipped int                `json:"skipped"`
	// MaintainMicros is the end-to-end maintenance latency (apply +
	// persist).
	MaintainMicros int64 `json:"maintain_us"`
}

const defaultMaxUpdateBytes = 8 << 20

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.cfg.ReadOnly {
		s.fail(w, http.StatusForbidden, "server is read-only")
		return
	}
	limit := s.cfg.MaxUpdateBytes
	if limit <= 0 {
		limit = defaultMaxUpdateBytes
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if int64(len(body)) > limit {
		s.fail(w, http.StatusRequestEntityTooLarge, "update batch exceeds %d bytes", limit)
		return
	}
	updates, err := maintain.ParseUpdates(body)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(updates) == 0 {
		s.fail(w, http.StatusBadRequest, "empty update batch")
		return
	}

	if s.degraded.Load() {
		s.fail(w, http.StatusServiceUnavailable, "updates disabled: an earlier batch was applied in memory but not persisted; restart the server against the store directory")
		return
	}

	start := time.Now()
	s.updMu.Lock()
	defer s.updMu.Unlock()
	if s.st.Document() == nil {
		if err := s.loadDocument(); err != nil {
			s.fail(w, http.StatusConflict, "store is not updatable: %v", err)
			return
		}
	}
	// Hold the epoch lock across apply + cache swap, so no query can
	// observe post-batch extents with pre-batch caches (or vice versa).
	s.mu.Lock()
	res, err := view.ApplyAndPersist(s.cfg.Dir, s.cat, s.st, updates)
	var perr *view.PersistError
	if err != nil && !errors.As(err, &perr) {
		// The batch did not apply; memory and directory are unchanged.
		s.mu.Unlock()
		s.fail(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	// The batch applied in memory: advance the epoch-scoped caches —
	// plans and containment verdicts computed under the old summary must
	// not survive — whether or not the persist succeeded.
	s.sum = res.Summary
	s.subsume = core.NewSubsumeCache(0)
	s.plans = newPlanCache(s.cfg.PlanCacheSize)
	s.mu.Unlock()
	s.invalidations.Add(1)
	s.updates.Add(1)
	for _, c := range res.Changed {
		s.tuplesAdded.Add(int64(c.Adds))
		s.tuplesDeleted.Add(int64(c.Dels))
	}
	dur := time.Since(start)
	s.maintainNanos.Add(dur.Nanoseconds())
	if perr != nil {
		s.degraded.Store(true)
		s.fail(w, http.StatusInternalServerError,
			"%v; queries keep serving the applied batch from memory, further updates are disabled", perr)
		return
	}
	if res.Changed == nil {
		res.Changed = []view.ChangedView{}
	}
	writeJSON(w, http.StatusOK, &UpdateResponse{
		Epoch:          res.Epoch,
		Applied:        len(updates),
		Changed:        res.Changed,
		Skipped:        res.Skipped,
		MaintainMicros: dur.Microseconds(),
	})
}

// loadDocument attaches the persisted source document to the open store;
// callers hold updMu.
func (s *Server) loadDocument() error {
	if s.cat.DocSegment == "" {
		return fmt.Errorf("no document segment in catalog (store built before updates existed); rebuild with xvstore build")
	}
	doc, err := store.ReadDocumentFile(filepath.Join(s.cfg.Dir, s.cat.DocSegment))
	if err != nil {
		return err
	}
	s.st.SetDocument(doc)
	return nil
}

// rewrite runs the search and returns the first equivalent plan, or nil
// when none exists.
func (s *Server) rewrite(q *pattern.Pattern, es epochState) (*core.Plan, error) {
	opts := core.DefaultRewriteOptions()
	opts.Workers = s.workers()
	opts.Subsume = es.subsume
	opts.FirstOnly = true
	res, err := core.Rewrite(q, s.views, es.sum, opts)
	if err != nil {
		return nil, err
	}
	if len(res.Rewritings) == 0 {
		return nil, nil
	}
	return res.Rewritings[0], nil
}

func (s *Server) workers() int {
	if s.cfg.Workers <= 0 {
		return -1 // resolved to GOMAXPROCS by both core and algebra
	}
	return s.cfg.Workers
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"views":  len(s.views),
		"epoch":  s.st.Epoch(),
	})
}

// Stats is the JSON body of /stats.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Views         int     `json:"views"`
	Epoch         int64   `json:"epoch"`
	// Degraded reports that an update batch was applied in memory but not
	// persisted; /update is disabled until restart.
	Degraded        bool    `json:"degraded"`
	Queries         int64   `json:"queries"`
	Errors          int64   `json:"errors"`
	RowsServed      int64   `json:"rows_served"`
	PlanCacheHits   int64   `json:"plan_cache_hits"`
	PlanCacheMisses int64   `json:"plan_cache_misses"`
	PlanCacheSize   int     `json:"plan_cache_size"`
	PlanHitRate     float64 `json:"plan_hit_rate"`
	SubsumeEntries  int     `json:"subsume_cache_entries"`
	RewriteMillis   int64   `json:"rewrite_ms_total"`
	ExecMillis      int64   `json:"exec_ms_total"`
	// Update-path counters. CacheInvalidations counts epoch advances that
	// dropped the plan and subsume caches.
	UpdatesApplied     int64 `json:"updates_applied"`
	TuplesAdded        int64 `json:"tuples_added"`
	TuplesDeleted      int64 `json:"tuples_deleted"`
	CacheInvalidations int64 `json:"cache_invalidations"`
	MaintainMillis     int64 `json:"maintain_ms_total"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.planHits.Load(), s.planMisses.Load()
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	es := s.snapshot()
	writeJSON(w, http.StatusOK, &Stats{
		UptimeSeconds:      time.Since(s.started).Seconds(),
		Views:              len(s.views),
		Epoch:              es.epoch,
		Degraded:           s.degraded.Load(),
		Queries:            s.queries.Load(),
		Errors:             s.errors.Load(),
		RowsServed:         s.rowsServed.Load(),
		PlanCacheHits:      hits,
		PlanCacheMisses:    misses,
		PlanCacheSize:      es.plans.len(),
		PlanHitRate:        rate,
		SubsumeEntries:     es.subsume.Len(),
		RewriteMillis:      s.rewriteNanos.Load() / 1e6,
		ExecMillis:         s.execNanos.Load() / 1e6,
		UpdatesApplied:     s.updates.Load(),
		TuplesAdded:        s.tuplesAdded.Load(),
		TuplesDeleted:      s.tuplesDeleted.Load(),
		CacheInvalidations: s.invalidations.Load(),
		MaintainMillis:     s.maintainNanos.Load() / 1e6,
	})
}

func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.errors.Add(1)
	writeJSON(w, code, &errorResponse{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(body)
}
