// Package serve implements the xvserve query daemon: an HTTP server that
// answers tree-pattern (and XQuery-translated) queries from a persistent
// view store built by xvstore, without ever touching the source document.
//
// A server loads the store directory's catalog, parses the recorded
// summary (with its cardinality statistics) and view definitions,
// memory-loads the extents, and then for each query runs the view-based
// rewriting (core.Rewrite), enumerating up to MaxResults equivalent plans
// and executing the cheapest under the statistics-backed cost model
// (internal/cost). Verdicts are memoized by a bounded LRU plan cache keyed
// by the query's canonical pattern text — concurrent misses on one key
// share a single search (singleflight) — and one summary-implication cache
// is shared across all queries. ?explain=1 returns the chosen plan, its
// estimated cost and the number of alternatives without executing.
//
// The daemon also accepts typed document updates on POST /update. A batch
// is maintained through the incremental engine (internal/maintain),
// persisted as append-only delta segments, and bumps the store epoch; the
// plan and summary-implication caches are dropped with the old epoch, so a
// plan (or a cached negative verdict) computed against a stale summary can
// never answer a later query.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"xmlviews/internal/algebra"
	"xmlviews/internal/core"
	"xmlviews/internal/cost"
	"xmlviews/internal/maintain"
	"xmlviews/internal/obs"
	"xmlviews/internal/pattern"
	"xmlviews/internal/store"
	"xmlviews/internal/summary"
	"xmlviews/internal/view"
	"xmlviews/internal/xquery"
)

// Config tunes a Server.
type Config struct {
	// Dir is the store directory (catalog.json + segments) to serve.
	Dir string
	// Workers is handed to both the rewriting search and the algebra
	// executor; <= 0 means use all CPUs.
	Workers int
	// PlanCacheSize bounds the LRU plan cache (<= 0: default 256).
	PlanCacheSize int
	// ReadOnly disables POST /update.
	ReadOnly bool
	// MaxUpdateBytes bounds an update request body (<= 0: default 8 MiB).
	MaxUpdateBytes int64
	// MaxResponseRows is the hard cap on /query response rows (<= 0:
	// default 10000): it is the limit when the request passes none, and
	// explicit limits are clamped to it. TotalRows always reports the
	// full result size, so clients can page past the cap with offset.
	MaxResponseRows int
	// MaxRewritings bounds how many equivalent rewritings the search
	// enumerates before the cost model picks the cheapest (<= 0: default
	// 8). Higher values find more alternatives on cold queries at the
	// price of longer searches; 1 reproduces the first-found behavior.
	MaxRewritings int
	// CompactMaxChain and CompactMaxBytes set the online compaction
	// policy: when any view's delta chain reaches CompactMaxChain segments
	// (<= 0: default 16) or the chains' total size reaches CompactMaxBytes
	// (<= 0: default 32 MiB), the background compactor folds every chain
	// into fresh base segments and reclaims the superseded files. The
	// epoch is preserved and queries are unaffected (compaction is
	// disk-only; extents are served from memory).
	CompactMaxChain int
	CompactMaxBytes int64
	// CompactDisabled turns the background compactor off (chains then grow
	// until an offline `xvstore compact`). Read-only servers never
	// compact.
	CompactDisabled bool
	// GroupWait is how long the committer holds a commit group open for
	// straggler requests after the first one arrives. 0 commits with
	// natural batching only: whatever queued while the previous group
	// persisted joins the next group. A small window (hundreds of
	// microseconds) trades a little latency for larger groups — fewer
	// fsyncs — under bursty writers.
	GroupWait time.Duration
	// GroupMax caps how many requests merge into one commit group
	// (<= 0: default 64).
	GroupMax int
	// MaxVersions bounds the store's MVCC retention window: at most this
	// many extent versions (live + retained for pinned readers) are
	// tracked; beyond it the oldest is force-released (still-pinned
	// snapshots keep reading safely). <= 0: view.DefaultMaxVersions.
	MaxVersions int
	// SlowQuery, when > 0, logs every /query or /update slower than this
	// threshold as one structured log line carrying the request id, the
	// trace's annotations and its span timings.
	SlowQuery time.Duration
	// Logger receives the structured log lines; nil discards them.
	Logger *slog.Logger
	// TraceRingSize bounds the /debug/traces ring of recent request traces
	// (<= 0: obs.DefaultRingSize).
	TraceRingSize int
}

const (
	defaultCompactMaxChain = 16
	defaultCompactMaxBytes = 32 << 20
)

// defaultMaxRewritings bounds the per-query alternative enumeration.
const defaultMaxRewritings = 8

// Server answers queries over one store directory. It is safe for
// concurrent use; updates serialize among themselves and against the
// epoch-keyed caches.
type Server struct {
	cfg   Config
	cat   *store.Catalog
	views []*core.View
	// st is the live store; request handling reads extents only through
	// snapshot() so one request never spans two epochs (snapdiscipline).
	st      *view.Store //xvlint:livestore
	started time.Time

	// mu guards the epoch-scoped state: the summary (updates can change
	// it), the plan/subsume caches, and cacheEpoch — the store epoch the
	// caches were built for. The committer swaps them wholesale after
	// installing a new store version; snapshot() pins store version and
	// caches together, retrying across the brief swap window, so a
	// query's snapshot is always internally consistent without readers
	// ever waiting out an apply or fsync.
	mu         sync.RWMutex
	sum        *summary.Summary
	subsume    *core.SubsumeCache
	plans      *planCache
	est        *cost.Estimator
	cacheEpoch int64

	// The commit queue: /update handlers enqueue parsed requests and a
	// single committer goroutine (commitLoop, see commit.go) drains it,
	// merging queued requests into one group-committed epoch. updMu is
	// committer-internal — it serializes commits against the online
	// compactor (catalog mutation and segment files must not interleave
	// with a fold); handlers never take it and never touch the document,
	// catalog or persist path directly. degraded is set when a batch was
	// applied in memory but could not be persisted; further updates are
	// refused so the directory's delta chains never skip an epoch.
	commitQ    chan *commitReq
	commitStop chan struct{}
	commitWG   sync.WaitGroup
	updMu      sync.Mutex
	degraded   atomic.Bool

	// Online compaction: updates signal compactCh when the delta chains
	// cross the policy thresholds; a background goroutine folds them.
	compactCh   chan struct{}
	compactStop chan struct{}
	compactWG   sync.WaitGroup
	closeOnce   sync.Once

	// Observability: one registry holds every instrument (counters,
	// gauges, per-phase latency histograms) and backs both GET /metrics
	// and the /stats JSON; the ring keeps the most recent request traces
	// for GET /debug/traces.
	reg  *obs.Registry
	met  *metricsSet
	ring *obs.Ring
	log  *slog.Logger
}

// New opens the store directory and builds a ready-to-serve Server.
func New(cfg Config) (*Server, error) {
	cat, err := store.OpenCatalog(cfg.Dir)
	if err != nil {
		return nil, err
	}
	sum, err := summary.Parse(cat.Summary)
	if err != nil {
		return nil, fmt.Errorf("serve: catalog summary does not parse: %w", err)
	}
	views, err := view.ViewsFromCatalog(cat)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	st, err := view.OpenStoreWithCatalog(cfg.Dir, cat, views)
	if err != nil {
		return nil, err
	}
	st.SetMaxVersions(cfg.MaxVersions)
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	reg := obs.NewRegistry()
	s := &Server{
		cfg:         cfg,
		cat:         cat,
		sum:         sum,
		views:       views,
		st:          st,
		subsume:     core.NewSubsumeCache(0),
		plans:       newPlanCache(cfg.PlanCacheSize),
		est:         cost.NewEstimator(cost.FromCatalog(cat, sum)),
		started:     time.Now(),
		compactCh:   make(chan struct{}, 1),
		compactStop: make(chan struct{}),
		commitQ:     make(chan *commitReq, commitQueueDepth),
		commitStop:  make(chan struct{}),
		reg:         reg,
		met:         newMetricsSet(reg),
		ring:        obs.NewRing(cfg.TraceRingSize),
		log:         logger,
	}
	s.cacheEpoch = st.Epoch()
	s.registerGauges()
	obs.RegisterRuntimeMetrics(reg)
	// Uncontended here (nothing else has the *Server yet), but taking the
	// lock keeps refreshChainGauges's contract uniform for every caller.
	s.updMu.Lock()
	s.refreshChainGauges()
	s.updMu.Unlock()
	if !cfg.ReadOnly {
		s.commitWG.Add(1)
		//xvlint:ownedby(committer) goroutine entry point: this go statement IS the committer
		go s.commitLoop()
	}
	if !cfg.ReadOnly && !cfg.CompactDisabled {
		s.compactWG.Add(1)
		go s.compactLoop()
		// A store opened with already-long chains (e.g. a daemon that
		// crashed before compacting) is folded right away.
		if s.overThreshold() {
			s.signalCompact()
		}
	}
	return s, nil
}

// registerGauges adds the gauges that sample live server state at scrape
// time: epoch, degraded flag, cache sizes, view count and uptime.
func (s *Server) registerGauges() {
	s.reg.GaugeFunc("xvserve_epoch", "Current store epoch.",
		func() float64 { return float64(s.st.Epoch()) })
	s.reg.GaugeFunc("xvserve_degraded", "1 when an update batch was applied in memory but not persisted (updates disabled).",
		func() float64 {
			if s.degraded.Load() {
				return 1
			}
			return 0
		})
	s.reg.GaugeFunc("xvserve_plan_cache_entries", "Plans and negative verdicts held by the epoch's plan cache.",
		func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(s.plans.len())
		})
	s.reg.GaugeFunc("xvserve_subsume_cache_entries", "Verdicts held by the epoch's summary-implication cache.",
		func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(s.subsume.Len())
		})
	s.reg.GaugeFunc("xvserve_commit_queue_depth", "Update requests waiting in the commit queue.",
		func() float64 { return float64(len(s.commitQ)) })
	s.reg.GaugeFunc("xvserve_store_versions", "MVCC extent versions the store tracks (live + retained for pinned readers).",
		func() float64 { return float64(s.st.Versions()) })
	s.reg.GaugeFunc("xvserve_views", "Materialized views served.",
		func() float64 { return float64(len(s.views)) })
	s.reg.GaugeFunc("xvserve_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.started).Seconds() })
}

// Close stops the committer and the background compactor. The HTTP
// handler remains usable for reads; /update requests still queued when
// the committer stops are answered 503, and chains then only compact
// offline.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.commitStop)
		s.commitWG.Wait()
		close(s.compactStop)
		s.compactWG.Wait()
	})
}

// refreshChainGauges recomputes the delta-chain stats from the catalog.
// Callers hold updMu — it reads s.cat, which updates mutate.
//
//xvlint:requires(updMu)
func (s *Server) refreshChainGauges() {
	var longest int64
	var total int64
	for i := range s.cat.Views {
		e := &s.cat.Views[i]
		if n := int64(len(e.Deltas)); n > longest {
			longest = n
		}
		for _, d := range e.Deltas {
			total += d.Bytes
		}
	}
	s.met.maxChain.SetInt(longest)
	s.met.deltaBytes.SetInt(total)
}

func (s *Server) compactMaxChain() int64 {
	if s.cfg.CompactMaxChain > 0 {
		return int64(s.cfg.CompactMaxChain)
	}
	return defaultCompactMaxChain
}

func (s *Server) compactMaxBytes() int64 {
	if s.cfg.CompactMaxBytes > 0 {
		return s.cfg.CompactMaxBytes
	}
	return defaultCompactMaxBytes
}

func (s *Server) overThreshold() bool {
	return int64(s.met.maxChain.Value()) >= s.compactMaxChain() ||
		int64(s.met.deltaBytes.Value()) >= s.compactMaxBytes()
}

func (s *Server) signalCompact() {
	select {
	case s.compactCh <- struct{}{}:
	default: // a compaction is already pending
	}
}

func (s *Server) compactLoop() {
	defer s.compactWG.Done()
	for {
		select {
		case <-s.compactStop:
			return
		case <-s.compactCh:
			s.compactOnce()
		}
	}
}

// compactOnce folds the delta chains under the update lock. Queries are
// untouched (they serve memory extents against the epoch snapshot);
// updates queue behind the lock for the duration of the fold. The epoch
// is preserved, so no cache is invalidated. A compaction failure leaves
// the store consistent (the catalog still references the old chains and
// the fold is idempotent), so it is counted and retried on the next
// trigger rather than degrading the server.
func (s *Server) compactOnce() {
	s.updMu.Lock()
	defer s.updMu.Unlock()
	if s.degraded.Load() || !s.overThreshold() {
		return
	}
	start := time.Now()
	res, err := view.CompactCatalog(s.cfg.Dir, s.cat)
	s.met.compactSeconds.ObserveDuration(time.Since(start))
	if err != nil {
		s.met.compactErrors.Inc()
		return
	}
	s.met.compactions.Inc()
	s.met.compactFolded.Add(int64(res.Folded))
	s.met.compactReclaimed.Add(res.BytesReclaimed)
	s.refreshChainGauges()
}

// Views returns the number of views served.
func (s *Server) Views() int { return len(s.views) }

// Handler returns the server's HTTP routes. Every route runs inside the
// instrument middleware: the response carries an X-Request-Id header (the
// client's, when valid, else generated), the request runs with a trace on
// its context, and the per-route request counter is observed.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.instrument("/query", s.handleQuery))
	mux.HandleFunc("/update", s.instrument("/update", s.handleUpdate))
	mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("/stats", s.instrument("/stats", s.handleStats))
	mux.HandleFunc("/metrics", s.instrument("/metrics", s.handleMetrics))
	mux.HandleFunc("/debug/traces", s.instrument("/debug/traces", s.handleTraces))
	return mux
}

// epochState is a consistent snapshot of one epoch: the summary, the
// caches keyed to it, and the store's extents pinned at it. Callers must
// Release st when done so the store can drop superseded MVCC versions.
type epochState struct {
	sum     *summary.Summary
	subsume *core.SubsumeCache
	plans   *planCache
	est     *cost.Estimator
	st      *view.Store
	epoch   int64
}

func (s *Server) snapshot() epochState {
	for {
		s.mu.RLock()
		es := epochState{sum: s.sum, subsume: s.subsume, plans: s.plans, est: s.est, epoch: s.cacheEpoch}
		st := s.st.Snapshot()
		s.mu.RUnlock()
		if st.Epoch() == es.epoch {
			es.st = st
			return es
		}
		// The committer installed a new store version between the cache
		// read and the pin; drop the pin and retry against the swapped
		// caches (the swap is a few assignments away — see commitGroup).
		st.Release()
		runtime.Gosched()
	}
}

// QueryResponse is the JSON answer to /query.
type QueryResponse struct {
	// Query is the canonical pattern text the request resolved to.
	Query string `json:"query"`
	// Plan is the executed rewriting plan, chosen as the cheapest of the
	// equivalent rewritings under the statistics-backed cost model.
	Plan string `json:"plan"`
	// Cost is the chosen plan's estimated cost (-1 when no estimate was
	// possible); Alternatives is how many equivalent rewritings the search
	// produced.
	Cost         float64 `json:"cost"`
	Alternatives int     `json:"alternatives"`
	// PlanCached reports a plan-cache hit (the rewriting search was
	// skipped).
	PlanCached bool `json:"plan_cached"`
	// Epoch is the store epoch the answer reflects.
	Epoch int64 `json:"epoch"`
	// Columns and Rows are the result: one rendered string per value.
	// Rows is the window selected by the limit/offset parameters (capped
	// at the server's maximum response size); TotalRows is the full result
	// cardinality and Offset the window's first row index. An explicit
	// limit=0 is a count-only probe: Rows stays empty while TotalRows
	// reports the full cardinality.
	Columns   []string   `json:"columns"`
	Rows      [][]string `json:"rows"`
	TotalRows int        `json:"total_rows"`
	Offset    int        `json:"offset"`
	// ExecPath reports which execution path this run took: "vectorized"
	// when any batch kernel ran, "row" otherwise.
	ExecPath string `json:"exec_path"`
	// RewriteMicros and ExecMicros are this request's latencies; the
	// rewrite time is ~0 on plan-cache hits.
	RewriteMicros int64 `json:"rewrite_us"`
	ExecMicros    int64 `json:"exec_us"`
	// Trace carries the request's span timings when the request asked for
	// them with trace=1.
	Trace *TraceInfo `json:"trace,omitempty"`
}

// TraceInfo is the in-response rendering of a request's trace: the
// correlation id and the pipeline span timings recorded so far.
type TraceInfo struct {
	RequestID string     `json:"request_id"`
	Spans     []obs.Span `json:"spans"`
}

// traceInfo snapshots the context's trace for a response body; nil when
// the request is untraced.
func traceInfo(ctx context.Context) *TraceInfo {
	tr := obs.FromContext(ctx)
	if tr == nil {
		return nil
	}
	return &TraceInfo{RequestID: tr.ID, Spans: tr.Spans()}
}

// ExplainResponse is the JSON answer to /query?...&explain=1: the chosen
// plan and its cost, without executing it.
type ExplainResponse struct {
	Query string `json:"query"`
	// Plan is the plan the query would execute.
	Plan string `json:"plan"`
	// Cost is its estimated cost under the current statistics (-1 when no
	// estimate was possible).
	Cost float64 `json:"cost"`
	// Alternatives is the number of equivalent rewritings the search
	// produced (the cost model picked the cheapest).
	Alternatives  int   `json:"alternatives"`
	PlanCached    bool  `json:"plan_cached"`
	Epoch         int64 `json:"epoch"`
	RewriteMicros int64 `json:"rewrite_us"`
	// LastExecPath is the execution path the cached plan's most recent run
	// took ("vectorized" or "row"); empty when the plan has not executed
	// since entering the cache.
	LastExecPath string `json:"last_exec_path,omitempty"`
	// Trace is always present on explain answers: explain exists to show
	// how the answer would be produced, and the span timings are part of
	// that story.
	Trace *TraceInfo `json:"trace,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
	// RequestID correlates the error with the X-Request-Id header, the
	// trace ring and the slow-request log.
	RequestID string `json:"request_id,omitempty"`
}

// statusClientClosedRequest is the nginx-convention status for a client
// that disconnected before the response was ready.
const statusClientClosedRequest = 499

// defaultMaxResponseRows caps /query row rendering when the caller sets no
// explicit limit.
const defaultMaxResponseRows = 10000

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		s.fail(w, r, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	if err := r.ParseForm(); err != nil {
		s.fail(w, r, http.StatusBadRequest, "bad form: %v", err)
		return
	}
	ctx := r.Context()
	tr := obs.FromContext(ctx)
	snapStart := time.Now()
	es := s.snapshot()
	defer es.st.Release()
	snapDur := time.Since(snapStart)
	s.met.snapshotSeconds.ObserveDuration(snapDur)
	tr.AddSpan("snapshot", snapStart, snapDur)
	qSrc, xqSrc := r.Form.Get("q"), r.Form.Get("xq")
	var q *pattern.Pattern
	var err error
	switch {
	case qSrc != "" && xqSrc != "":
		s.fail(w, r, http.StatusBadRequest, "pass either q (tree pattern) or xq (XQuery), not both")
		return
	case qSrc != "":
		q, err = pattern.Parse(qSrc)
	case xqSrc != "":
		q, err = xquery.Translate(xqSrc, es.sum.Node(summary.RootID).Label)
	default:
		s.fail(w, r, http.StatusBadRequest, "missing query: pass q (tree pattern) or xq (XQuery)")
		return
	}
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, "query does not parse: %v", err)
		return
	}
	maxRows := s.cfg.MaxResponseRows
	if maxRows <= 0 {
		maxRows = defaultMaxResponseRows
	}
	limit, err := intParam(r, "limit", maxRows)
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	if limit > maxRows {
		limit = maxRows
	}
	offset, err := intParam(r, "offset", 0)
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, "%v", err)
		return
	}

	s.met.queries.Inc()
	key := q.String()
	tr.Annotate("query", key)
	tr.Annotate("epoch", strconv.FormatInt(es.epoch, 10))
	rewriteStart := time.Now()
	verdict, hit := es.plans.get(key)
	cacheHit := hit
	var leader bool
	if hit {
		s.met.planHits.Inc()
	} else {
		for {
			// Per-attempt timer: a retry after a cancelled leader's dead
			// flight must not bill that wait to the new attempt.
			rewriteStart = time.Now()
			verdict, leader, err = es.plans.compute(ctx, key, func() (cachedPlan, error) {
				return s.rewriteBest(ctx, q, es)
			})
			if err == nil {
				break
			}
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				if ctx.Err() != nil {
					// This request's own client went away mid-rewrite.
					s.clientGone(w, r, "client closed request during rewrite")
					return
				}
				if !leader {
					// The leader whose flight this request was sharing was
					// cancelled; retry (and possibly lead) with our own,
					// still-live context.
					continue
				}
			}
			s.fail(w, r, http.StatusInternalServerError, "rewrite: %v", err)
			return
		}
		if leader {
			s.met.planMisses.Inc()
		} else {
			// A singleflight follower (or the verdict landed in the cache
			// while this request queued): the search was skipped, which is
			// what the hit/miss stats and plan_cached field measure.
			s.met.planHits.Inc()
			hit = true
		}
	}
	rewriteDur := time.Since(rewriteStart)
	tr.AddSpan("rewrite", rewriteStart, rewriteDur)
	// Singleflight followers spent this time waiting on the leader's
	// search, not searching; counting them would multiply one search's
	// cost by the stampede size in the latency totals.
	if cacheHit || leader {
		s.met.rewriteSeconds.ObserveDuration(rewriteDur)
	}
	if verdict.unsatisfiable {
		s.fail(w, r, http.StatusUnprocessableEntity, "%v", core.ErrUnsatisfiable)
		return
	}
	plan := verdict.plan
	if plan == nil {
		s.fail(w, r, http.StatusUnprocessableEntity, "no equivalent rewriting of %s over the stored views", key)
		return
	}
	tr.Annotate("plan", plan.String())
	tr.Annotate("cost", strconv.FormatFloat(verdict.cost, 'g', -1, 64))
	tr.Annotate("plan_cached", strconv.FormatBool(hit))

	if r.Form.Get("explain") == "1" {
		writeJSON(w, http.StatusOK, &ExplainResponse{
			Query:         key,
			Plan:          plan.String(),
			Cost:          verdict.cost,
			Alternatives:  verdict.alternatives,
			PlanCached:    hit,
			Epoch:         es.epoch,
			RewriteMicros: rewriteDur.Microseconds(),
			LastExecPath:  verdict.execPath,
			Trace:         traceInfo(ctx),
		})
		return
	}

	execStart := time.Now()
	var xs algebra.ExecStats
	out, err := algebra.ExecuteWith(plan, es.st, algebra.Options{Workers: s.workers(), Ctx: ctx, Stats: &xs})
	execDur := time.Since(execStart)
	tr.AddSpan("execute", execStart, execDur)
	if err != nil {
		if ctx.Err() != nil {
			s.clientGone(w, r, "client closed request during execution")
			return
		}
		s.fail(w, r, http.StatusInternalServerError, "execute: %v", err)
		return
	}
	// Count only completed executions: the partial duration of an
	// abandoned or failed run would skew the average operators alert on.
	s.met.execSeconds.ObserveDuration(execDur)
	// View names come from the catalog, fixed at startup: one series per
	// configured view, not per request.
	//xvlint:boundedlabel view names are catalog-bounded
	scannedViews(plan, func(name string) { s.met.viewReads.With(name).Inc() })
	s.met.observeExecStats(&xs)
	execPath := "row"
	if xs.Vectorized() {
		execPath = "vectorized"
	}
	tr.Annotate("exec_path", execPath)
	if xs.BlocksScanned+xs.BlocksSkipped > 0 {
		tr.Annotate("vec_blocks", fmt.Sprintf("%d scanned, %d skipped", xs.BlocksScanned, xs.BlocksSkipped))
	}
	es.plans.recordExecPath(key, execPath)
	encodeStart := time.Now()
	rel := out.Rel
	if limit > 0 {
		rel = rel.Sorted()
	}
	total := rel.Len()
	if offset > total {
		offset = total
	}
	// An explicit limit=0 is a count-only probe: the window stays empty,
	// TotalRows still reports the full cardinality, and the result is
	// never sorted or rendered.
	end := offset + limit
	if end > total || end < offset { // overflow-safe
		end = total
	}
	window := rel.Rows[offset:end]
	rows := make([][]string, 0, len(window))
	for _, row := range window {
		rendered := make([]string, len(row))
		for i, v := range row {
			rendered[i] = v.Render()
		}
		rows = append(rows, rendered)
	}
	s.met.rowsServed.Add(int64(len(rows)))
	encodeDur := time.Since(encodeStart)
	s.met.encodeSeconds.ObserveDuration(encodeDur)
	tr.AddSpan("encode", encodeStart, encodeDur)
	resp := &QueryResponse{
		Query:         key,
		Plan:          plan.String(),
		Cost:          verdict.cost,
		Alternatives:  verdict.alternatives,
		PlanCached:    hit,
		Epoch:         es.epoch,
		Columns:       rel.Cols,
		Rows:          rows,
		TotalRows:     total,
		Offset:        offset,
		ExecPath:      execPath,
		RewriteMicros: rewriteDur.Microseconds(),
		ExecMicros:    execDur.Microseconds(),
	}
	if r.Form.Get("trace") == "1" {
		resp.Trace = traceInfo(ctx)
	}
	writeJSON(w, http.StatusOK, resp)
}

// intParam parses a non-negative integer query parameter, with a default
// when absent.
func intParam(r *http.Request, name string, def int) (int, error) {
	raw := r.Form.Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("%s must be a non-negative integer, got %q", name, raw)
	}
	return v, nil
}

// UpdateResponse is the JSON answer to /update.
type UpdateResponse struct {
	// Epoch is the store epoch after the batch.
	Epoch int64 `json:"epoch"`
	// Applied is the number of updates in the batch.
	Applied int `json:"applied"`
	// Changed lists per-view delta sizes; Skipped counts views the
	// relevance mapping proved unaffected.
	Changed []view.ChangedView `json:"changed"`
	Skipped int                `json:"skipped"`
	// MaintainMicros is the end-to-end maintenance latency (apply +
	// persist) of the commit group the request rode in.
	MaintainMicros int64 `json:"maintain_us"`
	// GroupSize is the number of requests the committing group merged into
	// this epoch (1 for a solo commit).
	GroupSize int `json:"group_size"`
}

const defaultMaxUpdateBytes = 8 << 20

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, r, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.cfg.ReadOnly {
		s.fail(w, r, http.StatusForbidden, "server is read-only")
		return
	}
	limit := s.cfg.MaxUpdateBytes
	if limit <= 0 {
		limit = defaultMaxUpdateBytes
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if int64(len(body)) > limit {
		s.fail(w, r, http.StatusRequestEntityTooLarge, "update batch exceeds %d bytes", limit)
		return
	}
	updates, err := maintain.ParseUpdates(body)
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	if len(updates) == 0 {
		s.fail(w, r, http.StatusBadRequest, "empty update batch")
		return
	}

	if s.degraded.Load() {
		s.fail(w, r, http.StatusServiceUnavailable, "updates disabled: an earlier batch was applied in memory but not persisted; restart the server against the store directory")
		return
	}

	// Hand the parsed request to the committer (commit.go): it merges
	// queued requests into one group-committed epoch and acks each with
	// its own verdict. The handler only enqueues and waits — it never
	// touches the document, the catalog or the persist path.
	ctx := r.Context()
	tr := obs.FromContext(ctx)
	tr.Annotate("updates", strconv.Itoa(len(updates)))
	req := &commitReq{updates: updates, tr: tr, enq: time.Now(), done: make(chan commitAck, 1)}
	select {
	case s.commitQ <- req:
	case <-s.commitStop:
		s.fail(w, r, http.StatusServiceUnavailable, "server is shutting down")
		return
	case <-ctx.Done():
		// Not queued yet, so nothing commits on this request's behalf.
		s.clientGone(w, r, "client closed request before the update was queued")
		return
	}
	select {
	case ack := <-req.done:
		if ack.resp != nil {
			tr.Annotate("epoch", strconv.FormatInt(ack.resp.Epoch, 10))
			writeJSON(w, http.StatusOK, ack.resp)
			return
		}
		s.fail(w, r, ack.status, "%s", ack.errMsg)
	case <-ctx.Done():
		// The client left while its request was queued or committing. The
		// committer is NOT cancelled — the group the request joined
		// commits for everyone else (the ack lands in the buffered done
		// channel unread); only this response reports the disconnect.
		s.clientGone(w, r, "client closed request while the update was committing")
	case <-s.commitStop:
		// Shutdown raced the commit; the group may or may not have
		// committed, the client must retry against the reopened store.
		s.fail(w, r, http.StatusServiceUnavailable, "server is shutting down")
	}
}

// loadDocument attaches the persisted source document to the open store;
// callers hold updMu.
//
//xvlint:requires(updMu)
func (s *Server) loadDocument() error {
	if s.cat.DocSegment == "" {
		return fmt.Errorf("no document segment in catalog (store built before updates existed); rebuild with xvstore build")
	}
	doc, err := store.ReadDocumentFile(filepath.Join(s.cfg.Dir, s.cat.DocSegment))
	if err != nil {
		return err
	}
	s.st.SetDocument(doc)
	return nil
}

// rewriteBest runs the full search (up to MaxResults equivalent
// rewritings) and picks the cheapest plan under the epoch's cost
// estimator. An unsatisfiable query is a cacheable negative verdict, not
// an error; a cancelled search propagates the context error.
func (s *Server) rewriteBest(ctx context.Context, q *pattern.Pattern, es epochState) (cachedPlan, error) {
	s.met.rewritesRun.Inc()
	opts := core.DefaultRewriteOptions()
	opts.Workers = s.workers()
	opts.Subsume = es.subsume
	opts.Ctx = ctx
	opts.MaxResults = s.cfg.MaxRewritings
	if opts.MaxResults <= 0 {
		opts.MaxResults = defaultMaxRewritings
	}
	res, err := core.Rewrite(q, s.views, es.sum, opts)
	if errors.Is(err, core.ErrUnsatisfiable) {
		return cachedPlan{unsatisfiable: true}, nil
	}
	if err != nil {
		return cachedPlan{}, err
	}
	// The cost span belongs to the singleflight leader's trace: followers
	// share the verdict, not the estimation work.
	costStart := time.Now()
	plan, planCost, alts := core.ChooseBest(res, es.est.PlanCost)
	costDur := time.Since(costStart)
	s.met.costSeconds.ObserveDuration(costDur)
	obs.FromContext(ctx).AddSpan("cost", costStart, costDur)
	if math.IsInf(planCost, 1) {
		planCost = -1 // no estimate possible; also keeps the JSON encodable
	}
	return cachedPlan{plan: plan, cost: planCost, alternatives: alts}, nil
}

func (s *Server) workers() int {
	if s.cfg.Workers <= 0 {
		return -1 // resolved to GOMAXPROCS by both core and algebra
	}
	return s.cfg.Workers
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"views":  len(s.views),
		"epoch":  s.st.Epoch(),
	})
}

// Stats is the JSON body of /stats.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Views         int     `json:"views"`
	Epoch         int64   `json:"epoch"`
	// Degraded reports that an update batch was applied in memory but not
	// persisted; /update is disabled until restart.
	Degraded bool  `json:"degraded"`
	Queries  int64 `json:"queries"`
	// RewritesRun counts actual rewriting searches: plan-cache hits and
	// singleflight followers don't run one.
	RewritesRun int64 `json:"rewrites_run"`
	// ClientDisconnects counts 499 answers (client gone mid-request);
	// they are not server errors and are excluded from Errors.
	ClientDisconnects int64   `json:"client_disconnects"`
	Errors            int64   `json:"errors"`
	RowsServed        int64   `json:"rows_served"`
	PlanCacheHits     int64   `json:"plan_cache_hits"`
	PlanCacheMisses   int64   `json:"plan_cache_misses"`
	PlanCacheSize     int     `json:"plan_cache_size"`
	PlanHitRate       float64 `json:"plan_hit_rate"`
	SubsumeEntries    int     `json:"subsume_cache_entries"`
	// RewriteMillis and ExecMillis are fractional since the histograms
	// behind them keep exact sums: sub-millisecond requests used to
	// truncate to 0 and vanish from the totals.
	RewriteMillis float64 `json:"rewrite_ms_total"`
	ExecMillis    float64 `json:"exec_ms_total"`
	// Update-path counters. CacheInvalidations counts epoch advances that
	// dropped the plan and subsume caches.
	UpdatesApplied     int64   `json:"updates_applied"`
	TuplesAdded        int64   `json:"tuples_added"`
	TuplesDeleted      int64   `json:"tuples_deleted"`
	CacheInvalidations int64   `json:"cache_invalidations"`
	MaintainMillis     float64 `json:"maintain_ms_total"`
	// Online-compaction state: the current longest delta chain and total
	// delta bytes, and what the background compactor has folded/reclaimed
	// so far.
	MaxDeltaChain         int64 `json:"max_delta_chain"`
	DeltaBytes            int64 `json:"delta_bytes"`
	Compactions           int64 `json:"compactions_run"`
	DeltaSegmentsFolded   int64 `json:"delta_segments_folded"`
	CompactBytesReclaimed int64 `json:"compact_bytes_reclaimed"`
	CompactErrors         int64 `json:"compact_errors"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.met.planHits.Value(), s.met.planMisses.Value()
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	es := s.snapshot()
	defer es.st.Release()
	writeJSON(w, http.StatusOK, &Stats{
		UptimeSeconds:         time.Since(s.started).Seconds(),
		Views:                 len(s.views),
		Epoch:                 es.epoch,
		Degraded:              s.degraded.Load(),
		Queries:               s.met.queries.Value(),
		RewritesRun:           s.met.rewritesRun.Value(),
		ClientDisconnects:     s.met.clientsGone.Value(),
		Errors:                s.met.errors.Value(),
		RowsServed:            s.met.rowsServed.Value(),
		PlanCacheHits:         hits,
		PlanCacheMisses:       misses,
		PlanCacheSize:         es.plans.len(),
		PlanHitRate:           rate,
		SubsumeEntries:        es.subsume.Len(),
		RewriteMillis:         s.met.rewriteSeconds.Sum() * 1e3,
		ExecMillis:            s.met.execSeconds.Sum() * 1e3,
		UpdatesApplied:        s.met.updates.Value(),
		TuplesAdded:           s.met.tuplesAdded.Value(),
		TuplesDeleted:         s.met.tuplesDeleted.Value(),
		CacheInvalidations:    s.met.invalidations.Value(),
		MaintainMillis:        s.met.maintainSeconds.Sum() * 1e3,
		MaxDeltaChain:         int64(s.met.maxChain.Value()),
		DeltaBytes:            int64(s.met.deltaBytes.Value()),
		Compactions:           s.met.compactions.Value(),
		DeltaSegmentsFolded:   s.met.compactFolded.Value(),
		CompactBytesReclaimed: s.met.compactReclaimed.Value(),
		CompactErrors:         s.met.compactErrors.Value(),
	})
}

func (s *Server) fail(w http.ResponseWriter, r *http.Request, code int, format string, args ...any) {
	s.met.errors.Inc()
	writeJSON(w, code, &errorResponse{Error: fmt.Sprintf(format, args...), RequestID: requestID(r)})
}

// clientGone answers a request whose client disconnected: 499 by the
// nginx convention, counted apart from server errors so the errors stat
// stays an alertable signal.
func (s *Server) clientGone(w http.ResponseWriter, r *http.Request, msg string) {
	s.met.clientsGone.Inc()
	writeJSON(w, statusClientClosedRequest, &errorResponse{Error: msg, RequestID: requestID(r)})
}

// requestID returns the request's correlation id (empty only for requests
// that bypassed the instrument middleware, e.g. direct handler tests).
func requestID(r *http.Request) string {
	if tr := obs.FromContext(r.Context()); tr != nil {
		return tr.ID
	}
	return ""
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(body)
}
