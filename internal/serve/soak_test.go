package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"xmlviews/internal/core"
	"xmlviews/internal/pattern"
	"xmlviews/internal/view"
	"xmlviews/internal/xmltree"
)

// TestServeUpdateStatusCodesPinned pins the /update error contract: client
// mistakes (malformed JSON, empty batches, unresolvable targets, bad
// labels) are 4xx, size limits 413, read-only 403; 5xx is reserved for
// persistence failures (covered by TestServeDegradedOnPersistFailure).
func TestServeUpdateStatusCodesPinned(t *testing.T) {
	ts, _ := newUpdatableServer(t, Config{})
	small, _ := newUpdatableServer(t, Config{MaxUpdateBytes: 64})
	ro, _ := newUpdatableServer(t, Config{ReadOnly: true})

	cases := []struct {
		name string
		ts   *httptest.Server
		body string
		want int
	}{
		{"malformed JSON", ts, `not json`, http.StatusBadRequest},
		{"empty batch", ts, `{"updates":[]}`, http.StatusBadRequest},
		{"empty array", ts, `[]`, http.StatusBadRequest},
		{"unknown op", ts, `[{"op":"zap","target":"1.1"}]`, http.StatusBadRequest},
		{"malformed target id", ts, `[{"op":"delete","target":"1.x"}]`, http.StatusBadRequest},
		{"unknown delete target", ts, `[{"op":"delete","target":"1.99"}]`, http.StatusUnprocessableEntity},
		{"unknown settext target", ts, `[{"op":"settext","target":"1.99","value":"v"}]`, http.StatusUnprocessableEntity},
		{"unknown insert parent", ts, `[{"op":"insert","parent":"1.99","subtree":"x"}]`, http.StatusUnprocessableEntity},
		{"delete of the root", ts, `[{"op":"delete","target":"1"}]`, http.StatusUnprocessableEntity},
		{"oversized batch", small, `[{"op":"insert","parent":"1","subtree":"` + strings.Repeat("x", 200) + `"}]`, http.StatusRequestEntityTooLarge},
		{"read-only server", ro, `[{"op":"delete","target":"1.1"}]`, http.StatusForbidden},
	}
	for _, tc := range cases {
		var e errorResponse
		if code := postUpdate(t, tc.ts, tc.body, &e); code != tc.want {
			t.Errorf("%s: status %d, want %d (%+v)", tc.name, code, tc.want, e)
		}
	}
	// None of the rejected batches may have advanced any epoch.
	for _, srv := range []*httptest.Server{ts, small, ro} {
		var st Stats
		getJSON(t, srv.URL+"/stats", &st)
		if st.Epoch != 0 || st.UpdatesApplied != 0 {
			t.Fatalf("rejected batches advanced the epoch: %+v", st)
		}
	}
}

// TestServeSoakAutoCompaction is the race-enabled soak: hundreds of update
// batches stream through the daemon while readers query concurrently. It
// asserts epochs advance strictly one per batch, delta chains stay bounded
// by the auto-compaction policy, the compactor actually runs, and the
// persisted store reopens with extents identical to a from-scratch rebuild
// of the final document.
func TestServeSoakAutoCompaction(t *testing.T) {
	const (
		batches   = 200
		threshold = 4
	)
	dir := t.TempDir()
	doc := xmltree.MustParseParen(`site(item(name "n0" price "1"))`)
	views := []*core.View{
		{Name: "vname", Pattern: pattern.MustParse(`site(/item[id](/name[v]))`), DerivableParentIDs: true},
		{Name: "vprice", Pattern: pattern.MustParse(`site(//price[id,v])`), DerivableParentIDs: true},
	}
	if _, err := view.BuildStore(dir, doc, views); err != nil {
		t.Fatal(err)
	}
	// Tracing and slow-request logging run at full throttle during the
	// soak: observability must not perturb the pipeline under race.
	srv, err := New(Config{Dir: dir, Workers: 2, PlanCacheSize: 16, CompactMaxChain: threshold,
		SlowQuery: time.Nanosecond, Logger: slog.New(slog.NewJSONHandler(io.Discard, nil))})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	done := make(chan struct{})
	errs := make(chan error, 16)

	// Writer: sequential batches; every response's epoch must be exactly
	// one past the previous (epochs never skip, never repeat).
	go func() {
		defer close(done)
		for i := 0; i < batches; i++ {
			var body string
			switch i % 3 {
			case 0:
				body = fmt.Sprintf(`[{"op":"insert","parent":"1","subtree":"item(name \"n%d\" price \"%d\")"}]`, i+1, i%7)
			case 1:
				body = fmt.Sprintf(`[{"op":"settext","target":"1.1.3","value":"%d"}]`, i)
			default:
				body = fmt.Sprintf(`[{"op":"settext","target":"1.1.1","value":"m%d"}]`, i)
			}
			resp, err := http.Post(ts.URL+"/update", "application/json", strings.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("batch %d: status %d: %s", i, resp.StatusCode, data)
				return
			}
			var up UpdateResponse
			if err := json.Unmarshal(data, &up); err != nil {
				errs <- fmt.Errorf("batch %d: %v", i, err)
				return
			}
			if up.Epoch != int64(i+1) {
				errs <- fmt.Errorf("batch %d: epoch %d, want %d (skipped or repeated)", i, up.Epoch, i+1)
				return
			}
		}
	}()

	// Readers: query and watch /stats while the writer runs. Chains may
	// transiently overshoot the threshold (the compactor is asynchronous),
	// but never run away. Failures go through errs — t.Fatal must not be
	// called off the test goroutine.
	fetch := func(url string, out any) error {
		r, err := http.Get(url)
		if err != nil {
			return err
		}
		defer r.Body.Close()
		data, err := io.ReadAll(r.Body)
		if err != nil {
			return err
		}
		if r.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: status %d: %s", url, r.StatusCode, data)
		}
		return json.Unmarshal(data, out)
	}
	var wg sync.WaitGroup
	q := url.QueryEscape(`site(/item[id](/name[v]))`)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				var resp QueryResponse
				if err := fetch(ts.URL+"/query?trace=1&q="+q, &resp); err != nil {
					errs <- err
					return
				}
				if resp.TotalRows < 1 {
					errs <- fmt.Errorf("implausible result: %+v", resp)
					return
				}
				if resp.Trace == nil || len(resp.Trace.Spans) == 0 {
					errs <- fmt.Errorf("traced query returned no spans: %+v", resp.Trace)
					return
				}
				var st Stats
				if err := fetch(ts.URL+"/stats", &st); err != nil {
					errs <- err
					return
				}
				if st.MaxDeltaChain > threshold+32 {
					errs <- fmt.Errorf("delta chain ran away: %d (threshold %d)", st.MaxDeltaChain, threshold)
					return
				}
			}
		}()
	}
	<-done
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiesce: let any pending compaction finish, then check the policy
	// held. The final chains must sit under the threshold, the compactor
	// must have run, and nothing may have failed.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st Stats
		getJSON(t, ts.URL+"/stats", &st)
		if st.MaxDeltaChain < threshold {
			if st.Compactions < 1 || st.DeltaSegmentsFolded < 1 {
				t.Fatalf("compactor never ran: %+v", st)
			}
			if st.CompactErrors != 0 {
				t.Fatalf("compaction errors: %+v", st)
			}
			if st.Epoch != batches || st.UpdatesApplied != batches {
				t.Fatalf("final epoch %d / updates %d, want %d", st.Epoch, st.UpdatesApplied, batches)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("chains never drained under the threshold: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	srv.Close() // stop the compactor before inspecting the directory

	// The persisted store must reopen (epoch preserved, chains replayable)
	// with extents identical to re-materializing every view over the final
	// persisted document.
	cat, st2, err := view.OpenUpdatableStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Epoch != batches {
		t.Fatalf("persisted epoch %d, want %d", cat.Epoch, batches)
	}
	final := st2.Document()
	for _, v := range views {
		want := view.MaterializeFlat(v, final)
		if got := st2.Relation(v); !got.EqualAsSet(want) {
			t.Fatalf("persisted extent of %s diverges from rebuild\nstore:\n%s\nrebuild:\n%s",
				v.Name, got.Sorted(), want.Sorted())
		}
	}
}
