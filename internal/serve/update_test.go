package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"strings"
	"sync"
	"testing"

	"xmlviews/internal/core"
	"xmlviews/internal/pattern"
	"xmlviews/internal/view"
	"xmlviews/internal/xmltree"
)

// newUpdatableServer serves a small store whose summary initially lacks
// the site/item/mail path, so mail queries are unsatisfiable until an
// update introduces one.
func newUpdatableServer(t *testing.T, cfg Config) (*httptest.Server, string) {
	t.Helper()
	dir := t.TempDir()
	doc := xmltree.MustParseParen(
		`site(item(name "pen" price "3") item(name "ink" price "7"))`)
	views := []*core.View{
		{Name: "vname", Pattern: pattern.MustParse(`site(/item[id](/name[v]))`), DerivableParentIDs: true},
		{Name: "vprice", Pattern: pattern.MustParse(`site(/item[id](/price[v]))`), DerivableParentIDs: true},
		{Name: "vmail", Pattern: pattern.MustParse(`site(/item[id](/mail[v]))`), DerivableParentIDs: true},
	}
	if _, err := view.BuildStore(dir, doc, views); err != nil {
		t.Fatal(err)
	}
	cfg.Dir = dir
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, dir
}

func postUpdate(t *testing.T, ts *httptest.Server, body string, out any) int {
	t.Helper()
	resp, err := http.Post(ts.URL+"/update", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatalf("bad JSON %q: %v", data, err)
	}
	return resp.StatusCode
}

func TestServeUpdateEndToEnd(t *testing.T) {
	ts, _ := newUpdatableServer(t, Config{Workers: 2, PlanCacheSize: 8})
	q := url.QueryEscape(`site(/item[id](/name[v]))`)

	var before QueryResponse
	if code := getJSON(t, ts.URL+"/query?q="+q, &before); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(before.Rows) != 2 || before.Epoch != 0 {
		t.Fatalf("before: %d rows at epoch %d, want 2 at 0", len(before.Rows), before.Epoch)
	}

	var up UpdateResponse
	code := postUpdate(t, ts,
		`{"updates":[{"op":"insert","parent":"1","subtree":"item(name \"dry\" price \"2\")"}]}`, &up)
	if code != http.StatusOK {
		t.Fatalf("update status %d: %+v", code, up)
	}
	if up.Epoch != 1 || up.Applied != 1 {
		t.Fatalf("update response: %+v", up)
	}
	changed := map[string]view.ChangedView{}
	for _, c := range up.Changed {
		changed[c.Name] = c
	}
	if changed["vname"].Adds != 1 || changed["vprice"].Adds != 1 {
		t.Fatalf("expected one add in vname and vprice: %+v", up.Changed)
	}
	// vmail is *potentially* affected (an inserted item could carry mail
	// children) so it is checked, but its extent does not change.
	if _, ok := changed["vmail"]; ok {
		t.Fatalf("vmail extent should be unchanged: %+v", up.Changed)
	}

	// A settext on a price node maps to vprice only: vname and vmail are
	// proven unaffected and skipped without re-evaluation.
	var up2 UpdateResponse
	if code := postUpdate(t, ts,
		`[{"op":"settext","target":"1.1.3","value":"4"}]`, &up2); code != http.StatusOK {
		t.Fatalf("settext status %d: %+v", code, up2)
	}
	if len(up2.Changed) != 1 || up2.Changed[0].Name != "vprice" {
		t.Fatalf("settext changed = %+v, want vprice only", up2.Changed)
	}
	if up2.Skipped != 2 {
		t.Fatalf("settext skipped = %d, want 2 (vname, vmail)", up2.Skipped)
	}

	var after QueryResponse
	if code := getJSON(t, ts.URL+"/query?q="+q, &after); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(after.Rows) != 3 || after.Epoch != 2 {
		t.Fatalf("after: %d rows at epoch %d, want 3 at 2", len(after.Rows), after.Epoch)
	}
	if after.PlanCached {
		t.Fatal("plan cache survived an epoch change")
	}

	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.Epoch != 2 || st.UpdatesApplied != 2 || st.CacheInvalidations != 2 {
		t.Fatalf("stats not epoch-aware: %+v", st)
	}
	if st.TuplesAdded < 2 {
		t.Fatalf("tuples_added = %d, want >= 2", st.TuplesAdded)
	}
}

// TestServeStaleVerdictInvalidated is the regression test for epoch-aware
// plan caching: a cached "unsatisfiable under the summary" verdict must
// not outlive an update that makes the query satisfiable.
func TestServeStaleVerdictInvalidated(t *testing.T) {
	ts, _ := newUpdatableServer(t, Config{Workers: 1, PlanCacheSize: 8})
	q := url.QueryEscape(`site(/item[id](/mail[v]))`)

	var e errorResponse
	for i := 0; i < 2; i++ { // second round hits the cached negative
		if code := getJSON(t, ts.URL+"/query?q="+q, &e); code != http.StatusUnprocessableEntity {
			t.Fatalf("pre-update query: status %d, want 422 (%+v)", code, e)
		}
	}

	var up UpdateResponse
	if code := postUpdate(t, ts,
		`[{"op":"insert","parent":"1.1","subtree":"mail \"m1\""}]`, &up); code != http.StatusOK {
		t.Fatalf("update status %d: %+v", code, up)
	}

	var resp QueryResponse
	if code := getJSON(t, ts.URL+"/query?q="+q, &resp); code != http.StatusOK {
		t.Fatalf("post-update query: status %d (stale unsatisfiable verdict served?)", code)
	}
	if len(resp.Rows) != 1 || resp.Rows[0][1] != "m1" {
		t.Fatalf("post-update rows: %+v", resp.Rows)
	}
}

func TestServeUpdateErrors(t *testing.T) {
	ts, _ := newUpdatableServer(t, Config{})
	var e errorResponse

	resp, err := http.Get(ts.URL + "/update")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /update: status %d", resp.StatusCode)
	}

	if code := postUpdate(t, ts, `{"updates":[]}`, &e); code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", code)
	}
	if code := postUpdate(t, ts, `not json`, &e); code != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d", code)
	}
	if code := postUpdate(t, ts, `[{"op":"delete","target":"1.99"}]`, &e); code != http.StatusUnprocessableEntity {
		t.Fatalf("missing target: status %d (%+v)", code, e)
	}
	// A failed batch must not advance the epoch.
	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.Epoch != 0 || st.UpdatesApplied != 0 {
		t.Fatalf("failed updates advanced the epoch: %+v", st)
	}

	rts, _ := newUpdatableServer(t, Config{ReadOnly: true})
	if code := postUpdate(t, rts, `[{"op":"delete","target":"1.1"}]`, &e); code != http.StatusForbidden {
		t.Fatalf("read-only server accepted update: status %d", code)
	}
}

func TestServeUpdateTooLarge(t *testing.T) {
	ts, _ := newUpdatableServer(t, Config{MaxUpdateBytes: 64})
	var e errorResponse
	big := `[{"op":"insert","parent":"1","subtree":"` + strings.Repeat("x", 200) + `"}]`
	if code := postUpdate(t, ts, big, &e); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: status %d", code)
	}
}

// TestServeConcurrentQueriesAndUpdates hammers the daemon with parallel
// readers and a writer (run with -race): every answer must be internally
// consistent (all rows from one epoch's extents).
func TestServeConcurrentQueriesAndUpdates(t *testing.T) {
	ts, _ := newUpdatableServer(t, Config{Workers: 2, PlanCacheSize: 8})
	q := url.QueryEscape(`site(/item[id](/name[v]))`)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				r, err := http.Get(ts.URL + "/query?q=" + q)
				if err != nil {
					errs <- err
					return
				}
				body, _ := io.ReadAll(r.Body)
				r.Body.Close()
				if r.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("query status %d: %s", r.StatusCode, body)
					return
				}
				var resp QueryResponse
				if err := json.Unmarshal(body, &resp); err != nil {
					errs <- err
					return
				}
				// 2 initial items plus one per applied batch so far.
				if len(resp.Rows) < 2 || len(resp.Rows) > 2+8 {
					errs <- fmt.Errorf("implausible row count %d", len(resp.Rows))
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			body := fmt.Sprintf(`[{"op":"insert","parent":"1","subtree":"item(name \"n%d\" price \"1\")"}]`, i)
			r, err := http.Post(ts.URL+"/update", "application/json", bytes.NewReader([]byte(body)))
			if err != nil {
				errs <- err
				return
			}
			data, _ := io.ReadAll(r.Body)
			r.Body.Close()
			if r.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("update %d status %d: %s", i, r.StatusCode, data)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var final QueryResponse
	if code := getJSON(t, ts.URL+"/query?q="+q, &final); code != http.StatusOK {
		t.Fatalf("final query status %d", code)
	}
	if len(final.Rows) != 10 || final.Epoch != 8 {
		t.Fatalf("final state: %d rows at epoch %d, want 10 at 8", len(final.Rows), final.Epoch)
	}
}

// TestServeDegradedOnPersistFailure: when a batch applies in memory but
// cannot be persisted (here: the store directory vanishes), the server
// must answer 500, keep serving the applied batch from memory, report
// degraded on /stats, and refuse further updates with 503 — never
// persisting a later batch over a hole in the delta chains.
func TestServeDegradedOnPersistFailure(t *testing.T) {
	ts, dir := newUpdatableServer(t, Config{})

	// First update succeeds and loads the persisted document.
	var up UpdateResponse
	if code := postUpdate(t, ts,
		`[{"op":"insert","parent":"1","subtree":"item(name \"a\" price \"1\")"}]`, &up); code != http.StatusOK {
		t.Fatalf("first update status %d", code)
	}
	// Nuke the directory out from under the server.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	var e errorResponse
	if code := postUpdate(t, ts,
		`[{"op":"insert","parent":"1","subtree":"item(name \"b\" price \"2\")"}]`, &e); code != http.StatusInternalServerError {
		t.Fatalf("persist-failing update status %d (%+v)", code, e)
	}

	// The batch is live in memory: 2 original + 2 inserted items.
	var resp QueryResponse
	q := url.QueryEscape(`site(/item[id](/name[v]))`)
	if code := getJSON(t, ts.URL+"/query?q="+q, &resp); code != http.StatusOK {
		t.Fatalf("query status %d", code)
	}
	if len(resp.Rows) != 4 || resp.Epoch != 2 {
		t.Fatalf("memory state not served: %d rows at epoch %d", len(resp.Rows), resp.Epoch)
	}

	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	if !st.Degraded {
		t.Fatalf("stats not degraded: %+v", st)
	}
	if code := postUpdate(t, ts,
		`[{"op":"settext","target":"1.1.1","value":"x"}]`, &e); code != http.StatusServiceUnavailable {
		t.Fatalf("degraded server accepted update: status %d", code)
	}
}
