// Columnar block access over relations and segments.
//
// A Blocks handle exposes a relation column-wise, in fixed-size row blocks,
// without materializing per-row strings: each column carries a per-row kind
// vector, a structural-ID vector, and dictionary codes (ints) pointing into
// a per-column dictionary in first-occurrence order — the same order
// encodeColumn persists, so codes computed here agree with codes recorded
// in segment zone maps. Per block and column a Zone records the min/max
// structural ID and the sorted set of distinct dictionary codes, letting
// executors skip whole blocks during ID-range probes and dictionary-code
// filters. Zones are persisted at segment-build time (format version 3)
// and recomputed from the rows when a segment predates them.
package store

import (
	"encoding/binary"
	"fmt"
	"sort"

	"xmlviews/internal/nodeid"
	"xmlviews/internal/nrel"
)

// BlockRows is the number of rows per zone-map block. It is small enough
// that a selective predicate skips most of a large extent and large enough
// that per-block bookkeeping stays negligible next to the row data.
const BlockRows = 1024

// Zone summarizes one block of one column: the lexicographic min/max over
// the block's structural IDs (HasID false when the block holds none) and
// the strictly increasing set of distinct dictionary codes its string rows
// use (empty when the block holds no string rows).
type Zone struct {
	HasID bool
	MinID nodeid.ID
	MaxID nodeid.ID
	Codes []uint32
}

// OverlapsRange reports whether the block may hold a structural ID in the
// half-open lexicographic range [lo, hi). An unbounded upper end is passed
// as hiUnbounded. Blocks without IDs never overlap.
func (z Zone) OverlapsRange(lo, hi nodeid.ID, hiUnbounded bool) bool {
	if !z.HasID {
		return false
	}
	if z.MaxID.Compare(lo) < 0 {
		return false
	}
	if !hiUnbounded && z.MinID.Compare(hi) >= 0 {
		return false
	}
	return true
}

// HasCode reports whether the block's string rows use the dictionary code.
func (z Zone) HasCode(code uint32) bool {
	i := sort.Search(len(z.Codes), func(i int) bool { return z.Codes[i] >= code })
	return i < len(z.Codes) && z.Codes[i] == code
}

// ZoneMap is the persisted zone index of a segment: one Zone per column per
// block of BlockRows rows, in column-major order.
type ZoneMap struct {
	// BlockRows is the block size the zones were computed over (always the
	// package constant for segments this build writes; kept explicit so a
	// future block-size change stays readable).
	BlockRows int
	// Cols holds, per column, one Zone per block.
	Cols [][]Zone
}

// Column is one column of a Blocks handle: parallel per-row vectors plus
// the column's dictionary and zones.
type Column struct {
	Name string
	// Kinds is the per-row value kind.
	Kinds []nrel.Kind
	// IDs holds the structural ID of KindID rows; nil elsewhere.
	IDs []nodeid.ID
	// Codes holds the dictionary code of KindString rows; -1 elsewhere.
	Codes []int32
	// Dict is the column's string dictionary in first-occurrence order.
	Dict []string
	// Zones has one entry per block of BlockRows rows.
	Zones []Zone

	dictIdx map[string]int32
}

// Code translates a predicate constant into the column's dictionary once;
// ok is false when the string never occurs in the column.
func (c *Column) Code(s string) (uint32, bool) {
	i, ok := c.dictIdx[s]
	return uint32(i), ok
}

// Blocks is a columnar view of a relation, built once and shared by
// concurrent executors (it is read-only after construction). Rel is the
// backing relation: surviving rows are late-materialized from it by index,
// so vectorized and row-at-a-time execution share tuple storage.
type Blocks struct {
	Rel     *nrel.Relation
	Columns []Column
	// SeededZones records that the zones came from the segment file rather
	// than a recomputation (observable in tests and diagnostics).
	SeededZones bool
}

// NumBlocks returns the handle's block count.
func (b *Blocks) NumBlocks() int { return numBlocks(len(b.Rel.Rows)) }

func numBlocks(nrows int) int { return (nrows + BlockRows - 1) / BlockRows }

// BlocksFromRelation builds a columnar handle over the relation. When seed
// carries the segment's persisted zone map and still matches the relation's
// shape (same block size, column count and block count — updates or
// re-sorts invalidate it), the persisted zones are used; otherwise zones
// are recomputed from the rows.
func BlocksFromRelation(r *nrel.Relation, seed *ZoneMap) *Blocks {
	b := &Blocks{Rel: r, Columns: make([]Column, len(r.Cols))}
	nb := numBlocks(len(r.Rows))
	useSeed := seed != nil && seed.BlockRows == BlockRows && len(seed.Cols) == len(r.Cols)
	if useSeed {
		for _, zs := range seed.Cols {
			if len(zs) != nb {
				useSeed = false
				break
			}
		}
	}
	for j := range r.Cols {
		c := &b.Columns[j]
		c.Name = r.Cols[j]
		c.Kinds = make([]nrel.Kind, len(r.Rows))
		c.IDs = make([]nodeid.ID, len(r.Rows))
		c.Codes = make([]int32, len(r.Rows))
		c.dictIdx = map[string]int32{}
		for i, row := range r.Rows {
			v := row[j]
			c.Kinds[i] = v.Kind
			c.Codes[i] = -1
			switch v.Kind {
			case nrel.KindID:
				c.IDs[i] = v.ID
			case nrel.KindString:
				code, ok := c.dictIdx[v.Str]
				if !ok {
					code = int32(len(c.Dict))
					c.dictIdx[v.Str] = code
					c.Dict = append(c.Dict, v.Str)
				}
				c.Codes[i] = code
			}
		}
		if useSeed {
			c.Zones = seed.Cols[j]
		} else {
			c.Zones = computeZones(c.Kinds, c.IDs, c.Codes)
		}
	}
	b.SeededZones = useSeed && len(r.Cols) > 0
	return b
}

// computeZones derives the per-block zones of one column from its vectors.
func computeZones(kinds []nrel.Kind, ids []nodeid.ID, codes []int32) []Zone {
	zones := make([]Zone, numBlocks(len(kinds)))
	for bi := range zones {
		lo, hi := bi*BlockRows, (bi+1)*BlockRows
		if hi > len(kinds) {
			hi = len(kinds)
		}
		z := &zones[bi]
		seen := map[uint32]bool{}
		for i := lo; i < hi; i++ {
			switch kinds[i] {
			case nrel.KindID:
				if !z.HasID {
					z.HasID, z.MinID, z.MaxID = true, ids[i], ids[i]
					continue
				}
				if ids[i].Compare(z.MinID) < 0 {
					z.MinID = ids[i]
				}
				if ids[i].Compare(z.MaxID) > 0 {
					z.MaxID = ids[i]
				}
			case nrel.KindString:
				seen[uint32(codes[i])] = true
			}
		}
		if len(seen) > 0 {
			z.Codes = make([]uint32, 0, len(seen))
			for code := range seen {
				z.Codes = append(z.Codes, code)
			}
			sort.Slice(z.Codes, func(a, b int) bool { return z.Codes[a] < z.Codes[b] })
		}
	}
	return zones
}

// encodeZoneMap serializes the relation's zone map (recomputed from the
// rows, which reproduces the dictionary codes encodeColumn assigns) as the
// segment's trailing block payload.
func encodeZoneMap(r *nrel.Relation) []byte {
	blocks := BlocksFromRelation(r, nil)
	var b []byte
	b = binary.AppendUvarint(b, uint64(BlockRows))
	b = binary.AppendUvarint(b, uint64(numBlocks(len(r.Rows))))
	for j := range blocks.Columns {
		for _, z := range blocks.Columns[j].Zones {
			if !z.HasID {
				b = append(b, 0)
			} else {
				b = append(b, 1)
				b = appendID(b, z.MinID)
				b = appendID(b, z.MaxID)
			}
			b = binary.AppendUvarint(b, uint64(len(z.Codes)))
			prev := uint64(0)
			for i, code := range z.Codes {
				// Codes are strictly increasing: store the first raw, then
				// gaps minus one, so corruption cannot smuggle duplicates in.
				if i == 0 {
					b = binary.AppendUvarint(b, uint64(code))
				} else {
					b = binary.AppendUvarint(b, uint64(code)-prev-1)
				}
				prev = uint64(code)
			}
		}
	}
	return b
}

func appendID(dst []byte, id nodeid.ID) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(id)))
	for _, c := range id {
		dst = binary.AppendUvarint(dst, uint64(c))
	}
	return dst
}

// decodeZoneMap parses a zone-map block payload for a segment with the
// given shape, validating block counts, ID ordering and code monotonicity.
func decodeZoneMap(rd *reader, ncols, nrows int) (*ZoneMap, error) {
	blockRows := int(rd.uvarint())
	nb := int(rd.uvarint())
	if rd.err != nil {
		return nil, rd.err
	}
	if blockRows <= 0 {
		return nil, fmt.Errorf("store: zone map block size %d", blockRows)
	}
	if want := (nrows + blockRows - 1) / blockRows; nb != want {
		return nil, fmt.Errorf("store: zone map has %d blocks, segment shape needs %d", nb, want)
	}
	zm := &ZoneMap{BlockRows: blockRows, Cols: make([][]Zone, ncols)}
	for j := 0; j < ncols; j++ {
		zm.Cols[j] = make([]Zone, nb)
		for bi := 0; bi < nb; bi++ {
			z := &zm.Cols[j][bi]
			switch rd.byte() {
			case 0:
			case 1:
				z.HasID = true
				z.MinID = readID(rd)
				z.MaxID = readID(rd)
				if rd.err == nil && z.MinID.Compare(z.MaxID) > 0 {
					return nil, fmt.Errorf("store: zone map min ID after max ID (column %d, block %d)", j, bi)
				}
			default:
				if rd.err == nil {
					return nil, fmt.Errorf("store: zone map ID flag out of range (column %d, block %d)", j, bi)
				}
			}
			ncodes := rd.length()
			if ncodes > 0 {
				z.Codes = make([]uint32, 0, ncodes)
				prev := uint64(0)
				for i := 0; i < ncodes; i++ {
					d := rd.uvarint()
					code := d
					if i > 0 {
						code = prev + 1 + d
					}
					if code > uint64(^uint32(0)) {
						return nil, fmt.Errorf("store: zone map code overflow (column %d, block %d)", j, bi)
					}
					z.Codes = append(z.Codes, uint32(code))
					prev = code
				}
			}
			if rd.err != nil {
				return nil, rd.err
			}
		}
	}
	return zm, nil
}

func readID(rd *reader) nodeid.ID {
	n := rd.length()
	if rd.err != nil || n == 0 {
		return nil
	}
	id := make(nodeid.ID, 0, n)
	for i := 0; i < n; i++ {
		id = append(id, uint32(rd.uvarint()))
	}
	return id
}
