package store

import (
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"xmlviews/internal/nodeid"
	"xmlviews/internal/nrel"
)

// toV2Segment rewrites a current-version segment into the version-2 layout
// older stores produced: the trailing zone-map block is dropped and the
// version field patched back, leaving the column encoding untouched.
func toV2Segment(t testing.TB, data []byte) []byte {
	t.Helper()
	rd := &reader{data: data}
	rd.bytes(len(Magic))
	rd.u16()
	hdr := rd.block()
	ncols := hdr.length()
	if hdr.err != nil {
		t.Fatalf("parsing header: %v", hdr.err)
	}
	for j := 0; j < ncols; j++ {
		rd.block()
	}
	if rd.err != nil {
		t.Fatalf("walking column blocks: %v", rd.err)
	}
	out := append([]byte(nil), data[:rd.pos]...)
	binary.LittleEndian.PutUint16(out[len(Magic):], 2)
	return out
}

// corruptColumnBlock replaces column j's block payload with garbage of the
// same length and fixes the checksum, so the block passes CRC but can no
// longer be decoded. Projection must still read the other columns.
func corruptColumnBlock(t *testing.T, data []byte, j int) []byte {
	t.Helper()
	out := append([]byte(nil), data...)
	rd := &reader{data: out}
	rd.bytes(len(Magic))
	rd.u16()
	rd.block() // header
	for skip := 0; skip < j; skip++ {
		rd.block()
	}
	n := rd.length()
	crcPos := rd.pos
	rd.u32()
	payloadPos := rd.pos
	if rd.bytes(n) == nil {
		t.Fatalf("locating column block %d: %v", j, rd.err)
	}
	for i := payloadPos; i < payloadPos+n; i++ {
		out[i] = 0xFF // 0xFF is not a valid value kind, so decode must fail
	}
	binary.LittleEndian.PutUint32(out[crcPos:], crc32.ChecksumIEEE(out[payloadPos:payloadPos+n]))
	return out
}

// TestV2SegmentStillReads pins backward compatibility: a version-2 segment
// (no zone-map block) decodes to the same relation, with a nil zone map,
// through both the byte and the file entry points.
func TestV2SegmentStillReads(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		r := randomRelation(rng, rng.Intn(30), 1)
		v2 := toV2Segment(t, EncodeRelation(r))
		got, zm, err := DecodeRelationZones(v2)
		if err != nil {
			t.Fatalf("trial %d: decoding v2 segment: %v", trial, err)
		}
		if zm != nil {
			t.Fatalf("trial %d: v2 segment produced a zone map", trial)
		}
		if !got.EqualAsSet(r) {
			t.Fatalf("trial %d: v2 decode changed the relation", trial)
		}
	}

	r := randomRelation(rng, 20, 1)
	path := filepath.Join(t.TempDir(), "v2.xvsg")
	if err := writeFileAtomic(path, toV2Segment(t, EncodeRelation(r))); err != nil {
		t.Fatal(err)
	}
	got, zm, err := ReadFileZones(path)
	if err != nil {
		t.Fatal(err)
	}
	if zm != nil {
		t.Fatal("ReadFileZones returned zones for a v2 file")
	}
	if !got.EqualAsSet(r) {
		t.Fatal("ReadFileZones changed the relation")
	}
	// The block-handle fallback recomputes zones when the file had none.
	b := BlocksFromRelation(got, zm)
	if b.SeededZones {
		t.Fatal("fallback handle claims seeded zones")
	}
	if len(b.Columns) != len(r.Cols) {
		t.Fatalf("handle has %d columns, want %d", len(b.Columns), len(r.Cols))
	}
}

// TestProjectedDecodeSkipsPayloads proves unprojected columns are never
// decoded: a segment whose content column payload is garbage (with a valid
// checksum) fails a full decode but reads fine when the projection leaves
// that column out.
func TestProjectedDecodeSkipsPayloads(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	r := randomRelation(rng, 25, 1)
	data := EncodeRelation(r)
	contentCol := 3 // "s0.c" in randomRelation's layout
	bad := corruptColumnBlock(t, data, contentCol)

	if _, err := DecodeRelation(bad); err == nil {
		t.Fatal("full decode accepted a garbage column payload")
	}
	got, err := DecodeRelationCols(bad, []string{"s0.id", "s0.l"})
	if err != nil {
		t.Fatalf("projected decode: %v", err)
	}
	if !reflect.DeepEqual(got.Cols, []string{"s0.id", "s0.l"}) {
		t.Fatalf("projected cols = %v", got.Cols)
	}
	if got.Len() != r.Len() {
		t.Fatalf("projected rows = %d, want %d", got.Len(), r.Len())
	}
	idIdx, lIdx := r.ColIndex("s0.id"), r.ColIndex("s0.l")
	for i, row := range got.Rows {
		if !row[0].Equal(r.Rows[i][idIdx]) || !row[1].Equal(r.Rows[i][lIdx]) {
			t.Fatalf("projected row %d differs", i)
		}
	}

	// A CRC-failing payload is still rejected even when skipped.
	noCRCFix := append([]byte(nil), data...)
	rd := &reader{data: noCRCFix}
	rd.bytes(len(Magic))
	rd.u16()
	rd.block()
	for skip := 0; skip < contentCol; skip++ {
		rd.block()
	}
	n := rd.length()
	rd.u32()
	payloadPos := rd.pos
	if rd.bytes(n) == nil || n == 0 {
		t.Fatalf("locating content block: err=%v len=%d", rd.err, n)
	}
	noCRCFix[payloadPos] ^= 0xFF
	if _, err := DecodeRelationCols(noCRCFix, []string{"s0.id"}); err == nil {
		t.Fatal("projection skipped a corrupt block without checking its CRC")
	}

	if _, err := DecodeRelationCols(data, []string{"nope"}); err == nil {
		t.Fatal("projection onto a missing column must error")
	}

	// File-level projection: same segment through ReadFileCols and ScanCols.
	path := filepath.Join(t.TempDir(), "seg.xvsg")
	if err := writeFileAtomic(path, bad); err != nil {
		t.Fatal(err)
	}
	fromFile, err := ReadFileCols(path, []string{"s0.id", "s0.l"})
	if err != nil {
		t.Fatalf("ReadFileCols: %v", err)
	}
	if !fromFile.EqualAsSet(got) {
		t.Fatal("ReadFileCols differs from DecodeRelationCols")
	}
	rows := 0
	err = ScanCols(path, []string{"s0.l"}, func(cols []string, row nrel.Tuple) error {
		if len(cols) != 1 || cols[0] != "s0.l" || len(row) != 1 {
			t.Fatalf("ScanCols shape: cols=%v row len=%d", cols, len(row))
		}
		rows++
		return nil
	})
	if err != nil {
		t.Fatalf("ScanCols: %v", err)
	}
	if rows != r.Len() {
		t.Fatalf("ScanCols visited %d rows, want %d", rows, r.Len())
	}
}

// TestZoneOverlapsRange pins the half-open [lo, hi) skip predicate under
// caret (ORDPATH-style) IDs.
func TestZoneOverlapsRange(t *testing.T) {
	id := func(cs ...uint32) nodeid.ID { return nodeid.ID(cs) }
	z := Zone{HasID: true, MinID: id(1, 4), MaxID: id(1, 8, 2)}
	cases := []struct {
		name        string
		lo, hi      nodeid.ID
		hiUnbounded bool
		want        bool
	}{
		{"range inside zone", id(1, 5), id(1, 6), false, true},
		{"zone inside range", id(1), id(2), false, true},
		{"range entirely below", id(1, 1), id(1, 4), false, false},
		{"range entirely above", id(1, 8, 3), id(2), false, false},
		{"lo equals max is inclusive", id(1, 8, 2), id(2), false, true},
		{"hi equals min is exclusive", id(1, 1), id(1, 4), false, false},
		{"unbounded high end", id(1, 5), nil, true, true},
		{"unbounded but below min still skips", id(1, 9), nil, true, false},
		{"prefix lo covers descendants", id(1, 8), id(1, 9), false, true},
	}
	for _, tc := range cases {
		if got := z.OverlapsRange(tc.lo, tc.hi, tc.hiUnbounded); got != tc.want {
			t.Errorf("%s: OverlapsRange(%v, %v, %v) = %v, want %v",
				tc.name, tc.lo, tc.hi, tc.hiUnbounded, got, tc.want)
		}
	}
	idless := Zone{}
	if idless.OverlapsRange(nil, nil, true) {
		t.Error("a zone without IDs can never overlap an ID range")
	}
}

func TestZoneHasCode(t *testing.T) {
	z := Zone{Codes: []uint32{0, 3, 7, 100}}
	for _, c := range []uint32{0, 3, 7, 100} {
		if !z.HasCode(c) {
			t.Errorf("HasCode(%d) = false, want true", c)
		}
	}
	for _, c := range []uint32{1, 2, 4, 99, 101} {
		if z.HasCode(c) {
			t.Errorf("HasCode(%d) = true, want false", c)
		}
	}
	if (Zone{}).HasCode(0) {
		t.Error("empty zone claims a code")
	}
}

// TestPersistedZonesEqualRecomputed pins that the zone map a segment
// persists is exactly what a fresh recomputation over the decoded rows
// produces — the dictionary-code agreement the vectorized path relies on.
func TestPersistedZonesEqualRecomputed(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		// Spread rows across several blocks so multi-block zones are hit.
		nrows := BlockRows/2 + rng.Intn(3*BlockRows)
		r := nrel.NewRelation("id", "label")
		for i := 0; i < nrows; i++ {
			row := make(nrel.Tuple, 2)
			if rng.Intn(5) == 0 {
				row[0] = nrel.Null()
			} else {
				row[0] = nrel.ID(nodeid.Root().Child(uint32(1 + i)))
			}
			row[1] = nrel.String(strings.Repeat("l", rng.Intn(6)))
			r.Append(row)
		}
		rel, zm, err := DecodeRelationZones(EncodeRelation(r))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if zm == nil {
			t.Fatalf("trial %d: current-version segment has no zone map", trial)
		}
		seeded := BlocksFromRelation(rel, zm)
		if !seeded.SeededZones {
			t.Fatalf("trial %d: matching seed not used", trial)
		}
		recomputed := BlocksFromRelation(rel, nil)
		if recomputed.SeededZones {
			t.Fatalf("trial %d: nil seed marked as seeded", trial)
		}
		for j := range seeded.Columns {
			if !reflect.DeepEqual(seeded.Columns[j].Zones, recomputed.Columns[j].Zones) {
				t.Fatalf("trial %d: column %d persisted zones differ from recomputed\n%v\nvs\n%v",
					trial, j, seeded.Columns[j].Zones, recomputed.Columns[j].Zones)
			}
		}
	}
}

// TestBlocksSeedRejectsShapeMismatch pins that a stale seed (wrong block
// count after rows changed) falls back to recomputation.
func TestBlocksSeedRejectsShapeMismatch(t *testing.T) {
	r := nrel.NewRelation("id")
	for i := 0; i < BlockRows+10; i++ {
		r.Append(nrel.Tuple{nrel.ID(nodeid.Root().Child(uint32(i + 1)))})
	}
	_, zm, err := DecodeRelationZones(EncodeRelation(r))
	if err != nil || zm == nil {
		t.Fatalf("zone map: %v", err)
	}
	// Shrink the relation past a block boundary: the seed no longer fits.
	r.Rows = r.Rows[:BlockRows-1]
	b := BlocksFromRelation(r, zm)
	if b.SeededZones {
		t.Fatal("shape-mismatched seed was accepted")
	}
	if got := len(b.Columns[0].Zones); got != 1 {
		t.Fatalf("recomputed zones = %d blocks, want 1", got)
	}
}
