package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ManifestName is the catalog manifest's file name inside a store
// directory.
const ManifestName = "catalog.json"

// CatalogVersion is the manifest format version.
const CatalogVersion = 1

// Entry describes one stored view extent.
type Entry struct {
	// Name is the view name; it keys plan scans to segments.
	Name string `json:"name"`
	// Pattern is the canonical source text of the view's tree pattern.
	Pattern string `json:"pattern"`
	// Columns is the extent's flat column schema (s<k>.<attr> names).
	Columns []string `json:"columns"`
	// Rows is the extent's row count.
	Rows int `json:"rows"`
	// Bytes is the segment file's size.
	Bytes int64 `json:"bytes"`
	// Segment is the segment file name, relative to the store directory.
	Segment string `json:"segment"`
}

// Catalog is the manifest of a store directory: the summary the views were
// built under and one entry per stored extent.
type Catalog struct {
	FormatVersion int `json:"format_version"`
	// Document optionally records the source document's name.
	Document string `json:"document,omitempty"`
	// Summary is the path summary in parenthesized notation
	// (summary.Parse format); serving rewrites against it without ever
	// touching the source document.
	Summary string `json:"summary"`
	// SummaryHash is the SHA-256 of Summary, cross-checking segment and
	// manifest provenance.
	SummaryHash string  `json:"summary_hash"`
	Views       []Entry `json:"views"`
}

// Entry returns the catalog entry for the named view, or nil.
func (c *Catalog) Entry(name string) *Entry {
	for i := range c.Views {
		if c.Views[i].Name == name {
			return &c.Views[i]
		}
	}
	return nil
}

// SummaryHash returns the hex SHA-256 of a summary's source text.
func SummaryHash(summarySrc string) string {
	h := sha256.Sum256([]byte(summarySrc))
	return hex.EncodeToString(h[:])
}

// WriteCatalog writes the manifest into dir (atomically, via rename).
func WriteCatalog(dir string, c *Catalog) error {
	c.FormatVersion = CatalogVersion
	c.SummaryHash = SummaryHash(c.Summary)
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(dir, ManifestName), append(data, '\n'))
}

// OpenCatalog reads and validates the manifest of a store directory.
func OpenCatalog(dir string) (*Catalog, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	var c Catalog
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("store: invalid catalog in %s: %w", dir, err)
	}
	if c.FormatVersion != CatalogVersion {
		return nil, fmt.Errorf("store: unsupported catalog version %d (want %d)", c.FormatVersion, CatalogVersion)
	}
	if got := SummaryHash(c.Summary); got != c.SummaryHash {
		return nil, fmt.Errorf("store: catalog summary hash mismatch (manifest says %s, computed %s)", c.SummaryHash, got)
	}
	seen := map[string]bool{}
	for _, e := range c.Views {
		if e.Name == "" || e.Segment == "" {
			return nil, fmt.Errorf("store: catalog entry with empty name or segment")
		}
		if seen[e.Name] {
			return nil, fmt.Errorf("store: duplicate catalog entry %q", e.Name)
		}
		seen[e.Name] = true
	}
	return &c, nil
}
