package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ManifestName is the catalog manifest's file name inside a store
// directory.
const ManifestName = "catalog.json"

// CatalogVersion is the manifest format version written by this code.
// Version 2 brought the maintenance fields (epoch, delta chains, document
// segment) and the caret Dewey ID semantics; version 3 added the
// cardinality-statistics annotations inside the summary text
// (':count:textbytes'), which version-2 readers cannot parse.
//
// There is deliberately no version-3 decode arm: the summary parser
// accepts text with and without the statistics suffix unconditionally,
// so v2 and v3 manifests go through the same path.
//
//xvlint:verok(3) summary parser accepts both forms unconditionally
const CatalogVersion = 3

// MinCatalogVersion is the oldest manifest version this code still reads:
// version-2 stores (plain summary text, no statistics) open fine — the
// cost model falls back to uniform estimates. Version-1 stores must be
// rebuilt (sequential Dewey ordinals would be misread as caret IDs).
const MinCatalogVersion = 2

// Entry describes one stored view extent.
type Entry struct {
	// Name is the view name; it keys plan scans to segments.
	Name string `json:"name"`
	// Pattern is the canonical source text of the view's tree pattern.
	Pattern string `json:"pattern"`
	// Columns is the extent's flat column schema (s<k>.<attr> names).
	Columns []string `json:"columns"`
	// Rows is the extent's current row count, after replaying Deltas over
	// the base segment.
	Rows int `json:"rows"`
	// Bytes is the base segment file's size.
	Bytes int64 `json:"bytes"`
	// Segment is the base segment file name, relative to the store
	// directory.
	Segment string `json:"segment"`
	// Deltas is the append-only chain of delta segments to replay over the
	// base segment, oldest first. Compaction folds them back into Segment
	// and clears the chain.
	Deltas []DeltaRef `json:"deltas,omitempty"`
}

// DeltaRef names one delta segment of an entry's chain.
type DeltaRef struct {
	// Segment is the delta file name, relative to the store directory.
	Segment string `json:"segment"`
	// Adds and Dels are the tuple counts of the two halves.
	Adds int `json:"adds"`
	Dels int `json:"dels"`
	// Bytes is the delta file's size.
	Bytes int64 `json:"bytes"`
	// Epoch is the store epoch the batch produced.
	Epoch int64 `json:"epoch"`
}

// Catalog is the manifest of a store directory: the summary the views were
// built under and one entry per stored extent.
type Catalog struct {
	FormatVersion int `json:"format_version"`
	// Document optionally records the source document's name.
	Document string `json:"document,omitempty"`
	// Summary is the path summary in parenthesized notation
	// (summary.Parse format); serving rewrites against it without ever
	// touching the source document.
	Summary string `json:"summary"`
	// SummaryHash is the SHA-256 of Summary, cross-checking segment and
	// manifest provenance.
	SummaryHash string  `json:"summary_hash"`
	Views       []Entry `json:"views"`
	// Epoch is the store's monotone maintenance epoch: 0 at build time,
	// incremented by every applied update batch. Serving layers key cached
	// plans to it so a stale plan can never outlive an update.
	Epoch int64 `json:"epoch,omitempty"`
	// DocSegment names the persisted source document segment (see
	// EncodeDocument). A store without one cannot apply updates.
	DocSegment string `json:"doc_segment,omitempty"`
}

// Entry returns the catalog entry for the named view, or nil.
func (c *Catalog) Entry(name string) *Entry {
	for i := range c.Views {
		if c.Views[i].Name == name {
			return &c.Views[i]
		}
	}
	return nil
}

// SummaryHash returns the hex SHA-256 of a summary's source text.
func SummaryHash(summarySrc string) string {
	h := sha256.Sum256([]byte(summarySrc))
	return hex.EncodeToString(h[:])
}

// WriteCatalog writes the manifest into dir (atomically, via rename).
func WriteCatalog(dir string, c *Catalog) error {
	c.FormatVersion = CatalogVersion
	c.SummaryHash = SummaryHash(c.Summary)
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(dir, ManifestName), append(data, '\n'))
}

// OpenCatalog reads and validates the manifest of a store directory.
func OpenCatalog(dir string) (*Catalog, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	var c Catalog
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("store: invalid catalog in %s: %w", dir, err)
	}
	if c.FormatVersion < MinCatalogVersion || c.FormatVersion > CatalogVersion {
		return nil, fmt.Errorf("store: unsupported catalog version %d (want %d..%d)", c.FormatVersion, MinCatalogVersion, CatalogVersion)
	}
	if got := SummaryHash(c.Summary); got != c.SummaryHash {
		return nil, fmt.Errorf("store: catalog summary hash mismatch (manifest says %s, computed %s)", c.SummaryHash, got)
	}
	if c.Epoch < 0 {
		return nil, fmt.Errorf("store: negative catalog epoch %d", c.Epoch)
	}
	seen := map[string]bool{}
	for _, e := range c.Views {
		if e.Name == "" || e.Segment == "" {
			return nil, fmt.Errorf("store: catalog entry with empty name or segment")
		}
		if seen[e.Name] {
			return nil, fmt.Errorf("store: duplicate catalog entry %q", e.Name)
		}
		seen[e.Name] = true
		for _, d := range e.Deltas {
			if d.Segment == "" {
				return nil, fmt.Errorf("store: catalog entry %q has a delta without a segment", e.Name)
			}
			if d.Epoch < 1 || d.Epoch > c.Epoch {
				return nil, fmt.Errorf("store: catalog entry %q delta epoch %d outside (0, %d]", e.Name, d.Epoch, c.Epoch)
			}
		}
	}
	return &c, nil
}
