// Package store implements the persistent view storage engine: a
// versioned binary columnar segment format for nrel.Relation extents and a
// JSON catalog manifest describing a directory of stored views.
//
// A segment holds one flat view extent, one file per view. The layout is
// columnar: a header block (column names, row count) followed by one block
// per column. Each block is length-prefixed and CRC-checksummed, so
// truncation and corruption are detected at open time. Inside a column
// block, values are grouped by kind: structural (Dewey) identifiers are
// delta-encoded as varints against the previous identifier in the column,
// string values are dictionary-encoded, content subtrees are serialized
// preorder against a local label/value dictionary, and nested tables
// recurse into the same relation encoding. See docs/format.md for the byte
// layout.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"xmlviews/internal/nodeid"
	"xmlviews/internal/nrel"
	"xmlviews/internal/xmltree"
)

// Magic identifies a segment file; Version is the format version encoded
// after it. Version 2 marks the caret (ORDPATH-style) reinterpretation of
// Dewey components — odd components terminate levels — under which
// version-1 segments' sequential ordinals would be silently misread, so
// they are refused. Version 3 appends a zone-map block after the column
// blocks; the column encoding is unchanged, so decoders accept versions 2
// (no zones) through 3 and writers always emit the current version.
const (
	Magic   = "XVSG"
	Version = 3
	// MinReadVersion is the oldest segment version decoders accept.
	MinReadVersion = 2
)

// EncodeRelation serializes a relation into the segment byte format
// (including magic and version). Nested tables are encoded recursively.
// The trailing block is the zone map (see blocks.go).
func EncodeRelation(r *nrel.Relation) []byte {
	var out []byte
	out = append(out, Magic...)
	out = binary.LittleEndian.AppendUint16(out, Version)
	out = appendBlock(out, encodeHeader(r))
	for j := range r.Cols {
		out = appendBlock(out, encodeColumn(r, j))
	}
	out = appendBlock(out, encodeZoneMap(r))
	return out
}

// appendBlock writes uvarint(len(payload)) + crc32(payload) + payload.
func appendBlock(dst, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

func encodeHeader(r *nrel.Relation) []byte {
	var b []byte
	b = binary.AppendUvarint(b, uint64(len(r.Cols)))
	for _, c := range r.Cols {
		b = appendString(b, c)
	}
	b = binary.AppendUvarint(b, uint64(len(r.Rows)))
	return b
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// encodeColumn serializes column j of the relation: the per-row kind
// stream, then the ID, string, content and table sections in that order.
func encodeColumn(r *nrel.Relation, j int) []byte {
	var b []byte
	for _, row := range r.Rows {
		b = append(b, byte(row[j].Kind))
	}
	// Structural IDs: delta against the previous ID in the column (shared
	// prefix length + new suffix components). Dewey IDs in document order
	// share long prefixes, so this is compact.
	var prev nodeid.ID
	for _, row := range r.Rows {
		if row[j].Kind != nrel.KindID {
			continue
		}
		id := row[j].ID
		shared := commonPrefix(prev, id)
		b = binary.AppendUvarint(b, uint64(shared))
		b = binary.AppendUvarint(b, uint64(len(id)-shared))
		for _, c := range id[shared:] {
			b = binary.AppendUvarint(b, uint64(c))
		}
		prev = id
	}
	// Strings: dictionary in first-occurrence order, then per-row indexes.
	dict := map[string]int{}
	var entries []string
	for _, row := range r.Rows {
		if row[j].Kind != nrel.KindString {
			continue
		}
		if _, ok := dict[row[j].Str]; !ok {
			dict[row[j].Str] = len(entries)
			entries = append(entries, row[j].Str)
		}
	}
	b = binary.AppendUvarint(b, uint64(len(entries)))
	for _, s := range entries {
		b = appendString(b, s)
	}
	for _, row := range r.Rows {
		if row[j].Kind == nrel.KindString {
			b = binary.AppendUvarint(b, uint64(dict[row[j].Str]))
		}
	}
	// Content subtrees.
	for _, row := range r.Rows {
		if row[j].Kind != nrel.KindContent {
			continue
		}
		if row[j].Content == nil || row[j].Content.Root == nil {
			b = append(b, 0)
			continue
		}
		b = append(b, 1)
		b = encodeTree(b, row[j].Content.Root)
	}
	// Nested tables: recursive relation encoding, length-prefixed.
	for _, row := range r.Rows {
		if row[j].Kind != nrel.KindTable {
			continue
		}
		if row[j].Table == nil {
			b = append(b, 0)
			continue
		}
		b = append(b, 1)
		sub := EncodeRelation(row[j].Table)
		b = binary.AppendUvarint(b, uint64(len(sub)))
		b = append(b, sub...)
	}
	return b
}

// encodeTree serializes a content subtree preorder against a local
// label/value dictionary. Node IDs normally follow the Dewey invariant
// (child i's ID is parent.ID.Child(i+1)), in which case a single flag byte
// marks the ID as derived; IDs that break the invariant are stored
// explicitly, as is the subtree root's.
func encodeTree(b []byte, root *xmltree.Node) []byte {
	dict := map[string]int{}
	var entries []string
	intern := func(s string) {
		if _, ok := dict[s]; !ok {
			dict[s] = len(entries)
			entries = append(entries, s)
		}
	}
	count := 0
	root.Walk(func(n *xmltree.Node) bool {
		intern(n.Label)
		intern(n.Value)
		count++
		return true
	})
	b = binary.AppendUvarint(b, uint64(len(entries)))
	for _, s := range entries {
		b = appendString(b, s)
	}
	b = binary.AppendUvarint(b, uint64(count))
	var write func(n *xmltree.Node, derivedID nodeid.ID) []byte
	write = func(n *xmltree.Node, derivedID nodeid.ID) []byte {
		b = binary.AppendUvarint(b, uint64(dict[n.Label]))
		b = binary.AppendUvarint(b, uint64(dict[n.Value]))
		b = appendZigzag(b, int64(n.PathID))
		if derivedID != nil && n.ID.Equal(derivedID) {
			b = append(b, 0)
		} else {
			b = append(b, 1)
			b = binary.AppendUvarint(b, uint64(len(n.ID)))
			for _, c := range n.ID {
				b = binary.AppendUvarint(b, uint64(c))
			}
		}
		b = binary.AppendUvarint(b, uint64(len(n.Children)))
		for i, c := range n.Children {
			b = write(c, n.ID.Child(uint32(i+1)))
		}
		return b
	}
	return write(root, nil)
}

func appendZigzag(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, uint64((v<<1)^(v>>63)))
}

func commonPrefix(a, b nodeid.ID) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// reader is a bounds-checked cursor over segment bytes. All decode errors
// are sticky: once corrupt, every later read reports the same failure.
type reader struct {
	data []byte
	pos  int
	err  error
}

func (rd *reader) fail(format string, args ...any) {
	if rd.err == nil {
		rd.err = fmt.Errorf("store: "+format, args...)
	}
}

func (rd *reader) bytes(n int) []byte {
	if rd.err != nil {
		return nil
	}
	if n < 0 || rd.pos+n > len(rd.data) {
		rd.fail("truncated segment at offset %d (need %d bytes)", rd.pos, n)
		return nil
	}
	out := rd.data[rd.pos : rd.pos+n]
	rd.pos += n
	return out
}

func (rd *reader) byte() byte {
	b := rd.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (rd *reader) u16() uint16 {
	b := rd.bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (rd *reader) u32() uint32 {
	b := rd.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (rd *reader) uvarint() uint64 {
	if rd.err != nil {
		return 0
	}
	v, n := binary.Uvarint(rd.data[rd.pos:])
	if n <= 0 {
		rd.fail("invalid varint at offset %d", rd.pos)
		return 0
	}
	rd.pos += n
	return v
}

// length reads a uvarint meant to size an allocation or slice and rejects
// values that cannot fit in the remaining input (corruption guard).
func (rd *reader) length() int {
	v := rd.uvarint()
	if rd.err == nil && v > uint64(len(rd.data)-rd.pos) {
		rd.fail("implausible length %d at offset %d", v, rd.pos)
		return 0
	}
	return int(v)
}

func (rd *reader) zigzag() int64 {
	u := rd.uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

func (rd *reader) string() string {
	n := rd.length()
	return string(rd.bytes(n))
}

// block reads a length-prefixed, CRC-checked block payload.
func (rd *reader) block() *reader {
	n := rd.length()
	if rd.err != nil {
		return &reader{err: rd.err}
	}
	want := rd.u32()
	payload := rd.bytes(n)
	if rd.err != nil {
		return &reader{err: rd.err}
	}
	if got := crc32.ChecksumIEEE(payload); got != want {
		rd.fail("block checksum mismatch (got %08x, want %08x)", got, want)
		return &reader{err: rd.err}
	}
	return &reader{data: payload}
}

// DecodeRelation parses segment bytes produced by EncodeRelation,
// verifying magic, version and every block checksum.
func DecodeRelation(data []byte) (*nrel.Relation, error) {
	r, _, err := decodeSegment(data, nil)
	return r, err
}

// DecodeRelationZones is DecodeRelation plus the segment's persisted zone
// map; the zone map is nil for version-2 segments, which predate zones.
func DecodeRelationZones(data []byte) (*nrel.Relation, *ZoneMap, error) {
	return decodeSegment(data, nil)
}

// DecodeRelationCols decodes only the named columns of a segment: the
// payloads of unprojected column blocks are CRC-verified but never decoded
// (no string, content or nested-table materialization). The returned
// relation holds the projected columns in segment order; a requested
// column the segment lacks is an error.
func DecodeRelationCols(data []byte, cols []string) (*nrel.Relation, error) {
	keep := make(map[string]bool, len(cols))
	for _, c := range cols {
		keep[c] = true
	}
	r, _, err := decodeSegment(data, keep)
	if err != nil {
		return nil, err
	}
	for _, c := range cols {
		if r.ColIndex(c) < 0 {
			return nil, fmt.Errorf("store: segment has no column %q", c)
		}
	}
	return r, nil
}

// decodeSegment is the shared decode path: keep == nil decodes every
// column, otherwise only columns whose name keep maps to true (the rest
// are checksum-verified and skipped). The zone map is returned for
// version-3 segments, restricted to the decoded columns.
func decodeSegment(data []byte, keep map[string]bool) (*nrel.Relation, *ZoneMap, error) {
	rd := &reader{data: data}
	if string(rd.bytes(len(Magic))) != Magic {
		if rd.err != nil {
			return nil, nil, rd.err
		}
		return nil, nil, fmt.Errorf("store: bad magic (not a segment)")
	}
	ver := rd.u16()
	if rd.err != nil {
		return nil, nil, rd.err
	}
	if ver < MinReadVersion || ver > Version {
		return nil, nil, fmt.Errorf("store: unsupported segment version %d (want %d..%d)", ver, MinReadVersion, Version)
	}
	hdr := rd.block()
	ncols := hdr.length()
	cols := make([]string, 0, ncols)
	for i := 0; i < ncols; i++ {
		cols = append(cols, hdr.string())
	}
	// Row data lives in the column blocks, so the header reader cannot
	// bound nrows by its own payload; each column block spends at least one
	// kind byte per row, so the whole input bounds it instead.
	nrows := int(hdr.uvarint())
	if hdr.err != nil {
		return nil, nil, hdr.err
	}
	// Every column block spends at least one kind byte per row, so the
	// whole input also bounds the tuple-allocation product ncols*nrows —
	// without this a small crafted header could demand terabytes.
	if ncols > 0 && (nrows > len(data) || uint64(nrows)*uint64(ncols) > uint64(len(data))) {
		return nil, nil, fmt.Errorf("store: implausible size %d rows x %d cols for %d-byte segment", nrows, ncols, len(data))
	}
	const maxColumnlessRows = 1 << 20
	if ncols == 0 && nrows > maxColumnlessRows {
		return nil, nil, fmt.Errorf("store: implausible row count %d for zero-column segment", nrows)
	}
	// colMap maps segment column position to output position, -1 to skip.
	colMap := make([]int, ncols)
	var outCols []string
	for j, c := range cols {
		if keep != nil && !keep[c] {
			colMap[j] = -1
			continue
		}
		colMap[j] = len(outCols)
		outCols = append(outCols, c)
	}
	r := nrel.NewRelation(outCols...)
	r.Rows = make([]nrel.Tuple, nrows)
	for i := range r.Rows {
		r.Rows[i] = make(nrel.Tuple, len(outCols))
	}
	for j := 0; j < ncols; j++ {
		cb := rd.block()
		if colMap[j] < 0 {
			// Skipped projection: the block() call above already verified
			// the payload checksum, so corruption is still detected.
			if cb.err != nil {
				return nil, nil, cb.err
			}
			continue
		}
		if err := decodeColumn(cb, r, colMap[j]); err != nil {
			return nil, nil, fmt.Errorf("column %q: %w", cols[j], err)
		}
	}
	if rd.err != nil {
		return nil, nil, rd.err
	}
	var zm *ZoneMap
	if ver >= 3 {
		zb := rd.block()
		if zb.err != nil {
			return nil, nil, fmt.Errorf("zone map: %w", zb.err)
		}
		full, err := decodeZoneMap(zb, ncols, nrows)
		if err != nil {
			return nil, nil, err
		}
		zm = &ZoneMap{BlockRows: full.BlockRows, Cols: make([][]Zone, len(outCols))}
		for j := 0; j < ncols; j++ {
			if colMap[j] >= 0 {
				zm.Cols[colMap[j]] = full.Cols[j]
			}
		}
	}
	return r, zm, nil
}

func decodeColumn(rd *reader, r *nrel.Relation, j int) error {
	kinds := rd.bytes(len(r.Rows))
	for i := range r.Rows {
		if rd.err != nil {
			return rd.err
		}
		k := nrel.Kind(kinds[i])
		if k < nrel.KindNull || k > nrel.KindTable {
			return fmt.Errorf("store: invalid value kind %d in row %d", k, i)
		}
		r.Rows[i][j].Kind = k
	}
	var prev nodeid.ID
	for i := range r.Rows {
		if r.Rows[i][j].Kind != nrel.KindID {
			continue
		}
		shared := int(rd.uvarint())
		extra := int(rd.uvarint())
		if rd.err != nil {
			return rd.err
		}
		if shared > len(prev) || extra > len(rd.data)-rd.pos {
			return fmt.Errorf("store: corrupt ID delta in row %d", i)
		}
		id := make(nodeid.ID, 0, shared+extra)
		id = append(id, prev[:shared]...)
		for k := 0; k < extra; k++ {
			id = append(id, uint32(rd.uvarint()))
		}
		if rd.err != nil {
			return rd.err
		}
		if len(id) == 0 {
			id = nil
		}
		r.Rows[i][j].ID = id
		prev = id
	}
	ndict := rd.length()
	dict := make([]string, 0, ndict)
	for i := 0; i < ndict; i++ {
		dict = append(dict, rd.string())
	}
	for i := range r.Rows {
		if r.Rows[i][j].Kind != nrel.KindString {
			continue
		}
		idx := rd.uvarint()
		if rd.err != nil {
			return rd.err
		}
		if idx >= uint64(len(dict)) {
			return fmt.Errorf("store: string dictionary index %d out of range (dict size %d)", idx, len(dict))
		}
		r.Rows[i][j].Str = dict[idx]
	}
	for i := range r.Rows {
		if r.Rows[i][j].Kind != nrel.KindContent {
			continue
		}
		if rd.byte() == 0 {
			continue
		}
		root, err := decodeTree(rd)
		if err != nil {
			return err
		}
		r.Rows[i][j].Content = &xmltree.Document{Root: root}
	}
	for i := range r.Rows {
		if r.Rows[i][j].Kind != nrel.KindTable {
			continue
		}
		if rd.byte() == 0 {
			continue
		}
		n := rd.length()
		sub := rd.bytes(n)
		if rd.err != nil {
			return rd.err
		}
		t, err := DecodeRelation(sub)
		if err != nil {
			return fmt.Errorf("nested table in row %d: %w", i, err)
		}
		r.Rows[i][j].Table = t
	}
	return rd.err
}

func decodeTree(rd *reader) (*xmltree.Node, error) {
	ndict := rd.length()
	dict := make([]string, 0, ndict)
	for i := 0; i < ndict; i++ {
		dict = append(dict, rd.string())
	}
	total := rd.length()
	if rd.err != nil {
		return nil, rd.err
	}
	read := 0
	lookup := func(idx uint64) string {
		if idx >= uint64(len(dict)) {
			rd.fail("tree dictionary index %d out of range", idx)
			return ""
		}
		return dict[idx]
	}
	var decode func(parent *xmltree.Node, derivedID nodeid.ID) *xmltree.Node
	decode = func(parent *xmltree.Node, derivedID nodeid.ID) *xmltree.Node {
		if rd.err != nil {
			return nil
		}
		if read >= total {
			rd.fail("tree node count overflow (declared %d)", total)
			return nil
		}
		read++
		n := &xmltree.Node{Parent: parent}
		n.Label = lookup(rd.uvarint())
		n.Value = lookup(rd.uvarint())
		n.PathID = int(rd.zigzag())
		switch rd.byte() {
		case 0:
			n.ID = derivedID
		default:
			nc := rd.length()
			id := make(nodeid.ID, 0, nc)
			for i := 0; i < nc; i++ {
				id = append(id, uint32(rd.uvarint()))
			}
			if len(id) > 0 {
				n.ID = id
			}
		}
		nch := rd.length()
		for i := 0; i < nch; i++ {
			c := decode(n, n.ID.Child(uint32(i+1)))
			if rd.err != nil {
				return nil
			}
			n.Children = append(n.Children, c)
		}
		return n
	}
	root := decode(nil, nil)
	if rd.err != nil {
		return nil, rd.err
	}
	if read != total {
		return nil, fmt.Errorf("store: tree node count mismatch (declared %d, read %d)", total, read)
	}
	return root, nil
}
