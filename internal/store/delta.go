package store

import (
	"encoding/binary"
	"fmt"
	"os"

	"xmlviews/internal/nrel"
	"xmlviews/internal/xmltree"
)

// DeltaMagic identifies a delta segment file: an append-only record of one
// maintenance batch's tuple changes to one view extent. DocMagic
// identifies the persisted source document that makes a store updatable.
const (
	DeltaMagic   = "XVDL"
	DeltaVersion = 1
	DocMagic     = "XVDC"
	DocVersion   = 1
)

// EncodeDelta serializes an (adds, dels) pair of same-schema relations.
// Each half reuses the full segment relation encoding (header and column
// blocks CRC-checked), length-prefixed so truncation is detected.
func EncodeDelta(adds, dels *nrel.Relation) []byte {
	var out []byte
	out = append(out, DeltaMagic...)
	out = binary.LittleEndian.AppendUint16(out, DeltaVersion)
	for _, r := range []*nrel.Relation{adds, dels} {
		blob := EncodeRelation(r)
		out = binary.AppendUvarint(out, uint64(len(blob)))
		out = append(out, blob...)
	}
	return out
}

// DecodeDelta parses delta segment bytes.
func DecodeDelta(data []byte) (adds, dels *nrel.Relation, err error) {
	rd := &reader{data: data}
	if string(rd.bytes(len(DeltaMagic))) != DeltaMagic {
		if rd.err != nil {
			return nil, nil, rd.err
		}
		return nil, nil, fmt.Errorf("store: bad magic (not a delta segment)")
	}
	if ver := rd.u16(); rd.err == nil && ver != DeltaVersion {
		return nil, nil, fmt.Errorf("store: unsupported delta version %d (want %d)", ver, DeltaVersion)
	}
	halves := make([]*nrel.Relation, 2)
	for i := range halves {
		n := rd.length()
		blob := rd.bytes(n)
		if rd.err != nil {
			return nil, nil, rd.err
		}
		halves[i], err = DecodeRelation(blob)
		if err != nil {
			return nil, nil, fmt.Errorf("store: delta half %d: %w", i, err)
		}
	}
	if rd.pos != len(rd.data) {
		return nil, nil, fmt.Errorf("store: %d trailing bytes after delta", len(rd.data)-rd.pos)
	}
	return halves[0], halves[1], nil
}

// WriteDeltaFile atomically writes a delta segment and returns its size.
func WriteDeltaFile(path string, adds, dels *nrel.Relation) (int64, error) {
	data := EncodeDelta(adds, dels)
	if err := writeFileAtomic(path, data); err != nil {
		return 0, err
	}
	return int64(len(data)), nil
}

// ReadDeltaFile loads and verifies a delta segment.
func ReadDeltaFile(path string) (adds, dels *nrel.Relation, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	adds, dels, err = DecodeDelta(data)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return adds, dels, nil
}

// EncodeDocument serializes a whole document with the segment tree codec
// (labels and values dictionary-compressed, conforming Dewey IDs derived
// rather than stored), wrapped in a CRC-checked block.
func EncodeDocument(doc *xmltree.Document) []byte {
	var out []byte
	out = append(out, DocMagic...)
	out = binary.LittleEndian.AppendUint16(out, DocVersion)
	var payload []byte
	payload = appendString(payload, doc.Name)
	payload = encodeTree(payload, doc.Root)
	return appendBlock(out, payload)
}

// DecodeDocument parses document bytes produced by EncodeDocument.
func DecodeDocument(data []byte) (*xmltree.Document, error) {
	rd := &reader{data: data}
	if string(rd.bytes(len(DocMagic))) != DocMagic {
		if rd.err != nil {
			return nil, rd.err
		}
		return nil, fmt.Errorf("store: bad magic (not a document segment)")
	}
	if ver := rd.u16(); rd.err == nil && ver != DocVersion {
		return nil, fmt.Errorf("store: unsupported document version %d (want %d)", ver, DocVersion)
	}
	blk := rd.block()
	name := blk.string()
	root, err := decodeTree(blk)
	if err != nil {
		return nil, err
	}
	if root == nil {
		return nil, fmt.Errorf("store: document segment with no root")
	}
	return &xmltree.Document{Root: root, Name: name}, nil
}

// WriteDocumentFile atomically persists the document segment.
func WriteDocumentFile(path string, doc *xmltree.Document) (int64, error) {
	data := EncodeDocument(doc)
	if err := writeFileAtomic(path, data); err != nil {
		return 0, err
	}
	return int64(len(data)), nil
}

// ReadDocumentFile loads and verifies a document segment.
func ReadDocumentFile(path string) (*xmltree.Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	doc, err := DecodeDocument(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}
