package store

import (
	"math/rand"
	"path/filepath"
	"testing"

	"xmlviews/internal/nodeid"
	"xmlviews/internal/nrel"
	"xmlviews/internal/xmltree"
)

func smallRel(vals ...string) *nrel.Relation {
	r := nrel.NewRelation("s0.id", "s0.v")
	for i, v := range vals {
		val := nrel.Null()
		if v != "" {
			val = nrel.String(v)
		}
		r.Append(nrel.Tuple{nrel.ID(nodeid.New(1, uint32(2*i+1))), val})
	}
	return r
}

func TestDeltaFileRoundTrip(t *testing.T) {
	adds, dels := smallRel("a", "b", ""), smallRel("c")
	path := filepath.Join(t.TempDir(), "d.xvs")
	if _, err := WriteDeltaFile(path, adds, dels); err != nil {
		t.Fatal(err)
	}
	gotAdds, gotDels, err := ReadDeltaFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !gotAdds.EqualAsSet(adds) || !gotDels.EqualAsSet(dels) {
		t.Fatalf("round trip changed deltas:\n%s\n%s", gotAdds, gotDels)
	}
}

func TestDeltaDecodeRejectsCorruption(t *testing.T) {
	data := EncodeDelta(smallRel("a", "b"), smallRel())
	if _, _, err := DecodeDelta([]byte("XVSG....")); err == nil {
		t.Error("segment magic accepted as delta")
	}
	for _, n := range []int{0, 3, 5, len(data) / 2, len(data) - 1} {
		if _, _, err := DecodeDelta(data[:n]); err == nil {
			t.Errorf("truncation to %d bytes not detected", n)
		}
	}
	if _, _, err := DecodeDelta(append(data, 0)); err == nil {
		t.Error("trailing bytes not detected")
	}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		mut := append([]byte(nil), data...)
		mut[r.Intn(len(mut))] ^= 1 << uint(r.Intn(8))
		a, d, err := DecodeDelta(mut)
		if err == nil {
			// A flipped bit may land in redundant varint space and still
			// decode; it must at least decode to *some* relation pair.
			if a == nil || d == nil {
				t.Fatalf("flip %d: nil relations without error", i)
			}
		}
	}
}

func TestDocumentFileRoundTrip(t *testing.T) {
	doc := xmltree.MustParseParen(`site(item(name "pen" price "3") item(@id "7" name "ink"))`)
	doc.Name = "test.xml"
	// Give it a careted ID mix by applying updates first.
	if _, err := doc.InsertSubtree(doc.Root.ID, doc.Root.Children[1].ID, xmltree.MustParseParen(`item(name "mid")`)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "doc.xvt")
	if _, err := WriteDocumentFile(path, doc); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDocumentFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != doc.Name {
		t.Fatalf("name = %q, want %q", got.Name, doc.Name)
	}
	if got.Root.String() != doc.Root.String() {
		t.Fatalf("tree changed:\n%s\n%s", got.Root, doc.Root)
	}
	// IDs (including careted ones) and parent pointers must survive.
	want := doc.Nodes()
	have := got.Nodes()
	if len(want) != len(have) {
		t.Fatalf("node count %d != %d", len(have), len(want))
	}
	for i := range want {
		if !want[i].ID.Equal(have[i].ID) {
			t.Fatalf("node %d ID %s != %s", i, have[i].ID, want[i].ID)
		}
		if (have[i].Parent == nil) != (want[i].Parent == nil) {
			t.Fatalf("node %d parent pointer mismatch", i)
		}
	}
}

func TestDocumentDecodeRejectsCorruption(t *testing.T) {
	data := EncodeDocument(xmltree.MustParseParen(`a(b "1" c(d))`))
	for _, n := range []int{0, 3, 5, len(data) / 2, len(data) - 1} {
		if _, err := DecodeDocument(data[:n]); err == nil {
			t.Errorf("truncation to %d bytes not detected", n)
		}
	}
	mut := append([]byte(nil), data...)
	mut[len(mut)-2] ^= 0xff
	if _, err := DecodeDocument(mut); err == nil {
		t.Error("payload corruption not detected (CRC should catch it)")
	}
}
