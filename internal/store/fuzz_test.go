package store

import (
	"testing"

	"xmlviews/internal/nodeid"
	"xmlviews/internal/nrel"
	"xmlviews/internal/xmltree"
)

// fuzzSeedRelation covers every value kind, so mutated encodings reach all
// decoder sections.
func fuzzSeedRelation() *nrel.Relation {
	r := nrel.NewRelation("s0.id", "s0.v", "s0.c", "s1.t")
	sub := nrel.NewRelation("s0.v")
	sub.Append(nrel.Tuple{nrel.String("nested")})
	doc := xmltree.MustParseParen(`a(b "1" c(d))`)
	r.Append(nrel.Tuple{
		nrel.ID(nodeid.New(1, 3, 5)),
		nrel.String("hello"),
		nrel.Content(doc),
		nrel.Table(sub),
	})
	r.Append(nrel.Tuple{nrel.Null(), nrel.String(""), nrel.Null(), nrel.Value{Kind: nrel.KindTable}})
	return r
}

// FuzzSegmentRead asserts the segment decoder rejects arbitrary bytes
// without panicking and without allocation bombs (the plausibility guards
// bound every size field by the input length, so a decode allocates at
// most O(len(input)) tuples). Successful decodes must re-encode.
func FuzzSegmentRead(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("XVSG"))
	f.Add(EncodeRelation(fuzzSeedRelation()))
	f.Add(EncodeRelation(nrel.NewRelation()))
	f.Add(EncodeRelation(nrel.NewRelation("a", "b")))
	// The version-2 layout (no trailing zone-map block) must stay readable.
	f.Add(toV2Segment(f, EncodeRelation(fuzzSeedRelation())))
	f.Add(toV2Segment(f, EncodeRelation(nrel.NewRelation())))
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxInput = 1 << 20
		if len(data) > maxInput {
			return
		}
		rel, err := DecodeRelation(data) // must not panic
		if err != nil {
			return
		}
		// Accepted input: the relation must be internally consistent and
		// survive a re-encode/decode cycle.
		for i, row := range rel.Rows {
			if len(row) != len(rel.Cols) {
				t.Fatalf("row %d has %d values for %d columns", i, len(row), len(rel.Cols))
			}
		}
		back, err := DecodeRelation(EncodeRelation(rel))
		if err != nil {
			t.Fatalf("re-encode of accepted segment does not decode: %v", err)
		}
		if !back.EqualAsSet(rel) {
			t.Fatal("re-encode changed the relation")
		}
	})
}

// FuzzDeltaRead is the same property for the delta segment decoder.
func FuzzDeltaRead(f *testing.F) {
	r := fuzzSeedRelation()
	f.Add(EncodeDelta(r, nrel.NewRelation(r.Cols...)))
	f.Add(EncodeDelta(nrel.NewRelation(), nrel.NewRelation()))
	f.Add([]byte("XVDL"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		adds, dels, err := DecodeDelta(data) // must not panic
		if err != nil {
			return
		}
		if _, _, err := DecodeDelta(EncodeDelta(adds, dels)); err != nil {
			t.Fatalf("re-encode of accepted delta does not decode: %v", err)
		}
	})
}
