package store

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"xmlviews/internal/nrel"
)

// WriteFile encodes the relation and atomically writes it as a segment
// file. It returns the segment's size in bytes.
func WriteFile(path string, r *nrel.Relation) (int64, error) {
	data := EncodeRelation(r)
	if err := writeFileAtomic(path, data); err != nil {
		return 0, err
	}
	return int64(len(data)), nil
}

// writeFileAtomic writes data to a temp file in path's directory, syncs
// it, and renames it into place, so a crash never leaves a half-written
// file behind a valid name. Segments and the catalog share this path:
// the catalog is written last and references segments by name, so every
// segment must be durable before its name can appear in a catalog.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".xvtmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		// The write error is the root cause; Close on a broken temp file
		// adds nothing and the deferred Remove discards it anyway.
		tmp.Close() //xvlint:errok primary error wins; the temp file is removed
		return err
	}
	// Flush file contents before the rename: rename is atomic with respect
	// to the name, not the data.
	if err := tmp.Sync(); err != nil {
		tmp.Close() //xvlint:errok primary error wins; the temp file is removed
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir flushes the directory entry created by a rename. Without it a
// crash can lose the file's NAME even though its contents were synced.
// Windows does not support (or need) opening directories for sync.
func syncDir(dir string) error {
	if runtime.GOOS == "windows" {
		return nil
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close() //xvlint:errok primary error wins; the directory handle is read-only
		return err
	}
	return d.Close()
}

// ReadFile loads a segment file into memory, verifying every block
// checksum, and returns the decoded relation.
func ReadFile(path string) (*nrel.Relation, error) {
	r, _, err := ReadFileZones(path)
	return r, err
}

// ReadFileZones is ReadFile plus the segment's persisted zone map (nil for
// segments written before format version 3).
func ReadFileZones(path string) (*nrel.Relation, *ZoneMap, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	r, zm, err := DecodeRelationZones(data)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, zm, nil
}

// ReadFileCols loads only the named columns of a segment file: every block
// is still CRC-verified, but unprojected columns are never decoded — their
// strings, content subtrees and nested tables are not materialized.
func ReadFileCols(path string, cols []string) (*nrel.Relation, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r, err := DecodeRelationCols(data, cols)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// Scan streams the rows of a segment file through fn in storage order,
// stopping at the first error fn returns. The segment is decoded
// column-block by column-block before iteration, so Scan costs one decode
// plus one pass over the rows.
func Scan(path string, fn func(cols []string, row nrel.Tuple) error) error {
	r, err := ReadFile(path)
	if err != nil {
		return err
	}
	return scanRows(r, fn)
}

// ScanCols is Scan restricted to a column projection: rows carry only the
// projected columns (in segment order) and unprojected column payloads are
// never decoded. Old segments without zone maps read via the same path.
func ScanCols(path string, cols []string, fn func(cols []string, row nrel.Tuple) error) error {
	r, err := ReadFileCols(path, cols)
	if err != nil {
		return err
	}
	return scanRows(r, fn)
}

func scanRows(r *nrel.Relation, fn func(cols []string, row nrel.Tuple) error) error {
	for _, row := range r.Rows {
		if err := fn(r.Cols, row); err != nil {
			return err
		}
	}
	return nil
}
